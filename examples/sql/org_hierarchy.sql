-- Hyper-Q workload analysis demo: recursive hierarchy traversal.
-- Recursive CTEs are native on some targets and emulated by iterative
-- middle-tier execution (paper section 6) on others; the analyzer report
-- shows which targets need the emulation path.

CREATE TABLE EMPLOYEES (
  EMP_ID INTEGER NOT NULL,
  MGR_ID INTEGER,
  NAME VARCHAR(40),
  HIRED DATE,
  SALARY DECIMAL(10,2)
);

INSERT INTO EMPLOYEES (EMP_ID, MGR_ID, NAME, HIRED, SALARY)
  VALUES (1, NULL, 'CEO', DATE '2010-01-04', 300000);

WITH RECURSIVE REPORTS (EMP_ID, MGR_ID) AS (
  SEL EMP_ID, MGR_ID FROM EMPLOYEES WHERE MGR_ID IS NULL
  UNION ALL
  SEL E.EMP_ID, E.MGR_ID FROM EMPLOYEES E, REPORTS R WHERE E.MGR_ID = R.EMP_ID
)
SEL EMP_ID FROM REPORTS;

-- Vector subquery (paper section 5.3): rewritten to EXISTS on targets
-- without scalar-subquery-in-comparison support.
SELECT NAME FROM EMPLOYEES
 WHERE SALARY = (SELECT MAX(SALARY) FROM EMPLOYEES);

SELECT NAME, RANK() OVER (ORDER BY SALARY DESC) FROM EMPLOYEES QUALIFY RANK() OVER (ORDER BY SALARY DESC) <= 10;

-- Teradata null-handling shorthand.
SELECT NVL(MGR_ID, 0), COUNT(*) FROM EMPLOYEES GROUP BY 1;
