module Pipeline = Hyperq_core.Pipeline
module Infer = Hyperq_analyze.Infer
module Xtra = Hyperq_xtra.Xtra
open Hyperq_sqlvalue

let col id name = { Xtra.id; name; ty = Dtype.Int }

let () =
  (* LEFT OUTER: left has 1 row, right has 0 rows -> real output 1 row *)
  let left = Xtra.Values_rel { rows = [ [ Xtra.Const (Value.Int 1L) ] ]; values_schema = [ col 1 "a" ] } in
  let right = Xtra.Values_rel { rows = []; values_schema = [ col 2 "b" ] } in
  let j = Xtra.Join { kind = Xtra.Left_outer; left; right; pred = None } in
  let rp = Infer.rel_props j in
  (match rp.Infer.card_max with
   | Some n -> Printf.printf "left-outer card_max = %d (real rows = 1)\n" n
   | None -> print_endline "left-outer card_max = none");

  (* duplicate column names in pruned join schema *)
  let t = Pipeline.create () in
  ignore (Pipeline.run_sql t "CREATE TABLE a (id INTEGER)");
  ignore (Pipeline.run_sql t "CREATE TABLE b (id INTEGER)");
  let sql = "SELECT * FROM a, b WHERE a.id = 1 AND a.id = 2" in
  print_endline (Pipeline.translate t sql);
  (try
     let o = Pipeline.run_sql t sql in
     Printf.printf "rows: %d\n" o.Pipeline.out_count
   with e -> Printf.printf "raised: %s\n" (Printexc.to_string e))
