(* The hyperq command-line driver: an interactive (or scripted) Teradata
   session against the virtualized backend — the closest offline analogue to
   pointing bteq at Hyper-Q (paper §7.2).

   Usage:
     hyperq repl                          interactive session
     hyperq run -e "SEL ..."              one statement
     hyperq script FILE.sql               run a ;-separated script
     hyperq translate --target nimbus -e "SEL ..."   print target SQL only
     hyperq analyze FILE.sql [--json]     offline compatibility report
     hyperq targets                       list modeled target profiles
     hyperq serve -p 10250                WP-A TCP front door (SIGTERM drains)
     hyperq rules load PACK.rules         screen + install a rewrite-rule pack
     hyperq tpch --sf 0.005               load TPC-H and drop into the repl *)

open Hyperq_sqlvalue
module Pipeline = Hyperq_core.Pipeline
module Session = Hyperq_core.Session
module Capability = Hyperq_transform.Capability
module Obs = Hyperq_obs.Obs
module Analyzer = Hyperq_analyze.Analyzer
module Diag = Hyperq_analyze.Diag
module Rules_dsl = Hyperq_rules.Dsl
module Rules_compile = Hyperq_rules.Compile
module Registry = Hyperq_rules.Registry
module Rules_corpus = Hyperq_workload.Rules_corpus

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

(* ---- rewrite-rule packs --------------------------------------------- *)

let print_rule_diags out file ds =
  List.iter (fun d -> Printf.fprintf out "%s: %s\n%!" file (Diag.to_string d)) ds

let print_pack_report file (r : Pipeline.rules_report) =
  let p = r.Pipeline.rr_pack in
  Printf.printf
    "loaded %s v%d from %s: %d rule(s), screened %d statement(s) (%d \
     skipped, %d fire(s)), %d differential quer%s%s%s\n"
    p.Registry.pi_name p.Registry.pi_version file
    (List.length p.Registry.pi_rules)
    r.Pipeline.rr_screened r.Pipeline.rr_skipped r.Pipeline.rr_screen_fires
    r.Pipeline.rr_diff_queries
    (if r.Pipeline.rr_diff_queries = 1 then "y" else "ies")
    (if r.Pipeline.rr_diff_nondet_skipped = 0 then ""
     else
       Printf.sprintf " (%d nondeterministic skipped)"
         r.Pipeline.rr_diff_nondet_skipped)
    (if r.Pipeline.rr_activated then "" else " (not activated)");
  List.iter (fun d -> Printf.printf "  %s\n" (Diag.to_string d)) r.Pipeline.rr_warnings

(* Screen + install each pack file; any rejection exits 1 (CLI contract:
   a pack that fails the validator or differential gate never activates). *)
let load_rule_files ?diff pipeline files =
  List.iter
    (fun file ->
      match Rules_corpus.load_pack ?diff pipeline (read_file file) with
      | Ok r -> print_pack_report file r
      | Error ds ->
          print_rule_diags stderr file ds;
          exit 1)
    files

let print_loaded_packs pipeline =
  let packs = Registry.list_packs (Pipeline.rules_registry pipeline) in
  if packs = [] then print_endline "no rule packs loaded"
  else
    List.iter
      (fun (pi : Registry.pack_info) ->
        Printf.printf "%s v%d (gen %d, screened over %d statements for %s)%s\n"
          pi.Registry.pi_name pi.Registry.pi_version pi.Registry.pi_gen
          pi.Registry.pi_screened pi.Registry.pi_cap
          (if List.mem pi.Registry.pi_name (Pipeline.default_rule_packs pipeline)
           then " [active]"
           else "");
        List.iter
          (fun (r : Registry.rule_info) ->
            Printf.printf "  %-28s %d fire(s)\n" r.Registry.ri_id r.Registry.ri_fires)
          pi.Registry.pi_rules)
      packs

let analyze_file ?targets file =
  Analyzer.analyze_script ?targets ~script_name:file (read_file file)

let render_outcome ?(verbose = false) (o : Pipeline.outcome) =
  if o.Pipeline.out_schema <> [] then begin
    let widths =
      List.map
        (fun (name, _) -> max 8 (String.length name))
        o.Pipeline.out_schema
    in
    let header =
      String.concat " | "
        (List.map2
           (fun (name, _) w -> Printf.sprintf "%-*s" w name)
           o.Pipeline.out_schema widths)
    in
    print_endline header;
    print_endline (String.make (String.length header) '-');
    List.iter
      (fun (row : Value.t array) ->
        print_endline
          (String.concat " | "
             (List.map2
                (fun w v -> Printf.sprintf "%-*s" w (Value.to_string v))
                widths (Array.to_list row))))
      o.Pipeline.out_rows
  end;
  Printf.printf "-- %s: %d row(s)" o.Pipeline.out_activity o.Pipeline.out_count;
  if verbose then begin
    let t = o.Pipeline.out_timings in
    Printf.printf "  [translate %.2f ms, execute %.2f ms, convert %.2f ms]"
      (t.Pipeline.translate_s *. 1000.)
      (t.Pipeline.execute_s *. 1000.)
      (t.Pipeline.convert_s *. 1000.);
    if o.Pipeline.out_sql <> [] then
      Printf.printf "\n-- sent to backend: %s" (String.concat " ;; " o.Pipeline.out_sql)
  end;
  print_newline ();
  List.iter (Printf.printf "-- emulation: %s\n") o.Pipeline.out_emulation_trace

let exec_one pipeline session verbose sql =
  match
    Sql_error.protect (fun () -> Pipeline.run_sql pipeline ~session sql)
  with
  | Ok o -> render_outcome ~verbose o
  | Error e -> Printf.printf "!! %s\n" (Sql_error.to_string e)

let repl pipeline verbose =
  let session = Session.create () in
  Printf.printf
    "hyperq interactive session #%d — Teradata dialect in, statements end with ;\n"
    session.Session.session_id;
  print_endline
    "type \\q to quit, \\timing to toggle timing output, \\cache for plan-cache \
     stats, \\health for breaker/retry counters, \\metrics for Prometheus \
     exposition, \\trace [n] for recent query traces, \\slow [ms] for the \
     slow-query log/threshold, \\analyze FILE.sql for an offline \
     compatibility report, \\rules [load FILE | drop NAME] for rewrite-rule \
     packs";
  let timing = ref verbose in
  let buffer = Buffer.create 256 in
  let obs = Pipeline.obs pipeline in
  let print_traces traces =
    if traces = [] then print_endline "no traces recorded"
    else List.iter (fun qt -> print_string (Obs.trace_to_string qt)) traces
  in
  let rec loop () =
    print_string (if Buffer.length buffer = 0 then "hyperq> " else "   ...> ");
    match read_line () with
    | exception End_of_file -> ()
    | "\\q" -> ()
    | "\\timing" ->
        timing := not !timing;
        Printf.printf "timing %s\n" (if !timing then "on" else "off");
        loop ()
    | "\\cache" ->
        print_endline
          (Hyperq_core.Plan_cache.stats_to_string (Pipeline.cache_stats pipeline));
        loop ()
    | "\\health" ->
        print_endline (Pipeline.health_to_string pipeline);
        loop ()
    | "\\metrics" ->
        print_string (Obs.render_prometheus obs);
        loop ()
    | line when line = "\\trace" || String.length line > 7
                                    && String.sub line 0 7 = "\\trace " ->
        let n =
          if line = "\\trace" then 5
          else
            match int_of_string_opt (String.trim (String.sub line 7 (String.length line - 7))) with
            | Some n when n > 0 -> n
            | _ -> 5
        in
        print_traces (Obs.recent_traces ~n obs);
        loop ()
    | line when line = "\\rules" || String.length line > 7
                                    && String.sub line 0 7 = "\\rules " ->
        (match
           List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
         with
        | [ "\\rules" ] -> print_loaded_packs pipeline
        | [ "\\rules"; "load"; file ] ->
            if not (Sys.file_exists file) then Printf.printf "no such file: %s\n" file
            else (
              match Rules_corpus.load_pack pipeline (read_file file) with
              | Ok r -> print_pack_report file r
              | Error ds ->
                  List.iter
                    (fun d -> Printf.printf "!! %s\n" (Diag.to_string d))
                    ds)
        | [ "\\rules"; "drop"; name ] ->
            if Pipeline.drop_rule_pack pipeline name then
              Printf.printf "dropped %s\n" name
            else Printf.printf "pack %s is not loaded\n" name
        | _ -> print_endline "usage: \\rules | \\rules load FILE | \\rules drop NAME");
        loop ()
    | line when String.length line > 9 && String.sub line 0 9 = "\\analyze " ->
        let file = String.trim (String.sub line 9 (String.length line - 9)) in
        (if not (Sys.file_exists file) then
           Printf.printf "no such file: %s\n" file
         else
           match Sql_error.protect (fun () -> analyze_file file) with
           | Ok rep -> print_string (Analyzer.render_text rep)
           | Error e -> Printf.printf "!! %s\n" (Sql_error.to_string e));
        loop ()
    | line when line = "\\slow" || String.length line > 6
                                   && String.sub line 0 6 = "\\slow " ->
        (if line <> "\\slow" then
           match
             float_of_string_opt
               (String.trim (String.sub line 6 (String.length line - 6)))
           with
           | Some ms when ms >= 0. ->
               Obs.set_slow_threshold obs (ms /. 1000.);
               Printf.printf "slow-query threshold set to %g ms\n" ms
           | _ -> print_endline "usage: \\slow [threshold-ms]");
        Printf.printf "slow-query threshold: %g ms\n"
          (Obs.slow_threshold obs *. 1000.);
        print_traces (Obs.slow_queries obs);
        loop ()
    | line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        if String.contains line ';' then begin
          Buffer.clear buffer;
          List.iter
            (fun stmt ->
              let stmt = String.trim stmt in
              if stmt <> "" then exec_one pipeline session !timing stmt)
            (String.split_on_char ';' text)
        end;
        loop ()
  in
  loop ();
  Pipeline.end_session pipeline session

open Cmdliner

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print timings and backend SQL.")

let sql_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "execute" ] ~docv:"SQL" ~doc:"Statement to run.")

let target_arg =
  Arg.(
    value
    & opt string "ansi-engine"
    & info [ "t"; "target" ] ~docv:"TARGET" ~doc:"Target profile name.")

let rules_files_arg =
  Arg.(
    value & opt_all file []
    & info [ "rules" ] ~docv:"FILE.rules"
        ~doc:"Rewrite-rule pack to screen against the bundled corpus and \
              activate before starting (repeatable; a rejected pack aborts \
              with exit 1).")

let repl_cmd =
  let run verbose rules =
    let pipeline = Pipeline.create () in
    load_rule_files pipeline rules;
    repl pipeline verbose
  in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive Teradata session against the engine")
    Term.(const run $ verbose_arg $ rules_files_arg)

let run_cmd =
  let run verbose rules sql =
    let pipeline = Pipeline.create () in
    load_rule_files pipeline rules;
    exec_one pipeline (Session.create ()) verbose sql
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one statement")
    Term.(const run $ verbose_arg $ rules_files_arg $ sql_arg)

let script_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.sql")
  in
  let run verbose rules file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    let pipeline = Pipeline.create () in
    load_rule_files pipeline rules;
    let session = Session.create () in
    (match
       Sql_error.protect (fun () ->
           Hyperq_sqlparser.Parser.parse_many_spanned
             ~dialect:Hyperq_sqlparser.Dialect.Teradata text)
     with
    | Error e -> Printf.printf "!! %s\n" (Sql_error.to_string e)
    | Ok spanned ->
        List.iter
          (fun (ast, stmt_text) ->
            match
              Sql_error.protect (fun () ->
                  Pipeline.run_statement_ast pipeline ~session
                    ~sql_text:stmt_text ast)
            with
            | Ok o -> render_outcome ~verbose o
            | Error e -> Printf.printf "!! %s\n" (Sql_error.to_string e))
          spanned);
    if verbose then
      Printf.printf "-- plan cache: %s\n"
        (Hyperq_core.Plan_cache.stats_to_string (Pipeline.cache_stats pipeline));
    Pipeline.end_session pipeline session
  in
  Cmd.v (Cmd.info "script" ~doc:"Run a ;-separated SQL script file")
    Term.(const run $ verbose_arg $ rules_files_arg $ file_arg)

let translate_cmd =
  let ddl_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "ddl" ] ~docv:"FILE.sql"
          ~doc:"Schema script run through the pipeline before translating.")
  in
  let run target ddl sql =
    match Capability.find target with
    | None ->
        Printf.eprintf "unknown target %s; try: %s\n" target
          (String.concat ", "
             (List.map (fun c -> c.Capability.name) Capability.all_targets));
        exit 1
    | Some cap -> (
        let pipeline = Pipeline.create () in
        (match ddl with
        | None -> ()
        | Some file -> (
            let ic = open_in file in
            let n = in_channel_length ic in
            let text = really_input_string ic n in
            close_in ic;
            match
              Sql_error.protect (fun () ->
                  ignore (Pipeline.run_script pipeline text))
            with
            | Ok () -> ()
            | Error e ->
                Printf.eprintf "!! schema script failed: %s\n"
                  (Sql_error.to_string e);
                exit 1));
        match
          Sql_error.protect (fun () -> Pipeline.translate pipeline ~cap sql)
        with
        | Ok out -> print_endline out
        | Error e -> Printf.printf "!! %s\n" (Sql_error.to_string e))
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Translate a Teradata statement for a target (no execution). Use \
             --ddl to prime the catalog with a schema script first.")
    Term.(const run $ target_arg $ ddl_arg $ sql_arg)

let analyze_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.sql")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable JSON report.")
  in
  let props_arg =
    Arg.(
      value & flag
      & info [ "props" ]
          ~doc:
            "Emit the statically inferred plan properties (per-column \
             nullability, value intervals, determinism, candidate keys, \
             cardinality bounds, contradictory filters) as JSON instead of \
             the compatibility report.")
  in
  let targets_arg =
    Arg.(
      value & opt_all string []
      & info [ "t"; "target" ] ~docv:"TARGET"
          ~doc:"Target profile(s) to assess (repeatable; default: all).")
  in
  let run json props target_names file =
    let targets =
      match target_names with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun name ->
                 match Capability.find name with
                 | Some cap -> cap
                 | None ->
                     Printf.eprintf "unknown target %s; try: %s\n" name
                       (String.concat ", "
                          (List.map
                             (fun c -> c.Capability.name)
                             Capability.all_targets));
                     exit 1)
               names)
    in
    if props then
      match
        Sql_error.protect (fun () ->
            Analyzer.props_json ~script_name:file (read_file file))
      with
      | Error e ->
          Printf.eprintf "!! %s\n" (Sql_error.to_string e);
          exit 1
      | Ok s -> print_string s
    else
      match Sql_error.protect (fun () -> analyze_file ?targets file) with
      | Error e ->
          Printf.eprintf "!! %s\n" (Sql_error.to_string e);
          exit 1
      | Ok rep ->
          print_string
            (if json then Analyzer.render_json rep
             else Analyzer.render_text rep);
          if Analyzer.has_errors rep then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Offline workload compatibility analysis: classify every \
             statement of a SQL script (direct / rewrite / emulate / \
             unsupported) per target, with lint and plan-validator \
             diagnostics — no execution. Exits 1 if any statement fails to \
             parse, bind, or validate. With --props, emit the statically \
             inferred plan properties instead.")
    Term.(const run $ json_arg $ props_arg $ targets_arg $ file_arg)

let targets_cmd =
  let run () =
    List.iter
      (fun c -> Printf.printf "%s\n" c.Capability.name)
      Capability.all_targets
  in
  Cmd.v (Cmd.info "targets" ~doc:"List modeled target profiles") Term.(const run $ const ())

let serve_cmd =
  let port_arg =
    Arg.(value & opt int 10250 & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
           ~doc:"Address to bind.")
  in
  let inflight_arg =
    Arg.(value & opt int 32 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Statements executing concurrently; excess queues, then sheds.")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Statements waiting for an execution slot.")
  in
  let queue_timeout_arg =
    Arg.(value & opt float 2.0 & info [ "queue-timeout" ] ~docv:"SECONDS"
           ~doc:"Longest a statement may wait for a slot before being shed.")
  in
  let workers_arg =
    Arg.(value & opt int 64 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker threads (= concurrently served connections).")
  in
  let drain_timeout_arg =
    Arg.(value & opt float 30. & info [ "drain-timeout" ] ~docv:"SECONDS"
           ~doc:"On SIGTERM/SIGINT: how long to wait for inflight statements.")
  in
  let latency_arg =
    Arg.(value & opt float 0. & info [ "backend-latency" ] ~docv:"SECONDS"
           ~doc:"Simulated backend round trip per request (load testing).")
  in
  let sf_arg =
    Arg.(value & opt (some float) None & info [ "tpch" ] ~docv:"SF"
           ~doc:"Load TPC-H at this scale factor before serving.")
  in
  let run port host inflight queue queue_timeout workers drain_timeout latency
      sf rules =
    let module Server = Hyperq_net.Server in
    let module Admission = Hyperq_net.Admission in
    let pipeline = Pipeline.create ~request_latency_s:latency () in
    load_rule_files pipeline rules;
    (match sf with
    | None -> ()
    | Some sf ->
        Printf.printf "loading TPC-H at SF %.3f...\n%!" sf;
        ignore (Hyperq_workload.Tpch.setup ~sf pipeline));
    let server =
      Server.start
        ~config:
          {
            Server.default_config with
            host;
            port;
            workers;
            admission =
              {
                Admission.default_config with
                max_inflight = inflight;
                max_queue = queue;
                queue_timeout_s = queue_timeout;
              };
          }
        (Hyperq_core.Gateway.create pipeline)
    in
    Printf.printf
      "hyperq front door listening on %s:%d (workers=%d, max-inflight=%d, \
       queue=%d)\n%!"
      host (Server.port server) workers inflight queue;
    (* SIGTERM/SIGINT start the drain: stop accepting, shed queued work with
       wire code 3897, finish and answer every admitted statement *)
    let quit = Mutex.create () in
    let quit_cond = Condition.create () in
    let signalled = ref false in
    let on_signal _ =
      Mutex.lock quit;
      signalled := true;
      Condition.signal quit_cond;
      Mutex.unlock quit
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Mutex.lock quit;
    while not !signalled do
      Condition.wait quit_cond quit
    done;
    Mutex.unlock quit;
    Printf.printf "drain: waiting up to %gs for inflight statements...\n%!"
      drain_timeout;
    let dr = Server.shutdown ~drain:true ~timeout_s:drain_timeout server in
    let st = Server.stats server in
    Printf.printf
      "drained=%b inflight_at_signal=%d statements=%d connections=%d \
       shed=%d protocol_errors=%d\n%!"
      dr.Server.dr_drained dr.Server.dr_inflight_at_signal
      dr.Server.dr_completed st.Server.sv_connections
      (Admission.shed_total st.Server.sv_admission)
      st.Server.sv_protocol_errors;
    if not dr.Server.dr_drained then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the WP-A TCP front door: real sockets, admission control, \
             overload shedding with Teradata wire codes, SIGTERM drain.")
    Term.(
      const run $ port_arg $ host_arg $ inflight_arg $ queue_arg
      $ queue_timeout_arg $ workers_arg $ drain_timeout_arg $ latency_arg
      $ sf_arg $ rules_files_arg)

let rules_cmd =
  let no_diff_arg =
    Arg.(
      value & flag
      & info [ "no-diff" ]
          ~doc:"Skip the differential-execution phase (parser, compiler and \
                corpus screening still gate the pack).")
  in
  let load_cmd =
    let files_arg =
      Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.rules")
    in
    let run no_diff files =
      let pipeline = Pipeline.create () in
      load_rule_files ~diff:(not no_diff) pipeline files;
      Printf.printf "%d pack(s) active: %s\n"
        (List.length (Pipeline.default_rule_packs pipeline))
        (String.concat ", " (Pipeline.default_rule_packs pipeline))
    in
    Cmd.v
      (Cmd.info "load"
         ~doc:"Screen pack file(s) against the bundled analyzer corpus plus \
               a differential execution sample, and install the survivors. \
               Any validator violation or result mismatch prints a spanned \
               diagnostic and exits 1.")
      Term.(const run $ no_diff_arg $ files_arg)
  in
  let list_cmd =
    let files_arg =
      Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.rules")
    in
    let run files =
      let ok = ref true in
      List.iter
        (fun file ->
          let compiled =
            match Rules_dsl.parse (read_file file) with
            | Error ds -> Error ds
            | Ok p -> Rules_compile.compile p
          in
          match compiled with
          | Error ds ->
              ok := false;
              print_rule_diags stderr file ds
          | Ok cp ->
              Printf.printf "%s v%d (%s): %d rule(s)\n"
                cp.Rules_compile.cp_name cp.Rules_compile.cp_version file
                (List.length cp.Rules_compile.cp_rules);
              List.iter
                (fun (r : Rules_compile.crule) ->
                  Printf.printf "  %-28s %s\n" r.Rules_compile.cr_id
                    (if r.Rules_compile.cr_rel <> None then "relational"
                     else "scalar"))
                cp.Rules_compile.cp_rules)
        files;
      if not !ok then exit 1
    in
    Cmd.v
      (Cmd.info "list"
         ~doc:"Parse and statically check pack file(s) without screening: \
               print each pack's rules, or the rejection diagnostics \
               (exit 1).")
      Term.(const run $ files_arg)
  in
  let drop_cmd =
    let name_arg =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"PACK")
    in
    let files_arg =
      Arg.(value & pos_right 0 file [] & info [] ~docv:"FILE.rules")
    in
    let run name files =
      let pipeline = Pipeline.create () in
      load_rule_files pipeline files;
      if Pipeline.drop_rule_pack pipeline name then begin
        let reg = Pipeline.rules_registry pipeline in
        Printf.printf "dropped %s; %d pack(s) remain (registry epoch %d)\n"
          name
          (List.length (Registry.list_packs reg))
          (Registry.epoch reg)
      end
      else begin
        Printf.eprintf "pack %s is not loaded\n" name;
        exit 1
      end
    in
    Cmd.v
      (Cmd.info "drop"
         ~doc:"Load the given pack file(s), then drop PACK by name — \
               demonstrates deactivation and the registry epoch bump that \
               invalidates cached plans. Exits 1 if PACK was not loaded.")
      Term.(const run $ name_arg $ files_arg)
  in
  Cmd.group
    (Cmd.info "rules"
       ~doc:"Manage runtime-loadable rewrite-rule packs: validator-gated \
             load, static listing, drop.")
    [ load_cmd; list_cmd; drop_cmd ]

let tpch_cmd =
  let sf_arg =
    Arg.(value & opt float 0.005 & info [ "sf" ] ~docv:"SF" ~doc:"Scale factor.")
  in
  let run verbose rules sf =
    let pipeline = Pipeline.create () in
    load_rule_files pipeline rules;
    Printf.printf "loading TPC-H at SF %.3f...\n%!" sf;
    let _ = Hyperq_workload.Tpch.setup ~sf pipeline in
    List.iter
      (fun (n, c) -> Printf.printf "  %-9s %7d rows\n" n c)
      (Hyperq_workload.Tpch.row_counts pipeline);
    repl pipeline verbose
  in
  Cmd.v (Cmd.info "tpch" ~doc:"Load TPC-H through Hyper-Q and start a repl")
    Term.(const run $ verbose_arg $ rules_files_arg $ sf_arg)

let () =
  let doc = "Adaptive Data Virtualization: Teradata applications on a different backend" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "hyperq" ~version:"1.0.0" ~doc)
          [
            repl_cmd; run_cmd; script_cmd; translate_cmd; analyze_cmd;
            targets_cmd; serve_cmd; rules_cmd; tpch_cmd;
          ]))
