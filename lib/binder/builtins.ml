(** Built-in function normalization.

    The paper notes that "names of otherwise standard features can be dealt
    with in the system specific serializer (e.g. int8 vs bigint, or dateadd
    vs add_date)" (§5). We normalize every dialect spelling to one canonical
    name at bind time; serializers map canonical names back to the target
    spelling, and the engine implements the canonical set. *)

open Hyperq_sqlvalue

(* dialect spelling -> canonical name *)
let canonical_name = function
  | "CHARS" | "CHARACTERS" | "CHAR_LENGTH" | "CHARACTER_LENGTH" | "LENGTH"
  | "LEN" ->
      "CHARACTER_LENGTH"
  | "SUBSTR" | "SUBSTRING" -> "SUBSTRING"
  | "INDEX" | "POSITION" -> "POSITION"
  | "OREPLACE" | "REPLACE" -> "REPLACE"
  | "NVL" | "COALESCE" -> "COALESCE"
  | "UID" | "USER" | "SESSION_USER" | "CURRENT_USER" -> "CURRENT_USER"
  | "DATEADD" | "ADD_DATE" -> "ADD_DAYS"
  | n -> n

type kind =
  | Scalar of (Dtype.t list -> Dtype.t)
      (** result type from argument types *)
  | Aggregate of Hyperq_xtra.Xtra.agg_func
  | Window_rank of Hyperq_xtra.Xtra.window_func

(** Determinism class of a built-in, in Postgres' vocabulary: [Immutable]
    functions always return the same value for the same arguments,
    [Stable] ones are fixed within a statement but drift across statements
    (CURRENT_TIMESTAMP and friends), [Volatile] ones may differ per call
    even within one statement (RANDOM-alikes). The rules differential gate
    uses this to skip statements whose results legitimately differ between
    two executions, and the property-inference layer refuses to treat
    non-[Immutable] expressions as foldable. *)
type determinism = Immutable | Stable | Volatile

let determinism name =
  match canonical_name name with
  | "CURRENT_DATE" | "CURRENT_TIME" | "CURRENT_TIMESTAMP" | "CURRENT_USER" ->
      Stable
  | "RANDOM" | "RAND" | "SAMPLEID" | "NEWID" | "UUID" | "HASHROW" -> Volatile
  | _ -> Immutable

let determinism_rank = function Immutable -> 0 | Stable -> 1 | Volatile -> 2

(** Least upper bound: the weaker (less deterministic) of the two. *)
let determinism_join a b = if determinism_rank a >= determinism_rank b then a else b

let determinism_name = function
  | Immutable -> "immutable"
  | Stable -> "stable"
  | Volatile -> "volatile"

let numeric_result tys =
  match tys with
  | [ t ] when Dtype.is_numeric t -> t
  | [ t; _ ] when Dtype.is_numeric t -> t
  | _ -> Dtype.Float

let common_result tys =
  match tys with
  | [] -> Dtype.Unknown
  | t :: rest ->
      List.fold_left
        (fun acc ty ->
          match Dtype.common_super acc ty with Some t -> t | None -> acc)
        t rest

let varchar_result _ = Dtype.varchar ()
let int_result _ = Dtype.Int
let float_result _ = Dtype.Float
let date_result _ = Dtype.Date

(* canonical name -> (kind, min arity, max arity; -1 = unbounded) *)
let table : (string, kind * int * int) Hashtbl.t = Hashtbl.create 64

let () =
  let add name kind lo hi = Hashtbl.replace table name (kind, lo, hi) in
  add "CHARACTER_LENGTH" (Scalar int_result) 1 1;
  add "SUBSTRING" (Scalar varchar_result) 2 3;
  add "UPPER" (Scalar varchar_result) 1 1;
  add "LOWER" (Scalar varchar_result) 1 1;
  add "TRIM" (Scalar varchar_result) 1 2;
  add "LTRIM" (Scalar varchar_result) 1 2;
  add "RTRIM" (Scalar varchar_result) 1 2;
  add "REVERSE" (Scalar varchar_result) 1 1;
  add "POSITION" (Scalar int_result) 2 2;
  add "REPLACE" (Scalar varchar_result) 3 3;
  add "COALESCE" (Scalar common_result) 1 (-1);
  add "NULLIF"
    (Scalar (function t :: _ -> t | [] -> Dtype.Unknown))
    2 2;
  add "ABS" (Scalar numeric_result) 1 1;
  add "ROUND" (Scalar numeric_result) 1 2;
  add "TRUNC" (Scalar numeric_result) 1 2;
  add "FLOOR" (Scalar numeric_result) 1 1;
  add "CEILING" (Scalar numeric_result) 1 1;
  add "SQRT" (Scalar float_result) 1 1;
  add "EXP" (Scalar float_result) 1 1;
  add "LN" (Scalar float_result) 1 1;
  add "LOG" (Scalar float_result) 1 1;
  add "POWER" (Scalar float_result) 2 2;
  add "ADD_MONTHS" (Scalar date_result) 2 2;
  add "ADD_DAYS" (Scalar date_result) 2 2;
  add "LAST_DAY" (Scalar date_result) 1 1;
  add "DAY_OF_WEEK" (Scalar int_result) 1 1;
  add "CURRENT_DATE" (Scalar date_result) 0 0;
  add "CURRENT_TIME" (Scalar (fun _ -> Dtype.Time)) 0 0;
  add "CURRENT_TIMESTAMP" (Scalar (fun _ -> Dtype.Timestamp)) 0 0;
  add "CURRENT_USER" (Scalar varchar_result) 0 0;
  add "GREATEST" (Scalar common_result) 1 (-1);
  add "LEAST" (Scalar common_result) 1 (-1);
  add "CONCAT" (Scalar varchar_result) 1 (-1);
  (* PERIOD accessors: survive decomposition of the PERIOD type (§2.2.2) *)
  add "PERIOD_BEGIN" (Scalar date_result) 1 1;
  add "PERIOD_END" (Scalar date_result) 1 1;
  add "COUNT" (Aggregate Hyperq_xtra.Xtra.Count) 1 1;
  add "SUM" (Aggregate Hyperq_xtra.Xtra.Sum) 1 1;
  add "AVG" (Aggregate Hyperq_xtra.Xtra.Avg) 1 1;
  add "MIN" (Aggregate Hyperq_xtra.Xtra.Min) 1 1;
  add "MAX" (Aggregate Hyperq_xtra.Xtra.Max) 1 1;
  add "RANK" (Window_rank Hyperq_xtra.Xtra.W_rank) 0 0;
  add "DENSE_RANK" (Window_rank Hyperq_xtra.Xtra.W_dense_rank) 0 0;
  add "ROW_NUMBER" (Window_rank Hyperq_xtra.Xtra.W_row_number) 0 0;
  add "LAG" (Window_rank Hyperq_xtra.Xtra.W_lag) 1 3;
  add "LEAD" (Window_rank Hyperq_xtra.Xtra.W_lead) 1 3;
  add "FIRST_VALUE" (Window_rank Hyperq_xtra.Xtra.W_first_value) 1 1;
  add "LAST_VALUE" (Window_rank Hyperq_xtra.Xtra.W_last_value) 1 1

let lookup name = Hashtbl.find_opt table (canonical_name name)

let is_aggregate name =
  match lookup name with Some (Aggregate _, _, _) -> true | _ -> false
