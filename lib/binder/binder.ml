(** Binder / Algebrizer: AST → XTRA (paper §4.2, §5.2).

    Performs metadata lookup, name resolution and type derivation, and the
    binding-time rewrites the paper assigns to this component (Table 2):
    QUALIFY expansion, Teradata named-expression ("chained projection")
    substitution, implicit-join FROM expansion, ordinal GROUP BY resolution,
    view expansion and DML-on-view rewriting. Target-dependent rewrites are
    left to the Transformer. *)

open Hyperq_sqlvalue
open Hyperq_sqlparser
module Xtra = Hyperq_xtra.Xtra
module Catalog = Hyperq_catalog.Catalog

(* ------------------------------------------------------------------ *)
(* Context and scopes                                                   *)
(* ------------------------------------------------------------------ *)

type ctx = {
  catalog : Catalog.t;
  dialect : Dialect.t;
  mutable next_id : int;
  mutable next_param : int;
  mutable features : string list;  (** dialect features observed, for §7.1 *)
}

let create_ctx ?(dialect = Dialect.Teradata) catalog =
  { catalog; dialect; next_id = 1; next_param = 0; features = [] }

let note ctx feature =
  if not (List.mem feature ctx.features) then
    ctx.features <- feature :: ctx.features

let fresh_col ctx name ty =
  let id = ctx.next_id in
  ctx.next_id <- id + 1;
  { Xtra.id; name = String.uppercase_ascii name; ty }

type range = { r_alias : string; r_cols : Xtra.col list }

type scope = {
  ranges : range list;
  select_aliases : (string * Xtra.scalar) list;
      (** Teradata named expressions visible in the same block *)
  visible_ctes : (string * Xtra.schema) list;
  parent : scope option;
}

let empty_scope =
  { ranges = []; select_aliases = []; visible_ctes = []; parent = None }

let child_scope parent = { empty_scope with visible_ctes = parent.visible_ctes; parent = Some parent }

let up n = String.uppercase_ascii n

let is_teradata ctx = Dialect.equal ctx.dialect Dialect.Teradata

let find_cte scope name =
  let rec go s =
    match List.assoc_opt (up name) (List.map (fun (n, x) -> (up n, x)) s.visible_ctes) with
    | Some schema -> Some schema
    | None -> ( match s.parent with Some p -> go p | None -> None)
  in
  go scope

(* ------------------------------------------------------------------ *)
(* Types and literals                                                   *)
(* ------------------------------------------------------------------ *)

let dtype_of_typename = function
  | Ast.Ty_int -> Dtype.Int
  | Ast.Ty_float -> Dtype.Float
  | Ast.Ty_decimal (p, s) -> Dtype.Decimal { precision = p; scale = s }
  | Ast.Ty_char n | Ast.Ty_varchar n ->
      Dtype.Varchar { max_len = n; case_sensitive = false }
  | Ast.Ty_date -> Dtype.Date
  | Ast.Ty_time -> Dtype.Time
  | Ast.Ty_timestamp -> Dtype.Timestamp
  | Ast.Ty_interval (Ast.Iu_year | Ast.Iu_month) -> Dtype.Interval_ym
  | Ast.Ty_interval _ -> Dtype.Interval_ds
  | Ast.Ty_period `Date -> Dtype.Period Dtype.Pdate
  | Ast.Ty_period `Timestamp -> Dtype.Period Dtype.Ptimestamp
  | Ast.Ty_byte _ -> Dtype.Bytes

let parse_time_literal s =
  match String.split_on_char ':' (String.trim s) with
  | [ h; m; sec ] -> (
      let sec, frac =
        match String.index_opt sec '.' with
        | None -> (sec, 0L)
        | Some i ->
            let f = String.sub sec (i + 1) (String.length sec - i - 1) in
            let f = if String.length f > 6 then String.sub f 0 6 else f in
            let scale = 6 - String.length f in
            ( String.sub sec 0 i,
              Int64.mul (Int64.of_string f)
                (Int64.of_float (10. ** float_of_int scale)) )
      in
      match (int_of_string_opt h, int_of_string_opt m, int_of_string_opt sec) with
      | Some h, Some m, Some sec ->
          Int64.add
            (Int64.mul (Int64.of_int (((h * 60) + m) * 60 + sec)) 1_000_000L)
            frac
      | _ -> Sql_error.bind_error "invalid time literal %S" s)
  | _ -> Sql_error.bind_error "invalid time literal %S" s

let parse_timestamp_literal s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None ->
      let d = Sql_date.of_string s in
      Int64.mul (Int64.of_int (Sql_date.to_epoch_days d)) 86_400_000_000L
  | Some i ->
      let d = Sql_date.of_string (String.sub s 0 i) in
      let t = parse_time_literal (String.sub s (i + 1) (String.length s - i - 1)) in
      Int64.add (Int64.mul (Int64.of_int (Sql_date.to_epoch_days d)) 86_400_000_000L) t

let bind_literal = function
  | Ast.L_int n -> Value.Int n
  | Ast.L_decimal s -> Value.Decimal (Decimal.of_string s)
  | Ast.L_float f -> Value.Float f
  | Ast.L_string s -> Value.Varchar s
  | Ast.L_null -> Value.Null
  | Ast.L_date s -> Value.Date (Sql_date.of_string s)
  | Ast.L_time s -> Value.Time (parse_time_literal s)
  | Ast.L_timestamp s -> Value.Timestamp (parse_timestamp_literal s)
  | Ast.L_interval (s, unit) -> (
      let n =
        match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> Sql_error.bind_error "invalid interval literal %S" s
      in
      match unit with
      | Ast.Iu_year -> Value.Interval (Interval.of_years n)
      | Ast.Iu_month -> Value.Interval (Interval.of_months n)
      | Ast.Iu_day -> Value.Interval (Interval.of_days n)
      | Ast.Iu_hour -> Value.Interval (Interval.of_hours n)
      | Ast.Iu_minute -> Value.Interval (Interval.of_minutes n)
      | Ast.Iu_second -> Value.Interval (Interval.of_seconds n))

let xtra_field = function
  | Ast.Year -> Xtra.Year
  | Ast.Month -> Xtra.Month
  | Ast.Day -> Xtra.Day
  | Ast.Hour -> Xtra.Hour
  | Ast.Minute -> Xtra.Minute
  | Ast.Second -> Xtra.Second

let xtra_cmp = function
  | Ast.Ceq -> Xtra.Eq
  | Ast.Cneq -> Xtra.Neq
  | Ast.Clt -> Xtra.Lt
  | Ast.Clte -> Xtra.Lte
  | Ast.Cgt -> Xtra.Gt
  | Ast.Cgte -> Xtra.Gte

(* ------------------------------------------------------------------ *)
(* Name resolution                                                      *)
(* ------------------------------------------------------------------ *)

let find_in_range range name =
  List.find_opt (fun (c : Xtra.col) -> c.Xtra.name = up name) range.r_cols

let resolve_column ctx scope (q : Ast.qualified) : Xtra.scalar =
  let rec search s =
    match q with
    | [ name ] -> (
        let hits =
          List.filter_map (fun r -> find_in_range r name) s.ranges
        in
        match hits with
        | [ c ] -> Some (Xtra.Col_ref c)
        | _ :: _ :: _ ->
            Sql_error.bind_error "ambiguous column reference %s" name
        | [] -> (
            (* Teradata named expressions: select aliases usable anywhere in
               the same block (a dialect feature; ANSI resolves aliases only
               in ORDER BY, which bind_query handles separately) *)
            match
              if is_teradata ctx then List.assoc_opt (up name) s.select_aliases
              else None
            with
            | Some e ->
                note ctx "chained_projection";
                Some e
            | None -> (
                match s.parent with Some p -> search p | None -> None)))
    | [ qual; name ] -> (
        match
          List.find_opt (fun r -> r.r_alias = up qual) s.ranges
        with
        | Some r -> (
            match find_in_range r name with
            | Some c -> Some (Xtra.Col_ref c)
            | None ->
                Sql_error.bind_error "column %s not found in %s" name qual)
        | None -> ( match s.parent with Some p -> search p | None -> None))
    | _ -> Sql_error.bind_error "unsupported qualified name depth"
  in
  match search scope with
  | Some e -> e
  | None -> (
      match q with
      | [ name ] when String.length name > 0 && name.[0] = ':' ->
          Sql_error.bind_error "unresolved macro parameter %s" name
      | _ ->
          Sql_error.bind_error "column %s not found" (String.concat "." q))

(* ------------------------------------------------------------------ *)
(* Expression binding                                                   *)
(* ------------------------------------------------------------------ *)

let rec bind_expr ctx scope (e : Ast.expr) : Xtra.scalar =
  match e with
  | Ast.E_lit l -> Xtra.Const (bind_literal l)
  | Ast.E_column q -> resolve_column ctx scope q
  | Ast.E_param _ ->
      ctx.next_param <- ctx.next_param + 1;
      Xtra.Param ctx.next_param
  | Ast.E_binop (op, a, b) -> bind_binop ctx scope op a b
  | Ast.E_unop (Ast.Neg, a) ->
      Xtra.Arith (Xtra.Sub, Xtra.cint 0, bind_expr ctx scope a)
  | Ast.E_unop (Ast.Not, a) -> Xtra.Logic_not (bind_expr ctx scope a)
  | Ast.E_fun { name; distinct; args; star } ->
      bind_function ctx scope ~name ~distinct ~args ~star
  | Ast.E_cast (a, ty) -> Xtra.Cast (bind_expr ctx scope a, dtype_of_typename ty)
  | Ast.E_extract (f, a) -> Xtra.Extract (xtra_field f, bind_expr ctx scope a)
  | Ast.E_case { operand; branches; else_branch } ->
      let branches =
        match operand with
        | None ->
            List.map
              (fun (c, v) -> (bind_expr ctx scope c, bind_expr ctx scope v))
              branches
        | Some op ->
            let op = bind_expr ctx scope op in
            List.map
              (fun (c, v) ->
                (Xtra.Cmp (Xtra.Eq, op, bind_expr ctx scope c), bind_expr ctx scope v))
              branches
      in
      let else_branch = Option.map (bind_expr ctx scope) else_branch in
      let ty =
        let tys =
          List.map (fun (_, v) -> Xtra.type_of_scalar v) branches
          @ (match else_branch with
            | Some e -> [ Xtra.type_of_scalar e ]
            | None -> [])
        in
        Builtins.common_result tys
      in
      Xtra.Case { branches; else_branch; ty }
  | Ast.E_in { lhs; negated; rhs = Ast.In_list items } ->
      Xtra.In_list
        {
          arg = bind_expr ctx scope lhs;
          items = List.map (bind_expr ctx scope) items;
          negated;
        }
  | Ast.E_in { lhs; negated; rhs = Ast.In_subquery q } ->
      let sub = bind_query ctx (child_scope scope) q in
      let args =
        match lhs with
        | Ast.E_tuple es -> List.map (bind_expr ctx scope) es
        | e -> [ bind_expr ctx scope e ]
      in
      if List.length args <> List.length (Xtra.schema_of sub) then
        Sql_error.bind_error "IN subquery arity mismatch";
      Xtra.In_subquery { args; subquery = sub; negated }
  | Ast.E_between { arg; low; high; negated } ->
      let a = bind_expr ctx scope arg in
      let body =
        Xtra.Logic_and
          ( Xtra.Cmp (Xtra.Gte, a, bind_expr ctx scope low),
            Xtra.Cmp (Xtra.Lte, a, bind_expr ctx scope high) )
      in
      if negated then Xtra.Logic_not body else body
  | Ast.E_like { arg; pattern; escape; negated } ->
      Xtra.Like
        {
          arg = bind_expr ctx scope arg;
          pattern = bind_expr ctx scope pattern;
          escape = Option.map (bind_expr ctx scope) escape;
          negated;
        }
  | Ast.E_is_null (a, negated) -> Xtra.Is_null (bind_expr ctx scope a, negated)
  | Ast.E_exists q -> Xtra.Exists (bind_query ctx (child_scope scope) q)
  | Ast.E_scalar_subquery q ->
      Xtra.Scalar_subquery (bind_query ctx (child_scope scope) q)
  | Ast.E_quantified { lhs; op; quant; subquery } ->
      if List.length lhs > 1 then note ctx "vector_subquery";
      let sub = bind_query ctx (child_scope scope) subquery in
      let sub_arity = List.length (Xtra.schema_of sub) in
      if List.length lhs <> sub_arity then
        Sql_error.bind_error
          "quantified comparison arity mismatch: %d vs %d (subquery)"
          (List.length lhs) sub_arity;
      Xtra.Quantified
        {
          lhs = List.map (bind_expr ctx scope) lhs;
          op = xtra_cmp op;
          quant = (match quant with Ast.Any -> Xtra.Any | Ast.All -> Xtra.All);
          subquery = sub;
        }
  | Ast.E_tuple _ ->
      Sql_error.bind_error "row value constructor not valid in this context"
  | Ast.E_window w -> bind_window ctx scope w.func w.args w.partition w.order w.frame
  | Ast.E_td_rank items ->
      (* Teradata RANK(x DESC): order spec in argument position, no OVER *)
      note ctx "td_rank";
      let worder = List.map (bind_order_key ctx scope) items in
      Xtra.Window_ref
        { wfunc = Xtra.W_rank; wargs = []; partition = []; worder; wframe = None }

and bind_binop ctx scope op a b =
  let ba = bind_expr ctx scope a and bb = bind_expr ctx scope b in
  let cmp c =
    (* Teradata date/int duality: note the feature here; the normalization
       pass of the Transformer expands the date side (paper §5.2) *)
    let ta = Xtra.type_of_scalar ba and tb = Xtra.type_of_scalar bb in
    (match (ta, tb) with
    | Dtype.Date, Dtype.Int | Dtype.Int, Dtype.Date ->
        if is_teradata ctx then note ctx "date_int_comparison"
        else
          Sql_error.bind_error "cannot compare DATE with INTEGER in this dialect"
    | ta, tb when Dtype.common_super ta tb = None && ta <> Dtype.Unknown && tb <> Dtype.Unknown ->
        Sql_error.bind_error "cannot compare %s with %s" (Dtype.to_string ta)
          (Dtype.to_string tb)
    | _ -> ());
    Xtra.Cmp (c, ba, bb)
  in
  match op with
  | Ast.Add -> Xtra.Arith (Xtra.Add, ba, bb)
  | Ast.Sub -> Xtra.Arith (Xtra.Sub, ba, bb)
  | Ast.Mul -> Xtra.Arith (Xtra.Mul, ba, bb)
  | Ast.Div -> Xtra.Arith (Xtra.Div, ba, bb)
  | Ast.Modulo -> Xtra.Arith (Xtra.Modulo, ba, bb)
  | Ast.Concat -> Xtra.Concat (ba, bb)
  | Ast.Eq -> cmp Xtra.Eq
  | Ast.Neq -> cmp Xtra.Neq
  | Ast.Lt -> cmp Xtra.Lt
  | Ast.Lte -> cmp Xtra.Lte
  | Ast.Gt -> cmp Xtra.Gt
  | Ast.Gte -> cmp Xtra.Gte
  | Ast.And -> Xtra.Logic_and (ba, bb)
  | Ast.Or -> Xtra.Logic_or (ba, bb)

and bind_function ctx scope ~name ~distinct ~args ~star =
  let canonical = Builtins.canonical_name name in
  if star then
    if canonical = "COUNT" then
      Xtra.Agg_ref { afunc = Xtra.Count_star; adistinct = false; aarg = None }
    else Sql_error.bind_error "%s(*) is not valid" name
  else
    match Builtins.lookup canonical with
    | Some (Builtins.Aggregate afunc, _, _) -> (
        match args with
        | [ a ] ->
            Xtra.Agg_ref
              { afunc; adistinct = distinct; aarg = Some (bind_expr ctx scope a) }
        | _ -> Sql_error.bind_error "%s takes exactly one argument" canonical)
    | Some (Builtins.Window_rank _, _, _) ->
        Sql_error.bind_error "window function %s requires an OVER clause" name
    | Some (Builtins.Scalar result_ty, lo, hi) ->
        let n = List.length args in
        if n < lo || (hi >= 0 && n > hi) then
          Sql_error.bind_error "wrong number of arguments for %s" canonical;
        let bargs = List.map (bind_expr ctx scope) args in
        (* bind-time lowerings of pure renamings *)
        let mk name args =
          let tys = List.map Xtra.type_of_scalar args in
          Xtra.Func { name; args; ty = result_ty tys }
        in
        (match (canonical, bargs) with
        | "CONCAT", x :: rest ->
            List.fold_left (fun acc a -> Xtra.Concat (acc, a)) x rest
        | _, _ -> (
            match (up name, bargs) with
            | "ZEROIFNULL", [ x ] ->
                note ctx "td_null_functions";
                Xtra.Func
                  {
                    name = "COALESCE";
                    args = [ x; Xtra.cint 0 ];
                    ty = Xtra.type_of_scalar x;
                  }
            | _ -> mk canonical bargs))
    | None -> (
        match (up name, args) with
        | "ZEROIFNULL", [ a ] ->
            note ctx "td_null_functions";
            let x = bind_expr ctx scope a in
            Xtra.Func
              { name = "COALESCE"; args = [ x; Xtra.cint 0 ]; ty = Xtra.type_of_scalar x }
        | "NULLIFZERO", [ a ] ->
            note ctx "td_null_functions";
            let x = bind_expr ctx scope a in
            Xtra.Func
              { name = "NULLIF"; args = [ x; Xtra.cint 0 ]; ty = Xtra.type_of_scalar x }
        | _ -> Sql_error.bind_error "unknown function %s" name)

and bind_window ctx scope func args partition order frame =
  let canonical = Builtins.canonical_name func in
  let wfunc =
    match Builtins.lookup canonical with
    | Some (Builtins.Window_rank w, _, _) -> w
    | Some (Builtins.Aggregate a, _, _) -> Xtra.W_agg a
    | _ -> Sql_error.bind_error "%s is not a window function" func
  in
  let wfunc =
    (* COUNT star OVER *)
    match (wfunc, args) with
    | Xtra.W_agg Xtra.Count, [] -> Xtra.W_agg Xtra.Count_star
    | w, _ -> w
  in
  let wargs = List.map (bind_expr ctx scope) args in
  let partition = List.map (bind_expr ctx scope) partition in
  let worder = List.map (bind_order_key ctx scope) order in
  let wframe = Option.map (bind_frame ctx scope) frame in
  Xtra.Window_ref { wfunc; wargs; partition; worder; wframe }

and bind_frame ctx scope (f : Ast.frame) : Xtra.frame =
  let bound = function
    | Ast.Unbounded_preceding -> Xtra.Unbounded_preceding
    | Ast.Unbounded_following -> Xtra.Unbounded_following
    | Ast.Current_row -> Xtra.Current_row
    | Ast.Preceding e -> (
        match bind_expr ctx scope e with
        | Xtra.Const (Value.Int n) -> Xtra.Preceding (Int64.to_int n)
        | _ -> Sql_error.bind_error "frame bound must be an integer literal")
    | Ast.Following e -> (
        match bind_expr ctx scope e with
        | Xtra.Const (Value.Int n) -> Xtra.Following (Int64.to_int n)
        | _ -> Sql_error.bind_error "frame bound must be an integer literal")
  in
  {
    Xtra.frame_unit = f.Ast.frame_unit;
    frame_start = bound f.Ast.frame_start;
    frame_end =
      (match f.Ast.frame_end with
      | Some b -> bound b
      | None -> Xtra.Current_row);
  }

and bind_order_key ctx scope (i : Ast.order_item) : Xtra.sort_key =
  let key = bind_expr ctx scope i.Ast.sort_expr in
  let dir = match i.Ast.dir with Ast.Asc -> Xtra.Asc | Ast.Desc -> Xtra.Desc in
  let nulls =
    match i.Ast.nulls with
    | Ast.Nulls_first -> Xtra.Nulls_first
    | Ast.Nulls_last -> Xtra.Nulls_last
    | Ast.Nulls_default -> (
        (* Teradata (and the ANSI default we model): NULLs sort as the
           lowest values -> FIRST on ASC, LAST on DESC. Divergent defaults
           between systems are exactly the subtle-correctness trap the paper
           calls out (§2.1); the serializer makes the choice explicit. *)
        match dir with Xtra.Asc -> Xtra.Nulls_first | Xtra.Desc -> Xtra.Nulls_last)
  in
  { Xtra.key; dir; nulls }

(* ------------------------------------------------------------------ *)
(* Table references                                                     *)
(* ------------------------------------------------------------------ *)

and range_aliases_of_table_ref (t : Ast.table_ref) : string list =
  match t with
  | Ast.T_named { name; alias; _ } ->
      [ up (match alias with Some a -> a | None -> List.nth name (List.length name - 1)) ]
  | Ast.T_subquery { alias; _ } -> [ up alias ]
  | Ast.T_join { left; right; _ } ->
      range_aliases_of_table_ref left @ range_aliases_of_table_ref right

and bind_table_ref ctx scope (t : Ast.table_ref) : Xtra.rel * range list =
  match t with
  | Ast.T_named { name; alias; col_aliases } -> (
      let base_name = List.nth name (List.length name - 1) in
      let alias_name = up (match alias with Some a -> a | None -> base_name) in
      match find_cte scope base_name with
      | Some schema ->
          let fresh =
            List.map (fun (c : Xtra.col) -> fresh_col ctx c.Xtra.name c.Xtra.ty) schema
          in
          let fresh = rename_cols ctx fresh col_aliases in
          ( Xtra.Cte_ref { cte_name = up base_name; ref_schema = fresh },
            [ { r_alias = alias_name; r_cols = fresh } ] )
      | None -> (
          match Catalog.find_view ctx.catalog base_name with
          | Some view ->
              let rel = bind_view ctx scope view in
              let schema = Xtra.schema_of rel in
              let proj =
                List.map
                  (fun (c : Xtra.col) ->
                    (fresh_col ctx c.Xtra.name c.Xtra.ty, Xtra.Col_ref c))
                  schema
              in
              let proj =
                List.map2
                  (fun (c, e) new_name ->
                    ({ c with Xtra.name = up new_name }, e))
                  proj
                  (pad_names (List.map (fun ((c : Xtra.col), _) -> c.Xtra.name) proj)
                     (if col_aliases <> [] then col_aliases else view.Catalog.view_columns))
              in
              let rel = Xtra.Project { input = rel; proj } in
              (rel, [ { r_alias = alias_name; r_cols = List.map fst proj } ])
          | None -> (
              match Catalog.find_table ctx.catalog base_name with
              | Some tbl ->
                  let cols =
                    List.map
                      (fun (c : Catalog.column) ->
                        fresh_col ctx c.Catalog.col_name c.Catalog.col_type)
                      tbl.Catalog.tbl_columns
                  in
                  let cols = rename_cols ctx cols col_aliases in
                  ( Xtra.Get
                      {
                        table = tbl.Catalog.tbl_name;
                        table_schema = cols;
                        alias = alias_name;
                      },
                    [ { r_alias = alias_name; r_cols = cols } ] )
              | None ->
                  Sql_error.bind_error "table or view %s not found"
                    (String.concat "." name))))
  | Ast.T_subquery { query; alias; col_aliases } ->
      let rel = bind_query ctx (child_scope scope) query in
      let schema = Xtra.schema_of rel in
      if col_aliases <> [] then note ctx "derived_table_column_aliases";
      let cols = rename_cols ctx schema col_aliases in
      let rel, cols =
        if cols == schema then (rel, schema)
        else
          let proj =
            List.map2 (fun (c : Xtra.col) (orig : Xtra.col) -> (c, Xtra.Col_ref orig)) cols schema
          in
          (Xtra.Project { input = rel; proj }, cols)
      in
      (rel, [ { r_alias = up alias; r_cols = cols } ])
  | Ast.T_join { kind; left; right; cond } ->
      let lrel, lranges = bind_table_ref ctx scope left in
      let rrel, rranges = bind_table_ref ctx scope right in
      let ranges = lranges @ rranges in
      let join_scope = { scope with ranges } in
      let pred =
        match cond with
        | Ast.No_cond -> None
        | Ast.On e -> Some (bind_expr ctx join_scope e)
        | Ast.Using cols ->
            let eqs =
              List.map
                (fun c ->
                  let l =
                    resolve_in_ranges ctx lranges c
                  and r = resolve_in_ranges ctx rranges c in
                  Xtra.Cmp (Xtra.Eq, l, r))
                cols
            in
            Some (Xtra.conj eqs)
      in
      let xkind =
        match kind with
        | Ast.Inner -> Xtra.Inner
        | Ast.Left -> Xtra.Left_outer
        | Ast.Right -> Xtra.Right_outer
        | Ast.Full -> Xtra.Full_outer
        | Ast.Cross -> Xtra.Cross
      in
      (Xtra.Join { kind = xkind; left = lrel; right = rrel; pred }, ranges)

and resolve_in_ranges _ctx ranges name =
  let hits = List.filter_map (fun r -> find_in_range r name) ranges in
  match hits with
  | [ c ] -> Xtra.Col_ref c
  | [] -> Sql_error.bind_error "column %s not found in USING clause" name
  | _ -> Sql_error.bind_error "ambiguous USING column %s" name

and rename_cols ctx cols = function
  | [] -> cols
  | names ->
      if List.length names <> List.length cols then
        Sql_error.bind_error "column alias count mismatch (%d vs %d)"
          (List.length names) (List.length cols);
      List.map2
        (fun (c : Xtra.col) n -> fresh_col ctx n c.Xtra.ty)
        cols names

and pad_names defaults = function
  | [] -> defaults
  | names when List.length names = List.length defaults -> names
  | names ->
      Sql_error.bind_error "view column list mismatch (%d vs %d)"
        (List.length names) (List.length defaults)

and bind_view ctx scope (view : Catalog.view) : Xtra.rel =
  let saved = ctx.dialect in
  (* views are stored in the dialect they were created in *)
  let ctx' = { ctx with dialect = view.Catalog.view_dialect } in
  let rel = bind_query ctx' { empty_scope with visible_ctes = scope.visible_ctes } view.Catalog.view_query in
  ctx.next_id <- ctx'.next_id;
  ignore saved;
  rel

(* ------------------------------------------------------------------ *)
(* Implicit joins (paper Table 2)                                       *)
(* ------------------------------------------------------------------ *)

(* Collect table qualifiers referenced by expressions of this query block
   without descending into subqueries (which have their own blocks). *)
and collect_qualifiers (e : Ast.expr) acc =
  let rec go e acc =
    match e with
    | Ast.E_column [ q; _ ] -> up q :: acc
    | Ast.E_column _ | Ast.E_lit _ | Ast.E_param _ -> acc
    | Ast.E_binop (_, a, b) -> go a (go b acc)
    | Ast.E_unop (_, a) -> go a acc
    | Ast.E_fun { args; _ } -> List.fold_left (fun acc a -> go a acc) acc args
    | Ast.E_cast (a, _) -> go a acc
    | Ast.E_extract (_, a) -> go a acc
    | Ast.E_case { operand; branches; else_branch } ->
        let acc = match operand with Some o -> go o acc | None -> acc in
        let acc =
          List.fold_left (fun acc (c, v) -> go c (go v acc)) acc branches
        in
        (match else_branch with Some e -> go e acc | None -> acc)
    | Ast.E_in { lhs; rhs = Ast.In_list items; _ } ->
        List.fold_left (fun acc a -> go a acc) (go lhs acc) items
    | Ast.E_in { lhs; rhs = Ast.In_subquery _; _ } -> go lhs acc
    | Ast.E_between { arg; low; high; _ } -> go arg (go low (go high acc))
    | Ast.E_like { arg; pattern; escape; _ } ->
        let acc = go arg (go pattern acc) in
        (match escape with Some e -> go e acc | None -> acc)
    | Ast.E_is_null (a, _) -> go a acc
    | Ast.E_exists _ | Ast.E_scalar_subquery _ -> acc
    | Ast.E_quantified { lhs; _ } ->
        List.fold_left (fun acc a -> go a acc) acc lhs
    | Ast.E_tuple es -> List.fold_left (fun acc a -> go a acc) acc es
    | Ast.E_window { args; partition; order; _ } ->
        let acc = List.fold_left (fun acc a -> go a acc) acc args in
        let acc = List.fold_left (fun acc a -> go a acc) acc partition in
        List.fold_left (fun acc (i : Ast.order_item) -> go i.Ast.sort_expr acc) acc order
    | Ast.E_td_rank items ->
        List.fold_left (fun acc (i : Ast.order_item) -> go i.Ast.sort_expr acc) acc items
  in
  go e acc

and implicit_join_tables ctx scope (s : Ast.select) : Ast.table_ref list =
  if not (is_teradata ctx) then []
  else begin
    let exprs =
      List.filter_map
        (function Ast.Sel_expr (e, _) -> Some e | Ast.Sel_star _ -> None)
        s.Ast.projection
      @ Option.to_list s.Ast.where
      @ Option.to_list s.Ast.having
      @ Option.to_list s.Ast.qualify
      @ List.filter_map
          (function Ast.Group_expr e -> Some e | _ -> None)
          s.Ast.group_by
    in
    let quals =
      List.sort_uniq String.compare
        (List.fold_left (fun acc e -> collect_qualifiers e acc) [] exprs)
    in
    let in_scope =
      List.concat_map range_aliases_of_table_ref s.Ast.from
    in
    let rec outer_known sc q =
      List.exists (fun r -> r.r_alias = q) sc.ranges
      || (match sc.parent with Some p -> outer_known p q | None -> false)
    in
    List.filter_map
      (fun q ->
        if List.mem q in_scope then None
        else if outer_known scope q then None
        else if find_cte scope q <> None then None
        else if
          Catalog.table_exists ctx.catalog q || Catalog.view_exists ctx.catalog q
        then begin
          note ctx "implicit_join";
          Some (Ast.T_named { name = [ q ]; alias = None; col_aliases = [] })
        end
        else None)
      quals
  end

(* ------------------------------------------------------------------ *)
(* SELECT binding                                                       *)
(* ------------------------------------------------------------------ *)

(* Top-down replacement: rewrites [s] by substituting any subtree equal to a
   key of [pairs]; aggregate arguments are pre-aggregation expressions, so the
   traversal must visit a node before its children. *)
and replace_scalars pairs s =
  let rec go s =
    match List.assoc_opt s pairs with
    | Some r -> r
    | None -> Xtra.map_scalar_children go s
  in
  go s

and collect_agg_refs s acc =
  (* find Agg_refs anywhere in s, including inside window specs but not
     inside subqueries *)
  let acc = ref acc in
  let rec go s =
    (match s with
    | Xtra.Agg_ref a -> if not (List.mem a !acc) then acc := a :: !acc
    | _ -> ());
    ignore (Xtra.map_scalar_children (fun c -> go c; c) s)
  in
  go s;
  !acc

and collect_window_refs s acc =
  let acc = ref acc in
  let rec go s =
    (match s with
    | Xtra.Window_ref w -> if not (List.mem w !acc) then acc := w :: !acc
    | _ -> ());
    ignore (Xtra.map_scalar_children (fun c -> go c; c) s)
  in
  go s;
  !acc

and bind_select ctx scope (s : Ast.select) : Xtra.rel * (string * Xtra.col) list =
  if s.Ast.qualify <> None then note ctx "qualify";
  if s.Ast.top <> None then note ctx "top_n";
  if s.Ast.sample <> None then note ctx "sample";
  (* 1. FROM (with implicit-join expansion) *)
  let from = s.Ast.from @ implicit_join_tables ctx scope s in
  let rel, ranges =
    match from with
    | [] ->
        (* FROM-less SELECT: a single empty row *)
        (Xtra.Values_rel { rows = [ [] ]; values_schema = [] }, [])
    | refs ->
        List.fold_left
          (fun (acc_rel, acc_ranges) r ->
            let rel, ranges = bind_table_ref ctx scope r in
            match acc_rel with
            | None -> (Some rel, acc_ranges @ ranges)
            | Some l ->
                ( Some (Xtra.Join { kind = Xtra.Cross; left = l; right = rel; pred = None }),
                  acc_ranges @ ranges ))
          (None, []) refs
        |> fun (r, ranges) -> (Option.get r, ranges)
  in
  let block_scope = { scope with ranges; select_aliases = [] } in
  (* 2. projection items, building the Teradata named-expression env (bound
     before WHERE because Teradata lets WHERE reference select aliases) *)
  let items = ref [] and alias_env = ref [] in
  List.iter
    (fun item ->
      match item with
      | Ast.Sel_star None ->
          List.iter
            (fun r ->
              List.iter
                (fun (c : Xtra.col) ->
                  items := (c.Xtra.name, Xtra.Col_ref c) :: !items)
                r.r_cols)
            ranges
      | Ast.Sel_star (Some q) -> (
          let qn = up (List.nth q (List.length q - 1)) in
          match List.find_opt (fun r -> r.r_alias = qn) ranges with
          | Some r ->
              List.iter
                (fun (c : Xtra.col) ->
                  items := (c.Xtra.name, Xtra.Col_ref c) :: !items)
                r.r_cols
          | None -> Sql_error.bind_error "unknown table alias %s.*" qn)
      | Ast.Sel_expr (e, alias) ->
          let scope_with_aliases =
            { block_scope with select_aliases = List.rev !alias_env }
          in
          let bound = bind_expr ctx scope_with_aliases e in
          let name =
            match alias with
            | Some a -> up a
            | None -> (
                match bound with
                | Xtra.Col_ref c -> c.Xtra.name
                | Xtra.Func { name; _ } -> name
                | Xtra.Agg_ref a -> Xtra.agg_col_name a.Xtra.afunc
                | _ -> Printf.sprintf "EXPR_%d" (List.length !items + 1))
          in
          (match alias with
          | Some a -> alias_env := (up a, bound) :: !alias_env
          | None -> ());
          items := (name, bound) :: !items)
    s.Ast.projection;
  let items = List.rev !items in
  let scope_for_post =
    { block_scope with select_aliases = List.rev !alias_env }
  in
  (* 3. WHERE (binds below the aggregate, but may reference select aliases
     in the Teradata dialect) *)
  let where_bound = Option.map (bind_expr ctx scope_for_post) s.Ast.where in
  (match where_bound with
  | Some w when collect_agg_refs w [] <> [] ->
      Sql_error.bind_error "aggregates are not allowed in WHERE"
  | _ -> ());
  let rel =
    match where_bound with
    | Some pred -> Xtra.Filter { input = rel; pred }
    | None -> rel
  in
  (* 4. HAVING / QUALIFY *)
  let having_bound = Option.map (bind_expr ctx scope_for_post) s.Ast.having in
  let qualify_bound = Option.map (bind_expr ctx scope_for_post) s.Ast.qualify in
  (* 5. GROUP BY: ordinals, aliases, rollup/cube/sets *)
  let resolve_group_expr e =
    match e with
    | Ast.E_lit (Ast.L_int n) -> (
        note ctx "ordinal_group_by";
        let i = Int64.to_int n in
        match List.nth_opt items (i - 1) with
        | Some (_, bound) -> bound
        | None -> Sql_error.bind_error "GROUP BY position %d is out of range" i)
    | e -> bind_expr ctx scope_for_post e
  in
  let plain = ref [] and ext_sets = ref None in
  List.iter
    (fun g ->
      match g with
      | Ast.Group_expr e -> plain := resolve_group_expr e :: !plain
      | Ast.Group_rollup es ->
          note ctx "olap_grouping_extensions";
          let bs = List.map resolve_group_expr es in
          let n = List.length bs in
          let sets = List.init (n + 1) (fun i -> List.init (n - i) (fun j -> j)) in
          ext_sets := Some (bs, sets)
      | Ast.Group_cube es ->
          note ctx "olap_grouping_extensions";
          let bs = List.map resolve_group_expr es in
          let n = List.length bs in
          let rec subsets i = if i = n then [ [] ] else
            let rest = subsets (i + 1) in
            List.map (fun s -> i :: s) rest @ rest
          in
          ext_sets := Some (bs, subsets 0)
      | Ast.Group_sets sets ->
          note ctx "olap_grouping_extensions";
          let all_exprs = List.sort_uniq compare (List.concat sets) in
          let bs = List.map resolve_group_expr all_exprs in
          let index_of e =
            let rec idx i = function
              | [] -> assert false
              | x :: _ when x = e -> i
              | _ :: tl -> idx (i + 1) tl
            in
            idx 0 all_exprs
          in
          ext_sets := Some (bs, List.map (List.map index_of) sets))
    s.Ast.group_by;
  let plain = List.rev !plain in
  let group_exprs, grouping_sets =
    match !ext_sets with
    | None -> (plain, None)
    | Some (ext, sets) ->
        let np = List.length plain in
        let all = plain @ ext in
        let sets =
          List.map
            (fun set -> List.init np (fun i -> i) @ List.map (fun j -> j + np) set)
            sets
        in
        (all, Some sets)
  in
  (* 6. aggregation *)
  let post_exprs =
    List.map snd items
    @ Option.to_list having_bound
    @ Option.to_list qualify_bound
  in
  let agg_defs =
    List.fold_left (fun acc e -> collect_agg_refs e acc) [] post_exprs
    |> List.rev
  in
  let aggregated = group_exprs <> [] || agg_defs <> [] in
  let rel, post_subst =
    if not aggregated then (rel, [])
    else begin
      let group_cols =
        List.map
          (fun e ->
            let name =
              match e with
              | Xtra.Col_ref c -> c.Xtra.name
              | _ -> Printf.sprintf "GB_%d" ctx.next_id
            in
            (fresh_col ctx name (Xtra.type_of_scalar e), e))
          group_exprs
      in
      let agg_cols =
        List.map
          (fun (a : Xtra.agg_def) ->
            (fresh_col ctx (Xtra.agg_col_name a.Xtra.afunc) (Xtra.type_of_scalar (Xtra.Agg_ref a)), a))
          agg_defs
      in
      let subst =
        List.map (fun (c, e) -> (e, Xtra.Col_ref c)) group_cols
        @ List.map (fun (c, a) -> (Xtra.Agg_ref a, Xtra.Col_ref c)) agg_cols
      in
      ( Xtra.Aggregate
          { input = rel; group_by = group_cols; aggs = agg_cols; grouping_sets },
        subst )
    end
  in
  let fix e = replace_scalars post_subst e in
  let items = List.map (fun (n, e) -> (n, fix e)) items in
  let having_bound = Option.map fix having_bound in
  let qualify_bound = Option.map fix qualify_bound in
  (* 7. HAVING filter *)
  let rel =
    match having_bound with
    | Some pred -> Xtra.Filter { input = rel; pred }
    | None -> rel
  in
  (* 8. window extraction *)
  let wdefs =
    List.fold_left
      (fun acc e -> collect_window_refs e acc)
      [] (List.map snd items @ Option.to_list qualify_bound)
    |> List.rev
  in
  let rel, wsubst =
    if wdefs = [] then (rel, [])
    else begin
      let wcols =
        List.map
          (fun (w : Xtra.window_def) ->
            (fresh_col ctx (Xtra.window_name w.Xtra.wfunc) (Xtra.window_result_type w), w))
          wdefs
      in
      ( Xtra.Window { input = rel; windows = wcols },
        List.map (fun (c, w) -> (Xtra.Window_ref w, Xtra.Col_ref c)) wcols )
    end
  in
  let fixw e = replace_scalars wsubst e in
  let items = List.map (fun (n, e) -> (n, fixw e)) items in
  let qualify_bound = Option.map fixw qualify_bound in
  (* 9. QUALIFY filter (paper Table 2: compute windows, then filter) *)
  let rel =
    match qualify_bound with
    | Some pred -> Xtra.Filter { input = rel; pred }
    | None -> rel
  in
  (* 10. final projection *)
  let proj =
    List.map (fun (n, e) -> (fresh_col ctx n (Xtra.type_of_scalar e), e)) items
  in
  let rel = Xtra.Project { input = rel; proj } in
  let rel = if s.Ast.distinct then Xtra.Distinct { input = rel } else rel in
  (* 11. TOP / SAMPLE: semantically applies after ORDER BY, so it is stashed
     here and applied by bind_query above the Sort operator *)
  (match s.Ast.top with
  | Some { Ast.top_count; with_ties; percent } ->
      pending_top :=
        Some (Some (bind_expr ctx scope_for_post top_count), with_ties, percent)
  | None -> (
      match s.Ast.sample with
      | Some e ->
          pending_top := Some (Some (bind_expr ctx scope_for_post e), false, false)
      | None -> pending_top := None));
  (* expose projection aliases (plus pre-projection scope info) so that the
     caller can resolve ORDER BY *)
  let named_outputs = List.map (fun ((c : Xtra.col), _) -> (c.Xtra.name, c)) proj in
  (* stash enough info for order-by binding: the caller re-binds via scope
     and must apply the same aggregate/window substitutions this block did *)
  order_context := Some (scope_for_post, post_subst @ wsubst, proj);
  (rel, named_outputs)

(* Side channel from bind_select to bind_query for ORDER BY resolution over
   the last-bound select block: (scope, agg/window substitutions, projection). *)
and order_context :
    (scope * (Xtra.scalar * Xtra.scalar) list * (Xtra.col * Xtra.scalar) list) option ref =
  ref None

(* Side channel for a pending TOP/SAMPLE clause: (count, with_ties, percent).
   Applied by bind_query above the Sort operator it belongs with. *)
and pending_top : (Xtra.scalar option * bool * bool) option ref = ref None

and apply_pending_top rel =
  match !pending_top with
  | None -> rel
  | Some (count, with_ties, percent) ->
      pending_top := None;
      Xtra.Limit { input = rel; count; offset = None; with_ties; percent }

(* ------------------------------------------------------------------ *)
(* Query binding                                                        *)
(* ------------------------------------------------------------------ *)

and bind_query_body ctx scope (b : Ast.query_body) : Xtra.rel =
  match b with
  | Ast.Q_select s ->
      let rel, _ = bind_select ctx scope s in
      rel
  | Ast.Q_setop (op, all, l, r) ->
      order_context := None;
      let lrel = apply_pending_top (bind_query_body ctx scope l) in
      let lschema = Xtra.schema_of lrel in
      let rrel = apply_pending_top (bind_query_body ctx scope r) in
      order_context := None;
      let rschema = Xtra.schema_of rrel in
      if List.length lschema <> List.length rschema then
        Sql_error.bind_error "set operation arity mismatch (%d vs %d)"
          (List.length lschema) (List.length rschema);
      let xop =
        match op with
        | Ast.Union -> Xtra.Union
        | Ast.Intersect -> Xtra.Intersect
        | Ast.Except -> Xtra.Except
      in
      Xtra.Set_operation { op = xop; all; left = lrel; right = rrel }
  | Ast.Q_values rows ->
      let brows = List.map (List.map (bind_expr ctx scope)) rows in
      (match brows with
      | [] -> Sql_error.bind_error "VALUES requires at least one row"
      | first :: rest ->
          let arity = List.length first in
          List.iter
            (fun r ->
              if List.length r <> arity then
                Sql_error.bind_error "VALUES rows have inconsistent arity")
            rest);
      let first = List.hd brows in
      let values_schema =
        List.mapi
          (fun i e ->
            fresh_col ctx (Printf.sprintf "COL%d" (i + 1)) (Xtra.type_of_scalar e))
          first
      in
      Xtra.Values_rel { rows = brows; values_schema }

and bind_query ctx scope (q : Ast.query) : Xtra.rel =
  (* CTEs *)
  let scope, bound_ctes, recursive =
    if q.Ast.ctes = [] then (scope, [], false)
    else begin
      if q.Ast.recursive then note ctx "recursive_query";
      let scope = ref scope in
      let bound = ref [] in
      List.iter
        (fun (cte : Ast.cte) ->
          let name = up cte.Ast.cte_name in
          let rel =
            if q.Ast.recursive then
              bind_recursive_cte ctx !scope cte
            else bind_query ctx { (child_scope !scope) with parent = Some !scope } cte.Ast.cte_query
          in
          (* explicit CTE column names: rename the output schema in place
             (the recursive executor relies on the UNION ALL staying the
             topmost operator, so no Project wrapper here) *)
          let rel =
            if cte.Ast.cte_columns = [] then rel
            else rename_rel_output rel (List.map up cte.Ast.cte_columns)
          in
          let schema = Xtra.schema_of rel in
          scope := { !scope with visible_ctes = (name, schema) :: !scope.visible_ctes };
          bound := (name, rel) :: !bound)
        q.Ast.ctes;
      (!scope, List.rev !bound, q.Ast.recursive)
    end
  in
  order_context := None;
  let body = bind_query_body ctx scope q.Ast.body in
  let octx = !order_context in
  (* ORDER BY *)
  let rel =
    if q.Ast.order_by = [] then body
    else begin
      let schema = Xtra.schema_of body in
      let resolve_key (i : Ast.order_item) : Xtra.sort_key * Xtra.scalar option =
        let dir = match i.Ast.dir with Ast.Asc -> Xtra.Asc | Ast.Desc -> Xtra.Desc in
        let nulls =
          match i.Ast.nulls with
          | Ast.Nulls_first -> Xtra.Nulls_first
          | Ast.Nulls_last -> Xtra.Nulls_last
          | Ast.Nulls_default -> (
              match dir with
              | Xtra.Asc -> Xtra.Nulls_first
              | Xtra.Desc -> Xtra.Nulls_last)
        in
        match i.Ast.sort_expr with
        | Ast.E_lit (Ast.L_int n) -> (
            note ctx "ordinal_order_by";
            match List.nth_opt schema (Int64.to_int n - 1) with
            | Some c -> ({ Xtra.key = Xtra.Col_ref c; dir; nulls }, None)
            | None ->
                Sql_error.bind_error "ORDER BY position %Ld is out of range" n)
        | Ast.E_column [ name ]
          when List.exists (fun (c : Xtra.col) -> c.Xtra.name = up name) schema ->
            let c = List.find (fun (c : Xtra.col) -> c.Xtra.name = up name) schema in
            ({ Xtra.key = Xtra.Col_ref c; dir; nulls }, None)
        | e -> (
            match octx with
            | None ->
                Sql_error.bind_error
                  "ORDER BY expression cannot be resolved against this query"
            | Some (sel_scope, substs, proj) -> (
                let bound = bind_expr ctx sel_scope e in
                (* apply the same agg/window substitutions the select block
                   did, so e.g. ORDER BY SUM(X) resolves to the aggregate's
                   output column *)
                let bound = replace_scalars substs bound in
                let bound =
                  match List.find_opt (fun (_, pe) -> pe = bound) proj with
                  | Some (c, _) -> Xtra.Col_ref c
                  | None -> bound
                in
                match bound with
                | Xtra.Col_ref c
                  when List.exists (fun (sc : Xtra.col) -> sc.Xtra.id = c.Xtra.id) schema ->
                    ({ Xtra.key = bound; dir; nulls }, None)
                | b -> ({ Xtra.key = b; dir; nulls }, Some b)))
      in
      let resolved = List.map resolve_key q.Ast.order_by in
      let hidden = List.filter_map snd resolved in
      if hidden = [] then
        Xtra.Sort { input = body; sort_keys = List.map fst resolved }
      else begin
        (* extend projection with hidden sort columns, sort, then strip *)
        let hidden_cols =
          List.map
            (fun e -> (fresh_col ctx "SORT_KEY" (Xtra.type_of_scalar e), e))
            hidden
        in
        (* the hidden expressions reference pre-projection columns, so they
           must be computed inside the select's own projection, not above it *)
        let ext =
          match body with
          | Xtra.Project { input; proj } ->
              Xtra.Project { input; proj = proj @ hidden_cols }
          | _ ->
              Sql_error.bind_error
                "ORDER BY expression must appear in the select list of this query"
        in
        let keys =
          List.map
            (fun (k, h) ->
              match h with
              | None -> k
              | Some e ->
                  let c = List.find (fun (_, he) -> he = e) hidden_cols |> fst in
                  { k with Xtra.key = Xtra.Col_ref c })
            resolved
        in
        let sorted = Xtra.Sort { input = ext; sort_keys = keys } in
        Xtra.Project
          {
            input = sorted;
            proj =
              List.map
                (fun (c : Xtra.col) -> (fresh_col ctx c.Xtra.name c.Xtra.ty, Xtra.Col_ref c))
                schema;
          }
      end
    end
  in
  (* TOP / SAMPLE from the select block applies above the Sort *)
  let rel = apply_pending_top rel in
  (* LIMIT / OFFSET *)
  let rel =
    match (q.Ast.limit, q.Ast.offset) with
    | None, None -> rel
    | count, offset ->
        Xtra.Limit
          {
            input = rel;
            count = Option.map (bind_expr ctx scope) count;
            offset = Option.map (bind_expr ctx scope) offset;
            with_ties = false;
            percent = false;
          }
  in
  if bound_ctes = [] then rel
  else Xtra.With_cte { ctes = bound_ctes; cte_recursive = recursive; body = rel }

(* Rename a rel's output columns in place (same ids, new names). Works on
   the operators the binder actually tops queries with. *)
and rename_rel_output rel names : Xtra.rel =
  let rename_schema schema =
    if List.length schema <> List.length names then
      Sql_error.bind_error "CTE column list arity mismatch";
    List.map2 (fun (c : Xtra.col) n -> { c with Xtra.name = n }) schema names
  in
  match rel with
  | Xtra.Project { input; proj } ->
      let cols = rename_schema (List.map fst proj) in
      Xtra.Project { input; proj = List.map2 (fun c (_, e) -> (c, e)) cols proj }
  | Xtra.Set_operation s ->
      Xtra.Set_operation { s with left = rename_rel_output s.left names }
  | Xtra.Sort { input; sort_keys } ->
      Xtra.Sort { input = rename_rel_output input names; sort_keys }
  | Xtra.Limit l -> Xtra.Limit { l with input = rename_rel_output l.input names }
  | Xtra.Distinct { input } -> Xtra.Distinct { input = rename_rel_output input names }
  | Xtra.Values_rel v ->
      Xtra.Values_rel { v with values_schema = rename_schema v.values_schema }
  | rel ->
      (* fallback: a renaming projection *)
      let schema = Xtra.schema_of rel in
      let cols = rename_schema schema in
      Xtra.Project
        {
          input = rel;
          proj = List.map2 (fun c (orig : Xtra.col) -> (c, Xtra.Col_ref orig)) cols schema;
        }

and bind_recursive_cte ctx scope (cte : Ast.cte) : Xtra.rel =
  (* Expect UNION ALL of a seed and a recursive member. Bind the seed first
     to learn the schema, then make the CTE visible for the recursive arm. *)
  match cte.Ast.cte_query.Ast.body with
  | Ast.Q_setop (Ast.Union, true, seed, recur) ->
      let seed_rel =
        bind_query_body ctx (child_scope scope) seed
      in
      order_context := None;
      let schema = Xtra.schema_of seed_rel in
      let schema =
        if cte.Ast.cte_columns = [] then schema
        else
          List.map2
            (fun (c : Xtra.col) n -> { c with Xtra.name = up n })
            schema cte.Ast.cte_columns
      in
      let rec_scope =
        {
          (child_scope scope) with
          visible_ctes = (up cte.Ast.cte_name, schema) :: scope.visible_ctes;
          parent = Some scope;
        }
      in
      let rec_rel = bind_query_body ctx rec_scope recur in
      order_context := None;
      if List.length (Xtra.schema_of rec_rel) <> List.length schema then
        Sql_error.bind_error "recursive member arity mismatch in %s"
          cte.Ast.cte_name;
      Xtra.Set_operation { op = Xtra.Union; all = true; left = seed_rel; right = rec_rel }
  | _ ->
      Sql_error.bind_error
        "recursive CTE %s must be <seed> UNION ALL <recursive member>"
        cte.Ast.cte_name

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let table_scope ctx tbl alias =
  let cols =
    List.map
      (fun (c : Catalog.column) -> fresh_col ctx c.Catalog.col_name c.Catalog.col_type)
      tbl.Catalog.tbl_columns
  in
  ({ empty_scope with ranges = [ { r_alias = up alias; r_cols = cols } ] }, cols)

let assert_no_transient st =
  let check s =
    ignore
      (Xtra.map_scalar
         (function
           | Xtra.Agg_ref _ ->
               Sql_error.bind_error "aggregate not allowed in this context"
           | Xtra.Window_ref _ ->
               Sql_error.bind_error "window function not allowed in this context"
           | x -> x)
         s)
  in
  ignore (Xtra.rewrite_statement ~frel:(fun r -> r) ~fscalar:(fun s -> s) st);
  (* cheap targeted checks: DML predicates and assignments *)
  (match st with
  | Xtra.Update { assignments; upd_pred; _ } ->
      List.iter (fun (_, e) -> check e) assignments;
      Option.iter check upd_pred
  | Xtra.Delete { del_pred; _ } -> Option.iter check del_pred
  | _ -> ());
  st

let columns_of_table (tbl : Catalog.table) =
  List.map (fun (c : Catalog.column) -> c.Catalog.col_name) tbl.Catalog.tbl_columns

let bind_statement ctx (st : Ast.statement) : Xtra.statement =
  match st with
  | Ast.S_select q -> Xtra.Query (bind_query ctx empty_scope q)
  | Ast.S_insert { table; columns; source } -> (
      let tname = List.nth table (List.length table - 1) in
      match Catalog.find_table ctx.catalog tname with
      | None -> Sql_error.bind_error "table %s not found" tname
      | Some tbl ->
          let target_cols =
            if columns = [] then columns_of_table tbl
            else (
              List.iter
                (fun c ->
                  if Catalog.column tbl c = None then
                    Sql_error.bind_error "column %s not found in %s" c tname)
                columns;
              columns)
          in
          let source_rel =
            match source with
            | Ast.Ins_query q -> bind_query ctx empty_scope q
            | Ast.Ins_values rows ->
                bind_query_body ctx empty_scope (Ast.Q_values rows)
          in
          let arity = List.length (Xtra.schema_of source_rel) in
          if arity <> List.length target_cols then
            Sql_error.bind_error
              "INSERT column count mismatch: %d target vs %d source"
              (List.length target_cols) arity;
          Xtra.Insert
            { target = up tname; target_cols = List.map up target_cols; source = source_rel })
  | Ast.S_update { table; alias; set; from; where } -> (
      let tname = List.nth table (List.length table - 1) in
      match Catalog.find_table ctx.catalog tname with
      | None -> (
          (* DML on views is an emulation feature handled by the pipeline;
             reaching here means no emulation intercepted it *)
          match Catalog.find_view ctx.catalog tname with
          | Some _ ->
              Sql_error.capability_gap "UPDATE on view %s requires emulation" tname
          | None -> Sql_error.bind_error "table %s not found" tname)
      | Some tbl ->
          if from <> [] then note ctx "update_from";
          let alias_name = match alias with Some a -> a | None -> tname in
          let tscope, tcols = table_scope ctx tbl alias_name in
          let extra_from, scope =
            if from = [] then (None, tscope)
            else begin
              let rel, ranges =
                List.fold_left
                  (fun (acc_rel, acc_ranges) r ->
                    let rel, rgs = bind_table_ref ctx tscope r in
                    match acc_rel with
                    | None -> (Some rel, acc_ranges @ rgs)
                    | Some l ->
                        ( Some
                            (Xtra.Join
                               { kind = Xtra.Cross; left = l; right = rel; pred = None }),
                          acc_ranges @ rgs ))
                  (None, []) from
              in
              ( rel,
                { tscope with ranges = tscope.ranges @ ranges } )
            end
          in
          let assignments =
            List.map
              (fun (c, e) ->
                if Catalog.column tbl c = None then
                  Sql_error.bind_error "column %s not found in %s" c tname;
                (up c, bind_expr ctx scope e))
              set
          in
          Xtra.Update
            {
              target = up tname;
              update_alias = up alias_name;
              assignments;
              extra_from;
              upd_pred = Option.map (bind_expr ctx scope) where;
              upd_schema = tcols;
            })
  | Ast.S_delete { table; alias; from; where } -> (
      let tname = List.nth table (List.length table - 1) in
      match Catalog.find_table ctx.catalog tname with
      | None -> Sql_error.bind_error "table %s not found" tname
      | Some tbl ->
          let alias_name = match alias with Some a -> a | None -> tname in
          let tscope, tcols = table_scope ctx tbl alias_name in
          let extra_from, scope =
            if from = [] then (None, tscope)
            else begin
              let rel, ranges =
                List.fold_left
                  (fun (acc_rel, acc_ranges) r ->
                    let rel, rgs = bind_table_ref ctx tscope r in
                    match acc_rel with
                    | None -> (Some rel, acc_ranges @ rgs)
                    | Some l ->
                        ( Some
                            (Xtra.Join
                               { kind = Xtra.Cross; left = l; right = rel; pred = None }),
                          acc_ranges @ rgs ))
                  (None, []) from
              in
              (rel, { tscope with ranges = tscope.ranges @ ranges })
            end
          in
          Xtra.Delete
            {
              target = up tname;
              delete_alias = up alias_name;
              extra_from;
              del_pred = Option.map (bind_expr ctx scope) where;
              del_schema = tcols;
            })
  | Ast.S_merge { target; target_alias; source; on; when_matched; when_not_matched }
    -> (
      note ctx "merge";
      let tname = List.nth target (List.length target - 1) in
      match Catalog.find_table ctx.catalog tname with
      | None -> Sql_error.bind_error "table %s not found" tname
      | Some tbl ->
          let alias_name = match target_alias with Some a -> a | None -> tname in
          let tscope, tcols = table_scope ctx tbl alias_name in
          let src_rel, src_ranges = bind_table_ref ctx empty_scope source in
          let scope = { tscope with ranges = tscope.ranges @ src_ranges } in
          let src_scope = { empty_scope with ranges = src_ranges } in
          let m_on = bind_expr ctx scope on in
          let m_matched_update, m_matched_delete =
            match when_matched with
            | Some (Ast.Merge_update set) ->
                ( Some
                    (List.map
                       (fun (c, e) ->
                         if Catalog.column tbl c = None then
                           Sql_error.bind_error "column %s not found in %s" c tname;
                         (up c, bind_expr ctx scope e))
                       set),
                  false )
            | Some Ast.Merge_delete -> (None, true)
            | Some (Ast.Merge_insert _) ->
                Sql_error.bind_error "WHEN MATCHED cannot INSERT"
            | None -> (None, false)
          in
          let m_not_matched_insert =
            match when_not_matched with
            | Some (Ast.Merge_insert (cols, vals)) ->
                let cols =
                  if cols = [] then columns_of_table tbl else cols
                in
                if List.length cols <> List.length vals then
                  Sql_error.bind_error "MERGE INSERT arity mismatch";
                Some
                  ( List.map up cols,
                    (* insert values may only reference the source *)
                    List.map (bind_expr ctx src_scope) vals )
            | Some _ ->
                Sql_error.bind_error "WHEN NOT MATCHED must INSERT"
            | None -> None
          in
          let src_alias =
            match src_ranges with r :: _ -> r.r_alias | [] -> "SRC"
          in
          Xtra.Merge
            {
              m_target = up tname;
              m_alias = up alias_name;
              m_schema = tcols;
              m_source = src_rel;
              m_source_alias = src_alias;
              m_on;
              m_matched_update;
              m_matched_delete;
              m_not_matched_insert;
            })
  | Ast.S_create_table { name; kind; columns; primary_index = _; on_commit_preserve = _; if_not_exists }
    ->
      let tname = List.nth name (List.length name - 1) in
      (match kind with
      | Ast.Persistent { set_semantics } -> if set_semantics then note ctx "set_tables"
      | Ast.Volatile -> note ctx "volatile_tables"
      | Ast.Global_temporary -> note ctx "global_temporary_tables");
      let specs =
        List.map
          (fun (c : Ast.column_def) ->
            if c.Ast.col_case_specific then note ctx "casespecific_columns";
            {
              Xtra.spec_name = up c.Ast.col_name;
              spec_type = dtype_of_typename c.Ast.col_type;
              spec_not_null = c.Ast.col_not_null;
              spec_default =
                Option.map (bind_expr ctx empty_scope) c.Ast.col_default;
            })
          columns
      in
      (match
         List.find_opt
           (fun (c : Ast.column_def) ->
             match c.Ast.col_type with Ast.Ty_period _ -> true | _ -> false)
           columns
       with
      | Some _ -> note ctx "period_type"
      | None -> ());
      Xtra.Create_table
        {
          ct_name = up tname;
          persistence =
            (match kind with
            | Ast.Persistent _ -> Xtra.Tp_persistent
            | Ast.Volatile | Ast.Global_temporary -> Xtra.Tp_temporary);
          specs;
          set_semantics =
            (match kind with
            | Ast.Persistent { set_semantics } -> set_semantics
            | _ -> false);
          ct_if_not_exists = if_not_exists;
        }
  | Ast.S_create_table_as { name; kind; query; with_data } ->
      let tname = List.nth name (List.length name - 1) in
      (match kind with
      | Ast.Volatile | Ast.Global_temporary -> note ctx "volatile_tables"
      | Ast.Persistent _ -> ());
      Xtra.Create_table_as
        {
          cta_name = up tname;
          cta_persistence =
            (match kind with
            | Ast.Persistent _ -> Xtra.Tp_persistent
            | _ -> Xtra.Tp_temporary);
          cta_source = bind_query ctx empty_scope query;
          with_data;
        }
  | Ast.S_drop_table { name; if_exists } ->
      Xtra.Drop_table
        { dt_name = up (List.nth name (List.length name - 1)); dt_if_exists = if_exists }
  | Ast.S_rename_table { from_name; to_name } ->
      Xtra.Rename_table
        {
          rn_from = up (List.nth from_name (List.length from_name - 1));
          rn_to = up (List.nth to_name (List.length to_name - 1));
        }
  | Ast.S_collect_stats _ ->
      note ctx "collect_statistics";
      Xtra.No_op "COLLECT STATISTICS has no equivalent on the target; elided"
  | Ast.S_begin_transaction -> Xtra.Begin_tx
  | Ast.S_commit -> Xtra.Commit_tx
  | Ast.S_rollback -> Xtra.Rollback_tx
  | Ast.S_create_view _ | Ast.S_drop_view _ | Ast.S_create_macro _
  | Ast.S_drop_macro _ | Ast.S_exec_macro _ | Ast.S_create_procedure _
  | Ast.S_drop_procedure _ | Ast.S_call _ | Ast.S_help _ | Ast.S_show _
  | Ast.S_set_session _ | Ast.S_explain _ ->
      Sql_error.capability_gap
        "%s must be handled by the emulation layer before binding"
        (Ast.statement_kind st)

let bind_statement ctx st = assert_no_transient (bind_statement ctx st)
