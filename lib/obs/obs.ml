(** Observability subsystem (see obs.mli).

    One mutex per registry guards family creation, cell mutation, the trace
    rings and rendering; record operations on a disabled registry return
    after a single flag check without touching the lock, so a [noop] sink
    can stay compiled into every hot path. *)

(* --- clock ------------------------------------------------------------- *)

type clock = { now : unit -> float; sleep : float -> unit }

let real_clock =
  { now = Unix.gettimeofday; sleep = (fun s -> if s > 0. then Unix.sleepf s) }

let fake_clock ?(start = 0.) () =
  let t = ref start in
  { now = (fun () -> !t); sleep = (fun s -> if s > 0. then t := !t +. s) }

(* --- spans ------------------------------------------------------------- *)

type span = {
  sp_name : string;
  sp_start_s : float;
  mutable sp_end_s : float;
  mutable sp_error : string option;
  mutable sp_rev_children : span list;
}

let span_children sp = List.rev sp.sp_rev_children
let span_elapsed_s sp = Float.max 0. (sp.sp_end_s -. sp.sp_start_s)

type tracer = {
  tr_on : bool;
  tr_session_id : int;
  tr_sql : string;
  tr_start_s : float;
  mutable tr_roots : span list;  (* newest first *)
  mutable tr_stack : span list;  (* open spans, innermost first *)
  mutable tr_retries : int;
  mutable tr_cache_hit : bool;
  mutable tr_finished : bool;
}

let no_tracer =
  {
    tr_on = false;
    tr_session_id = 0;
    tr_sql = "";
    tr_start_s = 0.;
    tr_roots = [];
    tr_stack = [];
    tr_retries = 0;
    tr_cache_hit = false;
    tr_finished = true;
  }

type query_trace = {
  qt_session_id : int;
  qt_sql : string;
  qt_sql_hash : string;
  qt_started_s : float;
  qt_elapsed_s : float;
  qt_cache_hit : bool;
  qt_retries : int;
  qt_features : string list;
  qt_error : string option;
  qt_spans : span list;
}

(* --- metric cells ------------------------------------------------------ *)

type hist = {
  bounds : float array;  (* finite upper bounds, strictly increasing *)
  counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_total : int;
}

type cell = Scalar of float ref | Hist of hist

type metric_kind = Kcounter | Kgauge | Khistogram

type family = {
  fam_name : string;
  mutable fam_help : string;
  fam_kind : metric_kind;
  mutable fam_cells : (string * ((string * string) list * cell)) list;
      (* keyed by canonical label signature, insertion order *)
  mutable fam_pulls : (unit -> ((string * string) list * float) list) list;
}

type ring = {
  slots : query_trace option array;
  mutable pos : int;
  mutable total : int;
}

let ring_make n = { slots = Array.make (max 1 n) None; pos = 0; total = 0 }

let ring_push r x =
  r.slots.(r.pos) <- Some x;
  r.pos <- (r.pos + 1) mod Array.length r.slots;
  r.total <- r.total + 1

let ring_clear r =
  Array.fill r.slots 0 (Array.length r.slots) None;
  r.pos <- 0;
  r.total <- 0

let ring_recent r n =
  let cap = Array.length r.slots in
  let avail = min r.total cap in
  let n = max 0 (min n avail) in
  List.init n (fun k ->
      match r.slots.((r.pos - 1 - k + (2 * cap)) mod cap) with
      | Some x -> x
      | None -> assert false)

type t = {
  on : bool;
  clk : clock;
  lock : Mutex.t;
  fams : (string, family) Hashtbl.t;
  ring : ring;
  slow : ring;
  mutable slow_threshold_s : float;
  traces_total : float ref;
  slow_total : float ref;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- label plumbing ---------------------------------------------------- *)

let canon_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_signature labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)

let render_labels labels =
  match labels with [] -> "" | ls -> "{" ^ label_signature ls ^ "}"

(* --- registry ---------------------------------------------------------- *)

let find_family_unlocked t ~kind ~help name =
  match Hashtbl.find_opt t.fams name with
  | Some f ->
      if f.fam_kind <> kind then
        invalid_arg
          (Printf.sprintf "Obs: metric %s re-registered with a different type"
             name);
      if f.fam_help = "" && help <> "" then f.fam_help <- help;
      f
  | None ->
      let f =
        { fam_name = name; fam_help = help; fam_kind = kind; fam_cells = [];
          fam_pulls = [] }
      in
      Hashtbl.add t.fams name f;
      f

let find_cell_unlocked t ~kind ~help ~labels name make =
  let f = find_family_unlocked t ~kind ~help name in
  let labels = canon_labels labels in
  let sig_ = label_signature labels in
  match List.assoc_opt sig_ f.fam_cells with
  | Some (_, cell) -> cell
  | None ->
      let cell = make () in
      f.fam_cells <- f.fam_cells @ [ (sig_, (labels, cell)) ];
      cell

let create ?(clock = real_clock) ?(enabled = true) ?(ring_capacity = 256)
    ?(slow_log_capacity = 64) ?(slow_threshold_s = 0.) () =
  {
    on = enabled;
    clk = clock;
    lock = Mutex.create ();
    fams = Hashtbl.create 32;
    ring = ring_make ring_capacity;
    slow = ring_make slow_log_capacity;
    slow_threshold_s;
    traces_total = ref 0.;
    slow_total = ref 0.;
  }

let noop = create ~enabled:false ()
let enabled t = t.on
let clock t = t.clk

let set_slow_threshold t s = locked t (fun () -> t.slow_threshold_s <- s)
let slow_threshold t = t.slow_threshold_s

let reset t =
  if t.on then
    locked t (fun () ->
        Hashtbl.iter
          (fun _ f ->
            List.iter
              (fun (_, (_, cell)) ->
                match cell with
                | Scalar r -> r := 0.
                | Hist h ->
                    Array.fill h.counts 0 (Array.length h.counts) 0;
                    h.h_sum <- 0.;
                    h.h_total <- 0)
              f.fam_cells)
          t.fams;
        ring_clear t.ring;
        ring_clear t.slow;
        t.traces_total := 0.;
        t.slow_total := 0.)

(* --- counters / gauges ------------------------------------------------- *)

type counter = { c_on : bool; c_lock : Mutex.t; c_cell : float ref }
type gauge = counter

let dead_scalar () = { c_on = false; c_lock = Mutex.create (); c_cell = ref 0. }

let scalar t ~kind ?(help = "") ?(labels = []) name =
  if not t.on then dead_scalar ()
  else
    locked t (fun () ->
        match
          find_cell_unlocked t ~kind ~help ~labels name (fun () ->
              Scalar (ref 0.))
        with
        | Scalar r -> { c_on = true; c_lock = t.lock; c_cell = r }
        | Hist _ -> assert false)

let counter t ?help ?labels name = scalar t ~kind:Kcounter ?help ?labels name
let gauge t ?help ?labels name = scalar t ~kind:Kgauge ?help ?labels name

let add c v =
  if c.c_on then begin
    Mutex.lock c.c_lock;
    c.c_cell := !(c.c_cell) +. v;
    Mutex.unlock c.c_lock
  end

let inc c = add c 1.

let set_gauge g v =
  if g.c_on then begin
    Mutex.lock g.c_lock;
    g.c_cell := v;
    Mutex.unlock g.c_lock
  end

let counter_value c = !(c.c_cell)
let gauge_value = counter_value

(* --- histograms -------------------------------------------------------- *)

type histogram = { h_on : bool; h_lock : Mutex.t; h_cell : hist }

let default_latency_buckets =
  [|
    1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3;
    5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.;
  |]

let dead_hist =
  lazy
    {
      h_on = false;
      h_lock = Mutex.create ();
      h_cell =
        { bounds = [||]; counts = [| 0 |]; h_sum = 0.; h_total = 0 };
    }

let histogram t ?(help = "") ?(buckets = default_latency_buckets) ?(labels = [])
    name =
  if not t.on then Lazy.force dead_hist
  else begin
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs.histogram: buckets must be strictly increasing")
      buckets;
    locked t (fun () ->
        match
          find_cell_unlocked t ~kind:Khistogram ~help ~labels name (fun () ->
              Hist
                {
                  bounds = Array.copy buckets;
                  counts = Array.make (Array.length buckets + 1) 0;
                  h_sum = 0.;
                  h_total = 0;
                })
        with
        | Hist h -> { h_on = true; h_lock = t.lock; h_cell = h }
        | Scalar _ -> assert false)
  end

(* index of the first bucket whose upper bound admits [v] (le semantics);
   Array.length bounds = the overflow bucket *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go lo hi =
    (* invariant: every bound below lo is < v; bounds at hi.. are >= v *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe hg v =
  if hg.h_on then begin
    Mutex.lock hg.h_lock;
    let h = hg.h_cell in
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_total <- h.h_total + 1;
    Mutex.unlock hg.h_lock
  end

type histogram_snapshot = {
  hs_buckets : (float * int) array;
  hs_count : int;
  hs_sum : float;
}

let snapshot_of_hist h =
  let n = Array.length h.bounds in
  {
    hs_buckets =
      Array.init (n + 1) (fun i ->
          ((if i < n then h.bounds.(i) else infinity), h.counts.(i)));
    hs_count = h.h_total;
    hs_sum = h.h_sum;
  }

let histogram_snapshot hg =
  Mutex.lock hg.h_lock;
  let s = snapshot_of_hist hg.h_cell in
  Mutex.unlock hg.h_lock;
  s

let quantile snap q =
  if snap.hs_count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int snap.hs_count in
    let n = Array.length snap.hs_buckets in
    let rec go i cum lower =
      let ub, c = snap.hs_buckets.(i) in
      let cum' = cum + c in
      if (float_of_int cum' >= target && c > 0) || i = n - 1 then
        if ub = infinity then lower
        else if c = 0 then ub
        else
          lower
          +. (ub -. lower) *. ((target -. float_of_int cum) /. float_of_int c)
      else go (i + 1) cum' ub
    in
    go 0 0 0.
  end

(* --- pull collectors --------------------------------------------------- *)

let register_collector t ?(help = "") ~kind name pull =
  if t.on then
    locked t (fun () ->
        let kind = match kind with `Counter -> Kcounter | `Gauge -> Kgauge in
        let f = find_family_unlocked t ~kind ~help name in
        f.fam_pulls <- f.fam_pulls @ [ pull ])

(* --- tracing ----------------------------------------------------------- *)

let trace_start t ?(session_id = 0) ~sql () =
  if not t.on then no_tracer
  else
    {
      tr_on = true;
      tr_session_id = session_id;
      tr_sql = sql;
      tr_start_s = t.clk.now ();
      tr_roots = [];
      tr_stack = [];
      tr_retries = 0;
      tr_cache_hit = false;
      tr_finished = false;
    }

let span_open t tracer name =
  if not (t.on && tracer.tr_on) then None
  else begin
    let sp =
      {
        sp_name = name;
        sp_start_s = t.clk.now ();
        sp_end_s = nan;
        sp_error = None;
        sp_rev_children = [];
      }
    in
    (match tracer.tr_stack with
    | parent :: _ -> parent.sp_rev_children <- sp :: parent.sp_rev_children
    | [] -> tracer.tr_roots <- sp :: tracer.tr_roots);
    tracer.tr_stack <- sp :: tracer.tr_stack;
    Some sp
  end

let close_one t ?error sp =
  sp.sp_end_s <- t.clk.now ();
  match error with None -> () | Some _ -> sp.sp_error <- error

let span_close t ?error tracer sp_opt =
  match sp_opt with
  | None -> ()
  | Some sp ->
      if tracer.tr_on && List.memq sp tracer.tr_stack then begin
        (* pop to (and including) [sp]; anything opened inside it that never
           closed is an orphan — close it so no span leaks an open end *)
        let rec pop = function
          | [] -> []
          | top :: rest when top == sp ->
              close_one t ?error sp;
              rest
          | top :: rest ->
              close_one t ~error:"orphaned: parent span closed first" top;
              pop rest
        in
        tracer.tr_stack <- pop tracer.tr_stack
      end

let with_span t tracer name f =
  let sp = span_open t tracer name in
  match f () with
  | v ->
      span_close t tracer sp;
      v
  | exception e ->
      span_close t ~error:(Printexc.to_string e) tracer sp;
      raise e

let trace_add_retry tracer =
  if tracer.tr_on then tracer.tr_retries <- tracer.tr_retries + 1

let trace_set_cache_hit tracer hit =
  if tracer.tr_on then tracer.tr_cache_hit <- hit

let sql_hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let trace_finish t ?error ?(features = []) tracer =
  if t.on && tracer.tr_on && not tracer.tr_finished then begin
    tracer.tr_finished <- true;
    List.iter
      (fun sp -> close_one t ~error:"unclosed at trace finish" sp)
      tracer.tr_stack;
    tracer.tr_stack <- [];
    let elapsed = Float.max 0. (t.clk.now () -. tracer.tr_start_s) in
    let qt =
      {
        qt_session_id = tracer.tr_session_id;
        qt_sql = tracer.tr_sql;
        qt_sql_hash = sql_hash tracer.tr_sql;
        qt_started_s = tracer.tr_start_s;
        qt_elapsed_s = elapsed;
        qt_cache_hit = tracer.tr_cache_hit;
        qt_retries = tracer.tr_retries;
        qt_features = features;
        qt_error = error;
        qt_spans = List.rev tracer.tr_roots;
      }
    in
    locked t (fun () ->
        ring_push t.ring qt;
        t.traces_total := !(t.traces_total) +. 1.;
        if t.slow_threshold_s > 0. && elapsed >= t.slow_threshold_s then begin
          ring_push t.slow qt;
          t.slow_total := !(t.slow_total) +. 1.
        end)
  end

let traces_recorded t = int_of_float !(t.traces_total)

let recent_traces ?n t =
  let n = match n with Some n -> n | None -> Array.length t.ring.slots in
  locked t (fun () -> ring_recent t.ring n)

let slow_queries ?n t =
  let n = match n with Some n -> n | None -> Array.length t.slow.slots in
  locked t (fun () -> ring_recent t.slow n)

let truncate_sql s =
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s <= 100 then s else String.sub s 0 97 ^ "..."

let trace_to_string qt =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "[session %d] %s %8.3f ms  cache=%s retries=%d  %s\n"
    qt.qt_session_id qt.qt_sql_hash
    (qt.qt_elapsed_s *. 1000.)
    (if qt.qt_cache_hit then "hit" else "miss")
    qt.qt_retries (truncate_sql qt.qt_sql);
  (match qt.qt_error with
  | Some e -> Printf.bprintf buf "  error: %s\n" e
  | None -> ());
  if qt.qt_features <> [] then
    Printf.bprintf buf "  features: %s\n" (String.concat ", " qt.qt_features);
  let rec render indent sp =
    Printf.bprintf buf "%s%-14s %8.3f ms%s\n" indent sp.sp_name
      (span_elapsed_s sp *. 1000.)
      (match sp.sp_error with Some e -> "  !" ^ e | None -> "");
    List.iter (render (indent ^ "  ")) (span_children sp)
  in
  List.iter (render "  ") qt.qt_spans;
  Buffer.contents buf

(* --- exposition -------------------------------------------------------- *)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let kind_string = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khistogram -> "histogram"

(* families sorted by name; within a family, direct cells in registration
   order first, then pull rows sorted by label signature *)
let sorted_families t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.fams []
  |> List.sort (fun a b -> compare a.fam_name b.fam_name)

let pull_rows f =
  List.concat_map
    (fun pull ->
      List.map (fun (labels, v) -> (canon_labels labels, v)) (pull ()))
    f.fam_pulls
  |> List.sort (fun (a, _) (b, _) ->
         compare (label_signature a) (label_signature b))

let render_prometheus t =
  if not t.on then ""
  else
    locked t (fun () ->
        let buf = Buffer.create 4096 in
        List.iter
          (fun f ->
            if f.fam_help <> "" then
              Printf.bprintf buf "# HELP %s %s\n" f.fam_name f.fam_help;
            Printf.bprintf buf "# TYPE %s %s\n" f.fam_name
              (kind_string f.fam_kind);
            List.iter
              (fun (_, (labels, cell)) ->
                match cell with
                | Scalar r ->
                    Printf.bprintf buf "%s%s %s\n" f.fam_name
                      (render_labels labels) (fmt_value !r)
                | Hist h ->
                    let cum = ref 0 in
                    Array.iteri
                      (fun i c ->
                        cum := !cum + c;
                        let le =
                          if i = Array.length h.bounds then "+Inf"
                          else fmt_value h.bounds.(i)
                        in
                        Printf.bprintf buf "%s_bucket%s %d\n" f.fam_name
                          (render_labels (labels @ [ ("le", le) ]))
                          !cum)
                      h.counts;
                    Printf.bprintf buf "%s_sum%s %s\n" f.fam_name
                      (render_labels labels) (fmt_value h.h_sum);
                    Printf.bprintf buf "%s_count%s %d\n" f.fam_name
                      (render_labels labels) h.h_total)
              f.fam_cells;
            List.iter
              (fun (labels, v) ->
                Printf.bprintf buf "%s%s %s\n" f.fam_name
                  (render_labels labels) (fmt_value v))
              (pull_rows f))
          (sorted_families t);
        Buffer.contents buf)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_json t =
  if not t.on then "{}"
  else
    locked t (fun () ->
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "{\"metrics\":[";
        let first = ref true in
        let emit_row fam_name kind labels value_json =
          if not !first then Buffer.add_char buf ',';
          first := false;
          Printf.bprintf buf
            "{\"name\":\"%s\",\"type\":\"%s\",\"labels\":{%s},%s}"
            (json_escape fam_name) kind
            (String.concat ","
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                      (json_escape v))
                  labels))
            value_json
        in
        List.iter
          (fun f ->
            let kind = kind_string f.fam_kind in
            List.iter
              (fun (_, (labels, cell)) ->
                match cell with
                | Scalar r ->
                    emit_row f.fam_name kind labels
                      (Printf.sprintf "\"value\":%s" (json_number !r))
                | Hist h ->
                    let snap = snapshot_of_hist h in
                    let buckets =
                      String.concat ","
                        (Array.to_list
                           (Array.map
                              (fun (ub, c) ->
                                Printf.sprintf "[%s,%d]"
                                  (if ub = infinity then "\"+Inf\""
                                   else json_number ub)
                                  c)
                              snap.hs_buckets))
                    in
                    emit_row f.fam_name kind labels
                      (Printf.sprintf
                         "\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":[%s]"
                         snap.hs_count (json_number snap.hs_sum)
                         (json_number (quantile snap 0.5))
                         (json_number (quantile snap 0.95))
                         (json_number (quantile snap 0.99))
                         buckets))
              f.fam_cells;
            List.iter
              (fun (labels, v) ->
                emit_row f.fam_name kind labels
                  (Printf.sprintf "\"value\":%s" (json_number v)))
              (pull_rows f))
          (sorted_families t);
        Printf.bprintf buf
          "],\"traces_recorded\":%s,\"slow_queries\":%s,\"slow_threshold_s\":%s}"
          (json_number !(t.traces_total))
          (json_number !(t.slow_total))
          (json_number t.slow_threshold_s);
        Buffer.contents buf)
