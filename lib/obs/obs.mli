(** Observability subsystem: metric registry, spans, query traces, and
    exposition.

    Every subsystem of the Hyper-Q stack (gateway, pipeline, plan cache,
    resilience, scale-out, emulation) reports into one {!t} registry, which
    renders to Prometheus text exposition ({!render_prometheus}) or JSON
    ({!render_json}). The registry is dependency-free (stdlib + unix +
    threads only) and designed so that a *disabled* registry ({!noop}) costs
    a single flag check per record call — no allocation, no locking — which
    keeps telemetry safe to leave compiled into every hot path.

    Three data models:

    - {b Metrics}: counters, gauges, and fixed-bucket latency histograms
      with interpolated quantile summaries. Metrics are identified by
      [(name, labels)]; requesting the same identity twice returns the same
      underlying cell. Pull-mode collectors ({!register_collector}) let
      subsystems that already keep their own counters (plan cache,
      resilience, scale-out) publish through the registry without
      dual-writing: the closure is sampled at render time.
    - {b Spans}: one {!tracer} per query builds a tree of timed spans
      (pipeline stages, emulation steps). Spans always close — callers wrap
      stage bodies with {!with_span} or [Fun.protect] — and a finished
      trace force-closes stragglers rather than leaking them.
    - {b Query traces}: a bounded ring of recent per-query traces (session
      id, SQL hash, span tree, cache hit, retries, rewrite features fired),
      plus a slow-query log with a configurable threshold.

    All time flows through an injectable {!clock} (the same pattern as the
    resilience layer, which aliases this type), so tests observe
    deterministic timings and exposition output. *)

(** Time source. [sleep] advances [now] in fake clocks, so latencies are
    observable without real waiting. *)
type clock = { now : unit -> float; sleep : float -> unit }

val real_clock : clock

(** A virtual clock starting at [start] (default 0): [sleep d] just
    advances [now] by [d]. *)
val fake_clock : ?start:float -> unit -> clock

type t

(** [create ~clock ~enabled ~ring_capacity ~slow_log_capacity
    ~slow_threshold_s ()] builds a registry. [enabled:false] produces a
    sink that records nothing (see {!noop}). [ring_capacity] bounds the
    recent-trace ring (default 256); [slow_log_capacity] bounds the
    slow-query log (default 64); [slow_threshold_s] is the slow-query
    threshold in seconds (default 0 = slow logging off). *)
val create :
  ?clock:clock ->
  ?enabled:bool ->
  ?ring_capacity:int ->
  ?slow_log_capacity:int ->
  ?slow_threshold_s:float ->
  unit ->
  t

(** A shared, permanently disabled registry: every record operation is a
    flag-check no-op, every render returns empty output. *)
val noop : t

val enabled : t -> bool
val clock : t -> clock

(** Slow-query threshold in seconds; [<= 0] disables slow logging. *)
val set_slow_threshold : t -> float -> unit

val slow_threshold : t -> float

(** Reset all recorded values (counter/gauge cells, histogram contents,
    trace rings) while keeping registered families and collectors. Benches
    use this to discard warm-up/setup traffic. *)
val reset : t -> unit

(** {1 Counters and gauges} *)

type counter

(** [counter t name] finds or creates the counter cell identified by
    [(name, labels)]. On a disabled registry this returns an inert handle. *)
val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val inc : counter -> unit
val add : counter -> float -> unit
val counter_value : counter -> float

type gauge

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

(** Default latency buckets: 1 µs .. 5 s, roughly logarithmic, plus the
    implicit [+Inf] overflow bucket. *)
val default_latency_buckets : float array

(** [histogram t name] finds or creates a histogram. [buckets] are the
    upper bounds (inclusive, i.e. Prometheus [le] semantics) of the finite
    buckets, strictly increasing; an overflow bucket is always appended. *)
val histogram :
  t ->
  ?help:string ->
  ?buckets:float array ->
  ?labels:(string * string) list ->
  string ->
  histogram

val observe : histogram -> float -> unit

type histogram_snapshot = {
  hs_buckets : (float * int) array;
      (** (upper bound, count in that bucket) — per-bucket (not cumulative)
          counts; the last bound is [infinity] *)
  hs_count : int;
  hs_sum : float;
}

val histogram_snapshot : histogram -> histogram_snapshot

(** [quantile snap q] estimates the [q]-quantile (0..1) by linear
    interpolation inside the bucket where the cumulative count crosses
    [q * count]. Values in the overflow bucket report its lower edge. *)
val quantile : histogram_snapshot -> float -> float

(** {1 Pull-mode collectors} *)

(** [register_collector t ~kind name pull] registers a closure sampled at
    render time; it returns one [(labels, value)] row per instance.
    Several collectors may share one family name (e.g. one per replica). *)
val register_collector :
  t ->
  ?help:string ->
  kind:[ `Counter | `Gauge ] ->
  string ->
  (unit -> ((string * string) list * float) list) ->
  unit

(** {1 Spans and query traces} *)

type span = {
  sp_name : string;
  sp_start_s : float;
  mutable sp_end_s : float;
  mutable sp_error : string option;
  mutable sp_rev_children : span list;  (** newest first; see {!span_children} *)
}

(** Children in execution order. *)
val span_children : span -> span list

val span_elapsed_s : span -> float

type tracer

(** The inert tracer used when tracing is disabled. *)
val no_tracer : tracer

(** Start the trace for one query; returns {!no_tracer} when [t] is
    disabled. *)
val trace_start : t -> ?session_id:int -> sql:string -> unit -> tracer

(** Open a nested span ([None] when tracing is off). *)
val span_open : t -> tracer -> string -> span option

(** Close a span. Spans that were opened after [sp] but never closed are
    force-closed and marked as orphaned. *)
val span_close : t -> ?error:string -> tracer -> span option -> unit

(** [with_span t tracer name f] = open, run [f], close — the span closes on
    exceptions too (recording the exception text on the span). *)
val with_span : t -> tracer -> string -> (unit -> 'a) -> 'a

(** Note one backend retry on the trace under construction. *)
val trace_add_retry : tracer -> unit

val trace_set_cache_hit : tracer -> bool -> unit

type query_trace = {
  qt_session_id : int;
  qt_sql : string;
  qt_sql_hash : string;  (** FNV-1a hash of the SQL text, hex *)
  qt_started_s : float;
  qt_elapsed_s : float;
  qt_cache_hit : bool;
  qt_retries : int;
  qt_features : string list;  (** rewrite features fired (Feature_tracker) *)
  qt_error : string option;
  qt_spans : span list;  (** root spans in execution order *)
}

(** Finish the trace: force-close open spans, stamp the elapsed time, and
    record it into the recent ring (and slow log if over threshold).
    Idempotent — a second finish is ignored. *)
val trace_finish : t -> ?error:string -> ?features:string list -> tracer -> unit

(** Total traces recorded (including ones the ring has since dropped). *)
val traces_recorded : t -> int

(** Newest first, at most [n] (default: the whole ring). *)
val recent_traces : ?n:int -> t -> query_trace list

val slow_queries : ?n:int -> t -> query_trace list

(** Deterministic 64-bit FNV-1a, rendered as 16 hex chars. *)
val sql_hash : string -> string

(** Multi-line human rendering of one trace (REPL [\trace]). *)
val trace_to_string : query_trace -> string

(** {1 Exposition} *)

(** Prometheus text exposition format, deterministically ordered (families
    by name, instances by label signature). Pull collectors are sampled. *)
val render_prometheus : t -> string

(** The same data as a JSON object; histograms carry count/sum/p50/p95/p99
    and per-bucket counts. *)
val render_json : t -> string
