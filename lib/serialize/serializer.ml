(** Serializer: XTRA → target-dialect SQL (paper §4.4).

    "Each target database has its own Serializer implementation. These
    different serializers share a common interface: the input is an XTRA
    expression, and the output is the serialized SQL statement of that XTRA."
    Here the per-target differences are captured declaratively in
    {!Capability.t} (function names, type names, QUALIFY availability, ...),
    and one structural emitter handles all targets.

    The emitter "decompiles" the operator tree into nested SELECT blocks,
    merging operators into a single block where SQL allows (filter → WHERE or
    HAVING, sort → ORDER BY, ...) and introducing derived tables elsewhere.
    Output column references are tracked per unique column id, so the emitted
    SQL is correct under arbitrary nesting and correlation. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra
module Capability = Hyperq_transform.Capability

type ctx = {
  cap : Capability.t;
  mutable next_alias : int;
  mutable outer : (int * string) list;  (** correlated outer columns *)
}

let create_ctx cap = { cap; next_alias = 0; outer = [] }

let fresh_alias ctx =
  ctx.next_alias <- ctx.next_alias + 1;
  Printf.sprintf "T%d" ctx.next_alias

(* A SELECT block under construction. *)
type block = {
  mutable b_select : (string * string) list;  (** (expr sql, alias) — [] = all input columns *)
  mutable b_distinct : bool;
  mutable b_top : string option;  (** Teradata-style TOP prefix *)
  mutable b_from : string;  (** "" = FROM-less *)
  mutable b_where : string list;
  mutable b_group : string list;
  mutable b_having : string list;
  mutable b_qualify : string list;
  mutable b_order : string list;
  mutable b_limit : string option;
  mutable b_offset : string option;
  mutable b_has_window : bool;
  mutable b_map : (int * string) list;  (** col id → SQL text *)
  mutable b_schema : Xtra.schema;  (** current output columns, in order *)
  mutable b_with : (string * string) list;  (** CTE name → sql *)
  mutable b_recursive : bool;
}

let new_block () =
  {
    b_select = [];
    b_distinct = false;
    b_top = None;
    b_from = "";
    b_where = [];
    b_group = [];
    b_having = [];
    b_qualify = [];
    b_order = [];
    b_limit = None;
    b_offset = None;
    b_has_window = false;
    b_map = [];
    b_schema = [];
    b_with = [];
    b_recursive = false;
  }

(* Unique output aliases: plain name when unique within the schema, else
   suffixed with the column id. *)
let output_aliases (schema : Xtra.schema) =
  let count name =
    List.length (List.filter (fun (c : Xtra.col) -> c.Xtra.name = name) schema)
  in
  List.map
    (fun (c : Xtra.col) ->
      if count c.Xtra.name > 1 then (c, Printf.sprintf "%s_%d" c.Xtra.name c.Xtra.id)
      else (c, c.Xtra.name))
    schema

let lookup_col ctx b (c : Xtra.col) =
  match List.assoc_opt c.Xtra.id b.b_map with
  | Some t -> t
  | None -> (
      match List.assoc_opt c.Xtra.id ctx.outer with
      | Some t -> t
      | None ->
          Sql_error.internal_error "serializer: unmapped column %s (#%d)"
            c.Xtra.name c.Xtra.id)

(* ------------------------------------------------------------------ *)
(* Type and value rendering                                             *)
(* ------------------------------------------------------------------ *)

let render_type cap (t : Dtype.t) =
  match t with
  | Dtype.Unknown -> "VARCHAR"
  | Dtype.Bool -> if cap.Capability.supports_boolean_type then "BOOLEAN" else "SMALLINT"
  | Dtype.Int -> cap.Capability.bigint_name
  | Dtype.Float -> cap.Capability.float_name
  | Dtype.Decimal { precision; scale } -> Printf.sprintf "DECIMAL(%d,%d)" precision scale
  | Dtype.Varchar { max_len = Some n; _ } -> Printf.sprintf "VARCHAR(%d)" n
  | Dtype.Varchar { max_len = None; _ } -> "VARCHAR"
  | Dtype.Date -> "DATE"
  | Dtype.Time -> "TIME"
  | Dtype.Timestamp -> "TIMESTAMP"
  | Dtype.Interval_ym -> "INTERVAL YEAR TO MONTH"
  | Dtype.Interval_ds -> "INTERVAL DAY TO SECOND"
  | Dtype.Period Dtype.Pdate -> "PERIOD(DATE)"
  | Dtype.Period Dtype.Ptimestamp -> "PERIOD(TIMESTAMP)"
  | Dtype.Bytes -> "VARBYTE"

let render_value (v : Value.t) =
  match v with
  | Value.Bool b -> if b then "(1=1)" else "(1=0)"
  | Value.Interval i ->
      if i.Interval.months <> 0 && i.Interval.days = 0 && i.Interval.micros = 0L
      then
        if i.Interval.months mod 12 = 0 then
          Printf.sprintf "INTERVAL '%d' YEAR" (i.Interval.months / 12)
        else Printf.sprintf "INTERVAL '%d' MONTH" i.Interval.months
      else if i.Interval.months = 0 && i.Interval.micros = 0L then
        Printf.sprintf "INTERVAL '%d' DAY" i.Interval.days
      else if i.Interval.months = 0 && i.Interval.days = 0 then
        Printf.sprintf "INTERVAL '%Ld' SECOND"
          (Int64.div i.Interval.micros 1_000_000L)
      else
        Sql_error.unsupported "cannot serialize mixed-unit interval literal"
  | Value.Timestamp _ -> Printf.sprintf "TIMESTAMP '%s'" (Value.to_string v)
  | Value.Time _ -> Printf.sprintf "TIME '%s'" (Value.to_string v)
  | v -> Value.to_sql_literal v

(* ------------------------------------------------------------------ *)
(* Scalar rendering                                                     *)
(* ------------------------------------------------------------------ *)

let arith_sym = function
  | Xtra.Add -> "+"
  | Xtra.Sub -> "-"
  | Xtra.Mul -> "*"
  | Xtra.Div -> "/"
  | Xtra.Modulo -> "%"

let cmp_sym = function
  | Xtra.Eq -> "="
  | Xtra.Neq -> "<>"
  | Xtra.Lt -> "<"
  | Xtra.Lte -> "<="
  | Xtra.Gt -> ">"
  | Xtra.Gte -> ">="

let field_sym = function
  | Xtra.Year -> "YEAR"
  | Xtra.Month -> "MONTH"
  | Xtra.Day -> "DAY"
  | Xtra.Hour -> "HOUR"
  | Xtra.Minute -> "MINUTE"
  | Xtra.Second -> "SECOND"

let render_function_name cap name =
  match name with
  | "CHARACTER_LENGTH" -> cap.Capability.length_function
  | n -> n

let rec render_scalar ctx b (s : Xtra.scalar) : string =
  let r = render_scalar ctx b in
  match s with
  | Xtra.Const v -> render_value v
  | Xtra.Col_ref c -> lookup_col ctx b c
  | Xtra.Param n -> Printf.sprintf "$%d" n
  | Xtra.Arith (((Xtra.Add | Xtra.Sub) as op), a, bb)
    when ctx.cap.Capability.add_days_function <> None
         && Xtra.type_of_scalar a = Dtype.Date
         && Xtra.type_of_scalar bb = Dtype.Int ->
      (* targets that spell day arithmetic as a function (dateadd/date_add) *)
      let f = Option.get ctx.cap.Capability.add_days_function in
      let n = if op = Xtra.Add then r bb else Printf.sprintf "(0 - %s)" (r bb) in
      Printf.sprintf "%s(%s, %s)" f (r a) n
  | Xtra.Arith (op, a, bb) -> Printf.sprintf "(%s %s %s)" (r a) (arith_sym op) (r bb)
  | Xtra.Cmp (op, a, bb) -> Printf.sprintf "(%s %s %s)" (r a) (cmp_sym op) (r bb)
  | Xtra.Logic_and (a, bb) -> Printf.sprintf "(%s AND %s)" (r a) (r bb)
  | Xtra.Logic_or (a, bb) -> Printf.sprintf "(%s OR %s)" (r a) (r bb)
  | Xtra.Logic_not a -> Printf.sprintf "(NOT %s)" (r a)
  | Xtra.Is_null (a, false) -> Printf.sprintf "(%s IS NULL)" (r a)
  | Xtra.Is_null (a, true) -> Printf.sprintf "(%s IS NOT NULL)" (r a)
  | Xtra.Case { branches; else_branch; _ } ->
      let parts =
        List.map (fun (c, v) -> Printf.sprintf "WHEN %s THEN %s" (r c) (r v)) branches
      in
      let e =
        match else_branch with
        | Some v -> Printf.sprintf " ELSE %s" (r v)
        | None -> ""
      in
      Printf.sprintf "CASE %s%s END" (String.concat " " parts) e
  | Xtra.Cast (a, t) -> Printf.sprintf "CAST(%s AS %s)" (r a) (render_type ctx.cap t)
  | Xtra.Func { name = "ADD_DAYS"; args = [ d; n ]; _ } -> (
      match ctx.cap.Capability.add_days_function with
      | Some f -> Printf.sprintf "%s(%s, %s)" f (r d) (r n)
      | None -> Printf.sprintf "(%s + %s)" (r d) (r n))
  | Xtra.Func { name = "POSITION"; args = [ needle; hay ]; _ } ->
      (* POSITION uses the standard infix argument syntax *)
      Printf.sprintf "POSITION(%s IN %s)" (r needle) (r hay)
  | Xtra.Func { name; args = []; _ }
    when List.mem name [ "CURRENT_DATE"; "CURRENT_TIME"; "CURRENT_TIMESTAMP"; "CURRENT_USER" ]
    ->
      name
  | Xtra.Func { name; args; _ } ->
      Printf.sprintf "%s(%s)"
        (render_function_name ctx.cap name)
        (String.concat ", " (List.map r args))
  | Xtra.Extract (f, a) -> Printf.sprintf "EXTRACT(%s FROM %s)" (field_sym f) (r a)
  | Xtra.Concat (a, bb) -> Printf.sprintf "(%s || %s)" (r a) (r bb)
  | Xtra.Like { arg; pattern; escape; negated } ->
      Printf.sprintf "(%s %sLIKE %s%s)" (r arg)
        (if negated then "NOT " else "")
        (r pattern)
        (match escape with Some e -> " ESCAPE " ^ r e | None -> "")
  | Xtra.In_list { arg; items; negated } ->
      Printf.sprintf "(%s %sIN (%s))" (r arg)
        (if negated then "NOT " else "")
        (String.concat ", " (List.map r items))
  | Xtra.Scalar_subquery q -> Printf.sprintf "(%s)" (render_subquery ctx b q)
  | Xtra.Exists q -> Printf.sprintf "EXISTS (%s)" (render_subquery ctx b q)
  | Xtra.In_subquery { args; subquery; negated } ->
      let lhs =
        match args with
        | [ a ] -> r a
        | many -> Printf.sprintf "(%s)" (String.concat ", " (List.map r many))
      in
      Printf.sprintf "(%s %sIN (%s))" lhs
        (if negated then "NOT " else "")
        (render_subquery ctx b subquery)
  | Xtra.Quantified { lhs; op; quant; subquery } ->
      let l =
        match lhs with
        | [ a ] -> r a
        | many -> Printf.sprintf "(%s)" (String.concat ", " (List.map r many))
      in
      Printf.sprintf "(%s %s %s (%s))" l (cmp_sym op)
        (match quant with Xtra.Any -> "ANY" | Xtra.All -> "ALL")
        (render_subquery ctx b subquery)
  | Xtra.Agg_ref a -> render_agg ctx b a
  | Xtra.Window_ref w -> render_window ctx b w

and render_agg ctx b (a : Xtra.agg_def) =
  match (a.Xtra.afunc, a.Xtra.aarg) with
  | Xtra.Count_star, _ -> "COUNT(*)"
  | f, Some arg ->
      Printf.sprintf "%s(%s%s)" (Xtra.agg_name f)
        (if a.Xtra.adistinct then "DISTINCT " else "")
        (render_scalar ctx b arg)
  | f, None -> Sql_error.internal_error "aggregate %s without argument" (Xtra.agg_name f)

and render_window ctx b (w : Xtra.window_def) =
  let call =
    match w.Xtra.wfunc with
    | Xtra.W_rank -> "RANK()"
    | Xtra.W_dense_rank -> "DENSE_RANK()"
    | Xtra.W_row_number -> "ROW_NUMBER()"
    | Xtra.W_agg Xtra.Count_star -> "COUNT(*)"
    | (Xtra.W_lag | Xtra.W_lead | Xtra.W_first_value | Xtra.W_last_value) as f ->
        Printf.sprintf "%s(%s)" (Xtra.window_name f)
          (String.concat ", " (List.map (render_scalar ctx b) w.Xtra.wargs))
    | Xtra.W_agg f ->
        Printf.sprintf "%s(%s)" (Xtra.agg_name f)
          (String.concat ", " (List.map (render_scalar ctx b) w.Xtra.wargs))
  in
  let partition =
    if w.Xtra.partition = [] then ""
    else
      "PARTITION BY "
      ^ String.concat ", " (List.map (render_scalar ctx b) w.Xtra.partition)
  in
  let order =
    if w.Xtra.worder = [] then ""
    else "ORDER BY " ^ String.concat ", " (List.map (render_sort_key ctx b) w.Xtra.worder)
  in
  let frame =
    match w.Xtra.wframe with
    | None -> ""
    | Some f ->
        let unit = match f.Xtra.frame_unit with `Rows -> "ROWS" | `Range -> "RANGE" in
        let bound = function
          | Xtra.Unbounded_preceding -> "UNBOUNDED PRECEDING"
          | Xtra.Preceding n -> Printf.sprintf "%d PRECEDING" n
          | Xtra.Current_row -> "CURRENT ROW"
          | Xtra.Following n -> Printf.sprintf "%d FOLLOWING" n
          | Xtra.Unbounded_following -> "UNBOUNDED FOLLOWING"
        in
        Printf.sprintf "%s BETWEEN %s AND %s" unit (bound f.Xtra.frame_start)
          (bound f.Xtra.frame_end)
  in
  let spec =
    String.concat " " (List.filter (fun s -> s <> "") [ partition; order; frame ])
  in
  Printf.sprintf "%s OVER (%s)" call spec

and render_sort_key ctx b (k : Xtra.sort_key) =
  let dir = match k.Xtra.dir with Xtra.Asc -> "ASC" | Xtra.Desc -> "DESC" in
  let nulls =
    if not ctx.cap.Capability.nulls_ordering_syntax then ""
    else
      match k.Xtra.nulls with
      | Xtra.Nulls_first -> " NULLS FIRST"
      | Xtra.Nulls_last -> " NULLS LAST"
  in
  Printf.sprintf "%s %s%s" (render_scalar ctx b k.Xtra.key) dir nulls

(* Render a nested rel (subquery) with the enclosing block's columns
   available as correlated references. *)
and render_subquery ctx b rel =
  let saved = ctx.outer in
  ctx.outer <- b.b_map @ ctx.outer;
  let sql = render_rel_to_sql ctx rel in
  ctx.outer <- saved;
  sql

(* ------------------------------------------------------------------ *)
(* Block construction                                                   *)
(* ------------------------------------------------------------------ *)

and render_block ctx b : string =
  let buf = Buffer.create 128 in
  (if b.b_with <> [] then begin
     Buffer.add_string buf
       (if b.b_recursive then "WITH RECURSIVE " else "WITH ");
     Buffer.add_string buf
       (String.concat ", "
          (List.map (fun (n, sql) -> Printf.sprintf "%s AS (%s)" n sql) b.b_with));
     Buffer.add_char buf ' '
   end);
  Buffer.add_string buf "SELECT ";
  if b.b_distinct then Buffer.add_string buf "DISTINCT ";
  (match b.b_top with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf ' '
  | None -> ());
  let select_items =
    if b.b_select <> [] then b.b_select
    else
      List.map
        (fun ((c : Xtra.col), alias) -> (lookup_col ctx b c, alias))
        (output_aliases b.b_schema)
  in
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (e, a) -> if e = a then e else Printf.sprintf "%s AS %s" e a)
          select_items));
  if b.b_from <> "" then (
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf b.b_from);
  if b.b_where <> [] then (
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (String.concat " AND " b.b_where));
  if b.b_group <> [] then (
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " b.b_group));
  if b.b_having <> [] then (
    Buffer.add_string buf " HAVING ";
    Buffer.add_string buf (String.concat " AND " b.b_having));
  if b.b_qualify <> [] then (
    Buffer.add_string buf " QUALIFY ";
    Buffer.add_string buf (String.concat " AND " b.b_qualify));
  if b.b_order <> [] then (
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf (String.concat ", " b.b_order));
  (match b.b_limit with
  | Some l ->
      Buffer.add_string buf " LIMIT ";
      Buffer.add_string buf l
  | None -> ());
  (match b.b_offset with
  | Some o ->
      Buffer.add_string buf " OFFSET ";
      Buffer.add_string buf o
  | None -> ());
  Buffer.contents buf

(* Wrap a block into a derived table; returns a fresh block whose map points
   at the derived table's columns. *)
and wrap ctx b : block =
  let alias = fresh_alias ctx in
  let aliases = output_aliases b.b_schema in
  (* ensure the select list materializes the output aliases *)
  if b.b_select = [] then
    b.b_select <-
      List.map (fun ((c : Xtra.col), a) -> (lookup_col ctx b c, a)) aliases;
  let sql = render_block ctx b in
  let nb = new_block () in
  nb.b_from <- Printf.sprintf "(%s) AS %s" sql alias;
  nb.b_schema <- b.b_schema;
  nb.b_map <-
    List.map
      (fun ((c : Xtra.col), a) -> (c.Xtra.id, Printf.sprintf "%s.%s" alias a))
      aliases;
  nb

(* Can more clauses of the given kind be merged into this block? *)
and can_add_where b = b.b_select = [] && b.b_group = [] && not b.b_has_window
                      && b.b_limit = None && b.b_order = [] && not b.b_distinct
and can_add_having b = b.b_group <> [] && b.b_limit = None && b.b_order = [] && not b.b_has_window
and is_plain_from b =
  b.b_select = [] && b.b_where = [] && b.b_group = [] && b.b_having = []
  && b.b_qualify = [] && b.b_order = [] && b.b_limit = None && not b.b_distinct
  && not b.b_has_window && b.b_with = []

and build ctx (r : Xtra.rel) : block =
  match r with
  | Xtra.Get { table; table_schema; alias = _ } ->
      let alias = fresh_alias ctx in
      let b = new_block () in
      b.b_from <- Printf.sprintf "%s AS %s" table alias;
      b.b_schema <- table_schema;
      b.b_map <-
        List.map
          (fun (c : Xtra.col) -> (c.Xtra.id, Printf.sprintf "%s.%s" alias c.Xtra.name))
          table_schema;
      b
  | Xtra.Cte_ref { cte_name; ref_schema } ->
      let alias = fresh_alias ctx in
      let b = new_block () in
      b.b_from <- Printf.sprintf "%s AS %s" cte_name alias;
      b.b_schema <- ref_schema;
      b.b_map <-
        List.map
          (fun (c : Xtra.col) -> (c.Xtra.id, Printf.sprintf "%s.%s" alias c.Xtra.name))
          ref_schema;
      b
  | Xtra.Values_rel { rows = [ [] ]; values_schema = [] } ->
      (* FROM-less SELECT *)
      let b = new_block () in
      b.b_select <- [ ("1", "DUMMY") ];
      b
  | Xtra.Values_rel { rows = []; values_schema } ->
      (* constant-empty relation (e.g. contradiction pruning): a one-row
         VALUES of typed NULLs under an always-false WHERE keeps the schema
         and column types while returning no rows on any target — a bare
         `(VALUES )` is not legal SQL anywhere *)
      let null_row =
        List.map
          (fun (c : Xtra.col) ->
            match c.Xtra.ty with
            | Dtype.Unknown -> Xtra.cnull
            | ty -> Xtra.Cast (Xtra.cnull, ty))
          values_schema
      in
      let b = build ctx (Xtra.Values_rel { rows = [ null_row ]; values_schema }) in
      b.b_where <- [ "1 = 0" ];
      b
  | Xtra.Values_rel { rows; values_schema } ->
      let alias = fresh_alias ctx in
      let b = new_block () in
      let tmp = new_block () in
      let row_sql row =
        Printf.sprintf "(%s)"
          (String.concat ", " (List.map (render_scalar ctx tmp) row))
      in
      let names = List.map (fun (c : Xtra.col) -> c.Xtra.name) values_schema in
      b.b_from <-
        Printf.sprintf "(VALUES %s) AS %s (%s)"
          (String.concat ", " (List.map row_sql rows))
          alias (String.concat ", " names);
      b.b_schema <- values_schema;
      b.b_map <-
        List.map
          (fun (c : Xtra.col) -> (c.Xtra.id, Printf.sprintf "%s.%s" alias c.Xtra.name))
          values_schema;
      b
  | Xtra.Filter { input; pred } ->
      let b = build ctx input in
      if can_add_where b then begin
        b.b_where <- b.b_where @ [ render_scalar ctx b pred ];
        b
      end
      else if can_add_having b then begin
        b.b_having <- b.b_having @ [ render_scalar ctx b pred ];
        b
      end
      else if
        b.b_has_window && ctx.cap.Capability.qualify_clause && b.b_limit = None
        && b.b_order = []
      then begin
        b.b_qualify <- b.b_qualify @ [ render_scalar ctx b pred ];
        b
      end
      else begin
        let b = wrap ctx b in
        b.b_where <- [ render_scalar ctx b pred ];
        b
      end
  | Xtra.Project { input; proj } ->
      let b = build ctx input in
      let b =
        if b.b_limit = None && b.b_order = [] && not b.b_distinct && b.b_select = []
        then b
        else wrap ctx b
      in
      let schema = List.map fst proj in
      let aliases = output_aliases schema in
      b.b_select <-
        List.map2
          (fun (_, e) ((_ : Xtra.col), a) -> (render_scalar ctx b e, a))
          proj aliases;
      b.b_map <-
        List.map2
          (fun ((c : Xtra.col), e) ((_ : Xtra.col), _) -> (c.Xtra.id, render_scalar ctx b e))
          proj aliases;
      (* recompute map AFTER setting select so self-references are stable;
         expression text is usable in WHERE/ORDER of enclosing merges *)
      b.b_schema <- schema;
      b
  | Xtra.Join { kind; left; right; pred } ->
      let lb = build ctx left in
      let lb = if is_plain_from lb then lb else wrap ctx lb in
      let rb = build ctx right in
      let rb = if is_plain_from rb then rb else wrap ctx rb in
      let b = new_block () in
      b.b_map <- lb.b_map @ rb.b_map;
      b.b_schema <- lb.b_schema @ rb.b_schema;
      b.b_with <- lb.b_with @ rb.b_with;
      b.b_recursive <- lb.b_recursive || rb.b_recursive;
      let kw =
        match kind with
        | Xtra.Inner -> "INNER JOIN"
        | Xtra.Left_outer -> "LEFT OUTER JOIN"
        | Xtra.Right_outer -> "RIGHT OUTER JOIN"
        | Xtra.Full_outer -> "FULL OUTER JOIN"
        | Xtra.Cross -> "CROSS JOIN"
      in
      (match (kind, pred) with
      | Xtra.Cross, None ->
          b.b_from <- Printf.sprintf "%s CROSS JOIN %s" lb.b_from rb.b_from
      | Xtra.Cross, Some p ->
          b.b_from <- Printf.sprintf "%s CROSS JOIN %s" lb.b_from rb.b_from;
          b.b_where <- [ render_scalar ctx b p ]
      | _, Some p ->
          b.b_from <-
            Printf.sprintf "%s %s %s ON %s" lb.b_from kw rb.b_from
              (render_scalar ctx b p)
      | _, None ->
          b.b_from <- Printf.sprintf "%s %s %s ON (1=1)" lb.b_from kw rb.b_from);
      b
  | Xtra.Aggregate { input; group_by; aggs; grouping_sets } ->
      let b = build ctx input in
      let b = if can_add_where b && b.b_where = [] || can_add_where b then b else if is_mergeable_for_agg b then b else wrap ctx b in
      let group_texts = List.map (fun (_, e) -> render_scalar ctx b e) group_by in
      let agg_texts = List.map (fun (_, a) -> render_agg ctx b a) aggs in
      let schema = List.map fst group_by @ List.map fst aggs in
      let aliases = output_aliases schema in
      let texts = group_texts @ agg_texts in
      b.b_select <-
        List.map2 (fun t ((_ : Xtra.col), a) -> (t, a)) texts aliases;
      b.b_map <- List.map2 (fun t ((c : Xtra.col), _) -> (c.Xtra.id, t)) texts aliases;
      b.b_schema <- schema;
      (match grouping_sets with
      | None -> b.b_group <- group_texts
      | Some sets ->
          (* native grouping-sets target *)
          let set_sql set =
            Printf.sprintf "(%s)"
              (String.concat ", " (List.map (fun i -> List.nth group_texts i) set))
          in
          b.b_group <-
            [ Printf.sprintf "GROUPING SETS (%s)" (String.concat ", " (List.map set_sql sets)) ]);
      if group_texts = [] && (match grouping_sets with None -> true | Some _ -> false) then b.b_group <- [];
      b
  | Xtra.Window { input; windows } ->
      let b = build ctx input in
      let b =
        if b.b_limit = None && b.b_order = [] && not b.b_distinct then b
        else wrap ctx b
      in
      let input_schema = Xtra.schema_of input in
      let schema = input_schema @ List.map fst windows in
      let aliases = output_aliases schema in
      let base_items =
        List.map
          (fun (c : Xtra.col) -> (lookup_col ctx b c, c))
          input_schema
      in
      let win_items =
        List.map (fun ((c : Xtra.col), w) -> (render_window ctx b w, c)) windows
      in
      let items = base_items @ win_items in
      b.b_select <-
        List.map2 (fun (t, _) ((_ : Xtra.col), a) -> (t, a)) items aliases;
      b.b_map <-
        List.map2 (fun (t, (c : Xtra.col)) _ -> (c.Xtra.id, t)) items aliases;
      b.b_schema <- schema;
      b.b_has_window <- true;
      b
  | Xtra.Sort { input; sort_keys } ->
      let b = build ctx input in
      let b = if b.b_limit = None && b.b_order = [] then b else wrap ctx b in
      b.b_order <- List.map (render_sort_key ctx b) sort_keys;
      b
  | Xtra.Limit { input; count; offset; with_ties; percent } ->
      let b = build ctx input in
      let b = if b.b_limit = None then b else wrap ctx b in
      let tmp_count = Option.map (render_scalar ctx b) count in
      if with_ties || percent then begin
        (* only reachable for targets that natively support TOP *)
        let top =
          Printf.sprintf "TOP %s%s%s"
            (match tmp_count with Some c -> c | None -> "ALL")
            (if percent then " PERCENT" else "")
            (if with_ties then " WITH TIES" else "")
        in
        b.b_top <- Some top
      end
      else begin
        b.b_limit <- tmp_count;
        b.b_offset <- Option.map (render_scalar ctx b) offset
      end;
      b
  | Xtra.Distinct { input } ->
      let b = build ctx input in
      let b = if b.b_limit = None && b.b_order = [] && not b.b_distinct then b else wrap ctx b in
      b.b_distinct <- true;
      b
  | Xtra.Set_operation { op; all; left; right } ->
      let lsql = render_rel_to_sql ctx left in
      let rsql = render_rel_to_sql ctx right in
      let kw =
        (match op with
        | Xtra.Union -> "UNION"
        | Xtra.Intersect -> "INTERSECT"
        | Xtra.Except -> "EXCEPT")
        ^ if all then " ALL" else ""
      in
      let alias = fresh_alias ctx in
      let schema = Xtra.schema_of left in
      let aliases = output_aliases schema in
      let b = new_block () in
      b.b_from <- Printf.sprintf "((%s) %s (%s)) AS %s" lsql kw rsql alias;
      b.b_schema <- schema;
      b.b_map <-
        List.map
          (fun ((c : Xtra.col), a) -> (c.Xtra.id, Printf.sprintf "%s.%s" alias a))
          aliases;
      b
  | Xtra.With_cte { ctes; cte_recursive; body } ->
      let cte_sqls =
        List.map
          (fun (n, q) ->
            match (cte_recursive, q) with
            | true, Xtra.Set_operation { op; all; left; right } ->
                (* a recursive CTE body must stay <seed> UNION ALL <step>
                   at the top level — no derived-table wrapping *)
                let kw =
                  (match op with
                  | Xtra.Union -> "UNION"
                  | Xtra.Intersect -> "INTERSECT"
                  | Xtra.Except -> "EXCEPT")
                  ^ if all then " ALL" else ""
                in
                ( n,
                  Printf.sprintf "(%s) %s (%s)" (render_rel_to_sql ctx left) kw
                    (render_rel_to_sql ctx right) )
            | _ -> (n, render_rel_to_sql ctx q))
          ctes
      in
      let b = build ctx body in
      (* attach the WITH clause to the outermost block of the body *)
      let b = if b.b_with = [] then b else wrap ctx b in
      b.b_with <- cte_sqls;
      b.b_recursive <- cte_recursive;
      b

and is_mergeable_for_agg b =
  b.b_select = [] && b.b_group = [] && not b.b_has_window && b.b_limit = None
  && b.b_order = [] && not b.b_distinct

and render_rel_to_sql ctx rel = render_block ctx (build ctx rel)

(* The set-operation output column names must be stable: SQL takes them from
   the left branch, so force explicit select-list aliases on both branches.
   [render_rel_to_sql] already materializes aliases via output_aliases when
   b_select is empty — but positional alignment is what set ops use, so the
   default behaviour is correct. *)

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let render_query ~cap rel =
  let ctx = create_ctx cap in
  render_rel_to_sql ctx rel

let serialize ~cap (st : Xtra.statement) : string =
  let ctx = create_ctx cap in
  match st with
  | Xtra.Query rel -> render_rel_to_sql ctx rel
  | Xtra.Insert { target; target_cols; source } -> (
      let cols = String.concat ", " target_cols in
      match source with
      | Xtra.Values_rel { rows; _ } ->
          let tmp = new_block () in
          let row_sql row =
            Printf.sprintf "(%s)"
              (String.concat ", " (List.map (render_scalar ctx tmp) row))
          in
          Printf.sprintf "INSERT INTO %s (%s) VALUES %s" target cols
            (String.concat ", " (List.map row_sql rows))
      | rel ->
          Printf.sprintf "INSERT INTO %s (%s) %s" target cols
            (render_rel_to_sql ctx rel))
  | Xtra.Update { target; update_alias; assignments; extra_from; upd_pred; upd_schema }
    ->
      let b = new_block () in
      b.b_map <-
        List.map
          (fun (c : Xtra.col) ->
            (c.Xtra.id, Printf.sprintf "%s.%s" update_alias c.Xtra.name))
          upd_schema;
      let from_sql =
        match extra_from with
        | None -> ""
        | Some rel ->
            let fb = build ctx rel in
            let fb = if is_plain_from fb then fb else wrap ctx fb in
            b.b_map <- b.b_map @ fb.b_map;
            Printf.sprintf " FROM %s" fb.b_from
      in
      let sets =
        String.concat ", "
          (List.map
             (fun (c, e) -> Printf.sprintf "%s = %s" c (render_scalar ctx b e))
             assignments)
      in
      let where =
        match upd_pred with
        | Some p -> Printf.sprintf " WHERE %s" (render_scalar ctx b p)
        | None -> ""
      in
      Printf.sprintf "UPDATE %s AS %s SET %s%s%s" target update_alias sets
        from_sql where
  | Xtra.Delete { target; delete_alias; extra_from; del_pred; del_schema } -> (
      let b = new_block () in
      b.b_map <-
        List.map
          (fun (c : Xtra.col) ->
            (c.Xtra.id, Printf.sprintf "%s.%s" delete_alias c.Xtra.name))
          del_schema;
      match extra_from with
      | None ->
          let where =
            match del_pred with
            | Some p -> Printf.sprintf " WHERE %s" (render_scalar ctx b p)
            | None -> ""
          in
          Printf.sprintf "DELETE FROM %s AS %s%s" target delete_alias where
      | Some rel ->
          (* rewrite the Teradata DELETE..FROM join form into an EXISTS *)
          let fb = build ctx rel in
          let fb = if is_plain_from fb then fb else wrap ctx fb in
          let inner_where =
            match del_pred with
            | Some p ->
                b.b_map <- b.b_map @ fb.b_map;
                Printf.sprintf " WHERE %s" (render_scalar ctx b p)
            | None -> ""
          in
          Printf.sprintf "DELETE FROM %s AS %s WHERE EXISTS (SELECT 1 FROM %s%s)"
            target delete_alias fb.b_from inner_where)
  | Xtra.Merge
      {
        m_target;
        m_alias;
        m_schema;
        m_source;
        m_source_alias = _;
        m_on;
        m_matched_update;
        m_matched_delete;
        m_not_matched_insert;
      } ->
      if not cap.Capability.merge_stmt then
        Sql_error.capability_gap
          "target %s does not support MERGE; emulation required" cap.Capability.name;
      let b = new_block () in
      b.b_map <-
        List.map
          (fun (c : Xtra.col) -> (c.Xtra.id, Printf.sprintf "%s.%s" m_alias c.Xtra.name))
          m_schema;
      let sb = build ctx m_source in
      let sb = if is_plain_from sb then sb else wrap ctx sb in
      b.b_map <- b.b_map @ sb.b_map;
      let matched =
        match (m_matched_update, m_matched_delete) with
        | Some sets, _ ->
            Printf.sprintf " WHEN MATCHED THEN UPDATE SET %s"
              (String.concat ", "
                 (List.map
                    (fun (c, e) -> Printf.sprintf "%s = %s" c (render_scalar ctx b e))
                    sets))
        | None, true -> " WHEN MATCHED THEN DELETE"
        | None, false -> ""
      in
      let not_matched =
        match m_not_matched_insert with
        | Some (cols, vals) ->
            Printf.sprintf " WHEN NOT MATCHED THEN INSERT (%s) VALUES (%s)"
              (String.concat ", " cols)
              (String.concat ", " (List.map (render_scalar ctx b) vals))
        | None -> ""
      in
      Printf.sprintf "MERGE INTO %s AS %s USING %s ON %s%s%s" m_target m_alias
        sb.b_from
        (render_scalar ctx b m_on)
        matched not_matched
  | Xtra.Create_table { ct_name; persistence; specs; set_semantics = _; ct_if_not_exists }
    ->
      let col_sql (s : Xtra.column_spec) =
        let tmp = new_block () in
        Printf.sprintf "%s %s%s%s" s.Xtra.spec_name
          (render_type cap s.Xtra.spec_type)
          (if s.Xtra.spec_not_null then " NOT NULL" else "")
          (match s.Xtra.spec_default with
          | Some d -> Printf.sprintf " DEFAULT %s" (render_scalar ctx tmp d)
          | None -> "")
      in
      Printf.sprintf "CREATE %sTABLE %s%s (%s)"
        (match persistence with
        | Xtra.Tp_persistent -> ""
        | Xtra.Tp_temporary -> "TEMPORARY ")
        (if ct_if_not_exists then "IF NOT EXISTS " else "")
        ct_name
        (String.concat ", " (List.map col_sql specs))
  | Xtra.Create_table_as { cta_name; cta_persistence; cta_source; with_data } ->
      Printf.sprintf "CREATE %sTABLE %s AS (%s) WITH %sDATA"
        (match cta_persistence with
        | Xtra.Tp_persistent -> ""
        | Xtra.Tp_temporary -> "TEMPORARY ")
        cta_name
        (render_rel_to_sql ctx cta_source)
        (if with_data then "" else "NO ")
  | Xtra.Drop_table { dt_name; dt_if_exists } ->
      Printf.sprintf "DROP TABLE %s%s"
        (if dt_if_exists then "IF EXISTS " else "")
        dt_name
  | Xtra.Rename_table { rn_from; rn_to } ->
      Printf.sprintf "ALTER TABLE %s RENAME TO %s" rn_from rn_to
  | Xtra.Begin_tx -> "BEGIN TRANSACTION"
  | Xtra.Commit_tx -> "COMMIT"
  | Xtra.Rollback_tx -> "ROLLBACK"
  | Xtra.No_op reason -> Printf.sprintf "-- elided: %s" reason
