(** The bundled screening corpus and differential sample used when rule
    packs are loaded (bin `hyperq rules load`, repl [\rules load], the
    `rules` bench and the tests all share this, so a pack accepted in one
    place is accepted everywhere).

    Screening scripts are the analyzer corpus: the health-insurance and
    telco customer workloads plus TPC-H DDL and the 22 queries — the same
    ~14.3k statements `bench analyze` classifies. The differential sample
    executes a TPC-H subset plus synthetic antipattern queries (the shapes
    the example packs rewrite) on a small scale factor and compares engine
    results with and without the candidate pack. *)

module Pipeline = Hyperq_core.Pipeline

(* Generated-SQL antipattern shapes (tautologies, double negation, nested
   idempotent functions). The customer workloads are too clean to contain
   these, so without this script a cleanup pack would fire zero times
   during screening — and a pack whose rewrites only ever trigger on
   antipattern shapes would reach the engine unvalidated. *)
let antipattern_script =
  String.concat ";\n"
    [
      "CREATE TABLE AP_EVENTS (EVENT_ID INTEGER, LABEL VARCHAR(30), \
       SCORE DECIMAL(9,2), SEEN_DT DATE)";
      "SELECT UPPER(UPPER(LABEL)), TRIM(TRIM(LABEL)) FROM AP_EVENTS WHERE 1=1";
      "SELECT EVENT_ID + 0, COALESCE(LABEL, LABEL) FROM AP_EVENTS WHERE 1=1 \
       AND NOT (NOT (EVENT_ID > 10))";
      "SELECT ABS(ABS(SCORE)) FROM AP_EVENTS WHERE NOT (LABEL = 'noise')";
      "SELECT ADD_DAYS(SEEN_DT, 0) FROM AP_EVENTS WHERE \
       UPPER(UPPER(UPPER(LABEL))) = 'CRITICAL'";
      "SELECT DISTINCT LABEL FROM AP_EVENTS WHERE 1=1 AND SCORE = 0.0";
      "SELECT COUNT(*) FROM AP_EVENTS WHERE EVENT_ID = 42";
    ]

let screening_scripts () =
  [
    ("health", String.concat ";\n" (Customer.health_setup @ Customer.health_queries ()));
    ("telco", String.concat ";\n" (Customer.telco_setup @ Customer.telco_queries ()));
    ("tpch", String.concat ";\n" (Tpch.ddl @ List.map snd Tpch_queries.all));
    ("antipatterns", antipattern_script);
  ]

(** Populate a scratch differential pipeline: TPC-H at a tiny scale factor
    (deterministic generator, so the base and packed pipelines hold
    identical data). *)
let differential_setup ?(sf = 0.002) (pipeline : Pipeline.t) =
  ignore (Tpch.setup ~sf pipeline)

(** Queries compared between the base and packed pipelines. A mix of real
    TPC-H and synthetic antipattern shapes that exercise the example
    packs' rules (so a wrong rewrite of those shapes is caught by results,
    not just by the validator). *)
let differential_queries () =
  List.filter_map
    (fun n -> List.assoc_opt n Tpch_queries.all)
    [ "Q1"; "Q3"; "Q6"; "Q12" ]
  @ [
      "SELECT L_ORDERKEY, UPPER(UPPER(L_SHIPMODE)) FROM LINEITEM WHERE 1=1 \
       AND NOT (NOT (L_QUANTITY > 30))";
      "SELECT COUNT(*) FROM ORDERS WHERE 1=1 AND TRIM(TRIM(O_ORDERPRIORITY)) \
       = '1-URGENT'";
      "SELECT O_ORDERKEY + 0, COALESCE(O_CLERK, O_CLERK) FROM ORDERS WHERE \
       NOT (O_SHIPPRIORITY = 0)";
      "SELECT DISTINCT L_RETURNFLAG FROM LINEITEM WHERE \
       UPPER(UPPER(UPPER(L_RETURNFLAG))) = 'R'";
    ]

(** Load a pack with the full bundled screening + differential gate — the
    standard entry point for bin/bench/tests. [diff:false] skips the
    differential phase (parser/compiler/corpus screening still run). *)
let load_pack ?(diff = true) pipeline text =
  Pipeline.load_rule_pack pipeline ~corpus:(screening_scripts ())
    ?diff_setup:(if diff then Some (fun p -> differential_setup p) else None)
    ~diff_queries:(if diff then differential_queries () else [])
    text
