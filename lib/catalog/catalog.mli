(** Metadata catalog shared by the binder and the backend engine.

    Holds table definitions, view definitions (stored as source-dialect ASTs
    and expanded inline at bind time), Teradata macros and stored procedures
    (emulated in the middle tier), and column properties the target system
    cannot represent — the paper's "DTM catalog". Object names are
    case-insensitive and normalized to uppercase. *)

open Hyperq_sqlvalue

type column = {
  col_name : string;
  col_type : Dtype.t;
  col_not_null : bool;
  col_default : Hyperq_sqlparser.Ast.expr option;
  col_case_specific : bool;
      (** false models Teradata NOT CASESPECIFIC: comparisons on the column
          are case-insensitive and must be UPPER-wrapped on most targets *)
}

type table = {
  tbl_name : string;
  tbl_columns : column list;
  tbl_set_semantics : bool;  (** Teradata SET table: rows are deduplicated *)
  tbl_temporary : bool;
}

type view = {
  view_name : string;
  view_columns : string list;  (** optional explicit column names *)
  view_query : Hyperq_sqlparser.Ast.query;
  view_dialect : Hyperq_sqlparser.Dialect.t;
}

type macro = {
  macro_name : string;
  macro_params : (string * Dtype.t) list;
  macro_body : Hyperq_sqlparser.Ast.statement list;
}

type procedure = {
  proc_name : string;
  proc_params : (string * Dtype.t) list;
  proc_body : Hyperq_sqlparser.Ast.proc_stmt list;
}

type t

val create : unit -> t

(** Monotonic DDL version: starts at 0 and increases on every successful
    mutation (add/drop/rename/replace of any object). Consumers that derive
    state from catalog contents — notably the translation plan cache — key
    on it to detect staleness. *)
val version : t -> int

val find_table : t -> string -> table option
val find_view : t -> string -> view option
val find_macro : t -> string -> macro option
val find_procedure : t -> string -> procedure option
val table_exists : t -> string -> bool
val view_exists : t -> string -> bool

(** Raises {!Sql_error.Error} if the table already exists. *)
val add_table : t -> table -> unit

(** Add or overwrite. *)
val replace_table : t -> table -> unit

val drop_table : t -> if_exists:bool -> string -> unit
val rename_table : t -> from_name:string -> to_name:string -> unit
val add_view : t -> replace:bool -> view -> unit
val drop_view : t -> if_exists:bool -> string -> unit
val add_macro : t -> replace:bool -> macro -> unit
val drop_macro : t -> if_exists:bool -> string -> unit
val add_procedure : t -> replace:bool -> procedure -> unit
val drop_procedure : t -> if_exists:bool -> string -> unit

(** Sorted by name. *)
val tables : t -> table list

val views : t -> view list
val macros : t -> macro list
val procedures : t -> procedure list

(** Case-insensitive column lookup within a table. *)
val column : table -> string -> column option

(** Deep copy (independent object namespaces). *)
val copy : t -> t
