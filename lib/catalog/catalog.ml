(** Metadata catalog shared by the binder and the backend engine.

    Holds table definitions, view definitions (stored as source-dialect ASTs
    and expanded inline at bind time), Teradata macros (emulated in the
    middle tier, paper Table 2) and extra column properties that the target
    system cannot represent — the paper's "DTM catalog" for unsupported
    column properties such as case-insensitive comparison or non-constant
    defaults. *)

open Hyperq_sqlvalue

type column = {
  col_name : string;
  col_type : Dtype.t;
  col_not_null : bool;
  col_default : Hyperq_sqlparser.Ast.expr option;
  col_case_specific : bool;
}

type table = {
  tbl_name : string;
  tbl_columns : column list;
  tbl_set_semantics : bool;  (** Teradata SET table: rows are deduplicated *)
  tbl_temporary : bool;
}

type view = {
  view_name : string;
  view_columns : string list;  (** optional explicit column names *)
  view_query : Hyperq_sqlparser.Ast.query;
  view_dialect : Hyperq_sqlparser.Dialect.t;
}

type macro = {
  macro_name : string;
  macro_params : (string * Dtype.t) list;
  macro_body : Hyperq_sqlparser.Ast.statement list;
}

type procedure = {
  proc_name : string;
  proc_params : (string * Dtype.t) list;
  proc_body : Hyperq_sqlparser.Ast.proc_stmt list;
}

type t = {
  tables : (string, table) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  macros : (string, macro) Hashtbl.t;
  procedures : (string, procedure) Hashtbl.t;
  mutable version : int;
      (** monotonic DDL counter; bumped on every successful mutation so
          downstream consumers (the translation plan cache) can detect that
          previously-derived plans are stale *)
}

let create () =
  {
    tables = Hashtbl.create 32;
    views = Hashtbl.create 8;
    macros = Hashtbl.create 8;
    procedures = Hashtbl.create 8;
    version = 0;
  }

let version t = t.version
let bump t = t.version <- t.version + 1

(* Object names are case-insensitive in both dialects we model. *)
let key name = String.uppercase_ascii name

let find_table t name = Hashtbl.find_opt t.tables (key name)
let find_view t name = Hashtbl.find_opt t.views (key name)
let find_macro t name = Hashtbl.find_opt t.macros (key name)

let table_exists t name = find_table t name <> None
let view_exists t name = find_view t name <> None

let add_table t (tbl : table) =
  if Hashtbl.mem t.tables (key tbl.tbl_name) then
    Sql_error.execution_error "table %s already exists" tbl.tbl_name;
  Hashtbl.replace t.tables (key tbl.tbl_name) { tbl with tbl_name = key tbl.tbl_name };
  bump t

let replace_table t (tbl : table) =
  Hashtbl.replace t.tables (key tbl.tbl_name) { tbl with tbl_name = key tbl.tbl_name };
  bump t

let drop_table t ~if_exists name =
  if Hashtbl.mem t.tables (key name) then begin
    Hashtbl.remove t.tables (key name);
    bump t
  end
  else if not if_exists then
    Sql_error.execution_error "table %s does not exist" name

let rename_table t ~from_name ~to_name =
  match find_table t from_name with
  | None -> Sql_error.execution_error "table %s does not exist" from_name
  | Some tbl ->
      if Hashtbl.mem t.tables (key to_name) then
        Sql_error.execution_error "table %s already exists" to_name;
      Hashtbl.remove t.tables (key from_name);
      Hashtbl.replace t.tables (key to_name) { tbl with tbl_name = key to_name };
      bump t

let add_view t ~replace (v : view) =
  if (not replace) && Hashtbl.mem t.views (key v.view_name) then
    Sql_error.execution_error "view %s already exists" v.view_name;
  Hashtbl.replace t.views (key v.view_name) { v with view_name = key v.view_name };
  bump t

let drop_view t ~if_exists name =
  if Hashtbl.mem t.views (key name) then begin
    Hashtbl.remove t.views (key name);
    bump t
  end
  else if not if_exists then
    Sql_error.execution_error "view %s does not exist" name

let add_macro t ~replace (m : macro) =
  if (not replace) && Hashtbl.mem t.macros (key m.macro_name) then
    Sql_error.execution_error "macro %s already exists" m.macro_name;
  Hashtbl.replace t.macros (key m.macro_name)
    { m with macro_name = key m.macro_name };
  bump t

let drop_macro t ~if_exists name =
  if Hashtbl.mem t.macros (key name) then begin
    Hashtbl.remove t.macros (key name);
    bump t
  end
  else if not if_exists then
    Sql_error.execution_error "macro %s does not exist" name

let find_procedure t name = Hashtbl.find_opt t.procedures (key name)

let add_procedure t ~replace (pr : procedure) =
  if (not replace) && Hashtbl.mem t.procedures (key pr.proc_name) then
    Sql_error.execution_error "procedure %s already exists" pr.proc_name;
  Hashtbl.replace t.procedures (key pr.proc_name)
    { pr with proc_name = key pr.proc_name };
  bump t

let drop_procedure t ~if_exists name =
  if Hashtbl.mem t.procedures (key name) then begin
    Hashtbl.remove t.procedures (key name);
    bump t
  end
  else if not if_exists then
    Sql_error.execution_error "procedure %s does not exist" name

let procedures t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.procedures []
  |> List.sort (fun a b -> String.compare a.proc_name b.proc_name)

let tables t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.tables []
  |> List.sort (fun a b -> String.compare a.tbl_name b.tbl_name)

let views t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.views []
  |> List.sort (fun a b -> String.compare a.view_name b.view_name)

let macros t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.macros []
  |> List.sort (fun a b -> String.compare a.macro_name b.macro_name)

let column tbl name =
  List.find_opt
    (fun c -> String.uppercase_ascii c.col_name = String.uppercase_ascii name)
    tbl.tbl_columns

(** Deep-copy into a fresh catalog (used to give each gateway session an
    isolated volatile-table namespace in tests). *)
let copy t =
  {
    tables = Hashtbl.copy t.tables;
    views = Hashtbl.copy t.views;
    macros = Hashtbl.copy t.macros;
    procedures = Hashtbl.copy t.procedures;
    version = t.version;
  }
