(* Static soundness screening of rule packs.

   Runs between Compile.compile and the dynamic corpus screen: both sides
   of every rule are instantiated over *symbolic* columns (one fresh
   column per LHS metavariable, typed by its [type(?x) = t] guard when
   present) and compared with the property inference from
   {!Hyperq_analyze.Infer}.  A pack that fails here is rejected before a
   single corpus statement is executed, with stable codes:

     R111  the replacement changes the statically inferred nullability
           class (a NOT NULL expression becomes nullable, or a guaranteed
           NULL stops being one)
     R112  the replacement changes the expression's type family (e.g. a
           boolean predicate rewritten to an integer)
     R113  the replacement introduces a non-immutable built-in call the
           pattern does not contain (CURRENT_*/RANDOM-alikes), so two
           evaluations of the "same" expression could disagree
     R114  a relational rule changes row semantics: it drops or adds a
           filter predicate that is not statically always-TRUE, or it
           changes whether duplicate rows are eliminated

   The checks are deliberately conservative in one direction only: an RHS
   that the inference proves *less* nullable than the LHS is allowed
   (inference imprecision on the pattern side is common — e.g.
   [?p OR TRUE => TRUE]); any drift toward more-nullable, NULL-dropping,
   other type families, or weaker determinism is rejected. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra
module Builtins = Hyperq_binder.Builtins
module Diag = Hyperq_analyze.Diag
module Infer = Hyperq_analyze.Infer

(* One fresh symbolic column per LHS scalar metavariable. Ids start high
   enough that they can never collide with binder- or transformer-made
   columns inside the same instantiated expression. *)
let symbolic_binds (r : Dsl.rule) =
  let lhs_vars, _ = Compile.body_vars r.Dsl.body in
  let type_guards =
    List.filter_map
      (function Dsl.G_type (v, ty, _) -> Some (v, ty) | _ -> None)
      r.Dsl.guards
  in
  let seen = Hashtbl.create 8 in
  let next = ref 0 in
  List.filter_map
    (fun (v, k, _) ->
      if Hashtbl.mem seen v then None
      else begin
        Hashtbl.add seen v ();
        match k with
        | Compile.K_scalar ->
            incr next;
            let ty =
              match List.assoc_opt v type_guards with
              | Some t -> t
              | None -> Dtype.Unknown
            in
            Some
              ( v,
                Compile.B_s
                  (Xtra.Col_ref
                     { Xtra.id = 9_000_000 + !next; name = "?" ^ v; ty }) )
        | Compile.K_rel -> None
      end)
    lhs_vars

let symbolic_env binds =
  List.fold_left
    (fun env (_, b) ->
      match b with
      | Compile.B_s (Xtra.Col_ref c) ->
          Infer.Imap.add c.Xtra.id Infer.unknown_props env
      | _ -> env)
    Infer.Imap.empty binds

let null_rank = function
  | Infer.Not_null -> 0
  | Infer.Maybe_null -> 1
  | Infer.Always_null -> 2

(* Flatten the (Filter/Distinct)* spine of a relational pattern. Filters
   commute with Distinct, so position in the spine does not matter. *)
let rec decompose preds distinct (p : Dsl.rp) =
  match p.Dsl.rn with
  | Dsl.R_meta _ -> (preds, distinct)
  | Dsl.R_filter (input, pred) -> decompose (pred :: preds) distinct input
  | Dsl.R_distinct input -> decompose preds (distinct + 1) input

let always_true (t : Infer.truth) =
  t.Infer.can_true && (not t.Infer.can_false) && not t.Infer.can_null

let check_rule pack_name add (r : Dsl.rule) =
  let attr = pack_name ^ ":" ^ r.Dsl.rule_id in
  let addf ~code fmt =
    Printf.ksprintf
      (fun m ->
        add (Diag.make ~rule:attr ~span:r.Dsl.rule_span ~code "%s" m))
      fmt
  in
  let binds = symbolic_binds r in
  let env = symbolic_env binds in
  match r.Dsl.body with
  | Dsl.B_scalar (lhs, rhs) -> (
      match
        ( (try Some (Compile.inst_scalar binds lhs) with _ -> None),
          try Some (Compile.inst_scalar binds rhs) with _ -> None )
      with
      | Some l, Some rr ->
          let lt = Xtra.type_of_scalar l and rt = Xtra.type_of_scalar rr in
          (match (lt, rt) with
          | Dtype.Unknown, _ | _, Dtype.Unknown -> ()
          | _ ->
              if not (Dtype.same_family lt rt) then
                addf ~code:"R112"
                  "rule %s: the replacement changes the expression type from \
                   %s to %s"
                  r.Dsl.rule_id (Dtype.to_string lt) (Dtype.to_string rt));
          (try
             let lp = Infer.scalar_props ~env l
             and rp = Infer.scalar_props ~env rr in
             let ln = lp.Infer.null and rn = rp.Infer.null in
             if
               null_rank rn > null_rank ln
               || (ln = Infer.Always_null && rn <> Infer.Always_null)
             then
               addf ~code:"R111"
                 "rule %s: the replacement changes nullability from %s to %s"
                 r.Dsl.rule_id
                 (Infer.nullability_name ln)
                 (Infer.nullability_name rn)
           with _ -> ());
          let ld = Infer.det_of_scalar l and rd = Infer.det_of_scalar rr in
          if Builtins.determinism_rank rd > Builtins.determinism_rank ld then
            addf ~code:"R113"
              "rule %s: the replacement introduces a %s built-in the pattern \
               does not contain"
              r.Dsl.rule_id
              (Builtins.determinism_name rd)
      | _ -> () (* unbound metavariables: Compile.check_rule reports R104 *))
  | Dsl.B_rel (lhs, rhs) -> (
      let lpreds, ldistinct = decompose [] 0 lhs
      and rpreds, rdistinct = decompose [] 0 rhs in
      if ldistinct > 0 <> (rdistinct > 0) then
        addf ~code:"R114"
          "rule %s: the replacement %s duplicate elimination, changing row \
           multiplicities"
          r.Dsl.rule_id
          (if ldistinct > 0 then "drops" else "adds");
      let inst ps =
        try Some (List.map (Compile.inst_scalar binds) ps) with _ -> None
      in
      match (inst lpreds, inst rpreds) with
      | Some li, Some ri ->
          let check verb only other =
            List.iter
              (fun p ->
                if not (List.mem p other) then
                  let droppable =
                    try always_true (Infer.predicate_truth ~env p)
                    with _ -> false
                  in
                  if not droppable then
                    addf ~code:"R114"
                      "rule %s: the replacement %s a filter predicate that is \
                       not statically always TRUE, changing which rows survive"
                      r.Dsl.rule_id verb)
              only
          in
          check "drops" li ri;
          check "adds" ri li
      | _ -> ())

(* [check] never raises: an inference failure inside a rule simply leaves
   that rule unflagged (the dynamic screen still guards it). *)
let check (p : Dsl.pack) : Diag.t list =
  let diags = ref [] in
  List.iter
    (fun r -> check_rule p.Dsl.pack_name (fun d -> diags := d :: !diags) r)
    p.Dsl.prules;
  Diag.sort (List.rev !diags)

let screen (p : Dsl.pack) : (unit, Diag.t list) result =
  match check p with [] -> Ok () | ds -> Error ds
