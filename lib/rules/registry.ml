(* Pack registry: named, versioned, screened rule packs layered in load
   order.  The registry is shared by every session of a pipeline; a
   session (or the gateway default) names the packs it wants and
   {!active} resolves them to the concatenated extra-rule closures plus
   a stable set id ("name@generation" joined with '+') that the plan
   cache folds into its key — so loading, reloading or dropping a pack
   can never let a stale plan be served.

   Loading demands a {!Screen.certificate}: screening is not optional.
   Fire counters are reset at install so screening/differential fires
   do not pollute the traffic-facing hyperq_rules_fires_total series. *)

module Transformer = Hyperq_transform.Transformer
module Xtra = Hyperq_xtra.Xtra

type rule_info = { ri_id : string; ri_name : string; ri_fires : int }

type pack_info = {
  pi_name : string;
  pi_version : int;
  pi_gen : int;  (** registry epoch at (re)load; part of the cache key *)
  pi_screened : int;  (** corpus statements screened at load *)
  pi_cap : string;  (** capability profile the pack was screened for *)
  pi_rules : rule_info list;
}

type loaded = { l_pack : Compile.pack; l_gen : int; l_screened : int; l_cap : string }

type t = {
  lock : Mutex.t;
  mutable packs : (string * loaded) list; (* insertion order = layering order *)
  mutable epoch : int;
  mutable loads : int;
  mutable drops : int;
  mutable rejections : int;
}

let create () =
  {
    lock = Mutex.create ();
    packs = [];
    epoch = 0;
    loads = 0;
    drops = 0;
    rejections = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let info_of name (l : loaded) =
  {
    pi_name = name;
    pi_version = l.l_pack.Compile.cp_version;
    pi_gen = l.l_gen;
    pi_screened = l.l_screened;
    pi_cap = l.l_cap;
    pi_rules =
      List.map
        (fun (r : Compile.crule) ->
          {
            ri_id = r.Compile.cr_id;
            ri_name = r.Compile.cr_name;
            ri_fires = Atomic.get r.Compile.cr_fires;
          })
        l.l_pack.Compile.cp_rules;
  }

(** Install (or replace, keeping its layer position) a screened pack. *)
let load t cert =
  let pack = Screen.pack cert in
  locked t (fun () ->
      t.epoch <- t.epoch + 1;
      t.loads <- t.loads + 1;
      List.iter (fun (r : Compile.crule) -> Atomic.set r.Compile.cr_fires 0) pack.Compile.cp_rules;
      let name = pack.Compile.cp_name in
      let l =
        {
          l_pack = pack;
          l_gen = t.epoch;
          l_screened = Screen.statements cert;
          l_cap = Screen.cap_name cert;
        }
      in
      if List.mem_assoc name t.packs then
        t.packs <- List.map (fun (n, old) -> if n = name then (n, l) else (n, old)) t.packs
      else t.packs <- t.packs @ [ (name, l) ];
      info_of name l)

let drop t name =
  locked t (fun () ->
      if List.mem_assoc name t.packs then begin
        t.packs <- List.remove_assoc name t.packs;
        t.epoch <- t.epoch + 1;
        t.drops <- t.drops + 1;
        true
      end
      else false)

let list_packs t = locked t (fun () -> List.map (fun (n, l) -> info_of n l) t.packs)

let find t name =
  locked t (fun () -> Option.map (info_of name) (List.assoc_opt name t.packs))

let epoch t = locked t (fun () -> t.epoch)
let note_rejection t = locked t (fun () -> t.rejections <- t.rejections + 1)

(** [(event, count)] pairs for hyperq_rules_events_total. *)
let counters t =
  locked t (fun () ->
      [ ("load", t.loads); ("drop", t.drops); ("rejection", t.rejections) ])

(** [(pack, rule, fires)] triples for hyperq_rules_fires_total. *)
let fire_counts t =
  locked t (fun () ->
      List.concat_map
        (fun (n, l) ->
          List.map
            (fun (r : Compile.crule) -> (n, r.Compile.cr_id, Atomic.get r.Compile.cr_fires))
            l.l_pack.Compile.cp_rules)
        t.packs)

(* ------------------------------------------------------------------ *)
(* Active-set resolution                                               *)
(* ------------------------------------------------------------------ *)

type active = {
  act_packs : string list;  (** resolved pack names, layering order *)
  act_set_id : string;  (** "" when empty; folded into plan-cache keys *)
  act_scalar : (Transformer.ctx -> Xtra.scalar -> Xtra.scalar option) list;
  act_rel : (Transformer.ctx -> Xtra.rel -> Xtra.rel option) list;
}

let empty_active = { act_packs = []; act_set_id = ""; act_scalar = []; act_rel = [] }

(** Resolve pack names (dedicated first occurrence wins; names that are
    not currently loaded are skipped, so a dropped pack silently stops
    applying) to concatenated closures + the cache-key set id. *)
let active t ~packs =
  match packs with
  | [] -> empty_active
  | packs ->
      locked t (fun () ->
          let seen = Hashtbl.create 4 in
          let resolved =
            List.filter_map
              (fun n ->
                if Hashtbl.mem seen n then None
                else begin
                  Hashtbl.add seen n ();
                  Option.map (fun l -> (n, l)) (List.assoc_opt n t.packs)
                end)
              packs
          in
          match resolved with
          | [] -> empty_active
          | rs ->
              {
                act_packs = List.map fst rs;
                act_set_id =
                  String.concat "+"
                    (List.map (fun (n, l) -> Printf.sprintf "%s@%d" n l.l_gen) rs);
                act_scalar = List.concat_map (fun (_, l) -> Compile.scalar_rules l.l_pack) rs;
                act_rel = List.concat_map (fun (_, l) -> Compile.rel_rules l.l_pack) rs;
              })
