(* Compiler from parsed rule packs (Dsl.pack) to Transformer extra-rule
   closures.  Static checks happen here with stable R1xx codes:

     R103  duplicate rule id within a pack
     R104  metavariable used on the RHS (or in a guard) but never bound
           on the LHS
     R105  unknown function, non-scalar function (aggregate/window), or
           wrong arity
     R106  unknown target profile in a guard
     R108  metavariable bound as a scalar but used as a relation (or
           vice versa)
     R110  bare-metavariable LHS (would match every node)

   A compiled rule carries an atomic fire counter (exported through the
   registry as hyperq_rules_fires_total) and reports each application to
   the Transformer ctx under the name "pack:rule", so loaded rules show
   up in `fired`/validator attribution exactly like built-ins. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra
module Capability = Hyperq_transform.Capability
module Transformer = Hyperq_transform.Transformer
module Builtins = Hyperq_binder.Builtins
module Diag = Hyperq_analyze.Diag

type crule = {
  cr_id : string;
  cr_name : string; (* "pack:rule" — the fired-attribution name *)
  cr_span : Dsl.span;
  cr_fires : int Atomic.t;
  cr_scalar : (Transformer.ctx -> Xtra.scalar -> Xtra.scalar option) option;
  cr_rel : (Transformer.ctx -> Xtra.rel -> Xtra.rel option) option;
}

type pack = { cp_name : string; cp_version : int; cp_rules : crule list }

let scalar_rules p = List.filter_map (fun r -> r.cr_scalar) p.cp_rules
let rel_rules p = List.filter_map (fun r -> r.cr_rel) p.cp_rules
let owns_rule p fired_name = String.starts_with ~prefix:(p.cp_name ^ ":") fired_name

(* ------------------------------------------------------------------ *)
(* Static checks                                                       *)
(* ------------------------------------------------------------------ *)

type kind = K_scalar | K_rel

let rec scalar_vars acc (p : Dsl.sp) =
  match p.Dsl.sn with
  | Dsl.S_meta v -> (v, K_scalar, p.Dsl.ssp) :: acc
  | Dsl.S_const _ -> acc
  | Dsl.S_arith (_, a, b) | Dsl.S_cmp (_, a, b) | Dsl.S_and (a, b) | Dsl.S_or (a, b) ->
      scalar_vars (scalar_vars acc a) b
  | Dsl.S_not a | Dsl.S_is_null (a, _) | Dsl.S_cast (a, _) -> scalar_vars acc a
  | Dsl.S_func (_, args) -> List.fold_left scalar_vars acc args

let rec rel_vars acc (r : Dsl.rp) =
  match r.Dsl.rn with
  | Dsl.R_meta v -> (v, K_rel, r.Dsl.rsp) :: acc
  | Dsl.R_filter (input, pred) -> rel_vars (scalar_vars acc pred) input
  | Dsl.R_distinct input -> rel_vars acc input

let rec scalar_funcs acc (p : Dsl.sp) =
  match p.Dsl.sn with
  | Dsl.S_func (f, args) ->
      List.fold_left scalar_funcs ((f, List.length args, p.Dsl.ssp) :: acc) args
  | Dsl.S_meta _ | Dsl.S_const _ -> acc
  | Dsl.S_arith (_, a, b) | Dsl.S_cmp (_, a, b) | Dsl.S_and (a, b) | Dsl.S_or (a, b) ->
      scalar_funcs (scalar_funcs acc a) b
  | Dsl.S_not a | Dsl.S_is_null (a, _) | Dsl.S_cast (a, _) -> scalar_funcs acc a

let rec rel_funcs acc (r : Dsl.rp) =
  match r.Dsl.rn with
  | Dsl.R_meta _ -> acc
  | Dsl.R_filter (input, pred) -> rel_funcs (scalar_funcs acc pred) input
  | Dsl.R_distinct input -> rel_funcs acc input

let body_vars = function
  | Dsl.B_scalar (lhs, rhs) -> (scalar_vars [] lhs, scalar_vars [] rhs)
  | Dsl.B_rel (lhs, rhs) -> (rel_vars [] lhs, rel_vars [] rhs)

let body_funcs = function
  | Dsl.B_scalar (lhs, rhs) -> scalar_funcs (scalar_funcs [] lhs) rhs
  | Dsl.B_rel (lhs, rhs) -> rel_funcs (rel_funcs [] lhs) rhs

let kind_name = function K_scalar -> "a scalar expression" | K_rel -> "a relation"

let check_rule pack_name add (r : Dsl.rule) =
  let attr = pack_name ^ ":" ^ r.Dsl.rule_id in
  let addf ~code ~span fmt =
    Printf.ksprintf (fun m -> add (Diag.make ~rule:attr ~span ~code "%s" m)) fmt
  in
  (* R110: a bare metavariable on the LHS would match every node. *)
  (match r.Dsl.body with
  | Dsl.B_scalar ({ Dsl.sn = Dsl.S_meta _; ssp }, _) ->
      addf ~code:"R110" ~span:ssp
        "rule %s: the left-hand side is a bare metavariable and would match every expression"
        r.Dsl.rule_id
  | Dsl.B_rel ({ Dsl.rn = Dsl.R_meta _; rsp }, _) ->
      addf ~code:"R110" ~span:rsp
        "rule %s: the left-hand side is a bare metavariable and would match every relation"
        r.Dsl.rule_id
  | _ -> ());
  let lhs_vars, rhs_vars = body_vars r.Dsl.body in
  (* Consistent kinds on the LHS itself. *)
  let lhs_kind v = List.find_map (fun (n, k, _) -> if n = v then Some k else None) lhs_vars in
  List.iter
    (fun (v, k, span) ->
      match lhs_kind v with
      | Some k0 when k0 <> k ->
          addf ~code:"R108" ~span "metavariable ?%s is bound as %s but also used as %s" v
            (kind_name k0) (kind_name k)
      | _ -> ())
    (* lhs_kind returns the first (deepest-last) binding; compare each
       occurrence against it *)
    lhs_vars;
  (* R104/R108: every RHS metavariable must be LHS-bound with the same kind. *)
  List.iter
    (fun (v, k, span) ->
      match lhs_kind v with
      | None ->
          addf ~code:"R104" ~span
            "metavariable ?%s appears in the replacement but is not bound by the pattern" v
      | Some k0 when k0 <> k ->
          addf ~code:"R108" ~span "metavariable ?%s is bound as %s but used as %s in the replacement"
            v (kind_name k0) (kind_name k)
      | Some _ -> ())
    rhs_vars;
  (* R105: all functions must be known scalar builtins with a legal arity. *)
  List.iter
    (fun (f, arity, span) ->
      match Builtins.lookup f with
      | Some (Builtins.Scalar _, lo, hi) ->
          if arity < lo || (hi >= 0 && arity > hi) then
            addf ~code:"R105" ~span "function %s called with %d argument(s); expected %s" f arity
              (if hi < 0 then Printf.sprintf "at least %d" lo
               else if lo = hi then string_of_int lo
               else Printf.sprintf "%d..%d" lo hi)
      | Some _ ->
          addf ~code:"R105" ~span
            "%s is not a scalar function; aggregates and window functions cannot appear in rule patterns"
            f
      | None -> addf ~code:"R105" ~span "unknown function %s" f)
    (body_funcs r.Dsl.body);
  (* Guards: targets must name a known capability profile; type guards must
     reference an LHS scalar metavariable. *)
  List.iter
    (fun g ->
      match g with
      | Dsl.G_target (t, span) ->
          if Capability.find t = None then
            addf ~code:"R106" ~span "unknown target profile '%s' in guard (known: %s)" t
              (String.concat ", " (List.map (fun c -> c.Capability.name) Capability.all_targets))
      | Dsl.G_type (v, _, span) -> (
          match lhs_kind v with
          | Some K_scalar -> ()
          | Some K_rel ->
              addf ~code:"R108" ~span
                "type guard on ?%s, but ?%s is bound as a relation" v v
          | None ->
              addf ~code:"R104" ~span
                "type guard references metavariable ?%s, which is not bound by the pattern" v))
    r.Dsl.guards

(* ------------------------------------------------------------------ *)
(* Matching and instantiation                                          *)
(* ------------------------------------------------------------------ *)

type bnd = B_s of Xtra.scalar | B_r of Xtra.rel

let canon f = Builtins.canonical_name f

let bind_var binds v b =
  match List.assoc_opt v binds with
  | None -> Some ((v, b) :: binds)
  | Some prev -> (
      (* Repeated metavariables require structurally equal occurrences. *)
      match (prev, b) with
      | B_s a, B_s b when a = b -> Some binds
      | B_r a, B_r b when a = b -> Some binds
      | _ -> None)

let rec match_scalar binds (p : Dsl.sp) (s : Xtra.scalar) =
  match (p.Dsl.sn, s) with
  | Dsl.S_meta v, _ -> bind_var binds v (B_s s)
  | Dsl.S_const c, Xtra.Const c' -> if c = c' then Some binds else None
  | Dsl.S_arith (op, a, b), Xtra.Arith (op', x, y) when op = op' -> match2 binds a x b y
  | Dsl.S_cmp (op, a, b), Xtra.Cmp (op', x, y) when op = op' -> match2 binds a x b y
  | Dsl.S_and (a, b), Xtra.Logic_and (x, y) -> match2 binds a x b y
  | Dsl.S_or (a, b), Xtra.Logic_or (x, y) -> match2 binds a x b y
  | Dsl.S_not a, Xtra.Logic_not x -> match_scalar binds a x
  | Dsl.S_is_null (a, neg), Xtra.Is_null (x, neg') when neg = neg' -> match_scalar binds a x
  | Dsl.S_func (f, args), Xtra.Func { name; args = xs; _ }
    when canon f = name && List.length args = List.length xs ->
      List.fold_left2
        (fun acc a x -> match acc with None -> None | Some bs -> match_scalar bs a x)
        (Some binds) args xs
  | Dsl.S_cast (a, ty), Xtra.Cast (x, t) when Dtype.same_family ty t -> match_scalar binds a x
  | _ -> None

and match2 binds a x b y =
  match match_scalar binds a x with None -> None | Some bs -> match_scalar bs b y

let rec match_rel binds (p : Dsl.rp) (r : Xtra.rel) =
  match (p.Dsl.rn, r) with
  | Dsl.R_meta v, _ -> bind_var binds v (B_r r)
  | Dsl.R_filter (rp, sp), Xtra.Filter { input; pred } -> (
      match match_rel binds rp input with
      | None -> None
      | Some bs -> match_scalar bs sp pred)
  | Dsl.R_distinct rp, Xtra.Distinct { input } -> match_rel binds rp input
  | _ -> None

let rec inst_scalar binds (p : Dsl.sp) : Xtra.scalar =
  match p.Dsl.sn with
  | Dsl.S_meta v -> (
      match List.assoc v binds with
      | B_s s -> s
      | B_r _ -> invalid_arg "rule instantiation: relation bound where scalar expected")
  | Dsl.S_const c -> Xtra.Const c
  | Dsl.S_arith (op, a, b) -> Xtra.Arith (op, inst_scalar binds a, inst_scalar binds b)
  | Dsl.S_cmp (op, a, b) -> Xtra.Cmp (op, inst_scalar binds a, inst_scalar binds b)
  | Dsl.S_and (a, b) -> Xtra.Logic_and (inst_scalar binds a, inst_scalar binds b)
  | Dsl.S_or (a, b) -> Xtra.Logic_or (inst_scalar binds a, inst_scalar binds b)
  | Dsl.S_not a -> Xtra.Logic_not (inst_scalar binds a)
  | Dsl.S_is_null (a, neg) -> Xtra.Is_null (inst_scalar binds a, neg)
  | Dsl.S_cast (a, ty) -> Xtra.Cast (inst_scalar binds a, ty)
  | Dsl.S_func (f, args) ->
      let args = List.map (inst_scalar binds) args in
      let name = canon f in
      let ty =
        match Builtins.lookup name with
        | Some (Builtins.Scalar ty_fn, _, _) -> ty_fn (List.map Xtra.type_of_scalar args)
        | _ -> Dtype.Unknown (* rejected by check_rule; unreachable *)
      in
      Xtra.Func { name; args; ty }

let rec inst_rel binds (p : Dsl.rp) : Xtra.rel =
  match p.Dsl.rn with
  | Dsl.R_meta v -> (
      match List.assoc v binds with
      | B_r r -> r
      | B_s _ -> invalid_arg "rule instantiation: scalar bound where relation expected")
  | Dsl.R_filter (rp, sp) ->
      Xtra.Filter { input = inst_rel binds rp; pred = inst_scalar binds sp }
  | Dsl.R_distinct rp -> Xtra.Distinct { input = inst_rel binds rp }

(* ------------------------------------------------------------------ *)
(* Rule compilation                                                    *)
(* ------------------------------------------------------------------ *)

let compile_rule pack_name (r : Dsl.rule) : crule =
  let cr_name = pack_name ^ ":" ^ r.Dsl.rule_id in
  let fires = Atomic.make 0 in
  let targets =
    List.filter_map
      (function Dsl.G_target (t, _) -> Some (String.lowercase_ascii t) | _ -> None)
      r.Dsl.guards
  in
  let type_guards =
    List.filter_map (function Dsl.G_type (v, ty, _) -> Some (v, ty) | _ -> None) r.Dsl.guards
  in
  let target_ok (ctx : Transformer.ctx) =
    List.for_all (fun t -> t = ctx.Transformer.cap.Capability.name) targets
  in
  let type_ok binds =
    List.for_all
      (fun (v, ty) ->
        match List.assoc_opt v binds with
        | Some (B_s s) -> Dtype.same_family (Xtra.type_of_scalar s) ty
        | _ -> false)
      type_guards
  in
  let record ctx = Transformer.fired ctx cr_name; Atomic.incr fires in
  match r.Dsl.body with
  | Dsl.B_scalar (lhs, rhs) ->
      let apply ctx s =
        if not (target_ok ctx) then None
        else
          match match_scalar [] lhs s with
          | None -> None
          | Some binds ->
              if not (type_ok binds) then None
              else
                let s' = inst_scalar binds rhs in
                (* An identity result would loop the fixed point's fired
                   accounting without changing the plan; treat as no match. *)
                if s' = s then None else (record ctx; Some s')
      in
      {
        cr_id = r.Dsl.rule_id;
        cr_name;
        cr_span = r.Dsl.rule_span;
        cr_fires = fires;
        cr_scalar = Some apply;
        cr_rel = None;
      }
  | Dsl.B_rel (lhs, rhs) ->
      let apply ctx rel =
        if not (target_ok ctx) then None
        else
          match match_rel [] lhs rel with
          | None -> None
          | Some binds ->
              if not (type_ok binds) then None
              else
                let r' = inst_rel binds rhs in
                if r' = rel then None else (record ctx; Some r')
      in
      {
        cr_id = r.Dsl.rule_id;
        cr_name;
        cr_span = r.Dsl.rule_span;
        cr_fires = fires;
        cr_scalar = None;
        cr_rel = Some apply;
      }

let compile (p : Dsl.pack) : (pack, Diag.t list) result =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r : Dsl.rule) ->
      (if Hashtbl.mem seen r.Dsl.rule_id then
         add
           (Diag.make ~rule:(p.Dsl.pack_name ^ ":" ^ r.Dsl.rule_id) ~span:r.Dsl.rule_span
              ~code:"R103" "duplicate rule id %s in pack %s" r.Dsl.rule_id p.Dsl.pack_name)
       else Hashtbl.add seen r.Dsl.rule_id ());
      check_rule p.Dsl.pack_name add r)
    p.Dsl.prules;
  match !diags with
  | [] ->
      Ok
        {
          cp_name = p.Dsl.pack_name;
          cp_version = p.Dsl.pack_version;
          cp_rules = List.map (compile_rule p.Dsl.pack_name) p.Dsl.prules;
        }
  | ds -> Error (Diag.sort (List.rev ds))
