(* Load-time screening: seed-apply a candidate pack over the bundled
   corpus and reject it on any violation the baseline transform does not
   exhibit.  See screen.mli for the contract.

   Cost model: every bindable statement pays one bind + one transform
   (with the pack's extras appended).  The validator and serializer run
   only on statements where a pack rule actually fired — a statement
   with zero pack fires is structurally identical to the baseline
   result, which the corpus already keeps clean (test_analyze validates
   all profiles over this corpus).  When a violation does appear, the
   baseline is recomputed for that one statement before blaming the
   pack, so pre-existing corpus quirks can never reject a pack. *)

open Hyperq_sqlvalue
open Hyperq_sqlparser
module Catalog = Hyperq_catalog.Catalog
module Binder = Hyperq_binder.Binder
module Capability = Hyperq_transform.Capability
module Transformer = Hyperq_transform.Transformer
module Serializer = Hyperq_serialize.Serializer
module Analyzer = Hyperq_analyze.Analyzer
module Validator = Hyperq_analyze.Validator
module Diag = Hyperq_analyze.Diag

type certificate = {
  cert_pack : Compile.pack;
  cert_cap : string;
  cert_statements : int;
}

type stats = {
  sc_statements : int;
  sc_skipped : int;
  sc_fires : int;
  sc_warnings : Diag.t list;
}

let pack c = c.cert_pack
let cap_name c = c.cert_cap
let statements c = c.cert_statements

let max_rejections = 3

let excerpt text =
  let text = String.trim text in
  let text =
    String.map (fun c -> if c = '\n' || c = '\r' || c = '\t' then ' ' else c) text
  in
  if String.length text <= 72 then text else String.sub text 0 69 ^ "..."

let span_of_rules (pack : Compile.pack) fired_names =
  List.find_map
    (fun name ->
      List.find_map
        (fun (r : Compile.crule) -> if r.Compile.cr_name = name then Some r.Compile.cr_span else None)
        pack.Compile.cp_rules)
    fired_names

let screen ~cap ~corpus (pack : Compile.pack) : (certificate * stats, Diag.t list) result =
  let extra_scalar = Compile.scalar_rules pack in
  let extra_rel = Compile.rel_rules pack in
  let rejections = ref [] in
  let screened = ref 0 in
  let skipped = ref 0 in
  let fires = ref 0 in
  let reject ?span ?rule ~code fmt =
    Printf.ksprintf
      (fun m -> rejections := Diag.make ?span ?rule ~code "%s" m :: !rejections)
      fmt
  in
  let fresh_counter () = ref 1_000_000 in
  (* Baseline transform of the same bound statement, without the pack. *)
  let baseline bound = Transformer.transform ~cap ~counter:(fresh_counter ()) bound in
  let check_statement ~script catalog (l : Parser.located) =
    let ast = l.Parser.loc_stmt in
    match Analyzer.static_class catalog ~dialect:Dialect.Teradata ast with
    | Some _ -> incr skipped (* emulation-class; never reaches the Transformer *)
    | None -> (
        let bctx = Binder.create_ctx ~dialect:Dialect.Teradata catalog in
        match Sql_error.protect (fun () -> Binder.bind_statement bctx ast) with
        | Error _ -> incr skipped
        | Ok bound -> (
            incr screened;
            (match
               Sql_error.protect (fun () ->
                   Transformer.transform ~extra_scalar_rules:extra_scalar
                     ~extra_rel_rules:extra_rel ~cap ~counter:(fresh_counter ()) bound)
             with
            | Error e ->
                (* Blame the pack only if the baseline transform succeeds. *)
                if Result.is_ok (Sql_error.protect (fun () -> baseline bound)) then
                  reject ?span:(span_of_rules pack []) ~code:"R203"
                    "pack %s: transform raised '%s' on %s statement \"%s\"" pack.Compile.cp_name
                    (Sql_error.to_string e) script (excerpt l.Parser.loc_text)
            | Ok (transformed, applied) ->
                let pack_fired =
                  List.filter (fun (n, _) -> Compile.owns_rule pack n) applied
                in
                if pack_fired <> [] then begin
                  fires := !fires + List.fold_left (fun a (_, c) -> a + c) 0 pack_fired;
                  let fired_names = List.map fst pack_fired in
                  let span = span_of_rules pack fired_names in
                  let rule = String.concat "," fired_names in
                  let vdiags = Validator.validate transformed in
                  (if Diag.has_errors vdiags then
                     let baseline_clean =
                       match Sql_error.protect (fun () -> baseline bound) with
                       | Ok (tf, _) -> not (Diag.has_errors (Validator.validate tf))
                       | Error _ -> false
                     in
                     if baseline_clean then
                       let first =
                         List.find (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) vdiags
                       in
                       reject ?span ~rule ~code:"R201"
                         "screening violation %s after %s fired on %s statement \"%s\": %s"
                         first.Diag.code rule script (excerpt l.Parser.loc_text)
                         first.Diag.message);
                  match Sql_error.protect (fun () -> Serializer.serialize ~cap transformed) with
                  | Ok _ -> ()
                  | Error e ->
                      let baseline_serializes =
                        match Sql_error.protect (fun () -> baseline bound) with
                        | Ok (tf, _) ->
                            Result.is_ok
                              (Sql_error.protect (fun () -> Serializer.serialize ~cap tf))
                        | Error _ -> false
                      in
                      if baseline_serializes then
                        reject ?span ~rule ~code:"R204"
                          "pack %s: serialization failed ('%s') after %s fired on %s statement \"%s\""
                          pack.Compile.cp_name (Sql_error.to_string e) rule script
                          (excerpt l.Parser.loc_text)
                end);
            (* Keep the screening catalog in sync for later statements. *)
            Analyzer.apply_ddl catalog ast bound))
  in
  List.iter
    (fun (script, sql) ->
      if List.length !rejections < max_rejections then
        match Sql_error.protect (fun () -> Parser.parse_many_located ~dialect:Dialect.Teradata sql) with
        | Error _ -> ()
        | Ok located ->
            let catalog = Catalog.create () in
            List.iter
              (fun l ->
                if List.length !rejections < max_rejections then
                  check_statement ~script catalog l)
              located)
    corpus;
  match List.rev !rejections with
  | [] ->
      let warnings =
        List.filter_map
          (fun (r : Compile.crule) ->
            if Atomic.get r.Compile.cr_fires = 0 then
              Some
                (Diag.make ~severity:Diag.Warning ~span:r.Compile.cr_span ~rule:r.Compile.cr_name
                   ~code:"R301" "rule %s never fired during corpus screening" r.Compile.cr_name)
            else None)
          pack.Compile.cp_rules
      in
      Ok
        ( { cert_pack = pack; cert_cap = cap.Capability.name; cert_statements = !screened },
          {
            sc_statements = !screened;
            sc_skipped = !skipped;
            sc_fires = !fires;
            sc_warnings = warnings;
          } )
  | ds -> Error ds
