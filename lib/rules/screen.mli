(** Mandatory load-time screening for rule packs.

    A candidate pack is applied over a corpus of scripts (parse → bind →
    transform with the pack's extra rules); every statement where a pack
    rule fired is re-checked with the plan validator and re-serialized.
    Any V-code violation or serialization regression that the baseline
    (pack-less) transform does not exhibit rejects the pack with a
    spanned R2xx diagnostic pointing back into the pack source:

      R201  validator violation (message carries the V-code)
      R203  transform raised where the baseline did not
      R204  serialization regression

    Screening cannot be skipped: {!certificate} is abstract and only
    {!screen} constructs it, and [Registry.load] demands one. *)

module Capability = Hyperq_transform.Capability
module Diag = Hyperq_analyze.Diag

(** Proof that a pack survived corpus screening for some capability. *)
type certificate

type stats = {
  sc_statements : int;  (** statements bound + transformed under the pack *)
  sc_skipped : int;  (** emulation-class / unbindable statements skipped *)
  sc_fires : int;  (** total pack-rule fires during screening *)
  sc_warnings : Diag.t list;  (** R301 rule-never-fired warnings *)
}

val pack : certificate -> Compile.pack
val cap_name : certificate -> string
val statements : certificate -> int

(** [screen ~cap ~corpus pack] applies [pack] over [corpus] (a list of
    [(script_name, sql_text)] pairs, split on statements) under target
    [cap]. Returns the certificate and stats, or the rejection
    diagnostics (fails fast after 3). *)
val screen :
  cap:Capability.t ->
  corpus:(string * string) list ->
  Compile.pack ->
  (certificate * stats, Diag.t list) result
