(* Rule-pack DSL: a small text language declaring rewrite rules over scalar
   expressions and relational XTRA shapes.

     pack NAME version INT
     rule ID [target = 'ansi-engine', type(?x) = int] : PATTERN => REPLACEMENT

   Metavariables (`?x`) match arbitrary sub-expressions; a repeated
   metavariable must match structurally-equal occurrences.  Scalar patterns
   cover literals, arithmetic, comparisons, AND/OR/NOT, IS [NOT] NULL,
   CAST, and builtin scalar functions; relational patterns cover
   FILTER(rel, pred) and DISTINCT(rel).  `#` starts a line comment.

   Parse errors are reported as spanned [Diag.t] values with stable R1xx
   codes (R101 lexical, R102 syntax, R107 unknown type name) so `hyperq
   rules load` can print file:offset diagnostics instead of raising. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra
module Diag = Hyperq_analyze.Diag

type span = int * int

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

exception Error_diag of Diag.t

let fail ?rule ~code ~span fmt =
  Printf.ksprintf
    (fun m -> raise (Error_diag (Diag.make ?rule ~span ~code "%s" m)))
    fmt

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)
(* ------------------------------------------------------------------ *)

type tok =
  | T_ident of string
  | T_meta of string (* ?x *)
  | T_int of int64
  | T_number of string (* decimal literal, kept textual *)
  | T_string of string
  | T_lparen
  | T_rparen
  | T_lbracket
  | T_rbracket
  | T_comma
  | T_colon
  | T_arrow (* => *)
  | T_eq
  | T_neq
  | T_lt
  | T_lte
  | T_gt
  | T_gte
  | T_plus
  | T_minus
  | T_star
  | T_slash
  | T_percent
  | T_eof

let describe = function
  | T_ident s -> Printf.sprintf "identifier '%s'" s
  | T_meta s -> Printf.sprintf "metavariable ?%s" s
  | T_int n -> Printf.sprintf "integer %Ld" n
  | T_number s -> Printf.sprintf "number %s" s
  | T_string s -> Printf.sprintf "string '%s'" s
  | T_lparen -> "'('"
  | T_rparen -> "')'"
  | T_lbracket -> "'['"
  | T_rbracket -> "']'"
  | T_comma -> "','"
  | T_colon -> "':'"
  | T_arrow -> "'=>'"
  | T_eq -> "'='"
  | T_neq -> "'<>'"
  | T_lt -> "'<'"
  | T_lte -> "'<='"
  | T_gt -> "'>'"
  | T_gte -> "'>='"
  | T_plus -> "'+'"
  | T_minus -> "'-'"
  | T_star -> "'*'"
  | T_slash -> "'/'"
  | T_percent -> "'%'"
  | T_eof -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : (tok * span) list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t a b = toks := (t, (a, b)) :: !toks in
  while !i < n do
    let start = !i in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_ident_start c then begin
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (T_ident (String.sub src start (!i - start))) start !i
    end
    else if c = '?' && start + 1 < n && is_ident_start src.[start + 1] then begin
      incr i;
      let vstart = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (T_meta (String.lowercase_ascii (String.sub src vstart (!i - vstart)))) start !i
    end
    else if is_digit c then begin
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let fractional = !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] in
      if fractional then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        push (T_number (String.sub src start (!i - start))) start !i
      end
      else begin
        let text = String.sub src start (!i - start) in
        match Int64.of_string_opt text with
        | Some v -> push (T_int v) start !i
        | None ->
            raise
              (Error_diag
                 (Diag.make ~span:(start, !i) ~code:"R101"
                    "integer literal %s out of range" text))
      end
    end
    else if c = '\'' then begin
      (* SQL-style string: '' is an escaped quote *)
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then
        raise
          (Error_diag
             (Diag.make ~span:(start, n) ~code:"R101"
                "unterminated string literal"));
      push (T_string (Buffer.contents buf)) start !i
    end
    else begin
      let two = if start + 1 < n then String.sub src start 2 else "" in
      let simple t len = push t start (start + len); i := start + len in
      match two with
      | "=>" -> simple T_arrow 2
      | ">=" -> simple T_gte 2
      | "<=" -> simple T_lte 2
      | "<>" -> simple T_neq 2
      | "!=" -> simple T_neq 2
      | _ -> (
          match c with
          | '(' -> simple T_lparen 1
          | ')' -> simple T_rparen 1
          | '[' -> simple T_lbracket 1
          | ']' -> simple T_rbracket 1
          | ',' -> simple T_comma 1
          | ':' -> simple T_colon 1
          | '=' -> simple T_eq 1
          | '<' -> simple T_lt 1
          | '>' -> simple T_gt 1
          | '+' -> simple T_plus 1
          | '-' -> simple T_minus 1
          | '*' -> simple T_star 1
          | '/' -> simple T_slash 1
          | '%' -> simple T_percent 1
          | _ ->
              raise
                (Error_diag
                   (Diag.make ~span:(start, start + 1) ~code:"R101"
                      "unexpected character %C" c)))
    end
  done;
  List.rev ((T_eof, (n, n)) :: !toks)

(* ------------------------------------------------------------------ *)
(* Pattern AST                                                         *)
(* ------------------------------------------------------------------ *)

type sp = { sn : sp_node; ssp : span }

and sp_node =
  | S_meta of string
  | S_const of Value.t
  | S_arith of Xtra.arith_op * sp * sp
  | S_cmp of Xtra.cmp_op * sp * sp
  | S_and of sp * sp
  | S_or of sp * sp
  | S_not of sp
  | S_is_null of sp * bool (* negated? (IS NOT NULL) *)
  | S_func of string * sp list
  | S_cast of sp * Dtype.t

type rp = { rn : rp_node; rsp : span }

and rp_node =
  | R_meta of string
  | R_filter of rp * sp
  | R_distinct of rp

type guard =
  | G_target of string * span (* target = 'teradata' *)
  | G_type of string * Dtype.t * span (* type(?x) = int *)

type body = B_scalar of sp * sp | B_rel of rp * rp

type rule = {
  rule_id : string;
  rule_span : span;
  guards : guard list;
  body : body;
}

type pack = { pack_name : string; pack_version : int; prules : rule list }

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type ts = { toks : (tok * span) array; mutable pos : int }

let peek ts = fst ts.toks.(ts.pos)
let cur_span ts = snd ts.toks.(ts.pos)
let advance ts = ts.pos <- ts.pos + 1

(* Keywords are case-insensitive identifiers. *)
let at_kw ts kw =
  match peek ts with
  | T_ident id -> String.uppercase_ascii id = kw
  | _ -> false

let err ts what =
  let span = cur_span ts in
  match peek ts with
  | T_eof ->
      fail ~code:"R102" ~span "unterminated pattern or pack: expected %s, got end of input" what
  | t -> fail ~code:"R102" ~span "expected %s, found %s" what (describe t)

let expect ts tok what =
  if peek ts = tok then advance ts else err ts what

let expect_kw ts kw = if at_kw ts kw then advance ts else err ts (Printf.sprintf "keyword %s" kw)

let ident ts what =
  match peek ts with
  | T_ident id ->
      let sp = cur_span ts in
      advance ts;
      (id, sp)
  | _ -> err ts what

let dtype_of_typename ~span name =
  match String.uppercase_ascii name with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "BYTEINT" -> Dtype.Int
  | "DECIMAL" | "NUMERIC" -> Dtype.default_decimal
  | "FLOAT" | "DOUBLE" | "REAL" -> Dtype.Float
  | "VARCHAR" | "CHAR" | "CHARACTER" -> Dtype.varchar ()
  | "DATE" -> Dtype.Date
  | "TIME" -> Dtype.Time
  | "TIMESTAMP" -> Dtype.Timestamp
  | "BOOL" | "BOOLEAN" -> Dtype.Bool
  | other ->
      fail ~code:"R107" ~span
        "unknown type name %s (expected int, decimal, float, varchar, date, time, timestamp or bool)"
        other

(* Scalar patterns: precedence-climbing OR > AND > NOT > comparison >
   additive > multiplicative > unary minus > primary. *)

let rec parse_or ts =
  let l = ref (parse_and ts) in
  while at_kw ts "OR" do
    advance ts;
    let r = parse_and ts in
    l := { sn = S_or (!l, r); ssp = (fst !l.ssp, snd r.ssp) }
  done;
  !l

and parse_and ts =
  let l = ref (parse_not ts) in
  while at_kw ts "AND" do
    advance ts;
    let r = parse_not ts in
    l := { sn = S_and (!l, r); ssp = (fst !l.ssp, snd r.ssp) }
  done;
  !l

and parse_not ts =
  if at_kw ts "NOT" then begin
    let start = fst (cur_span ts) in
    advance ts;
    let inner = parse_not ts in
    { sn = S_not inner; ssp = (start, snd inner.ssp) }
  end
  else parse_cmp ts

and parse_cmp ts =
  let l = parse_add ts in
  if at_kw ts "IS" then begin
    advance ts;
    let negated = at_kw ts "NOT" in
    if negated then advance ts;
    let stop = snd (cur_span ts) in
    expect_kw ts "NULL";
    { sn = S_is_null (l, negated); ssp = (fst l.ssp, stop) }
  end
  else
    let op =
      match peek ts with
      | T_eq -> Some Xtra.Eq
      | T_neq -> Some Xtra.Neq
      | T_lt -> Some Xtra.Lt
      | T_lte -> Some Xtra.Lte
      | T_gt -> Some Xtra.Gt
      | T_gte -> Some Xtra.Gte
      | _ -> None
    in
    match op with
    | None -> l
    | Some op ->
        advance ts;
        let r = parse_add ts in
        { sn = S_cmp (op, l, r); ssp = (fst l.ssp, snd r.ssp) }

and parse_add ts =
  let l = ref (parse_mul ts) in
  let continue_ = ref true in
  while !continue_ do
    let op =
      match peek ts with
      | T_plus -> Some Xtra.Add
      | T_minus -> Some Xtra.Sub
      | _ -> None
    in
    match op with
    | None -> continue_ := false
    | Some op ->
        advance ts;
        let r = parse_mul ts in
        l := { sn = S_arith (op, !l, r); ssp = (fst !l.ssp, snd r.ssp) }
  done;
  !l

and parse_mul ts =
  let l = ref (parse_unary ts) in
  let continue_ = ref true in
  while !continue_ do
    let op =
      match peek ts with
      | T_star -> Some Xtra.Mul
      | T_slash -> Some Xtra.Div
      | T_percent -> Some Xtra.Modulo
      | T_ident id when String.uppercase_ascii id = "MOD" -> Some Xtra.Modulo
      | _ -> None
    in
    match op with
    | None -> continue_ := false
    | Some op ->
        advance ts;
        let r = parse_unary ts in
        l := { sn = S_arith (op, !l, r); ssp = (fst !l.ssp, snd r.ssp) }
  done;
  !l

and parse_unary ts =
  match peek ts with
  | T_minus -> (
      let start = fst (cur_span ts) in
      advance ts;
      (* Unary minus folds into a numeric literal only. *)
      match peek ts with
      | T_int v ->
          let stop = snd (cur_span ts) in
          advance ts;
          { sn = S_const (Value.Int (Int64.neg v)); ssp = (start, stop) }
      | T_number s ->
          let stop = snd (cur_span ts) in
          advance ts;
          { sn = S_const (Value.Decimal (Decimal.of_string ("-" ^ s))); ssp = (start, stop) }
      | _ -> err ts "numeric literal after unary '-'")
  | _ -> parse_primary ts

and parse_primary ts =
  let span = cur_span ts in
  match peek ts with
  | T_meta v ->
      advance ts;
      { sn = S_meta v; ssp = span }
  | T_int v ->
      advance ts;
      { sn = S_const (Value.Int v); ssp = span }
  | T_number s ->
      advance ts;
      { sn = S_const (Value.Decimal (Decimal.of_string s)); ssp = span }
  | T_string s ->
      advance ts;
      { sn = S_const (Value.Varchar s); ssp = span }
  | T_lparen ->
      advance ts;
      let inner = parse_or ts in
      expect ts T_rparen "')'";
      inner
  | T_ident id -> (
      match String.uppercase_ascii id with
      | "NULL" ->
          advance ts;
          { sn = S_const Value.Null; ssp = span }
      | "TRUE" ->
          advance ts;
          { sn = S_const (Value.Bool true); ssp = span }
      | "FALSE" ->
          advance ts;
          { sn = S_const (Value.Bool false); ssp = span }
      | "CAST" ->
          advance ts;
          expect ts T_lparen "'(' after CAST";
          let inner = parse_or ts in
          expect_kw ts "AS";
          let tyname, tyspan = ident ts "type name after AS" in
          let ty = dtype_of_typename ~span:tyspan tyname in
          let stop = snd (cur_span ts) in
          expect ts T_rparen "')' closing CAST";
          { sn = S_cast (inner, ty); ssp = (fst span, stop) }
      | up -> (
          advance ts;
          match peek ts with
          | T_lparen ->
              advance ts;
              let args = ref [] in
              if peek ts = T_rparen then advance ts
              else begin
                args := [ parse_or ts ];
                while peek ts = T_comma do
                  advance ts;
                  args := parse_or ts :: !args
                done;
                expect ts T_rparen "')' closing argument list"
              end;
              let stop = snd ts.toks.(ts.pos - 1) |> snd in
              { sn = S_func (up, List.rev !args); ssp = (fst span, stop) }
          | _ ->
              fail ~code:"R102" ~span
                "bare identifier %s in pattern; use a metavariable (?%s) to match arbitrary expressions"
                id (String.lowercase_ascii id)))
  | _ -> err ts "a pattern (metavariable, literal, function call, CAST or parenthesis)"

(* Relational patterns. *)
let rec parse_rel ts =
  let span = cur_span ts in
  if at_kw ts "FILTER" then begin
    advance ts;
    expect ts T_lparen "'(' after FILTER";
    let input = parse_rel ts in
    expect ts T_comma "',' between FILTER input and predicate";
    let pred = parse_or ts in
    let stop = snd (cur_span ts) in
    expect ts T_rparen "')' closing FILTER";
    { rn = R_filter (input, pred); rsp = (fst span, stop) }
  end
  else if at_kw ts "DISTINCT" then begin
    advance ts;
    expect ts T_lparen "'(' after DISTINCT";
    let input = parse_rel ts in
    let stop = snd (cur_span ts) in
    expect ts T_rparen "')' closing DISTINCT";
    { rn = R_distinct input; rsp = (fst span, stop) }
  end
  else
    match peek ts with
    | T_meta v ->
        advance ts;
        { rn = R_meta v; rsp = span }
    | _ -> err ts "a relational pattern (FILTER, DISTINCT or a metavariable)"

let starts_rel ts = at_kw ts "FILTER" || at_kw ts "DISTINCT"

let parse_guards ts =
  if peek ts <> T_lbracket then []
  else begin
    advance ts;
    let guards = ref [] in
    let parse_guard () =
      if at_kw ts "TARGET" then begin
        let gstart = fst (cur_span ts) in
        advance ts;
        expect ts T_eq "'=' in target guard";
        match peek ts with
        | T_ident t | T_string t ->
            let stop = snd (cur_span ts) in
            advance ts;
            guards := G_target (t, (gstart, stop)) :: !guards
        | _ -> err ts "a target profile name"
      end
      else if at_kw ts "TYPE" then begin
        let gstart = fst (cur_span ts) in
        advance ts;
        expect ts T_lparen "'(' after type";
        let v =
          match peek ts with
          | T_meta v ->
              advance ts;
              v
          | _ -> err ts "a metavariable inside type(...)"
        in
        expect ts T_rparen "')' closing type(...)";
        expect ts T_eq "'=' in type guard";
        let tyname, tyspan = ident ts "a type name" in
        let ty = dtype_of_typename ~span:tyspan tyname in
        guards := G_type (v, ty, (gstart, snd tyspan)) :: !guards
      end
      else err ts "a guard (target = NAME or type(?x) = TYPENAME)"
    in
    parse_guard ();
    while peek ts = T_comma do
      advance ts;
      parse_guard ()
    done;
    expect ts T_rbracket "']' closing guard list";
    List.rev !guards
  end

let parse_rule ts =
  expect_kw ts "RULE";
  let id, id_span = ident ts "a rule id after 'rule'" in
  let guards = parse_guards ts in
  expect ts T_colon "':' before the rule pattern";
  let body =
    if starts_rel ts then begin
      let lhs = parse_rel ts in
      expect ts T_arrow "'=>' between pattern and replacement";
      let rhs = parse_rel ts in
      B_rel (lhs, rhs)
    end
    else begin
      let lhs = parse_or ts in
      expect ts T_arrow "'=>' between pattern and replacement";
      let rhs = parse_or ts in
      B_scalar (lhs, rhs)
    end
  in
  { rule_id = String.lowercase_ascii id; rule_span = id_span; guards; body }

let parse_pack ts =
  expect_kw ts "PACK";
  let name, _ = ident ts "a pack name after 'pack'" in
  expect_kw ts "VERSION";
  let version =
    match peek ts with
    | T_int v ->
        advance ts;
        Int64.to_int v
    | _ -> err ts "an integer pack version"
  in
  let rules = ref [] in
  while at_kw ts "RULE" do
    rules := parse_rule ts :: !rules
  done;
  if peek ts <> T_eof then err ts "'rule' or end of pack";
  {
    pack_name = String.lowercase_ascii name;
    pack_version = version;
    prules = List.rev !rules;
  }

let parse (text : string) : (pack, Diag.t list) result =
  match
    let toks = Array.of_list (tokenize text) in
    parse_pack { toks; pos = 0 }
  with
  | pack -> Ok pack
  | exception Error_diag d -> Error [ d ]
