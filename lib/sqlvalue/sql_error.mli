(** Error taxonomy shared across all Hyper-Q components.

    Every layer of the pipeline (protocol, parser, binder, transformer,
    serializer, engine) reports failures through {!Error}, carrying a
    {!kind} so the gateway can map the failure onto the right wire-level
    response code. *)

type kind =
  | Parse_error  (** lexical or syntactic error in the incoming SQL text *)
  | Bind_error  (** name resolution / typing failure during algebrization *)
  | Unsupported  (** construct not supported by Hyper-Q at all *)
  | Capability_gap
      (** construct valid in the source dialect with no rewrite available for
          the chosen backend (candidate for emulation) *)
  | Execution_error  (** runtime failure inside the backend engine *)
  | Transient_error
      (** backend hiccup (lost connection, timeout, overload) that a retry
          may absorb; the resilience layer owns these *)
  | Unavailable
      (** backend or replica out of service: retries exhausted, circuit
          breaker open, deadline exceeded, or replica divergence *)
  | Protocol_error  (** malformed wire message *)
  | Conversion_error  (** result conversion (TDF → WP-A) failure *)
  | Internal_error  (** invariant violation; a bug in Hyper-Q itself *)

type t = { kind : kind; message : string }

exception Error of t

val kind_to_string : kind -> string
val to_string : t -> string

(** [raise_error kind fmt ...] raises {!Error} with a formatted message. *)
val raise_error : kind -> ('a, unit, string, 'b) format4 -> 'a

val parse_error : ('a, unit, string, 'b) format4 -> 'a
val bind_error : ('a, unit, string, 'b) format4 -> 'a
val unsupported : ('a, unit, string, 'b) format4 -> 'a
val capability_gap : ('a, unit, string, 'b) format4 -> 'a
val execution_error : ('a, unit, string, 'b) format4 -> 'a
val transient_error : ('a, unit, string, 'b) format4 -> 'a
val unavailable : ('a, unit, string, 'b) format4 -> 'a
val protocol_error : ('a, unit, string, 'b) format4 -> 'a
val conversion_error : ('a, unit, string, 'b) format4 -> 'a
val internal_error : ('a, unit, string, 'b) format4 -> 'a

val pp : Format.formatter -> t -> unit

(** Run [f], packaging any {!Error} as [Result.Error]. *)
val protect : (unit -> 'a) -> ('a, t) result
