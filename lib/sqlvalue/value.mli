(** Runtime SQL values and their semantics: three-valued comparison, numeric
    coercion, casts, and the Teradata date/int duality.

    The same representation flows through the whole stack: the engine
    evaluates expressions over it, TDF serializes it, and the result
    converter re-encodes it into the source database's binary row format. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Decimal of Decimal.t
  | Varchar of string
  | Date of Sql_date.t
  | Time of int64  (** microseconds since midnight *)
  | Timestamp of int64  (** microseconds since the Unix epoch *)
  | Interval of Interval.t
  | Period_date of Sql_date.t * Sql_date.t
  | Bytes of string

val is_null : t -> bool
val of_int : int -> t
val of_string : string -> t

(** {1 Typed column accessors}

    The columnar executor unboxes INTEGER and FLOAT columns into flat
    [int64 array] / [float array] vectors; these convert individual cells
    to and from that representation. The [_exn] readers raise an internal
    error when the cell does not carry the expected representation — they
    are for loops that have already established the column type. *)

val of_int64 : int64 -> t
val is_int : t -> bool
val is_float : t -> bool
val int64_exn : t -> int64
val float_exn : t -> float
val type_of : t -> Dtype.t

val micros_per_day : int64

(** SQL three-valued comparison: [None] when either side is NULL or the
    types are incomparable. The Teradata DATE/INT comparison is deliberately
    NOT handled here — the binder/transformer rewrite it away before
    execution (paper §5.2). *)
val compare_sql : t -> t -> int option

(** Total order used for sorting and grouping; NULL sorts first (callers
    implement NULLS FIRST/LAST on top). *)
val compare_total : t -> t -> int

(** WHERE-clause equality: false when either side is NULL. *)
val equal_sql : t -> t -> bool

(** GROUP BY / DISTINCT equality: NULLs compare equal to each other, and
    numerically equal values of different representations are equal. *)
val equal_group : t -> t -> bool

val to_float_exn : t -> float
val to_decimal_exn : t -> Decimal.t
val to_int64_exn : t -> int64

type binop = Add | Sub | Mul | Div | Modulo

(** SQL arithmetic with NULL propagation, Teradata day arithmetic
    ([date + n], [date - date]), and interval arithmetic. *)
val arith : binop -> t -> t -> t

(** SQL CAST; raises {!Sql_error.Error} on impossible conversions. *)
val cast : t -> Dtype.t -> t

(** Human-readable rendering (unquoted). *)
val to_string : t -> string

(** SQL-literal rendering (strings quoted and escaped, [DATE '...'], ...). *)
val to_sql_literal : t -> string

val pp : Format.formatter -> t -> unit

(** Structural hash compatible with {!equal_group}. *)
val hash : t -> int
