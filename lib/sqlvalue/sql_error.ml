(** Error taxonomy shared across all Hyper-Q components.

    Every layer of the pipeline (protocol, parser, binder, transformer,
    serializer, engine) reports failures through [Sql_error.Error], carrying a
    [kind] so that the gateway can map the failure onto the right wire-level
    response code. *)

type kind =
  | Parse_error  (** lexical or syntactic error in the incoming SQL text *)
  | Bind_error  (** name resolution / typing failure during algebrization *)
  | Unsupported  (** construct not supported by Hyper-Q at all *)
  | Capability_gap
      (** construct valid in SQL-A with no rewrite available for the chosen
          backend (candidate for emulation) *)
  | Execution_error  (** runtime failure inside the backend engine *)
  | Transient_error
      (** backend hiccup (lost connection, timeout, overload) that a retry
          may absorb; the resilience layer owns these *)
  | Unavailable
      (** backend or replica out of service: retries exhausted, circuit
          breaker open, deadline exceeded, or replica divergence *)
  | Protocol_error  (** malformed wire message *)
  | Conversion_error  (** result conversion (TDF -> WP-A) failure *)
  | Internal_error  (** invariant violation; a bug in Hyper-Q itself *)

type t = { kind : kind; message : string }

exception Error of t

let kind_to_string = function
  | Parse_error -> "parse error"
  | Bind_error -> "bind error"
  | Unsupported -> "unsupported"
  | Capability_gap -> "capability gap"
  | Execution_error -> "execution error"
  | Transient_error -> "transient error"
  | Unavailable -> "unavailable"
  | Protocol_error -> "protocol error"
  | Conversion_error -> "conversion error"
  | Internal_error -> "internal error"

let to_string { kind; message } =
  Printf.sprintf "%s: %s" (kind_to_string kind) message

let raise_error kind fmt =
  Printf.ksprintf (fun message -> raise (Error { kind; message })) fmt

let parse_error fmt = raise_error Parse_error fmt
let bind_error fmt = raise_error Bind_error fmt
let unsupported fmt = raise_error Unsupported fmt
let capability_gap fmt = raise_error Capability_gap fmt
let execution_error fmt = raise_error Execution_error fmt
let transient_error fmt = raise_error Transient_error fmt
let unavailable fmt = raise_error Unavailable fmt
let protocol_error fmt = raise_error Protocol_error fmt
let conversion_error fmt = raise_error Conversion_error fmt
let internal_error fmt = raise_error Internal_error fmt

let pp ppf e = Fmt.string ppf (to_string e)

(** Run [f] and package any [Error] as [Result.Error]. *)
let protect f = match f () with v -> Ok v | exception Error e -> Stdlib.Error e
