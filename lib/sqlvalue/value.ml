(** Runtime SQL values and their semantics (three-valued comparison, numeric
    coercion, casts, Teradata date/int duality).

    The same value representation flows through the whole stack: the engine
    evaluates expressions over it, TDF serializes it, and the result converter
    re-encodes it into the source database's binary row format. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Decimal of Decimal.t
  | Varchar of string
  | Date of Sql_date.t
  | Time of int64  (** microseconds since midnight *)
  | Timestamp of int64  (** microseconds since the Unix epoch *)
  | Interval of Interval.t
  | Period_date of Sql_date.t * Sql_date.t
  | Bytes of string

let is_null = function Null -> true | _ -> false
let of_int n = Int (Int64.of_int n)
let of_string s = Varchar s

(* Typed column accessors for the columnar executor: a column whose declared
   type is INTEGER or FLOAT unboxes into a flat array, and batches convert
   cells to/from that representation without an option allocation. The [_exn]
   readers are for loops that have already established the column type. *)
let of_int64 n = Int n
let is_int = function Int _ -> true | _ -> false
let is_float = function Float _ -> true | _ -> false

let int64_exn = function
  | Int n -> n
  | _ -> Sql_error.internal_error "expected an unboxed INTEGER cell"

let float_exn = function
  | Float f -> f
  | _ -> Sql_error.internal_error "expected an unboxed FLOAT cell"

let type_of = function
  | Null -> Dtype.Unknown
  | Bool _ -> Dtype.Bool
  | Int _ -> Dtype.Int
  | Float _ -> Dtype.Float
  | Decimal d -> Dtype.Decimal { precision = 18; scale = d.Decimal.scale }
  | Varchar _ -> Dtype.varchar ()
  | Date _ -> Dtype.Date
  | Time _ -> Dtype.Time
  | Timestamp _ -> Dtype.Timestamp
  | Interval i ->
      if i.Interval.months <> 0 then Dtype.Interval_ym else Dtype.Interval_ds
  | Period_date _ -> Dtype.Period Dtype.Pdate
  | Bytes _ -> Dtype.Bytes

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let micros_per_day = 86_400_000_000L

let timestamp_of_date d =
  Int64.mul (Int64.of_int (Sql_date.to_epoch_days d)) micros_per_day

(* Numeric tower: int < decimal < float. *)
let compare_numeric a b =
  match (a, b) with
  | Int x, Int y -> Some (Int64.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Decimal x, Decimal y -> Some (Decimal.compare x y)
  | Int x, Float y -> Some (Float.compare (Int64.to_float x) y)
  | Float x, Int y -> Some (Float.compare x (Int64.to_float y))
  | Int x, Decimal y -> Some (Decimal.compare (Decimal.of_int64 x) y)
  | Decimal x, Int y -> Some (Decimal.compare x (Decimal.of_int64 y))
  | Float x, Decimal y -> Some (Float.compare x (Decimal.to_float y))
  | Decimal x, Float y -> Some (Float.compare (Decimal.to_float x) y)
  | _ -> None

(** SQL three-valued comparison: [None] when either side is NULL or the types
    are incomparable. Note: DATE/INT comparison is deliberately NOT handled
    here — Teradata's date-int duality is a front-end dialect feature that the
    binder must rewrite away (paper §5.2) before execution. *)
let compare_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Bool x, Bool y -> Some (Bool.compare x y)
  | (Int _ | Float _ | Decimal _), (Int _ | Float _ | Decimal _) ->
      compare_numeric a b
  | Varchar x, Varchar y -> Some (String.compare x y)
  | Date x, Date y -> Some (Sql_date.compare x y)
  | Time x, Time y -> Some (Int64.compare x y)
  | Timestamp x, Timestamp y -> Some (Int64.compare x y)
  | Date x, Timestamp y -> Some (Int64.compare (timestamp_of_date x) y)
  | Timestamp x, Date y -> Some (Int64.compare x (timestamp_of_date y))
  | Interval x, Interval y -> Some (Interval.compare x y)
  | Period_date (s1, e1), Period_date (s2, e2) -> (
      match Sql_date.compare s1 s2 with
      | 0 -> Some (Sql_date.compare e1 e2)
      | c -> Some c)
  | Bytes x, Bytes y -> Some (String.compare x y)
  | _ -> None

(* Rank of each constructor for the total order below. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ | Decimal _ -> 2
  | Varchar _ -> 3
  | Date _ | Timestamp _ -> 4
  | Time _ -> 5
  | Interval _ -> 6
  | Period_date _ -> 7
  | Bytes _ -> 8

(** Total order used for sorting and grouping. NULL sorts first by default
    (callers implement NULLS FIRST/LAST on top of this). *)
let compare_total a b =
  match compare_sql a b with
  | Some c -> c
  | None -> (
      match (a, b) with
      | Null, Null -> 0
      | Null, _ -> -1
      | _, Null -> 1
      | _ -> Int.compare (rank a) (rank b))

let equal_sql a b = match compare_sql a b with Some 0 -> true | _ -> false

(** Grouping equality: NULLs compare equal to each other (SQL GROUP BY /
    DISTINCT semantics differ from WHERE semantics here). *)
let equal_group a b = compare_total a b = 0

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let to_float_exn = function
  | Int n -> Int64.to_float n
  | Float f -> f
  | Decimal d -> Decimal.to_float d
  | v ->
      Sql_error.execution_error "cannot use %s as a number"
        (Dtype.to_string (type_of v))

let to_decimal_exn = function
  | Int n -> Decimal.of_int64 n
  | Decimal d -> d
  | Float f -> Decimal.of_float f
  | v ->
      Sql_error.execution_error "cannot use %s as a decimal"
        (Dtype.to_string (type_of v))

let to_int64_exn = function
  | Int n -> n
  | Decimal d -> Decimal.to_int64 d
  | Float f -> Int64.of_float f
  | Bool b -> if b then 1L else 0L
  | Varchar s -> (
      match Int64.of_string_opt (String.trim s) with
      | Some n -> n
      | None -> Sql_error.execution_error "cannot convert %S to an integer" s)
  | Date d -> Int64.of_int (Sql_date.to_teradata_int d)
  | v ->
      Sql_error.execution_error "cannot use %s as an integer"
        (Dtype.to_string (type_of v))

type binop = Add | Sub | Mul | Div | Modulo

let arith_numeric op a b =
  match (a, b, op) with
  | Int x, Int y, Add -> Int (Int64.add x y)
  | Int x, Int y, Sub -> Int (Int64.sub x y)
  | Int x, Int y, Mul -> Int (Int64.mul x y)
  | Int x, Int y, Div ->
      if y = 0L then Sql_error.execution_error "division by zero"
      else Int (Int64.div x y)
  | Int x, Int y, Modulo ->
      if y = 0L then Sql_error.execution_error "division by zero"
      else Int (Int64.rem x y)
  | (Float _ | Int _ | Decimal _), (Float _ | Int _ | Decimal _), _ -> (
      match (a, b) with
      | Float _, _ | _, Float _ -> (
          let x = to_float_exn a and y = to_float_exn b in
          match op with
          | Add -> Float (x +. y)
          | Sub -> Float (x -. y)
          | Mul -> Float (x *. y)
          | Div ->
              if y = 0. then Sql_error.execution_error "division by zero"
              else Float (x /. y)
          | Modulo -> Float (Float.rem x y))
      | _ -> (
          let x = to_decimal_exn a and y = to_decimal_exn b in
          match op with
          | Add -> Decimal (Decimal.add x y)
          | Sub -> Decimal (Decimal.sub x y)
          | Mul -> Decimal (Decimal.mul x y)
          | Div -> Decimal (Decimal.div x y)
          | Modulo ->
              let fx = Decimal.to_float x and fy = Decimal.to_float y in
              if fy = 0. then Sql_error.execution_error "division by zero"
              else Decimal (Decimal.of_float (Float.rem fx fy))))
  | _ ->
      Sql_error.execution_error "invalid operands for arithmetic: %s, %s"
        (Dtype.to_string (type_of a))
        (Dtype.to_string (type_of b))

(** SQL arithmetic with NULL propagation, date +/- integer (day counts, the
    Teradata convention), date - date, and interval arithmetic. *)
let arith op a b =
  match (a, b, op) with
  | Null, _, _ | _, Null, _ -> Null
  | Date d, Int n, Add -> Date (Sql_date.add_days d (Int64.to_int n))
  | Int n, Date d, Add -> Date (Sql_date.add_days d (Int64.to_int n))
  | Date d, Int n, Sub -> Date (Sql_date.add_days d (-Int64.to_int n))
  | Date d1, Date d2, Sub -> Int (Int64.of_int (Sql_date.diff_days d1 d2))
  | Date d, Interval i, Add ->
      Date (Sql_date.add_days (Sql_date.add_months d i.Interval.months) i.Interval.days)
  | Interval i, Date d, Add ->
      Date (Sql_date.add_days (Sql_date.add_months d i.Interval.months) i.Interval.days)
  | Date d, Interval i, Sub ->
      let i = Interval.neg i in
      Date (Sql_date.add_days (Sql_date.add_months d i.Interval.months) i.Interval.days)
  | Timestamp t, Interval i, Add ->
      if i.Interval.months <> 0 then
        Sql_error.execution_error "month interval on timestamp not supported"
      else
        Timestamp
          (Int64.add t
             (Int64.add i.Interval.micros
                (Int64.mul (Int64.of_int i.Interval.days) micros_per_day)))
  | Timestamp t, Interval i, Sub ->
      if i.Interval.months <> 0 then
        Sql_error.execution_error "month interval on timestamp not supported"
      else
        Timestamp
          (Int64.sub t
             (Int64.add i.Interval.micros
                (Int64.mul (Int64.of_int i.Interval.days) micros_per_day)))
  | Interval i1, Interval i2, Add -> Interval (Interval.add i1 i2)
  | Interval i1, Interval i2, Sub -> Interval (Interval.sub i1 i2)
  | Interval i, Int n, Mul -> Interval (Interval.scale i (Int64.to_int n))
  | Int n, Interval i, Mul -> Interval (Interval.scale i (Int64.to_int n))
  | _ -> arith_numeric op a b

(* ------------------------------------------------------------------ *)
(* Casts                                                               *)
(* ------------------------------------------------------------------ *)

let rec cast v target =
  match (v, target) with
  | Null, _ -> Null
  | _, Dtype.Unknown -> v
  | v, t when Dtype.same_family (type_of v) t -> (
      match (v, t) with
      | Decimal d, Dtype.Decimal { scale; _ } ->
          if d.Decimal.scale <= scale then Decimal (Decimal.rescale d scale)
          else Decimal (Decimal.round d ~scale)
      | Varchar s, Dtype.Varchar { max_len = Some n; _ }
        when String.length s > n ->
          Varchar (String.sub s 0 n)
      | v, _ -> v)
  | Int n, Dtype.Float -> Float (Int64.to_float n)
  | Int n, Dtype.Decimal { scale; _ } ->
      Decimal (Decimal.rescale (Decimal.of_int64 n) scale)
  | Int n, Dtype.Bool -> Bool (n <> 0L)
  | Int n, Dtype.Date -> Date (Sql_date.of_teradata_int (Int64.to_int n))
  | Float f, Dtype.Int -> Int (Int64.of_float f)
  | Float f, Dtype.Decimal { scale; _ } -> Decimal (Decimal.of_float ~scale f)
  | Decimal d, Dtype.Int -> Int (Decimal.to_int64 d)
  | Decimal d, Dtype.Float -> Float (Decimal.to_float d)
  | Date d, Dtype.Int -> Int (Int64.of_int (Sql_date.to_teradata_int d))
  | Date d, Dtype.Timestamp -> Timestamp (timestamp_of_date d)
  | Timestamp t, Dtype.Date ->
      Date (Sql_date.of_epoch_days (Int64.to_int (Int64.div t micros_per_day)))
  | Varchar s, Dtype.Int -> (
      match Int64.of_string_opt (String.trim s) with
      | Some n -> Int n
      | None -> Sql_error.execution_error "cannot cast %S to BIGINT" s)
  | Varchar s, Dtype.Float -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Float f
      | None -> Sql_error.execution_error "cannot cast %S to DOUBLE" s)
  | Varchar s, Dtype.Decimal { scale; _ } ->
      Decimal (Decimal.round (Decimal.of_string s) ~scale)
  | Varchar s, Dtype.Date -> Date (Sql_date.of_string s)
  | Varchar s, Dtype.Bool -> (
      match String.lowercase_ascii (String.trim s) with
      | "t" | "true" | "1" | "y" -> Bool true
      | "f" | "false" | "0" | "n" -> Bool false
      | _ -> Sql_error.execution_error "cannot cast %S to BOOLEAN" s)
  | v, Dtype.Varchar { max_len; _ } -> (
      let s = to_string v in
      match max_len with
      | Some n when String.length s > n -> Varchar (String.sub s 0 n)
      | _ -> Varchar s)
  | v, t ->
      Sql_error.execution_error "cannot cast %s to %s"
        (Dtype.to_string (type_of v))
        (Dtype.to_string t)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

and to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "true" else "false"
  | Int n -> Int64.to_string n
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.12g" f
  | Decimal d -> Decimal.to_string d
  | Varchar s -> s
  | Date d -> Sql_date.to_string d
  | Time t ->
      let s = Int64.div t 1_000_000L in
      Printf.sprintf "%02Ld:%02Ld:%02Ld" (Int64.div s 3600L)
        (Int64.rem (Int64.div s 60L) 60L)
        (Int64.rem s 60L)
  | Timestamp t ->
      let days = Int64.div t micros_per_day |> Int64.to_int in
      let rem = Int64.rem t micros_per_day in
      let days, rem =
        if Int64.compare rem 0L < 0 then (days - 1, Int64.add rem micros_per_day)
        else (days, rem)
      in
      let d = Sql_date.of_epoch_days days in
      let s = Int64.div rem 1_000_000L in
      Printf.sprintf "%s %02Ld:%02Ld:%02Ld" (Sql_date.to_string d)
        (Int64.div s 3600L)
        (Int64.rem (Int64.div s 60L) 60L)
        (Int64.rem s 60L)
  | Interval i -> Interval.to_string i
  | Period_date (s, e) ->
      Printf.sprintf "(%s, %s)" (Sql_date.to_string s) (Sql_date.to_string e)
  | Bytes b ->
      let buf = Buffer.create (String.length b * 2) in
      String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
      Buffer.contents buf

(** SQL-literal rendering (strings quoted), used by serializers and by the
    single-row DML batching rewrite. *)
let to_sql_literal = function
  | Null -> "NULL"
  | Varchar s ->
      "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Date d -> Printf.sprintf "DATE '%s'" (Sql_date.to_string d)
  | Bool b -> if b then "TRUE" else "FALSE"
  | v -> to_string v

let pp ppf v = Fmt.string ppf (to_string v)

(** Structural hash compatible with [equal_group] for hash-based grouping:
    numerically equal values of different representations hash alike. *)
let hash v =
  match v with
  | Null -> 17
  | Bool b -> if b then 3 else 5
  | Int n -> Int64.to_int n land max_int
  | Float f ->
      if Float.is_integer f && Float.abs f < 9e18 then
        Int64.to_int (Int64.of_float f) land max_int
      else Hashtbl.hash f
  | Decimal d ->
      let n = Decimal.normalize d in
      if n.Decimal.scale = 0 then Int64.to_int n.Decimal.mantissa land max_int
      else Hashtbl.hash (n.Decimal.mantissa, n.Decimal.scale)
  | Varchar s -> Hashtbl.hash s
  | Date d -> Sql_date.to_epoch_days d
  | Time t -> Int64.to_int t land max_int
  | Timestamp t -> Int64.to_int t land max_int
  | Interval _ | Period_date _ | Bytes _ -> Hashtbl.hash v
