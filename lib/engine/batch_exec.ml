(* Vectorized executor: compiles an XTRA plan into a tree of pull-based
   operators exchanging columnar {!Batch.t} values.

   Scans, filters, projections, equi-hash-joins, hash aggregation, DISTINCT,
   and LIMIT stream batch-at-a-time; blocking operators (sort, window, set
   operations) drain their compiled input and reuse the row-path
   implementations in {!Executor}; plan shapes the batch path does not cover
   (CTEs, cross/residual joins, grouping sets) fall back to the row
   interpreter wholesale. Scalar expressions compile to closures with column
   positions resolved at compile time — no per-row frame pushes or id
   hashtable lookups — and scalars the batch path cannot compile (subqueries,
   parameters) evaluate through a per-row adapter frame on the row path, so
   every plan executes. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra

type op = { schema : Xtra.schema; next : unit -> Batch.t option }

(* --- per-operator batch counters (sampled by the obs registry) --------- *)

let batch_counts : (string * int ref) list =
  [
    ("scan", ref 0);
    ("filter", ref 0);
    ("project", ref 0);
    ("join", ref 0);
    ("aggregate", ref 0);
    ("limit", ref 0);
    ("distinct", ref 0);
    ("materialized", ref 0);
  ]

let bump name = incr (List.assoc name batch_counts)
let c_scan_rows = ref 0
let c_join_build_rows = ref 0
let c_join_probe_rows = ref 0
let c_agg_groups = ref 0
let c_fallback_ops = ref 0
let c_fallback_scalars = ref 0

let counters () =
  List.map (fun (k, r) -> ("batches_" ^ k, !r)) batch_counts
  @ [
      ("scan_rows", !c_scan_rows);
      ("join_build_rows", !c_join_build_rows);
      ("join_probe_rows", !c_join_probe_rows);
      ("agg_groups", !c_agg_groups);
      ("fallback_ops", !c_fallback_ops);
      ("fallback_scalars", !c_fallback_scalars);
    ]

let reset_counters () =
  List.iter (fun (_, r) -> r := 0) batch_counts;
  List.iter
    (fun r -> r := 0)
    [
      c_scan_rows;
      c_join_build_rows;
      c_join_probe_rows;
      c_agg_groups;
      c_fallback_ops;
      c_fallback_scalars;
    ]

(* --- small growable array --------------------------------------------- *)

module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }
  let length v = v.len
  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x

  let push v x =
    if v.len >= Array.length v.data then begin
      let d = Array.make (2 * Array.length v.data) v.dummy in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1;
    v.len - 1
end

let tys_of (schema : Xtra.schema) =
  Array.of_list (List.map (fun (c : Xtra.col) -> c.Xtra.ty) schema)

(* --- scalar compilation ------------------------------------------------ *)

(* Pure expressions over constants only: no column, parameter, aggregate or
   subquery references, and no function calls (some are volatile). These
   evaluate once at compile time — the batch path's analogue of constant
   folding, and what lets [DATE '...' + INTERVAL '1' YEAR] feed a
   comparison kernel. *)
let rec is_const (s : Xtra.scalar) =
  match s with
  | Xtra.Const _ -> true
  | Xtra.Arith (_, a, b)
  | Xtra.Cmp (_, a, b)
  | Xtra.Logic_and (a, b)
  | Xtra.Logic_or (a, b)
  | Xtra.Concat (a, b) ->
      is_const a && is_const b
  | Xtra.Logic_not a | Xtra.Is_null (a, _) | Xtra.Cast (a, _)
  | Xtra.Extract (_, a) ->
      is_const a
  | _ -> false

(* The folded value, or None if the expression is not constant or folding
   raises (a constant error like 1/0 must surface per ROW, as the row
   interpreter would — not at compile time over an empty input). *)
let folded_const ctx (s : Xtra.scalar) =
  match s with
  | Xtra.Const v -> Some v
  | s when is_const s -> ( try Some (Executor.eval ctx s) with _ -> None)
  | _ -> None

(* A compiled scalar takes the batch and a PHYSICAL row index. [index] maps
   column ids of the operator's input schema to column positions; it doubles
   as the frame index for the row-path fallback. *)
let rec compile_scalar ctx (index : (int, int) Hashtbl.t) (s : Xtra.scalar) :
    Batch.t -> int -> Value.t =
  match folded_const ctx s with
  | Some v -> fun _ _ -> v
  | None -> compile_scalar_node ctx index s

and compile_scalar_node ctx (index : (int, int) Hashtbl.t) (s : Xtra.scalar) :
    Batch.t -> int -> Value.t =
  match s with
  | Xtra.Const v -> fun _ _ -> v
  | Xtra.Col_ref c -> (
      match Hashtbl.find_opt index c.Xtra.id with
      | Some pos -> fun b i -> Batch.get b pos i
      | None -> fallback_scalar ctx index s)
  | Xtra.Arith (op, a, b) ->
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      let vop =
        match op with
        | Xtra.Add -> Value.Add
        | Xtra.Sub -> Value.Sub
        | Xtra.Mul -> Value.Mul
        | Xtra.Div -> Value.Div
        | Xtra.Modulo -> Value.Modulo
      in
      fun bt i -> Value.arith vop (fa bt i) (fb bt i)
  | Xtra.Cmp (op, a, b) ->
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        Scalar_func.value_of_bool3 (Scalar_func.eval_cmp op (fa bt i) (fb bt i))
  | Xtra.Logic_and (a, b) -> (
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        match Scalar_func.bool3_of_value (fa bt i) with
        | Some false -> Value.Bool false
        | Some true -> fb bt i
        | None -> (
            match Scalar_func.bool3_of_value (fb bt i) with
            | Some false -> Value.Bool false
            | _ -> Value.Null))
  | Xtra.Logic_or (a, b) -> (
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        match Scalar_func.bool3_of_value (fa bt i) with
        | Some true -> Value.Bool true
        | Some false -> fb bt i
        | None -> (
            match Scalar_func.bool3_of_value (fb bt i) with
            | Some true -> Value.Bool true
            | _ -> Value.Null))
  | Xtra.Logic_not a -> (
      let fa = compile_scalar ctx index a in
      fun bt i ->
        match Scalar_func.bool3_of_value (fa bt i) with
        | Some b -> Value.Bool (not b)
        | None -> Value.Null)
  | Xtra.Is_null (a, negated) ->
      let fa = compile_scalar ctx index a in
      fun bt i ->
        let v = fa bt i in
        Value.Bool (if negated then not (Value.is_null v) else Value.is_null v)
  | Xtra.Case { branches; else_branch; _ } ->
      let fbranches =
        List.map
          (fun (c, v) ->
            (compile_scalar ctx index c, compile_scalar ctx index v))
          branches
      in
      let felse = Option.map (compile_scalar ctx index) else_branch in
      fun bt i ->
        let rec go = function
          | [] -> ( match felse with Some f -> f bt i | None -> Value.Null)
          | (fc, fv) :: rest -> (
              match Scalar_func.bool3_of_value (fc bt i) with
              | Some true -> fv bt i
              | _ -> go rest)
        in
        go fbranches
  | Xtra.Cast (a, t) ->
      let fa = compile_scalar ctx index a in
      fun bt i -> Value.cast (fa bt i) t
  | Xtra.Func { name; args; _ } ->
      let fargs = List.map (compile_scalar ctx index) args in
      let env = Executor.scalar_env ctx in
      fun bt i ->
        Scalar_func.eval_function env name (List.map (fun f -> f bt i) fargs)
  | Xtra.Extract (f, a) ->
      let fa = compile_scalar ctx index a in
      fun bt i -> Scalar_func.eval_extract f (fa bt i)
  | Xtra.Concat (a, b) -> (
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        match (fa bt i, fb bt i) with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | a, b -> Value.Varchar (Value.to_string a ^ Value.to_string b))
  | Xtra.Like { arg; pattern; escape; negated } -> (
      let farg = compile_scalar ctx index arg
      and fpat = compile_scalar ctx index pattern in
      let fesc = Option.map (compile_scalar ctx index) escape in
      fun bt i ->
        match (farg bt i, fpat bt i) with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | v, p ->
            let esc =
              match Option.map (fun f -> f bt i) fesc with
              | Some (Value.Varchar e) when String.length e = 1 -> Some e.[0]
              | Some Value.Null | None -> None
              | Some v ->
                  Sql_error.execution_error "bad ESCAPE %s" (Value.to_string v)
            in
            let m =
              Scalar_func.like_match ?escape:esc
                ~pattern:(Value.to_string p) (Value.to_string v)
            in
            Value.Bool (if negated then not m else m))
  | Xtra.In_list { arg; items; negated } ->
      let farg = compile_scalar ctx index arg in
      let fitems = List.map (compile_scalar ctx index) items in
      fun bt i ->
        let v = farg bt i in
        let r =
          List.fold_left
            (fun acc fitem ->
              match acc with
              | Some true -> acc
              | _ -> (
                  match Scalar_func.eval_cmp Xtra.Eq v (fitem bt i) with
                  | Some true -> Some true
                  | Some false -> (
                      match acc with None -> None | _ -> Some false)
                  | None -> None))
            (Some false) fitems
        in
        Scalar_func.value_of_bool3 (if negated then Option.map not r else r)
  | Xtra.In_subquery { args = [ arg ]; subquery; negated }
    when not (Executor.is_correlated ctx subquery) ->
      (* Hash semi-join: the row path rescans the materialized subquery rows
         for EVERY probe value (O(probes x rows)); here integer results build
         a hash set once. Non-integer values take a linear pass that mirrors
         the interpreter's three-valued fold exactly, so semantics — NULL
         cells make the answer unknown rather than false — are identical. *)
      let farg = compile_scalar ctx index arg in
      let state =
        lazy
          (let rows = Executor.exec_subquery ctx subquery in
           let tbl = Hashtbl.create (List.length rows) in
           let has_null = ref false and all_int = ref true in
           List.iter
             (fun (row : Executor.row) ->
               match row.(0) with
               | Value.Int n -> Hashtbl.replace tbl n ()
               | Value.Null -> has_null := true
               | _ -> all_int := false)
             rows;
           (rows, tbl, !has_null, !all_int))
      in
      let linear v rows =
        List.fold_left
          (fun acc (row : Executor.row) ->
            match acc with
            | Some true -> acc
            | _ -> (
                match (Scalar_func.eval_cmp Xtra.Eq v row.(0), acc) with
                | Some true, _ -> Some true
                | Some false, Some false -> Some false
                | Some false, None -> None
                | None, _ -> None
                | _, _ -> acc))
          (Some false) rows
      in
      fun b i ->
        let rows, tbl, has_null, all_int = Lazy.force state in
        let r =
          match farg b i with
          | Value.Int n when all_int ->
              if Hashtbl.mem tbl n then Some true
              else if has_null then None
              else Some false
          | v -> linear v rows
        in
        Scalar_func.value_of_bool3 (if negated then Option.map not r else r)
  | Xtra.Param _ | Xtra.Scalar_subquery _ | Xtra.Exists _ | Xtra.In_subquery _
  | Xtra.Quantified _ | Xtra.Agg_ref _ | Xtra.Window_ref _ ->
      fallback_scalar ctx index s

(* Scalars outside the compiled subset (subqueries, parameters, out-of-scope
   column refs) evaluate on the row path: materialize the row, push it as a
   frame, and let {!Executor.eval} do the rest — including correlated
   subquery decorrelation, which reads outer columns through that frame. *)
and fallback_scalar ctx index s =
  incr c_fallback_scalars;
  let frame = { Executor.index; row = [||] } in
  fun b i ->
    frame.Executor.row <- Batch.to_row b i;
    Executor.push_frame ctx frame;
    Fun.protect
      ~finally:(fun () -> Executor.pop_frame ctx)
      (fun () -> Executor.eval ctx s)

(* Comparison kernels: a conjunct comparing a column to an integer or date
   constant runs directly over the unboxed vector when the column
   materialized as V_int / V_date — one branch per row, no boxing, NULLs
   rejected by the validity byte. *)
let flip_cmp = function
  | Xtra.Eq -> Xtra.Eq
  | Xtra.Neq -> Xtra.Neq
  | Xtra.Lt -> Xtra.Gt
  | Xtra.Lte -> Xtra.Gte
  | Xtra.Gt -> Xtra.Lt
  | Xtra.Gte -> Xtra.Lte

(* [true] iff [c op 0] — turns a three-way comparison into the conjunct's
   boolean with the same truth table as {!Scalar_func.eval_cmp}. *)
let cmp_sign op (c : int) =
  match op with
  | Xtra.Eq -> c = 0
  | Xtra.Neq -> c <> 0
  | Xtra.Lt -> c < 0
  | Xtra.Lte -> c <= 0
  | Xtra.Gt -> c > 0
  | Xtra.Gte -> c >= 0

let fast_cmp_kernel ctx (index : (int, int) Hashtbl.t) (conj : Xtra.scalar) :
    (Batch.t -> (int -> bool) option) option =
  let for_col c (op, k) =
    match Hashtbl.find_opt index c.Xtra.id with
    | None -> None
    | Some pos ->
        (* Filtering truth: a row passes only on [Some true]; [Some false]
           and NULL (None) both reject, so errors aside the kernel returns
           plain bool. *)
        let generic v =
          match Scalar_func.eval_cmp op v k with Some true -> true | _ -> false
        in
        (* Boxed vectors still skip the compiled-closure plumbing: direct
           array read, constructor fast path, [eval_cmp] only on mixed
           representations. *)
        let boxed : Value.t array -> int -> bool =
          match k with
          | Value.Null -> fun _ _ -> false
          | Value.Decimal kd ->
              fun a i -> (
                match a.(i) with
                | Value.Decimal d -> cmp_sign op (Decimal.compare d kd)
                | Value.Null -> false
                | v -> generic v)
          | Value.Varchar _ ->
              fun a i -> (
                match a.(i) with Value.Null -> false | v -> generic v)
          | _ -> fun a i -> generic a.(i)
        in
        Some
          (fun b ->
            match (Batch.col b pos, k) with
            | Batch.V_int { data; valid }, Value.Int ik ->
                Some
                  (fun i ->
                    Bytes.unsafe_get valid i = '\001'
                    && cmp_sign op (Int64.compare data.(i) ik))
            | Batch.V_date { data; valid }, Value.Date d ->
                (* teradata date ints are monotonic in date order *)
                let dk = Sql_date.to_teradata_int d in
                Some
                  (fun i ->
                    Bytes.unsafe_get valid i = '\001'
                    && cmp_sign op (compare data.(i) dk))
            | Batch.V_any a, _ -> Some (boxed a)
            | _ -> None)
  in
  (* column-vs-column comparison (e.g. L_COMMITDATE < L_RECEIPTDATE): both
     sides unboxed runs on flat ints; both boxed still skips the closures *)
  let col_col a b op =
    match (Hashtbl.find_opt index a.Xtra.id, Hashtbl.find_opt index b.Xtra.id)
    with
    | Some pa, Some pb ->
        Some
          (fun bt ->
            match (Batch.col bt pa, Batch.col bt pb) with
            | Batch.V_date va, Batch.V_date vb ->
                Some
                  (fun i ->
                    Bytes.unsafe_get va.valid i = '\001'
                    && Bytes.unsafe_get vb.valid i = '\001'
                    && cmp_sign op (compare va.data.(i) vb.data.(i)))
            | Batch.V_int va, Batch.V_int vb ->
                Some
                  (fun i ->
                    Bytes.unsafe_get va.valid i = '\001'
                    && Bytes.unsafe_get vb.valid i = '\001'
                    && cmp_sign op (Int64.compare va.data.(i) vb.data.(i)))
            | Batch.V_any va, Batch.V_any vb ->
                Some
                  (fun i ->
                    match Scalar_func.eval_cmp op va.(i) vb.(i) with
                    | Some true -> true
                    | _ -> false)
            | _ -> None)
    | _ -> None
  in
  match conj with
  | Xtra.Cmp (op, Xtra.Col_ref a, Xtra.Col_ref b) -> col_col a b op
  | Xtra.Cmp (op, Xtra.Col_ref c, rhs) -> (
      match folded_const ctx rhs with
      | Some v -> for_col c (op, v)
      | None -> None)
  | Xtra.Cmp (op, lhs, Xtra.Col_ref c) -> (
      match folded_const ctx lhs with
      | Some v -> for_col c (flip_cmp op, v)
      | None -> None)
  | _ -> None

(* --- operator construction --------------------------------------------- *)

let drain op =
  let acc = ref [] in
  let rec go () =
    match op.next () with
    | None -> List.rev !acc
    | Some b ->
        Batch.iter (fun i -> acc := Batch.to_row b i :: !acc) b;
        go ()
  in
  go ()

(* Stream an (on-demand) materialized row list as batches. *)
let op_of_lazy_rows label schema (rows : Executor.row list Lazy.t) =
  let tys = tys_of schema in
  let arr = lazy (Array.of_list (Lazy.force rows)) in
  let pos = ref 0 in
  {
    schema;
    next =
      (fun () ->
        let a = Lazy.force arr in
        if !pos >= Array.length a then None
        else begin
          let n = min Batch.capacity (Array.length a - !pos) in
          let b = Batch.of_rows tys a !pos n in
          pos := !pos + n;
          bump label;
          Some b
        end);
  }

let row_fallback ctx (r : Xtra.rel) =
  incr c_fallback_ops;
  op_of_lazy_rows "materialized" (Xtra.schema_of r)
    (lazy (Executor.exec ctx r))

(* Per-aggregate incremental state, mirroring {!Executor.finalize_agg}
   exactly: SUM folds [Value.arith Add] in row order; AVG over integers
   finalizes as an exact decimal; MIN/MAX fold with [compare_sql]. DISTINCT
   aggregates collect raw values and defer to [finalize_agg]. *)
type agg_acc = {
  mutable a_count_all : int;
  mutable a_count_nn : int;
  mutable a_sum : Value.t;
  mutable a_min : Value.t;
  mutable a_max : Value.t;
  mutable a_vals : Value.t list;  (** reversed; distinct aggregates only *)
}

let new_acc () =
  {
    a_count_all = 0;
    a_count_nn = 0;
    a_sum = Value.Null;
    a_min = Value.Null;
    a_max = Value.Null;
    a_vals = [];
  }

(* Columns of [schema] that a conjunct-level comparison kernel will consume:
   these want flat unboxed vectors. Only conjuncts eligible for
   [fast_cmp_kernel] mark their column — unboxing a column that is then read
   through the generic boxed path would re-box a value per access. *)
let unbox_hint ctx (schema : Xtra.schema) (pred : Xtra.scalar) =
  let hint = Array.make (List.length schema) false in
  let mark (c : Xtra.col) =
    List.iteri
      (fun pos (sc : Xtra.col) ->
        if sc.Xtra.id = c.Xtra.id then hint.(pos) <- true)
      schema
  in
  List.iter
    (fun conj ->
      match conj with
      | Xtra.Cmp (_, Xtra.Col_ref a, Xtra.Col_ref b) ->
          (* the col-col kernel needs BOTH sides flat, and only runs on
             integer/date vectors *)
          let unboxable (c : Xtra.col) =
            match c.Xtra.ty with Dtype.Int | Dtype.Date -> true | _ -> false
          in
          if unboxable a && unboxable b && a.Xtra.ty = b.Xtra.ty then begin
            mark a;
            mark b
          end
      | Xtra.Cmp (_, Xtra.Col_ref c, other)
      | Xtra.Cmp (_, other, Xtra.Col_ref c) -> (
          match folded_const ctx other with
          | Some (Value.Int _ | Value.Date _) -> mark c
          | _ -> ())
      | _ -> ())
    (Executor.split_conjuncts pred);
  hint

let dbg_times : (string, float ref) Hashtbl.t = Hashtbl.create 8
let dbg_enabled = lazy (Sys.getenv_opt "HYPERQ_EXEC_DEBUG" <> None)

let dbg_report () =
  let all = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) dbg_times [] in
  List.iter
    (fun (k, t) -> Printf.eprintf "      %-12s %8.2f ms (incl. inputs)\n" k (1000. *. t))
    (List.sort (fun (_, a) (_, b) -> compare b a) all);
  Hashtbl.reset dbg_times

let rel_label : Xtra.rel -> string = function
  | Xtra.Get _ -> "get"
  | Xtra.Values_rel _ -> "values"
  | Xtra.Filter _ -> "filter"
  | Xtra.Project _ -> "project"
  | Xtra.Join _ -> "join"
  | Xtra.Aggregate _ -> "aggregate"
  | Xtra.Window _ -> "window"
  | Xtra.Sort _ -> "sort"
  | Xtra.Limit _ -> "limit"
  | Xtra.Distinct _ -> "distinct"
  | Xtra.Set_operation _ -> "set_op"
  | Xtra.Cte_ref _ -> "cte_ref"
  | Xtra.With_cte _ -> "with_cte"

let rec compile ctx (r : Xtra.rel) : op =
  if not (Lazy.force dbg_enabled) then compile_node ctx r
  else begin
    let op = compile_node ctx r in
    let slot =
      match Hashtbl.find_opt dbg_times (rel_label r) with
      | Some s -> s
      | None ->
          let s = ref 0. in
          Hashtbl.add dbg_times (rel_label r) s;
          s
    in
    {
      op with
      next =
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let b = op.next () in
          slot := !slot +. (Unix.gettimeofday () -. t0);
          b);
    }
  end

and compile_node ctx (r : Xtra.rel) : op =
  match r with
  | Xtra.Get _ -> compile_get ctx r ()
  | Xtra.Filter { input = Xtra.Get _ as g; pred } ->
      compile_filter ctx
        (compile_get ctx g ~unbox:(unbox_hint ctx (Xtra.schema_of g) pred) ())
        pred
  | Xtra.Filter { input; pred } -> compile_filter ctx (compile ctx input) pred
  | Xtra.Project { input; proj } ->
      let iop = compile ctx input in
      let index = Executor.make_index iop.schema in
      let schema = Xtra.schema_of r in
      let plans =
        Array.of_list
          (List.map
             (fun ((_ : Xtra.col), e) ->
               match e with
               | Xtra.Col_ref c -> (
                   match Hashtbl.find_opt index c.Xtra.id with
                   | Some pos -> `Share pos
                   | None -> `Compute (compile_scalar ctx index e))
               | e -> `Compute (compile_scalar ctx index e))
             proj)
      in
      {
        schema;
        next =
          (fun () ->
            match iop.next () with
            | None -> None
            | Some b ->
                let cols =
                  Array.map
                    (function
                      | `Share pos -> Batch.col b pos
                      | `Compute f ->
                          let a = Array.make b.Batch.nrows Value.Null in
                          Batch.iter (fun i -> a.(i) <- f b i) b;
                          Batch.V_any a)
                    plans
                in
                bump "project";
                Some
                  (Batch.of_cols cols ~nrows:b.Batch.nrows ~sel:b.Batch.sel
                     ~nsel:b.Batch.nsel));
      }
  | Xtra.Join { kind; left; right; pred } -> compile_join ctx r kind left right pred
  | Xtra.Aggregate { grouping_sets = Some _; _ } -> row_fallback ctx r
  | Xtra.Aggregate { input; group_by; aggs; grouping_sets = None } ->
      compile_agg ctx r input group_by aggs
  | Xtra.Window { input; windows } ->
      let ischema = Xtra.schema_of input in
      op_of_lazy_rows "materialized" (Xtra.schema_of r)
        (lazy
          (Executor.exec_window_rows ctx ischema
             (drain (compile ctx input))
             windows))
  | Xtra.Sort { input; sort_keys } ->
      let ischema = Xtra.schema_of input in
      op_of_lazy_rows "materialized" (Xtra.schema_of r)
        (lazy
          (Executor.sort_rows ctx ischema sort_keys (drain (compile ctx input))))
  | Xtra.Limit { input; count; offset; with_ties; percent } ->
      if with_ties || percent then
        Sql_error.internal_error
          "TOP WITH TIES/PERCENT must be expanded before reaching the engine";
      let iop = compile ctx input in
      let eval_int = function
        | None -> None
        | Some e -> (
            match Executor.eval ctx e with
            | Value.Int n -> Some (Int64.to_int n)
            | Value.Decimal d -> Some (Int64.to_int (Decimal.to_int64 d))
            | v ->
                Sql_error.execution_error "LIMIT expects an integer, got %s"
                  (Value.to_string v))
      in
      let to_skip = ref (Option.value (eval_int offset) ~default:0) in
      let remaining = ref (Option.map (fun n -> max 0 n) (eval_int count)) in
      {
        schema = iop.schema;
        next =
          (fun () ->
            let rec loop () =
              if !remaining = Some 0 then None
              else
                match iop.next () with
                | None -> None
                | Some b ->
                    let n = Batch.num_rows b in
                    if !to_skip >= n then begin
                      to_skip := !to_skip - n;
                      loop ()
                    end
                    else begin
                      let avail = n - !to_skip in
                      let take =
                        match !remaining with
                        | Some rem -> min rem avail
                        | None -> avail
                      in
                      let sel =
                        Array.init take (fun k ->
                            Batch.phys_index b (!to_skip + k))
                      in
                      to_skip := 0;
                      (match !remaining with
                      | Some rem -> remaining := Some (rem - take)
                      | None -> ());
                      b.Batch.sel <- Some sel;
                      b.Batch.nsel <- take;
                      bump "limit";
                      Some b
                    end
            in
            loop ());
      }
  | Xtra.Distinct { input } ->
      let iop = compile ctx input in
      let ht = Hash_table.create ~null_equal:true 64 in
      {
        schema = iop.schema;
        next =
          (fun () ->
            let rec loop () =
              match iop.next () with
              | None -> None
              | Some b ->
                  let sel = Array.make (Batch.num_rows b) 0 in
                  let cnt = ref 0 in
                  Batch.iter
                    (fun i ->
                      let key = Batch.to_row b i in
                      let h = Hash_table.hash_key key in
                      let _, inserted = Hash_table.find_or_insert ht key h in
                      if inserted then begin
                        sel.(!cnt) <- i;
                        incr cnt
                      end)
                    b;
                  if !cnt = 0 then loop ()
                  else begin
                    b.Batch.sel <- Some sel;
                    b.Batch.nsel <- !cnt;
                    bump "distinct";
                    Some b
                  end
            in
            loop ());
      }
  | Xtra.Set_operation { op; all; left; right } ->
      op_of_lazy_rows "materialized" (Xtra.schema_of r)
        (lazy
          (Executor.set_op_rows op all
             (drain (compile ctx left))
             (drain (compile ctx right))))
  | Xtra.Values_rel _ | Xtra.Cte_ref _ | Xtra.With_cte _ -> row_fallback ctx r

and compile_get ctx (r : Xtra.rel) ?unbox () : op =
  match r with
  | Xtra.Get { table; table_schema; _ } ->
      let schema = Xtra.schema_of r in
      let tys = tys_of schema in
      let width = List.length table_schema in
      let arr =
        lazy
          (let rows = Storage.scan ctx.Executor.storage table in
           List.iter
             (fun (row : Executor.row) ->
               if Array.length row <> width then
                 Sql_error.internal_error "width mismatch scanning %s" table)
             rows;
           Array.of_list rows)
      in
      let pos = ref 0 in
      {
        schema;
        next =
          (fun () ->
            let a = Lazy.force arr in
            if !pos >= Array.length a then None
            else begin
              let n = min Batch.capacity (Array.length a - !pos) in
              let b = Batch.of_rows ?unbox tys a !pos n in
              pos := !pos + n;
              bump "scan";
              c_scan_rows := !c_scan_rows + n;
              Some b
            end);
      }
  | _ -> Sql_error.internal_error "compile_get expects a Get node"

(* Conjunct-at-a-time filtering: each AND-conjunct narrows the selection
   vector in place before the next one runs, so later (often more
   expensive) conjuncts only see survivors, and conjuncts with a
   comparison kernel never box a value. Order is preserved — a row dropped
   by conjunct N never reaches conjunct N+1, matching the row path's
   short-circuit. *)
and compile_filter ctx iop pred : op =
  let index = Executor.make_index iop.schema in
  let conjs =
    List.map
      (fun conj ->
        let f = compile_scalar ctx index conj in
        let generic b i = Scalar_func.bool3_of_value (f b i) = Some true in
        match fast_cmp_kernel ctx index conj with
        | Some kern -> (
            fun b -> match kern b with Some k -> k | None -> generic b)
        | None -> fun b -> generic b)
      (Executor.split_conjuncts pred)
  in
  {
    schema = iop.schema;
    next =
      (fun () ->
        let rec loop () =
          match iop.next () with
          | None -> None
          | Some b ->
              let sel =
                match b.Batch.sel with
                | Some s -> s
                | None -> Array.init b.Batch.nrows (fun i -> i)
              in
              let n = ref (match b.Batch.sel with Some _ -> b.Batch.nsel | None -> b.Batch.nrows) in
              List.iter
                (fun conj ->
                  if !n > 0 then begin
                    let keep = conj b in
                    let cnt = ref 0 in
                    for k = 0 to !n - 1 do
                      let i = sel.(k) in
                      if keep i then begin
                        sel.(!cnt) <- i;
                        incr cnt
                      end
                    done;
                    n := !cnt
                  end)
                conjs;
              if !n = 0 then loop ()
              else begin
                b.Batch.sel <- Some sel;
                b.Batch.nsel <- !n;
                bump "filter";
                Some b
              end
        in
        loop ());
  }

(* Equi-hash-join on the radix-partitioned table. Build drains the right
   side into a row store plus per-entry duplicate chains ([heads]/[nexts]);
   probe streams left batches, hashing each key row once. NULL keys never
   enter the table on either side — SQL equality can never match them — and
   the table itself (join mode) asserts none slip through. Joins the batch
   path does not cover (cross, residual conjuncts) fall back wholesale. *)
and compile_join ctx (jnode : Xtra.rel) kind left right pred : op =
  let lschema = Xtra.schema_of left and rschema = Xtra.schema_of right in
  let lids = List.map (fun (c : Xtra.col) -> c.Xtra.id) lschema in
  let rids = List.map (fun (c : Xtra.col) -> c.Xtra.id) rschema in
  let conjuncts =
    match pred with Some p -> Executor.split_conjuncts p | None -> []
  in
  let subset ids of_ids = List.for_all (fun i -> List.mem i of_ids) ids in
  let equi, residual =
    List.partition_map
      (fun c ->
        match c with
        | Xtra.Cmp (Xtra.Eq, a, b)
          when subset (Executor.scalar_col_ids a) lids
               && subset (Executor.scalar_col_ids b) rids ->
            Left (a, b)
        | Xtra.Cmp (Xtra.Eq, a, b)
          when subset (Executor.scalar_col_ids b) lids
               && subset (Executor.scalar_col_ids a) rids ->
            Left (b, a)
        | c -> Right c)
      conjuncts
  in
  let vectorizable =
    (match kind with Xtra.Cross -> false | _ -> true) && equi <> []
  in
  if not vectorizable then row_fallback ctx jnode
  else begin
    let lop = compile ctx left and rop = compile ctx right in
    let lindex = Executor.make_index lop.schema in
    let rindex = Executor.make_index rop.schema in
    (* Residual conjuncts check each candidate pair on the row path, exactly
       as the row interpreter does: a pair joins only when every residual is
       [Some true]; a probe row none of whose candidates survive counts as
       unmatched for outer-join purposes. *)
    let lframe = { Executor.index = lindex; row = [||] } in
    let rframe = { Executor.index = rindex; row = [||] } in
    let residual_ok lrow rrow =
      residual = []
      || begin
           lframe.Executor.row <- lrow;
           rframe.Executor.row <- rrow;
           Executor.push_frame ctx lframe;
           Executor.push_frame ctx rframe;
           let ok =
             List.for_all
               (fun c ->
                 Scalar_func.bool3_of_value (Executor.eval ctx c) = Some true)
               residual
           in
           Executor.pop_frame ctx;
           Executor.pop_frame ctx;
           ok
         end
    in
    let lkey_fs =
      Array.of_list (List.map (fun (a, _) -> compile_scalar ctx lindex a) equi)
    in
    let rkey_fs =
      Array.of_list (List.map (fun (_, b) -> compile_scalar ctx rindex b) equi)
    in
    let schema = Xtra.schema_of jnode in
    let tys = tys_of schema in
    let rwidth = List.length rschema and lwidth = List.length lschema in
    let null_right = Array.make rwidth Value.Null in
    let null_left = Array.make lwidth Value.Null in
    let keep_left =
      kind = Xtra.Left_outer || kind = Xtra.Full_outer
    in
    let keep_right =
      kind = Xtra.Right_outer || kind = Xtra.Full_outer
    in
    let ht = Hash_table.create ~null_equal:false 1024 in
    let rrows : Executor.row Vec.t = Vec.create [||] in
    let nexts = Vec.create (-1) in
    let heads = Vec.create (-1) in
    let matched = ref [||] in
    let built = ref false in
    let build () =
      let rec go () =
        match rop.next () with
        | None -> ()
        | Some rb ->
            Batch.iter
              (fun i ->
                let row = Batch.to_row rb i in
                let ri = Vec.push rrows row in
                ignore (Vec.push nexts (-1));
                let key = Array.map (fun f -> f rb i) rkey_fs in
                if not (Array.exists Value.is_null key) then begin
                  let h = Hash_table.hash_key key in
                  let e, inserted = Hash_table.find_or_insert ht key h in
                  if inserted then ignore (Vec.push heads ri)
                  else begin
                    Vec.set nexts ri (Vec.get heads e);
                    Vec.set heads e ri
                  end
                end)
              rb;
            go ()
      in
      go ();
      c_join_build_rows := !c_join_build_rows + Vec.length rrows;
      if keep_right then matched := Array.make (Vec.length rrows) false
    in
    (* output rows buffered between pulls: one probe batch can produce more
       than [Batch.capacity] matches *)
    let buf : Executor.row Vec.t = Vec.create [||] in
    let emit_pos = ref 0 in
    let exhausted = ref false in
    let probe_batch lb =
      Batch.iter
        (fun i ->
          incr c_join_probe_rows;
          let key = Array.map (fun f -> f lb i) lkey_fs in
          let e =
            if Array.exists Value.is_null key then -1
            else Hash_table.find ht key (Hash_table.hash_key key)
          in
          if e < 0 then begin
            if keep_left then
              ignore (Vec.push buf (Array.append (Batch.to_row lb i) null_right))
          end
          else begin
            let lrow = Batch.to_row lb i in
            let any = ref false in
            let j = ref (Vec.get heads e) in
            while !j >= 0 do
              let rrow = Vec.get rrows !j in
              if residual_ok lrow rrow then begin
                any := true;
                if keep_right then !matched.(!j) <- true;
                ignore (Vec.push buf (Array.append lrow rrow))
              end;
              j := Vec.get nexts !j
            done;
            if (not !any) && keep_left then
              ignore (Vec.push buf (Array.append lrow null_right))
          end)
        lb
    in
    let emit_tail_right () =
      if keep_right then
        for j = 0 to Vec.length rrows - 1 do
          if not !matched.(j) then
            ignore (Vec.push buf (Array.append null_left (Vec.get rrows j)))
        done
    in
    let emit_slice () =
      let n = min Batch.capacity (Vec.length buf - !emit_pos) in
      (* copy the row POINTERS out: batches share rows with their source
         window, so the buffer must not be recycled underneath them *)
      let rows = Array.sub buf.Vec.data !emit_pos n in
      let b = Batch.of_rows tys rows 0 n in
      emit_pos := !emit_pos + n;
      if !emit_pos >= Vec.length buf then begin
        (* fully drained: recycle the buffer *)
        buf.Vec.len <- 0;
        emit_pos := 0
      end;
      bump "join";
      Some b
    in
    {
      schema;
      next =
        (fun () ->
          if not !built then begin
            let t0 = Unix.gettimeofday () in
            build ();
            if Lazy.force dbg_enabled then
              Printf.eprintf "      join build: %.2f ms (%d rows)\n"
                (1000. *. (Unix.gettimeofday () -. t0))
                (Vec.length rrows);
            built := true
          end;
          let rec loop () =
            if Vec.length buf - !emit_pos >= Batch.capacity then emit_slice ()
            else if !exhausted then
              if Vec.length buf - !emit_pos > 0 then emit_slice () else None
            else
              match lop.next () with
              | Some lb ->
                  probe_batch lb;
                  loop ()
              | None ->
                  emit_tail_right ();
                  exhausted := true;
                  loop ()
          in
          loop ());
    }
  end

(* Hash aggregation over the same table: keys hash once per row, groups keep
   O(1) incremental accumulators instead of retained row lists, and output
   preserves first-seen group order like the row path. *)
and compile_agg ctx (anode : Xtra.rel) input group_by aggs : op =
  let schema = Xtra.schema_of anode in
  let aggs_a = Array.of_list (List.map snd aggs) in
  let rows =
    lazy
      (let iop = compile ctx input in
       let index = Executor.make_index iop.schema in
       let key_fs =
         Array.of_list
           (List.map
              (fun ((_ : Xtra.col), e) -> compile_scalar ctx index e)
              group_by)
       in
       let arg_fs =
         Array.map
           (fun (a : Xtra.agg_def) ->
             Option.map (compile_scalar ctx index) a.Xtra.aarg)
           aggs_a
       in
       let update accs b i =
         Array.iteri
           (fun j (a : Xtra.agg_def) ->
             let acc = accs.(j) in
             let arg () =
               match arg_fs.(j) with
               | Some f -> f b i
               | None -> Value.Bool true
             in
             if a.Xtra.adistinct then acc.a_vals <- arg () :: acc.a_vals
             else
               match a.Xtra.afunc with
               | Xtra.Count_star -> acc.a_count_all <- acc.a_count_all + 1
               | Xtra.Count ->
                   if not (Value.is_null (arg ())) then
                     acc.a_count_nn <- acc.a_count_nn + 1
               | Xtra.Sum ->
                   let v = arg () in
                   if not (Value.is_null v) then
                     acc.a_sum <-
                       (if Value.is_null acc.a_sum then v
                        else Value.arith Value.Add acc.a_sum v)
               | Xtra.Avg ->
                   let v = arg () in
                   if not (Value.is_null v) then begin
                     acc.a_count_nn <- acc.a_count_nn + 1;
                     acc.a_sum <-
                       (if Value.is_null acc.a_sum then v
                        else Value.arith Value.Add acc.a_sum v)
                   end
               | Xtra.Min ->
                   let v = arg () in
                   if not (Value.is_null v) then
                     if Value.is_null acc.a_min then acc.a_min <- v
                     else (
                       match Value.compare_sql v acc.a_min with
                       | Some c when c < 0 -> acc.a_min <- v
                       | _ -> ())
               | Xtra.Max ->
                   let v = arg () in
                   if not (Value.is_null v) then
                     if Value.is_null acc.a_max then acc.a_max <- v
                     else (
                       match Value.compare_sql v acc.a_max with
                       | Some c when c > 0 -> acc.a_max <- v
                       | _ -> ()))
           aggs_a
       in
       let finalize (a : Xtra.agg_def) acc =
         if a.Xtra.adistinct then Executor.finalize_agg a (List.rev acc.a_vals)
         else
           match a.Xtra.afunc with
           | Xtra.Count_star -> Value.of_int acc.a_count_all
           | Xtra.Count -> Value.of_int acc.a_count_nn
           | Xtra.Sum -> acc.a_sum
           | Xtra.Avg -> (
               match acc.a_sum with
               | Value.Null -> Value.Null
               | Value.Int n ->
                   (* AVG over integers is exact, not integer division *)
                   Value.Decimal
                     (Decimal.div (Decimal.of_int64 n)
                        (Decimal.of_int acc.a_count_nn))
               | s -> Value.arith Value.Div s (Value.of_int acc.a_count_nn))
           | Xtra.Min -> acc.a_min
           | Xtra.Max -> acc.a_max
       in
       let finalized accs =
         Array.to_list (Array.mapi (fun j acc -> finalize aggs_a.(j) acc) accs)
       in
       if group_by = [] then begin
         (* global aggregate: exactly one output row *)
         let accs = Array.map (fun _ -> new_acc ()) aggs_a in
         let rec go () =
           match iop.next () with
           | None -> ()
           | Some b ->
               Batch.iter (fun i -> update accs b i) b;
               go ()
         in
         go ();
         [ Array.of_list (finalized accs) ]
       end
       else begin
         let ht = Hash_table.create ~null_equal:true 256 in
         let gaccs : agg_acc array Vec.t = Vec.create [||] in
         let rec go () =
           match iop.next () with
           | None -> ()
           | Some b ->
               Batch.iter
                 (fun i ->
                   let key = Array.map (fun f -> f b i) key_fs in
                   let h = Hash_table.hash_key key in
                   let e, inserted = Hash_table.find_or_insert ht key h in
                   if inserted then
                     ignore (Vec.push gaccs (Array.map (fun _ -> new_acc ()) aggs_a));
                   update (Vec.get gaccs e) b i)
                 b;
               go ()
         in
         go ();
         c_agg_groups := !c_agg_groups + Hash_table.count ht;
         List.init (Hash_table.count ht) (fun g ->
             Array.append
               (Hash_table.entry_key ht g)
               (Array.of_list (finalized (Vec.get gaccs g))))
       end)
  in
  op_of_lazy_rows "aggregate" schema rows

(* --- entry point -------------------------------------------------------- *)

(* Execute [rel] on the batch path, returning materialized rows (the
   backend's result representation). *)
let exec_rows ctx (rel : Xtra.rel) : Executor.row list =
  let rows = drain (compile ctx rel) in
  if Lazy.force dbg_enabled then dbg_report ();
  rows
