(* Vectorized executor: compiles an XTRA plan into a tree of pull-based
   operators exchanging columnar {!Batch.t} values.

   Scans, filters, projections, equi-hash-joins, hash aggregation, DISTINCT,
   and LIMIT stream batch-at-a-time; blocking operators (sort, window, set
   operations) drain their compiled input and reuse the row-path
   implementations in {!Executor}; plan shapes the batch path does not cover
   (CTEs, cross/residual joins, grouping sets) fall back to the row
   interpreter wholesale. Scalar expressions compile to closures with column
   positions resolved at compile time — no per-row frame pushes or id
   hashtable lookups — and scalars the batch path cannot compile (subqueries,
   parameters) evaluate through a per-row adapter frame on the row path, so
   every plan executes. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra

(* An operator: a pull-based batch stream, plus — when the statement's
   parallelism budget allows and the subtree is morsel-splittable — a
   parallel source. A parallel source is started once; it then hands each
   worker domain a private puller over a SHARED atomic morsel cursor, so
   domains claim morsels dynamically. Every batch is tagged with its morsel
   sequence number; the driver reassembles outputs in sequence order, which
   makes the parallel batch stream bit-identical to the sequential one.
   [pm_tail] runs once on the caller after the barrier (outer-join unmatched
   rows, and anything downstream of them). *)
type op = {
  schema : Xtra.schema;
  next : unit -> Batch.t option;
  par : par_source option;
}

and par_source = unit -> par_run

and par_run = {
  pm_total : int;  (** number of morsel sequence slots *)
  pm_make : int -> unit -> (int * Batch.t) option;
      (** [pm_make slot] builds the per-domain puller for body [slot]:
          domain-private compiled closures over the shared cursor *)
  pm_tail : unit -> Batch.t list;
      (** caller-side epilogue after the barrier, ordered after all morsels *)
}

(* A morsel-tagged error: raised inside a puller chain so the driver can
   attribute the failure to a morsel and re-raise the error of the EARLIEST
   failing morsel — the one the sequential path would have hit first. *)
exception Morsel_error of int * exn

(* --- per-operator batch counters (sampled by the obs registry) ---------
   Atomics: parallel morsel workers bump them concurrently. *)

let batch_counts : (string * int Atomic.t) list =
  [
    ("scan", Atomic.make 0);
    ("filter", Atomic.make 0);
    ("project", Atomic.make 0);
    ("join", Atomic.make 0);
    ("aggregate", Atomic.make 0);
    ("limit", Atomic.make 0);
    ("distinct", Atomic.make 0);
    ("materialized", Atomic.make 0);
  ]

let bump name = Atomic.incr (List.assoc name batch_counts)
let c_scan_rows = Atomic.make 0
let c_join_build_rows = Atomic.make 0
let c_join_probe_rows = Atomic.make 0
let c_agg_groups = Atomic.make 0
let c_fallback_ops = Atomic.make 0
let c_fallback_scalars = Atomic.make 0
let add c n = ignore (Atomic.fetch_and_add c n)

let counters () =
  List.map (fun (k, r) -> ("batches_" ^ k, Atomic.get r)) batch_counts
  @ [
      ("scan_rows", Atomic.get c_scan_rows);
      ("join_build_rows", Atomic.get c_join_build_rows);
      ("join_probe_rows", Atomic.get c_join_probe_rows);
      ("agg_groups", Atomic.get c_agg_groups);
      ("fallback_ops", Atomic.get c_fallback_ops);
      ("fallback_scalars", Atomic.get c_fallback_scalars);
    ]

let reset_counters () =
  List.iter (fun (_, r) -> Atomic.set r 0) batch_counts;
  List.iter
    (fun r -> Atomic.set r 0)
    [
      c_scan_rows;
      c_join_build_rows;
      c_join_probe_rows;
      c_agg_groups;
      c_fallback_ops;
      c_fallback_scalars;
    ]

(* --- small growable array --------------------------------------------- *)

module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }
  let length v = v.len
  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x

  let push v x =
    if v.len >= Array.length v.data then begin
      let d = Array.make (2 * Array.length v.data) v.dummy in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1;
    v.len - 1
end

let tys_of (schema : Xtra.schema) =
  Array.of_list (List.map (fun (c : Xtra.col) -> c.Xtra.ty) schema)

(* --- scalar compilation ------------------------------------------------ *)

(* Pure expressions over constants only: no column, parameter, aggregate or
   subquery references, and no function calls (some are volatile). These
   evaluate once at compile time — the batch path's analogue of constant
   folding, and what lets [DATE '...' + INTERVAL '1' YEAR] feed a
   comparison kernel. *)
let rec is_const (s : Xtra.scalar) =
  match s with
  | Xtra.Const _ -> true
  | Xtra.Arith (_, a, b)
  | Xtra.Cmp (_, a, b)
  | Xtra.Logic_and (a, b)
  | Xtra.Logic_or (a, b)
  | Xtra.Concat (a, b) ->
      is_const a && is_const b
  | Xtra.Logic_not a | Xtra.Is_null (a, _) | Xtra.Cast (a, _)
  | Xtra.Extract (_, a) ->
      is_const a
  | _ -> false

(* The folded value, or None if the expression is not constant or folding
   raises (a constant error like 1/0 must surface per ROW, as the row
   interpreter would — not at compile time over an empty input). *)
let folded_const ctx (s : Xtra.scalar) =
  match s with
  | Xtra.Const v -> Some v
  | s when is_const s -> ( try Some (Executor.eval ctx s) with _ -> None)
  | _ -> None

(* A compiled scalar takes the batch and a PHYSICAL row index. [index] maps
   column ids of the operator's input schema to column positions; it doubles
   as the frame index for the row-path fallback. *)
let rec compile_scalar ctx (index : (int, int) Hashtbl.t) (s : Xtra.scalar) :
    Batch.t -> int -> Value.t =
  match folded_const ctx s with
  | Some v -> fun _ _ -> v
  | None -> compile_scalar_node ctx index s

and compile_scalar_node ctx (index : (int, int) Hashtbl.t) (s : Xtra.scalar) :
    Batch.t -> int -> Value.t =
  match s with
  | Xtra.Const v -> fun _ _ -> v
  | Xtra.Col_ref c -> (
      match Hashtbl.find_opt index c.Xtra.id with
      | Some pos -> fun b i -> Batch.get b pos i
      | None -> fallback_scalar ctx index s)
  | Xtra.Arith (op, a, b) ->
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      let vop =
        match op with
        | Xtra.Add -> Value.Add
        | Xtra.Sub -> Value.Sub
        | Xtra.Mul -> Value.Mul
        | Xtra.Div -> Value.Div
        | Xtra.Modulo -> Value.Modulo
      in
      fun bt i -> Value.arith vop (fa bt i) (fb bt i)
  | Xtra.Cmp (op, a, b) ->
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        Scalar_func.value_of_bool3 (Scalar_func.eval_cmp op (fa bt i) (fb bt i))
  | Xtra.Logic_and (a, b) -> (
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        match Scalar_func.bool3_of_value (fa bt i) with
        | Some false -> Value.Bool false
        | Some true -> fb bt i
        | None -> (
            match Scalar_func.bool3_of_value (fb bt i) with
            | Some false -> Value.Bool false
            | _ -> Value.Null))
  | Xtra.Logic_or (a, b) -> (
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        match Scalar_func.bool3_of_value (fa bt i) with
        | Some true -> Value.Bool true
        | Some false -> fb bt i
        | None -> (
            match Scalar_func.bool3_of_value (fb bt i) with
            | Some true -> Value.Bool true
            | _ -> Value.Null))
  | Xtra.Logic_not a -> (
      let fa = compile_scalar ctx index a in
      fun bt i ->
        match Scalar_func.bool3_of_value (fa bt i) with
        | Some b -> Value.Bool (not b)
        | None -> Value.Null)
  | Xtra.Is_null (a, negated) ->
      let fa = compile_scalar ctx index a in
      fun bt i ->
        let v = fa bt i in
        Value.Bool (if negated then not (Value.is_null v) else Value.is_null v)
  | Xtra.Case { branches; else_branch; _ } ->
      let fbranches =
        List.map
          (fun (c, v) ->
            (compile_scalar ctx index c, compile_scalar ctx index v))
          branches
      in
      let felse = Option.map (compile_scalar ctx index) else_branch in
      fun bt i ->
        let rec go = function
          | [] -> ( match felse with Some f -> f bt i | None -> Value.Null)
          | (fc, fv) :: rest -> (
              match Scalar_func.bool3_of_value (fc bt i) with
              | Some true -> fv bt i
              | _ -> go rest)
        in
        go fbranches
  | Xtra.Cast (a, t) ->
      let fa = compile_scalar ctx index a in
      fun bt i -> Value.cast (fa bt i) t
  | Xtra.Func { name; args; _ } ->
      let fargs = List.map (compile_scalar ctx index) args in
      let env = Executor.scalar_env ctx in
      fun bt i ->
        Scalar_func.eval_function env name (List.map (fun f -> f bt i) fargs)
  | Xtra.Extract (f, a) ->
      let fa = compile_scalar ctx index a in
      fun bt i -> Scalar_func.eval_extract f (fa bt i)
  | Xtra.Concat (a, b) -> (
      let fa = compile_scalar ctx index a and fb = compile_scalar ctx index b in
      fun bt i ->
        match (fa bt i, fb bt i) with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | a, b -> Value.Varchar (Value.to_string a ^ Value.to_string b))
  | Xtra.Like { arg; pattern; escape; negated } -> (
      let farg = compile_scalar ctx index arg
      and fpat = compile_scalar ctx index pattern in
      let fesc = Option.map (compile_scalar ctx index) escape in
      fun bt i ->
        match (farg bt i, fpat bt i) with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | v, p ->
            let esc =
              match Option.map (fun f -> f bt i) fesc with
              | Some (Value.Varchar e) when String.length e = 1 -> Some e.[0]
              | Some Value.Null | None -> None
              | Some v ->
                  Sql_error.execution_error "bad ESCAPE %s" (Value.to_string v)
            in
            let m =
              Scalar_func.like_match ?escape:esc
                ~pattern:(Value.to_string p) (Value.to_string v)
            in
            Value.Bool (if negated then not m else m))
  | Xtra.In_list { arg; items; negated } ->
      let farg = compile_scalar ctx index arg in
      let fitems = List.map (compile_scalar ctx index) items in
      fun bt i ->
        let v = farg bt i in
        let r =
          List.fold_left
            (fun acc fitem ->
              match acc with
              | Some true -> acc
              | _ -> (
                  match Scalar_func.eval_cmp Xtra.Eq v (fitem bt i) with
                  | Some true -> Some true
                  | Some false -> (
                      match acc with None -> None | _ -> Some false)
                  | None -> None))
            (Some false) fitems
        in
        Scalar_func.value_of_bool3 (if negated then Option.map not r else r)
  | Xtra.In_subquery { args = [ arg ]; subquery; negated }
    when not (Executor.is_correlated ctx subquery) ->
      (* Hash semi-join: the row path rescans the materialized subquery rows
         for EVERY probe value (O(probes x rows)); here integer results build
         a hash set once. Non-integer values take a linear pass that mirrors
         the interpreter's three-valued fold exactly, so semantics — NULL
         cells make the answer unknown rather than false — are identical. *)
      let farg = compile_scalar ctx index arg in
      let state =
        lazy
          (let rows = Executor.exec_subquery ctx subquery in
           let tbl = Hashtbl.create (List.length rows) in
           let has_null = ref false and all_int = ref true in
           List.iter
             (fun (row : Executor.row) ->
               match row.(0) with
               | Value.Int n -> Hashtbl.replace tbl n ()
               | Value.Null -> has_null := true
               | _ -> all_int := false)
             rows;
           (rows, tbl, !has_null, !all_int))
      in
      let linear v rows =
        List.fold_left
          (fun acc (row : Executor.row) ->
            match acc with
            | Some true -> acc
            | _ -> (
                match (Scalar_func.eval_cmp Xtra.Eq v row.(0), acc) with
                | Some true, _ -> Some true
                | Some false, Some false -> Some false
                | Some false, None -> None
                | None, _ -> None
                | _, _ -> acc))
          (Some false) rows
      in
      fun b i ->
        let rows, tbl, has_null, all_int = Lazy.force state in
        let r =
          match farg b i with
          | Value.Int n when all_int ->
              if Hashtbl.mem tbl n then Some true
              else if has_null then None
              else Some false
          | v -> linear v rows
        in
        Scalar_func.value_of_bool3 (if negated then Option.map not r else r)
  | Xtra.Param _ | Xtra.Scalar_subquery _ | Xtra.Exists _ | Xtra.In_subquery _
  | Xtra.Quantified _ | Xtra.Agg_ref _ | Xtra.Window_ref _ ->
      fallback_scalar ctx index s

(* Scalars outside the compiled subset (subqueries, parameters, out-of-scope
   column refs) evaluate on the row path: materialize the row, push it as a
   frame, and let {!Executor.eval} do the rest — including correlated
   subquery decorrelation, which reads outer columns through that frame. *)
and fallback_scalar ctx index s =
  Atomic.incr c_fallback_scalars;
  let frame = { Executor.index; row = [||] } in
  fun b i ->
    frame.Executor.row <- Batch.to_row b i;
    Executor.push_frame ctx frame;
    Fun.protect
      ~finally:(fun () -> Executor.pop_frame ctx)
      (fun () -> Executor.eval ctx s)

(* Comparison kernels: a conjunct comparing a column to an integer or date
   constant runs directly over the unboxed vector when the column
   materialized as V_int / V_date — one branch per row, no boxing, NULLs
   rejected by the validity byte. *)
let flip_cmp = function
  | Xtra.Eq -> Xtra.Eq
  | Xtra.Neq -> Xtra.Neq
  | Xtra.Lt -> Xtra.Gt
  | Xtra.Lte -> Xtra.Gte
  | Xtra.Gt -> Xtra.Lt
  | Xtra.Gte -> Xtra.Lte

(* [true] iff [c op 0] — turns a three-way comparison into the conjunct's
   boolean with the same truth table as {!Scalar_func.eval_cmp}. *)
let cmp_sign op (c : int) =
  match op with
  | Xtra.Eq -> c = 0
  | Xtra.Neq -> c <> 0
  | Xtra.Lt -> c < 0
  | Xtra.Lte -> c <= 0
  | Xtra.Gt -> c > 0
  | Xtra.Gte -> c >= 0

let fast_cmp_kernel ctx (index : (int, int) Hashtbl.t) (conj : Xtra.scalar) :
    (Batch.t -> (int -> bool) option) option =
  let for_col c (op, k) =
    match Hashtbl.find_opt index c.Xtra.id with
    | None -> None
    | Some pos ->
        (* Filtering truth: a row passes only on [Some true]; [Some false]
           and NULL (None) both reject, so errors aside the kernel returns
           plain bool. *)
        let generic v =
          match Scalar_func.eval_cmp op v k with Some true -> true | _ -> false
        in
        (* Boxed vectors still skip the compiled-closure plumbing: direct
           array read, constructor fast path, [eval_cmp] only on mixed
           representations. *)
        let boxed : Value.t array -> int -> bool =
          match k with
          | Value.Null -> fun _ _ -> false
          | Value.Decimal kd ->
              fun a i -> (
                match a.(i) with
                | Value.Decimal d -> cmp_sign op (Decimal.compare d kd)
                | Value.Null -> false
                | v -> generic v)
          | Value.Varchar _ ->
              fun a i -> (
                match a.(i) with Value.Null -> false | v -> generic v)
          | _ -> fun a i -> generic a.(i)
        in
        Some
          (fun b ->
            match (Batch.col b pos, k) with
            | Batch.V_int { data; valid }, Value.Int ik ->
                Some
                  (fun i ->
                    Bytes.unsafe_get valid i = '\001'
                    && cmp_sign op (Int64.compare data.(i) ik))
            | Batch.V_date { data; valid }, Value.Date d ->
                (* teradata date ints are monotonic in date order *)
                let dk = Sql_date.to_teradata_int d in
                Some
                  (fun i ->
                    Bytes.unsafe_get valid i = '\001'
                    && cmp_sign op (compare data.(i) dk))
            | Batch.V_any a, _ -> Some (boxed a)
            | _ -> None)
  in
  (* column-vs-column comparison (e.g. L_COMMITDATE < L_RECEIPTDATE): both
     sides unboxed runs on flat ints; both boxed still skips the closures *)
  let col_col a b op =
    match (Hashtbl.find_opt index a.Xtra.id, Hashtbl.find_opt index b.Xtra.id)
    with
    | Some pa, Some pb ->
        Some
          (fun bt ->
            match (Batch.col bt pa, Batch.col bt pb) with
            | Batch.V_date va, Batch.V_date vb ->
                Some
                  (fun i ->
                    Bytes.unsafe_get va.valid i = '\001'
                    && Bytes.unsafe_get vb.valid i = '\001'
                    && cmp_sign op (compare va.data.(i) vb.data.(i)))
            | Batch.V_int va, Batch.V_int vb ->
                Some
                  (fun i ->
                    Bytes.unsafe_get va.valid i = '\001'
                    && Bytes.unsafe_get vb.valid i = '\001'
                    && cmp_sign op (Int64.compare va.data.(i) vb.data.(i)))
            | Batch.V_any va, Batch.V_any vb ->
                Some
                  (fun i ->
                    match Scalar_func.eval_cmp op va.(i) vb.(i) with
                    | Some true -> true
                    | _ -> false)
            | _ -> None)
    | _ -> None
  in
  match conj with
  | Xtra.Cmp (op, Xtra.Col_ref a, Xtra.Col_ref b) -> col_col a b op
  | Xtra.Cmp (op, Xtra.Col_ref c, rhs) -> (
      match folded_const ctx rhs with
      | Some v -> for_col c (op, v)
      | None -> None)
  | Xtra.Cmp (op, lhs, Xtra.Col_ref c) -> (
      match folded_const ctx lhs with
      | Some v -> for_col c (flip_cmp op, v)
      | None -> None)
  | _ -> None

(* --- operator construction --------------------------------------------- *)

let drain op =
  let acc = ref [] in
  let rec go () =
    match op.next () with
    | None -> List.rev !acc
    | Some b ->
        Batch.iter (fun i -> acc := Batch.to_row b i :: !acc) b;
        go ()
  in
  go ()

(* Stream an (on-demand) materialized row list as batches. *)
let op_of_lazy_rows label schema (rows : Executor.row list Lazy.t) =
  let tys = tys_of schema in
  let arr = lazy (Array.of_list (Lazy.force rows)) in
  let pos = ref 0 in
  {
    schema;
    next =
      (fun () ->
        let a = Lazy.force arr in
        if !pos >= Array.length a then None
        else begin
          let n = min Batch.capacity (Array.length a - !pos) in
          let b = Batch.of_rows tys a !pos n in
          pos := !pos + n;
          bump label;
          Some b
        end);
    par = None;
  }

let row_fallback ctx (r : Xtra.rel) =
  Atomic.incr c_fallback_ops;
  op_of_lazy_rows "materialized" (Xtra.schema_of r)
    (lazy (Executor.exec ctx r))

(* Per-aggregate incremental state, mirroring {!Executor.finalize_agg}
   exactly: SUM folds [Value.arith Add] in row order; AVG over integers
   finalizes as an exact decimal; MIN/MAX fold with [compare_sql]. DISTINCT
   aggregates collect raw values and defer to [finalize_agg]. *)
type agg_acc = {
  mutable a_count_all : int;
  mutable a_count_nn : int;
  mutable a_sum : Value.t;
  mutable a_min : Value.t;
  mutable a_max : Value.t;
  mutable a_vals : Value.t list;  (** reversed; distinct aggregates only *)
}

let new_acc () =
  {
    a_count_all = 0;
    a_count_nn = 0;
    a_sum = Value.Null;
    a_min = Value.Null;
    a_max = Value.Null;
    a_vals = [];
  }

(* Fold row [i] of batch [b] into the accumulators — shared by the
   sequential aggregation loop and the per-domain partial loops. *)
let agg_update (aggs_a : Xtra.agg_def array)
    (arg_fs : (Batch.t -> int -> Value.t) option array) (accs : agg_acc array)
    b i =
  Array.iteri
    (fun j (a : Xtra.agg_def) ->
      let acc = accs.(j) in
      let arg () =
        match arg_fs.(j) with Some f -> f b i | None -> Value.Bool true
      in
      if a.Xtra.adistinct then acc.a_vals <- arg () :: acc.a_vals
      else
        match a.Xtra.afunc with
        | Xtra.Count_star -> acc.a_count_all <- acc.a_count_all + 1
        | Xtra.Count ->
            if not (Value.is_null (arg ())) then
              acc.a_count_nn <- acc.a_count_nn + 1
        | Xtra.Sum ->
            let v = arg () in
            if not (Value.is_null v) then
              acc.a_sum <-
                (if Value.is_null acc.a_sum then v
                 else Value.arith Value.Add acc.a_sum v)
        | Xtra.Avg ->
            let v = arg () in
            if not (Value.is_null v) then begin
              acc.a_count_nn <- acc.a_count_nn + 1;
              acc.a_sum <-
                (if Value.is_null acc.a_sum then v
                 else Value.arith Value.Add acc.a_sum v)
            end
        | Xtra.Min ->
            let v = arg () in
            if not (Value.is_null v) then
              if Value.is_null acc.a_min then acc.a_min <- v
              else (
                match Value.compare_sql v acc.a_min with
                | Some c when c < 0 -> acc.a_min <- v
                | _ -> ())
        | Xtra.Max ->
            let v = arg () in
            if not (Value.is_null v) then
              if Value.is_null acc.a_max then acc.a_max <- v
              else (
                match Value.compare_sql v acc.a_max with
                | Some c when c > 0 -> acc.a_max <- v
                | _ -> ()))
    aggs_a

let agg_finalize_one (a : Xtra.agg_def) acc =
  if a.Xtra.adistinct then Executor.finalize_agg a (List.rev acc.a_vals)
  else
    match a.Xtra.afunc with
    | Xtra.Count_star -> Value.of_int acc.a_count_all
    | Xtra.Count -> Value.of_int acc.a_count_nn
    | Xtra.Sum -> acc.a_sum
    | Xtra.Avg -> (
        match acc.a_sum with
        | Value.Null -> Value.Null
        | Value.Int n ->
            (* AVG over integers is exact, not integer division *)
            Value.Decimal
              (Decimal.div (Decimal.of_int64 n) (Decimal.of_int acc.a_count_nn))
        | s -> Value.arith Value.Div s (Value.of_int acc.a_count_nn))
    | Xtra.Min -> acc.a_min
    | Xtra.Max -> acc.a_max

let agg_finalized aggs_a accs =
  Array.to_list
    (Array.mapi (fun j acc -> agg_finalize_one aggs_a.(j) acc) accs)

(* Aggregates a parallel two-phase plan may compute as per-domain partials
   merged at the barrier. The merge must be EXACT and order-insensitive, or
   the parallel answer could differ from the sequential one:
   - COUNT and COUNT_star add integer counts — always safe.
   - SUM/AVG only over Int/Decimal arguments (the output column type is Int
     or Decimal exactly when the argument is): integer addition wraps
     commutatively and decimal addition is exact, but float addition is not
     associative, so a domain split would change rounding.
   - MIN/MAX over types whose [Value.compare_sql] is total: a merge compares
     the per-domain extrema.
   - DISTINCT aggregates keep raw value LISTS whose global order a merge
     cannot reconstruct — excluded. *)
let par_safe_aggs (aggs : (Xtra.col * Xtra.agg_def) list) =
  List.for_all
    (fun ((c : Xtra.col), (a : Xtra.agg_def)) ->
      (not a.Xtra.adistinct)
      &&
      match a.Xtra.afunc with
      | Xtra.Count_star | Xtra.Count -> true
      | Xtra.Sum | Xtra.Avg -> (
          match c.Xtra.ty with
          | Dtype.Int | Dtype.Decimal _ -> true
          | _ -> false)
      | Xtra.Min | Xtra.Max -> (
          match c.Xtra.ty with
          | Dtype.Int | Dtype.Decimal _ | Dtype.Date | Dtype.Varchar _
          | Dtype.Bool ->
              true
          | _ -> false))
    aggs

(* Merge partial [src] into [dst], in body-slot order (0, 1, ..., tail), so
   repeated merges fold exactly like the sequential row order would for the
   [par_safe_aggs] subset. *)
let merge_accs (aggs_a : Xtra.agg_def array) (dst : agg_acc array)
    (src : agg_acc array) =
  Array.iteri
    (fun j (a : Xtra.agg_def) ->
      let d = dst.(j) and s = src.(j) in
      match a.Xtra.afunc with
      | Xtra.Count_star -> d.a_count_all <- d.a_count_all + s.a_count_all
      | Xtra.Count -> d.a_count_nn <- d.a_count_nn + s.a_count_nn
      | Xtra.Sum ->
          if not (Value.is_null s.a_sum) then
            d.a_sum <-
              (if Value.is_null d.a_sum then s.a_sum
               else Value.arith Value.Add d.a_sum s.a_sum)
      | Xtra.Avg ->
          d.a_count_nn <- d.a_count_nn + s.a_count_nn;
          if not (Value.is_null s.a_sum) then
            d.a_sum <-
              (if Value.is_null d.a_sum then s.a_sum
               else Value.arith Value.Add d.a_sum s.a_sum)
      | Xtra.Min ->
          if not (Value.is_null s.a_min) then
            if Value.is_null d.a_min then d.a_min <- s.a_min
            else (
              match Value.compare_sql s.a_min d.a_min with
              | Some c when c < 0 -> d.a_min <- s.a_min
              | _ -> ())
      | Xtra.Max ->
          if not (Value.is_null s.a_max) then
            if Value.is_null d.a_max then d.a_max <- s.a_max
            else (
              match Value.compare_sql s.a_max d.a_max with
              | Some c when c > 0 -> d.a_max <- s.a_max
              | _ -> ()))
    aggs_a

(* Columns of [schema] that a conjunct-level comparison kernel will consume:
   these want flat unboxed vectors. Only conjuncts eligible for
   [fast_cmp_kernel] mark their column — unboxing a column that is then read
   through the generic boxed path would re-box a value per access. *)
let unbox_hint ctx (schema : Xtra.schema) (pred : Xtra.scalar) =
  let hint = Array.make (List.length schema) false in
  let mark (c : Xtra.col) =
    List.iteri
      (fun pos (sc : Xtra.col) ->
        if sc.Xtra.id = c.Xtra.id then hint.(pos) <- true)
      schema
  in
  List.iter
    (fun conj ->
      match conj with
      | Xtra.Cmp (_, Xtra.Col_ref a, Xtra.Col_ref b) ->
          (* the col-col kernel needs BOTH sides flat, and only runs on
             integer/date vectors *)
          let unboxable (c : Xtra.col) =
            match c.Xtra.ty with Dtype.Int | Dtype.Date -> true | _ -> false
          in
          if unboxable a && unboxable b && a.Xtra.ty = b.Xtra.ty then begin
            mark a;
            mark b
          end
      | Xtra.Cmp (_, Xtra.Col_ref c, other)
      | Xtra.Cmp (_, other, Xtra.Col_ref c) -> (
          match folded_const ctx other with
          | Some (Value.Int _ | Value.Date _) -> mark c
          | _ -> ())
      | _ -> ())
    (Executor.split_conjuncts pred);
  hint

let dbg_times : (string, float ref) Hashtbl.t = Hashtbl.create 8

(* Re-read per call (not lazy) so tests can toggle the variable at runtime.
   Parallel regions bypass the per-op timing wrapper — fragment work inside a
   region is attributed to the op that drives the region — so [dbg_times]
   stays a caller-thread-only structure. *)
let dbg_enabled () =
  match Sys.getenv_opt "HYPERQ_EXEC_DEBUG" with
  | None | Some "" -> false (* empty = off, so tests can putenv it away *)
  | Some _ -> true

let dbg_report () =
  let all = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) dbg_times [] in
  List.iter
    (fun (k, t) -> Printf.eprintf "      %-12s %8.2f ms (incl. inputs)\n" k (1000. *. t))
    (List.sort (fun (_, a) (_, b) -> compare b a) all);
  Hashtbl.reset dbg_times

(* --- parallel region driver -------------------------------------------- *)

(* Drive a started region across the domain pool and return its batches in
   morsel order followed by the tail. Each body owns a private puller; morsel
   outputs land in disjoint slots of [out], published by the run barrier.
   A body that sees an error records it (tagged with its morsel) and stops
   pulling; after the barrier the error of the EARLIEST morsel re-raises.
   That choice is exactly the sequential error: the cursor hands out morsels
   in ascending order, so every morsel before the earliest failing one was
   fully processed without error. *)
let run_par_source (run : par_run) ndom : Batch.t list =
  let out = Array.make (max run.pm_total 1) None in
  let errs = ref [] in
  let errs_m = Mutex.create () in
  let body d =
    let pull = run.pm_make d in
    let rec go () =
      match
        try `Batch (pull ()) with
        | Morsel_error (k, e) -> `Err (k, e)
        | e -> `Err (max_int, e)
      with
      | `Batch None -> ()
      | `Batch (Some (k, b)) ->
          out.(k) <- Some b;
          Morsel.note_morsel d;
          go ()
      | `Err (k, e) ->
          Mutex.lock errs_m;
          errs := (k, e) :: !errs;
          Mutex.unlock errs_m
    in
    go ()
  in
  Morsel.run ~domains:(max 1 (min ndom run.pm_total)) body;
  (match List.sort (fun ((a : int), _) (b, _) -> compare a b) !errs with
  | (_, e) :: _ -> raise e
  | [] -> ());
  let acc = ref (run.pm_tail ()) in
  for k = run.pm_total - 1 downto 0 do
    match out.(k) with Some b -> acc := b :: !acc | None -> ()
  done;
  !acc

(* Wrap a region as an op. With a parallelism budget of 1 the sequential
   [next] is used untouched (bit-identical to the pre-parallel code path);
   otherwise the first pull collects the whole region and streams the
   reassembled batches, skipping morsels that filtered down to zero rows
   (the sequential path never emits empty batches). *)
let op_of_region ctx schema ?seq_next (src : par_source) : op =
  let ndom = ctx.Executor.domains in
  match seq_next with
  | Some f when ndom <= 1 -> { schema; next = f; par = None }
  | _ ->
      let state : Batch.t list ref option ref = ref None in
      let next () =
        let q =
          match !state with
          | Some q -> q
          | None ->
              let q = ref (run_par_source (src ()) ndom) in
              state := Some q;
              q
        in
        let rec pop () =
          match !q with
          | [] -> None
          | b :: rest ->
              q := rest;
              if Batch.num_rows b = 0 then pop () else Some b
        in
        pop ()
      in
      { schema; next; par = Some src }

(* Conjunct filters for [compile_filter], factored out so a parallel region
   can compile a domain-private copy against a cloned ctx (compiled scalars
   may push adapter frames on the ctx they captured). *)
let make_conjs ctx index pred =
  List.map
    (fun conj ->
      let f = compile_scalar ctx index conj in
      let generic b i = Scalar_func.bool3_of_value (f b i) = Some true in
      match fast_cmp_kernel ctx index conj with
      | Some kern -> (
          fun b -> match kern b with Some k -> k | None -> generic b)
      | None -> fun b -> generic b)
    (Executor.split_conjuncts pred)

(* Narrow [b]'s selection vector through the conjuncts in place; the batch
   may come out empty ([nsel = 0]). *)
let apply_conjs conjs b =
  let sel =
    match b.Batch.sel with
    | Some s -> s
    | None -> Array.init b.Batch.nrows (fun i -> i)
  in
  let n =
    ref (match b.Batch.sel with Some _ -> b.Batch.nsel | None -> b.Batch.nrows)
  in
  List.iter
    (fun conj ->
      if !n > 0 then begin
        let keep = conj b in
        let cnt = ref 0 in
        for k = 0 to !n - 1 do
          let i = sel.(k) in
          if keep i then begin
            sel.(!cnt) <- i;
            incr cnt
          end
        done;
        n := !cnt
      end)
    conjs;
  b.Batch.sel <- Some sel;
  b.Batch.nsel <- !n

let rel_label : Xtra.rel -> string = function
  | Xtra.Get _ -> "get"
  | Xtra.Values_rel _ -> "values"
  | Xtra.Filter _ -> "filter"
  | Xtra.Project _ -> "project"
  | Xtra.Join _ -> "join"
  | Xtra.Aggregate _ -> "aggregate"
  | Xtra.Window _ -> "window"
  | Xtra.Sort _ -> "sort"
  | Xtra.Limit _ -> "limit"
  | Xtra.Distinct _ -> "distinct"
  | Xtra.Set_operation _ -> "set_op"
  | Xtra.Cte_ref _ -> "cte_ref"
  | Xtra.With_cte _ -> "with_cte"

(* Parallel equi-hash-join.

   Build (runs once, on the caller, when the region starts):
   1. drain the build side into the global row store (the build side's own
      operators may parallelize internally — this loop is just the final
      collection);
   2. PARALLEL: evaluate join keys and hashes over build-row morsels into
      disjoint slices of flat arrays (an empty key row marks a NULL join
      key, which can match nothing);
   3. sequential, cheap: bucket surviving row indices per radix partition,
      preserving global row order within each partition;
   4. PARALLEL: partition-per-worker insert into 2^radix_bits independent
      tables — same-key rows always share a partition, so no table sees
      writes from two domains, and per-partition duplicate chains come out
      exactly as the sequential single-table build would have linked them.

   Probe is a region over the left input: each domain probes whole left
   morsels with domain-private key/residual closures against the shared
   read-only tables. Outer-join bookkeeping ([matched]) uses idempotent
   flag writes published by the run barrier; the unmatched-right sweep runs
   in the region tail, after every probe morsel. *)
let compile_join_par ctx (jnode : Xtra.rel) kind (lop : op)
    (lsrc : par_source) (rop : op) equi residual : op =
  let lindex = Executor.make_index lop.schema in
  let rindex = Executor.make_index rop.schema in
  let schema = Xtra.schema_of jnode in
  let tys = tys_of schema in
  let rtys = tys_of rop.schema in
  let rwidth = List.length rop.schema and lwidth = List.length lop.schema in
  let null_right = Array.make rwidth Value.Null in
  let null_left = Array.make lwidth Value.Null in
  let keep_left = kind = Xtra.Left_outer || kind = Xtra.Full_outer in
  let keep_right = kind = Xtra.Right_outer || kind = Xtra.Full_outer in
  let nparts = Hash_table.num_partitions in
  let tables =
    Array.init nparts (fun _ -> Hash_table.create ~null_equal:false 64)
  in
  let pheads = Array.init nparts (fun _ -> Vec.create (-1)) in
  let rrows : Executor.row Vec.t = Vec.create [||] in
  let nexts = ref [||] in
  let hashes = ref [||] in
  let keys : Value.t array array ref = ref [||] in
  let matched = ref [||] in
  let built = ref false in
  let build () =
    let rec collect () =
      match rop.next () with
      | None -> ()
      | Some rb ->
          Batch.iter (fun i -> ignore (Vec.push rrows (Batch.to_row rb i))) rb;
          collect ()
    in
    collect ();
    let n = Vec.length rrows in
    add c_join_build_rows n;
    nexts := Array.make (max n 1) (-1);
    hashes := Array.make (max n 1) 0;
    keys := Array.make (max n 1) [||];
    let khashes = !hashes and kkeys = !keys in
    let nm = (n + Batch.capacity - 1) / Batch.capacity in
    let cursor = Atomic.make 0 in
    let errs = ref [] in
    let errs_m = Mutex.create () in
    Morsel.run ~domains:(max 1 (min ctx.Executor.domains nm)) (fun d ->
        let dctx = Executor.clone_for_domain ctx in
        let rkey_fs =
          Array.of_list
            (List.map (fun (_, b) -> compile_scalar dctx rindex b) equi)
        in
        let rec go () =
          let k = Atomic.fetch_and_add cursor 1 in
          if k < nm then begin
            let lo = k * Batch.capacity in
            let len = min Batch.capacity (n - lo) in
            (try
               let b = Batch.of_rows rtys rrows.Vec.data lo len in
               for i = 0 to len - 1 do
                 let key = Array.map (fun f -> f b i) rkey_fs in
                 if not (Array.exists Value.is_null key) then begin
                   kkeys.(lo + i) <- key;
                   khashes.(lo + i) <- Hash_table.hash_key key
                 end
               done
             with e ->
               Mutex.lock errs_m;
               errs := (k, e) :: !errs;
               Mutex.unlock errs_m);
            Morsel.note_morsel d;
            go ()
          end
        in
        go ());
    (match List.sort (fun ((a : int), _) (b, _) -> compare a b) !errs with
    | (_, e) :: _ -> raise e
    | [] -> ());
    let part_rows = Array.init nparts (fun _ -> Vec.create 0) in
    for ri = 0 to n - 1 do
      if Array.length kkeys.(ri) > 0 then
        ignore
          (Vec.push part_rows.(Hash_table.partition_of_hash khashes.(ri)) ri)
    done;
    let pcursor = Atomic.make 0 in
    Morsel.run ~domains:(max 1 (min ctx.Executor.domains nparts)) (fun d ->
        let rec go () =
          let p = Atomic.fetch_and_add pcursor 1 in
          if p < nparts then begin
            let pr = part_rows.(p) in
            let tbl = tables.(p) and hd = pheads.(p) in
            for q = 0 to Vec.length pr - 1 do
              let ri = Vec.get pr q in
              let e, inserted =
                Hash_table.find_or_insert tbl kkeys.(ri) khashes.(ri)
              in
              if inserted then ignore (Vec.push hd ri)
              else begin
                !nexts.(ri) <- Vec.get hd e;
                Vec.set hd e ri
              end
            done;
            if Vec.length pr > 0 then Morsel.note_morsel d;
            go ()
          end
        in
        go ());
    if keep_right then matched := Array.make (max n 1) false
  in
  (* Domain-private prober: key closures and residual adapter frames compile
     against [pctx] so concurrent probes never share a frame stack. *)
  let make_prober pctx =
    let lkey_fs =
      Array.of_list (List.map (fun (a, _) -> compile_scalar pctx lindex a) equi)
    in
    let lframe = { Executor.index = lindex; row = [||] } in
    let rframe = { Executor.index = rindex; row = [||] } in
    let residual_ok lrow rrow =
      residual = []
      || begin
           lframe.Executor.row <- lrow;
           rframe.Executor.row <- rrow;
           Executor.push_frame pctx lframe;
           Executor.push_frame pctx rframe;
           let ok =
             List.for_all
               (fun c ->
                 Scalar_func.bool3_of_value (Executor.eval pctx c) = Some true)
               residual
           in
           Executor.pop_frame pctx;
           Executor.pop_frame pctx;
           ok
         end
    in
    fun (buf : Executor.row Vec.t) lb ->
      add c_join_probe_rows (Batch.num_rows lb);
      Batch.iter
        (fun i ->
          let key = Array.map (fun f -> f lb i) lkey_fs in
          let e, p =
            if Array.exists Value.is_null key then (-1, 0)
            else begin
              let h = Hash_table.hash_key key in
              let p = Hash_table.partition_of_hash h in
              (Hash_table.find tables.(p) key h, p)
            end
          in
          if e < 0 then begin
            if keep_left then
              ignore
                (Vec.push buf (Array.append (Batch.to_row lb i) null_right))
          end
          else begin
            let lrow = Batch.to_row lb i in
            let any = ref false in
            let j = ref (Vec.get pheads.(p) e) in
            while !j >= 0 do
              let rrow = Vec.get rrows !j in
              if residual_ok lrow rrow then begin
                any := true;
                if keep_right then !matched.(!j) <- true;
                ignore (Vec.push buf (Array.append lrow rrow))
              end;
              j := !nexts.(!j)
            done;
            if (not !any) && keep_left then
              ignore (Vec.push buf (Array.append lrow null_right))
          end)
        lb
  in
  (* One output batch per probe morsel — possibly larger than
     [Batch.capacity]; downstream operators size off [nrows], not the
     capacity constant. *)
  let batch_of_buf (buf : Executor.row Vec.t) =
    if Vec.length buf > 0 then bump "join";
    Batch.of_rows tys buf.Vec.data 0 (Vec.length buf)
  in
  let src () =
    if not !built then begin
      let t0 = Unix.gettimeofday () in
      build ();
      if dbg_enabled () then
        Printf.eprintf "      join build (parallel): %.2f ms (%d rows)\n"
          (1000. *. (Unix.gettimeofday () -. t0))
          (Vec.length rrows);
      built := true
    end;
    let lrun = lsrc () in
    {
      pm_total = lrun.pm_total;
      pm_make =
        (fun d ->
          let prober = make_prober (Executor.clone_for_domain ctx) in
          let pull = lrun.pm_make d in
          fun () ->
            match pull () with
            | None -> None
            | Some (k, lb) ->
                let b =
                  try
                    let buf : Executor.row Vec.t = Vec.create [||] in
                    prober buf lb;
                    batch_of_buf buf
                  with
                  | Morsel_error _ as e -> raise e
                  | e -> raise (Morsel_error (k, e))
                in
                Some (k, b));
      pm_tail =
        (fun () ->
          let prober = make_prober ctx in
          let out =
            List.filter_map
              (fun lb ->
                let buf : Executor.row Vec.t = Vec.create [||] in
                prober buf lb;
                if Vec.length buf = 0 then None else Some (batch_of_buf buf))
              (lrun.pm_tail ())
          in
          if not keep_right then out
          else begin
            let buf : Executor.row Vec.t = Vec.create [||] in
            for j = 0 to Vec.length rrows - 1 do
              if not !matched.(j) then
                ignore
                  (Vec.push buf (Array.append null_left (Vec.get rrows j)))
            done;
            if Vec.length buf = 0 then out else out @ [ batch_of_buf buf ]
          end);
    }
  in
  op_of_region ctx schema src

(* Parallel two-phase aggregation: each domain folds its morsels into a
   PRIVATE partial (hash table of per-group accumulators), and the caller
   merges partials after the barrier, in body-slot order. Only
   [par_safe_aggs] aggregates reach this path, so the merged accumulators
   equal the sequential ones exactly. Output order: the sequential path
   emits groups in first-seen order over the global row stream; each partial
   tags a group with its first (morsel, position-in-morsel), the merge keeps
   the minimum tag, and a final sort by tag reconstructs that exact order. *)
let compile_agg_par ctx schema ischema (isrc : par_source) group_by
    (aggs_a : Xtra.agg_def array) : op =
  let rows =
    lazy
      (let index = Executor.make_index ischema in
       let irun = isrc () in
       let stride = 1 lsl 40 in
       let nd = max 1 (min ctx.Executor.domains (max 1 irun.pm_total)) in
       let errs = ref [] in
       let errs_m = Mutex.create () in
       let record k e =
         Mutex.lock errs_m;
         errs := (k, e) :: !errs;
         Mutex.unlock errs_m
       in
       (* the standard region pull loop, with per-morsel error attribution *)
       let pull_loop d pull consume =
         let rec go () =
           match
             try `Batch (pull ()) with
             | Morsel_error (k, e) -> `Err (k, e)
             | e -> `Err (max_int, e)
           with
           | `Batch None -> ()
           | `Batch (Some (k, b)) -> (
               match
                 try
                   consume k b;
                   `Ok
                 with e -> `Err (k, e)
               with
               | `Ok ->
                   Morsel.note_morsel d;
                   go ()
               | `Err (k, e) -> record k e)
           | `Err (k, e) -> record k e
         in
         go ()
       in
       let raise_earliest () =
         match
           List.sort (fun ((a : int), _) (b, _) -> compare a b) !errs
         with
         | (_, e) :: _ -> raise e
         | [] -> ()
       in
       let arg_plans pctx =
         Array.map
           (fun (a : Xtra.agg_def) ->
             Option.map (compile_scalar pctx index) a.Xtra.aarg)
           aggs_a
       in
       if group_by = [] then begin
         (* global aggregate: one accumulator row per body slot, plus one
            for the region tail; merged in slot order *)
         let partials =
           Array.init (nd + 1) (fun _ -> Array.map (fun _ -> new_acc ()) aggs_a)
         in
         let consume pctx accs =
           let arg_fs = arg_plans pctx in
           fun b -> Batch.iter (fun i -> agg_update aggs_a arg_fs accs b i) b
         in
         Morsel.run ~domains:nd (fun d ->
             let consume1 = consume (Executor.clone_for_domain ctx) partials.(d) in
             pull_loop d (irun.pm_make d) (fun _ b -> consume1 b));
         raise_earliest ();
         let consume_tail = consume ctx partials.(nd) in
         List.iter consume_tail (irun.pm_tail ());
         let acc = partials.(0) in
         for s = 1 to nd do
           merge_accs aggs_a acc partials.(s)
         done;
         [ Array.of_list (agg_finalized aggs_a acc) ]
       end
       else begin
         let partials =
           Array.init (nd + 1) (fun _ ->
               ( Hash_table.create ~null_equal:true 64,
                 (Vec.create [||] : agg_acc array Vec.t),
                 Vec.create 0 ))
         in
         let consume pctx slot =
           let ht, gaccs, firsts = partials.(slot) in
           let key_fs =
             Array.of_list
               (List.map
                  (fun ((_ : Xtra.col), e) -> compile_scalar pctx index e)
                  group_by)
           in
           let arg_fs = arg_plans pctx in
           fun k b ->
             let pos = ref 0 in
             Batch.iter
               (fun i ->
                 let key = Array.map (fun f -> f b i) key_fs in
                 let h = Hash_table.hash_key key in
                 let e, inserted = Hash_table.find_or_insert ht key h in
                 if inserted then begin
                   ignore
                     (Vec.push gaccs (Array.map (fun _ -> new_acc ()) aggs_a));
                   ignore (Vec.push firsts ((k * stride) + !pos))
                 end;
                 agg_update aggs_a arg_fs (Vec.get gaccs e) b i;
                 incr pos)
               b
         in
         Morsel.run ~domains:nd (fun d ->
             let consume1 = consume (Executor.clone_for_domain ctx) d in
             pull_loop d (irun.pm_make d) consume1);
         raise_earliest ();
         let consume_tail = consume ctx nd in
         List.iteri
           (fun i b -> consume_tail (irun.pm_total + i) b)
           (irun.pm_tail ());
         let mht = Hash_table.create ~null_equal:true 256 in
         let maccs : agg_acc array Vec.t = Vec.create [||] in
         let mfirst = Vec.create 0 in
         Array.iter
           (fun (ht, gaccs, firsts) ->
             for g = 0 to Hash_table.count ht - 1 do
               let key = Hash_table.entry_key ht g in
               let h = Hash_table.hash_key key in
               let e, inserted = Hash_table.find_or_insert mht key h in
               if inserted then begin
                 ignore (Vec.push maccs (Vec.get gaccs g));
                 ignore (Vec.push mfirst (Vec.get firsts g))
               end
               else begin
                 merge_accs aggs_a (Vec.get maccs e) (Vec.get gaccs g);
                 if Vec.get firsts g < Vec.get mfirst e then
                   Vec.set mfirst e (Vec.get firsts g)
               end
             done)
           partials;
         add c_agg_groups (Hash_table.count mht);
         let order = Array.init (Hash_table.count mht) (fun g -> g) in
         Array.sort
           (fun a b -> compare (Vec.get mfirst a) (Vec.get mfirst b))
           order;
         Array.to_list
           (Array.map
              (fun g ->
                Array.append
                  (Hash_table.entry_key mht g)
                  (Array.of_list (agg_finalized aggs_a (Vec.get maccs g))))
              order)
       end)
  in
  op_of_lazy_rows "aggregate" schema rows

let rec compile ctx (r : Xtra.rel) : op =
  if not (dbg_enabled ()) then compile_node ctx r
  else begin
    let op = compile_node ctx r in
    let slot =
      match Hashtbl.find_opt dbg_times (rel_label r) with
      | Some s -> s
      | None ->
          let s = ref 0. in
          Hashtbl.add dbg_times (rel_label r) s;
          s
    in
    {
      op with
      next =
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let b = op.next () in
          slot := !slot +. (Unix.gettimeofday () -. t0);
          b);
    }
  end

and compile_node ctx (r : Xtra.rel) : op =
  match r with
  | Xtra.Get _ -> compile_get ctx r ()
  | Xtra.Filter { input = Xtra.Get _ as g; pred } ->
      compile_filter ctx
        (compile_get ctx g ~unbox:(unbox_hint ctx (Xtra.schema_of g) pred) ())
        pred
  | Xtra.Filter { input; pred } -> compile_filter ctx (compile ctx input) pred
  | Xtra.Project { input; proj } -> (
      let iop = compile ctx input in
      let index = Executor.make_index iop.schema in
      let schema = Xtra.schema_of r in
      let make_plans pctx =
        Array.of_list
          (List.map
             (fun ((_ : Xtra.col), e) ->
               match e with
               | Xtra.Col_ref c -> (
                   match Hashtbl.find_opt index c.Xtra.id with
                   | Some pos -> `Share pos
                   | None -> `Compute (compile_scalar pctx index e))
               | e -> `Compute (compile_scalar pctx index e))
             proj)
      in
      let plans = make_plans ctx in
      let apply plans b =
        let cols =
          Array.map
            (function
              | `Share pos -> Batch.col b pos
              | `Compute f ->
                  let a = Array.make b.Batch.nrows Value.Null in
                  Batch.iter (fun i -> a.(i) <- f b i) b;
                  Batch.V_any a)
            plans
        in
        Batch.of_cols cols ~nrows:b.Batch.nrows ~sel:b.Batch.sel
          ~nsel:b.Batch.nsel
      in
      let seq_next () =
        match iop.next () with
        | None -> None
        | Some b ->
            bump "project";
            Some (apply plans b)
      in
      match iop.par with
      | Some isrc when ctx.Executor.domains > 1 ->
          let src () =
            let irun = isrc () in
            {
              irun with
              pm_make =
                (fun d ->
                  let dplans = make_plans (Executor.clone_for_domain ctx) in
                  let pull = irun.pm_make d in
                  fun () ->
                    match pull () with
                    | None -> None
                    | Some (k, b) ->
                        let pb =
                          try apply dplans b with
                          | Morsel_error _ as e -> raise e
                          | e -> raise (Morsel_error (k, e))
                        in
                        if Batch.num_rows pb > 0 then bump "project";
                        Some (k, pb));
              pm_tail =
                (fun () ->
                  List.map
                    (fun b ->
                      bump "project";
                      apply plans b)
                    (irun.pm_tail ()));
            }
          in
          op_of_region ctx schema ~seq_next src
      | _ -> { schema; next = seq_next; par = None })
  | Xtra.Join { kind; left; right; pred } -> compile_join ctx r kind left right pred
  | Xtra.Aggregate { grouping_sets = Some _; _ } -> row_fallback ctx r
  | Xtra.Aggregate { input; group_by; aggs; grouping_sets = None } ->
      compile_agg ctx r input group_by aggs
  | Xtra.Window { input; windows } ->
      let ischema = Xtra.schema_of input in
      op_of_lazy_rows "materialized" (Xtra.schema_of r)
        (lazy
          (Executor.exec_window_rows ctx ischema
             (drain (compile ctx input))
             windows))
  | Xtra.Sort { input; sort_keys } ->
      let ischema = Xtra.schema_of input in
      op_of_lazy_rows "materialized" (Xtra.schema_of r)
        (lazy
          (Executor.sort_rows ctx ischema sort_keys (drain (compile ctx input))))
  | Xtra.Limit { input; count; offset; with_ties; percent } ->
      if with_ties || percent then
        Sql_error.internal_error
          "TOP WITH TIES/PERCENT must be expanded before reaching the engine";
      let iop = compile ctx input in
      let eval_int = function
        | None -> None
        | Some e -> (
            match Executor.eval ctx e with
            | Value.Int n -> Some (Int64.to_int n)
            | Value.Decimal d -> Some (Int64.to_int (Decimal.to_int64 d))
            | v ->
                Sql_error.execution_error "LIMIT expects an integer, got %s"
                  (Value.to_string v))
      in
      let to_skip = ref (Option.value (eval_int offset) ~default:0) in
      let remaining = ref (Option.map (fun n -> max 0 n) (eval_int count)) in
      {
        schema = iop.schema;
        next =
          (fun () ->
            let rec loop () =
              if !remaining = Some 0 then None
              else
                match iop.next () with
                | None -> None
                | Some b ->
                    let n = Batch.num_rows b in
                    if !to_skip >= n then begin
                      to_skip := !to_skip - n;
                      loop ()
                    end
                    else begin
                      let avail = n - !to_skip in
                      let take =
                        match !remaining with
                        | Some rem -> min rem avail
                        | None -> avail
                      in
                      let sel =
                        Array.init take (fun k ->
                            Batch.phys_index b (!to_skip + k))
                      in
                      to_skip := 0;
                      (match !remaining with
                      | Some rem -> remaining := Some (rem - take)
                      | None -> ());
                      b.Batch.sel <- Some sel;
                      b.Batch.nsel <- take;
                      bump "limit";
                      Some b
                    end
            in
            loop ());
        par = None;
      }
  | Xtra.Distinct { input } ->
      let iop = compile ctx input in
      let ht = Hash_table.create ~null_equal:true 64 in
      {
        schema = iop.schema;
        next =
          (fun () ->
            let rec loop () =
              match iop.next () with
              | None -> None
              | Some b ->
                  let sel = Array.make (Batch.num_rows b) 0 in
                  let cnt = ref 0 in
                  Batch.iter
                    (fun i ->
                      let key = Batch.to_row b i in
                      let h = Hash_table.hash_key key in
                      let _, inserted = Hash_table.find_or_insert ht key h in
                      if inserted then begin
                        sel.(!cnt) <- i;
                        incr cnt
                      end)
                    b;
                  if !cnt = 0 then loop ()
                  else begin
                    b.Batch.sel <- Some sel;
                    b.Batch.nsel <- !cnt;
                    bump "distinct";
                    Some b
                  end
            in
            loop ());
        par = None;
      }
  | Xtra.Set_operation { op; all; left; right } ->
      op_of_lazy_rows "materialized" (Xtra.schema_of r)
        (lazy
          (Executor.set_op_rows op all
             (drain (compile ctx left))
             (drain (compile ctx right))))
  | Xtra.Values_rel _ | Xtra.Cte_ref _ | Xtra.With_cte _ -> row_fallback ctx r

and compile_get ctx (r : Xtra.rel) ?unbox () : op =
  match r with
  | Xtra.Get { table; table_schema; _ } ->
      let schema = Xtra.schema_of r in
      let tys = tys_of schema in
      let width = List.length table_schema in
      let arr =
        lazy
          (let rows = Storage.scan ctx.Executor.storage table in
           List.iter
             (fun (row : Executor.row) ->
               if Array.length row <> width then
                 Sql_error.internal_error "width mismatch scanning %s" table)
             rows;
           Array.of_list rows)
      in
      let pos = ref 0 in
      let seq_next () =
        let a = Lazy.force arr in
        if !pos >= Array.length a then None
        else begin
          let n = min Batch.capacity (Array.length a - !pos) in
          let b = Batch.of_rows ?unbox tys a !pos n in
          pos := !pos + n;
          bump "scan";
          add c_scan_rows n;
          Some b
        end
      in
      (* Scan region: one morsel per [Batch.capacity]-row window — the same
         windows the sequential path cuts — claimed off an atomic cursor. *)
      let src () =
        let a = Lazy.force arr in
        let n = Array.length a in
        let total = (n + Batch.capacity - 1) / Batch.capacity in
        let cursor = Atomic.make 0 in
        {
          pm_total = total;
          pm_make =
            (fun _ () ->
              let k = Atomic.fetch_and_add cursor 1 in
              if k >= total then None
              else begin
                let lo = k * Batch.capacity in
                let len = min Batch.capacity (n - lo) in
                let b = Batch.of_rows ?unbox tys a lo len in
                bump "scan";
                add c_scan_rows len;
                Some (k, b)
              end);
          pm_tail = (fun () -> []);
        }
      in
      op_of_region ctx schema ~seq_next src
  | _ -> Sql_error.internal_error "compile_get expects a Get node"

(* Conjunct-at-a-time filtering: each AND-conjunct narrows the selection
   vector in place before the next one runs, so later (often more
   expensive) conjuncts only see survivors, and conjuncts with a
   comparison kernel never box a value. Order is preserved — a row dropped
   by conjunct N never reaches conjunct N+1, matching the row path's
   short-circuit. *)
and compile_filter ctx iop pred : op =
  let index = Executor.make_index iop.schema in
  let conjs = make_conjs ctx index pred in
  let seq_next () =
    let rec loop () =
      match iop.next () with
      | None -> None
      | Some b ->
          apply_conjs conjs b;
          if b.Batch.nsel = 0 then loop ()
          else begin
            bump "filter";
            Some b
          end
    in
    loop ()
  in
  match iop.par with
  | Some isrc when ctx.Executor.domains > 1 ->
      (* Region composition: filter each input morsel in place on whichever
         domain pulled it, with domain-private conjunct closures. Morsels
         that filter to zero rows stay in the stream (their sequence slot
         must be filled) and are skipped by the region driver. *)
      let src () =
        let irun = isrc () in
        {
          irun with
          pm_make =
            (fun d ->
              let dctx = Executor.clone_for_domain ctx in
              let dconjs = make_conjs dctx index pred in
              let pull = irun.pm_make d in
              fun () ->
                match pull () with
                | None -> None
                | Some (k, b) ->
                    (try apply_conjs dconjs b with
                    | Morsel_error _ as e -> raise e
                    | e -> raise (Morsel_error (k, e)));
                    if b.Batch.nsel > 0 then bump "filter";
                    Some (k, b));
          pm_tail =
            (fun () ->
              List.filter_map
                (fun b ->
                  apply_conjs conjs b;
                  if b.Batch.nsel = 0 then None
                  else begin
                    bump "filter";
                    Some b
                  end)
                (irun.pm_tail ()));
        }
      in
      op_of_region ctx iop.schema ~seq_next src
  | _ -> { schema = iop.schema; next = seq_next; par = None }

(* Equi-hash-join on the radix-partitioned table. Build drains the right
   side into a row store plus per-entry duplicate chains ([heads]/[nexts]);
   probe streams left batches, hashing each key row once. NULL keys never
   enter the table on either side — SQL equality can never match them — and
   the table itself (join mode) asserts none slip through. Joins the batch
   path does not cover (cross, residual conjuncts) fall back wholesale. *)
and compile_join ctx (jnode : Xtra.rel) kind left right pred : op =
  let lschema = Xtra.schema_of left and rschema = Xtra.schema_of right in
  let lids = List.map (fun (c : Xtra.col) -> c.Xtra.id) lschema in
  let rids = List.map (fun (c : Xtra.col) -> c.Xtra.id) rschema in
  let conjuncts =
    match pred with Some p -> Executor.split_conjuncts p | None -> []
  in
  let subset ids of_ids = List.for_all (fun i -> List.mem i of_ids) ids in
  let equi, residual =
    List.partition_map
      (fun c ->
        match c with
        | Xtra.Cmp (Xtra.Eq, a, b)
          when subset (Executor.scalar_col_ids a) lids
               && subset (Executor.scalar_col_ids b) rids ->
            Left (a, b)
        | Xtra.Cmp (Xtra.Eq, a, b)
          when subset (Executor.scalar_col_ids b) lids
               && subset (Executor.scalar_col_ids a) rids ->
            Left (b, a)
        | c -> Right c)
      conjuncts
  in
  let vectorizable =
    (match kind with Xtra.Cross -> false | _ -> true) && equi <> []
  in
  if not vectorizable then row_fallback ctx jnode
  else begin
    let lop = compile ctx left and rop = compile ctx right in
    match lop.par with
    | Some lsrc when ctx.Executor.domains > 1 ->
        compile_join_par ctx jnode kind lop lsrc rop equi residual
    | _ ->
    let lindex = Executor.make_index lop.schema in
    let rindex = Executor.make_index rop.schema in
    (* Residual conjuncts check each candidate pair on the row path, exactly
       as the row interpreter does: a pair joins only when every residual is
       [Some true]; a probe row none of whose candidates survive counts as
       unmatched for outer-join purposes. *)
    let lframe = { Executor.index = lindex; row = [||] } in
    let rframe = { Executor.index = rindex; row = [||] } in
    let residual_ok lrow rrow =
      residual = []
      || begin
           lframe.Executor.row <- lrow;
           rframe.Executor.row <- rrow;
           Executor.push_frame ctx lframe;
           Executor.push_frame ctx rframe;
           let ok =
             List.for_all
               (fun c ->
                 Scalar_func.bool3_of_value (Executor.eval ctx c) = Some true)
               residual
           in
           Executor.pop_frame ctx;
           Executor.pop_frame ctx;
           ok
         end
    in
    let lkey_fs =
      Array.of_list (List.map (fun (a, _) -> compile_scalar ctx lindex a) equi)
    in
    let rkey_fs =
      Array.of_list (List.map (fun (_, b) -> compile_scalar ctx rindex b) equi)
    in
    let schema = Xtra.schema_of jnode in
    let tys = tys_of schema in
    let rwidth = List.length rschema and lwidth = List.length lschema in
    let null_right = Array.make rwidth Value.Null in
    let null_left = Array.make lwidth Value.Null in
    let keep_left =
      kind = Xtra.Left_outer || kind = Xtra.Full_outer
    in
    let keep_right =
      kind = Xtra.Right_outer || kind = Xtra.Full_outer
    in
    let ht = Hash_table.create ~null_equal:false 1024 in
    let rrows : Executor.row Vec.t = Vec.create [||] in
    let nexts = Vec.create (-1) in
    let heads = Vec.create (-1) in
    let matched = ref [||] in
    let built = ref false in
    let build () =
      let rec go () =
        match rop.next () with
        | None -> ()
        | Some rb ->
            Batch.iter
              (fun i ->
                let row = Batch.to_row rb i in
                let ri = Vec.push rrows row in
                ignore (Vec.push nexts (-1));
                let key = Array.map (fun f -> f rb i) rkey_fs in
                if not (Array.exists Value.is_null key) then begin
                  let h = Hash_table.hash_key key in
                  let e, inserted = Hash_table.find_or_insert ht key h in
                  if inserted then ignore (Vec.push heads ri)
                  else begin
                    Vec.set nexts ri (Vec.get heads e);
                    Vec.set heads e ri
                  end
                end)
              rb;
            go ()
      in
      go ();
      add c_join_build_rows (Vec.length rrows);
      if keep_right then matched := Array.make (Vec.length rrows) false
    in
    (* output rows buffered between pulls: one probe batch can produce more
       than [Batch.capacity] matches *)
    let buf : Executor.row Vec.t = Vec.create [||] in
    let emit_pos = ref 0 in
    let exhausted = ref false in
    let probe_batch lb =
      add c_join_probe_rows (Batch.num_rows lb);
      Batch.iter
        (fun i ->
          let key = Array.map (fun f -> f lb i) lkey_fs in
          let e =
            if Array.exists Value.is_null key then -1
            else Hash_table.find ht key (Hash_table.hash_key key)
          in
          if e < 0 then begin
            if keep_left then
              ignore (Vec.push buf (Array.append (Batch.to_row lb i) null_right))
          end
          else begin
            let lrow = Batch.to_row lb i in
            let any = ref false in
            let j = ref (Vec.get heads e) in
            while !j >= 0 do
              let rrow = Vec.get rrows !j in
              if residual_ok lrow rrow then begin
                any := true;
                if keep_right then !matched.(!j) <- true;
                ignore (Vec.push buf (Array.append lrow rrow))
              end;
              j := Vec.get nexts !j
            done;
            if (not !any) && keep_left then
              ignore (Vec.push buf (Array.append lrow null_right))
          end)
        lb
    in
    let emit_tail_right () =
      if keep_right then
        for j = 0 to Vec.length rrows - 1 do
          if not !matched.(j) then
            ignore (Vec.push buf (Array.append null_left (Vec.get rrows j)))
        done
    in
    let emit_slice () =
      let n = min Batch.capacity (Vec.length buf - !emit_pos) in
      (* copy the row POINTERS out: batches share rows with their source
         window, so the buffer must not be recycled underneath them *)
      let rows = Array.sub buf.Vec.data !emit_pos n in
      let b = Batch.of_rows tys rows 0 n in
      emit_pos := !emit_pos + n;
      if !emit_pos >= Vec.length buf then begin
        (* fully drained: recycle the buffer *)
        buf.Vec.len <- 0;
        emit_pos := 0
      end;
      bump "join";
      Some b
    in
    {
      schema;
      next =
        (fun () ->
          if not !built then begin
            let t0 = Unix.gettimeofday () in
            build ();
            if dbg_enabled () then
              Printf.eprintf "      join build: %.2f ms (%d rows)\n"
                (1000. *. (Unix.gettimeofday () -. t0))
                (Vec.length rrows);
            built := true
          end;
          let rec loop () =
            if Vec.length buf - !emit_pos >= Batch.capacity then emit_slice ()
            else if !exhausted then
              if Vec.length buf - !emit_pos > 0 then emit_slice () else None
            else
              match lop.next () with
              | Some lb ->
                  probe_batch lb;
                  loop ()
              | None ->
                  emit_tail_right ();
                  exhausted := true;
                  loop ()
          in
          loop ());
      par = None;
    }
  end

(* Hash aggregation over the same table: keys hash once per row, groups keep
   O(1) incremental accumulators instead of retained row lists, and output
   preserves first-seen group order like the row path. *)
and compile_agg ctx (anode : Xtra.rel) input group_by aggs : op =
  let schema = Xtra.schema_of anode in
  let aggs_a = Array.of_list (List.map snd aggs) in
  let iop = compile ctx input in
  match iop.par with
  | Some isrc when ctx.Executor.domains > 1 && par_safe_aggs aggs ->
      compile_agg_par ctx schema iop.schema isrc group_by aggs_a
  | _ ->
      let rows =
        lazy
          (let index = Executor.make_index iop.schema in
           let key_fs =
             Array.of_list
               (List.map
                  (fun ((_ : Xtra.col), e) -> compile_scalar ctx index e)
                  group_by)
           in
           let arg_fs =
             Array.map
               (fun (a : Xtra.agg_def) ->
                 Option.map (compile_scalar ctx index) a.Xtra.aarg)
               aggs_a
           in
           if group_by = [] then begin
             (* global aggregate: exactly one output row *)
             let accs = Array.map (fun _ -> new_acc ()) aggs_a in
             let rec go () =
               match iop.next () with
               | None -> ()
               | Some b ->
                   Batch.iter (fun i -> agg_update aggs_a arg_fs accs b i) b;
                   go ()
             in
             go ();
             [ Array.of_list (agg_finalized aggs_a accs) ]
           end
           else begin
             let ht = Hash_table.create ~null_equal:true 256 in
             let gaccs : agg_acc array Vec.t = Vec.create [||] in
             let rec go () =
               match iop.next () with
               | None -> ()
               | Some b ->
                   Batch.iter
                     (fun i ->
                       let key = Array.map (fun f -> f b i) key_fs in
                       let h = Hash_table.hash_key key in
                       let e, inserted = Hash_table.find_or_insert ht key h in
                       if inserted then
                         ignore
                           (Vec.push gaccs
                              (Array.map (fun _ -> new_acc ()) aggs_a));
                       agg_update aggs_a arg_fs (Vec.get gaccs e) b i)
                     b;
                   go ()
             in
             go ();
             add c_agg_groups (Hash_table.count ht);
             List.init (Hash_table.count ht) (fun g ->
                 Array.append
                   (Hash_table.entry_key ht g)
                   (Array.of_list (agg_finalized aggs_a (Vec.get gaccs g))))
           end)
      in
      op_of_lazy_rows "aggregate" schema rows

(* --- entry point -------------------------------------------------------- *)

(* Execute [rel] on the batch path, returning materialized rows (the
   backend's result representation). *)
let exec_rows ctx (rel : Xtra.rel) : Executor.row list =
  let rows = drain (compile ctx rel) in
  if dbg_enabled () then dbg_report ();
  rows
