(* Columnar batch: the unit of data flow in the vectorized executor.

   A batch holds one vector per output column, at most [capacity] rows, and
   an optional selection vector. Filters never copy data — they narrow the
   selection; downstream operators iterate only the selected indices.

   Vectors transpose LAZILY out of the row-major source: a freshly scanned
   batch carries only a reference to the source row window, and each column
   materializes on first access. A typical analytical query reads a handful
   of a fact table's columns, so most columns are never transposed at all.
   Columns the operator compiler marks in [unbox] (those consumed by an
   unboxed kernel) whose declared SQL type is INTEGER or FLOAT materialize
   as flat [int64 array] / [float array] vectors with a validity byte per
   row; everything else materializes as a boxed [Value.t array] of shared
   pointers, so [get] never allocates. *)

open Hyperq_sqlvalue

let capacity = 2048

type vec =
  | V_pending  (** not yet transposed; forced via [col] *)
  | V_any of Value.t array
  | V_int of { data : int64 array; valid : Bytes.t }
  | V_float of { data : float array; valid : Bytes.t }
  | V_date of { data : int array; valid : Bytes.t }
      (** Teradata date integers — monotonic in date order, so comparison
          kernels run directly on the [int array] *)

type src = {
  src_rows : Value.t array array;
  src_lo : int;
  src_tys : Dtype.t array;
  src_unbox : bool array;
}

type t = {
  cols : vec array;
  src : src option;  (** row window backing any [V_pending] column *)
  nrows : int;  (** physical rows in each vector *)
  mutable sel : int array option;
      (** selection vector: physical indices in ascending order *)
  mutable nsel : int;  (** valid prefix length of [sel] *)
}

let num_rows b = match b.sel with Some _ -> b.nsel | None -> b.nrows

(* Physical index of the [k]-th live row. *)
let phys_index b k = match b.sel with Some s -> s.(k) | None -> k

let transpose b c =
  let s = match b.src with
    | Some s -> s
    | None -> Sql_error.internal_error "pending column without a source"
  in
  let n = b.nrows in
  let boxed () =
    V_any (Array.init n (fun i -> s.src_rows.(s.src_lo + i).(c)))
  in
  let want = Array.length s.src_unbox > c && s.src_unbox.(c) in
  if not want then boxed ()
  else
    (* A cell contradicting its declared type (e.g. an untyped literal
       column) demotes the column back to boxed. *)
    match s.src_tys.(c) with
    | Dtype.Int -> (
        try
          let data = Array.make n 0L and valid = Bytes.make n '\000' in
          for i = 0 to n - 1 do
            match s.src_rows.(s.src_lo + i).(c) with
            | Value.Int v ->
                data.(i) <- v;
                Bytes.set valid i '\001'
            | Value.Null -> ()
            | _ -> raise Exit
          done;
          V_int { data; valid }
        with Exit -> boxed ())
    | Dtype.Float -> (
        try
          let data = Array.make n 0. and valid = Bytes.make n '\000' in
          for i = 0 to n - 1 do
            match s.src_rows.(s.src_lo + i).(c) with
            | Value.Float v ->
                data.(i) <- v;
                Bytes.set valid i '\001'
            | Value.Null -> ()
            | _ -> raise Exit
          done;
          V_float { data; valid }
        with Exit -> boxed ())
    | Dtype.Date -> (
        try
          let data = Array.make n 0 and valid = Bytes.make n '\000' in
          for i = 0 to n - 1 do
            match s.src_rows.(s.src_lo + i).(c) with
            | Value.Date d ->
                data.(i) <- Sql_date.to_teradata_int d;
                Bytes.set valid i '\001'
            | Value.Null -> ()
            | _ -> raise Exit
          done;
          V_date { data; valid }
        with Exit -> boxed ())
    | _ -> boxed ()

(* The [c]-th vector, transposing it out of the source on first access. *)
let col b c =
  match b.cols.(c) with
  | V_pending ->
      let v = transpose b c in
      b.cols.(c) <- v;
      v
  | v -> v

let get b c i =
  match col b c with
  | V_any a -> a.(i)
  | V_int _ | V_float _ | V_date _ -> (
      (* Unboxed vectors keep their source window: a generic read returns the
         original boxed value by pointer instead of boxing a fresh one. Only
         a vector detached from its source (shared into an operator-output
         batch) has to re-box. *)
      match b.src with
      | Some s -> s.src_rows.(s.src_lo + i).(c)
      | None -> (
          match b.cols.(c) with
          | V_int { data; valid } ->
              if Bytes.unsafe_get valid i = '\001' then Value.of_int64 data.(i)
              else Value.Null
          | V_float { data; valid } ->
              if Bytes.unsafe_get valid i = '\001' then Value.Float data.(i)
              else Value.Null
          | V_date { data; valid } ->
              if Bytes.unsafe_get valid i = '\001' then
                Value.Date (Sql_date.of_teradata_int data.(i))
              else Value.Null
          | V_any _ | V_pending -> assert false))
  | V_pending -> assert false

(* The [i]-th physical row. A batch still backed by its source window hands
   out the ORIGINAL row by pointer — no transposition, no copy — exactly as
   the row-path operators share storage rows. Callers must not mutate it.
   Only operator-output batches built from bare vectors re-materialize. *)
let to_row b i =
  match b.src with
  | Some s -> s.src_rows.(s.src_lo + i)
  | None -> Array.init (Array.length b.cols) (fun c -> get b c i)

(* View over rows [lo, lo+n) of [rows]; nothing is copied until a column is
   touched. [unbox] marks columns wanted as flat unboxed vectors. *)
let of_rows ?unbox (tys : Dtype.t array) (rows : Value.t array array) lo n =
  let src_unbox =
    match unbox with Some u -> u | None -> [||]
  in
  {
    cols = Array.make (Array.length tys) V_pending;
    src = Some { src_rows = rows; src_lo = lo; src_tys = tys; src_unbox };
    nrows = n;
    sel = None;
    nsel = 0;
  }

(* A batch whose vectors are already materialized (operator outputs). *)
let of_cols cols ~nrows ~sel ~nsel = { cols; src = None; nrows; sel; nsel }

(* Iterate the live rows of [b] in order, passing physical indices. *)
let iter f b =
  match b.sel with
  | None ->
      for i = 0 to b.nrows - 1 do
        f i
      done
  | Some s ->
      for k = 0 to b.nsel - 1 do
        f s.(k)
      done
