(** Domain-pool scheduler for morsel-driven parallel execution.

    One process-wide pool of worker {!Domain}s executes "bodies" — per-domain
    work loops that pull morsel-sized work units off shared atomic cursors.
    The calling thread always participates as body 0 and additionally steals
    any body a busy worker has not claimed, so a run degrades gracefully to
    sequential execution when every worker is occupied (or when the pool is
    empty) instead of deadlocking or queueing behind other statements.

    The pool is shared by the vectorized executor ({!Batch_exec}) and the
    Result Converter; both size their runs from {!configured_domains}, the
    one knob ([HYPERQ_EXEC_DOMAINS]) controlling intra-statement
    parallelism. *)

(** Parallelism degree from [HYPERQ_EXEC_DOMAINS] (clamped to [1 ..
    {!max_domains}]; unset, unparsable or [< 1] means 1 = sequential), unless
    overridden by {!set_domains}. Read on every call so tests and the REPL
    can re-point it at runtime. *)
val configured_domains : unit -> int

(** Process-local override of [HYPERQ_EXEC_DOMAINS]; [None] returns to the
    environment value. *)
val set_domains : int option -> unit

(** Hard cap on the parallelism degree (and on pool size). *)
val max_domains : int

(** [run ~domains body] executes [body 0 .. body (domains-1)] concurrently —
    body 0 on the caller, the rest on pool workers (the caller steals
    unclaimed bodies) — and returns after ALL bodies finish (a full barrier).
    If any body raises, the first exception observed is re-raised after the
    barrier; the pool itself survives and remains usable. [domains] is
    clamped to [1 .. max_domains]; [domains <= 1] runs [body 0] inline. *)
val run : domains:int -> (int -> unit) -> unit

(** Record one morsel processed by body slot [i] (per-domain counters
    surfaced by {!stats}). *)
val note_morsel : int -> unit

(** Cumulative scheduler counters for observability:
    [parallel_runs], [bodies_run], [barrier_wait_s] (time the caller spent
    blocked at barriers after exhausting claimable work), [pool_workers],
    and one [morsels_domain_<i>] entry per body slot that processed at
    least one morsel. *)
val stats : unit -> (string * float) list

val reset_stats : unit -> unit
