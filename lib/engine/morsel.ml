(* Domain-pool scheduler for morsel-driven parallel execution.

   Design notes:

   - One process-wide pool. Worker domains are spawned lazily (up to the
     largest parallelism degree ever requested, capped at [max_domains - 1])
     and live for the rest of the process; [at_exit] stops and joins them so
     a binary never hangs on pool teardown.

   - A run posts ONE job record with an atomic body cursor; each queued copy
     of the job lets one worker claim bodies off that cursor. The caller
     executes body 0 itself and then claims whatever bodies no worker has
     picked up yet, so forward progress never depends on pool capacity:
     with every worker busy (or a pool of zero workers) the caller simply
     runs all bodies sequentially. Bodies must therefore never wait on each
     other — they are independent work loops over shared atomic cursors.

   - Errors: the first exception a body raises is stored in the job and
     re-raised by [run] after the barrier. The pool survives; callers that
     need a deterministic CHOICE of error (the vectorized executor must
     surface the same error the sequential path would) handle that
     themselves by recording per-morsel errors and re-raising the earliest.

   - Memory model: job state mutated by workers is published to the caller
     by the mutex/condvar barrier handshake, so plain mutable fields written
     by bodies (batch arrays, matched flags, partial aggregates) are safely
     visible after [run] returns. *)

let max_domains = 32

(* --- configuration ------------------------------------------------------ *)

let override : int option ref = ref None
let clamp n = if n < 1 then 1 else if n > max_domains then max_domains else n

let configured_domains () =
  match !override with
  | Some n -> clamp n
  | None -> (
      match Sys.getenv_opt "HYPERQ_EXEC_DOMAINS" with
      | None -> 1
      | Some s -> ( match int_of_string_opt (String.trim s) with
                    | Some n -> clamp n
                    | None -> 1))

let set_domains n = override := n

(* --- stats -------------------------------------------------------------- *)

let morsel_counts = Array.init max_domains (fun _ -> Atomic.make 0)
let note_morsel i =
  if i >= 0 && i < max_domains then Atomic.incr morsel_counts.(i)

let stats_m = Mutex.create ()
let s_runs = ref 0
let s_bodies = ref 0
let s_barrier_wait = ref 0.

let reset_stats () =
  Mutex.lock stats_m;
  s_runs := 0;
  s_bodies := 0;
  s_barrier_wait := 0.;
  Mutex.unlock stats_m;
  Array.iter (fun c -> Atomic.set c 0) morsel_counts

(* --- pool --------------------------------------------------------------- *)

type job = {
  j_body : int -> unit;
  j_domains : int;
  j_next : int Atomic.t;  (** next body slot to claim; slot 0 is the caller's *)
  j_m : Mutex.t;
  j_cv : Condition.t;
  mutable j_done : int;  (** completed bodies among slots 1 .. domains-1 *)
  mutable j_err : exn option;
}

let q_m = Mutex.create ()
let q_cv = Condition.create ()
let jobs : job Queue.t = Queue.create ()
let stopping = ref false
let workers : unit Domain.t list ref = ref []
let nworkers = ref 0
let teardown_registered = ref false

(* Execute one body, recording the first error in the job. *)
let exec_body j slot ~count_done =
  (try j.j_body slot
   with e ->
     Mutex.lock j.j_m;
     if j.j_err = None then j.j_err <- Some e;
     Mutex.unlock j.j_m);
  if count_done then begin
    Mutex.lock j.j_m;
    j.j_done <- j.j_done + 1;
    Condition.signal j.j_cv;
    Mutex.unlock j.j_m
  end

(* Claim and run bodies of [j] until its cursor is exhausted. *)
let exec_claimable j =
  let rec go () =
    let slot = Atomic.fetch_and_add j.j_next 1 in
    if slot < j.j_domains then begin
      exec_body j slot ~count_done:true;
      go ()
    end
  in
  go ()

let rec worker_main () =
  Mutex.lock q_m;
  while Queue.is_empty jobs && not !stopping do
    Condition.wait q_cv q_m
  done;
  if Queue.is_empty jobs then Mutex.unlock q_m (* stopping: exit the domain *)
  else begin
    let j = Queue.pop jobs in
    Mutex.unlock q_m;
    exec_claimable j;
    worker_main ()
  end

let teardown () =
  Mutex.lock q_m;
  stopping := true;
  Condition.broadcast q_cv;
  let ws = !workers in
  workers := [];
  Mutex.unlock q_m;
  List.iter Domain.join ws

let ensure_workers want =
  let want = min want (max_domains - 1) in
  Mutex.lock q_m;
  if not !teardown_registered then begin
    teardown_registered := true;
    at_exit teardown
  end;
  while !nworkers < want && not !stopping do
    incr nworkers;
    workers := Domain.spawn worker_main :: !workers
  done;
  Mutex.unlock q_m

let run ~domains body =
  let n = clamp domains in
  if n <= 1 then body 0
  else begin
    ensure_workers (n - 1);
    let j =
      {
        j_body = body;
        j_domains = n;
        j_next = Atomic.make 1;
        j_m = Mutex.create ();
        j_cv = Condition.create ();
        j_done = 0;
        j_err = None;
      }
    in
    Mutex.lock q_m;
    for _ = 1 to n - 1 do
      Queue.push j jobs
    done;
    Condition.broadcast q_cv;
    Mutex.unlock q_m;
    (* the caller IS body 0, then steals any body not yet claimed *)
    exec_body j 0 ~count_done:false;
    exec_claimable j;
    (* barrier: wait for bodies claimed by workers *)
    Mutex.lock j.j_m;
    let waited =
      if j.j_done >= n - 1 then 0.
      else begin
        let t0 = Unix.gettimeofday () in
        while j.j_done < n - 1 do
          Condition.wait j.j_cv j.j_m
        done;
        Unix.gettimeofday () -. t0
      end
    in
    let err = j.j_err in
    Mutex.unlock j.j_m;
    Mutex.lock stats_m;
    incr s_runs;
    s_bodies := !s_bodies + n;
    s_barrier_wait := !s_barrier_wait +. waited;
    Mutex.unlock stats_m;
    match err with Some e -> raise e | None -> ()
  end

let stats () =
  Mutex.lock stats_m;
  let base =
    [
      ("parallel_runs", float_of_int !s_runs);
      ("bodies_run", float_of_int !s_bodies);
      ("barrier_wait_s", !s_barrier_wait);
      ("pool_workers", float_of_int !nworkers);
    ]
  in
  Mutex.unlock stats_m;
  let per_domain = ref [] in
  for i = max_domains - 1 downto 0 do
    let n = Atomic.get morsel_counts.(i) in
    if n > 0 then
      per_domain :=
        (Printf.sprintf "morsels_domain_%d" i, float_of_int n) :: !per_domain
  done;
  base @ !per_domain
