(** Fault injection for the backend boundary (see fault.mli). *)

open Hyperq_sqlvalue

type fault =
  | Transient
  | Persistent
  | Latency of float

type t = {
  lock : Mutex.t;
  sleep : float -> unit;
  mutable rng : int64;
  mutable request_index : int;  (** requests seen so far *)
  mutable scheduled : (int * fault) list;  (** explicit per-index faults *)
  mutable persistent_from : int option;
  mutable transient_p : float;
  mutable transient_upto : int;  (** random transients apply below this index *)
  mutable n_transient : int;
  mutable n_persistent : int;
  mutable n_latency : int;
}

let create ?(seed = 0xFA17) ?(sleep = fun s -> if s > 0. then Unix.sleepf s) ()
    =
  {
    lock = Mutex.create ();
    sleep;
    rng = Int64.of_int seed;
    request_index = 0;
    scheduled = [];
    persistent_from = None;
    transient_p = 0.;
    transient_upto = 0;
    n_transient = 0;
    n_persistent = 0;
    n_latency = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let schedule t ~at fault =
  locked t (fun () -> t.scheduled <- (at, fault) :: t.scheduled)

let random_transients t ~p ~first_n =
  locked t (fun () ->
      t.transient_p <- p;
      t.transient_upto <- t.request_index + first_n)

let persistent_outage t ~from_request =
  locked t (fun () -> t.persistent_from <- Some from_request)

let clear t =
  locked t (fun () ->
      t.scheduled <- [];
      t.persistent_from <- None;
      t.transient_p <- 0.;
      t.transient_upto <- 0)

(* same LCG as the resilience layer; seeded independently *)
let rand01 t =
  t.rng <- Int64.add (Int64.mul t.rng 6364136223846793005L) 1442695040888963407L;
  let bits = Int64.to_int (Int64.shift_right_logical t.rng 34) land 0x3FFFFFFF in
  float_of_int bits /. 1073741824.0

let check t =
  let decision =
    locked t (fun () ->
        let idx = t.request_index in
        t.request_index <- idx + 1;
        let fault =
          match List.assoc_opt idx t.scheduled with
          | Some f -> Some f
          | None -> (
              match t.persistent_from with
              | Some from when idx >= from -> Some Persistent
              | _ ->
                  if idx < t.transient_upto && rand01 t < t.transient_p then
                    Some Transient
                  else None)
        in
        (match fault with
        | Some Transient -> t.n_transient <- t.n_transient + 1
        | Some Persistent -> t.n_persistent <- t.n_persistent + 1
        | Some (Latency _) -> t.n_latency <- t.n_latency + 1
        | None -> ());
        (idx, fault))
  in
  match decision with
  | _, None -> ()
  | idx, Some Transient ->
      Sql_error.transient_error "injected transient backend fault (request %d)"
        idx
  | idx, Some Persistent ->
      Sql_error.transient_error "injected backend outage (request %d)" idx
  | _, Some (Latency s) -> t.sleep s

let requests_seen t = locked t (fun () -> t.request_index)

let injected t =
  locked t (fun () -> (t.n_transient, t.n_persistent, t.n_latency))
