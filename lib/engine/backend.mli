(** The target database system (DB-B in the paper's terms).

    A self-contained analytical SQL engine: it parses the ANSI dialect the
    serializers emit, binds against its own (physical) catalog, optimizes,
    and executes. This substitutes for the paper's cloud data warehouse —
    everything Hyper-Q emits is genuinely re-parsed and executed, closing
    the translation loop end to end. *)

open Hyperq_sqlvalue

type t = {
  catalog : Hyperq_catalog.Catalog.t;  (** the engine's physical catalog *)
  storage : Storage.t;
  mutable session_user : string;
  mutable queries_executed : int;
  mutable exec_mode : exec_mode;
      (** which executor runs [Query] statements; DML always uses the row
          path. Defaults to [Batch] unless [HYPERQ_EXEC_MODE=row] is set. *)
  mutable exec_domains : int;
      (** intra-statement parallelism budget for the vectorized executor
          (morsel-driven execution on OCaml domains). Defaults to
          {!Morsel.configured_domains} ([HYPERQ_EXEC_DOMAINS], 1 = fully
          sequential); only the [Batch] path uses it. *)
}

and exec_mode = Row | Batch  (** row interpreter vs vectorized executor *)

type result = {
  res_schema : (string * Dtype.t) list;
  res_rows : Value.t array list;
  res_rowcount : int;  (** affected rows for DML; result rows for queries *)
  res_message : string;  (** activity tag, e.g. "SELECT", "INSERT" *)
}

val create : unit -> t

(** Execute an already-bound XTRA statement (the engine applies its own
    optimizer pass first). *)
val exec_statement : t -> Hyperq_xtra.Xtra.statement -> result

(** Execute one SQL statement in the engine's own (ANSI) dialect: the full
    parse → bind → optimize → execute path of a standalone database. *)
val execute_sql : t -> string -> result

(** Execute a [;]-separated script; returns the last statement's result. *)
val execute_script : t -> string -> result
