(** Minimal logical optimizer for the engine: filter pushdown.

    The binder renders comma-style FROM lists (and Teradata implicit joins)
    as cross joins under a Filter. Executing that literally would
    materialize the full Cartesian product, so this pass pushes filter
    conjuncts down into the join tree: single-side conjuncts move below the
    join, two-side conjuncts become the join predicate (turning the cross
    join into an inner join the executor can hash). Only Cross/Inner joins
    are rewritten — pushing through outer joins changes semantics. *)

module Xtra = Hyperq_xtra.Xtra

let rec split_conjuncts = function
  | Xtra.Logic_and (a, b) -> split_conjuncts a @ split_conjuncts b
  | s -> [ s ]

let conj = function
  | [] -> None
  | x :: xs -> Some (List.fold_left (fun a b -> Xtra.Logic_and (a, b)) x xs)

(* All column ids a scalar references, including references made inside
   nested subquery rels (a correlated subquery must keep its outer columns
   in scope, so such conjuncts cannot be pushed below a join that would
   remove them). *)
let scalar_ids s =
  let ids = ref [] in
  let rec rel_ids r =
    ignore
      (Xtra.rewrite
         ~frel:(fun x -> x)
         ~fscalar:(fun x ->
           (match x with Xtra.Col_ref c -> ids := c.Xtra.id :: !ids | _ -> ());
           x)
         r)
  and scan s =
    ignore
      (Xtra.map_scalar
         (fun x ->
           (match x with
           | Xtra.Col_ref c -> ids := c.Xtra.id :: !ids
           | Xtra.Scalar_subquery q | Xtra.Exists q -> rel_ids q
           | Xtra.In_subquery { subquery; _ } | Xtra.Quantified { subquery; _ } ->
               rel_ids subquery
           | _ -> ());
           x)
         s)
  in
  scan s;
  !ids

let subset ids of_ids = List.for_all (fun i -> List.mem i of_ids) ids

let rec split_disjuncts = function
  | Xtra.Logic_or (a, b) -> split_disjuncts a @ split_disjuncts b
  | s -> [ s ]

(* Factor conjuncts common to every disjunct out of an OR — TPC-H Q19's
   shape, where each branch repeats the join predicate. Turns
   [(j AND p1) OR (j AND p2)] into [j AND (p1 OR p2)] so the join predicate
   becomes hashable. *)
let factor_common_or s =
  match split_disjuncts s with
  | [] | [ _ ] -> [ s ]
  | first :: rest ->
      let branch_conjuncts = List.map split_conjuncts (first :: rest) in
      let common =
        List.filter
          (fun c -> List.for_all (fun b -> List.mem c b) branch_conjuncts)
          (List.hd branch_conjuncts)
      in
      if common = [] then [ s ]
      else
        let strip b = List.filter (fun c -> not (List.mem c common)) b in
        let rebuilt =
          List.map
            (fun b ->
              match strip b with
              | [] -> Xtra.Const (Hyperq_sqlvalue.Value.Bool true)
              | x :: xs -> List.fold_left (fun a c -> Xtra.Logic_and (a, c)) x xs)
            branch_conjuncts
        in
        let ored =
          match rebuilt with
          | x :: xs -> List.fold_left (fun a b -> Xtra.Logic_or (a, b)) x xs
          | [] -> assert false
        in
        common @ [ ored ]

(* Push [conjuncts] into [rel]; returns the rewritten rel plus the conjuncts
   that could not be pushed (correlated or schema-external references stay
   with the caller). *)
let rec push rel conjuncts =
  match rel with
  | Xtra.Join { kind = (Xtra.Cross | Xtra.Inner) as kind; left; right; pred } ->
      let lids = List.map (fun (c : Xtra.col) -> c.Xtra.id) (Xtra.schema_of left) in
      let rids = List.map (fun (c : Xtra.col) -> c.Xtra.id) (Xtra.schema_of right) in
      let pred_conjuncts =
        match pred with Some p -> split_conjuncts p | None -> []
      in
      let all =
        List.concat_map factor_common_or (conjuncts @ pred_conjuncts)
      in
      let to_left, rest =
        List.partition (fun c -> subset (scalar_ids c) lids) all
      in
      let to_right, rest =
        List.partition (fun c -> subset (scalar_ids c) rids) rest
      in
      let joinable, residual =
        List.partition (fun c -> subset (scalar_ids c) (lids @ rids)) rest
      in
      let left = apply left to_left in
      let right = apply right to_right in
      let kind = if joinable = [] then kind else Xtra.Inner in
      (Xtra.Join { kind; left; right; pred = conj joinable }, residual)
  | Xtra.Filter { input; pred } -> push input (conjuncts @ split_conjuncts pred)
  | rel -> (rel, conjuncts)

and apply rel conjuncts =
  let rel, residual = push rel conjuncts in
  match conj residual with
  | None -> rel
  | Some p -> Xtra.Filter { input = rel; pred = p }

(* Rewrite every Filter/Join region in the tree (including subquery rels
   hanging off scalars). *)
let optimize_rel rel =
  Xtra.rewrite
    ~frel:(fun r ->
      match r with
      | Xtra.Filter { input = Xtra.Join _; _ }
      | Xtra.Filter { input = Xtra.Filter _; _ } ->
          apply r []
      | r -> r)
    ~fscalar:(fun s -> s)
    rel

let optimize_statement st =
  Xtra.rewrite_statement
    ~frel:(fun r ->
      match r with
      | Xtra.Filter { input = Xtra.Join _; _ }
      | Xtra.Filter { input = Xtra.Filter _; _ } ->
          apply r []
      | r -> r)
    ~fscalar:(fun s -> s)
    st

(* ------------------------------------------------------------------ *)
(* Inferred plan statistics (cost-model hooks)                         *)
(* ------------------------------------------------------------------ *)

(* A passive view over {!Hyperq_analyze.Infer} for the upcoming cost-based
   join ordering: candidate keys bound uniqueness (a join on a key side is
   at worst 1:N), intervals bound selectivity estimates, and [rs_card_max]
   caps build-side size. Never raises: an inference failure degrades to
   the empty stats. *)

module Infer = Hyperq_analyze.Infer
module Value = Hyperq_sqlvalue.Value

type col_stats = {
  cs_col : Xtra.col;
  cs_not_null : bool;  (** proven to never be NULL *)
  cs_lo : (Value.t * bool) option;  (** lower bound, inclusive? *)
  cs_hi : (Value.t * bool) option;  (** upper bound, inclusive? *)
}

type rel_stats = {
  rs_cols : col_stats list;  (** one entry per output column, in order *)
  rs_keys : Xtra.col list list;  (** candidate keys (unique column sets) *)
  rs_card_max : int option;  (** proven upper bound on the row count *)
}

let empty_stats schema =
  {
    rs_cols =
      List.map
        (fun c -> { cs_col = c; cs_not_null = false; cs_lo = None; cs_hi = None })
        schema;
    rs_keys = [];
    rs_card_max = None;
  }

let stats_of ?catalog rel =
  let schema = Xtra.schema_of rel in
  try
    let rp = Infer.rel_props ?catalog rel in
    let bound = function
      | None -> None
      | Some (b : Infer.bound) -> Some (b.Infer.bval, b.Infer.incl)
    in
    let col c =
      let p = Infer.lookup rp.Infer.cols c in
      {
        cs_col = c;
        cs_not_null = p.Infer.null = Infer.Not_null;
        cs_lo = bound p.Infer.ival.Infer.lo;
        cs_hi = bound p.Infer.ival.Infer.hi;
      }
    in
    let key_cols ids =
      List.filter_map
        (fun id -> List.find_opt (fun (c : Xtra.col) -> c.Xtra.id = id) schema)
        ids
    in
    {
      rs_cols = List.map col schema;
      rs_keys = List.map key_cols rp.Infer.keys;
      rs_card_max = rp.Infer.card_max;
    }
  with _ -> empty_stats schema
