(* Context-free scalar kernel shared by the row interpreter (Executor) and
   the columnar path (Batch_exec): LIKE matching, EXTRACT, the scalar
   function library, three-valued boolean helpers, and SQL comparison. These
   depend only on the evaluated argument values plus a tiny session
   environment — never on the executor's frame stack — which is what lets
   the batch path compile them without per-row frame pushes. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra

(* Session facts scalar functions may consult (CURRENT_DATE, CURRENT_USER). *)
type env = { sf_user : string; sf_date : Sql_date.t }

(* --- LIKE matching --------------------------------------------------- *)

let like_match ?escape ~pattern s =
  let plen = String.length pattern and slen = String.length s in
  (* Two-pointer wildcard matching with greedy '%' backtracking: no
     allocation, O(plen + slen) on typical patterns. [star_p]/[star_s]
     remember the most recent '%' and the input position it is currently
     assumed to cover up to. *)
  let is_escape c = match escape with Some e -> c = e | None -> false in
  (* at [pi], the pattern token and its width: an escape char followed by
     anything matches that char literally; a trailing escape char is itself
     a literal (mirrors the historical behavior) *)
  let token pi =
    let c = pattern.[pi] in
    if is_escape c && pi + 1 < plen then (`Lit pattern.[pi + 1], 2)
    else
      match c with '%' -> (`Any, 1) | '_' -> (`One, 1) | c -> (`Lit c, 1)
  in
  let pi = ref 0 and si = ref 0 in
  let star_p = ref (-1) and star_s = ref 0 in
  let failed = ref false in
  while (not !failed) && !si < slen do
    let step =
      if !pi < plen then
        match token !pi with
        | `Any, w ->
            star_p := !pi;
            star_s := !si;
            pi := !pi + w;
            true
        | `One, w ->
            pi := !pi + w;
            si := !si + 1;
            true
        | `Lit c, w ->
            if c = s.[!si] then begin
              pi := !pi + w;
              si := !si + 1;
              true
            end
            else false
      else false
    in
    if not step then
      if !star_p >= 0 then begin
        (* widen what the last '%' swallows and retry after it *)
        pi := !star_p + 1;
        incr star_s;
        si := !star_s
      end
      else failed := true
  done;
  (not !failed)
  &&
  (* input consumed: the rest of the pattern must be bare '%'s *)
  let rec only_any pi =
    pi >= plen
    || match token pi with `Any, w -> only_any (pi + w) | _ -> false
  in
  only_any !pi

(* --- EXTRACT ---------------------------------------------------------- *)

let micros_per_day = 86_400_000_000L

let date_of_value = function
  | Value.Date d -> d
  | Value.Timestamp t ->
      Sql_date.of_epoch_days (Int64.to_int (Int64.div t micros_per_day))
  | v ->
      Sql_error.execution_error "expected a date, got %s" (Value.to_string v)

let eval_extract field v =
  match v with
  | Value.Null -> Value.Null
  | Value.Date _ | Value.Timestamp _ -> (
      let d = date_of_value v in
      let time_part =
        match v with
        | Value.Timestamp t ->
            let r = Int64.rem t micros_per_day in
            if Int64.compare r 0L < 0 then Int64.add r micros_per_day else r
        | _ -> 0L
      in
      let secs = Int64.div time_part 1_000_000L in
      match field with
      | Xtra.Year -> Value.of_int d.Sql_date.year
      | Xtra.Month -> Value.of_int d.Sql_date.month
      | Xtra.Day -> Value.of_int d.Sql_date.day
      | Xtra.Hour -> Value.Int (Int64.div secs 3600L)
      | Xtra.Minute -> Value.Int (Int64.rem (Int64.div secs 60L) 60L)
      | Xtra.Second -> Value.Int (Int64.rem secs 60L))
  | Value.Time t -> (
      let secs = Int64.div t 1_000_000L in
      match field with
      | Xtra.Hour -> Value.Int (Int64.div secs 3600L)
      | Xtra.Minute -> Value.Int (Int64.rem (Int64.div secs 60L) 60L)
      | Xtra.Second -> Value.Int (Int64.rem secs 60L)
      | _ -> Sql_error.execution_error "cannot EXTRACT a date field from a TIME")
  | v ->
      Sql_error.execution_error "cannot EXTRACT from %s" (Value.to_string v)

(* --- scalar functions ------------------------------------------------ *)

let string_arg name = function
  | Value.Varchar s -> s
  | Value.Null -> ""
  | v -> Sql_error.execution_error "%s expects a string, got %s" name (Value.to_string v)

let rec eval_function env name (args : Value.t list) : Value.t =
  let null_in = List.exists Value.is_null args in
  match (name, args) with
  | "COALESCE", args -> (
      match List.find_opt (fun v -> not (Value.is_null v)) args with
      | Some v -> v
      | None -> Value.Null)
  | "NULLIF", [ a; b ] -> if Value.equal_sql a b then Value.Null else a
  | "CURRENT_DATE", [] -> Value.Date env.sf_date
  | "CURRENT_TIMESTAMP", [] ->
      Value.Timestamp
        (Int64.mul (Int64.of_int (Sql_date.to_epoch_days env.sf_date)) micros_per_day)
  | "CURRENT_TIME", [] -> Value.Time 0L
  | "CURRENT_USER", [] -> Value.Varchar env.sf_user
  | _, _ when null_in -> Value.Null
  | "CHARACTER_LENGTH", [ Value.Varchar s ] -> Value.of_int (String.length s)
  | "UPPER", [ v ] -> Value.Varchar (String.uppercase_ascii (string_arg "UPPER" v))
  | "LOWER", [ v ] -> Value.Varchar (String.lowercase_ascii (string_arg "LOWER" v))
  | "TRIM", [ v ] -> Value.Varchar (String.trim (string_arg "TRIM" v))
  | "LTRIM", [ v ] ->
      let s = string_arg "LTRIM" v in
      let i = ref 0 in
      while !i < String.length s && s.[!i] = ' ' do
        incr i
      done;
      Value.Varchar (String.sub s !i (String.length s - !i))
  | "RTRIM", [ v ] ->
      let s = string_arg "RTRIM" v in
      let i = ref (String.length s) in
      while !i > 0 && s.[!i - 1] = ' ' do
        decr i
      done;
      Value.Varchar (String.sub s 0 !i)
  | "REVERSE", [ v ] ->
      let s = string_arg "REVERSE" v in
      Value.Varchar (String.init (String.length s) (fun i -> s.[String.length s - 1 - i]))
  | "SUBSTRING", (Value.Varchar s :: Value.Int start :: rest) ->
      let start = Int64.to_int start in
      let len =
        match rest with
        | [ Value.Int l ] -> Int64.to_int l
        | [] -> max_int
        | _ -> Sql_error.execution_error "bad SUBSTRING arguments"
      in
      (* SQL semantics: 1-based; positions before 1 consume length *)
      let s_len = String.length s in
      let from = max 1 start in
      let eff_len =
        if len = max_int then s_len - from + 1
        else len - (from - start)
      in
      let eff_len = min eff_len (s_len - from + 1) in
      if eff_len <= 0 || from > s_len then Value.Varchar ""
      else Value.Varchar (String.sub s (from - 1) eff_len)
  | "POSITION", [ needle; hay ] ->
      let n = string_arg "POSITION" needle and h = string_arg "POSITION" hay in
      let nl = String.length n and hl = String.length h in
      let rec find i =
        if i + nl > hl then 0
        else if String.sub h i nl = n then i + 1
        else find (i + 1)
      in
      Value.of_int (if nl = 0 then 1 else find 0)
  | "REPLACE", [ s; from_s; to_s ] ->
      let s = string_arg "REPLACE" s in
      let f = string_arg "REPLACE" from_s and t = string_arg "REPLACE" to_s in
      if f = "" then Value.Varchar s
      else begin
        let buf = Buffer.create (String.length s) in
        let fl = String.length f in
        let i = ref 0 in
        while !i <= String.length s - fl do
          if String.sub s !i fl = f then begin
            Buffer.add_string buf t;
            i := !i + fl
          end
          else begin
            Buffer.add_char buf s.[!i];
            incr i
          end
        done;
        Buffer.add_string buf (String.sub s !i (String.length s - !i));
        Value.Varchar (Buffer.contents buf)
      end
  | "ABS", [ v ] -> (
      match v with
      | Value.Int n -> Value.Int (Int64.abs n)
      | Value.Float f -> Value.Float (Float.abs f)
      | Value.Decimal d -> Value.Decimal (Decimal.abs d)
      | v -> Sql_error.execution_error "ABS expects a number, got %s" (Value.to_string v))
  | "ROUND", [ v ] -> eval_function env "ROUND" [ v; Value.of_int 0 ]
  | "ROUND", [ v; Value.Int n ] -> (
      let n = Int64.to_int n in
      match v with
      | Value.Int _ -> v
      | Value.Decimal d -> Value.Decimal (Decimal.round d ~scale:(max 0 n))
      | Value.Float f ->
          let m = 10. ** float_of_int n in
          Value.Float (Float.round (f *. m) /. m)
      | v -> Sql_error.execution_error "ROUND expects a number, got %s" (Value.to_string v))
  | "TRUNC", [ v ] -> eval_function env "TRUNC" [ v; Value.of_int 0 ]
  | "TRUNC", [ v; Value.Int n ] -> (
      let n = Int64.to_int n in
      match v with
      | Value.Int _ -> v
      | Value.Decimal d ->
          if n >= d.Decimal.scale then v
          else Value.Decimal (Decimal.rescale d (max 0 n))
      | Value.Float f ->
          let m = 10. ** float_of_int n in
          Value.Float (Float.trunc (f *. m) /. m)
      | v -> Sql_error.execution_error "TRUNC expects a number, got %s" (Value.to_string v))
  | "FLOOR", [ v ] -> (
      match v with
      | Value.Int _ -> v
      | Value.Float f -> Value.Float (Float.floor f)
      | Value.Decimal d ->
          let f = Decimal.to_float d in
          Value.Decimal (Decimal.of_float ~scale:0 (Float.floor f))
      | v -> Sql_error.execution_error "FLOOR expects a number, got %s" (Value.to_string v))
  | "CEILING", [ v ] -> (
      match v with
      | Value.Int _ -> v
      | Value.Float f -> Value.Float (Float.ceil f)
      | Value.Decimal d ->
          let f = Decimal.to_float d in
          Value.Decimal (Decimal.of_float ~scale:0 (Float.ceil f))
      | v -> Sql_error.execution_error "CEILING expects a number, got %s" (Value.to_string v))
  | "SQRT", [ v ] -> Value.Float (sqrt (Value.to_float_exn v))
  | "EXP", [ v ] -> Value.Float (exp (Value.to_float_exn v))
  | "LN", [ v ] -> Value.Float (log (Value.to_float_exn v))
  | "LOG", [ v ] -> Value.Float (log10 (Value.to_float_exn v))
  | "POWER", [ a; b ] ->
      Value.Float (Float.pow (Value.to_float_exn a) (Value.to_float_exn b))
  | "ADD_MONTHS", [ d; Value.Int n ] ->
      Value.Date (Sql_date.add_months (date_of_value d) (Int64.to_int n))
  | "ADD_DAYS", [ d; Value.Int n ] ->
      Value.Date (Sql_date.add_days (date_of_value d) (Int64.to_int n))
  | "LAST_DAY", [ d ] ->
      let d = date_of_value d in
      Value.Date
        (Sql_date.make ~year:d.Sql_date.year ~month:d.Sql_date.month
           ~day:(Sql_date.days_in_month d.Sql_date.year d.Sql_date.month))
  | "DAY_OF_WEEK", [ d ] -> Value.of_int (Sql_date.day_of_week (date_of_value d))
  | "GREATEST", args ->
      List.fold_left
        (fun acc v ->
          match Value.compare_sql acc v with Some c when c >= 0 -> acc | _ -> v)
        (List.hd args) (List.tl args)
  | "LEAST", args ->
      List.fold_left
        (fun acc v ->
          match Value.compare_sql acc v with Some c when c <= 0 -> acc | _ -> v)
        (List.hd args) (List.tl args)
  | "PERIOD_BEGIN", [ Value.Period_date (b, _) ] -> Value.Date b
  | "PERIOD_END", [ Value.Period_date (_, e) ] -> Value.Date e
  | name, _ -> Sql_error.execution_error "unimplemented function %s" name

(* --- three-valued booleans and comparison ----------------------------- *)

let bool3_of_value = function
  | Value.Null -> None
  | Value.Bool b -> Some b
  | Value.Int n -> Some (n <> 0L)
  | v ->
      Sql_error.execution_error "expected a boolean, got %s" (Value.to_string v)

let value_of_bool3 = function
  | None -> Value.Null
  | Some b -> Value.Bool b

let eval_cmp op a b : bool option =
  match Value.compare_sql a b with
  | None -> if Value.is_null a || Value.is_null b then None
            else Sql_error.execution_error "cannot compare %s with %s"
                   (Value.to_string a) (Value.to_string b)
  | Some c ->
      Some
        (match op with
        | Xtra.Eq -> c = 0
        | Xtra.Neq -> c <> 0
        | Xtra.Lt -> c < 0
        | Xtra.Lte -> c <= 0
        | Xtra.Gt -> c > 0
        | Xtra.Gte -> c >= 0)
