(* Radix-partitioned open-addressing hash table for joins and aggregation.

   Entries (key rows) live in one global insertion-ordered store; the slot
   directory is split into 2^4 partitions selected by the high bits of the
   mixed hash, each an open-addressed array probed linearly. Every slot
   carries a one-byte tag derived from other hash bits (0 = empty, high bit
   always set when occupied), so a probe rejects almost all non-matching
   slots on a single byte compare before touching the entry store. Group
   keys are hashed once per row — not re-hashed as boxed lists on every
   bucket visit like the legacy row path.

   [null_equal] selects SQL grouping semantics (NULL keys coalesce, used by
   GROUP BY / DISTINCT / set operations). With [null_equal = false] the
   table is in join mode: NULL never equals NULL, and because callers must
   drop NULL keys before build/probe (a NULL join key can match nothing),
   the table asserts that no NULL key ever reaches it. *)

open Hyperq_sqlvalue

let radix_bits = 4
let num_parts = 1 lsl radix_bits

type part = {
  mutable tags : Bytes.t;
  mutable slots : int array;  (** global entry index per occupied slot *)
  mutable mask : int;
  mutable used : int;
}

type t = {
  parts : part array;
  mutable keys : Value.t array array;  (** entry store, insertion order *)
  mutable hashes : int array;  (** unmixed hash per entry *)
  mutable count : int;
  null_equal : bool;
}

let initial_part_slots = 16

let make_part () =
  {
    tags = Bytes.make initial_part_slots '\000';
    slots = Array.make initial_part_slots 0;
    mask = initial_part_slots - 1;
    used = 0;
  }

let create ~null_equal _size_hint =
  {
    parts = Array.init num_parts (fun _ -> make_part ());
    keys = Array.make 64 [||];
    hashes = Array.make 64 0;
    count = 0;
    null_equal;
  }

let count t = t.count
let entry_key t i = t.keys.(i)

(* Same per-value hash as the row path ([Value.hash] is compatible with
   [Value.equal_group]), folded over the key row. *)
let hash_key (key : Value.t array) =
  let h = ref 17 in
  for i = 0 to Array.length key - 1 do
    h := (!h * 31) + Value.hash key.(i)
  done;
  !h

(* Fibonacci-style finalizer: the fold above is weak in its high bits, and
   the directory consumes high bits for partition, tag, and low bits for the
   slot, so spread the entropy. The constant is the 60-bit prefix of
   2^64 / phi. *)
let mix h =
  let h = h * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 29)

(* Stable partition selector, exposed so a parallel join build can bucket
   rows by partition BEFORE inserting: rows of one partition go to one
   worker (partition-per-worker build), and a probe recomputes the same
   selector to find the right per-partition table. *)
let num_partitions = num_parts
let partition_of_hash h = (mix h lsr 55) land (num_parts - 1)
let part_of t mixed = t.parts.((mixed lsr 55) land (num_parts - 1))
let tag_of mixed = Char.unsafe_chr (((mixed lsr 45) land 0x7f) lor 0x80)

let key_equal t (a : Value.t array) (b : Value.t array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    if i >= n then true
    else begin
      assert (t.null_equal || not (Value.is_null a.(i) || Value.is_null b.(i)));
      Value.equal_group a.(i) b.(i) && go (i + 1)
    end
  in
  go 0

(* Probe [p] for an entry equal to [key]; returns the matching slot or the
   first empty slot (linear probing never wraps past an empty slot because
   we keep load factor under 0.7). *)
let probe t p key h mixed tag =
  let rec go s =
    let c = Bytes.unsafe_get p.tags s in
    if c = '\000' then (s, -1)
    else if
      c = tag
      && (let e = p.slots.(s) in
          t.hashes.(e) = h && key_equal t t.keys.(e) key)
    then (s, p.slots.(s))
    else go ((s + 1) land p.mask)
  in
  go (mixed land p.mask)

let grow_part t p =
  let old_tags = p.tags and old_slots = p.slots in
  let cap = 2 * (p.mask + 1) in
  p.tags <- Bytes.make cap '\000';
  p.slots <- Array.make cap 0;
  p.mask <- cap - 1;
  for s = 0 to Bytes.length old_tags - 1 do
    let c = Bytes.unsafe_get old_tags s in
    if c <> '\000' then begin
      let e = old_slots.(s) in
      let mixed = mix t.hashes.(e) in
      (* find the first empty slot in the new directory *)
      let rec place s =
        if Bytes.unsafe_get p.tags s = '\000' then begin
          Bytes.unsafe_set p.tags s c;
          p.slots.(s) <- e
        end
        else place ((s + 1) land p.mask)
      in
      place (mixed land p.mask)
    end
  done

let ensure_entry_room t =
  if t.count >= Array.length t.keys then begin
    let cap = 2 * Array.length t.keys in
    let keys = Array.make cap [||] and hashes = Array.make cap 0 in
    Array.blit t.keys 0 keys 0 t.count;
    Array.blit t.hashes 0 hashes 0 t.count;
    t.keys <- keys;
    t.hashes <- hashes
  end

(* Returns [(entry_index, inserted)]. The key array is retained by the table
   on insert — callers must not mutate it afterwards. *)
let find_or_insert t key h =
  let mixed = mix h in
  let p = part_of t mixed in
  let tag = tag_of mixed in
  let s, e = probe t p key h mixed tag in
  if e >= 0 then (e, false)
  else begin
    ensure_entry_room t;
    let e = t.count in
    t.keys.(e) <- key;
    t.hashes.(e) <- h;
    t.count <- e + 1;
    Bytes.unsafe_set p.tags s tag;
    p.slots.(s) <- e;
    p.used <- p.used + 1;
    if 10 * (p.used + 1) > 7 * (p.mask + 1) then grow_part t p;
    (e, true)
  end

(* Probe-only lookup; [-1] when absent. *)
let find t key h =
  let mixed = mix h in
  let p = part_of t mixed in
  let _, e = probe t p key h mixed (tag_of mixed) in
  e
