(** The target database system (DB-B in the paper's terms).

    A self-contained analytical SQL engine: it parses the ANSI dialect our
    serializers emit, binds it against its own (physical) catalog, and
    executes it with {!Executor}. This substitutes for the paper's cloud
    data warehouse — everything Hyper-Q emits is genuinely re-parsed and
    executed, closing the translation loop end-to-end. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra
module Catalog = Hyperq_catalog.Catalog
module Binder = Hyperq_binder.Binder
module Parser = Hyperq_sqlparser.Parser
module Dialect = Hyperq_sqlparser.Dialect

type t = {
  catalog : Catalog.t;
  storage : Storage.t;
  mutable session_user : string;
  mutable queries_executed : int;
  mutable exec_mode : exec_mode;
  mutable exec_domains : int;
}

and exec_mode = Row | Batch

type result = {
  res_schema : (string * Dtype.t) list;
  res_rows : Value.t array list;
  res_rowcount : int;  (** affected rows for DML; result rows for queries *)
  res_message : string;
}

(* The vectorized executor is the default; [HYPERQ_EXEC_MODE=row] selects the
   row interpreter (baseline for benchmarks and differential testing). *)
let default_exec_mode () =
  match Sys.getenv_opt "HYPERQ_EXEC_MODE" with
  | Some "row" -> Row
  | _ -> Batch

let create () =
  {
    catalog = Catalog.create ();
    storage = Storage.create ();
    session_user = "HYPERQ";
    queries_executed = 0;
    exec_mode = default_exec_mode ();
    exec_domains = Morsel.configured_domains ();
  }

let query_result schema rows =
  {
    res_schema =
      List.map (fun (c : Xtra.col) -> (c.Xtra.name, c.Xtra.ty)) schema;
    res_rows = rows;
    res_rowcount = List.length rows;
    res_message = "SELECT";
  }

let dml_result message n =
  { res_schema = []; res_rows = []; res_rowcount = n; res_message = message }

let catalog_column_of_spec (s : Xtra.column_spec) : Catalog.column =
  {
    Catalog.col_name = s.Xtra.spec_name;
    col_type = s.Xtra.spec_type;
    col_not_null = s.Xtra.spec_not_null;
    col_default = None;
    col_case_specific = true;
  }

(* Coerce an incoming row to the table's declared column types and check
   NOT NULL constraints. *)
let coerce_row t table (positions : int option array) width (row : Executor.row) =
  let cols = Array.of_list table.Catalog.tbl_columns in
  let out = Array.make width Value.Null in
  Array.iteri
    (fun target_idx src ->
      let col = cols.(target_idx) in
      let v =
        match src with
        | Some i -> Value.cast row.(i) col.Catalog.col_type
        | None -> Value.Null
      in
      if Value.is_null v && col.Catalog.col_not_null then
        Sql_error.execution_error "column %s of %s is NOT NULL"
          col.Catalog.col_name table.Catalog.tbl_name;
      out.(target_idx) <- v)
    positions;
  ignore t;
  out

let exec_insert t ~target ~target_cols ~source =
  match Catalog.find_table t.catalog target with
  | None -> Sql_error.execution_error "table %s does not exist" target
  | Some table ->
      let ctx = Executor.create_ctx ~session_user:t.session_user t.storage in
      let src_rows = Executor.exec ctx source in
      let width = List.length table.Catalog.tbl_columns in
      (* positions.(i) = index in the source row feeding target column i *)
      let positions =
        Array.of_list
          (List.map
             (fun (c : Catalog.column) ->
               let rec find i = function
                 | [] -> None
                 | name :: tl ->
                     if String.uppercase_ascii name = String.uppercase_ascii c.Catalog.col_name
                     then Some i
                     else find (i + 1) tl
               in
               find 0 target_cols)
             table.Catalog.tbl_columns)
      in
      let rows =
        List.map (coerce_row t table positions width) src_rows
      in
      let n = Storage.insert t.storage target rows in
      dml_result "INSERT" n

let table_frame (schema : Xtra.schema) =
  { Executor.index = Executor.make_index schema; row = [||] }

let exec_update t ~target ~assignments ~extra_from ~pred ~(schema : Xtra.schema) =
  match Catalog.find_table t.catalog target with
  | None -> Sql_error.execution_error "table %s does not exist" target
  | Some table ->
      let ctx = Executor.create_ctx ~session_user:t.session_user t.storage in
      let from_rows, from_schema =
        match extra_from with
        | Some rel -> (Executor.exec ctx rel, Xtra.schema_of rel)
        | None -> ([ [||] ], [])
      in
      let tframe = table_frame schema in
      let fframe = table_frame from_schema in
      let cols = Array.of_list table.Catalog.tbl_columns in
      let col_pos name =
        let rec go i = function
          | [] -> Sql_error.execution_error "column %s not found" name
          | (c : Catalog.column) :: tl ->
              if String.uppercase_ascii c.Catalog.col_name = String.uppercase_ascii name
              then i
              else go (i + 1) tl
        in
        go 0 table.Catalog.tbl_columns
      in
      let updated = ref 0 in
      let rows =
        List.map
          (fun row ->
            tframe.Executor.row <- row;
            Executor.push_frame ctx tframe;
            (* first matching FROM row wins (Teradata raises on multiple
               matches; we take the first deterministically) *)
            let matching =
              List.find_opt
                (fun frow ->
                  fframe.Executor.row <- frow;
                  Executor.push_frame ctx fframe;
                  let ok =
                    match pred with
                    | None -> true
                    | Some p -> (
                        match Executor.eval ctx p with
                        | Value.Bool b -> b
                        | Value.Null -> false
                        | v ->
                            Sql_error.execution_error "bad predicate value %s"
                              (Value.to_string v))
                  in
                  Executor.pop_frame ctx;
                  ok)
                from_rows
            in
            let out =
              match matching with
              | None -> row
              | Some frow ->
                  incr updated;
                  fframe.Executor.row <- frow;
                  Executor.push_frame ctx fframe;
                  let row' = Array.copy row in
                  List.iter
                    (fun (name, e) ->
                      let i = col_pos name in
                      row'.(i) <-
                        Value.cast (Executor.eval ctx e) cols.(i).Catalog.col_type)
                    assignments;
                  Executor.pop_frame ctx;
                  row'
            in
            Executor.pop_frame ctx;
            out)
          (Storage.scan t.storage target)
      in
      Storage.replace_rows t.storage target rows;
      dml_result "UPDATE" !updated

let exec_delete t ~target ~extra_from ~pred ~(schema : Xtra.schema) =
  match Catalog.find_table t.catalog target with
  | None -> Sql_error.execution_error "table %s does not exist" target
  | Some _ ->
      let ctx = Executor.create_ctx ~session_user:t.session_user t.storage in
      let from_rows, from_schema =
        match extra_from with
        | Some rel -> (Executor.exec ctx rel, Xtra.schema_of rel)
        | None -> ([ [||] ], [])
      in
      let tframe = table_frame schema in
      let fframe = table_frame from_schema in
      let deleted = ref 0 in
      let rows =
        List.filter
          (fun row ->
            tframe.Executor.row <- row;
            Executor.push_frame ctx tframe;
            let matches =
              List.exists
                (fun frow ->
                  fframe.Executor.row <- frow;
                  Executor.push_frame ctx fframe;
                  let ok =
                    match pred with
                    | None -> true
                    | Some p -> (
                        match Executor.eval ctx p with
                        | Value.Bool b -> b
                        | Value.Null -> false
                        | v ->
                            Sql_error.execution_error "bad predicate value %s"
                              (Value.to_string v))
                  in
                  Executor.pop_frame ctx;
                  ok)
                from_rows
            in
            Executor.pop_frame ctx;
            if matches then incr deleted;
            not matches)
          (Storage.scan t.storage target)
      in
      Storage.replace_rows t.storage target rows;
      dml_result "DELETE" !deleted

let rec exec_statement t (st : Xtra.statement) : result =
  t.queries_executed <- t.queries_executed + 1;
  let st = Optimizer.optimize_statement st in
  (if Sys.getenv_opt "HYPERQ_PLAN_DEBUG" <> None then
     match st with
     | Xtra.Query rel -> prerr_endline (Hyperq_xtra.Xtra_pp.rel_to_string rel)
     | _ -> ());
  match st with
  | Xtra.Query rel ->
      let ctx =
        Executor.create_ctx ~session_user:t.session_user
          ~domains:t.exec_domains t.storage
      in
      let rows =
        match t.exec_mode with
        | Batch -> Batch_exec.exec_rows ctx rel
        | Row -> Executor.exec ctx rel
      in
      query_result (Xtra.schema_of rel) rows
  | Xtra.Insert { target; target_cols; source } ->
      exec_insert t ~target ~target_cols ~source
  | Xtra.Update { target; assignments; extra_from; upd_pred; upd_schema; _ } ->
      exec_update t ~target ~assignments ~extra_from ~pred:upd_pred
        ~schema:upd_schema
  | Xtra.Delete { target; extra_from; del_pred; del_schema; _ } ->
      exec_delete t ~target ~extra_from ~pred:del_pred ~schema:del_schema
  | Xtra.Merge _ ->
      Sql_error.capability_gap "the engine does not support MERGE natively"
  | Xtra.Create_table { ct_name; persistence; specs; set_semantics; ct_if_not_exists }
    ->
      if Catalog.table_exists t.catalog ct_name then
        if ct_if_not_exists then dml_result "CREATE TABLE" 0
        else Sql_error.execution_error "table %s already exists" ct_name
      else begin
        Catalog.add_table t.catalog
          {
            Catalog.tbl_name = ct_name;
            tbl_columns = List.map catalog_column_of_spec specs;
            tbl_set_semantics = set_semantics;
            tbl_temporary = persistence = Xtra.Tp_temporary;
          };
        Storage.create_table t.storage ~dedup:set_semantics
          ~temporary:(persistence = Xtra.Tp_temporary) ct_name;
        dml_result "CREATE TABLE" 0
      end
  | Xtra.Create_table_as { cta_name; cta_persistence; cta_source; with_data } ->
      let schema = Xtra.schema_of cta_source in
      let specs =
        List.map
          (fun (c : Xtra.col) ->
            {
              Xtra.spec_name = c.Xtra.name;
              spec_type =
                (match c.Xtra.ty with Dtype.Unknown -> Dtype.varchar () | ty -> ty);
              spec_not_null = false;
              spec_default = None;
            })
          schema
      in
      let _ =
        exec_statement t
          (Xtra.Create_table
             {
               ct_name = cta_name;
               persistence = cta_persistence;
               specs;
               set_semantics = false;
               ct_if_not_exists = false;
             })
      in
      if with_data then
        exec_insert t ~target:cta_name
          ~target_cols:(List.map (fun (c : Xtra.col) -> c.Xtra.name) schema)
          ~source:cta_source
      else dml_result "CREATE TABLE AS" 0
  | Xtra.Drop_table { dt_name; dt_if_exists } ->
      if Catalog.table_exists t.catalog dt_name then begin
        Catalog.drop_table t.catalog ~if_exists:dt_if_exists dt_name;
        Storage.drop_table t.storage dt_name;
        dml_result "DROP TABLE" 0
      end
      else if dt_if_exists then dml_result "DROP TABLE" 0
      else Sql_error.execution_error "table %s does not exist" dt_name
  | Xtra.Rename_table { rn_from; rn_to } ->
      Catalog.rename_table t.catalog ~from_name:rn_from ~to_name:rn_to;
      Storage.rename_table t.storage ~from_name:rn_from ~to_name:rn_to;
      dml_result "ALTER TABLE" 0
  | Xtra.Begin_tx ->
      Storage.begin_tx t.storage;
      dml_result "BEGIN" 0
  | Xtra.Commit_tx ->
      Storage.commit_tx t.storage;
      dml_result "COMMIT" 0
  | Xtra.Rollback_tx ->
      Storage.rollback_tx t.storage;
      dml_result "ROLLBACK" 0
  | Xtra.No_op reason -> dml_result reason 0

(** Execute one SQL statement in the engine's own (ANSI) dialect: the full
    parse → bind → execute path of a standalone database system. *)
let execute_sql t sql =
  let ast = Parser.parse_statement ~dialect:Dialect.Ansi sql in
  let bctx = Binder.create_ctx ~dialect:Dialect.Ansi t.catalog in
  let st = Binder.bind_statement bctx ast in
  exec_statement t st

(** Execute a whole script ([;]-separated); returns the last result. *)
let execute_script t sql =
  let asts = Parser.parse_many ~dialect:Dialect.Ansi sql in
  match asts with
  | [] -> dml_result "EMPTY" 0
  | asts ->
      List.fold_left
        (fun _ ast ->
          let bctx = Binder.create_ctx ~dialect:Dialect.Ansi t.catalog in
          exec_statement t (Binder.bind_statement bctx ast))
        (dml_result "" 0) asts
