(** Minimal logical optimizer for the engine: filter pushdown.

    Comma-style FROM lists (and Teradata implicit joins) bind as cross joins
    under a Filter; this pass pushes single-side conjuncts below the join
    and turns two-side equi-conjuncts into hashable inner-join predicates.
    Conjuncts common to every OR branch are factored out first (the TPC-H
    Q19 shape). Outer joins are never rewritten. *)

module Xtra = Hyperq_xtra.Xtra

val split_conjuncts : Xtra.scalar -> Xtra.scalar list
val split_disjuncts : Xtra.scalar -> Xtra.scalar list

(** [(j AND p1) OR (j AND p2)] → [[j; (p1 OR p2)]]. *)
val factor_common_or : Xtra.scalar -> Xtra.scalar list

val optimize_rel : Xtra.rel -> Xtra.rel
val optimize_statement : Xtra.statement -> Xtra.statement

(** {1 Inferred plan statistics}

    Passive cost-model hooks over {!Hyperq_analyze.Infer}: what the static
    property inference can prove about a plan's output — per-column
    nullability and value intervals, candidate keys, and a cardinality
    upper bound. Consumed by the (upcoming) cost-based join ordering;
    never raises. *)

type col_stats = {
  cs_col : Xtra.col;
  cs_not_null : bool;  (** proven to never be NULL *)
  cs_lo : (Hyperq_sqlvalue.Value.t * bool) option;
      (** lower bound, inclusive? *)
  cs_hi : (Hyperq_sqlvalue.Value.t * bool) option;
      (** upper bound, inclusive? *)
}

type rel_stats = {
  rs_cols : col_stats list;  (** one entry per output column, in order *)
  rs_keys : Xtra.col list list;  (** candidate keys (unique column sets) *)
  rs_card_max : int option;  (** proven upper bound on the row count *)
}

val stats_of : ?catalog:Hyperq_catalog.Catalog.t -> Xtra.rel -> rel_stats
