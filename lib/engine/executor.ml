(** XTRA interpreter: the engine's physical execution layer.

    Executes bound (and transformed) XTRA plans against {!Storage}. Joins use
    hash joins on extracted equi-conjuncts, grouping and DISTINCT use hashing
    with SQL grouping equality (NULLs group together), subquery results are
    memoized when uncorrelated, and recursive CTEs run the standard
    delta-iteration to a fixed point. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra

type row = Value.t array

(* A frame binds the columns of one schema to one row; the id→position index
   is shared across all rows of an operator. *)
type frame = { index : (int, int) Hashtbl.t; mutable row : row }

let make_index (schema : Xtra.schema) =
  let h = Hashtbl.create (List.length schema * 2) in
  List.iteri (fun i (c : Xtra.col) -> Hashtbl.replace h c.Xtra.id i) schema;
  h

(* Physical-identity hash table over plan nodes. The executor memoizes
   per-node facts (correlation analysis, uncorrelated subquery results,
   decorrelation candidates) keyed by the node's identity within the plan
   being executed; plan nodes are immutable, so the structural [Hashtbl.hash]
   is stable and compatible with [( == )]. *)
module Rel_tbl = Hashtbl.Make (struct
  type t = Hyperq_xtra.Xtra.rel

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* Uncorrelated-subquery memo bound. The cache lives for one statement (a
   fresh ctx per [Backend.exec_statement]); on overflow it resets wholesale
   rather than evicting — pathological plans with hundreds of distinct
   subquery nodes re-execute instead of growing without bound. *)
let subquery_cache_cap = 256

type ctx = {
  storage : Storage.t;
  mutable frames : frame list;
  mutable ctes : (string * row list) list;
  mutable cte_version : int;
      (** bumped on every [ctes] rebind (see [set_ctes]); guards
          CTE-dependent entries in [subquery_cache] *)
  subquery_cache : (int * bool * row list) Rel_tbl.t;
      (** uncorrelated subquery ↦ (cte_version at insert, references-a-CTE
          flag, rows); invariant documented at [exec_subquery] *)
  correlated : bool Rel_tbl.t;
  hashed_subqueries : hashed_subquery option Rel_tbl.t;
  session_user : string;
  current_date : Sql_date.t;
  domains : int;
      (** intra-statement parallelism budget for the vectorized executor
          (1 = sequential); the row interpreter ignores it *)
}

(* Decorrelation support: a correlated subquery whose correlation enters
   through equality predicates on an uncorrelated input is evaluated by
   building the input's hash table once and probing it per outer row, instead
   of re-scanning per row. *)
and hashed_subquery = {
  hs_filter : Xtra.rel;  (** the Filter node being replaced (physical identity) *)
  hs_input_schema : Xtra.schema;
  hs_outer_keys : Xtra.scalar list;  (** evaluated in the outer environment *)
  hs_residual : Xtra.scalar list;  (** remaining conjuncts, evaluated per row *)
  mutable hs_groups : (int, (Value.t list * row list ref) list ref) Hashtbl.t option;
      (** built lazily on first probe *)
  hs_inner_keys : Xtra.scalar list;  (** evaluated against input rows *)
}

let create_ctx ?(session_user = "HYPERQ") ?(current_date = Sql_date.make ~year:2018 ~month:6 ~day:10) ?(domains = 1) storage =
  {
    storage;
    frames = [];
    ctes = [];
    cte_version = 0;
    subquery_cache = Rel_tbl.create 64;
    correlated = Rel_tbl.create 64;
    hashed_subqueries = Rel_tbl.create 16;
    session_user;
    current_date;
    domains;
  }

(* A context for one worker domain of a parallel morsel region: same storage
   and session state, but private frame stack and per-statement caches (the
   originals are unsynchronized), and [domains = 1] so nothing nested ever
   goes parallel again. The CTE environment is shared by reference — it is
   immutable between rebinds, and parallel regions never span a rebind. *)
let clone_for_domain ctx =
  {
    ctx with
    frames = [];
    subquery_cache = Rel_tbl.create 64;
    correlated = Rel_tbl.create 64;
    hashed_subqueries = Rel_tbl.create 16;
    domains = 1;
  }

(* Every CTE-environment rebind goes through here so the subquery memo can
   tell whether a CTE-referencing entry is still current. *)
let set_ctes ctx ctes =
  ctx.ctes <- ctes;
  ctx.cte_version <- ctx.cte_version + 1

let push_frame ctx f = ctx.frames <- f :: ctx.frames
let pop_frame ctx =
  match ctx.frames with
  | _ :: rest -> ctx.frames <- rest
  | [] -> Sql_error.internal_error "frame stack underflow"

let lookup ctx id =
  let rec go = function
    | [] -> Sql_error.internal_error "unbound column #%d at execution" id
    | f :: rest -> (
        match Hashtbl.find_opt f.index id with
        | Some pos -> f.row.(pos)
        | None -> go rest)
  in
  go ctx.frames

(* --- correlation analysis ------------------------------------------- *)

let referenced_and_produced rel =
  let refs = ref [] and prods = ref [] in
  let record_schema r = prods := List.map (fun (c : Xtra.col) -> c.Xtra.id) (Xtra.schema_of r) @ !prods in
  let fscalar s =
    (match s with
    | Xtra.Col_ref c -> refs := c.Xtra.id :: !refs
    | _ -> ());
    s
  in
  let frel r =
    record_schema r;
    r
  in
  ignore (Xtra.rewrite ~frel ~fscalar rel);
  (!refs, !prods)

let is_correlated ctx rel =
  match Rel_tbl.find_opt ctx.correlated rel with
  | Some b -> b
  | None ->
      let refs, prods = referenced_and_produced rel in
      let b = List.exists (fun id -> not (List.mem id prods)) refs in
      Rel_tbl.replace ctx.correlated rel b;
      b

(* LIKE / EXTRACT / function library / 3-valued booleans live in
   Scalar_func; the executor re-exports thin wrappers so existing call sites
   (and tests poking at the row path) keep working. *)

let like_match = Scalar_func.like_match
let micros_per_day = Scalar_func.micros_per_day
let date_of_value = Scalar_func.date_of_value
let eval_extract = Scalar_func.eval_extract

let scalar_env ctx =
  { Scalar_func.sf_user = ctx.session_user; sf_date = ctx.current_date }

let eval_function ctx name args =
  Scalar_func.eval_function (scalar_env ctx) name args

(* --- scalar evaluation ------------------------------------------------ *)

let bool3_of_value = Scalar_func.bool3_of_value
let value_of_bool3 = Scalar_func.value_of_bool3
let eval_cmp = Scalar_func.eval_cmp

let rec eval ctx (s : Xtra.scalar) : Value.t =
  match s with
  | Xtra.Const v -> v
  | Xtra.Col_ref c -> lookup ctx c.Xtra.id
  | Xtra.Param n -> Sql_error.execution_error "unbound parameter $%d" n
  | Xtra.Arith (op, a, b) ->
      let va = eval ctx a and vb = eval ctx b in
      let vop =
        match op with
        | Xtra.Add -> Value.Add
        | Xtra.Sub -> Value.Sub
        | Xtra.Mul -> Value.Mul
        | Xtra.Div -> Value.Div
        | Xtra.Modulo -> Value.Modulo
      in
      Value.arith vop va vb
  | Xtra.Cmp (op, a, b) ->
      let va = eval ctx a and vb = eval ctx b in
      value_of_bool3 (eval_cmp op va vb)
  | Xtra.Logic_and (a, b) -> (
      match bool3_of_value (eval ctx a) with
      | Some false -> Value.Bool false
      | Some true -> eval ctx b
      | None -> (
          match bool3_of_value (eval ctx b) with
          | Some false -> Value.Bool false
          | _ -> Value.Null))
  | Xtra.Logic_or (a, b) -> (
      match bool3_of_value (eval ctx a) with
      | Some true -> Value.Bool true
      | Some false -> eval ctx b
      | None -> (
          match bool3_of_value (eval ctx b) with
          | Some true -> Value.Bool true
          | _ -> Value.Null))
  | Xtra.Logic_not a -> (
      match bool3_of_value (eval ctx a) with
      | Some b -> Value.Bool (not b)
      | None -> Value.Null)
  | Xtra.Is_null (a, negated) ->
      let v = eval ctx a in
      Value.Bool (if negated then not (Value.is_null v) else Value.is_null v)
  | Xtra.Case { branches; else_branch; _ } -> (
      let rec go = function
        | [] -> (
            match else_branch with Some e -> eval ctx e | None -> Value.Null)
        | (c, v) :: rest -> (
            match bool3_of_value (eval ctx c) with
            | Some true -> eval ctx v
            | _ -> go rest)
      in
      go branches)
  | Xtra.Cast (a, t) -> Value.cast (eval ctx a) t
  | Xtra.Func { name; args; _ } -> eval_function ctx name (List.map (eval ctx) args)
  | Xtra.Extract (f, a) -> eval_extract f (eval ctx a)
  | Xtra.Concat (a, b) -> (
      let va = eval ctx a and vb = eval ctx b in
      match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | a, b -> Value.Varchar (Value.to_string a ^ Value.to_string b))
  | Xtra.Like { arg; pattern; escape; negated } -> (
      let v = eval ctx arg and p = eval ctx pattern in
      match (v, p) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | v, p ->
          let esc =
            match Option.map (eval ctx) escape with
            | Some (Value.Varchar e) when String.length e = 1 -> Some e.[0]
            | Some Value.Null | None -> None
            | Some v ->
                Sql_error.execution_error "bad ESCAPE %s" (Value.to_string v)
          in
          let m =
            like_match ?escape:esc ~pattern:(Value.to_string p) (Value.to_string v)
          in
          Value.Bool (if negated then not m else m))
  | Xtra.In_list { arg; items; negated } ->
      let v = eval ctx arg in
      let r =
        List.fold_left
          (fun acc item ->
            match acc with
            | Some true -> acc
            | _ -> (
                match eval_cmp Xtra.Eq v (eval ctx item) with
                | Some true -> Some true
                | Some false -> ( match acc with None -> None | _ -> Some false)
                | None -> None))
          (Some false) items
      in
      value_of_bool3 (if negated then Option.map not r else r)
  | Xtra.Scalar_subquery rel -> (
      let rows = exec_subquery ctx rel in
      match rows with
      | [] -> Value.Null
      | [ r ] when Array.length r = 1 -> r.(0)
      | [ _ ] -> Sql_error.execution_error "scalar subquery returns more than one column"
      | _ -> Sql_error.execution_error "scalar subquery returns more than one row")
  | Xtra.Exists rel -> Value.Bool (exec_subquery ctx rel <> [])
  | Xtra.In_subquery { args; subquery; negated } ->
      let vals = List.map (eval ctx) args in
      let rows = exec_subquery ctx subquery in
      let r =
        List.fold_left
          (fun acc row ->
            match acc with
            | Some true -> acc
            | _ ->
                let cmp =
                  List.fold_left2
                    (fun c v cell ->
                      match c with
                      | Some false -> Some false
                      | _ -> (
                          match eval_cmp Xtra.Eq v cell with
                          | Some false -> Some false
                          | Some true -> c
                          | None -> None))
                    (Some true) vals (Array.to_list row)
                in
                (match (cmp, acc) with
                | Some true, _ -> Some true
                | Some false, Some false -> Some false
                | Some false, None -> None
                | None, _ -> None
                | _, _ -> acc))
          (Some false) rows
      in
      value_of_bool3 (if negated then Option.map not r else r)
  | Xtra.Quantified { lhs; op; quant; subquery } -> (
      match lhs with
      | [ l ] ->
          let v = eval ctx l in
          let rows = exec_subquery ctx subquery in
          let results =
            List.map
              (fun (row : row) -> eval_cmp op v row.(0))
              rows
          in
          let r =
            match quant with
            | Xtra.Any ->
                if List.exists (fun x -> x = Some true) results then Some true
                else if List.exists (fun x -> x = None) results then None
                else Some false
            | Xtra.All ->
                if List.exists (fun x -> x = Some false) results then Some false
                else if List.exists (fun x -> x = None) results then None
                else Some true
          in
          value_of_bool3 r
      | _ ->
          Sql_error.internal_error
            "vector quantified comparison must be expanded before execution")
  | Xtra.Agg_ref _ | Xtra.Window_ref _ ->
      Sql_error.internal_error "transient aggregate/window node at execution"

(* Memo invariant: an uncorrelated subquery's rows are a function of
   (storage, CTE environment) only. Storage never mutates mid-statement (DML
   materializes its source before writing), so the only way the same physical
   node can be re-entered with a different answer is under a rebound CTE
   environment — recursive-CTE iterations and WITH-scope entry/exit, both of
   which bump [cte_version] via [set_ctes]. An entry is therefore valid iff
   it references no CTE or its recorded version is current. *)
and exec_subquery ctx rel =
  if is_correlated ctx rel then
    match analyze_hashable ctx rel with
    | Some hsq -> probe_hashed ctx rel hsq
    | None -> exec ctx rel
  else
    match Rel_tbl.find_opt ctx.subquery_cache rel with
    | Some (ver, refs_cte, rows) when (not refs_cte) || ver = ctx.cte_version
      ->
        rows
    | _ ->
        let rows = exec ctx rel in
        let refs_cte = references_cte rel in
        if Rel_tbl.length ctx.subquery_cache >= subquery_cache_cap then
          Rel_tbl.reset ctx.subquery_cache;
        Rel_tbl.replace ctx.subquery_cache rel (ctx.cte_version, refs_cte, rows);
        rows

(* --- correlated-subquery decorrelation -------------------------------- *)

and references_cte rel =
  Xtra.fold_rel
    (fun acc r -> acc || match r with Xtra.Cte_ref _ -> true | _ -> false)
    false rel

(* Find a Filter node whose input is uncorrelated and whose predicate
   correlates only through equality conjuncts <outer expr> = <inner expr>.
   Such a subquery is evaluated by hashing the input once on the inner keys
   and, per outer row, re-running the plan with the Filter replaced by the
   probed rows. *)
and analyze_hashable ctx rel =
  match Rel_tbl.find_opt ctx.hashed_subqueries rel with
  | Some r -> r
  | None ->
      let result =
        if references_cte rel then None
        else
          let candidates =
            Xtra.fold_rel
              (fun acc r ->
                match r with Xtra.Filter _ -> r :: acc | _ -> acc)
              [] rel
            |> List.rev
          in
          let analyze_candidate f =
            match f with
            | Xtra.Filter { input; pred } when not (is_correlated ctx input) ->
                let input_ids =
                  List.map (fun (c : Xtra.col) -> c.Xtra.id) (Xtra.schema_of input)
                in
                let inner s =
                  let ids = scalar_col_ids s in
                  ids <> [] && List.for_all (fun i -> List.mem i input_ids) ids
                in
                let outer s =
                  let ids = scalar_col_ids s in
                  ids <> [] && List.for_all (fun i -> not (List.mem i input_ids)) ids
                in
                let keys, residual =
                  List.partition_map
                    (fun c ->
                      match c with
                      | Xtra.Cmp (Xtra.Eq, a, b) when outer a && inner b ->
                          Left (a, b)
                      | Xtra.Cmp (Xtra.Eq, a, b) when outer b && inner a ->
                          Left (b, a)
                      | c -> Right c)
                    (split_conjuncts pred)
                in
                if keys = [] then None
                else
                  Some
                    {
                      hs_filter = f;
                      hs_input_schema = Xtra.schema_of input;
                      hs_outer_keys = List.map fst keys;
                      hs_inner_keys = List.map snd keys;
                      hs_residual = residual;
                      hs_groups = None;
                    }
            | _ -> None
          in
          List.fold_left
            (fun acc f -> match acc with Some _ -> acc | None -> analyze_candidate f)
            None candidates
      in
      Rel_tbl.replace ctx.hashed_subqueries rel result;
      result

and replace_rel_node target replacement r =
  if r == target then replacement
  else
    let rr = replace_rel_node target replacement in
    let rs s =
      Xtra.map_scalar
        (fun x ->
          match x with
          | Xtra.Scalar_subquery q -> Xtra.Scalar_subquery (rr q)
          | Xtra.Exists q -> Xtra.Exists (rr q)
          | Xtra.In_subquery i -> Xtra.In_subquery { i with subquery = rr i.subquery }
          | Xtra.Quantified q -> Xtra.Quantified { q with subquery = rr q.subquery }
          | x -> x)
        s
    in
    match r with
    | Xtra.Get _ | Xtra.Values_rel _ | Xtra.Cte_ref _ -> r
    | Xtra.Filter { input; pred } -> Xtra.Filter { input = rr input; pred = rs pred }
    | Xtra.Project { input; proj } ->
        Xtra.Project { input = rr input; proj = List.map (fun (c, e) -> (c, rs e)) proj }
    | Xtra.Join { kind; left; right; pred } ->
        Xtra.Join { kind; left = rr left; right = rr right; pred = Option.map rs pred }
    | Xtra.Aggregate { input; group_by; aggs; grouping_sets } ->
        Xtra.Aggregate
          {
            input = rr input;
            group_by = List.map (fun (c, e) -> (c, rs e)) group_by;
            aggs =
              List.map
                (fun (c, (a : Xtra.agg_def)) -> (c, { a with Xtra.aarg = Option.map rs a.Xtra.aarg }))
                aggs;
            grouping_sets;
          }
    | Xtra.Window { input; windows } -> Xtra.Window { input = rr input; windows }
    | Xtra.Sort { input; sort_keys } -> Xtra.Sort { input = rr input; sort_keys }
    | Xtra.Limit l -> Xtra.Limit { l with input = rr l.input }
    | Xtra.Distinct { input } -> Xtra.Distinct { input = rr input }
    | Xtra.Set_operation s ->
        Xtra.Set_operation { s with left = rr s.left; right = rr s.right }
    | Xtra.With_cte w ->
        Xtra.With_cte
          { w with ctes = List.map (fun (n, q) -> (n, rr q)) w.ctes; body = rr w.body }

and probe_hashed ctx rel hsq =
  let groups =
    match hsq.hs_groups with
    | Some g -> g
    | None ->
        let input =
          match hsq.hs_filter with
          | Xtra.Filter { input; _ } -> input
          | _ -> Sql_error.internal_error "probe_hashed: not a filter"
        in
        let rows = exec ctx input in
        let index = make_index hsq.hs_input_schema in
        let fr = { index; row = [||] } in
        let g = Hashtbl.create (max 16 (List.length rows)) in
        List.iter
          (fun row ->
            fr.row <- row;
            push_frame ctx fr;
            let key = List.map (eval ctx) hsq.hs_inner_keys in
            pop_frame ctx;
            if not (List.exists Value.is_null key) then begin
              let h = group_key_hash key in
              match Hashtbl.find_opt g h with
              | Some l -> (
                  match List.find_opt (fun (k, _) -> group_key_equal k key) !l with
                  | Some (_, rr) -> rr := row :: !rr
                  | None -> l := (key, ref [ row ]) :: !l)
              | None -> Hashtbl.replace g h (ref [ (key, ref [ row ]) ])
            end)
          rows;
        hsq.hs_groups <- Some g;
        g
  in
  let okey = List.map (eval ctx) hsq.hs_outer_keys in
  let candidates =
    if List.exists Value.is_null okey then []
    else
      match Hashtbl.find_opt groups (group_key_hash okey) with
      | Some l -> (
          match List.find_opt (fun (k, _) -> group_key_equal k okey) !l with
          | Some (_, rr) -> List.rev !rr
          | None -> [])
      | None -> []
  in
  let index = make_index hsq.hs_input_schema in
  let fr = { index; row = [||] } in
  let matched =
    List.filter
      (fun row ->
        fr.row <- row;
        push_frame ctx fr;
        let ok =
          List.for_all
            (fun p -> bool3_of_value (eval ctx p) = Some true)
            hsq.hs_residual
        in
        pop_frame ctx;
        ok)
      candidates
  in
  let replacement =
    Xtra.Values_rel
      {
        rows =
          List.map
            (fun row -> Array.to_list (Array.map (fun v -> Xtra.Const v) row))
            matched;
        values_schema = hsq.hs_input_schema;
      }
  in
  exec ctx (replace_rel_node hsq.hs_filter replacement rel)

(* --- sorting ---------------------------------------------------------- *)

and compare_with_key (k : Xtra.sort_key) a b =
  match (a, b) with
  | Value.Null, Value.Null -> 0
  | Value.Null, _ -> ( match k.Xtra.nulls with Xtra.Nulls_first -> -1 | Xtra.Nulls_last -> 1)
  | _, Value.Null -> ( match k.Xtra.nulls with Xtra.Nulls_first -> 1 | Xtra.Nulls_last -> -1)
  | a, b -> (
      let c = Value.compare_total a b in
      match k.Xtra.dir with Xtra.Asc -> c | Xtra.Desc -> -c)

and sort_rows ctx (schema : Xtra.schema) (keys : Xtra.sort_key list) rows =
  let index = make_index schema in
  let frame = { index; row = [||] } in
  let key_values r =
    frame.row <- r;
    push_frame ctx frame;
    let vs = List.map (fun (k : Xtra.sort_key) -> eval ctx k.Xtra.key) keys in
    pop_frame ctx;
    vs
  in
  let decorated = List.map (fun r -> (key_values r, r)) rows in
  let cmp (ka, _) (kb, _) =
    let rec go ks vas vbs =
      match (ks, vas, vbs) with
      | [], _, _ -> 0
      | k :: ks, va :: vas, vb :: vbs ->
          let c = compare_with_key k va vb in
          if c <> 0 then c else go ks vas vbs
      | _ -> 0
    in
    go keys ka kb
  in
  List.map snd (List.stable_sort cmp decorated)

(* --- grouping helpers -------------------------------------------------- *)

and group_key_hash (vs : Value.t list) =
  List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 vs

and group_key_equal a b = List.for_all2 Value.equal_group a b

(* --- aggregation -------------------------------------------------------- *)

and finalize_agg (a : Xtra.agg_def) (values : Value.t list) : Value.t =
  (* [values] are the evaluated argument values in input order (empty for
     COUNT star the list holds a placeholder per row) *)
  let non_null = List.filter (fun v -> not (Value.is_null v)) values in
  let non_null =
    if a.Xtra.adistinct then
      let seen = Hashtbl.create 16 in
      List.filter
        (fun v ->
          let h = Value.hash v in
          let bucket = Hashtbl.find_all seen h in
          if List.exists (Value.equal_group v) bucket then false
          else begin
            Hashtbl.add seen h v;
            true
          end)
        non_null
    else non_null
  in
  match a.Xtra.afunc with
  | Xtra.Count_star -> Value.of_int (List.length values)
  | Xtra.Count -> Value.of_int (List.length non_null)
  | Xtra.Sum ->
      List.fold_left
        (fun acc v -> if Value.is_null acc then v else Value.arith Value.Add acc v)
        Value.Null non_null
  | Xtra.Avg -> (
      let sum =
        List.fold_left
          (fun acc v -> if Value.is_null acc then v else Value.arith Value.Add acc v)
          Value.Null non_null
      in
      match sum with
      | Value.Null -> Value.Null
      | Value.Int n ->
          (* AVG over integers is exact, not integer division *)
          Value.Decimal
            (Decimal.div (Decimal.of_int64 n) (Decimal.of_int (List.length non_null)))
      | s -> Value.arith Value.Div s (Value.of_int (List.length non_null)))
  | Xtra.Min ->
      List.fold_left
        (fun acc v ->
          if Value.is_null acc then v
          else match Value.compare_sql v acc with Some c when c < 0 -> v | _ -> acc)
        Value.Null non_null
  | Xtra.Max ->
      List.fold_left
        (fun acc v ->
          if Value.is_null acc then v
          else match Value.compare_sql v acc with Some c when c > 0 -> v | _ -> acc)
        Value.Null non_null

(* --- window functions --------------------------------------------------- *)

and exec_window ctx input windows =
  exec_window_rows ctx (Xtra.schema_of input) (exec ctx input) windows

(* Row-level window evaluation over already-materialized input; the batch
   executor drains its pipeline into this to keep one window implementation. *)
and exec_window_rows ctx input_schema rows windows =
  let n_win = List.length windows in
  let rows_arr = Array.of_list rows in
  let n = Array.length rows_arr in
  (* computed window values per row *)
  let out = Array.make_matrix n n_win Value.Null in
  let index = make_index input_schema in
  let frame = { index; row = [||] } in
  let eval_row r e =
    frame.row <- r;
    push_frame ctx frame;
    let v = eval ctx e in
    pop_frame ctx;
    v
  in
  List.iteri
    (fun wi ((_ : Xtra.col), (w : Xtra.window_def)) ->
      (* Partition rows, bucketing by the actual (hash, key) identity: the
         hash table is keyed by [group_key_hash] alone and each bucket holds
         an assoc list resolved with [group_key_equal], so two partitions
         whose keys collide at the hash level can never merge.  (A previous
         scheme derived a synthetic bucket id from the hash and the key's
         position in a prepend-list; positions shifted as new colliding keys
         arrived, merging and splitting partitions.) *)
      let parts : (int, (Value.t list * int list ref) list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let order = ref [] in
      for i = n - 1 downto 0 do
        let key = List.map (eval_row rows_arr.(i)) w.Xtra.partition in
        let h = group_key_hash key in
        let bucket =
          match Hashtbl.find_opt parts h with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace parts h l;
              l
        in
        match List.find_opt (fun (k, _) -> group_key_equal k key) !bucket with
        | Some (_, idxs) -> idxs := i :: !idxs
        | None ->
            let idxs = ref [ i ] in
            bucket := (key, idxs) :: !bucket;
            order := idxs :: !order
      done;
      List.iter
        (fun idxs_ref ->
          let idxs = !idxs_ref in
          (* sort partition rows by the window order *)
          let key_values i =
            List.map (fun (k : Xtra.sort_key) -> eval_row rows_arr.(i) k.Xtra.key) w.Xtra.worder
          in
          let decorated = List.map (fun i -> (key_values i, i)) idxs in
          let cmp (ka, ia) (kb, ib) =
            let rec go ks vas vbs =
              match (ks, vas, vbs) with
              | [], _, _ -> Int.compare ia ib
              | k :: ks, va :: vas, vb :: vbs ->
                  let c = compare_with_key k va vb in
                  if c <> 0 then c else go ks vas vbs
              | _ -> Int.compare ia ib
            in
            go w.Xtra.worder ka kb
          in
          let sorted = List.stable_sort cmp decorated in
          let arr = Array.of_list sorted in
          let m = Array.length arr in
          let peer_equal a b =
            let rec go vas vbs ks =
              match (vas, vbs, ks) with
              | [], [], _ -> true
              | va :: vas, vb :: vbs, k :: ks ->
                  compare_with_key k va vb = 0 && go vas vbs ks
              | _ -> true
            in
            go (fst arr.(a)) (fst arr.(b)) w.Xtra.worder
          in
          match w.Xtra.wfunc with
          | Xtra.W_row_number ->
              Array.iteri (fun pos (_, i) -> out.(i).(wi) <- Value.of_int (pos + 1)) arr
          | Xtra.W_rank ->
              let rank = ref 1 in
              Array.iteri
                (fun pos (_, i) ->
                  if pos > 0 && not (peer_equal pos (pos - 1)) then rank := pos + 1;
                  out.(i).(wi) <- Value.of_int !rank)
                arr
          | Xtra.W_dense_rank ->
              let rank = ref 1 in
              Array.iteri
                (fun pos (_, i) ->
                  if pos > 0 && not (peer_equal pos (pos - 1)) then incr rank;
                  out.(i).(wi) <- Value.of_int !rank)
                arr
          | Xtra.W_lag | Xtra.W_lead ->
              let value_expr, offset_expr, default_expr =
                match w.Xtra.wargs with
                | [ e ] -> (e, None, None)
                | [ e; o ] -> (e, Some o, None)
                | [ e; o; d ] -> (e, Some o, Some d)
                | _ -> Sql_error.execution_error "LAG/LEAD take 1 to 3 arguments"
              in
              Array.iteri
                (fun pos (_, i) ->
                  let offset =
                    match offset_expr with
                    | None -> 1
                    | Some o -> (
                        match eval_row rows_arr.(i) o with
                        | Value.Int k -> Int64.to_int k
                        | v ->
                            Sql_error.execution_error
                              "LAG/LEAD offset must be an integer, got %s"
                              (Value.to_string v))
                  in
                  let src =
                    if w.Xtra.wfunc = Xtra.W_lag then pos - offset
                    else pos + offset
                  in
                  out.(i).(wi) <-
                    (if src >= 0 && src < m then
                       let _, j = arr.(src) in
                       eval_row rows_arr.(j) value_expr
                     else
                       match default_expr with
                       | Some d -> eval_row rows_arr.(i) d
                       | None -> Value.Null))
                arr
          | Xtra.W_first_value | Xtra.W_last_value ->
              let value_expr =
                match w.Xtra.wargs with
                | [ e ] -> e
                | _ ->
                    Sql_error.execution_error
                      "FIRST_VALUE/LAST_VALUE take one argument"
              in
              (* whole-partition semantics *)
              let src = if w.Xtra.wfunc = Xtra.W_first_value then 0 else m - 1 in
              let _, j = arr.(src) in
              let v = eval_row rows_arr.(j) value_expr in
              Array.iter (fun (_, i) -> out.(i).(wi) <- v) arr
          | Xtra.W_agg afunc ->
              (* frame boundaries per row *)
              let arg_of i =
                match w.Xtra.wargs with
                | [ e ] -> eval_row rows_arr.(i) e
                | [] -> Value.Bool true (* COUNT star placeholder *)
                | _ -> Sql_error.execution_error "window aggregate takes one argument"
              in
              let default_frame =
                if w.Xtra.worder = [] then
                  { Xtra.frame_unit = `Range; frame_start = Xtra.Unbounded_preceding; frame_end = Xtra.Unbounded_following }
                else
                  { Xtra.frame_unit = `Range; frame_start = Xtra.Unbounded_preceding; frame_end = Xtra.Current_row }
              in
              let fr = Option.value w.Xtra.wframe ~default:default_frame in
              for pos = 0 to m - 1 do
                let lo, hi =
                  match fr.Xtra.frame_unit with
                  | `Rows ->
                      let bound_pos = function
                        | Xtra.Unbounded_preceding -> 0
                        | Xtra.Preceding k -> max 0 (pos - k)
                        | Xtra.Current_row -> pos
                        | Xtra.Following k -> min (m - 1) (pos + k)
                        | Xtra.Unbounded_following -> m - 1
                      in
                      (bound_pos fr.Xtra.frame_start, bound_pos fr.Xtra.frame_end)
                  | `Range ->
                      (* peers extension: only UNBOUNDED/CURRENT supported *)
                      let lo =
                        match fr.Xtra.frame_start with
                        | Xtra.Unbounded_preceding -> 0
                        | Xtra.Current_row ->
                            let rec back p = if p > 0 && peer_equal p (p - 1) then back (p - 1) else p in
                            back pos
                        | _ ->
                            Sql_error.execution_error
                              "RANGE frames support only UNBOUNDED/CURRENT bounds"
                      in
                      let hi =
                        match fr.Xtra.frame_end with
                        | Xtra.Unbounded_following -> m - 1
                        | Xtra.Current_row ->
                            let rec fwd p = if p < m - 1 && peer_equal p (p + 1) then fwd (p + 1) else p in
                            fwd pos
                        | _ ->
                            Sql_error.execution_error
                              "RANGE frames support only UNBOUNDED/CURRENT bounds"
                      in
                      (lo, hi)
                in
                let values = ref [] in
                for q = hi downto lo do
                  let _, i = arr.(q) in
                  values := arg_of i :: !values
                done;
                let values =
                  if afunc = Xtra.Count_star then !values
                  else List.filter (fun v -> not (Value.is_null v)) !values
                  |> fun l -> if afunc = Xtra.Count_star then !values else l
                in
                let _, i = arr.(pos) in
                out.(i).(wi) <-
                  finalize_agg
                    { Xtra.afunc; adistinct = false; aarg = None }
                    values
              done)
        !order)
    windows;
  (* append window columns in original row order *)
  List.mapi
    (fun i r -> Array.append r out.(i))
    (Array.to_list rows_arr)

(* --- joins -------------------------------------------------------------- *)

and scalar_col_ids s =
  let ids = ref [] in
  ignore
    (Xtra.map_scalar
       (fun x ->
         (match x with Xtra.Col_ref c -> ids := c.Xtra.id :: !ids | _ -> ());
         x)
       s);
  !ids

and split_conjuncts = function
  | Xtra.Logic_and (a, b) -> split_conjuncts a @ split_conjuncts b
  | s -> [ s ]

and exec_join ctx kind left right pred =
  let lschema = Xtra.schema_of left and rschema = Xtra.schema_of right in
  let lids = List.map (fun (c : Xtra.col) -> c.Xtra.id) lschema in
  let rids = List.map (fun (c : Xtra.col) -> c.Xtra.id) rschema in
  let lrows = exec ctx left and rrows = exec ctx right in
  let lindex = make_index lschema and rindex = make_index rschema in
  let rwidth = List.length rschema and lwidth = List.length lschema in
  let null_right = Array.make rwidth Value.Null in
  let null_left = Array.make lwidth Value.Null in
  (* split the predicate into hashable equi-conjuncts and a residual *)
  let conjuncts = match pred with Some p -> split_conjuncts p | None -> [] in
  let subset ids of_ids = List.for_all (fun i -> List.mem i of_ids) ids in
  let equi, residual =
    List.partition_map
      (fun c ->
        match c with
        | Xtra.Cmp (Xtra.Eq, a, b)
          when subset (scalar_col_ids a) lids && subset (scalar_col_ids b) rids ->
            Left (a, b)
        | Xtra.Cmp (Xtra.Eq, a, b)
          when subset (scalar_col_ids b) lids && subset (scalar_col_ids a) rids ->
            Left (b, a)
        | c -> Right c)
      conjuncts
  in
  let lframe = { index = lindex; row = [||] } in
  let rframe = { index = rindex; row = [||] } in
  let eval_with2 lrow rrow e =
    lframe.row <- lrow;
    rframe.row <- rrow;
    push_frame ctx lframe;
    push_frame ctx rframe;
    let v = eval ctx e in
    pop_frame ctx;
    pop_frame ctx;
    v
  in
  let residual_ok lrow rrow =
    List.for_all
      (fun c -> bool3_of_value (eval_with2 lrow rrow c) = Some true)
      residual
  in
  let emit lrow rrow = Array.append lrow rrow in
  match kind with
  | Xtra.Cross ->
      List.concat_map
        (fun lrow ->
          List.filter_map
            (fun rrow ->
              if residual_ok lrow rrow && (pred = None || equi = [])
                 || (equi <> []
                     && List.for_all
                          (fun (a, b) ->
                            eval_cmp Xtra.Eq (eval_with2 lrow null_right a)
                              (eval_with2 null_left rrow b)
                            = Some true)
                          equi
                     && residual_ok lrow rrow)
              then Some (emit lrow rrow)
              else None)
            rrows)
        lrows
  | Xtra.Inner | Xtra.Left_outer | Xtra.Right_outer | Xtra.Full_outer ->
      if equi <> [] then begin
        (* hash join *)
        let hash : (int, (Value.t list * row) list ref) Hashtbl.t =
          Hashtbl.create (List.length rrows * 2)
        in
        List.iter
          (fun rrow ->
            let key = List.map (fun (_, b) -> eval_with2 null_left rrow b) equi in
            if not (List.exists Value.is_null key) then begin
              let h = group_key_hash key in
              match Hashtbl.find_opt hash h with
              | Some l -> l := (key, rrow) :: !l
              | None -> Hashtbl.replace hash h (ref [ (key, rrow) ])
            end)
          rrows;
        let right_matched = Hashtbl.create 64 in
        List.iter (fun rrow -> Hashtbl.replace right_matched (Obj.repr rrow) false) rrows;
        let out = ref [] in
        List.iter
          (fun lrow ->
            let key = List.map (fun (a, _) -> eval_with2 lrow null_right a) equi in
            let matches =
              if List.exists Value.is_null key then []
              else
                match Hashtbl.find_opt hash (group_key_hash key) with
                | Some l ->
                    List.filter_map
                      (fun (k, rrow) ->
                        if group_key_equal k key && residual_ok lrow rrow then
                          Some rrow
                        else None)
                      !l
                | None -> []
            in
            if matches = [] then begin
              if kind = Xtra.Left_outer || kind = Xtra.Full_outer then
                out := emit lrow null_right :: !out
            end
            else
              List.iter
                (fun rrow ->
                  Hashtbl.replace right_matched (Obj.repr rrow) true;
                  out := emit lrow rrow :: !out)
                matches)
          lrows;
        if kind = Xtra.Right_outer || kind = Xtra.Full_outer then
          List.iter
            (fun rrow ->
              if Hashtbl.find_opt right_matched (Obj.repr rrow) <> Some true then
                out := emit null_left rrow :: !out)
            rrows;
        List.rev !out
      end
      else begin
        (* nested loop with matched tracking *)
        let pred_ok lrow rrow =
          match pred with
          | None -> true
          | Some p -> bool3_of_value (eval_with2 lrow rrow p) = Some true
        in
        let right_matched = Array.make (List.length rrows) false in
        let rarr = Array.of_list rrows in
        let out = ref [] in
        List.iter
          (fun lrow ->
            let matched = ref false in
            Array.iteri
              (fun j rrow ->
                if pred_ok lrow rrow then begin
                  matched := true;
                  right_matched.(j) <- true;
                  out := emit lrow rrow :: !out
                end)
              rarr;
            if (not !matched) && (kind = Xtra.Left_outer || kind = Xtra.Full_outer)
            then out := emit lrow null_right :: !out)
          lrows;
        if kind = Xtra.Right_outer || kind = Xtra.Full_outer then
          Array.iteri
            (fun j rrow ->
              if not right_matched.(j) then out := emit null_left rrow :: !out)
            rarr;
        List.rev !out
      end

(* --- relational execution ------------------------------------------------ *)

and exec ctx (r : Xtra.rel) : row list =
  match r with
  | Xtra.Get { table; table_schema; _ } ->
      let rows = Storage.scan ctx.storage table in
      let width = List.length table_schema in
      List.map
        (fun row ->
          if Array.length row = width then row
          else Sql_error.internal_error "width mismatch scanning %s" table)
        rows
  | Xtra.Values_rel { rows; _ } ->
      List.map (fun exprs -> Array.of_list (List.map (eval ctx) exprs)) rows
  | Xtra.Filter { input; pred } ->
      let schema = Xtra.schema_of input in
      let index = make_index schema in
      let frame = { index; row = [||] } in
      List.filter
        (fun row ->
          frame.row <- row;
          push_frame ctx frame;
          let keep = bool3_of_value (eval ctx pred) = Some true in
          pop_frame ctx;
          keep)
        (exec ctx input)
  | Xtra.Project { input; proj } ->
      let schema = Xtra.schema_of input in
      let index = make_index schema in
      let frame = { index; row = [||] } in
      List.map
        (fun row ->
          frame.row <- row;
          push_frame ctx frame;
          let out = Array.of_list (List.map (fun (_, e) -> eval ctx e) proj) in
          pop_frame ctx;
          out)
        (exec ctx input)
  | Xtra.Join { kind; left; right; pred } -> exec_join ctx kind left right pred
  | Xtra.Aggregate { grouping_sets = Some _; _ } ->
      Sql_error.internal_error
        "grouping sets must be expanded before reaching the engine"
  | Xtra.Aggregate { input; group_by; aggs; grouping_sets = None } ->
      let schema = Xtra.schema_of input in
      let index = make_index schema in
      let frame = { index; row = [||] } in
      let rows = exec ctx input in
      let with_frame row f =
        frame.row <- row;
        push_frame ctx frame;
        let v = f () in
        pop_frame ctx;
        v
      in
      if group_by = [] then begin
        (* global aggregate: exactly one output row *)
        let agg_values =
          List.map
            (fun (_, (a : Xtra.agg_def)) ->
              let vals =
                List.map
                  (fun row ->
                    with_frame row (fun () ->
                        match a.Xtra.aarg with
                        | Some e -> eval ctx e
                        | None -> Value.Bool true))
                  rows
              in
              finalize_agg a vals)
            aggs
        in
        [ Array.of_list agg_values ]
      end
      else begin
        let groups : (int, (Value.t list * row list ref) list ref) Hashtbl.t =
          Hashtbl.create 64
        in
        let order = ref [] in
        List.iter
          (fun row ->
            let key =
              with_frame row (fun () -> List.map (fun (_, e) -> eval ctx e) group_by)
            in
            let h = group_key_hash key in
            match Hashtbl.find_opt groups h with
            | Some l -> (
                match List.find_opt (fun (k, _) -> group_key_equal k key) !l with
                | Some (_, rows_ref) -> rows_ref := row :: !rows_ref
                | None ->
                    let rref = ref [ row ] in
                    l := (key, rref) :: !l;
                    order := (key, rref) :: !order)
            | None ->
                let rref = ref [ row ] in
                Hashtbl.replace groups h (ref [ (key, rref) ]);
                order := (key, rref) :: !order)
          rows;
        List.rev_map
          (fun (key, rows_ref) ->
            let grows = List.rev !rows_ref in
            let agg_values =
              List.map
                (fun (_, (a : Xtra.agg_def)) ->
                  let vals =
                    List.map
                      (fun row ->
                        with_frame row (fun () ->
                            match a.Xtra.aarg with
                            | Some e -> eval ctx e
                            | None -> Value.Bool true))
                      grows
                  in
                  finalize_agg a vals)
                aggs
            in
            Array.of_list (key @ agg_values))
          !order
      end
  | Xtra.Window { input; windows } -> exec_window ctx input windows
  | Xtra.Sort { input; sort_keys } ->
      sort_rows ctx (Xtra.schema_of input) sort_keys (exec ctx input)
  | Xtra.Limit { input; count; offset; with_ties; percent } ->
      if with_ties || percent then
        Sql_error.internal_error
          "TOP WITH TIES/PERCENT must be expanded before reaching the engine";
      let rows = exec ctx input in
      let eval_int = function
        | None -> None
        | Some e -> (
            match eval ctx e with
            | Value.Int n -> Some (Int64.to_int n)
            | Value.Decimal d -> Some (Int64.to_int (Decimal.to_int64 d))
            | v ->
                Sql_error.execution_error "LIMIT expects an integer, got %s"
                  (Value.to_string v))
      in
      let off = Option.value (eval_int offset) ~default:0 in
      let cnt = eval_int count in
      let rec drop n = function
        | l when n <= 0 -> l
        | [] -> []
        | _ :: tl -> drop (n - 1) tl
      in
      let rec take n = function
        | _ when n = 0 -> []
        | [] -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      let rows = drop off rows in
      (match cnt with Some n -> take (max 0 n) rows | None -> rows)
  | Xtra.Distinct { input } ->
      let seen : (int, Value.t list list ref) Hashtbl.t = Hashtbl.create 64 in
      List.filter
        (fun row ->
          let key = Array.to_list row in
          let h = group_key_hash key in
          match Hashtbl.find_opt seen h with
          | Some l ->
              if List.exists (group_key_equal key) !l then false
              else begin
                l := key :: !l;
                true
              end
          | None ->
              Hashtbl.replace seen h (ref [ key ]);
              true)
        (exec ctx input)
  | Xtra.Set_operation { op; all; left; right } ->
      set_op_rows op all (exec ctx left) (exec ctx right)
  | Xtra.Cte_ref { cte_name; _ } -> (
      match List.assoc_opt (String.uppercase_ascii cte_name) ctx.ctes with
      | Some rows -> rows
      | None -> Sql_error.execution_error "unknown CTE %s" cte_name)
  | Xtra.With_cte { ctes; cte_recursive = false; body } ->
      let saved = ctx.ctes in
      List.iter
        (fun (name, rel) ->
          let rows = exec ctx rel in
          set_ctes ctx ((String.uppercase_ascii name, rows) :: ctx.ctes))
        ctes;
      let rows = exec ctx body in
      set_ctes ctx saved;
      rows
  | Xtra.With_cte { ctes = [ (name, rel) ]; cte_recursive = true; body } -> (
      match rel with
      | Xtra.Set_operation { op = Xtra.Union; all = true; left = seed; right = step }
        ->
          let name = String.uppercase_ascii name in
          let saved = ctx.ctes in
          let acc = ref (exec ctx seed) in
          let delta = ref !acc in
          let iterations = ref 0 in
          while !delta <> [] do
            incr iterations;
            if !iterations > 100_000 then
              Sql_error.execution_error "recursive query exceeded iteration limit";
            (* the version bump invalidates memoized subquery results that
               depend on the CTE; CTE-free memo entries stay valid *)
            set_ctes ctx ((name, !delta) :: saved);
            let next = exec ctx step in
            delta := next;
            acc := !acc @ next
          done;
          set_ctes ctx ((name, !acc) :: saved);
          let rows = exec ctx body in
          set_ctes ctx saved;
          rows
      | _ ->
          Sql_error.execution_error
            "recursive CTE must be <seed> UNION ALL <recursive step>")
  | Xtra.With_cte { cte_recursive = true; _ } ->
      Sql_error.execution_error "multiple recursive CTEs are not supported"

(* Set-operation semantics over materialized inputs; shared with the batch
   executor, which drains both sides of its pipeline into this. *)
and set_op_rows op all (lrows : row list) (rrows : row list) : row list =
  let dedup rows =
    let seen : (int, Value.t list list ref) Hashtbl.t = Hashtbl.create 64 in
    List.filter
      (fun row ->
        let key = Array.to_list row in
        let h = group_key_hash key in
        match Hashtbl.find_opt seen h with
        | Some l ->
            if List.exists (group_key_equal key) !l then false
            else begin
              l := key :: !l;
              true
            end
        | None ->
            Hashtbl.replace seen h (ref [ key ]);
            true)
      rows
  in
  let contains rows row =
    let key = Array.to_list row in
    List.exists (fun r -> group_key_equal (Array.to_list r) key) rows
  in
  match (op, all) with
  | Xtra.Union, true -> lrows @ rrows
  | Xtra.Union, false -> dedup (lrows @ rrows)
  | Xtra.Intersect, false -> dedup (List.filter (contains rrows) lrows)
  | Xtra.Intersect, true ->
      (* bag intersect: multiplicity = min of the two sides *)
      let remaining = ref rrows in
      List.filter
        (fun l ->
          let rec remove acc = function
            | [] -> None
            | r :: tl ->
                if group_key_equal (Array.to_list r) (Array.to_list l) then
                  Some (List.rev_append acc tl)
                else remove (r :: acc) tl
          in
          match remove [] !remaining with
          | Some rest ->
              remaining := rest;
              true
          | None -> false)
        lrows
  | Xtra.Except, false ->
      dedup (List.filter (fun l -> not (contains rrows l)) lrows)
  | Xtra.Except, true ->
      let remaining = ref rrows in
      List.filter
        (fun l ->
          let rec remove acc = function
            | [] -> None
            | r :: tl ->
                if group_key_equal (Array.to_list r) (Array.to_list l) then
                  Some (List.rev_append acc tl)
                else remove (r :: acc) tl
          in
          match remove [] !remaining with
          | Some rest ->
              remaining := rest;
              false
          | None -> true)
        lrows
