(** Fault injection for the backend boundary.

    A {!t} sits on the request path between the ODBC Server and the target
    engine: before each request is forwarded, {!check} consults a seeded
    schedule and may raise a transient error, raise a persistent-outage
    error, or inject a latency spike. Faults are indexed by the backend
    request counter, so a given seed + schedule reproduces the exact same
    failure timeline — which is what makes the resilience tests and the
    [resilience] bench deterministic.

    Injected errors carry {!Hyperq_sqlvalue.Sql_error.kind}
    [Transient_error]: a persistently-failing backend looks to the caller
    like an endless run of transient failures, exactly as a dead TCP peer
    does, and it is the resilience layer's job to stop retrying. *)

type fault =
  | Transient  (** fail this request; a retry may succeed *)
  | Persistent  (** backend outage: fail this and every later request *)
  | Latency of float  (** delay this request by the given seconds *)

type t

(** [create ~seed ~sleep ()] — an inactive injector. [seed] drives the
    {!random_transients} schedule; [sleep] implements latency spikes
    (injectable so tests need not really wait). *)
val create : ?seed:int -> ?sleep:(float -> unit) -> unit -> t

(** Inject [fault] when the request counter reaches [at] (0-based). *)
val schedule : t -> at:int -> fault -> unit

(** Each upcoming request in [0, first_n) (by absolute request index) fails
    transiently with probability [p], decided by the injector's seeded RNG. *)
val random_transients : t -> p:float -> first_n:int -> unit

(** Every request from [from_request] on fails (a backend outage). *)
val persistent_outage : t -> from_request:int -> unit

(** Lift all faults — the backend has "recovered". The request counter keeps
    counting. *)
val clear : t -> unit

(** Called by the ODBC server before each forwarded request; may sleep
    and/or raise [Sql_error] [Transient_error]. *)
val check : t -> unit

val requests_seen : t -> int

(** (transient, persistent, latency) injections so far. *)
val injected : t -> int * int * int
