(** Server-side WP-A protocol state machine (paper §4.1).

    "The Protocol Handler component is responsible [for] intercepting the
    network message flow submitted by the application, extracting important
    pieces of information on-the-fly, e.g. application credentials or
    payloads of application requests, and passing this information down to
    [the] Hyper-Q engine for further processing."

    The handler is transport-agnostic: [feed] it raw bytes, and it emits
    response bytes. Query execution is delegated to the [executor]
    callback, which the gateway wires to the translation pipeline. *)

open Hyperq_sqlvalue

type query_result = {
  qr_columns : Message.column list;
  qr_rows : Value.t array list;
  qr_activity : string;
  qr_count : int;
}

type executor = sql:string -> (query_result, Sql_error.t) result

type phase =
  | Awaiting_logon
  | Challenged of { username : string; salt : string }
  | Authenticated of { username : string; session_id : int }
  | Closed

type t = {
  users : Auth.user_db;
  executor : executor;
  mutable phase : phase;
  mutable inbox : string;  (** unconsumed raw bytes *)
  records_per_parcel : int;
  max_frame_bytes : int;
  mutable messages_handled : int;
  mutable protocol_errors : int;
}

let session_counter = ref 0
let default_max_frame_bytes = 4 * 1024 * 1024

let create ?(records_per_parcel = 128)
    ?(max_frame_bytes = default_max_frame_bytes) ~users ~executor () =
  {
    users;
    executor;
    phase = Awaiting_logon;
    inbox = "";
    records_per_parcel;
    max_frame_bytes;
    messages_handled = 0;
    protocol_errors = 0;
  }

let rec chunk n = function
  | [] -> []
  | l ->
      let rec take k = function
        | x :: tl when k > 0 ->
            let h, t = take (k - 1) tl in
            (x :: h, t)
        | rest -> ([], rest)
      in
      let h, t = take n l in
      h :: chunk n t

(** Process one decoded client message, returning response messages. *)
let handle_message t (m : Message.t) : Message.t list =
  t.messages_handled <- t.messages_handled + 1;
  match (t.phase, m) with
  | Awaiting_logon, Message.Logon_request { username } ->
      let salt = Auth.fresh_salt () in
      t.phase <- Challenged { username; salt };
      [ Message.Logon_challenge { salt } ]
  | Challenged { username; salt }, Message.Logon_auth { username = u2; proof } ->
      if u2 <> username then begin
        t.phase <- Awaiting_logon;
        [ Message.Logon_response { success = false; session_id = 0; message = "user mismatch" } ]
      end
      else if Auth.check t.users ~username ~salt ~given:proof then begin
        incr session_counter;
        let session_id = !session_counter in
        t.phase <- Authenticated { username; session_id };
        [
          Message.Logon_response
            { success = true; session_id; message = "logon complete" };
        ]
      end
      else begin
        t.phase <- Awaiting_logon;
        [
          Message.Logon_response
            { success = false; session_id = 0; message = "authentication failed" };
        ]
      end
  | Authenticated _, Message.Run_request { sql } -> (
      match t.executor ~sql with
      | Ok qr ->
          let record_parcels =
            if qr.qr_rows = [] then []
            else
              let cols =
                List.map
                  (fun (c : Message.column) ->
                    { Record.rc_name = c.Message.col_name; rc_type = c.Message.col_type })
                  qr.qr_columns
              in
              List.map
                (fun rows ->
                  Message.Records
                    { payload = List.map (Record.encode_row cols) rows })
                (chunk t.records_per_parcel qr.qr_rows)
          in
          (Message.Response_header { columns = qr.qr_columns } :: record_parcels)
          @ [
              Message.Success
                { activity_count = qr.qr_count; activity = qr.qr_activity };
            ]
      | Error e ->
          let code =
            match e.Sql_error.kind with
            | Sql_error.Parse_error -> 3706
            | Sql_error.Bind_error -> 3807
            | Sql_error.Unsupported | Sql_error.Capability_gap -> 5505
            | Sql_error.Execution_error -> 2616
            | Sql_error.Transient_error -> 2631
            | Sql_error.Unavailable -> 3897
            | Sql_error.Protocol_error -> 1000
            | Sql_error.Conversion_error -> 2620
            | Sql_error.Internal_error -> 9999
          in
          [ Message.Failure { code; message = Sql_error.to_string e } ])
  | Authenticated _, Message.Logoff | _, Message.Logoff ->
      t.phase <- Closed;
      []
  | _, m ->
      [
        Message.Failure
          {
            code = 1001;
            message =
              Printf.sprintf "protocol violation: unexpected %s" (Message.to_string m);
          };
      ]

(* Peek at the length prefix of the frame starting at [pos]; [None] when
   fewer than 6 header bytes are buffered. *)
let peek_frame_len data pos =
  if String.length data - pos < 6 then None
  else
    let b i = Char.code data.[pos + 2 + i] in
    Some ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3)

(* A malformed stream cannot be resynchronized (framing is length-prefixed,
   so one bad frame poisons every byte after it): report a structured
   Failure parcel and close the conversation instead of raising into the
   transport. *)
let poison t fmt =
  Printf.ksprintf
    (fun msg ->
      t.protocol_errors <- t.protocol_errors + 1;
      t.phase <- Closed;
      Message.encode_frame (Message.Failure { code = 1000; message = msg }))
    fmt

(** Feed raw bytes; returns the raw response bytes generated by any complete
    frames found. Partial frames remain buffered. Malformed input — a length
    prefix beyond [max_frame_bytes] or a payload that fails to decode —
    yields a structured [Failure] (code 1000) and closes the handler rather
    than raising. *)
let feed t (bytes : string) : string =
  if t.phase = Closed then ""
  else begin
    t.inbox <- t.inbox ^ bytes;
    let out = Buffer.create 256 in
    let rec loop pos =
      match peek_frame_len t.inbox pos with
      | Some len when len > t.max_frame_bytes ->
          Buffer.add_string out
            (poison t
               "protocol error: frame length %d exceeds the %d-byte limit"
               len t.max_frame_bytes);
          `Poisoned
      | _ -> (
          match Message.decode_frame t.inbox pos with
          | None -> `Consumed pos
          | Some (m, next) ->
              List.iter
                (fun resp -> Buffer.add_string out (Message.encode_frame resp))
                (handle_message t m);
              if t.phase = Closed then `Poisoned (* logoff: drop the rest *)
              else loop next
          | exception Sql_error.Error e
            when e.Sql_error.kind = Sql_error.Protocol_error ->
              Buffer.add_string out (poison t "%s" e.Sql_error.message);
              `Poisoned)
    in
    (match loop 0 with
    | `Poisoned -> t.inbox <- "" (* closed: later bytes can't be framed *)
    | `Consumed consumed ->
        t.inbox <-
          String.sub t.inbox consumed (String.length t.inbox - consumed));
    Buffer.contents out
  end

let is_authenticated t =
  match t.phase with Authenticated _ -> true | _ -> false

let is_closed t = t.phase = Closed
let protocol_errors t = t.protocol_errors
