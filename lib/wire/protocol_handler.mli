(** Server-side WP-A protocol state machine (paper §4.1).

    Transport-agnostic: feed it raw bytes, it emits response bytes. Query
    execution is delegated to the [executor] callback, which the gateway
    wires to the translation pipeline. *)

open Hyperq_sqlvalue

type query_result = {
  qr_columns : Message.column list;
  qr_rows : Value.t array list;
  qr_activity : string;
  qr_count : int;
}

type executor = sql:string -> (query_result, Sql_error.t) result

type t

(** [create ~records_per_parcel ~max_frame_bytes ~users ~executor ()] —
    results are split into [Records] parcels of at most [records_per_parcel]
    rows (default 128). [max_frame_bytes] (default 4 MiB) bounds a single
    inbound frame's declared payload length; a prefix beyond it is treated
    as a protocol error rather than buffered forever. *)
val create :
  ?records_per_parcel:int ->
  ?max_frame_bytes:int ->
  users:Auth.user_db ->
  executor:executor ->
  unit ->
  t

val default_max_frame_bytes : int

(** Process one decoded client message; returns the response messages. Out-
    of-order messages yield a protocol-violation [Failure]. *)
val handle_message : t -> Message.t -> Message.t list

(** Feed raw bytes; returns the raw response bytes produced by any complete
    frames. Partial frames stay buffered. Malformed input — an oversized
    length prefix or a payload that fails to decode — never raises: the
    handler answers with a structured [Failure] (code 1000) and closes,
    because a length-prefixed stream cannot be resynchronized past a bad
    frame. Once closed, further bytes are ignored. *)
val feed : t -> string -> string

val is_authenticated : t -> bool
val is_closed : t -> bool

(** Malformed-input events seen by this handler. *)
val protocol_errors : t -> int
