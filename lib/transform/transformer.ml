(** The Transformer: fixed-point driver over pluggable XTRA rewrite rules
    (paper §4.3).

    Rules come in two tiers, mirroring §5.2/5.3 of the paper:

    - {e normalization} rules are target-independent and run right after
      binding (e.g. [comp_date_to_int], which expands Teradata's DATE/INT
      comparison into the [DAY + MONTH*100 + (YEAR-1900)*10000] arithmetic);
    - {e target} rules are gated on the backend's {!Capability.t} and run
      before serialization (e.g. [expand_vector_subquery], which turns a
      quantified row-value comparison into a correlated EXISTS for backends
      that lack the construct).

    The driver applies every enabled rule repeatedly until a fixed point is
    reached, exactly as described in the paper ("running all relevant
    transformations repeatedly until reaching a fixed point"). *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra

type ctx = {
  cap : Capability.t;
  counter : int ref;  (** continues the binder's column-id supply *)
  mutable applied : (string * int) list;  (** rule name -> fire count *)
}

let create_ctx ~cap ~counter = { cap; counter; applied = [] }

let fired ctx name =
  ctx.applied <-
    (match List.assoc_opt name ctx.applied with
    | Some n -> (name, n + 1) :: List.remove_assoc name ctx.applied
    | None -> (name, 1) :: ctx.applied)

let fresh_col ctx name ty =
  let id = !(ctx.counter) in
  incr ctx.counter;
  { Xtra.id; name; ty }

(* ------------------------------------------------------------------ *)
(* Rule: Teradata DATE/INT comparison (normalization; paper §5.2)       *)
(* ------------------------------------------------------------------ *)

let date_to_int_expr d =
  (* DAY + (MONTH * 100) + (YEAR - 1900) * 10000 *)
  Xtra.Arith
    ( Xtra.Add,
      Xtra.Arith
        ( Xtra.Add,
          Xtra.Extract (Xtra.Day, d),
          Xtra.Arith (Xtra.Mul, Xtra.Extract (Xtra.Month, d), Xtra.cint 100) ),
      Xtra.Arith
        ( Xtra.Mul,
          Xtra.Arith (Xtra.Sub, Xtra.Extract (Xtra.Year, d), Xtra.cint 1900),
          Xtra.cint 10000 ) )

let comp_date_to_int ctx s =
  match s with
  | Xtra.Cmp (op, a, b) -> (
      let ta = Xtra.type_of_scalar a and tb = Xtra.type_of_scalar b in
      match (ta, tb) with
      | Dtype.Date, Dtype.Int ->
          fired ctx "comp_date_to_int";
          Some (Xtra.Cmp (op, date_to_int_expr a, b))
      | Dtype.Int, Dtype.Date ->
          fired ctx "comp_date_to_int";
          Some (Xtra.Cmp (op, a, date_to_int_expr b))
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule: vector subquery -> correlated EXISTS (paper §5.3)              *)
(* ------------------------------------------------------------------ *)

(* Lexicographic expansion: (l1,..,ln) OP (c1,..,cn). For OP in {>,>=,<,<=}
   ties propagate to the next component; the last component uses OP itself.
   For = it is a conjunction of equalities; <> is its negation. *)
let rec vector_cmp op lhs cols =
  match (lhs, cols) with
  | [ l ], [ c ] -> Xtra.Cmp (op, l, Xtra.Col_ref c)
  | l :: ls, c :: cs -> (
      match op with
      | Xtra.Eq ->
          Xtra.Logic_and (Xtra.Cmp (Xtra.Eq, l, Xtra.Col_ref c), vector_cmp op ls cs)
      | Xtra.Neq ->
          Xtra.Logic_not
            (vector_cmp Xtra.Eq (l :: ls) (c :: cs))
      | Xtra.Gt | Xtra.Gte ->
          Xtra.Logic_or
            ( Xtra.Cmp (Xtra.Gt, l, Xtra.Col_ref c),
              Xtra.Logic_and
                (Xtra.Cmp (Xtra.Eq, l, Xtra.Col_ref c), vector_cmp op ls cs) )
      | Xtra.Lt | Xtra.Lte ->
          Xtra.Logic_or
            ( Xtra.Cmp (Xtra.Lt, l, Xtra.Col_ref c),
              Xtra.Logic_and
                (Xtra.Cmp (Xtra.Eq, l, Xtra.Col_ref c), vector_cmp op ls cs) ))
  | _ -> Sql_error.internal_error "vector comparison arity mismatch"

let negate_cmp = function
  | Xtra.Eq -> Xtra.Neq
  | Xtra.Neq -> Xtra.Eq
  | Xtra.Lt -> Xtra.Gte
  | Xtra.Lte -> Xtra.Gt
  | Xtra.Gt -> Xtra.Lte
  | Xtra.Gte -> Xtra.Lt

let expand_vector_subquery ctx s =
  if ctx.cap.Capability.vector_subquery then None
  else
    match s with
    | Xtra.Quantified { lhs; op; quant; subquery } when List.length lhs > 1 ->
        fired ctx "expand_vector_subquery";
        let cols = Xtra.schema_of subquery in
        let pred, negate =
          match quant with
          | Xtra.Any -> (vector_cmp op lhs cols, false)
          | Xtra.All -> (vector_cmp (negate_cmp op) lhs cols, true)
        in
        let filtered = Xtra.Filter { input = subquery; pred } in
        (* paper Figure 6: "remap consts: (1)" — emit SELECT 1 *)
        let one = fresh_col ctx "ONE" Dtype.Int in
        let projected =
          Xtra.Project { input = filtered; proj = [ (one, Xtra.cint 1) ] }
        in
        Some
          (if negate then Xtra.Logic_not (Xtra.Exists projected)
           else Xtra.Exists projected)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule: case-insensitive (NOT CASESPECIFIC) comparison                 *)
(* ------------------------------------------------------------------ *)

let is_case_insensitive_col = function
  | Xtra.Col_ref { ty = Dtype.Varchar { case_sensitive = false; _ }; _ } -> true
  | _ -> false

let upper e =
  Xtra.Func
    {
      name = "UPPER";
      args = [ e ];
      ty = Dtype.Varchar { max_len = None; case_sensitive = true };
    }

let case_insensitive_compare ctx s =
  if ctx.cap.Capability.case_insensitive_collation then None
  else
    match s with
    | Xtra.Cmp (op, a, b)
      when is_case_insensitive_col a || is_case_insensitive_col b ->
        fired ctx "case_insensitive_compare";
        Some (Xtra.Cmp (op, upper a, upper b))
    | Xtra.Like { arg; pattern; escape; negated }
      when is_case_insensitive_col arg ->
        (* NOT CASESPECIFIC applies to LIKE as well *)
        fired ctx "case_insensitive_compare";
        Some
          (Xtra.Like { arg = upper arg; pattern = upper pattern; escape; negated })
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule: date +/- INTERVAL -> ADD_DAYS / ADD_MONTHS                     *)
(* ------------------------------------------------------------------ *)

let interval_to_functions ctx s =
  if ctx.cap.Capability.interval_arithmetic then None
  else
    match s with
    | Xtra.Arith (((Xtra.Add | Xtra.Sub) as op), d, Xtra.Const (Value.Interval i))
      when Xtra.type_of_scalar d = Dtype.Date ->
        fired ctx "interval_to_functions";
        let sign = if op = Xtra.Add then 1 else -1 in
        let with_months =
          if i.Interval.months <> 0 then
            Xtra.Func
              {
                name = "ADD_MONTHS";
                args = [ d; Xtra.cint (sign * i.Interval.months) ];
                ty = Dtype.Date;
              }
          else d
        in
        let with_days =
          if i.Interval.days <> 0 then
            Xtra.Func
              {
                name = "ADD_DAYS";
                args = [ with_months; Xtra.cint (sign * i.Interval.days) ];
                ty = Dtype.Date;
              }
          else with_months
        in
        Some with_days
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule: GROUPING SETS / ROLLUP / CUBE -> UNION ALL (paper Table 2)     *)
(* ------------------------------------------------------------------ *)

let expand_grouping_sets ctx r =
  if ctx.cap.Capability.grouping_sets then None
  else
    match r with
    | Xtra.Aggregate { input; group_by; aggs; grouping_sets = Some sets } ->
        fired ctx "expand_grouping_sets";
        let branch i set =
          let in_set j = List.mem j set in
          let kept = List.filteri (fun j _ -> in_set j) group_by in
          let agg =
            if i = 0 then
              Xtra.Aggregate
                { input; group_by = kept; aggs; grouping_sets = None }
            else
              (* later branches need fresh output ids *)
              let kept =
                List.map (fun ((c : Xtra.col), e) -> (fresh_col ctx c.Xtra.name c.Xtra.ty, e)) kept
              in
              let aggs =
                List.map (fun ((c : Xtra.col), a) -> (fresh_col ctx c.Xtra.name c.Xtra.ty, a)) aggs
              in
              Xtra.Aggregate
                { input; group_by = kept; aggs; grouping_sets = None }
          in
          (* align to the original full output schema with NULL padding *)
          let agg_schema = Xtra.schema_of agg in
          let kept_cols = List.filteri (fun j _ -> in_set j) group_by in
          let target_cols =
            if i = 0 then List.map fst group_by @ List.map fst aggs
            else
              List.map
                (fun ((c : Xtra.col), _) -> fresh_col ctx c.Xtra.name c.Xtra.ty)
                group_by
              @ List.map
                  (fun ((c : Xtra.col), _) -> fresh_col ctx c.Xtra.name c.Xtra.ty)
                  aggs
          in
          let proj =
            List.mapi
              (fun j (target : Xtra.col) ->
                if j < List.length group_by then
                  if in_set j then
                    (* position of j within the kept columns *)
                    let pos =
                      List.length (List.filter (fun k -> k < j) set)
                    in
                    (target, Xtra.Col_ref (List.nth agg_schema pos))
                  else (target, Xtra.Cast (Xtra.cnull, target.Xtra.ty))
                else
                  let pos =
                    List.length kept_cols + (j - List.length group_by)
                  in
                  (target, Xtra.Col_ref (List.nth agg_schema pos)))
              target_cols
          in
          Xtra.Project { input = agg; proj }
        in
        let branches = List.mapi branch sets in
        (match branches with
        | [] -> None
        | [ b ] -> Some b
        | b :: rest ->
            Some
              (List.fold_left
                 (fun acc r ->
                   Xtra.Set_operation
                     { op = Xtra.Union; all = true; left = acc; right = r })
                 b rest))
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule: TOP n WITH TIES -> RANK window (when the target lacks it)      *)
(* ------------------------------------------------------------------ *)

let with_ties_over_sort ctx input sort_keys c =
        fired ctx "with_ties_to_window";
        let schema = Xtra.schema_of input in
        let rank_col = fresh_col ctx "TIES_RANK" Dtype.Int in
        let windowed =
          Xtra.Window
            {
              input;
              windows =
                [
                  ( rank_col,
                    {
                      Xtra.wfunc = Xtra.W_rank;
                      wargs = [];
                      partition = [];
                      worder = sort_keys;
                      wframe = None;
                    } );
                ];
            }
        in
        let filtered =
          Xtra.Filter
            { input = windowed; pred = Xtra.Cmp (Xtra.Lte, Xtra.Col_ref rank_col, c) }
        in
        let sorted = Xtra.Sort { input = filtered; sort_keys } in
        Xtra.Project
          {
            input = sorted;
            proj = List.map (fun (col : Xtra.col) -> (col, Xtra.Col_ref col)) schema;
          }

let with_ties_to_window ctx r =
  if ctx.cap.Capability.with_ties then None
  else
    match r with
    | Xtra.Limit
        {
          input = Xtra.Sort { input; sort_keys };
          count = Some c;
          offset = None;
          with_ties = true;
          percent = false;
        } ->
        Some (with_ties_over_sort ctx input sort_keys c)
    | Xtra.Limit
        {
          input = Xtra.Project { input = Xtra.Sort { input; sort_keys }; proj };
          count = Some c;
          offset = None;
          with_ties = true;
          percent = false;
        } ->
        (* the binder's hidden-sort-column wrapper: push the ties machinery
           below the stripping projection *)
        Some (Xtra.Project { input = with_ties_over_sort ctx input sort_keys c; proj })
    | Xtra.Limit { input; count = Some c; offset = None; with_ties = true; percent = false }
      ->
        (* unordered TOP WITH TIES degenerates to a plain limit *)
        Some
          (Xtra.Limit
             { input; count = Some c; offset = None; with_ties = false; percent = false })
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule: TOP n PERCENT -> ROW_NUMBER / COUNT star OVER ()                 *)
(* ------------------------------------------------------------------ *)

let percent_limit ctx r =
  match r with
  | Xtra.Limit { input; count = Some c; offset = None; with_ties = false; percent = true }
    ->
      fired ctx "percent_limit";
      let inner, sort_keys =
        match input with
        | Xtra.Sort { input; sort_keys } -> (input, sort_keys)
        | other -> (other, [])
      in
      let schema = Xtra.schema_of inner in
      let rn = fresh_col ctx "PCT_RN" Dtype.Int in
      let cnt = fresh_col ctx "PCT_CNT" Dtype.Int in
      let windowed =
        Xtra.Window
          {
            input = inner;
            windows =
              [
                ( rn,
                  {
                    Xtra.wfunc = Xtra.W_row_number;
                    wargs = [];
                    partition = [];
                    worder = sort_keys;
                    wframe = None;
                  } );
                ( cnt,
                  {
                    Xtra.wfunc = Xtra.W_agg Xtra.Count_star;
                    wargs = [];
                    partition = [];
                    worder = [];
                    wframe = None;
                  } );
              ];
          }
      in
      (* rn <= ceil(cnt * pct / 100)  <=>  (rn - 1) * 100 < cnt * pct *)
      let pred =
        Xtra.Cmp
          ( Xtra.Lt,
            Xtra.Arith
              ( Xtra.Mul,
                Xtra.Arith (Xtra.Sub, Xtra.Col_ref rn, Xtra.cint 1),
                Xtra.cint 100 ),
            Xtra.Arith (Xtra.Mul, Xtra.Col_ref cnt, c) )
      in
      let filtered = Xtra.Filter { input = windowed; pred } in
      let sorted =
        if sort_keys = [] then filtered
        else Xtra.Sort { input = filtered; sort_keys }
      in
      Some
        (Xtra.Project
           {
             input = sorted;
             proj = List.map (fun (col : Xtra.col) -> (col, Xtra.Col_ref col)) schema;
           })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule: explicit NULLS ordering for targets without the syntax         *)
(* ------------------------------------------------------------------ *)

(* Natural placement of NULLs on a target that sorts NULLs low. *)
let natural_nulls dir =
  match dir with Xtra.Asc -> Xtra.Nulls_first | Xtra.Desc -> Xtra.Nulls_last

let explicit_nulls_ordering ctx r =
  if ctx.cap.Capability.nulls_ordering_syntax then None
  else
    let rewrite_keys keys =
      let needs_fix =
        List.exists (fun (k : Xtra.sort_key) -> k.Xtra.nulls <> natural_nulls k.Xtra.dir) keys
      in
      if not needs_fix then None
      else
        Some
          (List.concat_map
             (fun (k : Xtra.sort_key) ->
               if k.Xtra.nulls = natural_nulls k.Xtra.dir then [ k ]
               else
                 (* inject CASE WHEN k IS NULL THEN 0 ELSE 1 END as a leading
                    key to force the requested NULL placement *)
                 let null_rank =
                   match k.Xtra.nulls with
                   | Xtra.Nulls_first -> (Xtra.cint 0, Xtra.cint 1)
                   | Xtra.Nulls_last -> (Xtra.cint 1, Xtra.cint 0)
                 in
                 let case =
                   Xtra.Case
                     {
                       branches = [ (Xtra.Is_null (k.Xtra.key, false), fst null_rank) ];
                       else_branch = Some (snd null_rank);
                       ty = Dtype.Int;
                     }
                 in
                 [
                   { Xtra.key = case; dir = Xtra.Asc; nulls = natural_nulls Xtra.Asc };
                   { k with Xtra.nulls = natural_nulls k.Xtra.dir };
                 ])
             keys)
    in
    match r with
    | Xtra.Sort { input; sort_keys } -> (
        match rewrite_keys sort_keys with
        | Some keys ->
            fired ctx "explicit_nulls_ordering";
            Some (Xtra.Sort { input; sort_keys = keys })
        | None -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Statement rule: decompose PERIOD columns in DDL (paper §2.2.2)       *)
(* ------------------------------------------------------------------ *)

let decompose_period_ddl ctx st =
  if ctx.cap.Capability.period_type then None
  else
    match st with
    | Xtra.Create_table
        { ct_name; persistence; specs; set_semantics; ct_if_not_exists }
      when List.exists
             (fun (s : Xtra.column_spec) ->
               match s.Xtra.spec_type with Dtype.Period _ -> true | _ -> false)
             specs ->
        fired ctx "decompose_period_ddl";
        let specs =
          List.concat_map
            (fun (s : Xtra.column_spec) ->
              match s.Xtra.spec_type with
              | Dtype.Period base ->
                  let t =
                    match base with
                    | Dtype.Pdate -> Dtype.Date
                    | Dtype.Ptimestamp -> Dtype.Timestamp
                  in
                  [
                    { s with Xtra.spec_name = s.Xtra.spec_name ^ "_BEGIN"; spec_type = t; spec_default = None };
                    { s with Xtra.spec_name = s.Xtra.spec_name ^ "_END"; spec_type = t; spec_default = None };
                  ]
              | _ -> [ s ])
            specs
        in
        Some
          (Xtra.Create_table
             { ct_name; persistence; specs; set_semantics; ct_if_not_exists })
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let scalar_rules = [ expand_vector_subquery; case_insensitive_compare; interval_to_functions ]
let normalization_scalar_rules = [ comp_date_to_int ]
let rel_rules = [ expand_grouping_sets; with_ties_to_window; percent_limit; explicit_nulls_ordering ]
let statement_rules = [ decompose_period_ddl ]

let apply_first rules ctx x =
  List.fold_left
    (fun acc rule -> match acc with Some _ -> acc | None -> rule ctx x)
    None rules

let max_passes = 12

(* Rule names whose fire count increased between two [ctx.applied]
   snapshots: the rules responsible for one fixed-point pass. *)
let fired_since before after =
  List.filter_map
    (fun (name, n) ->
      match List.assoc_opt name before with
      | Some m when m >= n -> None
      | _ -> Some name)
    after

(** Run normalization + target-dependent rules to a fixed point over the
    statement. Returns the transformed statement; fired-rule counts are in
    [ctx.applied].

    [on_pass i rules st'] is invoked after every pass that changed the
    statement, with the pass index, the rules that fired during it and the
    statement as it stands — the plan validator hooks in here to attribute a
    fresh invariant violation to the rewrite that introduced it.
    [extra_scalar_rules]/[extra_rel_rules] append caller-supplied rules to
    the built-in sets (tests inject deliberately broken rewrites to prove
    the validator catches them). *)
let run ?on_pass ?(extra_scalar_rules = []) ?(extra_rel_rules = []) ctx
    (st : Xtra.statement) : Xtra.statement =
  let pass st =
    let fscalar s =
      match
        apply_first
          (normalization_scalar_rules @ scalar_rules @ extra_scalar_rules)
          ctx s
      with
      | Some s' -> s'
      | None -> s
    in
    let frel r =
      match apply_first (rel_rules @ extra_rel_rules) ctx r with
      | Some r' -> r'
      | None -> r
    in
    let st = Xtra.rewrite_statement ~frel ~fscalar st in
    match apply_first statement_rules ctx st with Some s -> s | None -> st
  in
  let rec fix st n =
    if n >= max_passes then st
    else
      let before = ctx.applied in
      let st' = pass st in
      if st' = st then st
      else begin
        (match on_pass with
        | Some f -> f n (fired_since before ctx.applied) st'
        | None -> ());
        fix st' (n + 1)
      end
  in
  fix st 0

(** Convenience wrapper used by the pipeline. *)
let transform ?on_pass ?extra_scalar_rules ?extra_rel_rules ~cap ~counter st =
  let ctx = create_ctx ~cap ~counter in
  let st = run ?on_pass ?extra_scalar_rules ?extra_rel_rules ctx st in
  (st, ctx.applied)
