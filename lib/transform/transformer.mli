(** The Transformer: fixed-point driver over pluggable XTRA rewrite rules
    (paper §4.3).

    Normalization rules are target-independent (Teradata DATE/INT comparison
    expansion, §5.2); target rules are gated on the backend's
    {!Capability.t} (vector subquery → EXISTS §5.3, grouping-set expansion,
    TOP WITH TIES/PERCENT lowering, NOT CASESPECIFIC comparison wrapping,
    interval-arithmetic lowering, PERIOD DDL decomposition). All enabled
    rules run repeatedly until a fixed point. *)

module Xtra = Hyperq_xtra.Xtra

type ctx = {
  cap : Capability.t;
  counter : int ref;  (** continues the binder's column-id supply *)
  mutable applied : (string * int) list;  (** rule name → fire count *)
}

val create_ctx : cap:Capability.t -> counter:int ref -> ctx

(** The paper's §5.2 arithmetic: [DAY + MONTH*100 + (YEAR-1900)*10000]. *)
val date_to_int_expr : Xtra.scalar -> Xtra.scalar

(** Record that [rule] fired (bumps its count in [ctx.applied]). Exposed so
    caller-injected rules participate in attribution. *)
val fired : ctx -> string -> unit

(** Run all rules to a fixed point; fired counts accumulate in
    [ctx.applied]. [on_pass i rules st'] runs after each pass that changed
    the statement, with the rules that fired during it — the plan validator
    hooks in here to attribute fresh violations to the responsible rewrite.
    [extra_scalar_rules]/[extra_rel_rules] append caller-supplied rules to
    the built-in sets. *)
val run :
  ?on_pass:(int -> string list -> Xtra.statement -> unit) ->
  ?extra_scalar_rules:(ctx -> Xtra.scalar -> Xtra.scalar option) list ->
  ?extra_rel_rules:(ctx -> Xtra.rel -> Xtra.rel option) list ->
  ctx ->
  Xtra.statement ->
  Xtra.statement

(** One-shot wrapper: returns the transformed statement and the fired-rule
    counts. *)
val transform :
  ?on_pass:(int -> string list -> Xtra.statement -> unit) ->
  ?extra_scalar_rules:(ctx -> Xtra.scalar -> Xtra.scalar option) list ->
  ?extra_rel_rules:(ctx -> Xtra.rel -> Xtra.rel option) list ->
  cap:Capability.t ->
  counter:int ref ->
  Xtra.statement ->
  Xtra.statement * (string * int) list
