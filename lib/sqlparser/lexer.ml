(** Hand-written SQL lexer shared by all dialects.

    Handles [--] and [/* */] comments, single-quoted strings with ['']
    escaping, double-quoted identifiers, integer/decimal/float literals and
    the multi-character operators of both Teradata and ANSI SQL. *)

open Hyperq_sqlvalue

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make input = { input; pos = 0; line = 1; col = 1 }
let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '$' || c = '#'

let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> Sql_error.parse_error "unterminated block comment"
        | _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_trivia st
  | _ -> ()

let lex_word st =
  let start = st.pos in
  while match peek st with Some c when is_ident_char c -> true | _ -> false do
    advance st
  done;
  String.uppercase_ascii (String.sub st.input start (st.pos - start))

let lex_number st =
  let start = st.pos in
  let seen_dot = ref false and seen_exp = ref false in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        go ()
    | Some '.' when (not !seen_dot) && not !seen_exp ->
        seen_dot := true;
        advance st;
        go ()
    | Some ('e' | 'E') when not !seen_exp -> (
        (* only part of the number if followed by digits or a signed digit *)
        match peek2 st with
        | Some c when is_digit c ->
            seen_exp := true;
            advance st;
            go ()
        | Some ('+' | '-')
          when st.pos + 2 < String.length st.input && is_digit st.input.[st.pos + 2]
          ->
            seen_exp := true;
            advance st;
            advance st;
            go ()
        | _ -> ())
    | _ -> ()
  in
  go ();
  let text = String.sub st.input start (st.pos - start) in
  if (not !seen_dot) && not !seen_exp then
    match Int64.of_string_opt text with
    | Some n -> Token.Int_lit n
    | None -> Token.Number_lit text
  else Token.Number_lit text

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> Sql_error.parse_error "unterminated string literal"
    | Some '\'' -> (
        match peek2 st with
        | Some '\'' ->
            Buffer.add_char buf '\'';
            advance st;
            advance st;
            go ()
        | _ -> advance st)
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.String_lit (Buffer.contents buf)

let lex_quoted_ident st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> Sql_error.parse_error "unterminated quoted identifier"
    | Some '"' -> (
        match peek2 st with
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            advance st;
            go ()
        | _ -> advance st)
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.Quoted_ident (Buffer.contents buf)

let symbol2 = [ "<>"; "!="; "<="; ">="; "||"; "**"; "^=" ]

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col and off = st.pos in
  (* [mk] is applied only after the token's characters were consumed, so
     [st.pos] is the end offset (exclusive) of the token being built *)
  let mk kind = { Token.kind; line; col; off; stop = st.pos } in
  match peek st with
  | None -> mk Token.Eof
  | Some c when is_ident_start c -> mk (Token.Word (lex_word st))
  | Some c when is_digit c -> mk (lex_number st)
  | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false) ->
      mk (lex_number st)
  | Some '\'' -> mk (lex_string st)
  | Some '"' -> mk (lex_quoted_ident st)
  | Some '?' ->
      advance st;
      mk Token.Param
  | Some c -> (
      let two =
        match peek2 st with
        | Some c2 -> Printf.sprintf "%c%c" c c2
        | None -> String.make 1 c
      in
      if List.mem two symbol2 then (
        advance st;
        advance st;
        mk (Token.Symbol two))
      else
        match c with
        | '+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' | '(' | ')' | ',' | '.'
        | ';' | ':' ->
            advance st;
            mk (Token.Symbol (String.make 1 c))
        | _ ->
            Sql_error.parse_error "unexpected character %C at line %d, column %d"
              c line col)

(** Tokenize the whole input, ending with a single [Eof] token. *)
let tokenize input =
  let st = make input in
  let rec go acc =
    let t = next_token st in
    match t.Token.kind with
    | Token.Eof -> List.rev (t :: acc)
    | _ -> go (t :: acc)
  in
  go []
