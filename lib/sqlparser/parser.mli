(** Recursive-descent SQL parser, parametrized by {!Dialect.t}.

    The grammar core is shared between dialects; Teradata-only productions
    (SEL/INS/UPD/DEL abbreviations, QUALIFY, TOP, SAMPLE, RANK(x DESC),
    vector subqueries, MACRO/PROCEDURE, permissive clause order — paper
    Example 1 places ORDER BY before WHERE) are gated on the dialect. All
    entry points raise {!Hyperq_sqlvalue.Sql_error.Error} with [Parse_error]
    on malformed input. *)

(** Parse exactly one statement (an optional trailing [;] is consumed). *)
val parse_statement : dialect:Dialect.t -> string -> Ast.statement

(** Parse one statement from tokens produced by [Lexer.tokenize]. Callers
    that meter the pipeline use this to time lexing and parsing as separate
    stages. *)
val parse_statement_tokens :
  dialect:Dialect.t -> Token.t list -> Ast.statement

(** Parse a [;]-separated statement sequence. *)
val parse_many : dialect:Dialect.t -> string -> Ast.statement list

type located = {
  loc_stmt : Ast.statement;
  loc_text : string;  (** exact source text, first token to last token *)
  loc_start : int;  (** byte offset of the statement's first token *)
  loc_stop : int;  (** byte offset one past its last token *)
}

(** Like {!parse_many}, but pairs each statement with its byte-accurate
    source span. Invariant:
    [String.sub input loc_start (loc_stop - loc_start) = loc_text]. Leading
    and trailing trivia (comments, whitespace, the [;] terminator) are
    outside the span — including for a trailing statement with no [;] — so
    offline analyzers can anchor diagnostics to exact byte offsets. *)
val parse_many_located : dialect:Dialect.t -> string -> located list

(** {!parse_many_located} without the offsets: each statement with its own
    source text, so scripts can attribute per-statement text rather than the
    whole script. *)
val parse_many_spanned :
  dialect:Dialect.t -> string -> (Ast.statement * string) list

(** Parse a bare query (no DML/DDL). *)
val parse_query_string : dialect:Dialect.t -> string -> Ast.query

(** Parse a bare scalar expression (tests and tooling). *)
val parse_expr_string : dialect:Dialect.t -> string -> Ast.expr
