(** Recursive-descent SQL parser, parametrized by {!Dialect.t}.

    The grammar core is shared; Teradata-only productions (SEL/INS/UPD/DEL
    abbreviations, QUALIFY, TOP, SAMPLE, RANK(expr DESC), vector subqueries,
    MACRO/EXEC, permissive clause order — paper Example 1 places ORDER BY
    before WHERE) are gated on the dialect, mirroring how the paper's parser
    "implements the full query surface of the original database" (§4.2). *)

open Hyperq_sqlvalue

type t = {
  tokens : Token.t array;
  mutable pos : int;
  dialect : Dialect.t;
}

let make ~dialect input =
  { tokens = Array.of_list (Lexer.tokenize input); pos = 0; dialect }

let cur p = p.tokens.(min p.pos (Array.length p.tokens - 1))
let advance p = p.pos <- p.pos + 1

let peek_kind ?(n = 0) p =
  let i = p.pos + n in
  if i < Array.length p.tokens then (p.tokens.(i)).Token.kind else Token.Eof

let error p fmt =
  let t = cur p in
  Printf.ksprintf
    (fun msg ->
      Sql_error.parse_error "%s (near %s)" msg (Token.to_string t))
    fmt

let is_teradata p = Dialect.equal p.dialect Dialect.Teradata

(* --- token helpers ------------------------------------------------- *)

let at_word p w = match peek_kind p with Token.Word x -> x = w | _ -> false

let at_symbol p s = match peek_kind p with Token.Symbol x -> x = s | _ -> false

let accept_word p w =
  if at_word p w then (
    advance p;
    true)
  else false

let accept_symbol p s =
  if at_symbol p s then (
    advance p;
    true)
  else false

let expect_word p w =
  if not (accept_word p w) then error p "expected %s" w

let expect_symbol p s =
  if not (accept_symbol p s) then error p "expected %s" s

let ident p =
  match peek_kind p with
  | Token.Word w ->
      advance p;
      w
  | Token.Quoted_ident q ->
      advance p;
      q
  | _ -> error p "expected identifier"

(* Words that terminate an identifier chain in alias position. *)
let reserved_after_alias =
  [
    "FROM"; "WHERE"; "GROUP"; "HAVING"; "QUALIFY"; "ORDER"; "UNION"; "INTERSECT";
    "EXCEPT"; "MINUS"; "ON"; "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "CROSS";
    "LIMIT"; "OFFSET"; "SAMPLE"; "WHEN"; "THEN"; "ELSE"; "END"; "AND"; "OR";
    "NOT"; "AS"; "USING"; "SET"; "VALUES"; "SELECT"; "SEL"; "WITH"; "BY";
    "INTO"; "DESC"; "ASC"; "NULLS"; "TOP"; "ALL"; "DISTINCT"; "CASE"; "LIKE";
    "BETWEEN"; "IN"; "IS"; "EXISTS"; "OVER"; "PARTITION"; "ROWS"; "RANGE";
    "FOR"; "MATCHED"; "INSERT"; "UPDATE"; "DELETE";
  ]

let qualified_name p =
  let rec go acc =
    let id = ident p in
    if at_symbol p "." then (
      advance p;
      go (id :: acc))
    else List.rev (id :: acc)
  in
  go []

(* --- type names ---------------------------------------------------- *)

let opt_paren_int p =
  if accept_symbol p "(" then (
    let n =
      match peek_kind p with
      | Token.Int_lit n ->
          advance p;
          Int64.to_int n
      | _ -> error p "expected integer"
    in
    expect_symbol p ")";
    Some n)
  else None

let parse_type_name p =
  match peek_kind p with
  | Token.Word ("INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "BYTEINT" | "INT8") ->
      advance p;
      Ast.Ty_int
  | Token.Word ("FLOAT" | "REAL") ->
      advance p;
      Ast.Ty_float
  | Token.Word "DOUBLE" ->
      advance p;
      ignore (accept_word p "PRECISION");
      Ast.Ty_float
  | Token.Word ("DECIMAL" | "NUMERIC" | "NUMBER" | "DEC") ->
      advance p;
      if accept_symbol p "(" then (
        let prec =
          match peek_kind p with
          | Token.Int_lit n ->
              advance p;
              Int64.to_int n
          | _ -> error p "expected precision"
        in
        let scale =
          if accept_symbol p "," then
            match peek_kind p with
            | Token.Int_lit n ->
                advance p;
                Int64.to_int n
            | _ -> error p "expected scale"
          else 0
        in
        expect_symbol p ")";
        Ast.Ty_decimal (prec, scale))
      else Ast.Ty_decimal (18, 2)
  | Token.Word ("CHAR" | "CHARACTER") ->
      advance p;
      if accept_word p "VARYING" then Ast.Ty_varchar (opt_paren_int p)
      else Ast.Ty_char (opt_paren_int p)
  | Token.Word "VARCHAR" ->
      advance p;
      Ast.Ty_varchar (opt_paren_int p)
  | Token.Word "DATE" ->
      advance p;
      Ast.Ty_date
  | Token.Word "TIME" ->
      advance p;
      Ast.Ty_time
  | Token.Word "TIMESTAMP" ->
      advance p;
      ignore (opt_paren_int p);
      Ast.Ty_timestamp
  | Token.Word "PERIOD" ->
      advance p;
      expect_symbol p "(";
      let base =
        if accept_word p "DATE" then `Date
        else if accept_word p "TIMESTAMP" then `Timestamp
        else error p "expected DATE or TIMESTAMP in PERIOD type"
      in
      expect_symbol p ")";
      Ast.Ty_period base
  | Token.Word ("BYTE" | "VARBYTE") ->
      advance p;
      Ast.Ty_byte (opt_paren_int p)
  | Token.Word "INTERVAL" ->
      advance p;
      let unit =
        if accept_word p "YEAR" then Ast.Iu_year
        else if accept_word p "MONTH" then Ast.Iu_month
        else if accept_word p "DAY" then Ast.Iu_day
        else if accept_word p "HOUR" then Ast.Iu_hour
        else if accept_word p "MINUTE" then Ast.Iu_minute
        else if accept_word p "SECOND" then Ast.Iu_second
        else error p "expected interval unit"
      in
      (if accept_word p "TO" then
         (* INTERVAL DAY TO SECOND etc.; the finer unit does not change our
            runtime representation *)
         ignore (ident p));
      Ast.Ty_interval unit
  | _ -> error p "expected type name"

(* --- expressions ---------------------------------------------------- *)

let interval_unit_of_word p =
  function
  | "YEAR" | "YEARS" -> Ast.Iu_year
  | "MONTH" | "MONTHS" -> Ast.Iu_month
  | "DAY" | "DAYS" -> Ast.Iu_day
  | "HOUR" | "HOURS" -> Ast.Iu_hour
  | "MINUTE" | "MINUTES" -> Ast.Iu_minute
  | "SECOND" | "SECONDS" -> Ast.Iu_second
  | w -> error p "unknown interval unit %s" w

let datetime_field p =
  match peek_kind p with
  | Token.Word "YEAR" ->
      advance p;
      Ast.Year
  | Token.Word "MONTH" ->
      advance p;
      Ast.Month
  | Token.Word "DAY" ->
      advance p;
      Ast.Day
  | Token.Word "HOUR" ->
      advance p;
      Ast.Hour
  | Token.Word "MINUTE" ->
      advance p;
      Ast.Minute
  | Token.Word "SECOND" ->
      advance p;
      Ast.Second
  | _ -> error p "expected datetime field"

let cmpop_of_symbol = function
  | "=" -> Some Ast.Ceq
  | "<>" | "!=" | "^=" -> Some Ast.Cneq
  | "<" -> Some Ast.Clt
  | "<=" -> Some Ast.Clte
  | ">" -> Some Ast.Cgt
  | ">=" -> Some Ast.Cgte
  | _ -> None

let binop_of_cmpop = function
  | Ast.Ceq -> Ast.Eq
  | Ast.Cneq -> Ast.Neq
  | Ast.Clt -> Ast.Lt
  | Ast.Clte -> Ast.Lte
  | Ast.Cgt -> Ast.Gt
  | Ast.Cgte -> Ast.Gte

(* Is the token stream at a query start (used to disambiguate '(' )? Looks
   through leading parentheses so that parenthesized set operations like
   ((SELECT ..) UNION ALL (SELECT ..)) are recognized. *)
let at_query_start p =
  let rec scan n =
    match peek_kind ~n p with
    | Token.Symbol "(" -> scan (n + 1)
    | Token.Word ("SELECT" | "WITH" | "VALUES") -> true
    | Token.Word "SEL" -> is_teradata p
    | _ -> false
  in
  scan 0

let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = parse_and p in
  if accept_word p "OR" then Ast.E_binop (Ast.Or, lhs, parse_or p) else lhs

and parse_and p =
  let lhs = parse_not p in
  if accept_word p "AND" then Ast.E_binop (Ast.And, lhs, parse_and p) else lhs

and parse_not p =
  if accept_word p "NOT" then Ast.E_unop (Ast.Not, parse_not p)
  else parse_predicate p

and parse_predicate p =
  let lhs = parse_concat p in
  let negated = accept_word p "NOT" in
  match peek_kind p with
  | Token.Symbol s when cmpop_of_symbol s <> None && not negated -> (
      let op = Option.get (cmpop_of_symbol s) in
      advance p;
      (* quantified subquery: > ANY (SELECT ...) *)
      match peek_kind p with
      | Token.Word (("ANY" | "ALL" | "SOME") as q) when peek_kind ~n:1 p = Token.Symbol "(" ->
          advance p;
          expect_symbol p "(";
          let subquery = parse_query p in
          expect_symbol p ")";
          let quant = if q = "ALL" then Ast.All else Ast.Any in
          let lhs_list =
            match lhs with Ast.E_tuple es -> es | e -> [ e ]
          in
          Ast.E_quantified { lhs = lhs_list; op; quant; subquery }
      | _ ->
          let rhs = parse_concat p in
          Ast.E_binop (binop_of_cmpop op, lhs, rhs))
  | Token.Word "BETWEEN" ->
      advance p;
      let low = parse_concat p in
      expect_word p "AND";
      let high = parse_concat p in
      Ast.E_between { arg = lhs; low; high; negated }
  | Token.Word "IN" ->
      advance p;
      expect_symbol p "(";
      let rhs =
        if at_query_start p then (
          let q = parse_query p in
          expect_symbol p ")";
          Ast.In_subquery q)
        else (
          let items = parse_expr_list p in
          expect_symbol p ")";
          Ast.In_list items)
      in
      Ast.E_in { lhs; negated; rhs }
  | Token.Word "LIKE" ->
      advance p;
      let pattern = parse_concat p in
      let escape =
        if accept_word p "ESCAPE" then Some (parse_concat p) else None
      in
      Ast.E_like { arg = lhs; pattern; escape; negated }
  | Token.Word "IS" ->
      advance p;
      let neg2 = accept_word p "NOT" in
      expect_word p "NULL";
      Ast.E_is_null (lhs, neg2)
  | _ ->
      if negated then error p "expected IN, BETWEEN or LIKE after NOT"
      else lhs

and parse_concat p =
  let lhs = parse_additive p in
  if accept_symbol p "||" then
    Ast.E_binop (Ast.Concat, lhs, parse_concat p)
  else lhs

and parse_additive p =
  let rec go lhs =
    if at_symbol p "+" then (
      advance p;
      go (Ast.E_binop (Ast.Add, lhs, parse_multiplicative p)))
    else if at_symbol p "-" then (
      advance p;
      go (Ast.E_binop (Ast.Sub, lhs, parse_multiplicative p)))
    else lhs
  in
  go (parse_multiplicative p)

and parse_multiplicative p =
  let rec go lhs =
    if at_symbol p "*" then (
      advance p;
      go (Ast.E_binop (Ast.Mul, lhs, parse_unary p)))
    else if at_symbol p "/" then (
      advance p;
      go (Ast.E_binop (Ast.Div, lhs, parse_unary p)))
    else if at_symbol p "%" || at_word p "MOD" then (
      advance p;
      go (Ast.E_binop (Ast.Modulo, lhs, parse_unary p)))
    else lhs
  in
  go (parse_unary p)

and parse_unary p =
  if at_symbol p "-" then (
    advance p;
    Ast.E_unop (Ast.Neg, parse_unary p))
  else if at_symbol p "+" then (
    advance p;
    parse_unary p)
  else parse_postfix p

and parse_postfix p =
  (* window function: <call> OVER ( ... ) *)
  let e = parse_primary p in
  if at_word p "OVER" && peek_kind ~n:1 p = Token.Symbol "(" then (
    advance p;
    expect_symbol p "(";
    let partition =
      if accept_word p "PARTITION" then (
        expect_word p "BY";
        parse_expr_list p)
      else []
    in
    let order =
      if accept_word p "ORDER" then (
        expect_word p "BY";
        parse_order_items p)
      else []
    in
    let frame = parse_opt_frame p in
    expect_symbol p ")";
    match e with
    | Ast.E_fun { name; args; star; _ } ->
        let args = if star then [] else args in
        Ast.E_window { func = name; args; partition; order; frame }
    | Ast.E_td_rank items ->
        (* RANK(x DESC) OVER (PARTITION BY ...) — Teradata lets the order
           spec live in the argument list; hoist it into the window spec *)
        Ast.E_window
          { func = "RANK"; args = []; partition; order = items @ order; frame }
    | _ -> error p "OVER requires a function call")
  else e

and parse_opt_frame p =
  let unit_opt =
    if at_word p "ROWS" then Some `Rows
    else if at_word p "RANGE" then Some `Range
    else None
  in
  match unit_opt with
  | None -> None
  | Some frame_unit ->
      advance p;
      let bound p =
        if accept_word p "UNBOUNDED" then
          if accept_word p "PRECEDING" then Ast.Unbounded_preceding
          else (
            expect_word p "FOLLOWING";
            Ast.Unbounded_following)
        else if accept_word p "CURRENT" then (
          expect_word p "ROW";
          Ast.Current_row)
        else
          let e = parse_expr p in
          if accept_word p "PRECEDING" then Ast.Preceding e
          else (
            expect_word p "FOLLOWING";
            Ast.Following e)
      in
      if accept_word p "BETWEEN" then (
        let s = bound p in
        expect_word p "AND";
        let e = bound p in
        Some { Ast.frame_unit; frame_start = s; frame_end = Some e })
      else
        let s = bound p in
        Some { Ast.frame_unit; frame_start = s; frame_end = None }

and parse_expr_list p =
  let rec go acc =
    let e = parse_expr p in
    if accept_symbol p "," then go (e :: acc) else List.rev (e :: acc)
  in
  go []

and parse_order_items p =
  let item () =
    let sort_expr = parse_expr p in
    let dir =
      if accept_word p "DESC" then Ast.Desc
      else (
        ignore (accept_word p "ASC");
        Ast.Asc)
    in
    let nulls =
      if accept_word p "NULLS" then
        if accept_word p "FIRST" then Ast.Nulls_first
        else (
          expect_word p "LAST";
          Ast.Nulls_last)
      else Ast.Nulls_default
    in
    { Ast.sort_expr; dir; nulls }
  in
  let rec go acc =
    let i = item () in
    if accept_symbol p "," then go (i :: acc) else List.rev (i :: acc)
  in
  go []

and parse_function_call p name =
  (* '(' already detected, not consumed *)
  expect_symbol p "(";
  if accept_symbol p ")" then
    Ast.E_fun { name; distinct = false; args = []; star = false }
  else if at_symbol p "*" && peek_kind ~n:1 p = Token.Symbol ")" then (
    advance p;
    advance p;
    Ast.E_fun { name; distinct = false; args = []; star = true })
  else
    let distinct = accept_word p "DISTINCT" in
    if (not distinct) && is_teradata p && name = "RANK" then (
      (* Teradata RANK(AMOUNT DESC): an order spec in argument position *)
      let save = p.pos in
      let items = parse_order_items p in
      let is_td_rank =
        at_symbol p ")"
        && List.exists
             (fun i -> i.Ast.dir = Ast.Desc || i.Ast.nulls <> Ast.Nulls_default)
             items
        || (at_symbol p ")" && List.length items > 0 && not (at_word p "OVER"))
      in
      if is_td_rank && peek_kind ~n:1 p <> Token.Word "OVER" then (
        expect_symbol p ")";
        Ast.E_td_rank items)
      else (
        p.pos <- save;
        let args = parse_expr_list p in
        expect_symbol p ")";
        Ast.E_fun { name; distinct; args; star = false }))
    else (
      ignore (accept_word p "ALL");
      let args = parse_expr_list p in
      expect_symbol p ")";
      Ast.E_fun { name; distinct; args; star = false })

and parse_case p =
  (* CASE consumed *)
  let operand =
    if at_word p "WHEN" then None else Some (parse_expr p)
  in
  let rec branches acc =
    if accept_word p "WHEN" then (
      let c = parse_expr p in
      expect_word p "THEN";
      let v = parse_expr p in
      branches ((c, v) :: acc))
    else List.rev acc
  in
  let bs = branches [] in
  if bs = [] then error p "CASE requires at least one WHEN branch";
  let else_branch = if accept_word p "ELSE" then Some (parse_expr p) else None in
  expect_word p "END";
  Ast.E_case { operand; branches = bs; else_branch }

and parse_primary p =
  match peek_kind p with
  | Token.Int_lit n ->
      advance p;
      Ast.E_lit (Ast.L_int n)
  | Token.Number_lit s ->
      advance p;
      if String.contains s 'e' || String.contains s 'E' then
        Ast.E_lit (Ast.L_float (float_of_string s))
      else Ast.E_lit (Ast.L_decimal s)
  | Token.String_lit s ->
      advance p;
      Ast.E_lit (Ast.L_string s)
  | Token.Param ->
      advance p;
      Ast.E_param 0
  | Token.Symbol "(" -> (
      advance p;
      if at_query_start p then (
        let q = parse_query p in
        expect_symbol p ")";
        Ast.E_scalar_subquery q)
      else
        let e = parse_expr p in
        if accept_symbol p "," then (
          let rest = parse_expr_list p in
          expect_symbol p ")";
          Ast.E_tuple (e :: rest))
        else (
          expect_symbol p ")";
          e))
  | Token.Symbol ":" ->
      (* macro parameter reference :name *)
      advance p;
      let name = ident p in
      Ast.E_column [ ":" ^ name ]
  | Token.Quoted_ident _ ->
      let q = qualified_name p in
      if at_symbol p "(" then parse_function_call p (List.nth q (List.length q - 1))
      else Ast.E_column q
  | Token.Word w -> parse_word_primary p w
  | _ -> error p "expected expression"

and parse_word_primary p w =
  match w with
  | "NULL" ->
      advance p;
      Ast.E_lit Ast.L_null
  | "CASE" ->
      advance p;
      parse_case p
  | "CAST" ->
      advance p;
      expect_symbol p "(";
      let e = parse_expr p in
      expect_word p "AS";
      let ty = parse_type_name p in
      expect_symbol p ")";
      Ast.E_cast (e, ty)
  | "EXTRACT" ->
      advance p;
      expect_symbol p "(";
      let f = datetime_field p in
      expect_word p "FROM";
      let e = parse_expr p in
      expect_symbol p ")";
      Ast.E_extract (f, e)
  | "SUBSTRING" | "SUBSTR" when peek_kind ~n:1 p = Token.Symbol "(" ->
      advance p;
      expect_symbol p "(";
      let e = parse_expr p in
      if accept_word p "FROM" then (
        let start = parse_expr p in
        let len = if accept_word p "FOR" then [ parse_expr p ] else [] in
        expect_symbol p ")";
        Ast.E_fun
          { name = "SUBSTRING"; distinct = false; args = (e :: start :: len); star = false })
      else (
        let args =
          if accept_symbol p "," then e :: parse_expr_list p else [ e ]
        in
        expect_symbol p ")";
        Ast.E_fun { name = "SUBSTRING"; distinct = false; args; star = false })
  | "TRIM" when peek_kind ~n:1 p = Token.Symbol "(" ->
      advance p;
      expect_symbol p "(";
      let mode =
        if accept_word p "LEADING" then "LTRIM"
        else if accept_word p "TRAILING" then "RTRIM"
        else (
          ignore (accept_word p "BOTH");
          "TRIM")
      in
      let args =
        if accept_word p "FROM" then
          (* TRIM(LEADING FROM s): no removal-characters argument *)
          [ parse_expr p ]
        else
          let first = parse_expr p in
          if accept_word p "FROM" then [ parse_expr p; first ] else [ first ]
      in
      expect_symbol p ")";
      Ast.E_fun { name = mode; distinct = false; args; star = false }
  | "POSITION" when peek_kind ~n:1 p = Token.Symbol "(" ->
      advance p;
      expect_symbol p "(";
      (* the needle must stop before the IN keyword *)
      let needle = parse_concat p in
      expect_word p "IN";
      let hay = parse_expr p in
      expect_symbol p ")";
      Ast.E_fun { name = "POSITION"; distinct = false; args = [ needle; hay ]; star = false }
  | "EXISTS" when peek_kind ~n:1 p = Token.Symbol "(" ->
      advance p;
      expect_symbol p "(";
      let q = parse_query p in
      expect_symbol p ")";
      Ast.E_exists q
  | "DATE" when (match peek_kind ~n:1 p with Token.String_lit _ -> true | _ -> false) ->
      advance p;
      let s = match peek_kind p with Token.String_lit s -> s | _ -> assert false in
      advance p;
      Ast.E_lit (Ast.L_date s)
  | "TIME" when (match peek_kind ~n:1 p with Token.String_lit _ -> true | _ -> false) ->
      advance p;
      let s = match peek_kind p with Token.String_lit s -> s | _ -> assert false in
      advance p;
      Ast.E_lit (Ast.L_time s)
  | "TIMESTAMP" when (match peek_kind ~n:1 p with Token.String_lit _ -> true | _ -> false)
    ->
      advance p;
      let s = match peek_kind p with Token.String_lit s -> s | _ -> assert false in
      advance p;
      Ast.E_lit (Ast.L_timestamp s)
  | "INTERVAL" when (match peek_kind ~n:1 p with Token.String_lit _ -> true | _ -> false)
    ->
      advance p;
      let s = match peek_kind p with Token.String_lit s -> s | _ -> assert false in
      advance p;
      let unit =
        match peek_kind p with
        | Token.Word u ->
            advance p;
            (* swallow the TO <unit> tail of compound intervals *)
            if accept_word p "TO" then ignore (ident p);
            interval_unit_of_word p u
        | _ -> error p "expected interval unit"
      in
      Ast.E_lit (Ast.L_interval (s, unit))
  | "CURRENT_DATE" | "CURRENT_TIME" | "CURRENT_TIMESTAMP" | "SESSION_USER"
  | "CURRENT_USER" | "USER" ->
      advance p;
      Ast.E_fun { name = w; distinct = false; args = []; star = false }
  | "DATE" when is_teradata p && not (peek_kind ~n:1 p = Token.Symbol "(") ->
      (* bare DATE = CURRENT_DATE in Teradata *)
      advance p;
      Ast.E_fun { name = "CURRENT_DATE"; distinct = false; args = []; star = false }
  | _ ->
      let q = qualified_name p in
      if at_symbol p "(" then
        parse_function_call p (List.nth q (List.length q - 1))
      else Ast.E_column q

(* --- queries -------------------------------------------------------- *)

and parse_query p =
  let recursive = ref false in
  let ctes =
    if accept_word p "WITH" then (
      recursive := accept_word p "RECURSIVE";
      let cte () =
        let cte_name = ident p in
        let cte_columns =
          if accept_symbol p "(" then (
            let rec cols acc =
              let c = ident p in
              if accept_symbol p "," then cols (c :: acc) else List.rev (c :: acc)
            in
            let cs = cols [] in
            expect_symbol p ")";
            cs)
          else []
        in
        expect_word p "AS";
        expect_symbol p "(";
        let cte_query = parse_query p in
        expect_symbol p ")";
        { Ast.cte_name; cte_columns; cte_query }
      in
      let rec go acc =
        let c = cte () in
        if accept_symbol p "," then go (c :: acc) else List.rev (c :: acc)
      in
      go [])
    else []
  in
  let body, hoisted_order = parse_query_body p in
  let order_by =
    if accept_word p "ORDER" then (
      expect_word p "BY";
      parse_order_items p)
    else hoisted_order
  in
  let limit, offset =
    if accept_word p "LIMIT" then (
      let l = parse_expr p in
      let o = if accept_word p "OFFSET" then Some (parse_expr p) else None in
      (Some l, o))
    else (None, None)
  in
  { Ast.ctes; recursive = !recursive; body; order_by; limit; offset }

(* Returns the body plus any ORDER BY swallowed by a permissive-clause-order
   Teradata select block, hoisted to query level. *)
and parse_query_body p =
  let rec setops lhs lhs_order =
    let op =
      if at_word p "UNION" then Some Ast.Union
      else if at_word p "EXCEPT" || at_word p "MINUS" then Some Ast.Except
      else None
    in
    match op with
    | None -> (lhs, lhs_order)
    | Some op ->
        advance p;
        let all = accept_word p "ALL" in
        ignore (accept_word p "DISTINCT");
        let rhs, rhs_order = parse_intersect p in
        setops (Ast.Q_setop (op, all, lhs, rhs)) rhs_order
  in
  let lhs, lhs_order = parse_intersect p in
  setops lhs lhs_order

and parse_intersect p =
  let rec go lhs lhs_order =
    if at_word p "INTERSECT" then (
      advance p;
      let all = accept_word p "ALL" in
      ignore (accept_word p "DISTINCT");
      let rhs, rhs_order = parse_query_primary p in
      go (Ast.Q_setop (Ast.Intersect, all, lhs, rhs)) rhs_order)
    else (lhs, lhs_order)
  in
  let lhs, lhs_order = parse_query_primary p in
  go lhs lhs_order

and parse_query_primary p =
  if at_symbol p "(" then (
    advance p;
    let q = parse_query p in
    expect_symbol p ")";
    match q with
    | { Ast.ctes = []; order_by = []; limit = None; offset = None; body; _ } ->
        (body, [])
    | _ ->
        (* wrap the parenthesized ordered query as a derived-table select *)
        ( Ast.Q_select
            {
              Ast.empty_select with
              projection = [ Ast.Sel_star None ];
              from =
                [ Ast.T_subquery { query = q; alias = "__Q"; col_aliases = [] } ];
            },
          [] ))
  else if at_word p "VALUES" then (
    advance p;
    let row () =
      expect_symbol p "(";
      let es = parse_expr_list p in
      expect_symbol p ")";
      es
    in
    let rec go acc =
      let r = row () in
      if accept_symbol p "," then go (r :: acc) else List.rev (r :: acc)
    in
    (Ast.Q_values (go []), []))
  else parse_select_core p

and parse_select_core p =
  if not (accept_word p "SELECT" || (is_teradata p && accept_word p "SEL")) then
    error p "expected SELECT";
  let distinct =
    if accept_word p "DISTINCT" then true
    else (
      ignore (accept_word p "ALL");
      false)
  in
  let top =
    if is_teradata p && accept_word p "TOP" then (
      let top_count = parse_primary p in
      let percent = accept_word p "PERCENT" in
      let with_ties =
        if accept_word p "WITH" then (
          expect_word p "TIES";
          true)
        else false
      in
      Some { Ast.top_count; with_ties; percent })
    else None
  in
  let projection = parse_select_items p in
  (* Clause loop: Teradata accepts clauses in permissive order (paper
     Example 1: ORDER BY before WHERE); each clause at most once. *)
  let from = ref [] and where = ref None and group_by = ref [] in
  let having = ref None and qualify = ref None and order_by = ref [] in
  let sample = ref None in
  let progress = ref true in
  while !progress do
    if at_word p "FROM" && !from = [] then (
      advance p;
      from := parse_table_refs p)
    else if at_word p "WHERE" && !where = None then (
      advance p;
      where := Some (parse_expr p))
    else if at_word p "GROUP" && !group_by = [] then (
      advance p;
      expect_word p "BY";
      group_by := parse_group_items p)
    else if at_word p "HAVING" && !having = None then (
      advance p;
      having := Some (parse_expr p))
    else if is_teradata p && at_word p "QUALIFY" && !qualify = None then (
      advance p;
      qualify := Some (parse_expr p))
    else if
      at_word p "ORDER" && !order_by = []
      && (is_teradata p
          (* in ANSI mode only consume ORDER BY here when a later clause can
             still follow — i.e. permissive order is a Teradata-ism; for ANSI
             leave it for query level *)
         && peek_kind ~n:1 p = Token.Word "BY")
    then (
      advance p;
      expect_word p "BY";
      order_by := parse_order_items p)
    else if is_teradata p && at_word p "SAMPLE" && !sample = None then (
      advance p;
      sample := Some (parse_expr p))
    else progress := false
  done;
  ( Ast.Q_select
      {
        Ast.distinct;
        top;
        projection;
        from = !from;
        where = !where;
        group_by = !group_by;
        having = !having;
        qualify = !qualify;
        sample = !sample;
      },
    !order_by )

and parse_select_items p =
  let item () =
    if at_symbol p "*" then (
      advance p;
      Ast.Sel_star None)
    else
      (* t.* detection: ident(.ident)* .* *)
      let save = p.pos in
      match peek_kind p with
      | Token.Word _ | Token.Quoted_ident _ -> (
          let q = qualified_name p in
          if at_symbol p "." && peek_kind ~n:1 p = Token.Symbol "*" then (
            advance p;
            advance p;
            Ast.Sel_star (Some q))
          else (
            p.pos <- save;
            parse_aliased_item p))
      | _ -> parse_aliased_item p
  in
  let rec go acc =
    let i = item () in
    if accept_symbol p "," then go (i :: acc) else List.rev (i :: acc)
  in
  go []

and parse_aliased_item p =
  let e = parse_expr p in
  let alias =
    if accept_word p "AS" then Some (ident p)
    else
      match peek_kind p with
      | Token.Word w when not (List.mem w reserved_after_alias) ->
          advance p;
          Some w
      | Token.Quoted_ident q ->
          advance p;
          Some q
      | _ -> None
  in
  Ast.Sel_expr (e, alias)

and parse_group_items p =
  let item () =
    if accept_word p "ROLLUP" then (
      expect_symbol p "(";
      let es = parse_expr_list p in
      expect_symbol p ")";
      Ast.Group_rollup es)
    else if accept_word p "CUBE" then (
      expect_symbol p "(";
      let es = parse_expr_list p in
      expect_symbol p ")";
      Ast.Group_cube es)
    else if at_word p "GROUPING" && peek_kind ~n:1 p = Token.Word "SETS" then (
      advance p;
      advance p;
      expect_symbol p "(";
      let set () =
        expect_symbol p "(";
        let es = if at_symbol p ")" then [] else parse_expr_list p in
        expect_symbol p ")";
        es
      in
      let rec go acc =
        let s = set () in
        if accept_symbol p "," then go (s :: acc) else List.rev (s :: acc)
      in
      let sets = go [] in
      expect_symbol p ")";
      Ast.Group_sets sets)
    else Ast.Group_expr (parse_expr p)
  in
  let rec go acc =
    let i = item () in
    if accept_symbol p "," then go (i :: acc) else List.rev (i :: acc)
  in
  go []

(* --- table references ----------------------------------------------- *)

and parse_table_refs p =
  let rec go acc =
    let t = parse_table_ref p in
    if accept_symbol p "," then go (t :: acc) else List.rev (t :: acc)
  in
  go []

and parse_table_ref p =
  let rec joins lhs =
    let kind =
      if at_word p "JOIN" then Some Ast.Inner
      else if at_word p "INNER" && peek_kind ~n:1 p = Token.Word "JOIN" then
        Some Ast.Inner
      else if at_word p "LEFT" then Some Ast.Left
      else if at_word p "RIGHT" then Some Ast.Right
      else if at_word p "FULL" then Some Ast.Full
      else if at_word p "CROSS" then Some Ast.Cross
      else None
    in
    match kind with
    | None -> lhs
    | Some kind ->
        (if at_word p "JOIN" then advance p
         else (
           advance p;
           ignore (accept_word p "OUTER");
           expect_word p "JOIN"));
        let right = parse_table_primary p in
        let cond =
          if kind = Ast.Cross then Ast.No_cond
          else if accept_word p "ON" then Ast.On (parse_expr p)
          else if accept_word p "USING" then (
            expect_symbol p "(";
            let rec cols acc =
              let c = ident p in
              if accept_symbol p "," then cols (c :: acc)
              else List.rev (c :: acc)
            in
            let cs = cols [] in
            expect_symbol p ")";
            Ast.Using cs)
          else error p "expected ON or USING"
        in
        joins (Ast.T_join { kind; left = lhs; right; cond })
  in
  joins (parse_table_primary p)

and parse_table_primary p =
  if at_symbol p "(" then (
    advance p;
    if at_query_start p then (
      let query = parse_query p in
      expect_symbol p ")";
      ignore (accept_word p "AS");
      let alias =
        match peek_kind p with
        | Token.Word w when not (List.mem w reserved_after_alias) ->
            advance p;
            w
        | Token.Quoted_ident q ->
            advance p;
            q
        | _ -> error p "derived table requires an alias"
      in
      let col_aliases = parse_opt_col_aliases p in
      Ast.T_subquery { query; alias; col_aliases })
    else (
      let t = parse_table_ref p in
      expect_symbol p ")";
      t))
  else
    let name = qualified_name p in
    let alias =
      if accept_word p "AS" then Some (ident p)
      else
        match peek_kind p with
        | Token.Word w when not (List.mem w reserved_after_alias) ->
            advance p;
            Some w
        | Token.Quoted_ident q ->
            advance p;
            Some q
        | _ -> None
    in
    let col_aliases = parse_opt_col_aliases p in
    Ast.T_named { name; alias; col_aliases }

and parse_opt_col_aliases p =
  (* derived-table column alias list: (a, b, c) — only when every element is
     a bare identifier followed by ')' or ',' *)
  if at_symbol p "(" then (
    let save = p.pos in
    advance p;
    let rec go acc =
      match peek_kind p with
      | Token.Word w when not (List.mem w reserved_after_alias) -> (
          advance p;
          if accept_symbol p "," then go (w :: acc)
          else if accept_symbol p ")" then Some (List.rev (w :: acc))
          else None)
      | Token.Quoted_ident w -> (
          advance p;
          if accept_symbol p "," then go (w :: acc)
          else if accept_symbol p ")" then Some (List.rev (w :: acc))
          else None)
      | _ -> None
    in
    match go [] with
    | Some cols -> cols
    | None ->
        p.pos <- save;
        [])
  else []

(* --- statements ------------------------------------------------------ *)

let parse_set_clauses p =
  let one () =
    let c = ident p in
    expect_symbol p "=";
    let e = parse_expr p in
    (c, e)
  in
  let rec go acc =
    let x = one () in
    if accept_symbol p "," then go (x :: acc) else List.rev (x :: acc)
  in
  go []

let parse_insert p =
  (* INSERT/INS consumed *)
  ignore (accept_word p "INTO");
  let table = qualified_name p in
  (* Teradata allows INS t (v1, v2) — a bare values list. Disambiguate from
     a column list by what follows the closing paren. *)
  if at_symbol p "(" then (
    let save = p.pos in
    advance p;
    let rec idents acc =
      match peek_kind p with
      | Token.Word w -> (
          advance p;
          if accept_symbol p "," then idents (w :: acc)
          else if accept_symbol p ")" then Some (List.rev (w :: acc))
          else None)
      | Token.Quoted_ident w -> (
          advance p;
          if accept_symbol p "," then idents (w :: acc)
          else if accept_symbol p ")" then Some (List.rev (w :: acc))
          else None)
      | _ -> None
    in
    match idents [] with
    | Some cols when at_word p "VALUES" || at_query_start p ->
        let source =
          if accept_word p "VALUES" then (
            let row () =
              expect_symbol p "(";
              let es = parse_expr_list p in
              expect_symbol p ")";
              es
            in
            let rec rows acc =
              let r = row () in
              if accept_symbol p "," then rows (r :: acc)
              else List.rev (r :: acc)
            in
            Ast.Ins_values (rows []))
          else Ast.Ins_query (parse_query p)
        in
        Ast.S_insert { table; columns = cols; source }
    | _ ->
        (* bare values list *)
        p.pos <- save;
        expect_symbol p "(";
        let es = parse_expr_list p in
        expect_symbol p ")";
        Ast.S_insert { table; columns = []; source = Ast.Ins_values [ es ] })
  else if accept_word p "VALUES" then (
    let row () =
      expect_symbol p "(";
      let es = parse_expr_list p in
      expect_symbol p ")";
      es
    in
    let rec rows acc =
      let r = row () in
      if accept_symbol p "," then rows (r :: acc) else List.rev (r :: acc)
    in
    Ast.S_insert { table; columns = []; source = Ast.Ins_values (rows []) })
  else if at_query_start p then
    Ast.S_insert { table; columns = []; source = Ast.Ins_query (parse_query p) }
  else error p "expected VALUES or a query after INSERT"

let parse_update p =
  (* UPDATE/UPD consumed *)
  let table = qualified_name p in
  let alias =
    if accept_word p "AS" then Some (ident p)
    else
      match peek_kind p with
      | Token.Word w when not (List.mem w reserved_after_alias) ->
          advance p;
          Some w
      | _ -> None
  in
  let from =
    if is_teradata p && accept_word p "FROM" then parse_table_refs p else []
  in
  expect_word p "SET";
  let set = parse_set_clauses p in
  let from =
    if from = [] && accept_word p "FROM" then parse_table_refs p else from
  in
  let where = if accept_word p "WHERE" then Some (parse_expr p) else None in
  Ast.S_update { table; alias; set; from; where }

let parse_delete p =
  (* DELETE/DEL consumed *)
  ignore (accept_word p "FROM");
  let table = qualified_name p in
  let alias =
    if accept_word p "AS" then Some (ident p)
    else
      match peek_kind p with
      | Token.Word w
        when (not (List.mem w reserved_after_alias)) && w <> "ALL" ->
          advance p;
          Some w
      | _ -> None
  in
  let from = if accept_word p "FROM" then parse_table_refs p else [] in
  let where = if accept_word p "WHERE" then Some (parse_expr p) else None in
  ignore (accept_word p "ALL");
  Ast.S_delete { table; alias; from; where }

let parse_merge p =
  expect_word p "INTO";
  let target = qualified_name p in
  let target_alias =
    if accept_word p "AS" then Some (ident p)
    else
      match peek_kind p with
      | Token.Word w when w <> "USING" && not (List.mem w reserved_after_alias) ->
          advance p;
          Some w
      | _ -> None
  in
  expect_word p "USING";
  let source = parse_table_primary p in
  expect_word p "ON";
  let paren = accept_symbol p "(" in
  let on = parse_expr p in
  if paren then expect_symbol p ")";
  let when_matched = ref None and when_not_matched = ref None in
  while at_word p "WHEN" do
    advance p;
    let matched =
      if accept_word p "MATCHED" then true
      else (
        expect_word p "NOT";
        expect_word p "MATCHED";
        false)
    in
    expect_word p "THEN";
    let clause =
      if accept_word p "UPDATE" then (
        expect_word p "SET";
        Ast.Merge_update (parse_set_clauses p))
      else if accept_word p "INSERT" then (
        let cols =
          if at_symbol p "(" && not (at_word p "VALUES") then (
            advance p;
            let rec go acc =
              let c = ident p in
              if accept_symbol p "," then go (c :: acc)
              else (
                expect_symbol p ")";
                List.rev (c :: acc))
            in
            go [])
          else []
        in
        expect_word p "VALUES";
        expect_symbol p "(";
        let vals = parse_expr_list p in
        expect_symbol p ")";
        Ast.Merge_insert (cols, vals))
      else if accept_word p "DELETE" then Ast.Merge_delete
      else error p "expected UPDATE, INSERT or DELETE in MERGE clause"
    in
    if matched then when_matched := Some clause
    else when_not_matched := Some clause
  done;
  Ast.S_merge
    {
      target;
      target_alias;
      source;
      on;
      when_matched = !when_matched;
      when_not_matched = !when_not_matched;
    }

let parse_column_def p =
  let col_name = ident p in
  let col_type = parse_type_name p in
  let not_null = ref false and default = ref None and case_specific = ref false in
  let progress = ref true in
  while !progress do
    if at_word p "NOT" && peek_kind ~n:1 p = Token.Word "NULL" then (
      advance p;
      advance p;
      not_null := true)
    else if at_word p "NOT" && peek_kind ~n:1 p = Token.Word "CASESPECIFIC" then (
      advance p;
      advance p;
      case_specific := false)
    else if accept_word p "CASESPECIFIC" then case_specific := true
    else if accept_word p "DEFAULT" then default := Some (parse_expr p)
    else if accept_word p "FORMAT" then
      (* Teradata display format — irrelevant to semantics, swallow literal *)
      advance p
    else if accept_word p "TITLE" then advance p
    else if accept_word p "UPPERCASE" then ()
    else if at_word p "PRIMARY" && peek_kind ~n:1 p = Token.Word "KEY" then (
      advance p;
      advance p;
      not_null := true)
    else if accept_word p "UNIQUE" then ()
    else progress := false
  done;
  {
    Ast.col_name;
    col_type;
    col_not_null = !not_null;
    col_default = !default;
    col_case_specific = !case_specific;
  }

let rec parse_create_table p ~kind =
  (* TABLE consumed *)
  let if_not_exists =
    if at_word p "IF" then (
      advance p;
      expect_word p "NOT";
      expect_word p "EXISTS";
      true)
    else false
  in
  let name = qualified_name p in
  (* Teradata table options: CREATE TABLE t, NO FALLBACK, NO JOURNAL (...) *)
  while at_symbol p "," do
    advance p;
    ignore (accept_word p "NO");
    ignore (ident p);
    ignore (accept_word p "JOURNAL")
  done;
  if accept_word p "AS" then (
    let query =
      if accept_symbol p "(" then (
        let q = parse_query p in
        expect_symbol p ")";
        q)
      else parse_query p
    in
    let with_data =
      if accept_word p "WITH" then
        if accept_word p "NO" then (
          expect_word p "DATA";
          false)
        else (
          expect_word p "DATA";
          true)
      else true
    in
    (if accept_word p "ON" then (
       expect_word p "COMMIT";
       ignore (accept_word p "PRESERVE" || accept_word p "DELETE");
       expect_word p "ROWS"));
    Ast.S_create_table_as { name; kind; query; with_data })
  else (
    expect_symbol p "(";
    let rec cols acc =
      let c = parse_column_def p in
      if accept_symbol p "," then cols (c :: acc) else List.rev (c :: acc)
    in
    let columns = cols [] in
    expect_symbol p ")";
    let primary_index = ref [] and on_commit_preserve = ref false in
    let progress = ref true in
    while !progress do
      if at_word p "PRIMARY" || at_word p "UNIQUE" then (
        ignore (accept_word p "UNIQUE");
        expect_word p "PRIMARY";
        expect_word p "INDEX";
        (match peek_kind p with
        | Token.Word w when w <> "(" -> ignore (accept_word p w)
        | _ -> ());
        expect_symbol p "(";
        let rec go acc =
          let c = ident p in
          if accept_symbol p "," then go (c :: acc) else List.rev (c :: acc)
        in
        primary_index := go [];
        expect_symbol p ")")
      else if at_word p "ON" then (
        advance p;
        expect_word p "COMMIT";
        if accept_word p "PRESERVE" then (
          expect_word p "ROWS";
          on_commit_preserve := true)
        else (
          expect_word p "DELETE";
          expect_word p "ROWS"))
      else progress := false
    done;
    Ast.S_create_table
      {
        name;
        kind;
        columns;
        primary_index = !primary_index;
        on_commit_preserve = !on_commit_preserve;
        if_not_exists;
      })

(* Stored-procedure body: DECLARE/SET/IF/WHILE plus embedded SQL, each
   statement terminated by ';'. Stops before END / ELSEIF / ELSE / END IF /
   END WHILE, which the callers consume. *)
and parse_proc_body p : Ast.proc_stmt list =
  let at_terminator () =
    at_word p "END" || at_word p "ELSE" || at_word p "ELSEIF"
  in
  let rec stmts acc =
    while accept_symbol p ";" do
      ()
    done;
    if at_terminator () then List.rev acc
    else begin
      let s = parse_proc_stmt p in
      ignore (accept_symbol p ";");
      stmts (s :: acc)
    end
  in
  stmts []

and parse_proc_stmt p : Ast.proc_stmt =
  if accept_word p "DECLARE" then begin
    let v = ident p in
    let ty = parse_type_name p in
    let init = if accept_word p "DEFAULT" then Some (parse_expr p) else None in
    Ast.P_declare (v, ty, init)
  end
  else if at_word p "SET" && peek_kind ~n:1 p <> Token.Word "SESSION" then begin
    advance p;
    ignore (accept_symbol p ":");
    let v = ident p in
    expect_symbol p "=";
    Ast.P_set (v, parse_expr p)
  end
  else if accept_word p "IF" then begin
    let rec branches acc =
      let c = parse_expr p in
      expect_word p "THEN";
      let body = parse_proc_body p in
      let acc = (c, body) :: acc in
      if accept_word p "ELSEIF" then branches acc
      else if accept_word p "ELSE" then begin
        let els = parse_proc_body p in
        expect_word p "END";
        expect_word p "IF";
        (List.rev acc, els)
      end
      else begin
        expect_word p "END";
        expect_word p "IF";
        (List.rev acc, [])
      end
    in
    let bs, els = branches [] in
    Ast.P_if (bs, els)
  end
  else if accept_word p "WHILE" then begin
    let c = parse_expr p in
    expect_word p "DO";
    let body = parse_proc_body p in
    expect_word p "END";
    expect_word p "WHILE";
    Ast.P_while (c, body)
  end
  else Ast.P_sql (parse_statement_after_keyword p)

and parse_statement_after_keyword p =
  match peek_kind p with
  | Token.Word ("SELECT" | "WITH") -> Ast.S_select (parse_query p)
  | Token.Word "SEL" when is_teradata p -> Ast.S_select (parse_query p)
  | Token.Word "VALUES" -> Ast.S_select (parse_query p)
  | Token.Word ("INSERT" | "INS") ->
      advance p;
      parse_insert p
  | Token.Word ("UPDATE" | "UPD") ->
      advance p;
      parse_update p
  | Token.Word ("DELETE" | "DEL") ->
      advance p;
      parse_delete p
  | Token.Word "MERGE" ->
      advance p;
      parse_merge p
  | Token.Word ("CREATE" | "REPLACE") -> (
      let replace_kw = at_word p "REPLACE" in
      advance p;
      let replace =
        replace_kw
        ||
        if at_word p "OR" then (
          advance p;
          expect_word p "REPLACE";
          true)
        else false
      in
      let set_semantics = accept_word p "SET" in
      ignore (accept_word p "MULTISET");
      if accept_word p "VOLATILE" || accept_word p "TEMPORARY" then (
        expect_word p "TABLE";
        parse_create_table p ~kind:Ast.Volatile)
      else if accept_word p "GLOBAL" then (
        expect_word p "TEMPORARY";
        expect_word p "TABLE";
        parse_create_table p ~kind:Ast.Global_temporary)
      else if accept_word p "TABLE" then
        parse_create_table p ~kind:(Ast.Persistent { set_semantics })
      else if accept_word p "VIEW" then (
        let name = qualified_name p in
        let columns =
          if accept_symbol p "(" then (
            let rec go acc =
              let c = ident p in
              if accept_symbol p "," then go (c :: acc)
              else List.rev (c :: acc)
            in
            let cs = go [] in
            expect_symbol p ")";
            cs)
          else []
        in
        expect_word p "AS";
        let query = parse_query p in
        Ast.S_create_view { name; columns; query; replace })
      else if accept_word p "MACRO" then (
        let name = qualified_name p in
        let params =
          if accept_symbol p "(" then (
            let one () =
              let n = ident p in
              let ty = parse_type_name p in
              (n, ty)
            in
            let rec go acc =
              let x = one () in
              if accept_symbol p "," then go (x :: acc) else List.rev (x :: acc)
            in
            let ps = go [] in
            expect_symbol p ")";
            ps)
          else []
        in
        expect_word p "AS";
        expect_symbol p "(";
        let rec stmts acc =
          if at_symbol p ")" then List.rev acc
          else
            let s = parse_statement_after_keyword p in
            ignore (accept_symbol p ";");
            stmts (s :: acc)
        in
        let body = stmts [] in
        expect_symbol p ")";
        Ast.S_create_macro { name; params; body; replace })
      else if accept_word p "PROCEDURE" then (
        let name = qualified_name p in
        let params =
          if accept_symbol p "(" then
            if accept_symbol p ")" then []
            else (
              let one () =
                (* parameter direction: only IN parameters are modeled *)
                ignore (accept_word p "IN");
                let n = ident p in
                let ty = parse_type_name p in
                (n, ty)
              in
              let rec go acc =
                let x = one () in
                if accept_symbol p "," then go (x :: acc)
                else List.rev (x :: acc)
              in
              let ps = go [] in
              expect_symbol p ")";
              ps)
          else []
        in
        expect_word p "BEGIN";
        let body = parse_proc_body p in
        expect_word p "END";
        Ast.S_create_procedure { name; params; body; replace })
      else error p "unsupported CREATE statement")
  | Token.Word "DROP" ->
      advance p;
      let if_exists p =
        if at_word p "IF" then (
          advance p;
          expect_word p "EXISTS";
          true)
        else false
      in
      if accept_word p "TABLE" then (
        let ie = if_exists p in
        Ast.S_drop_table { name = qualified_name p; if_exists = ie })
      else if accept_word p "VIEW" then (
        let ie = if_exists p in
        Ast.S_drop_view { name = qualified_name p; if_exists = ie })
      else if accept_word p "MACRO" then (
        let ie = if_exists p in
        Ast.S_drop_macro { name = qualified_name p; if_exists = ie })
      else if accept_word p "PROCEDURE" then (
        let ie = if_exists p in
        Ast.S_drop_procedure { name = qualified_name p; if_exists = ie })
      else error p "unsupported DROP statement"
  | Token.Word "RENAME" ->
      advance p;
      expect_word p "TABLE";
      let from_name = qualified_name p in
      ignore (accept_word p "TO" || accept_word p "AS");
      let to_name = qualified_name p in
      Ast.S_rename_table { from_name; to_name }
  | Token.Word "ALTER" ->
      advance p;
      expect_word p "TABLE";
      let from_name = qualified_name p in
      expect_word p "RENAME";
      expect_word p "TO";
      let to_name = qualified_name p in
      Ast.S_rename_table { from_name; to_name }
  | Token.Word "CALL" when is_teradata p ->
      advance p;
      let name = qualified_name p in
      let args =
        if accept_symbol p "(" then
          if accept_symbol p ")" then []
          else (
            let es = parse_expr_list p in
            expect_symbol p ")";
            es)
        else []
      in
      Ast.S_call { name; args }
  | Token.Word ("EXEC" | "EXECUTE") when is_teradata p ->
      advance p;
      let name = qualified_name p in
      let args =
        if accept_symbol p "(" then (
          if at_symbol p ")" then (
            advance p;
            Ast.Macro_positional [])
          else
            (* named (x = 1, y = 2) or positional (1, 2) *)
            let named =
              match (peek_kind p, peek_kind ~n:1 p) with
              | Token.Word _, Token.Symbol "=" -> true
              | _ -> false
            in
            if named then (
              let one () =
                let n = ident p in
                expect_symbol p "=";
                let e = parse_expr p in
                (n, e)
              in
              let rec go acc =
                let x = one () in
                if accept_symbol p "," then go (x :: acc)
                else List.rev (x :: acc)
              in
              let ps = go [] in
              expect_symbol p ")";
              Ast.Macro_named ps)
            else (
              let es = parse_expr_list p in
              expect_symbol p ")";
              Ast.Macro_positional es))
        else Ast.Macro_positional []
      in
      Ast.S_exec_macro { name; args }
  | Token.Word "HELP" when is_teradata p ->
      advance p;
      if accept_word p "SESSION" then Ast.S_help Ast.Help_session
      else if accept_word p "TABLE" then
        Ast.S_help (Ast.Help_table (qualified_name p))
      else if accept_word p "VIEW" then
        Ast.S_help (Ast.Help_view (qualified_name p))
      else if accept_word p "MACRO" then
        Ast.S_help (Ast.Help_macro (qualified_name p))
      else if accept_word p "PROCEDURE" then
        Ast.S_help (Ast.Help_procedure (qualified_name p))
      else if accept_word p "DATABASE" then
        Ast.S_help (Ast.Help_database (ident p))
      else if accept_word p "VOLATILE" then (
        expect_word p "TABLE";
        Ast.S_help Ast.Help_volatile_table)
      else error p "unsupported HELP command"
  | Token.Word "SHOW" when is_teradata p ->
      advance p;
      if accept_word p "TABLE" then Ast.S_show (Ast.Show_table (qualified_name p))
      else if accept_word p "VIEW" then
        Ast.S_show (Ast.Show_view (qualified_name p))
      else error p "unsupported SHOW command"
  | Token.Word "EXPLAIN" when is_teradata p ->
      advance p;
      Ast.S_explain (parse_statement_after_keyword p)
  | Token.Word "COLLECT" when is_teradata p ->
      advance p;
      ignore (accept_word p "STATISTICS" || accept_word p "STATS" || accept_word p "STAT");
      (if accept_word p "COLUMN" then (
         expect_symbol p "(";
         let rec skip () =
           if not (accept_symbol p ")") then (
             advance p;
             skip ())
         in
         skip ()));
      ignore (accept_word p "ON");
      Ast.S_collect_stats (qualified_name p)
  | Token.Word "SET" when peek_kind ~n:1 p = Token.Word "SESSION" ->
      advance p;
      advance p;
      let name = ident p in
      ignore (accept_symbol p "=");
      let v = parse_expr p in
      Ast.S_set_session (name, v)
  | Token.Word "BEGIN" ->
      advance p;
      ignore (accept_word p "TRANSACTION");
      Ast.S_begin_transaction
  | Token.Word "BT" when is_teradata p ->
      advance p;
      Ast.S_begin_transaction
  | Token.Word "COMMIT" ->
      advance p;
      ignore (accept_word p "WORK");
      Ast.S_commit
  | Token.Word "ET" when is_teradata p ->
      advance p;
      Ast.S_commit
  | Token.Word "END" when is_teradata p ->
      advance p;
      ignore (accept_word p "TRANSACTION");
      Ast.S_commit
  | Token.Word "ROLLBACK" ->
      advance p;
      ignore (accept_word p "WORK");
      Ast.S_rollback
  | Token.Symbol "(" -> Ast.S_select (parse_query p)
  | _ -> error p "expected a statement"

(* --- public entry points --------------------------------------------- *)

let finish_one p =
  while accept_symbol p ";" do
    ()
  done

let check_eof p =
  match peek_kind p with
  | Token.Eof -> ()
  | _ -> error p "unexpected trailing input"

(** Parse exactly one statement (an optional trailing [;] is consumed). *)
let parse_statement ~dialect input =
  let p = make ~dialect input in
  let s = parse_statement_after_keyword p in
  finish_one p;
  check_eof p;
  s

(** Parse one statement from an already-lexed token stream. Lets callers
    that meter the pipeline attribute lexing and parsing separately. *)
let parse_statement_tokens ~dialect tokens =
  let p = { tokens = Array.of_list tokens; pos = 0; dialect } in
  let s = parse_statement_after_keyword p in
  finish_one p;
  check_eof p;
  s

(** Parse a [;]-separated statement sequence. *)
let parse_many ~dialect input =
  let p = make ~dialect input in
  let rec go acc =
    finish_one p;
    match peek_kind p with
    | Token.Eof -> List.rev acc
    | _ ->
        let s = parse_statement_after_keyword p in
        finish_one p;
        go (s :: acc)
  in
  go []

type located = {
  loc_stmt : Ast.statement;
  loc_text : string;  (** exact source text, first token to last token *)
  loc_start : int;  (** byte offset of the statement's first token *)
  loc_stop : int;  (** byte offset one past its last token *)
}

(** Parse a [;]-separated statement sequence, pairing each statement with
    its byte-accurate source span: from the first byte of its first token to
    the last byte of its last token. Leading trivia (comments, whitespace)
    is excluded because the span starts at the first *token*; trailing
    trivia — including a trailing comment on an unterminated last statement
    — is excluded because the span ends at the last token actually consumed,
    not at the [;] / end of input. Offline analyzers attribute their
    diagnostics to these offsets, so they must hold byte-for-byte:
    [String.sub input loc_start (loc_stop - loc_start) = loc_text]. *)
let parse_many_located ~dialect input =
  let p = make ~dialect input in
  let rec go acc =
    finish_one p;
    match peek_kind p with
    | Token.Eof -> List.rev acc
    | _ ->
        let start = (cur p).Token.off in
        let s = parse_statement_after_keyword p in
        (* the span ends at the last token consumed by the statement — the
           token *before* the current one (the terminating [;] or [Eof]),
           which keeps trailing comments and whitespace out of the span *)
        let stop = p.tokens.(p.pos - 1).Token.stop in
        let text = String.sub input start (stop - start) in
        finish_one p;
        go ({ loc_stmt = s; loc_text = text; loc_start = start; loc_stop = stop } :: acc)
  in
  go []

(** {!parse_many_located} without the offsets (statement + its own source
    text); callers that only attribute text use this. *)
let parse_many_spanned ~dialect input =
  List.map
    (fun l -> (l.loc_stmt, l.loc_text))
    (parse_many_located ~dialect input)

let parse_query_string ~dialect input =
  let p = make ~dialect input in
  let q = parse_query p in
  finish_one p;
  check_eof p;
  q

let parse_expr_string ~dialect input =
  let p = make ~dialect input in
  let e = parse_expr p in
  check_eof p;
  e
