(** Lexical tokens. Keywords are not distinguished from identifiers at the
    lexical level (SQL keywords are context-sensitive); the parser matches on
    the uppercased word. *)

type kind =
  | Word of string  (** bare identifier / keyword, normalized to uppercase *)
  | Quoted_ident of string  (** "..." — case preserved *)
  | Int_lit of int64
  | Number_lit of string  (** decimal or float literal, original text *)
  | String_lit of string  (** '...' with '' unescaped *)
  | Param  (** positional parameter [?] *)
  | Symbol of string  (** operator or punctuation *)
  | Eof

type t = { kind : kind; line : int; col : int; off : int; stop : int }
(** [off] is the byte offset of the token's first character in the input
    (input length for [Eof]); [stop] is the byte offset one past its last
    character ([off = stop] for [Eof]). Together they let the parser recover
    the exact source text of a statement span — including for a trailing
    statement with no [;] terminator, whose span must end at its last token
    rather than at the end of the input (which may hold trailing trivia). *)

let kind_to_string = function
  | Word w -> w
  | Quoted_ident q -> Printf.sprintf "%S" q
  | Int_lit n -> Int64.to_string n
  | Number_lit s -> s
  | String_lit s -> Printf.sprintf "'%s'" s
  | Param -> "?"
  | Symbol s -> s
  | Eof -> "<eof>"

let to_string t =
  Printf.sprintf "%s at line %d, column %d" (kind_to_string t.kind) t.line t.col
