(** The Hyper-Q translation pipeline (paper Figure 3) — the library's main
    entry point.

    One statement flows: parse (source dialect) → bind/algebrize → transform
    (fixed point, capability-gated) → serialize (target dialect) → ODBC
    Server → backend engine → TDF → Result Converter → WP-A records.
    Statements the backend cannot run in one request are routed to the
    emulation layer. *)

open Hyperq_sqlvalue

type timings = {
  mutable translate_s : float;  (** parse + bind + transform + serialize *)
  mutable execute_s : float;  (** backend execution (incl. request latency) *)
  mutable convert_s : float;  (** TDF packaging + WP-A record conversion *)
}

(** Fine-grained pipeline stages; each is a span on the query trace and a
    cell of the [hyperq_pipeline_stage_seconds] histogram. The coarse
    Figure 9 buckets in {!timings} are derived from them ([Execute] →
    execute, [Convert] → convert, everything else → translate). *)
type stage =
  | Lex
  | Parse
  | Cache_lookup
  | Bind
  | Transform
  | Serialize
  | Execute
  | Convert

val stage_name : stage -> string
val stage_index : stage -> int
val all_stages : stage list

(** Pre-built metric handles into the pipeline's registry (see
    {!Hyperq_obs.Obs}); benches read the stage histograms through these. *)
type telemetry = {
  obs : Hyperq_obs.Obs.t;
  stage_hists : Hyperq_obs.Obs.histogram array;
      (** indexed by {!stage_index} *)
  query_hist : Hyperq_obs.Obs.histogram;  (** end-to-end statement latency *)
  queries_total : Hyperq_obs.Obs.counter;
  retries_total : Hyperq_obs.Obs.counter;
  error_counters :
    (Hyperq_sqlvalue.Sql_error.kind * Hyperq_obs.Obs.counter) list;
      (** one counter per error kind, pre-registered so all ten kinds render
          (at zero) before any failure occurs *)
  validator_runs_total : Hyperq_obs.Obs.counter;
  validator_violations_total : Hyperq_obs.Obs.counter;
}

type t = {
  vcatalog : Hyperq_catalog.Catalog.t;  (** virtual (source-side) catalog *)
  backend : Hyperq_engine.Backend.t;  (** the target warehouse substrate *)
  cap : Hyperq_transform.Capability.t;
  odbc : Odbc_server.t;
  cache : Plan_cache.t;  (** versioned translation cache, shared by sessions *)
  resil : Resilience.t;  (** retry/backoff + circuit breaker for the backend *)
  rules : Hyperq_rules.Registry.t;
      (** runtime-loaded rewrite-rule packs, shared by every session *)
  mutable default_rule_packs : string list;
      (** gateway-default pack layer, applied before each session's own
          [Session.rule_packs] *)
  tel : telemetry;  (** metric handles into the pipeline's registry *)
  clock : Hyperq_obs.Obs.clock;
      (** time source for stage timing and session stamps (the registry's) *)
  lock : Mutex.t;  (** serializes backend access and catalog mutation *)
  validate : bool;
      (** run the plan validator after bind and after each transform pass *)
  infer_rel_rules :
    (Hyperq_transform.Transformer.ctx ->
    Hyperq_xtra.Xtra.rel ->
    Hyperq_xtra.Xtra.rel option)
    list;
      (** inference-driven relational passes (contradiction pruning,
          outer-join strengthening) appended to every Transformer run;
          empty when the pipeline was created with [~infer:false] *)
  mutable validator_diags : Hyperq_analyze.Diag.t list;
      (** most recent validator diagnostics, newest first (capped);
          guarded by [lock] *)
  mutable temp_counter : int;
  mutable queries_translated : int;  (** guarded by [lock] *)
}

type outcome = {
  out_schema : (string * Dtype.t) list;
  out_rows : Value.t array list;
  out_records : string list;  (** rows re-encoded in the WP-A record format *)
  out_columns : Hyperq_tdf.Tdf.column_desc list;
  out_activity : string;
  out_count : int;  (** result rows for queries, affected rows for DML *)
  out_sql : string list;  (** statements actually sent to the backend *)
  out_observation : Feature_tracker.observation;
  out_timings : timings;
  out_emulation_trace : string list;  (** §6-style step log, when emulated *)
}

(** [create ~cap ~request_latency_s ~plan_cache_capacity ~fault ~resil ~obs
    ~obs_labels ()] builds a pipeline over a fresh backend engine. [cap]
    selects the target profile (default: the executing [ansi_engine]);
    [request_latency_s] simulates a per-request round trip (default 0; used
    by the DML-batching ablation); [plan_cache_capacity] bounds the
    translation cache (default 512; 0 disables caching); [fault] installs a
    fault-injection shim on the backend request path; [resil] supplies the
    resilience executor (default: {!Resilience.create} with the default
    policy and real clock). [obs] supplies the observability registry
    (default: a fresh enabled one; pass {!Hyperq_obs.Obs.noop} to disable
    telemetry); [obs_labels] is baked into every metric this pipeline
    registers (scale-out passes [("replica", i)]). The pipeline's stage
    timing runs on the registry's clock. [infer] (default true) appends
    the {!Hyperq_analyze.Infer} relational passes (contradiction pruning,
    outer-join strengthening) to every Transformer run. *)
val create :
  ?cap:Hyperq_transform.Capability.t ->
  ?request_latency_s:float ->
  ?plan_cache_capacity:int ->
  ?fault:Hyperq_engine.Fault.t ->
  ?resil:Resilience.t ->
  ?obs:Hyperq_obs.Obs.t ->
  ?obs_labels:(string * string) list ->
  ?validate:bool ->
  ?infer:bool ->
  unit ->
  t

(** The pipeline's observability registry. *)
val obs : t -> Hyperq_obs.Obs.t

(** With [~validate:true], the plan validator ({!Hyperq_analyze.Validator})
    runs over every bound statement and after each transformer fixed-point
    pass; violations introduced by a pass are attributed to the rules that
    fired in it. This returns the most recent diagnostics, newest first
    (capped); runs and violations are also counted in the
    [hyperq_validator_runs_total] / [hyperq_validator_violations_total]
    metrics. *)
val validator_diagnostics : t -> Hyperq_analyze.Diag.t list

(** Run one source-dialect (Teradata) SQL statement end to end. [params]
    binds positional [?] markers left to right; [session] carries settings,
    transaction state, and volatile tables across calls. *)
val run_sql :
  t -> ?session:Session.t -> ?params:Value.t list -> string -> outcome

(** Run an already-parsed statement (used by the gateway and scale-out).
    [parse_s] carries the caller's parse cost into the translate timing
    bucket. *)
val run_statement_ast :
  t ->
  ?session:Session.t ->
  ?params:Value.t list ->
  ?parse_s:float ->
  sql_text:string ->
  Hyperq_sqlparser.Ast.statement ->
  outcome

(** Run a [;]-separated script; one outcome per statement. *)
val run_script : t -> ?session:Session.t -> string -> outcome list

(** The paper's §4.3 performance transformation: coalesce contiguous
    single-row INSERTs into multi-row statements. Returns the rewritten
    statement list and the number of statements absorbed. *)
val batch_single_row_dml :
  Hyperq_sqlparser.Ast.statement list ->
  Hyperq_sqlparser.Ast.statement list * int

(** {!run_script} with {!batch_single_row_dml} applied first; returns one
    outcome per executed statement plus the number absorbed. *)
val run_script_batched :
  t -> ?session:Session.t -> string -> outcome list * int

(** Translate only (no execution): the serialized target SQL for [cap]
    (default: the pipeline's own target). Raises [Capability_gap] for
    statements owned by the emulation layer. Consults and populates the
    plan cache. *)
val translate : t -> ?cap:Hyperq_transform.Capability.t -> string -> string

(** Counters of the pipeline's translation cache. Thin view over
    {!Plan_cache.stats}; the same numbers are exported through the registry
    as [hyperq_plan_cache_*] via pull collectors. *)
val cache_stats : t -> Plan_cache.stats

(** Retry/breaker counters of the pipeline's resilience layer. Thin view
    over {!Resilience.stats}; exported as [hyperq_resilience_events_total]
    and [hyperq_breaker_state] via pull collectors. *)
val resilience_stats : t -> Resilience.stats

(** Set the vectorized executor's intra-statement parallelism budget
    (morsel-driven execution domains) for subsequent statements on this
    pipeline's backend, clamped to [1 .. Morsel.max_domains]; 1 = fully
    sequential. New pipelines start from [HYPERQ_EXEC_DOMAINS]. *)
val set_exec_domains : t -> int -> unit

(** Current state of the backend circuit breaker. *)
val breaker_state : t -> Resilience.breaker_state

(** One-line rendering of breaker state + resilience counters (REPL
    [\health]). *)
val health_to_string : t -> string

(** Instrument a statement without executing it (parse → bind → transform
    plus static emulation detection) — the §7.1 measurement methodology. *)
val observe_sql : t -> string -> Feature_tracker.observation

(** Logoff cleanup: drop the session's volatile tables. *)
val end_session : t -> Session.t -> unit

(** {1 Runtime-loadable rewrite-rule packs}

    Rule packs are text files ({!Hyperq_rules.Dsl}) compiled to extra
    Transformer rules at load time, screened over a corpus plus a
    differential sample before they can reach traffic, and layered
    per-gateway (the default layer) or per-session
    ([SET SESSION RULE_PACKS 'a,b']). The active pack-set id is part of
    every plan-cache key, so load/reload/drop can never serve a stale
    plan. *)

(** What {!load_rule_pack} accepted. *)
type rules_report = {
  rr_pack : Hyperq_rules.Registry.pack_info;  (** as installed *)
  rr_screened : int;  (** corpus statements screened *)
  rr_skipped : int;  (** emulation-class / unbindable statements skipped *)
  rr_screen_fires : int;  (** pack-rule fires during screening *)
  rr_warnings : Hyperq_analyze.Diag.t list;  (** R301 never-fired warnings *)
  rr_diff_queries : int;  (** differential queries compared *)
  rr_diff_nondet_skipped : int;
      (** differential queries skipped because they call non-immutable
          built-ins (their results legitimately differ between runs) *)
  rr_activated : bool;  (** added to the gateway-default layer *)
}

(** Parse, statically screen ({!Hyperq_rules.Soundness}, codes R111–R114
    — rejected packs never execute a single corpus statement), compile,
    screen (over [corpus], a list of [(script_name, sql_text)] pairs) and
    differentially test a pack from its source text, then install it.
    [diff_setup] populates the two scratch pipelines (base and packed)
    that run [diff_queries]; any result divergence rejects the pack with
    R202 (statements calling non-immutable built-ins are skipped and
    counted in [rr_diff_nondet_skipped] instead of compared). All
    rejections are spanned diagnostics into the pack text and bump
    [hyperq_rules_events_total{event="rejection"}]. [activate] (default
    true) adds the pack to the gateway-default layer. *)
val load_rule_pack :
  t ->
  ?activate:bool ->
  corpus:(string * string) list ->
  ?diff_setup:(t -> unit) ->
  ?diff_queries:string list ->
  string ->
  (rules_report, Hyperq_analyze.Diag.t list) result

(** Remove a pack from the registry and the default layer; true if it was
    loaded. Cached plans translated under it are keyed by the old set id
    and simply never hit again. *)
val drop_rule_pack : t -> string -> bool

val rules_registry : t -> Hyperq_rules.Registry.t
val default_rule_packs : t -> string list

(** Replace the gateway-default pack layer (names resolved per statement;
    unloaded names are ignored). *)
val set_default_rule_packs : t -> string list -> unit
