(** Versioned translation-plan cache.

    Memoizes the translation pipeline (parse → bind → transform → serialize)
    by exact SQL text, source dialect and target capability profile. Every
    entry is stamped with the virtual catalog's monotonic DDL version; any
    schema change makes older entries stale, and a stale entry is dropped
    (and counted as an invalidation) the next time it is looked up.

    Parameterized statements are cached as their pre-substitution bound
    form, so the same text hits under different [?] bindings (skipping
    parse + bind); param-free statements additionally cache the final target
    SQL (skipping translation entirely).

    Bounded LRU; all operations are O(1) and guarded by an internal mutex,
    safe for concurrent gateway sessions. *)

type key

(** [key ~rules ~sql ~dialect ~cap] — the active rule-pack set id (from
    [Rules.Registry.active]; [""] = no packs), exact source text, source
    dialect name, target capability-profile name. Including the set id —
    pack names plus their load generations — means loading, reloading or
    dropping a pack changes the key, so a plan translated under a
    different pack set can never be served stale. *)
val key : rules:string -> sql:string -> dialect:string -> cap:string -> key

type plan = {
  p_target_sql : string;  (** serialized target SQL *)
  p_no_op : bool;  (** statement translated away; nothing to execute *)
}

type entry = {
  e_bound : Hyperq_xtra.Xtra.statement;
      (** bound form, before parameter substitution *)
  e_has_params : bool;
  e_binder_features : string list;
  e_rules : string list;  (** transformer rules fired at miss time *)
  e_plan : plan option;  (** [None] when [e_has_params] *)
  e_bind_s : float;  (** parse+bind cost observed at miss time *)
  e_translate_s : float;  (** full translation cost observed at miss time *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  saved_translate_s : float;
  saved_bind_s : float;
}

type t

(** [create ~capacity] — a capacity of 0 (or less) disables the cache:
    every [find] returns [None] without recording stats, every [add] is a
    no-op. *)
val create : capacity:int -> t

val enabled : t -> bool

(** Look up at catalog [version]; promotes the entry on hit, drops it as an
    invalidation when the version moved on. *)
val find : t -> version:int -> key -> entry option

(** Insert or refresh; evicts the LRU entry when full. *)
val add : t -> version:int -> key -> entry -> unit

val clear : t -> unit
val stats : t -> stats
val hit_rate : stats -> float
val stats_to_string : stats -> string

(** Detect positional [?] markers in a bound statement. *)
val bound_has_params : Hyperq_xtra.Xtra.statement -> bool
