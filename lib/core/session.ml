(** Per-connection session state (paper §4, "Gateway Manager").

    Emulated features frequently need state kept in the virtualization layer
    (paper §2.1: "Emulation typically uses ... state information maintained
    in the application layer"): session settings for HELP SESSION, open
    transactions, and the set of session-scoped volatile tables to drop on
    logoff. *)

type t = {
  session_id : int;
  username : string;
  mutable settings : (string * string) list;
  mutable in_transaction : bool;
  mutable volatile_tables : string list;
  mutable queries_run : int;
  mutable deadline_s : float option;
      (** per-statement time budget for backend retries (SET SESSION
          QUERY_DEADLINE); [None] falls back to the pipeline's policy *)
  mutable deadline_anchor : float option;
      (** absolute clock time at which the *next* statement's deadline
          budget starts. The network front door stamps this at admission,
          so time spent waiting in the accept/admission queue counts
          against the statement's budget instead of silently extending it.
          Consumed (and cleared) by the pipeline when the statement runs;
          [None] means the budget starts when execution begins. *)
  mutable rule_packs : string list;
      (** session-layer rewrite-rule packs (SET SESSION RULE_PACKS),
          applied after the pipeline's gateway-default packs; resolved
          against the pipeline's rule registry per statement *)
  created_at : float;
}

let counter = ref 0

let default_settings =
  [
    ("CHARACTER_SET", "ASCII");
    ("COLLATION", "ASCII");
    ("DATEFORM", "INTEGERDATE");
    ("TIMEZONE", "GMT");
    ("TRANSACTION_SEMANTICS", "TERADATA");
    ("DEFAULT_DATABASE", "DBC");
  ]

(* [created_at] lets the gateway/pipeline stamp sessions from their
   injectable clock; the wall clock is only a fallback for bare callers *)
let create ?(username = "HYPERQ") ?created_at () =
  incr counter;
  {
    session_id = !counter;
    username;
    settings = default_settings;
    in_transaction = false;
    volatile_tables = [];
    queries_run = 0;
    deadline_s = None;
    deadline_anchor = None;
    rule_packs = [];
    created_at =
      (match created_at with Some c -> c | None -> Unix.gettimeofday ());
  }

let set_deadline_anchor t at = t.deadline_anchor <- Some at

(* one-shot: the anchor covers exactly the next statement *)
let take_deadline_anchor t =
  let a = t.deadline_anchor in
  t.deadline_anchor <- None;
  a

let set_setting t name value =
  t.settings <-
    (String.uppercase_ascii name, value)
    :: List.remove_assoc (String.uppercase_ascii name) t.settings

let get_setting t name =
  List.assoc_opt (String.uppercase_ascii name) t.settings

let register_volatile t name =
  if not (List.mem name t.volatile_tables) then
    t.volatile_tables <- name :: t.volatile_tables

let unregister_volatile t name =
  t.volatile_tables <- List.filter (fun n -> n <> name) t.volatile_tables
