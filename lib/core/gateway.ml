(** Gateway Manager: connects WP-A protocol sessions to the pipeline.

    Each client connection gets a {!Session.t} and a wire-protocol state
    machine; authenticated [Run_request]s flow through the translation
    pipeline and results are sent back as WP-A parcels, giving the client a
    bit-identical conversation with "Teradata" while the engine does the
    work (paper Figure 1(b)). *)

open Hyperq_sqlvalue
module Message = Hyperq_wire.Message
module Protocol_handler = Hyperq_wire.Protocol_handler
module Tdf = Hyperq_tdf.Tdf

module Obs = Hyperq_obs.Obs

type t = {
  pipeline : Pipeline.t;
  users : Hyperq_wire.Auth.user_db;
  mutable sessions : (int * Session.t) list;
  lock : Mutex.t;
  connections_total : Obs.counter;
}

let create ?(users = [ ("DBC", "DBC") ]) pipeline =
  let obs = Pipeline.obs pipeline in
  let t =
    {
      pipeline;
      users;
      sessions = [];
      lock = Mutex.create ();
      connections_total =
        Obs.counter obs ~help:"Client connections accepted by the gateway"
          "hyperq_connections_total";
    }
  in
  (* The session list is an immutable cons list only ever REPLACED under the
     lock, so collectors take the lock just long enough to snapshot the list
     pointer and do all row/stat construction outside the critical section —
     a metrics scrape never stalls connect/disconnect on the hot path.
     Per-session rows keep the paper's "per-session query counts" visible in
     \metrics. *)
  let snapshot_sessions () =
    Mutex.lock t.lock;
    let sessions = t.sessions in
    Mutex.unlock t.lock;
    sessions
  in
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Currently connected gateway sessions" "hyperq_active_sessions"
    (fun () -> [ ([], float_of_int (List.length (snapshot_sessions ()))) ]);
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Statements run by each currently connected session"
    "hyperq_session_queries" (fun () ->
      List.map
        (fun (id, s) ->
          ( [ ("session", string_of_int id); ("user", s.Session.username) ],
            float_of_int s.Session.queries_run ))
        (snapshot_sessions ()));
  t

type connection = {
  gateway : t;
  session : Session.t;
  handler : Protocol_handler.t;
}

let executor t session ~sql :
    (Protocol_handler.query_result, Sql_error.t) result =
  match Sql_error.protect (fun () -> Pipeline.run_sql t.pipeline ~session sql) with
  | Ok outcome ->
      Ok
        {
          Protocol_handler.qr_columns =
            List.map
              (fun (c : Tdf.column_desc) ->
                { Message.col_name = c.Tdf.cd_name; col_type = c.Tdf.cd_type })
              outcome.Pipeline.out_columns;
          qr_rows = outcome.Pipeline.out_rows;
          qr_activity = outcome.Pipeline.out_activity;
          qr_count = outcome.Pipeline.out_count;
        }
  | Error e -> Error e

(** Open a server-side connection endpoint. Feed it client bytes with
    {!feed}. [wrap] interposes on every statement execution — the network
    front door uses it for admission control and queue-time deadline
    stamping; it receives the SQL, the session, and a thunk running the
    statement through the pipeline. [max_frame_bytes] is forwarded to the
    protocol handler's framing guard. *)
let connect t ?(username = "DBC") ?wrap ?max_frame_bytes () =
  let session =
    Session.create ~username
      ~created_at:((Obs.clock (Pipeline.obs t.pipeline)).Obs.now ())
      ()
  in
  let exec =
    match wrap with
    | None -> executor t session
    | Some w ->
        fun ~sql -> w ~sql ~session (fun () -> executor t session ~sql)
  in
  (* register only once the handler exists: if [Protocol_handler.create]
     raises, no entry is left behind in [t.sessions] (a session leak). *)
  let handler =
    Protocol_handler.create ?max_frame_bytes ~users:t.users ~executor:exec ()
  in
  Mutex.lock t.lock;
  t.sessions <- (session.Session.session_id, session) :: t.sessions;
  Mutex.unlock t.lock;
  Obs.inc t.connections_total;
  { gateway = t; session; handler }

let pipeline t = t.pipeline
let feed conn bytes = Protocol_handler.feed conn.handler bytes
let connection_closed conn = Protocol_handler.is_closed conn.handler
let connection_protocol_errors conn = Protocol_handler.protocol_errors conn.handler
let connection_session conn = conn.session

let disconnect conn =
  Pipeline.end_session conn.gateway.pipeline conn.session;
  Mutex.lock conn.gateway.lock;
  conn.gateway.sessions <-
    List.filter
      (fun (id, _) -> id <> conn.session.Session.session_id)
      conn.gateway.sessions;
  Mutex.unlock conn.gateway.lock

let active_sessions t =
  Mutex.lock t.lock;
  let sessions = t.sessions in
  Mutex.unlock t.lock;
  List.length sessions
