(** Per-connection session state (paper §4, "Gateway Manager").

    Emulated features keep state in the virtualization layer: session
    settings for HELP SESSION / SET SESSION, transaction status, and the
    volatile tables to drop at logoff. *)

type t = {
  session_id : int;
  username : string;
  mutable settings : (string * string) list;
  mutable in_transaction : bool;
  mutable volatile_tables : string list;
  mutable queries_run : int;
  mutable deadline_s : float option;
      (** per-statement time budget for backend retries (SET SESSION
          QUERY_DEADLINE); [None] falls back to the pipeline's policy *)
  mutable deadline_anchor : float option;
      (** absolute clock time at which the next statement's deadline budget
          starts (stamped at admission by the network front door; consumed
          by the pipeline) *)
  mutable rule_packs : string list;
      (** session-layer rewrite-rule packs (SET SESSION RULE_PACKS),
          applied after the pipeline's gateway-default packs *)
  created_at : float;
}

(** [create ~username ~created_at ()] — [created_at] should come from the
    caller's injectable clock (gateway/pipeline pass theirs), so session
    timestamps are deterministic under fake time; bare callers fall back to
    the wall clock. *)
val create : ?username:string -> ?created_at:float -> unit -> t

(** Stamp the admission time of the next statement: its deadline budget
    (session override or policy default) is measured from here, so queue
    wait in the front door counts against the budget. *)
val set_deadline_anchor : t -> float -> unit

(** Consume (and clear) the pending anchor — used by the pipeline when the
    statement starts executing. *)
val take_deadline_anchor : t -> float option

val set_setting : t -> string -> string -> unit
val get_setting : t -> string -> string option
val register_volatile : t -> string -> unit
val unregister_volatile : t -> string -> unit
