(** Compatibility re-export: {!Hyperq_analyze.Feature_tracker} moved into
    the static-analysis library so the offline workload analyzer can reuse
    it without a dependency cycle. Existing call sites keep addressing it as
    [Hyperq_core.Feature_tracker]. *)

include Hyperq_analyze.Feature_tracker
