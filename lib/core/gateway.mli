(** Gateway Manager: connects WP-A protocol sessions to the pipeline.

    Each client connection gets a {!Session.t} and a wire-protocol state
    machine; authenticated requests flow through the translation pipeline
    and results return as WP-A parcels (paper Figure 1(b)). *)

type t

(** [create ~users pipeline] — [users] is the logon database (default:
    [("DBC", "DBC")]). Registers gateway telemetry (connection counter,
    active-session and per-session query-count gauges) on the pipeline's
    observability registry. *)
val create : ?users:Hyperq_wire.Auth.user_db -> Pipeline.t -> t

(** The pipeline this gateway fronts (shared Obs registry lives there). *)
val pipeline : t -> Pipeline.t

type connection

(** Open a server-side connection endpoint; drive it with {!feed}. [wrap]
    interposes on each statement execution (SQL text, session, and a thunk
    running the statement through the pipeline) — the TCP front door uses it
    for admission control and for stamping the statement's deadline anchor
    at admission. [max_frame_bytes] bounds inbound wire frames (see
    {!Hyperq_wire.Protocol_handler.create}). *)
val connect :
  t ->
  ?username:string ->
  ?wrap:
    (sql:string ->
    session:Session.t ->
    (unit ->
    (Hyperq_wire.Protocol_handler.query_result, Hyperq_sqlvalue.Sql_error.t)
    result) ->
    (Hyperq_wire.Protocol_handler.query_result, Hyperq_sqlvalue.Sql_error.t)
    result) ->
  ?max_frame_bytes:int ->
  unit ->
  connection

(** Feed raw client bytes; returns raw response bytes. *)
val feed : connection -> string -> string

(** True once the protocol handler closed the conversation (logoff or a
    poisoned stream) — the transport should flush and hang up. *)
val connection_closed : connection -> bool

(** Malformed-frame events seen by this connection's protocol handler. *)
val connection_protocol_errors : connection -> int

val connection_session : connection -> Session.t

(** Logoff cleanup: drops the session's volatile tables. *)
val disconnect : connection -> unit

val active_sessions : t -> int
