(** Gateway Manager: connects WP-A protocol sessions to the pipeline.

    Each client connection gets a {!Session.t} and a wire-protocol state
    machine; authenticated requests flow through the translation pipeline
    and results return as WP-A parcels (paper Figure 1(b)). *)

type t

(** [create ~users pipeline] — [users] is the logon database (default:
    [("DBC", "DBC")]). Registers gateway telemetry (connection counter,
    active-session and per-session query-count gauges) on the pipeline's
    observability registry. *)
val create : ?users:Hyperq_wire.Auth.user_db -> Pipeline.t -> t

type connection

(** Open a server-side connection endpoint; drive it with {!feed}. *)
val connect : t -> ?username:string -> unit -> connection

(** Feed raw client bytes; returns raw response bytes. *)
val feed : connection -> string -> string

(** Logoff cleanup: drops the session's volatile tables. *)
val disconnect : connection -> unit

val active_sessions : t -> int
