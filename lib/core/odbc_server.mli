(** ODBC Server (paper §4.5): the abstraction through which Hyper-Q talks to
    target database systems. Adding a new backend means providing another
    {!driver} value; results are packaged into TDF batches. *)

module Backend = Hyperq_engine.Backend

type driver = {
  driver_name : string;
  submit : sql:string -> Backend.result;
}

type t

(** The driver for the in-repo engine. *)
val engine_driver : Backend.t -> driver

(** [create ~batch_rows ~request_latency_s ~fault driver] — results are
    packaged in TDF batches of [batch_rows] rows (default 512);
    [request_latency_s] simulates a per-request round trip to the target
    (default 0); [fault] installs a fault-injection shim that runs before
    every forwarded request. *)
val create :
  ?batch_rows:int ->
  ?request_latency_s:float ->
  ?fault:Hyperq_engine.Fault.t ->
  driver ->
  t

(** Submit one request, paying the simulated round trip. *)
val submit : t -> sql:string -> Backend.result

type response = {
  columns : Hyperq_tdf.Tdf.column_desc list;
  store : Hyperq_tdf.Result_store.t;  (** results as TDF batches *)
  activity : string;
  activity_count : int;
}

(** Submit and package the results into TDF batches (the §4.5 path). *)
val execute : t -> sql:string -> response
