(** The Hyper-Q translation pipeline (paper Figure 3).

    One statement flows: parse (source dialect) → bind/algebrize → transform
    (fixed point, capability-gated) → serialize (target dialect) →
    ODBC Server → backend engine → TDF → Result Converter → WP-A records.
    Statements the backend cannot run in one request are routed to
    {!Emulation}.

    The pipeline owns the *virtual* catalog (the Teradata-side schema,
    including views, macros, SET-semantics and PERIOD columns) and keeps it
    in sync with the backend's physical catalog as DDL flows through. Per-
    query timings are split into the three buckets Figure 9 reports:
    translation, execution, and result conversion. *)

open Hyperq_sqlvalue
open Hyperq_sqlparser
module Xtra = Hyperq_xtra.Xtra
module Catalog = Hyperq_catalog.Catalog
module Binder = Hyperq_binder.Binder
module Capability = Hyperq_transform.Capability
module Transformer = Hyperq_transform.Transformer
module Serializer = Hyperq_serialize.Serializer
module Backend = Hyperq_engine.Backend
module Tdf = Hyperq_tdf.Tdf
module Obs = Hyperq_obs.Obs
module Validator = Hyperq_analyze.Validator
module Diag = Hyperq_analyze.Diag
module Infer = Hyperq_analyze.Infer
module Rules_dsl = Hyperq_rules.Dsl
module Rules_compile = Hyperq_rules.Compile
module Rules_screen = Hyperq_rules.Screen
module Rules_soundness = Hyperq_rules.Soundness
module Rules_registry = Hyperq_rules.Registry

type timings = {
  mutable translate_s : float;
  mutable execute_s : float;
  mutable convert_s : float;
}

let zero_timings () = { translate_s = 0.; execute_s = 0.; convert_s = 0. }

(* The fine-grained stages a statement passes through; each gets a span on
   the query trace and a cell in the hyperq_pipeline_stage_seconds
   histogram. The three Figure 9 buckets are derived from them. *)
type stage =
  | Lex
  | Parse
  | Cache_lookup
  | Bind
  | Transform
  | Serialize
  | Execute
  | Convert

let stage_name = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Cache_lookup -> "cache_lookup"
  | Bind -> "bind"
  | Transform -> "transform"
  | Serialize -> "serialize"
  | Execute -> "execute"
  | Convert -> "convert"

let stage_index = function
  | Lex -> 0
  | Parse -> 1
  | Cache_lookup -> 2
  | Bind -> 3
  | Transform -> 4
  | Serialize -> 5
  | Execute -> 6
  | Convert -> 7

let all_stages =
  [ Lex; Parse; Cache_lookup; Bind; Transform; Serialize; Execute; Convert ]

(* the coarse Figure 9 bucket each stage belongs to *)
let stage_bucket = function
  | Execute -> `Execute
  | Convert -> `Convert
  | Lex | Parse | Cache_lookup | Bind | Transform | Serialize -> `Translate

let all_error_kinds =
  [
    Sql_error.Parse_error;
    Sql_error.Bind_error;
    Sql_error.Unsupported;
    Sql_error.Capability_gap;
    Sql_error.Execution_error;
    Sql_error.Transient_error;
    Sql_error.Unavailable;
    Sql_error.Protocol_error;
    Sql_error.Conversion_error;
    Sql_error.Internal_error;
  ]

(* pre-built metric handles; one set per pipeline so scale-out replicas
   sharing a registry stay distinguishable through their label sets *)
type telemetry = {
  obs : Obs.t;
  stage_hists : Obs.histogram array;  (** indexed by the stage order above *)
  query_hist : Obs.histogram;  (** end-to-end statement latency *)
  queries_total : Obs.counter;
  retries_total : Obs.counter;
  error_counters : (Hyperq_sqlvalue.Sql_error.kind * Obs.counter) list;
  validator_runs_total : Obs.counter;
  validator_violations_total : Obs.counter;
}

type t = {
  vcatalog : Catalog.t;  (** virtual (source-side) catalog *)
  backend : Backend.t;
  cap : Capability.t;
  odbc : Odbc_server.t;
  cache : Plan_cache.t;  (** versioned translation cache, shared by sessions *)
  resil : Resilience.t;  (** retry/backoff + circuit breaker for the backend *)
  rules : Rules_registry.t;
      (** runtime-loaded rewrite-rule packs, shared by every session *)
  mutable default_rule_packs : string list;
      (** gateway-default pack layer, applied before each session's own
          [Session.rule_packs] (set via [load_rule_pack ~activate:true]) *)
  tel : telemetry;  (** metric handles into the pipeline's registry *)
  clock : Obs.clock;  (** time source for stage timing and session stamps *)
  lock : Mutex.t;  (** serializes backend access and catalog mutation *)
  validate : bool;
      (** run the plan validator after bind and after each transform pass *)
  infer_rel_rules : (Transformer.ctx -> Xtra.rel -> Xtra.rel option) list;
      (** inference-driven relational passes (contradiction pruning,
          outer-join strengthening) appended to every Transformer run;
          empty when the pipeline was created with [~infer:false] *)
  mutable validator_diags : Diag.t list;
      (** most recent validator diagnostics, newest first (capped) *)
  mutable temp_counter : int;
  mutable queries_translated : int;
}

type outcome = {
  out_schema : (string * Dtype.t) list;
  out_rows : Value.t array list;
  out_records : string list;  (** rows re-encoded in the WP-A record format *)
  out_columns : Tdf.column_desc list;
  out_activity : string;
  out_count : int;
  out_sql : string list;  (** statements actually sent to the backend *)
  out_observation : Feature_tracker.observation;
  out_timings : timings;
  out_emulation_trace : string list;
}

let error_kind_label kind =
  String.map
    (fun c -> if c = ' ' then '_' else c)
    (Sql_error.kind_to_string kind)

(* Build this pipeline's metric handles and register its pull collectors.
   The plan cache and the resilience layer keep their own counters (their
   locks are fine-grained and pre-date the registry); the registry samples
   them at render time, so [cache_stats]/[resilience_stats] and \metrics
   read the same numbers with no dual-writing. [labels] distinguishes
   replicas sharing one registry. Collector closures take subsystem locks
   under the registry lock, so *record* calls must never run while holding
   a subsystem lock (see [bump_counters]). *)
let make_telemetry obs ~labels cache resil rules =
  let tel =
    {
      obs;
      stage_hists =
        (let h stage =
           Obs.histogram obs ~labels:(("stage", stage_name stage) :: labels)
             ~help:"Per-stage pipeline latency (Figure 9 derives from this)"
             "hyperq_pipeline_stage_seconds"
         in
         Array.of_list (List.map h all_stages));
      query_hist =
        Obs.histogram obs ~labels
          ~help:"End-to-end statement latency through the pipeline"
          "hyperq_query_seconds";
      queries_total =
        Obs.counter obs ~labels ~help:"Statements run through the pipeline"
          "hyperq_queries_total";
      retries_total =
        Obs.counter obs ~labels ~help:"Backend retries taken by statements"
          "hyperq_backend_retries_total";
      error_counters =
        List.map
          (fun kind ->
            ( kind,
              Obs.counter obs
                ~labels:(("kind", error_kind_label kind) :: labels)
                ~help:"Statements failed, by error kind" "hyperq_errors_total"
            ))
          all_error_kinds;
      validator_runs_total =
        Obs.counter obs ~labels
          ~help:"Plan validator invocations (post-bind and per transform pass)"
          "hyperq_validator_runs_total";
      validator_violations_total =
        Obs.counter obs ~labels
          ~help:"Invariant violations reported by the plan validator"
          "hyperq_validator_violations_total";
    }
  in
  let pull rows = List.map (fun (ls, v) -> (ls @ labels, v)) rows in
  Obs.register_collector obs ~kind:`Counter
    ~help:"Plan cache events (sampled from the cache's own counters)"
    "hyperq_plan_cache_events_total" (fun () ->
      let s = Plan_cache.stats cache in
      pull
        [
          ([ ("event", "hit") ], float_of_int s.Plan_cache.hits);
          ([ ("event", "miss") ], float_of_int s.Plan_cache.misses);
          ([ ("event", "eviction") ], float_of_int s.Plan_cache.evictions);
          ( [ ("event", "invalidation") ],
            float_of_int s.Plan_cache.invalidations );
        ]);
  Obs.register_collector obs ~kind:`Gauge ~help:"Plan cache resident entries"
    "hyperq_plan_cache_entries" (fun () ->
      let s = Plan_cache.stats cache in
      pull [ ([], float_of_int s.Plan_cache.entries) ]);
  Obs.register_collector obs ~kind:`Counter
    ~help:"Translation seconds saved by plan cache hits"
    "hyperq_plan_cache_saved_seconds_total" (fun () ->
      let s = Plan_cache.stats cache in
      pull
        [
          ([ ("phase", "translate") ], s.Plan_cache.saved_translate_s);
          ([ ("phase", "bind") ], s.Plan_cache.saved_bind_s);
        ]);
  Obs.register_collector obs ~kind:`Counter
    ~help:"Resilience events (sampled from the executor's own counters)"
    "hyperq_resilience_events_total" (fun () ->
      let s = Resilience.stats resil in
      pull
        [
          ([ ("event", "attempt") ], float_of_int s.Resilience.st_attempts);
          ([ ("event", "retry") ], float_of_int s.Resilience.st_retries);
          ([ ("event", "absorbed") ], float_of_int s.Resilience.st_absorbed);
          ([ ("event", "exhausted") ], float_of_int s.Resilience.st_exhausted);
          ( [ ("event", "deadline_exceeded") ],
            float_of_int s.Resilience.st_deadline_exceeded );
          ( [ ("event", "rejected_open") ],
            float_of_int s.Resilience.st_rejected_open );
          ( [ ("event", "breaker_open") ],
            float_of_int s.Resilience.st_breaker_opens );
          ( [ ("event", "breaker_close") ],
            float_of_int s.Resilience.st_breaker_closes );
        ]);
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Circuit breaker state (0 closed, 1 half-open, 2 open)"
    "hyperq_breaker_state" (fun () ->
      let v =
        match Resilience.breaker_state resil with
        | Resilience.Closed -> 0.
        | Resilience.Half_open -> 1.
        | Resilience.Open -> 2.
      in
      pull [ ([], v) ]);
  Obs.register_collector obs ~kind:`Counter
    ~help:
      "Vectorized-executor events (sampled from the engine's own counters)"
    "hyperq_exec_batch_events_total" (fun () ->
      pull
        (List.map
           (fun (k, v) -> ([ ("event", k) ], float_of_int v))
           (Hyperq_engine.Batch_exec.counters ())));
  Obs.register_collector obs ~kind:`Counter
    ~help:
      "Morsel scheduler counters (parallel runs, bodies, barrier wait, \
       per-domain morsel counts)"
    "hyperq_exec_morsel_events_total" (fun () ->
      pull
        (List.map
           (fun (k, v) -> ([ ("event", k) ], v))
           (Hyperq_engine.Morsel.stats ())));
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Rewrite-rule packs currently loaded in the registry"
    "hyperq_rules_packs_loaded" (fun () ->
      pull [ ([], float_of_int (List.length (Rules_registry.list_packs rules))) ]);
  Obs.register_collector obs ~kind:`Counter
    ~help:"Rule-pack registry events (loads, drops, screening rejections)"
    "hyperq_rules_events_total" (fun () ->
      pull
        (List.map
           (fun (event, n) -> ([ ("event", event) ], float_of_int n))
           (Rules_registry.counters rules)));
  Obs.register_collector obs ~kind:`Counter
    ~help:"Per-rule fire counts of loaded rule packs (since load)"
    "hyperq_rules_fires_total" (fun () ->
      pull
        (List.map
           (fun (pack, rule, n) ->
             ([ ("pack", pack); ("rule", rule) ], float_of_int n))
           (Rules_registry.fire_counts rules)));
  tel

let create ?(cap = Capability.ansi_engine) ?(request_latency_s = 0.)
    ?(plan_cache_capacity = 512) ?fault ?resil ?obs ?(obs_labels = [])
    ?(validate = false) ?(infer = true) () =
  let backend = Backend.create () in
  let resil =
    match resil with Some r -> r | None -> Resilience.create ()
  in
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let cache = Plan_cache.create ~capacity:plan_cache_capacity in
  let rules = Rules_registry.create () in
  let vcatalog = Catalog.create () in
  {
    vcatalog;
    backend;
    cap;
    odbc =
      Odbc_server.create ~request_latency_s ?fault
        (Odbc_server.engine_driver backend);
    cache;
    resil;
    rules;
    default_rule_packs = [];
    tel = make_telemetry obs ~labels:obs_labels cache resil rules;
    clock = Obs.clock obs;
    lock = Mutex.create ();
    validate;
    infer_rel_rules = (if infer then Infer.rel_passes ~catalog:vcatalog () else []);
    validator_diags = [];
    temp_counter = 0;
    queries_translated = 0;
  }

let obs t = t.tel.obs
let now t = t.clock.Obs.now ()

let fresh_name t prefix =
  Mutex.lock t.lock;
  t.temp_counter <- t.temp_counter + 1;
  let n = t.temp_counter in
  Mutex.unlock t.lock;
  Printf.sprintf "HQ_%s_%d" prefix n

(* --- per-call mutable context ----------------------------------------- *)

type call_ctx = {
  pipeline : t;
  session : Session.t;
  timing : timings;
  params : Value.t list;  (** positional parameter bindings *)
  mutable sql_sent : string list;
  mutable binder_features : string list;
  mutable transformer_rules : string list;
  mutable emulation_tags : string list;
  mutable nested : bool;
      (** true once the emulation layer re-enters the pipeline for inner
          statements; suppresses plan-cache capture for those *)
  mutable last_no_op : bool;
      (** the last {!run_bound} transformed its statement away entirely *)
  mutable cache_candidate : Plan_cache.entry option;
      (** translation captured on the plain path, ready to be cached *)
  mutable parse_s : float;
      (** parse cost paid by the caller before this context existed *)
  deadline_at : float option;
      (** absolute clock time by which backend retries for this statement
          must stop (session override, else the resilience policy) *)
  rules_active : Rules_registry.active;
      (** resolved rule-pack set (gateway defaults + session layer) whose
          closures ride along into every Transformer run of this call *)
  trace : string list ref;
  tracer : Obs.tracer;  (** span sink for this statement's query trace *)
}

(* Resolve the pack layers once per statement: gateway defaults first, then
   the session's own packs. The result also carries the set id the plan
   cache folds into its key. *)
let active_rule_set t (session : Session.t) =
  Rules_registry.active t.rules
    ~packs:(t.default_rule_packs @ session.Session.rule_packs)

let make_cc ?(tracer = Obs.no_tracer) ?rules_active t session params =
  let deadline_s =
    match session.Session.deadline_s with
    | Some _ as d -> d
    | None -> (Resilience.policy t.resil).Resilience.deadline_s
  in
  (* the budget clock starts at admission (front-door stamp), not at first
     backend submit: work that sat in the accept/admission queue must not
     silently exceed its budget *)
  let deadline_start =
    match Session.take_deadline_anchor session with
    | Some at -> at
    | None -> Resilience.now t.resil
  in
  {
    pipeline = t;
    session;
    timing = zero_timings ();
    params;
    sql_sent = [];
    binder_features = [];
    transformer_rules = [];
    emulation_tags = [];
    nested = false;
    last_no_op = false;
    cache_candidate = None;
    parse_s = 0.;
    deadline_at = Option.map (fun d -> deadline_start +. d) deadline_s;
    rules_active =
      (match rules_active with
      | Some a -> a
      | None -> active_rule_set t session);
    trace = ref [];
    tracer;
  }

(* Meter one pipeline stage: legacy Figure 9 bucket + per-stage histogram +
   span on the query trace. The [Fun.protect] keeps all three recorded even
   when the wrapped stage raises (emulation/bind errors), so timing buckets
   aren't silently dropped and spans never leak open. The legacy buckets are
   always filled — [out_timings] stays meaningful under the noop sink. *)
let timed stage cc f =
  let t = cc.pipeline in
  let sp = Obs.span_open t.tel.obs cc.tracer (stage_name stage) in
  let t0 = now t in
  Fun.protect
    ~finally:(fun () ->
      let dt = now t -. t0 in
      (match stage_bucket stage with
      | `Translate -> cc.timing.translate_s <- cc.timing.translate_s +. dt
      | `Execute -> cc.timing.execute_s <- cc.timing.execute_s +. dt
      | `Convert -> cc.timing.convert_s <- cc.timing.convert_s +. dt);
      Obs.observe t.tel.stage_hists.(stage_index stage) dt;
      Obs.span_close t.tel.obs cc.tracer sp)
    f

let note_tag cc tag =
  if not (List.mem tag cc.emulation_tags) then
    cc.emulation_tags <- tag :: cc.emulation_tags

(* Bind positional parameter markers (?) to values; parameters are numbered
   left to right, 1-based (paper §4.5: the ODBC Server supports
   "parameterized queries"). *)
let substitute_params params st =
  match params with
  | [] -> st
  | params ->
      let arr = Array.of_list params in
      Xtra.rewrite_statement
        ~frel:(fun r -> r)
        ~fscalar:(fun s ->
          match s with
          | Xtra.Param n ->
              if n < 1 || n > Array.length arr then
                Sql_error.bind_error
                  "parameter $%d has no bound value (%d supplied)" n
                  (Array.length arr)
              else Xtra.Const arr.(n - 1)
          | s -> s)
        st

(* --- virtual catalog maintenance -------------------------------------- *)

let vcatalog_column_of_ast (c : Ast.column_def) : Catalog.column =
  {
    Catalog.col_name = String.uppercase_ascii c.Ast.col_name;
    col_type = Binder.dtype_of_typename c.Ast.col_type;
    col_not_null = c.Ast.col_not_null;
    col_default = c.Ast.col_default;
    col_case_specific = c.Ast.col_case_specific;
  }

let sync_ddl cc (ast : Ast.statement) (bound : Xtra.statement) =
  let t = cc.pipeline in
  match (ast, bound) with
  | Ast.S_create_table { columns; kind; _ }, Xtra.Create_table { ct_name; _ } ->
      Catalog.add_table t.vcatalog
        {
          Catalog.tbl_name = ct_name;
          tbl_columns = List.map vcatalog_column_of_ast columns;
          tbl_set_semantics =
            (match kind with
            | Ast.Persistent { set_semantics } -> set_semantics
            | _ -> false);
          tbl_temporary = (match kind with Ast.Persistent _ -> false | _ -> true);
        };
      if (match kind with Ast.Persistent _ -> false | _ -> true) then
        Session.register_volatile cc.session ct_name
  | _, Xtra.Create_table_as { cta_name; cta_source; cta_persistence; _ } ->
      Catalog.add_table t.vcatalog
        {
          Catalog.tbl_name = cta_name;
          tbl_columns =
            List.map
              (fun (c : Xtra.col) ->
                {
                  Catalog.col_name = c.Xtra.name;
                  col_type =
                    (match c.Xtra.ty with
                    | Dtype.Unknown -> Dtype.varchar ()
                    | ty -> ty);
                  col_not_null = false;
                  col_default = None;
                  col_case_specific = true;
                })
              (Xtra.schema_of cta_source);
          tbl_set_semantics = false;
          tbl_temporary = cta_persistence = Xtra.Tp_temporary;
        };
      if cta_persistence = Xtra.Tp_temporary then
        Session.register_volatile cc.session cta_name
  | _, Xtra.Drop_table { dt_name; dt_if_exists } ->
      Catalog.drop_table t.vcatalog ~if_exists:dt_if_exists dt_name;
      Session.unregister_volatile cc.session dt_name
  | _, Xtra.Rename_table { rn_from; rn_to } ->
      Catalog.rename_table t.vcatalog ~from_name:rn_from ~to_name:rn_to
  | _ -> ()

(* --- the bound-statement path ----------------------------------------- *)

(* --- plan validation (lib/analyze wired into the hot path) ------------- *)

let validator_diag_cap = 64

(* Validate a plan, attributing any fresh violation to the rewrite [rules]
   that produced it. Violations never abort the statement: they are counted
   in hyperq_validator_violations_total and retained (newest first, capped)
   for \validator in the repl and for tests. *)
let record_validation t ~phase ~rules bound =
  Obs.inc t.tel.validator_runs_total;
  match Validator.validate bound with
  | [] -> ()
  | diags ->
      let diags =
        Diag.attribute ~rules
          (List.map
             (fun d ->
               {
                 d with
                 Diag.message =
                   Printf.sprintf "[%s] %s" phase d.Diag.message;
               })
             diags)
      in
      let errors =
        List.length
          (List.filter (fun d -> d.Diag.severity = Diag.Error) diags)
      in
      if errors > 0 then
        Obs.add t.tel.validator_violations_total (float_of_int errors);
      Mutex.lock t.lock;
      t.validator_diags <-
        List.filteri
          (fun i _ -> i < validator_diag_cap)
          (diags @ t.validator_diags);
      Mutex.unlock t.lock

let validator_diagnostics t =
  Mutex.lock t.lock;
  let d = t.validator_diags in
  Mutex.unlock t.lock;
  d

(* Every backend request goes through the resilience layer: transient
   failures retry with backoff (the pipeline lock is held only inside each
   attempt, never across a backoff sleep), sustained failures trip the
   per-backend breaker and surface as [Unavailable]. *)
let submit_backend cc ~sql =
  let t = cc.pipeline in
  Resilience.call t.resil ?deadline_at:cc.deadline_at
    ~on_retry:(fun () ->
      Obs.inc t.tel.retries_total;
      Obs.trace_add_retry cc.tracer)
    (fun () ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () -> Odbc_server.submit t.odbc ~sql))

let run_bound cc (bound : Xtra.statement) : Backend.result =
  let t = cc.pipeline in
  if t.validate then record_validation t ~phase:"bind" ~rules:[] bound;
  let counter = ref 1_000_000 in
  (* transformer ids must not collide with binder ids; the binder counter is
     per-statement so a high floor is simplest *)
  let on_pass =
    if t.validate then
      Some
        (fun i rules st' ->
          record_validation t
            ~phase:(Printf.sprintf "transform pass %d" i)
            ~rules st')
    else None
  in
  let transformed, applied =
    timed Transform cc (fun () ->
        Transformer.transform ?on_pass
          ~extra_scalar_rules:cc.rules_active.Rules_registry.act_scalar
          ~extra_rel_rules:
            (cc.rules_active.Rules_registry.act_rel @ t.infer_rel_rules)
          ~cap:t.cap ~counter bound)
  in
  cc.transformer_rules <-
    List.map fst applied @ cc.transformer_rules;
  let sql =
    timed Serialize cc (fun () -> Serializer.serialize ~cap:t.cap transformed)
  in
  cc.sql_sent <- sql :: cc.sql_sent;
  match transformed with
  | Xtra.No_op _ ->
      cc.last_no_op <- true;
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "OK" }
  | _ ->
      cc.last_no_op <- false;
      timed Execute cc (fun () -> submit_backend cc ~sql)

(* --- emulation dispatch ------------------------------------------------ *)

let make_runner cc run_ast =
  {
    Emulation.cap = cc.pipeline.cap;
    vcatalog = cc.pipeline.vcatalog;
    session = cc.session;
    run_ast =
      (fun a ->
        cc.nested <- true;
        run_ast a);
    run_xtra =
      (fun st ->
        cc.nested <- true;
        run_bound cc st);
    fresh_name = (fun prefix -> fresh_name cc.pipeline prefix);
    trace = cc.trace;
    span =
      (fun name f ->
        Obs.with_span cc.pipeline.tel.obs cc.tracer ("emulate:" ^ name) f);
  }

(* detect a top-level recursive CTE in a bound statement *)
let recursive_parts = function
  | Xtra.Query
      (Xtra.With_cte
         {
           ctes = [ (name, Xtra.Set_operation { op = Xtra.Union; all = true; left; right }) ];
           cte_recursive = true;
           body;
         }) ->
      Some (name, left, right, body)
  | _ -> None

(* Decide whether a bound statement may be memoized in the plan cache: only
   plain queries / DML that take the direct [run_bound] path and leave the
   virtual catalog (and session state) untouched. DDL, transaction control
   and anything the emulation layer owns (unsupported recursion, MERGE, SET
   tables) is excluded. *)
let cacheable_bound ~cap vcatalog (bound : Xtra.statement) =
  match bound with
  | Xtra.Query _ -> (
      match recursive_parts bound with
      | Some _ -> cap.Capability.recursive_cte
      | None -> true)
  | Xtra.Insert { target; _ } ->
      cap.Capability.set_tables
      || (match Catalog.find_table vcatalog target with
         | Some tbl -> not tbl.Catalog.tbl_set_semantics
         | None -> true)
  | Xtra.Update _ | Xtra.Delete _ -> true
  | Xtra.Merge _ -> cap.Capability.merge_stmt
  | _ -> false

let rec run_ast_statement cc (ast : Ast.statement) : Backend.result =
  let t = cc.pipeline in
  let runner = make_runner cc (fun a -> run_ast_statement cc a) in
  match ast with
  (* ---- features that never reach the backend as-is ------------------- *)
  | Ast.S_exec_macro { name; args } ->
      note_tag cc "macros";
      Emulation.exec_macro runner name args
  | Ast.S_create_macro { name; params; body; replace } ->
      note_tag cc "macros";
      let mname = List.nth name (List.length name - 1) in
      timed Bind cc (fun () ->
          Catalog.add_macro t.vcatalog ~replace
            {
              Catalog.macro_name = mname;
              macro_params =
                List.map (fun (n, ty) -> (n, Binder.dtype_of_typename ty)) params;
              macro_body = body;
            });
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "CREATE MACRO" }
  | Ast.S_drop_macro { name; if_exists } ->
      note_tag cc "macros";
      Catalog.drop_macro t.vcatalog ~if_exists (List.nth name (List.length name - 1));
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "DROP MACRO" }
  | Ast.S_create_view { name; columns; query; replace } ->
      note_tag cc "updatable_view_ddl";
      let vname = List.nth name (List.length name - 1) in
      (* validate the definition by binding it before storing *)
      timed Bind cc (fun () ->
          let bctx = Binder.create_ctx ~dialect:Dialect.Teradata t.vcatalog in
          ignore (Binder.bind_statement bctx (Ast.S_select query));
          Catalog.add_view t.vcatalog ~replace
            {
              Catalog.view_name = vname;
              view_columns = columns;
              view_query = query;
              view_dialect = Dialect.Teradata;
            });
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "CREATE VIEW" }
  | Ast.S_drop_view { name; if_exists } ->
      note_tag cc "updatable_view_ddl";
      Catalog.drop_view t.vcatalog ~if_exists (List.nth name (List.length name - 1));
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "DROP VIEW" }
  | Ast.S_create_procedure { name; params; body; replace } ->
      note_tag cc "stored_procedures";
      let pname = List.nth name (List.length name - 1) in
      timed Bind cc (fun () ->
          Catalog.add_procedure t.vcatalog ~replace
            {
              Catalog.proc_name = pname;
              proc_params =
                List.map (fun (n, ty) -> (n, Binder.dtype_of_typename ty)) params;
              proc_body = body;
            });
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "CREATE PROCEDURE" }
  | Ast.S_drop_procedure { name; if_exists } ->
      note_tag cc "stored_procedures";
      Catalog.drop_procedure t.vcatalog ~if_exists
        (List.nth name (List.length name - 1));
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "DROP PROCEDURE" }
  | Ast.S_call { name; args } ->
      note_tag cc "stored_procedures";
      Emulation.call_procedure runner name args
  | Ast.S_explain inner ->
      (* answered entirely by the virtualization layer: the algebrized plan
         and the SQL that would be sent to the target *)
      let lines =
        timed Transform cc (fun () ->
            match inner with
            | Ast.S_exec_macro _ | Ast.S_call _ | Ast.S_help _ | Ast.S_show _
            | Ast.S_create_macro _ | Ast.S_drop_macro _
            | Ast.S_create_procedure _ | Ast.S_drop_procedure _
            | Ast.S_create_view _ | Ast.S_drop_view _ | Ast.S_set_session _
            | Ast.S_explain _ ->
                [
                  Printf.sprintf "%s is handled by the Hyper-Q emulation layer"
                    (Ast.statement_kind inner);
                  "no single target statement exists for it";
                ]
            | inner -> (
                let bctx =
                  Binder.create_ctx ~dialect:Dialect.Teradata t.vcatalog
                in
                match
                  Sql_error.protect (fun () -> Binder.bind_statement bctx inner)
                with
                | Error e ->
                    [ "binding failed: " ^ Sql_error.to_string e ]
                | Ok bound ->
                    let counter = ref 1_000_000 in
                    let transformed, applied =
                      Transformer.transform ~extra_rel_rules:t.infer_rel_rules
                        ~cap:t.cap ~counter bound
                    in
                    let plan =
                      String.split_on_char '\n'
                        (Hyperq_xtra.Xtra_pp.statement_to_string transformed)
                      |> List.filter (fun l -> l <> "")
                    in
                    let rules =
                      match applied with
                      | [] -> []
                      | rs ->
                          [
                            "transformations applied: "
                            ^ String.concat ", " (List.map fst rs);
                          ]
                    in
                    let sql =
                      match
                        Sql_error.protect (fun () ->
                            Serializer.serialize ~cap:t.cap transformed)
                      with
                      | Ok s -> [ "target SQL (" ^ t.cap.Capability.name ^ "): " ^ s ]
                      | Error e ->
                          [ "serialization requires emulation: " ^ Sql_error.to_string e ]
                    in
                    (("Hyper-Q plan for " ^ Ast.statement_kind inner) :: plan)
                    @ rules @ sql))
      in
      {
        Backend.res_schema = [ ("EXPLANATION", Dtype.varchar ()) ];
        res_rows = List.map (fun l -> [| Value.Varchar l |]) lines;
        res_rowcount = List.length lines;
        res_message = "EXPLAIN";
      }
  | Ast.S_help kind ->
      note_tag cc "help_commands";
      (match kind with
      | Ast.Help_session -> Emulation.help_session runner
      | Ast.Help_table name -> Emulation.help_table runner name
      | Ast.Help_view name -> Emulation.help_view runner name
      | Ast.Help_macro name -> Emulation.help_macro runner name
      | Ast.Help_procedure name -> Emulation.help_procedure runner name
      | Ast.Help_database name -> Emulation.help_database runner name
      | Ast.Help_volatile_table -> Emulation.help_volatile runner)
  | Ast.S_show kind ->
      note_tag cc "show_commands";
      (match kind with
      | Ast.Show_table name -> Emulation.show_table runner name
      | Ast.Show_view name -> Emulation.show_view runner name)
  | Ast.S_set_session (name, v) ->
      note_tag cc "set_session";
      let value =
        match v with
        | Ast.E_lit (Ast.L_string s) -> s
        | Ast.E_lit (Ast.L_int n) -> Int64.to_string n
        | Ast.E_lit (Ast.L_decimal d) -> d
        | Ast.E_lit (Ast.L_float f) -> string_of_float f
        | Ast.E_column [ c ] -> c
        | _ -> Sql_error.unsupported "SET SESSION expects a literal value"
      in
      Session.set_setting cc.session name value;
      (* QUERY_DEADLINE <seconds> caps backend retries per statement for this
         session; OFF/NONE restores the pipeline policy's default *)
      (if String.uppercase_ascii name = "QUERY_DEADLINE" then
         match String.uppercase_ascii value with
         | "OFF" | "NONE" -> cc.session.Session.deadline_s <- None
         | v -> (
             match float_of_string_opt v with
             | Some d when d > 0. -> cc.session.Session.deadline_s <- Some d
             | _ ->
                 Sql_error.unsupported
                   "SET SESSION QUERY_DEADLINE expects seconds or OFF"));
      (* RULE_PACKS 'a,b' layers loaded rewrite-rule packs onto this session
         (after the gateway defaults); OFF/NONE clears the session layer *)
      (if String.uppercase_ascii name = "RULE_PACKS" then
         match String.uppercase_ascii value with
         | "OFF" | "NONE" | "" -> cc.session.Session.rule_packs <- []
         | _ ->
             let packs =
               List.filter
                 (fun s -> s <> "")
                 (List.map String.trim (String.split_on_char ',' value))
             in
             List.iter
               (fun p ->
                 if Rules_registry.find t.rules p = None then
                   Sql_error.unsupported
                     "rule pack %s is not loaded (load it with 'hyperq rules \
                      load' or \\rules load first)"
                     p)
               packs;
             cc.session.Session.rule_packs <- packs);
      { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "SET SESSION" }
  (* ---- DML on views --------------------------------------------------- *)
  | (Ast.S_update { table; _ } | Ast.S_delete { table; _ } | Ast.S_insert { table; _ })
    when Catalog.find_view t.vcatalog (List.nth table (List.length table - 1)) <> None
    ->
      note_tag cc "dml_on_views";
      let view =
        Option.get
          (Catalog.find_view t.vcatalog (List.nth table (List.length table - 1)))
      in
      Emulation.emulate_dml_on_view runner view ast
  (* ---- everything else: bind, then decide ----------------------------- *)
  | ast ->
      let bind_t0 = now t in
      let bctx = Binder.create_ctx ~dialect:Dialect.Teradata t.vcatalog in
      (* the pre-substitution bound form is what the plan cache stores, so a
         parameterized statement hits under different bindings *)
      let bound0 =
        timed Bind cc (fun () -> Binder.bind_statement bctx ast)
      in
      let bind_s = now t -. bind_t0 in
      let bound =
        timed Bind cc (fun () -> substitute_params cc.params bound0)
      in
      cc.binder_features <- bctx.Binder.features @ cc.binder_features;
      (match ast with
      | Ast.S_begin_transaction -> cc.session.Session.in_transaction <- true
      | Ast.S_commit | Ast.S_rollback ->
          cc.session.Session.in_transaction <- false
      | _ -> ());
      let fresh_id =
        let c = ref 2_000_000 in
        fun () ->
          incr c;
          !c
      in
      let result =
        match recursive_parts bound with
        | Some (name, seed, step, body) when not t.cap.Capability.recursive_cte ->
            note_tag cc "recursive_query";
            Emulation.emulate_recursive_query runner ~name ~seed ~step ~body
        | _ -> (
            match bound with
            | Xtra.Merge _ when not t.cap.Capability.merge_stmt ->
                note_tag cc "merge";
                Emulation.emulate_merge runner ~fresh_id bound
            | Xtra.Insert { target; target_cols; source }
              when (not t.cap.Capability.set_tables)
                   && (match Catalog.find_table t.vcatalog target with
                      | Some tbl -> tbl.Catalog.tbl_set_semantics
                      | None -> false) ->
                note_tag cc "set_tables";
                Emulation.emulate_set_table_insert runner ~fresh_id ~target
                  ~target_cols ~source
            | bound ->
                let r = run_bound cc bound in
                sync_ddl cc ast bound;
                (if (not cc.nested)
                    && cacheable_bound ~cap:t.cap t.vcatalog bound
                 then
                   let has_params = Plan_cache.bound_has_params bound0 in
                   cc.cache_candidate <-
                     Some
                       {
                         Plan_cache.e_bound = bound0;
                         e_has_params = has_params;
                         e_binder_features = bctx.Binder.features;
                         e_rules = cc.transformer_rules;
                         e_plan =
                           (if has_params then None
                            else
                              Some
                                {
                                  Plan_cache.p_target_sql =
                                    (match cc.sql_sent with
                                    | s :: _ -> s
                                    | [] -> "");
                                  p_no_op = cc.last_no_op;
                                });
                         e_bind_s = cc.parse_s +. bind_s;
                         e_translate_s = cc.timing.translate_s;
                       });
                r)
      in
      result

(* --- public entry points ------------------------------------------------ *)

(* gateway sessions may run on multiple domains; both counters are guarded
   by the pipeline lock so concurrent increments aren't lost *)
let bump_counters t (session : Session.t) =
  Mutex.lock t.lock;
  t.queries_translated <- t.queries_translated + 1;
  session.Session.queries_run <- session.Session.queries_run + 1;
  Mutex.unlock t.lock;
  (* after the unlock: registry calls never run under subsystem locks (the
     registry's render path takes those locks through its pull collectors,
     so nesting the other way around would invert the lock order) *)
  Obs.inc t.tel.queries_total

let cache_key ?(rules = "") ~cap sql =
  Plan_cache.key ~rules ~sql
    ~dialect:(Dialect.to_string Dialect.Teradata)
    ~cap:cap.Capability.name

let cache_stats t = Plan_cache.stats t.cache
let resilience_stats t = Resilience.stats t.resil

let set_exec_domains t n =
  t.backend.Backend.exec_domains <-
    (let n = max 1 n in
     min n Hyperq_engine.Morsel.max_domains)
let breaker_state t = Resilience.breaker_state t.resil
let health_to_string t = Resilience.stats_to_string t.resil

(* package into TDF then convert to WP-A records (paper §4.5/4.6) *)
let finish_outcome cc ~sql_text (result : Backend.result) : outcome =
  let columns =
    List.map
      (fun (name, ty) -> { Tdf.cd_name = name; cd_type = ty })
      result.Backend.res_schema
  in
  let records =
    if result.Backend.res_rows = [] then []
    else
      timed Convert cc (fun () ->
          let store = Hyperq_tdf.Result_store.create columns in
          Hyperq_tdf.Result_store.add_rows store result.Backend.res_rows;
          Result_converter.convert columns store)
  in
  let observation =
    Feature_tracker.observe ~sql:sql_text ~binder_features:cc.binder_features
      ~transformer_rules:cc.transformer_rules ~emulation_tags:cc.emulation_tags
  in
  {
    out_schema = result.Backend.res_schema;
    out_rows = result.Backend.res_rows;
    out_records = records;
    out_columns = columns;
    out_activity = result.Backend.res_message;
    out_count = result.Backend.res_rowcount;
    out_sql = List.rev cc.sql_sent;
    out_observation = observation;
    out_timings = cc.timing;
    out_emulation_trace = List.rev !(cc.trace);
  }

(* Meter a stage that runs before any call context exists (lexing, parsing,
   the cache probe): span + per-stage histogram, no legacy bucket — the
   caller folds the elapsed time into [parse_s]/[lookup_s] itself. *)
let stage_timed t tracer stage f =
  let sp = Obs.span_open t.tel.obs tracer (stage_name stage) in
  let t0 = now t in
  Fun.protect
    ~finally:(fun () ->
      Obs.observe t.tel.stage_hists.(stage_index stage) (now t -. t0);
      Obs.span_close t.tel.obs tracer sp)
    f

(* Start a query trace and guarantee it finishes exactly once — with the
   rewrite features fired on success, with the error text (and an
   error-kind counter bump) on failure. Applied at the public entry points
   only, so emulation re-entering the pipeline never double-counts. *)
let with_query_telemetry t ~session ~sql f =
  let tracer =
    Obs.trace_start t.tel.obs ~session_id:session.Session.session_id ~sql ()
  in
  let t0 = now t in
  match f tracer with
  | (o : outcome) ->
      Obs.observe t.tel.query_hist (now t -. t0);
      Obs.trace_finish t.tel.obs
        ~features:o.out_observation.Feature_tracker.query_features tracer;
      o
  | exception e ->
      let error =
        match e with
        | Sql_error.Error err ->
            (match List.assoc_opt err.Sql_error.kind t.tel.error_counters with
            | Some c -> Obs.inc c
            | None -> ());
            Sql_error.to_string err
        | e -> Printexc.to_string e
      in
      Obs.observe t.tel.query_hist (now t -. t0);
      Obs.trace_finish t.tel.obs ~error tracer;
      raise e

(* Replay a cached translation. Param-free entries skip straight to
   execution of the stored target SQL; parameterized entries substitute the
   fresh bindings into the stored bound form and re-run only
   transform + serialize. [lookup_s] (the cache probe) is all that remains
   of the translate bucket on the fast path. *)
let run_cached t ~tracer ~session ~params ~sql_text ~lookup_s ~act
    (entry : Plan_cache.entry) : outcome =
  bump_counters t session;
  let cc = make_cc ~tracer ~rules_active:act t session params in
  cc.timing.translate_s <- lookup_s;
  cc.binder_features <- entry.Plan_cache.e_binder_features;
  let result =
    match entry.Plan_cache.e_plan with
    | Some plan ->
        cc.transformer_rules <- entry.Plan_cache.e_rules;
        cc.sql_sent <-
          (if plan.Plan_cache.p_target_sql = "" then []
           else [ plan.Plan_cache.p_target_sql ]);
        if plan.Plan_cache.p_no_op then
          { Backend.res_schema = []; res_rows = []; res_rowcount = 0; res_message = "OK" }
        else
          timed Execute cc (fun () ->
              submit_backend cc ~sql:plan.Plan_cache.p_target_sql)
    | None ->
        let bound =
          timed Bind cc (fun () ->
              substitute_params params entry.Plan_cache.e_bound)
        in
        run_bound cc bound
  in
  finish_outcome cc ~sql_text result

(* The uncached path: run the statement and store any captured translation
   under the catalog version observed before the statement ran (a concurrent
   DDL then simply leaves a stale entry that the next lookup invalidates). *)
let run_uncached t ~tracer ~session ~params ~sql_text ~parse_s ~version ~act
    ast : outcome =
  let cc = make_cc ~tracer ~rules_active:act t session params in
  cc.parse_s <- parse_s;
  cc.timing.translate_s <- parse_s;
  let result = run_ast_statement cc ast in
  (match cc.cache_candidate with
  | Some entry when Plan_cache.enabled t.cache ->
      Plan_cache.add t.cache ~version
        (cache_key ~rules:act.Rules_registry.act_set_id ~cap:t.cap sql_text)
        entry
  | _ -> ());
  finish_outcome cc ~sql_text result

(** Run an already-parsed statement (used by the gateway, scripts and
    scale-out). Checks the plan cache by [sql_text] — a hit skips
    bind/transform/serialize; the parse already paid for by the caller is
    reported via [parse_s]. *)
let run_statement_ast t ?session ?(params = []) ?(parse_s = 0.) ~sql_text ast
    : outcome =
  let session =
    match session with
    | Some s -> s
    | None -> Session.create ~created_at:(now t) ()
  in
  with_query_telemetry t ~session ~sql:sql_text @@ fun tracer ->
  let version = Catalog.version t.vcatalog in
  let act = active_rule_set t session in
  let t0 = now t in
  match
    stage_timed t tracer Cache_lookup (fun () ->
        Plan_cache.find t.cache ~version
          (cache_key ~rules:act.Rules_registry.act_set_id ~cap:t.cap sql_text))
  with
  | Some entry ->
      Obs.trace_set_cache_hit tracer true;
      let lookup_s = now t -. t0 in
      run_cached t ~tracer ~session ~params ~sql_text
        ~lookup_s:(parse_s +. lookup_s) ~act entry
  | None ->
      bump_counters t session;
      run_uncached t ~tracer ~session ~params ~sql_text ~parse_s ~version ~act
        ast

(** Run one source-dialect SQL statement end to end. [params] binds
    positional [?] markers, left to right. On a plan-cache hit the parse is
    skipped along with the rest of the translation. *)
let run_sql t ?session ?(params = []) sql : outcome =
  let session =
    match session with
    | Some s -> s
    | None -> Session.create ~created_at:(now t) ()
  in
  with_query_telemetry t ~session ~sql @@ fun tracer ->
  let version = Catalog.version t.vcatalog in
  let act = active_rule_set t session in
  let t0 = now t in
  match
    stage_timed t tracer Cache_lookup (fun () ->
        Plan_cache.find t.cache ~version
          (cache_key ~rules:act.Rules_registry.act_set_id ~cap:t.cap sql))
  with
  | Some entry ->
      Obs.trace_set_cache_hit tracer true;
      let lookup_s = now t -. t0 in
      run_cached t ~tracer ~session ~params ~sql_text:sql ~lookup_s ~act entry
  | None ->
      bump_counters t session;
      let t0 = now t in
      let tokens = stage_timed t tracer Lex (fun () -> Lexer.tokenize sql) in
      let ast =
        stage_timed t tracer Parse (fun () ->
            Parser.parse_statement_tokens ~dialect:Dialect.Teradata tokens)
      in
      let parse_s = now t -. t0 in
      run_uncached t ~tracer ~session ~params ~sql_text:sql ~parse_s ~version
        ~act ast

(** Run a [;]-separated script; returns one outcome per statement. Each
    statement's own source text (not the whole script) is attributed to its
    observation and plan-cache entry. *)
let run_script t ?session sql : outcome list =
  let session =
    match session with
    | Some s -> s
    | None -> Session.create ~created_at:(now t) ()
  in
  let spanned = Parser.parse_many_spanned ~dialect:Dialect.Teradata sql in
  List.map
    (fun (ast, text) -> run_statement_ast t ~session ~sql_text:text ast)
    spanned

(* ------------------------------------------------------------------ *)
(* Single-row DML batching (paper §4.3)                                 *)
(* ------------------------------------------------------------------ *)

(** "If the target database incurs a large overhead in executing single-row
    DML requests, a transformation that groups a large number of contiguous
    single-row DML statements into one large statement could be applied."
    Works over (statement, source text) pairs so each merged statement keeps
    the concatenated text of the statements it absorbed. Row chunks are
    accumulated in reverse and concatenated once, so batching n contiguous
    INSERTs is linear in n (not quadratic). *)
let batch_single_row_dml_spanned (asts : (Ast.statement * string) list) :
    (Ast.statement * string) list * int =
  let rec go acc merged = function
    | [] -> (List.rev acc, merged)
    | (Ast.S_insert { table; columns; source = Ast.Ins_values rows }, text)
      :: rest ->
        let rec absorb rev_chunks rev_texts m = function
          | ( Ast.S_insert
                { table = t2; columns = c2; source = Ast.Ins_values r2 },
              txt )
            :: tl
            when t2 = table && c2 = columns ->
              absorb (r2 :: rev_chunks) (txt :: rev_texts) (m + 1) tl
          | tl ->
              ( List.concat (List.rev rev_chunks),
                String.concat ";\n" (List.rev rev_texts),
                m,
                tl )
        in
        let rows, text, m, rest = absorb [ rows ] [ text ] 0 rest in
        go
          ((Ast.S_insert { table; columns; source = Ast.Ins_values rows }, text)
          :: acc)
          (merged + m) rest
    | st :: rest -> go (st :: acc) merged rest
  in
  go [] 0 asts

(** {!batch_single_row_dml_spanned} over bare statements. Returns the
    rewritten statement list and the number of statements absorbed. *)
let batch_single_row_dml (asts : Ast.statement list) : Ast.statement list * int
    =
  let spanned, merged =
    batch_single_row_dml_spanned (List.map (fun a -> (a, "")) asts)
  in
  (List.map fst spanned, merged)

(** [run_script] with contiguous single-row INSERTs coalesced into multi-row
    statements before translation. Returns one outcome per *executed*
    statement plus the number of original statements absorbed. *)
let run_script_batched t ?session sql : outcome list * int =
  let session =
    match session with
    | Some s -> s
    | None -> Session.create ~created_at:(now t) ()
  in
  let spanned = Parser.parse_many_spanned ~dialect:Dialect.Teradata sql in
  let spanned, merged = batch_single_row_dml_spanned spanned in
  ( List.map
      (fun (ast, text) -> run_statement_ast t ~session ~sql_text:text ast)
      spanned,
    merged )

(** Translate only (no execution): the serialized target SQL. Used by tests
    and by the Figure 2 / Table 2 benches against non-executing targets.
    Raises [Capability_gap] for statements the emulation layer owns (EXEC,
    HELP, DML on views, ...), which have no single target statement.
    Consults and populates the plan cache: a param-free hit returns the
    stored target SQL outright; a parameterized hit reuses the stored bound
    form and re-runs only transform + serialize. *)
let translate t ?(cap = t.cap) sql : string =
  let version = Catalog.version t.vcatalog in
  let act = Rules_registry.active t.rules ~packs:t.default_rule_packs in
  let extra_scalar = act.Rules_registry.act_scalar in
  let extra_rel = act.Rules_registry.act_rel in
  let key = cache_key ~rules:act.Rules_registry.act_set_id ~cap sql in
  match Plan_cache.find t.cache ~version key with
  | Some { Plan_cache.e_plan = Some plan; _ } -> plan.Plan_cache.p_target_sql
  | Some { Plan_cache.e_plan = None; e_bound; _ } ->
      let counter = ref 1_000_000 in
      let transformed, _ =
        Transformer.transform ~extra_scalar_rules:extra_scalar
          ~extra_rel_rules:(extra_rel @ t.infer_rel_rules) ~cap ~counter
          e_bound
      in
      Serializer.serialize ~cap transformed
  | None ->
      let t0 = now t in
      let ast = Parser.parse_statement ~dialect:Dialect.Teradata sql in
      (match ast with
      | Ast.S_update { table; _ } | Ast.S_delete { table; _ } | Ast.S_insert { table; _ }
        when Catalog.find_view t.vcatalog (List.nth table (List.length table - 1)) <> None
        ->
          Sql_error.capability_gap
            "DML on view %s is handled by the emulation layer"
            (List.nth table (List.length table - 1))
      | _ -> ());
      let bctx = Binder.create_ctx ~dialect:Dialect.Teradata t.vcatalog in
      let bound = Binder.bind_statement bctx ast in
      let bind_s = now t -. t0 in
      if t.validate then record_validation t ~phase:"bind" ~rules:[] bound;
      let counter = ref 1_000_000 in
      let on_pass =
        if t.validate then
          Some
            (fun i rules st' ->
              record_validation t
                ~phase:(Printf.sprintf "transform pass %d" i)
                ~rules st')
        else None
      in
      let transformed, applied =
        Transformer.transform ?on_pass ~extra_scalar_rules:extra_scalar
          ~extra_rel_rules:(extra_rel @ t.infer_rel_rules) ~cap ~counter bound
      in
      let target_sql = Serializer.serialize ~cap transformed in
      let translate_s = now t -. t0 in
      if cacheable_bound ~cap t.vcatalog bound then begin
        let has_params = Plan_cache.bound_has_params bound in
        Plan_cache.add t.cache ~version key
          {
            Plan_cache.e_bound = bound;
            e_has_params = has_params;
            e_binder_features = bctx.Binder.features;
            e_rules = List.map fst applied;
            e_plan =
              (if has_params then None
               else
                 Some
                   {
                     Plan_cache.p_target_sql = target_sql;
                     p_no_op =
                       (match transformed with Xtra.No_op _ -> true | _ -> false);
                   });
            e_bind_s = bind_s;
            e_translate_s = translate_s;
          }
      end;
      target_sql

(** Instrument a statement without executing it: parse → bind → transform,
    plus static detection of emulation-class features. This is the paper's
    §7.1 methodology ("we instrumented Hyper-Q's query rewrite engine to
    track a selection of 27 commonly used non-standard features") and lets
    the Figure 8 study run over hundreds of thousands of queries quickly. *)
let observe_sql t sql : Feature_tracker.observation =
  let act = Rules_registry.active t.rules ~packs:t.default_rule_packs in
  match
    Plan_cache.find t.cache
      ~version:(Catalog.version t.vcatalog)
      (cache_key ~rules:act.Rules_registry.act_set_id ~cap:t.cap sql)
  with
  | Some entry ->
      (* cached entries are never emulation-routed, so tags are empty *)
      Feature_tracker.observe ~sql
        ~binder_features:entry.Plan_cache.e_binder_features
        ~transformer_rules:entry.Plan_cache.e_rules ~emulation_tags:[]
  | None ->
  let ast = Parser.parse_statement ~dialect:Dialect.Teradata sql in
  let binder_features = ref [] in
  let transformer_rules = ref [] in
  let emulation_tags = ref [] in
  let tag x = emulation_tags := x :: !emulation_tags in
  (match ast with
  | Ast.S_exec_macro _ | Ast.S_create_macro _ | Ast.S_drop_macro _ ->
      tag "macros"
  | Ast.S_create_procedure _ | Ast.S_drop_procedure _ | Ast.S_call _ ->
      tag "stored_procedures"
  | Ast.S_create_view _ | Ast.S_drop_view _ -> tag "updatable_view_ddl"
  | Ast.S_help _ -> tag "help_commands"
  | Ast.S_show _ -> tag "show_commands"
  | Ast.S_set_session _ -> tag "set_session"
  | Ast.S_update { table; _ } | Ast.S_delete { table; _ } | Ast.S_insert { table; _ }
    when Catalog.find_view t.vcatalog (List.nth table (List.length table - 1)) <> None
    ->
      tag "dml_on_views"
  | Ast.S_insert { table; _ }
    when (not t.cap.Capability.set_tables)
         && (match
               Catalog.find_table t.vcatalog (List.nth table (List.length table - 1))
             with
            | Some tbl -> tbl.Catalog.tbl_set_semantics
            | None -> false) ->
      tag "set_tables"
  | Ast.S_merge _ when not t.cap.Capability.merge_stmt -> tag "merge"
  | _ -> ());
  (match ast with
  | Ast.S_exec_macro _ | Ast.S_create_macro _ | Ast.S_drop_macro _
  | Ast.S_create_view _ | Ast.S_drop_view _ | Ast.S_help _ | Ast.S_show _
  | Ast.S_set_session _ ->
      ()
  | ast -> (
      try
        let bctx = Binder.create_ctx ~dialect:Dialect.Teradata t.vcatalog in
        let bound = Binder.bind_statement bctx ast in
        binder_features := bctx.Binder.features;
        (if (not t.cap.Capability.recursive_cte)
            && List.mem "recursive_query" bctx.Binder.features
         then tag "recursive_query");
        let counter = ref 1_000_000 in
        let _, applied =
          Transformer.transform
            ~extra_scalar_rules:act.Rules_registry.act_scalar
            ~extra_rel_rules:(act.Rules_registry.act_rel @ t.infer_rel_rules)
            ~cap:t.cap ~counter bound
        in
        transformer_rules := List.map fst applied
      with Sql_error.Error _ ->
        (* emulation-only statements reject binding; the tags above carry
           the classification *)
        ()));
  Feature_tracker.observe ~sql ~binder_features:!binder_features
    ~transformer_rules:!transformer_rules ~emulation_tags:!emulation_tags

(** Drop all volatile tables registered by [session] (logoff cleanup). *)
let end_session t (session : Session.t) =
  List.iter
    (fun name ->
      try
        Mutex.lock t.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.lock)
          (fun () ->
            ignore
              (Backend.execute_sql t.backend
                 (Printf.sprintf "DROP TABLE IF EXISTS %s" name));
            Catalog.drop_table t.vcatalog ~if_exists:true name)
      with Sql_error.Error _ -> ())
    session.Session.volatile_tables;
  session.Session.volatile_tables <- []

(* ------------------------------------------------------------------ *)
(* Runtime-loadable rewrite-rule packs                                 *)
(* ------------------------------------------------------------------ *)

type rules_report = {
  rr_pack : Rules_registry.pack_info;  (** as installed in the registry *)
  rr_screened : int;  (** corpus statements screened *)
  rr_skipped : int;  (** emulation-class / unbindable statements skipped *)
  rr_screen_fires : int;  (** pack-rule fires during screening *)
  rr_warnings : Diag.t list;  (** R301 never-fired warnings *)
  rr_diff_queries : int;  (** differential queries compared *)
  rr_diff_nondet_skipped : int;
      (** differential queries skipped because they call non-immutable
          built-ins (their results legitimately differ between runs) *)
  rr_activated : bool;  (** added to the gateway-default layer *)
}

let rules_registry t = t.rules
let default_rule_packs t = t.default_rule_packs
let set_default_rule_packs t packs = t.default_rule_packs <- packs

(* First fired rule's span (falling back to the pack's first rule) so a
   rejection diagnostic points back into the pack source text. *)
let rule_span (pack : Rules_compile.pack) names =
  match
    List.find_opt
      (fun (r : Rules_compile.crule) -> List.mem r.Rules_compile.cr_name names)
      pack.Rules_compile.cp_rules
  with
  | Some r -> Some r.Rules_compile.cr_span
  | None -> (
      match pack.Rules_compile.cp_rules with
      | r :: _ -> Some r.Rules_compile.cr_span
      | [] -> None)

(* Comparable form of an outcome: schema types plus an order-insensitive
   multiset of rendered rows (engine results are compared, not row order —
   a rewrite is free to change an unordered result's physical order). *)
let diff_render (o : outcome) =
  ( List.map snd o.out_schema,
    List.sort compare
      (List.map
         (fun row ->
           String.concat "|" (Array.to_list (Array.map Value.to_string row)))
         o.out_rows) )

(* Differential screening: run every sample query through two scratch
   pipelines — identical except that one has the candidate pack active —
   and reject on any divergence in results or error status. [diff_setup]
   populates both (DDL + data) before the comparison. *)
let run_differential t ~cert ?diff_setup ~diff_queries () =
  match diff_queries with
  | [] -> Ok (0, 0)
  | queries -> (
      let pack = Rules_screen.pack cert in
      let scratch with_pack =
        let p = create ~cap:t.cap ~plan_cache_capacity:0 () in
        if with_pack then begin
          let info = Rules_registry.load p.rules cert in
          p.default_rule_packs <- [ info.Rules_registry.pi_name ]
        end;
        (match diff_setup with Some f -> f p | None -> ());
        p
      in
      let base = scratch false in
      let packed = scratch true in
      let fires () =
        List.map
          (fun (r : Rules_compile.crule) ->
            (r.Rules_compile.cr_name, Atomic.get r.Rules_compile.cr_fires))
          pack.Rules_compile.cp_rules
      in
      let mismatch = ref None in
      (* A statement calling a non-immutable built-in (CURRENT_TIMESTAMP,
         RANDOM, ...) legitimately differs between the two executions, so
         comparing it would reject sound packs; such statements are
         skipped and counted instead of compared. *)
      let skipped = ref 0 in
      let nondeterministic q =
        match
          Sql_error.protect (fun () ->
              let ast = Parser.parse_statement ~dialect:Dialect.Teradata q in
              let bctx =
                Binder.create_ctx ~dialect:Dialect.Teradata base.vcatalog
              in
              Binder.bind_statement bctx ast)
        with
        | Ok bound ->
            Infer.det_of_statement bound <> Hyperq_binder.Builtins.Immutable
        | Error _ -> false
      in
      List.iter
        (fun q ->
          if !mismatch <> None then ()
          else if nondeterministic q then incr skipped
          else begin
            let before = fires () in
            let rb = Sql_error.protect (fun () -> run_sql base q) in
            let rp = Sql_error.protect (fun () -> run_sql packed q) in
            let fired_rules =
              List.filter_map
                (fun (n, c) ->
                  match List.assoc_opt n before with
                  | Some c0 when c > c0 -> Some n
                  | _ -> None)
                (fires ())
            in
            let span = rule_span pack fired_rules in
            let rule =
              match fired_rules with
              | [] -> None
              | names -> Some (String.concat "," names)
            in
            let reject fmt =
              Printf.ksprintf
                (fun m ->
                  mismatch := Some (Diag.make ?span ?rule ~code:"R202" "%s" m))
                fmt
            in
            match (rb, rp) with
            | Ok ob, Ok op ->
                if diff_render ob <> diff_render op then
                  reject
                    "differential mismatch: pack %s changes engine results on \
                     \"%s\" (rules fired: %s)"
                    pack.Rules_compile.cp_name q
                    (match fired_rules with
                    | [] -> "none"
                    | names -> String.concat "," names)
            | Error _, Error _ -> () (* same failure with and without *)
            | Ok _, Error e ->
                reject
                  "differential mismatch: \"%s\" fails with pack %s loaded: %s"
                  q pack.Rules_compile.cp_name (Sql_error.to_string e)
            | Error e, Ok _ ->
                reject
                  "differential mismatch: \"%s\" fails without pack %s (%s) \
                   but succeeds with it"
                  q pack.Rules_compile.cp_name (Sql_error.to_string e)
          end)
        queries;
      match !mismatch with
      | None -> Ok (List.length queries - !skipped, !skipped)
      | Some d -> Error [ d ])

(** Load a rule pack from its source text: parse → compile → corpus
    screening under this pipeline's capability → differential sample →
    install in the registry. Any failure rejects the pack (counted in
    hyperq_rules_events_total{event="rejection"}) with spanned
    diagnostics; nothing is installed. [activate] (default true) appends
    the pack to the gateway-default layer so it applies to every session;
    with [~activate:false] the pack is only available to sessions that
    opt in via SET SESSION RULE_PACKS. *)
let load_rule_pack t ?(activate = true) ~corpus ?diff_setup
    ?(diff_queries = []) text : (rules_report, Diag.t list) result =
  let reject diags =
    Rules_registry.note_rejection t.rules;
    Error diags
  in
  match Rules_dsl.parse text with
  | Error ds -> reject ds
  | Ok parsed -> (
      (* Static soundness first: a pack whose rules provably change types,
         nullability, determinism, or row semantics is rejected before a
         single corpus statement is executed. *)
      match Rules_soundness.screen parsed with
      | Error ds -> reject ds
      | Ok () -> (
          match Rules_compile.compile parsed with
          | Error ds -> reject ds
          | Ok pack -> (
              match Rules_screen.screen ~cap:t.cap ~corpus pack with
              | Error ds -> reject ds
              | Ok (cert, stats) -> (
                  match
                    run_differential t ~cert ?diff_setup ~diff_queries ()
                  with
                  | Error ds -> reject ds
                  | Ok (diffn, diff_skipped) ->
                      let info = Rules_registry.load t.rules cert in
                      let name = info.Rules_registry.pi_name in
                      if activate && not (List.mem name t.default_rule_packs)
                      then
                        t.default_rule_packs <- t.default_rule_packs @ [ name ];
                      Ok
                        {
                          rr_pack = info;
                          rr_screened = stats.Rules_screen.sc_statements;
                          rr_skipped = stats.Rules_screen.sc_skipped;
                          rr_screen_fires = stats.Rules_screen.sc_fires;
                          rr_warnings = stats.Rules_screen.sc_warnings;
                          rr_diff_queries = diffn;
                          rr_diff_nondet_skipped = diff_skipped;
                          rr_activated = activate;
                        }))))

(** Drop a pack from the registry and the gateway-default layer. Sessions
    still naming it in SET SESSION RULE_PACKS silently stop applying it
    (and their plan-cache keys change, so no stale plan survives). *)
let drop_rule_pack t name =
  t.default_rule_packs <- List.filter (fun n -> n <> name) t.default_rule_packs;
  Rules_registry.drop t.rules name
