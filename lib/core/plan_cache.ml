(** Versioned translation-plan cache (paper §7.2 rationale).

    BI tools replay identical statements thousands of times; translation
    (parse → bind → transform → serialize) is cheap relative to execution
    but not free, and re-running it per statement is pure waste. This module
    memoizes the translation by exact SQL text, source dialect and target
    capability profile, and versions every entry with the virtual catalog's
    monotonic DDL counter so that any CREATE/DROP/RENAME/REPLACE immediately
    invalidates plans derived from the old schema.

    Entries hold the *pre-parameter-substitution* bound form, so a
    parameterized statement hits the cache under different bindings: the hit
    skips parse + bind and re-runs only transform + serialize on the
    substituted plan. Param-free entries additionally hold the final target
    SQL and fired transformer rules, so a hit skips translation entirely.

    The cache is bounded by an LRU policy (doubly-linked recency list over a
    hash table; O(1) lookup, insert and eviction) and guarded by its own
    mutex — it is shared by every gateway session of a pipeline and must
    stay correct when sessions run on multiple domains. *)

module Xtra = Hyperq_xtra.Xtra

(* the fields are only ever read structurally, by Hashtbl hashing/equality *)
type key = {
  k_sql : string;  (** exact source text *)
  k_dialect : string;  (** source dialect name *)
  k_cap : string;  (** target capability-profile name *)
  k_rules : string;  (** active rule-pack set id ("" when no packs) *)
}
[@@warning "-69"]

let key ~rules ~sql ~dialect ~cap =
  { k_sql = sql; k_dialect = dialect; k_cap = cap; k_rules = rules }

(** The fully-translated, param-free tail of a plan. *)
type plan = {
  p_target_sql : string;  (** serialized target SQL *)
  p_no_op : bool;  (** translated away entirely (e.g. COLLECT STATISTICS) *)
}

type entry = {
  e_bound : Xtra.statement;  (** bound form, before parameter substitution *)
  e_has_params : bool;  (** bound form contains positional [?] markers *)
  e_binder_features : string list;
  e_rules : string list;  (** transformer rules fired at miss time *)
  e_plan : plan option;  (** [None] when [e_has_params] *)
  e_bind_s : float;  (** observed parse+bind cost at miss time *)
  e_translate_s : float;  (** observed full translation cost at miss time *)
}

(* --- intrusive doubly-linked LRU list --------------------------------- *)

type node = {
  n_key : key;
  mutable n_version : int;
  mutable n_entry : entry;
  mutable n_prev : node option;  (** towards most-recently used *)
  mutable n_next : node option;  (** towards least-recently used *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;  (** entries dropped because the catalog moved on *)
  entries : int;
  saved_translate_s : float;  (** full translation skipped on param-free hits *)
  saved_bind_s : float;  (** parse+bind skipped on parameterized hits *)
}

type t = {
  capacity : int;  (** <= 0 disables the cache entirely *)
  table : (key, node) Hashtbl.t;
  mutable head : node option;  (** most-recently used *)
  mutable tail : node option;  (** least-recently used *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable saved_translate_s : float;
  mutable saved_bind_s : float;
}

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    saved_translate_s = 0.;
    saved_bind_s = 0.;
  }

let enabled t = t.capacity > 0

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* list surgery; caller holds the lock *)

let unlink t node =
  (match node.n_prev with
  | Some p -> p.n_next <- node.n_next
  | None -> t.head <- node.n_next);
  (match node.n_next with
  | Some n -> n.n_prev <- node.n_prev
  | None -> t.tail <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front t node =
  node.n_prev <- None;
  node.n_next <- t.head;
  (match t.head with Some h -> h.n_prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let remove_node t node =
  unlink t node;
  Hashtbl.remove t.table node.n_key

(** Look up [key] at catalog [version]. A stale entry (older version) is
    removed and counted as an invalidation; a fresh entry is promoted to the
    front of the recency list and its saved cost credited to the stats. *)
let find t ~version key : entry option =
  if not (enabled t) then None
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | None ->
            t.misses <- t.misses + 1;
            None
        | Some node when node.n_version <> version ->
            remove_node t node;
            t.invalidations <- t.invalidations + 1;
            t.misses <- t.misses + 1;
            None
        | Some node ->
            unlink t node;
            push_front t node;
            t.hits <- t.hits + 1;
            let e = node.n_entry in
            if e.e_has_params then t.saved_bind_s <- t.saved_bind_s +. e.e_bind_s
            else t.saved_translate_s <- t.saved_translate_s +. e.e_translate_s;
            Some e)

(** Insert or refresh [key]. Evicts the least-recently-used entry when the
    cache is full. *)
let add t ~version key entry =
  if enabled t then
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some node ->
            node.n_version <- version;
            node.n_entry <- entry;
            unlink t node;
            push_front t node
        | None ->
            if Hashtbl.length t.table >= t.capacity then (
              match t.tail with
              | Some lru ->
                  remove_node t lru;
                  t.evictions <- t.evictions + 1
              | None -> ());
            let node =
              { n_key = key; n_version = version; n_entry = entry;
                n_prev = None; n_next = None }
            in
            Hashtbl.replace t.table key node;
            push_front t node))

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

let stats t : stats =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        entries = Hashtbl.length t.table;
        saved_translate_s = t.saved_translate_s;
        saved_bind_s = t.saved_bind_s;
      })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let stats_to_string (s : stats) =
  Printf.sprintf
    "hits=%d misses=%d hit_rate=%.3f entries=%d evictions=%d invalidations=%d \
     saved_translate_ms=%.2f saved_bind_ms=%.2f"
    s.hits s.misses (hit_rate s) s.entries s.evictions s.invalidations
    (s.saved_translate_s *. 1000.)
    (s.saved_bind_s *. 1000.)

(** Detect positional [?] markers in a bound statement. *)
let bound_has_params (st : Xtra.statement) =
  let found = ref false in
  ignore
    (Xtra.rewrite_statement
       ~frel:(fun r -> r)
       ~fscalar:(fun s ->
         (match s with Xtra.Param _ -> found := true | _ -> ());
         s)
       st);
  !found
