(** Resilience layer: retry with exponential backoff, per-backend circuit
    breaking, and per-statement deadline budgets.

    Hyper-Q sits *in the hot path* between an unmodified application and the
    target warehouse (paper Figure 1(b)); for production traffic the
    middleware must survive a flaky backend rather than forward every hiccup
    to the client. This module gives the pipeline a deterministic policy
    engine: transient backend failures ({!Hyperq_sqlvalue.Sql_error.kind}
    [Transient_error]) are retried with exponential backoff, sustained
    failures open a circuit breaker that fails fast while the backend
    recovers, and an optional deadline bounds the total time a statement may
    spend on retries. The clock and the jitter RNG are injectable so every
    schedule is reproducible in tests. *)

(** Time source — an alias of {!Hyperq_obs.Obs.clock}, so the whole stack
    (spans, backoff schedules, session timestamps) shares one injectable
    clock. [sleep] advances [now] in fake clocks, so backoff schedules are
    observable without real waiting. *)
type clock = Hyperq_obs.Obs.clock = {
  now : unit -> float;
  sleep : float -> unit;
}

val real_clock : clock

(** A virtual clock starting at [start] (default 0): [sleep d] just advances
    [now] by [d]. *)
val fake_clock : ?start:float -> unit -> clock

type retry_policy = {
  max_attempts : int;  (** total tries, including the first (>= 1) *)
  base_delay_s : float;  (** delay before the first retry *)
  multiplier : float;  (** backoff growth factor per retry *)
  max_delay_s : float;  (** cap on a single backoff delay *)
  jitter : float;  (** +/- fraction of the delay randomized (0..1) *)
}

val default_retry : retry_policy
val no_retry : retry_policy

type breaker_config = {
  failure_threshold : int;
      (** consecutive backend failures that trip the breaker open *)
  cooldown_s : float;  (** open -> half-open after this long *)
  half_open_probes : int;
      (** successful half-open probes required to close again; also the
          maximum number of trial requests allowed in flight at once while
          half-open — concurrent callers beyond it are shed with
          [Unavailable] so only the probe(s) reach the recovering backend *)
}

val default_breaker : breaker_config

(** Closed: traffic flows. Open: fail fast, no backend calls. Half_open:
    cooldown elapsed; at most [half_open_probes] trial requests are let
    through at a time, everyone else is shed until a probe resolves. *)
type breaker_state = Closed | Open | Half_open

val breaker_state_to_string : breaker_state -> string

type policy = {
  retry : retry_policy;
  breaker : breaker_config;
  deadline_s : float option;
      (** default per-statement budget; [None] = unbounded *)
}

val default_policy : policy

type t

(** [create ~policy ~seed ~clock ~enabled ()] builds one resilience executor
    (one per backend: the breaker state is per-target). [seed] fixes the
    jitter RNG; [enabled:false] turns {!call} into a zero-cost passthrough
    (used to measure the fault-free overhead of the layer itself). *)
val create :
  ?policy:policy -> ?seed:int -> ?clock:clock -> ?enabled:bool -> unit -> t

val policy : t -> policy
val now : t -> float

(** The executor's injected time source (shared with telemetry spans). *)
val clock : t -> clock

val enabled : t -> bool

(** Current breaker state ([Open] is reported until a call actually probes,
    even if the cooldown has elapsed). *)
val breaker_state : t -> breaker_state

(** [would_admit t] — whether a request issued now would reach the backend
    (closed, half-open, or open with cooldown elapsed). Non-mutating; used
    by the scale-out router to skip quarantined replicas. *)
val would_admit : t -> bool

(** The backoff delay after the [attempt]-th failure (1-based), jittered by
    the executor's deterministic RNG. *)
val backoff_delay : t -> attempt:int -> float

(** [call t ~deadline_at ~on_retry f] runs [f] under the policy: transient
    errors are retried with backoff while the breaker admits and the
    deadline (absolute clock time) allows. [on_retry] fires once per
    backoff-then-retry cycle, after the sleep and outside the executor's
    lock (the pipeline uses it to count retries on the query trace). Raises
    [Sql_error] [Unavailable] when the breaker is open, a half-open probe is
    already in flight, retries are exhausted, or the deadline is (or would
    be) exceeded — including a deadline that already expired before the
    first attempt, e.g. because the statement sat in an admission queue past
    its budget. Non-transient errors pass through untouched and do not count
    against the breaker (a bind error is the backend working fine). *)
val call :
  t -> ?deadline_at:float -> ?on_retry:(unit -> unit) -> (unit -> 'a) -> 'a

type stats = {
  st_attempts : int;  (** backend calls actually issued *)
  st_retries : int;  (** backoff-then-retry cycles taken *)
  st_absorbed : int;  (** statements that failed transiently, then succeeded *)
  st_exhausted : int;  (** statements that ran out of retry budget *)
  st_deadline_exceeded : int;
  st_rejected_open : int;  (** calls failed fast by the open breaker *)
  st_breaker_opens : int;
  st_breaker_closes : int;
}

val stats : t -> stats
val stats_to_string : t -> string

(** Manual breaker feedback, for callers that talk to the backend outside
    {!call} (the scale-out read router). *)
val record_success : t -> unit

val record_failure : t -> unit
