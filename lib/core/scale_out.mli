(** Scaling out applications across warehouse replicas (paper Appendix B.3).

    Statements without side effects round-robin across *healthy* replicas;
    everything else is fanned out to every replica in the same order so that
    deterministic replicas stay identical — "without sacrificing
    consistency, and without requiring changes to the application logic".

    Health tracking: each replica gets its own fault injector and resilience
    executor. A replica is healthy when its circuit breaker would admit a
    request and it has applied every fanned-out write. Unhealthy replicas
    are quarantined out of read routing (reads fail over to the next healthy
    replica); writes skip them and record the lag, to be repaired by
    {!resync}. *)

open Hyperq_sqlvalue

type t

(** [create ~cap ~policy ~clock ~seed ~obs ~replicas ()] — every replica
    gets its own pipeline, fault injector and resilience executor (seeded
    [seed + i]) sharing [clock], so failure timelines are reproducible. All
    replicas report into one observability registry ([obs], default a fresh
    one on [clock]) with a [replica] label per instance; the router adds
    per-replica lag/health gauges and its own event counters. *)
val create :
  ?cap:Hyperq_transform.Capability.t ->
  ?policy:Resilience.policy ->
  ?clock:Resilience.clock ->
  ?seed:int ->
  ?obs:Hyperq_obs.Obs.t ->
  replicas:int ->
  unit ->
  t

(** The registry shared by the router and every replica pipeline. *)
val obs : t -> Hyperq_obs.Obs.t

val replica_count : t -> int

(** The [i]-th replica's pipeline (tests inspect its breaker directly). *)
val pipeline : t -> int -> Pipeline.t

(** The [i]-th replica's fault injector (tests script outages through it). *)
val fault : t -> int -> Hyperq_engine.Fault.t

(** Writes the [i]-th replica has missed (0 = in sync). *)
val lag : t -> int -> int

(** In sync and its breaker would admit a request. *)
val healthy : t -> int -> bool

type routing =
  | Read_one of int  (** served by one replica (its index) *)
  | Write_all  (** fanned out to every replica *)

(** Per-replica result of one fanned-out write. *)
type replica_outcome =
  | Applied
  | Failed of Sql_error.t  (** attempted, but the replica's pipeline failed *)
  | Skipped_behind of int
      (** not attempted: already [n] writes behind, or breaker quarantined *)

type divergence = {
  div_sql : string;  (** the write on which the replica set diverged *)
  div_outcomes : replica_outcome array;  (** outcome per replica *)
}

val divergence_to_string : divergence -> string

(** The most recent divergence event, if any (cleared by a full resync). *)
val last_divergence : t -> divergence option

(** Run one source-dialect statement through the load balancer.

    Reads are served by the next healthy replica; on a transient/unavailable
    failure the read fails over to the following healthy replica. Raises
    [Sql_error] [Unavailable] only when no healthy replica can answer.

    Writes fan out to every in-sync, admitted replica. If some replicas
    apply the write and a previously in-sync replica does not, the replica
    set has *newly* diverged: the write is durable on the healthy replicas,
    the event is recorded (see {!last_divergence}), and a structured
    [Unavailable] error is raised once. Later writes on the degraded
    cluster succeed, skipping the lagging replicas, until {!resync}. *)
val run_sql : t -> string -> Pipeline.outcome * routing

(** Replay the writes replica [i] missed, in order, and return how many were
    replayed (0 if already in sync). The replica's own resilience policy
    applies: clear its fault injector first and let the breaker cooldown
    elapse, or the replay itself is rejected. *)
val resync : t -> int -> int

(** (reads balanced, writes fanned out) so far. *)
val stats : t -> int * int

(** (read failovers, divergence events, resyncs) so far. *)
val fault_stats : t -> int * int * int

(** One line per replica: breaker state, lag, health. *)
val health_to_string : t -> string

(** Run a read on every replica — including quarantined ones — and check
    that all answers agree. *)
val consistent : t -> string -> bool
