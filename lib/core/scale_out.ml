(** Scaling out applications across warehouse replicas (paper Appendix B.3).

    "A common solution ... is to maintain multiple replicas of the data
    warehouse and load balance queries across them. The ADV solution on top
    can then automatically route the queries to the different replicas,
    without sacrificing consistency, and without requiring changes to the
    application logic. We are currently working on extending Hyper-Q to
    handle this scenario." — implemented here as an extension.

    Routing policy: statements without side effects (queries, HELP/SHOW)
    round-robin across healthy replicas; everything else (DML, DDL, macros —
    which may contain DML — and session settings) is applied to *every*
    replica in the same order, so deterministic replicas stay identical.

    Health: each replica owns a fault injector and a resilience executor
    (retry + circuit breaker) inside its pipeline. A replica is healthy when
    its breaker would admit a request and it has applied every fanned-out
    write ([lag] = 0). Reads fail over around unhealthy replicas; writes
    skip them (recording [Skipped_behind]) and the missed writes are kept in
    an ordered log that {!resync} replays. *)

open Hyperq_sqlvalue
open Hyperq_sqlparser
module Capability = Hyperq_transform.Capability
module Fault = Hyperq_engine.Fault

type replica = {
  pipeline : Pipeline.t;
  session : Session.t;  (** kept in step with the other replicas' sessions *)
  injector : Fault.t;
  resil : Resilience.t;
  mutable applied_writes : int;  (** prefix of the write log applied here *)
}

type replica_outcome =
  | Applied
  | Failed of Sql_error.t
  | Skipped_behind of int

type divergence = {
  div_sql : string;
  div_outcomes : replica_outcome array;
}

type t = {
  replicas : replica array;
  lock : Mutex.t;
  mutable next : int;
  mutable write_log : (string * Ast.statement) list;  (** newest first *)
  mutable write_count : int;
  mutable reads_routed : int;
  mutable writes_fanned_out : int;
  mutable failovers : int;
  mutable divergences : int;
  mutable resyncs : int;
  mutable last_divergence : divergence option;
}

module Obs = Hyperq_obs.Obs

let create ?(cap = Capability.ansi_engine) ?(policy = Resilience.default_policy)
    ?(clock = Resilience.real_clock) ?(seed = 0x5CA1E) ?obs ~replicas () =
  if replicas < 1 then invalid_arg "Scale_out.create: need at least 1 replica";
  (* one registry shared by all replicas; each replica's pipeline bakes a
     ("replica", i) label into its metrics so the families don't collide *)
  let obs = match obs with Some o -> o | None -> Obs.create ~clock () in
  let mk i =
    let injector = Fault.create ~seed:(seed + i) ~sleep:clock.Resilience.sleep () in
    let resil = Resilience.create ~policy ~seed:(seed + i) ~clock () in
    {
      pipeline =
        Pipeline.create ~cap ~fault:injector ~resil ~obs
          ~obs_labels:[ ("replica", string_of_int i) ]
          ();
      session = Session.create ~created_at:(clock.Resilience.now ()) ();
      injector;
      resil;
      applied_writes = 0;
    }
  in
  let t =
    {
      replicas = Array.init replicas mk;
      lock = Mutex.create ();
      next = 0;
      write_log = [];
      write_count = 0;
      reads_routed = 0;
      writes_fanned_out = 0;
      failovers = 0;
      divergences = 0;
      resyncs = 0;
      last_divergence = None;
    }
  in
  (* Router gauges/counters, sampled at render time. The closures read the
     router's fields without taking [t.lock] — single word reads, and the
     registry render must not nest the router lock (collectors registered by
     each replica's pipeline already sample replica-local state). *)
  let n = Array.length t.replicas in
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Writes each replica is behind the fanned-out write log"
    "hyperq_replica_lag" (fun () ->
      List.init n (fun i ->
          ( [ ("replica", string_of_int i) ],
            float_of_int (t.write_count - t.replicas.(i).applied_writes) )));
  Obs.register_collector obs ~kind:`Gauge
    ~help:"1 when the replica is in sync and its breaker admits requests"
    "hyperq_replica_healthy" (fun () ->
      List.init n (fun i ->
          ( [ ("replica", string_of_int i) ],
            if
              t.write_count = t.replicas.(i).applied_writes
              && Resilience.would_admit t.replicas.(i).resil
            then 1.
            else 0. )));
  Obs.register_collector obs ~kind:`Counter
    ~help:"Scale-out router events" "hyperq_scaleout_events_total" (fun () ->
      [
        ([ ("event", "read_routed") ], float_of_int t.reads_routed);
        ([ ("event", "write_fanned_out") ], float_of_int t.writes_fanned_out);
        ([ ("event", "failover") ], float_of_int t.failovers);
        ([ ("event", "divergence") ], float_of_int t.divergences);
        ([ ("event", "resync") ], float_of_int t.resyncs);
      ]);
  t

let obs t = Pipeline.obs t.replicas.(0).pipeline

let replica_count t = Array.length t.replicas
let pipeline t i = t.replicas.(i).pipeline
let fault t i = t.replicas.(i).injector
let lag t i = t.write_count - t.replicas.(i).applied_writes

let healthy t i =
  lag t i = 0 && Resilience.would_admit t.replicas.(i).resil

let last_divergence t = t.last_divergence

let outcome_to_string = function
  | Applied -> "applied"
  | Failed e -> Printf.sprintf "failed (%s)" (Sql_error.to_string e)
  | Skipped_behind n -> Printf.sprintf "skipped (%d behind)" n

let divergence_to_string d =
  let per_replica =
    Array.to_list
      (Array.mapi
         (fun i o -> Printf.sprintf "r%d %s" i (outcome_to_string o))
         d.div_outcomes)
  in
  Printf.sprintf "replica divergence on %S: %s" d.div_sql
    (String.concat "; " per_replica)

(* A statement is read-only iff replaying it on one replica only cannot make
   the replicas diverge. *)
let is_read_only = function
  | Ast.S_select _ | Ast.S_help _ | Ast.S_show _ | Ast.S_explain _ -> true
  | Ast.S_insert _ | Ast.S_update _ | Ast.S_delete _ | Ast.S_merge _
  | Ast.S_create_table _ | Ast.S_create_table_as _ | Ast.S_drop_table _
  | Ast.S_create_view _ | Ast.S_drop_view _ | Ast.S_rename_table _
  | Ast.S_create_macro _ | Ast.S_drop_macro _ | Ast.S_exec_macro _
  | Ast.S_create_procedure _ | Ast.S_drop_procedure _ | Ast.S_call _
  | Ast.S_collect_stats _ | Ast.S_set_session _ | Ast.S_begin_transaction
  | Ast.S_commit | Ast.S_rollback ->
      false

type routing = Read_one of int | Write_all

let is_routable_failure (e : Sql_error.t) =
  match e.Sql_error.kind with
  | Sql_error.Transient_error | Sql_error.Unavailable -> true
  | _ -> false

(* Reads: round-robin over healthy replicas, failing over past replicas
   whose pipeline reports a transient/unavailable failure. Other error
   kinds (bind, execution, ...) are the replica answering — re-raised. *)
let run_read t sql ast =
  let n = Array.length t.replicas in
  Mutex.lock t.lock;
  let start = t.next in
  t.next <- (t.next + 1) mod n;
  t.reads_routed <- t.reads_routed + 1;
  Mutex.unlock t.lock;
  let rec go k last_err tried =
    if k >= n then
      match last_err with
      | Some e ->
          Sql_error.unavailable
            "read failed on every healthy replica (last: %s)"
            (Sql_error.to_string e)
      | None ->
          Sql_error.unavailable
            "no healthy replica available for read (%d of %d quarantined)"
            (n - tried) n
    else
      let i = (start + k) mod n in
      if not (healthy t i) then go (k + 1) last_err tried
      else
        let r = t.replicas.(i) in
        match
          Pipeline.run_statement_ast r.pipeline ~session:r.session
            ~sql_text:sql ast
        with
        | o -> (o, Read_one i)
        | exception Sql_error.Error e when is_routable_failure e ->
            Mutex.lock t.lock;
            t.failovers <- t.failovers + 1;
            Mutex.unlock t.lock;
            go (k + 1) (Some e) (tried + 1)
  in
  go 0 None 0

(* Writes: fan out to every in-sync, admitted replica; skipped replicas fall
   (further) behind. The write is logged as durable iff at least one replica
   applied it. A *new* divergence — a replica that was in sync but did not
   apply a write others applied — is recorded and surfaced once as a
   structured [Unavailable] error. *)
let run_write t sql ast =
  let n = Array.length t.replicas in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.writes_fanned_out <- t.writes_fanned_out + 1;
      let outcomes = Array.make n (Skipped_behind 0) in
      let results = Array.make n None in
      let pre_lag = Array.map (fun r -> t.write_count - r.applied_writes) t.replicas in
      Array.iteri
        (fun i r ->
          if pre_lag.(i) > 0 || not (Resilience.would_admit r.resil) then
            outcomes.(i) <- Skipped_behind pre_lag.(i)
          else
            match
              Pipeline.run_statement_ast r.pipeline ~session:r.session
                ~sql_text:sql ast
            with
            | o ->
                results.(i) <- Some o;
                outcomes.(i) <- Applied;
                r.applied_writes <- r.applied_writes + 1
            | exception Sql_error.Error e -> outcomes.(i) <- Failed e)
        t.replicas;
      let any_applied = Array.exists (fun o -> o = Applied) outcomes in
      if not any_applied then begin
        (* nothing durable: the replicas are still mutually consistent *)
        let first_failure =
          Array.fold_left
            (fun acc o ->
              match (acc, o) with None, Failed e -> Some e | _ -> acc)
            None outcomes
        in
        match first_failure with
        | Some e -> raise (Sql_error.Error e)
        | None ->
            Sql_error.unavailable
              "write rejected: no replica admitted (all quarantined or \
               lagging; resync required)"
      end
      else begin
        t.write_count <- t.write_count + 1;
        t.write_log <- (sql, ast) :: t.write_log;
        let newly_diverged =
          Array.exists
            (fun i -> pre_lag.(i) = 0 && outcomes.(i) <> Applied)
            (Array.init n (fun i -> i))
        in
        if newly_diverged then begin
          let d = { div_sql = sql; div_outcomes = outcomes } in
          t.divergences <- t.divergences + 1;
          t.last_divergence <- Some d;
          Sql_error.unavailable "%s" (divergence_to_string d)
        end;
        let first_result =
          Array.fold_left
            (fun acc r -> match acc with Some _ -> acc | None -> r)
            None results
        in
        match first_result with
        | Some o -> (o, Write_all)
        | None -> assert false
      end)

let run_sql t sql : Pipeline.outcome * routing =
  let ast = Parser.parse_statement ~dialect:Dialect.Teradata sql in
  if is_read_only ast then run_read t sql ast else run_write t sql ast

let resync t i =
  let r = t.replicas.(i) in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let missed = t.write_count - r.applied_writes in
      if missed = 0 then 0
      else begin
        let entries =
          List.filteri
            (fun idx _ -> idx >= r.applied_writes)
            (List.rev t.write_log)
        in
        List.iter
          (fun (sql, ast) ->
            ignore
              (Pipeline.run_statement_ast r.pipeline ~session:r.session
                 ~sql_text:sql ast);
            r.applied_writes <- r.applied_writes + 1)
          entries;
        t.resyncs <- t.resyncs + 1;
        if Array.for_all (fun r -> t.write_count = r.applied_writes) t.replicas
        then t.last_divergence <- None;
        missed
      end)

let stats t = (t.reads_routed, t.writes_fanned_out)
let fault_stats t = (t.failovers, t.divergences, t.resyncs)

let health_to_string t =
  let per_replica =
    Array.to_list
      (Array.mapi
         (fun i r ->
           Printf.sprintf "r%d: breaker=%s lag=%d %s" i
             (Resilience.breaker_state_to_string
                (Resilience.breaker_state r.resil))
             (lag t i)
             (if healthy t i then "healthy" else "quarantined"))
         t.replicas)
  in
  String.concat "\n" per_replica

(** Consistency probe used by tests and the example: run a read on *every*
    replica and report whether all answers agree. *)
let consistent t sql =
  let render (o : Pipeline.outcome) =
    List.map
      (fun (row : Hyperq_sqlvalue.Value.t array) ->
        String.concat ","
          (Array.to_list (Array.map Hyperq_sqlvalue.Value.to_string row)))
      o.Pipeline.out_rows
  in
  let ast = Parser.parse_statement ~dialect:Dialect.Teradata sql in
  let results =
    Array.to_list
      (Array.map
         (fun r ->
           render
             (Pipeline.run_statement_ast r.pipeline ~session:r.session
                ~sql_text:sql ast))
         t.replicas)
  in
  match results with
  | [] -> true
  | first :: rest -> List.for_all (fun r -> r = first) rest
