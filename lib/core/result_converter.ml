(** Result Converter (paper §4.6): TDF → source-database binary records.

    "TDF packets are unwrapped by [the] Result Converter to extract result
    rows and convert them into the binary format of the original database.
    This conversion operation happens in parallel by starting a number of
    processes where each process handles the conversion of a subset of the
    result rows."

    Conversion fans out over the shared {!Hyperq_engine.Morsel} domain pool
    when the result is large enough to amortize the coordination cost; the
    degree follows the same [HYPERQ_EXEC_DOMAINS] budget as the vectorized
    executor instead of a private worker count. *)

open Hyperq_sqlvalue
module Tdf = Hyperq_tdf.Tdf
module Result_store = Hyperq_tdf.Result_store
module Record = Hyperq_wire.Record

let parallel_threshold = 4096

let record_columns (columns : Tdf.column_desc list) =
  List.map
    (fun (c : Tdf.column_desc) ->
      { Record.rc_name = c.Tdf.cd_name; rc_type = c.Tdf.cd_type })
    columns

let convert_rows cols rows = List.map (Record.encode_row cols) rows

(** Convert a full TDF result store into WP-A record payloads, preserving
    row order. Large results are converted by parallel domains. *)
let convert (columns : Tdf.column_desc list) (store : Result_store.t) :
    string list =
  let cols = record_columns columns in
  let rows = Result_store.all_rows store in
  let n = List.length rows in
  let workers =
    if n < parallel_threshold then 1
    else Hyperq_engine.Morsel.configured_domains ()
  in
  if workers <= 1 then convert_rows cols rows
  else begin
    let arr = Array.of_list rows in
    let out = Array.make n "" in
    let per = (n + workers - 1) / workers in
    (* contiguous slice per body: writes land in disjoint regions of [out],
       published by the run barrier, so row order is preserved for free *)
    Hyperq_engine.Morsel.run ~domains:workers (fun w ->
        let lo = w * per in
        let hi = min n (lo + per) in
        for i = lo to hi - 1 do
          out.(i) <- Record.encode_row cols arr.(i)
        done);
    Array.to_list out
  end

(** Round-trip helper for tests: decode WP-A records back into rows. *)
let decode_records (columns : Tdf.column_desc list) (payloads : string list) :
    Value.t array list =
  let cols = record_columns columns in
  List.map (Record.decode_row cols) payloads
