(** Emulation of features the target lacks entirely (paper §6).

    "Hyper-Q breaks down these sophisticated features into smaller units
    such that running these units in combination gives the application
    exactly the same behavior of the main feature." The emulation driver
    issues multiple requests against the backend and maintains state (e.g.
    the recursion work tables) in the virtualization layer.

    Implemented here:
    - Teradata macros (CREATE/DROP/EXEC) with parameter substitution;
    - recursive queries via WorkTable/TempTable iteration (Figure 7);
    - MERGE split into UPDATE + anti-join INSERT;
    - DML on (simple) views rewritten onto the base table;
    - SET-table INSERT deduplication;
    - HELP SESSION / HELP TABLE / SHOW, answered from middle-tier state. *)

open Hyperq_sqlvalue
open Hyperq_sqlparser
module Xtra = Hyperq_xtra.Xtra
module Catalog = Hyperq_catalog.Catalog
module Capability = Hyperq_transform.Capability
module Backend = Hyperq_engine.Backend

(** Callbacks into the pipeline; avoids a module cycle. *)
type runner = {
  cap : Capability.t;
  vcatalog : Catalog.t;
  session : Session.t;
  run_ast : Ast.statement -> Backend.result;
      (** full translate+execute path for one statement *)
  run_xtra : Xtra.statement -> Backend.result;
      (** transform+serialize+execute for an already-bound statement *)
  fresh_name : string -> string;
  trace : string list ref;  (** human-readable emulation steps (Figure 7) *)
  span : 'a. string -> (unit -> 'a) -> 'a;
      (** wrap one emulation step in a telemetry span on the current query
          trace (the pipeline supplies {!Hyperq_obs.Obs.with_span}) *)
}

let tracef r fmt = Printf.ksprintf (fun s -> r.trace := s :: !(r.trace)) fmt

let result_rows schema rows =
  {
    Backend.res_schema = schema;
    res_rows = rows;
    res_rowcount = List.length rows;
    res_message = "SELECT";
  }

let vstr s = Value.Varchar s

(* ------------------------------------------------------------------ *)
(* AST substitution (macro parameters)                                  *)
(* ------------------------------------------------------------------ *)

let rec subst_expr env (e : Ast.expr) : Ast.expr =
  let s = subst_expr env in
  match e with
  | Ast.E_column [ name ]
    when String.length name > 0 && name.[0] = ':' -> (
      let pname = String.sub name 1 (String.length name - 1) in
      match List.assoc_opt (String.uppercase_ascii pname) env with
      | Some arg -> arg
      | None -> Sql_error.bind_error "unbound macro parameter :%s" pname)
  | Ast.E_column _ | Ast.E_lit _ | Ast.E_param _ -> e
  | Ast.E_binop (op, a, b) -> Ast.E_binop (op, s a, s b)
  | Ast.E_unop (op, a) -> Ast.E_unop (op, s a)
  | Ast.E_fun { name; distinct; args; star } ->
      Ast.E_fun { name; distinct; args = List.map s args; star }
  | Ast.E_cast (a, t) -> Ast.E_cast (s a, t)
  | Ast.E_extract (f, a) -> Ast.E_extract (f, s a)
  | Ast.E_case { operand; branches; else_branch } ->
      Ast.E_case
        {
          operand = Option.map s operand;
          branches = List.map (fun (c, v) -> (s c, s v)) branches;
          else_branch = Option.map s else_branch;
        }
  | Ast.E_in { lhs; negated; rhs } ->
      Ast.E_in
        {
          lhs = s lhs;
          negated;
          rhs =
            (match rhs with
            | Ast.In_list items -> Ast.In_list (List.map s items)
            | Ast.In_subquery q -> Ast.In_subquery (subst_query env q));
        }
  | Ast.E_between { arg; low; high; negated } ->
      Ast.E_between { arg = s arg; low = s low; high = s high; negated }
  | Ast.E_like { arg; pattern; escape; negated } ->
      Ast.E_like
        { arg = s arg; pattern = s pattern; escape = Option.map s escape; negated }
  | Ast.E_is_null (a, n) -> Ast.E_is_null (s a, n)
  | Ast.E_exists q -> Ast.E_exists (subst_query env q)
  | Ast.E_scalar_subquery q -> Ast.E_scalar_subquery (subst_query env q)
  | Ast.E_quantified { lhs; op; quant; subquery } ->
      Ast.E_quantified
        { lhs = List.map s lhs; op; quant; subquery = subst_query env subquery }
  | Ast.E_tuple es -> Ast.E_tuple (List.map s es)
  | Ast.E_window { func; args; partition; order; frame } ->
      Ast.E_window
        {
          func;
          args = List.map s args;
          partition = List.map s partition;
          order =
            List.map
              (fun (i : Ast.order_item) -> { i with Ast.sort_expr = s i.Ast.sort_expr })
              order;
          frame;
        }
  | Ast.E_td_rank items ->
      Ast.E_td_rank
        (List.map (fun (i : Ast.order_item) -> { i with Ast.sort_expr = s i.Ast.sort_expr }) items)

and subst_query env (q : Ast.query) : Ast.query =
  {
    q with
    Ast.ctes =
      List.map (fun (c : Ast.cte) -> { c with Ast.cte_query = subst_query env c.Ast.cte_query }) q.Ast.ctes;
    body = subst_body env q.Ast.body;
    order_by =
      List.map
        (fun (i : Ast.order_item) -> { i with Ast.sort_expr = subst_expr env i.Ast.sort_expr })
        q.Ast.order_by;
    limit = Option.map (subst_expr env) q.Ast.limit;
    offset = Option.map (subst_expr env) q.Ast.offset;
  }

and subst_body env = function
  | Ast.Q_select s -> Ast.Q_select (subst_select env s)
  | Ast.Q_setop (op, all, l, r) ->
      Ast.Q_setop (op, all, subst_body env l, subst_body env r)
  | Ast.Q_values rows -> Ast.Q_values (List.map (List.map (subst_expr env)) rows)

and subst_select env (s : Ast.select) : Ast.select =
  {
    s with
    Ast.projection =
      List.map
        (function
          | Ast.Sel_expr (e, a) -> Ast.Sel_expr (subst_expr env e, a)
          | item -> item)
        s.Ast.projection;
    from = List.map (subst_table_ref env) s.Ast.from;
    where = Option.map (subst_expr env) s.Ast.where;
    group_by =
      List.map
        (function
          | Ast.Group_expr e -> Ast.Group_expr (subst_expr env e)
          | Ast.Group_rollup es -> Ast.Group_rollup (List.map (subst_expr env) es)
          | Ast.Group_cube es -> Ast.Group_cube (List.map (subst_expr env) es)
          | Ast.Group_sets sets -> Ast.Group_sets (List.map (List.map (subst_expr env)) sets))
        s.Ast.group_by;
    having = Option.map (subst_expr env) s.Ast.having;
    qualify = Option.map (subst_expr env) s.Ast.qualify;
  }

and subst_table_ref env = function
  | Ast.T_named _ as t -> t
  | Ast.T_subquery { query; alias; col_aliases } ->
      Ast.T_subquery { query = subst_query env query; alias; col_aliases }
  | Ast.T_join { kind; left; right; cond } ->
      Ast.T_join
        {
          kind;
          left = subst_table_ref env left;
          right = subst_table_ref env right;
          cond =
            (match cond with Ast.On e -> Ast.On (subst_expr env e) | c -> c);
        }

let rec subst_statement env (st : Ast.statement) : Ast.statement =
  match st with
  | Ast.S_select q -> Ast.S_select (subst_query env q)
  | Ast.S_insert { table; columns; source } ->
      Ast.S_insert
        {
          table;
          columns;
          source =
            (match source with
            | Ast.Ins_values rows ->
                Ast.Ins_values (List.map (List.map (subst_expr env)) rows)
            | Ast.Ins_query q -> Ast.Ins_query (subst_query env q));
        }
  | Ast.S_update { table; alias; set; from; where } ->
      Ast.S_update
        {
          table;
          alias;
          set = List.map (fun (c, e) -> (c, subst_expr env e)) set;
          from = List.map (subst_table_ref env) from;
          where = Option.map (subst_expr env) where;
        }
  | Ast.S_delete { table; alias; from; where } ->
      Ast.S_delete
        {
          table;
          alias;
          from = List.map (subst_table_ref env) from;
          where = Option.map (subst_expr env) where;
        }
  | Ast.S_merge { target; target_alias; source; on; when_matched; when_not_matched }
    ->
      Ast.S_merge
        {
          target;
          target_alias;
          source = subst_table_ref env source;
          on = subst_expr env on;
          when_matched = Option.map (subst_merge_clause env) when_matched;
          when_not_matched = Option.map (subst_merge_clause env) when_not_matched;
        }
  | Ast.S_exec_macro { name; args } ->
      (* macros may call other macros with the enclosing parameters *)
      Ast.S_exec_macro
        {
          name;
          args =
            (match args with
            | Ast.Macro_positional es ->
                Ast.Macro_positional (List.map (subst_expr env) es)
            | Ast.Macro_named pairs ->
                Ast.Macro_named
                  (List.map (fun (n, e) -> (n, subst_expr env e)) pairs));
        }
  | st -> st

and subst_merge_clause env = function
  | Ast.Merge_update set -> Ast.Merge_update (List.map (fun (c, e) -> (c, subst_expr env e)) set)
  | Ast.Merge_insert (cols, vals) -> Ast.Merge_insert (cols, List.map (subst_expr env) vals)
  | Ast.Merge_delete -> Ast.Merge_delete

(* ------------------------------------------------------------------ *)
(* Macros                                                               *)
(* ------------------------------------------------------------------ *)

let exec_macro r name (args : Ast.macro_args) =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_macro r.vcatalog name with
  | None -> Sql_error.execution_error "macro %s does not exist" name
  | Some macro ->
      let env =
        match args with
        | Ast.Macro_positional given ->
            if List.length given > List.length macro.Catalog.macro_params then
              Sql_error.execution_error "too many arguments for macro %s" name;
            List.mapi
              (fun i (pname, _) ->
                match List.nth_opt given i with
                | Some e -> (String.uppercase_ascii pname, e)
                | None -> (String.uppercase_ascii pname, Ast.E_lit Ast.L_null))
              macro.Catalog.macro_params
        | Ast.Macro_named given ->
            List.map
              (fun (pname, _) ->
                match
                  List.find_opt
                    (fun (g, _) -> String.uppercase_ascii g = String.uppercase_ascii pname)
                    given
                with
                | Some (_, e) -> (String.uppercase_ascii pname, e)
                | None -> (String.uppercase_ascii pname, Ast.E_lit Ast.L_null))
              macro.Catalog.macro_params
      in
      tracef r "EXEC %s: expanding %d statement(s)" name
        (List.length macro.Catalog.macro_body);
      List.fold_left
        (fun _ st -> r.run_ast (subst_statement env st))
        (result_rows [] [])
        macro.Catalog.macro_body

(* ------------------------------------------------------------------ *)
(* Recursive queries via WorkTable / TempTable (paper §6, Figure 7)     *)
(* ------------------------------------------------------------------ *)

let replace_cte_ref ~name ~table rel =
  Xtra.rewrite
    ~frel:(fun r ->
      match r with
      | Xtra.Cte_ref { cte_name; ref_schema }
        when String.uppercase_ascii cte_name = String.uppercase_ascii name ->
          Xtra.Get { table; table_schema = ref_schema; alias = table }
      | r -> r)
    ~fscalar:(fun s -> s)
    rel

let specs_of_schema (schema : Xtra.schema) =
  List.map
    (fun (c : Xtra.col) ->
      {
        Xtra.spec_name = c.Xtra.name;
        spec_type = (match c.Xtra.ty with Dtype.Unknown -> Dtype.varchar () | t -> t);
        spec_not_null = false;
        spec_default = None;
      })
    schema

let emulate_recursive_query r ~name ~seed ~step ~body =
  let cte_schema = Xtra.schema_of seed in
  let col_names = List.map (fun (c : Xtra.col) -> c.Xtra.name) cte_schema in
  let work = r.fresh_name "WORKTABLE" in
  let temp = r.fresh_name "TEMPTABLE" in
  (* if anything below fails mid-recursion, the middle-tier work tables —
     including the delta of a partially-built iteration — must not leak
     into the target *)
  let live_delta = ref None in
  let cleanup () =
    List.iter
      (fun t ->
        try
          ignore (r.run_xtra (Xtra.Drop_table { dt_name = t; dt_if_exists = true }))
        with Sql_error.Error _ -> ())
      (Option.to_list !live_delta @ [ temp; work ])
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let create tname =
    ignore
      (r.run_xtra
         (Xtra.Create_table
            {
              ct_name = tname;
              persistence = Xtra.Tp_temporary;
              specs = specs_of_schema cte_schema;
              set_semantics = false;
              ct_if_not_exists = false;
            }))
  in
  r.span "recursive:setup" (fun () ->
      create work;
      create temp);
  tracef r "created %s and %s" work temp;
  let seed_count =
    r.span "recursive:seed" (fun () ->
        let n =
          (r.run_xtra
             (Xtra.Insert
                { target = work; target_cols = col_names; source = seed }))
            .Backend.res_rowcount
        in
        ignore
          (r.run_xtra
             (Xtra.Insert
                { target = temp; target_cols = col_names; source = seed }));
        n)
  in
  tracef r "step 1: seeded %s and %s with %d row(s)" work temp seed_count;
  let finished = ref false in
  let iteration = ref 1 in
  while not !finished do
    incr iteration;
    if !iteration > 10_000 then
      Sql_error.execution_error "recursive emulation exceeded iteration limit";
    (* one span per iteration, so the trace shows how deep the recursion ran
       and where the time went (Figure 7's WorkTable/TempTable loop) *)
    r.span
      (Printf.sprintf "recursive:step_%d" !iteration)
      (fun () ->
        let delta = r.fresh_name "DELTA" in
        live_delta := Some delta;
        let step' = replace_cte_ref ~name ~table:temp step in
        let created =
          r.run_xtra
            (Xtra.Create_table_as
               {
                 cta_name = delta;
                 cta_persistence = Xtra.Tp_temporary;
                 cta_source = step';
                 with_data = true;
               })
        in
        let produced = created.Backend.res_rowcount in
        if produced = 0 then begin
          tracef r
            "step %d: recursive expression produced no rows; recursion stops"
            !iteration;
          ignore
            (r.run_xtra
               (Xtra.Drop_table { dt_name = delta; dt_if_exists = false }));
          live_delta := None;
          finished := true
        end
        else begin
          tracef r "step %d: appended %d row(s) to %s" !iteration produced work;
          ignore
            (r.run_xtra
               (Xtra.Insert
                  {
                    target = work;
                    target_cols = col_names;
                    source =
                      Xtra.Get
                        { table = delta; table_schema = cte_schema; alias = delta };
                  }));
          ignore
            (r.run_xtra
               (Xtra.Drop_table { dt_name = temp; dt_if_exists = false }));
          ignore
            (r.run_xtra (Xtra.Rename_table { rn_from = delta; rn_to = temp }));
          live_delta := None
        end)
  done;
  let body' = replace_cte_ref ~name ~table:work body in
  tracef r "substituting %s references with %s in the main query" name work;
  let result = r.span "recursive:final_query" (fun () -> r.run_xtra (Xtra.Query body')) in
  tracef r "dropped %s and %s; returning %d row(s)" temp work
    result.Backend.res_rowcount;
  result

(* ------------------------------------------------------------------ *)
(* MERGE -> UPDATE + anti-join INSERT                                   *)
(* ------------------------------------------------------------------ *)

let emulate_merge r ~fresh_id (m : Xtra.statement) =
  match m with
  | Xtra.Merge
      {
        m_target;
        m_alias;
        m_schema;
        m_source;
        m_source_alias = _;
        m_on;
        m_matched_update;
        m_matched_delete;
        m_not_matched_insert;
      } ->
      tracef r "MERGE into %s: splitting into UPDATE/DELETE + INSERT" m_target;
      let updated =
        match (m_matched_update, m_matched_delete) with
        | Some assignments, _ ->
            (r.run_xtra
               (Xtra.Update
                  {
                    target = m_target;
                    update_alias = m_alias;
                    assignments;
                    extra_from = Some m_source;
                    upd_pred = Some m_on;
                    upd_schema = m_schema;
                  }))
              .Backend.res_rowcount
        | None, true ->
            (r.run_xtra
               (Xtra.Delete
                  {
                    target = m_target;
                    delete_alias = m_alias;
                    extra_from = Some m_source;
                    del_pred = Some m_on;
                    del_schema = m_schema;
                  }))
              .Backend.res_rowcount
        | None, false -> 0
      in
      let inserted =
        match m_not_matched_insert with
        | None -> 0
        | Some (cols, vals) ->
            (* INSERT INTO target SELECT vals FROM source s WHERE NOT EXISTS
               (SELECT 1 FROM target t WHERE on) *)
            let one = { Xtra.id = fresh_id (); name = "ONE"; ty = Dtype.Int } in
            let anti =
              Xtra.Logic_not
                (Xtra.Exists
                   (Xtra.Project
                      {
                        input =
                          Xtra.Filter
                            {
                              input =
                                Xtra.Get
                                  {
                                    table = m_target;
                                    table_schema = m_schema;
                                    alias = m_alias;
                                  };
                              pred = m_on;
                            };
                        proj = [ (one, Xtra.cint 1) ];
                      }))
            in
            let proj_cols =
              List.map
                (fun (v : Xtra.scalar) ->
                  ( {
                      Xtra.id = fresh_id ();
                      name = "V";
                      ty = Xtra.type_of_scalar v;
                    },
                    v ))
                vals
            in
            let source =
              Xtra.Project
                { input = Xtra.Filter { input = m_source; pred = anti }; proj = proj_cols }
            in
            (r.run_xtra
               (Xtra.Insert { target = m_target; target_cols = cols; source }))
              .Backend.res_rowcount
      in
      tracef r "MERGE: %d row(s) matched, %d row(s) inserted" updated inserted;
      {
        Backend.res_schema = [];
        res_rows = [];
        res_rowcount = updated + inserted;
        res_message = "MERGE";
      }
  | _ -> Sql_error.internal_error "emulate_merge on a non-MERGE statement"

(* ------------------------------------------------------------------ *)
(* SET-table INSERT deduplication                                       *)
(* ------------------------------------------------------------------ *)

let emulate_set_table_insert r ~fresh_id ~target ~target_cols ~source =
  tracef r "INSERT into SET table %s: dedup + anti-join rewrite" target;
  match Catalog.find_table r.vcatalog target with
  | None -> Sql_error.internal_error "SET table %s missing from catalog" target
  | Some tbl ->
      let src_schema = Xtra.schema_of source in
      (* target columns receiving the source values, in source order *)
      let tcols =
        List.map
          (fun name ->
            match Catalog.column tbl name with
            | Some c -> c
            | None -> Sql_error.bind_error "column %s not found" name)
          target_cols
      in
      ignore tcols;
      (* rewrite: INSERT DISTINCT source rows that are NOT IN the projected
         target columns *)
      let target_full_schema =
        List.map
          (fun (c : Catalog.column) ->
            { Xtra.id = fresh_id (); name = c.Catalog.col_name; ty = c.Catalog.col_type })
          tbl.Catalog.tbl_columns
      in
      let pick name =
        List.find
          (fun (c : Xtra.col) -> c.Xtra.name = String.uppercase_ascii name)
          target_full_schema
      in
      let sub =
        Xtra.Project
          {
            input =
              Xtra.Get
                { table = target; table_schema = target_full_schema; alias = target };
            proj =
              List.map
                (fun name ->
                  let c = pick name in
                  ({ c with Xtra.id = fresh_id () }, Xtra.Col_ref c))
                target_cols;
          }
      in
      let pred =
        Xtra.Logic_not
          (Xtra.In_subquery
             {
               args = List.map (fun (c : Xtra.col) -> Xtra.Col_ref c) src_schema;
               subquery = sub;
               negated = false;
             })
      in
      let deduped =
        Xtra.Filter { input = Xtra.Distinct { input = source }; pred }
      in
      r.run_xtra (Xtra.Insert { target; target_cols; source = deduped })

(* ------------------------------------------------------------------ *)
(* Informational commands answered from middle-tier state               *)
(* ------------------------------------------------------------------ *)

let varchar_schema names = List.map (fun n -> (n, Dtype.varchar ())) names

let help_session r =
  let rows =
    List.map
      (fun (k, v) -> [| vstr k; vstr v |])
      (List.sort compare r.session.Session.settings)
    @ [
        [| vstr "SESSION_ID"; vstr (string_of_int r.session.Session.session_id) |];
        [| vstr "USER"; vstr r.session.Session.username |];
        [|
          vstr "TRANSACTION";
          vstr (if r.session.Session.in_transaction then "OPEN" else "NONE");
        |];
      ]
  in
  result_rows (varchar_schema [ "ATTRIBUTE"; "VALUE" ]) rows

let help_table r name =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_table r.vcatalog name with
  | None -> Sql_error.execution_error "table %s does not exist" name
  | Some tbl ->
      result_rows
        (varchar_schema [ "COLUMN_NAME"; "TYPE"; "NULLABLE" ])
        (List.map
           (fun (c : Catalog.column) ->
             [|
               vstr c.Catalog.col_name;
               vstr (Dtype.to_string c.Catalog.col_type);
               vstr (if c.Catalog.col_not_null then "N" else "Y");
             |])
           tbl.Catalog.tbl_columns)

let help_volatile r =
  result_rows
    (varchar_schema [ "TABLE_NAME" ])
    (List.map (fun n -> [| vstr n |]) (List.rev r.session.Session.volatile_tables))

let help_view r name =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_view r.vcatalog name with
  | None -> Sql_error.execution_error "view %s does not exist" name
  | Some v ->
      result_rows
        (varchar_schema [ "VIEW_NAME"; "COLUMNS" ])
        [
          [|
            vstr v.Catalog.view_name;
            vstr
              (if v.Catalog.view_columns = [] then "(from definition)"
               else String.concat ", " v.Catalog.view_columns);
          |];
        ]

let help_macro r name =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_macro r.vcatalog name with
  | None -> Sql_error.execution_error "macro %s does not exist" name
  | Some m ->
      result_rows
        (varchar_schema [ "PARAMETER"; "TYPE" ])
        (List.map
           (fun (p, ty) ->
             [| vstr p; vstr (Hyperq_sqlvalue.Dtype.to_string ty) |])
           m.Catalog.macro_params)

let help_procedure r name =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_procedure r.vcatalog name with
  | None -> Sql_error.execution_error "procedure %s does not exist" name
  | Some pr ->
      result_rows
        (varchar_schema [ "PARAMETER"; "TYPE" ])
        (List.map
           (fun (p, ty) ->
             [| vstr p; vstr (Hyperq_sqlvalue.Dtype.to_string ty) |])
           pr.Catalog.proc_params)

let help_database r name =
  let tables = Catalog.tables r.vcatalog in
  let views = Catalog.views r.vcatalog in
  let macros = Catalog.macros r.vcatalog in
  ignore name;
  result_rows
    (varchar_schema [ "OBJECT_NAME"; "KIND" ])
    (List.map (fun (t : Catalog.table) -> [| vstr t.Catalog.tbl_name; vstr "T" |]) tables
    @ List.map (fun (v : Catalog.view) -> [| vstr v.Catalog.view_name; vstr "V" |]) views
    @ List.map (fun (m : Catalog.macro) -> [| vstr m.Catalog.macro_name; vstr "M" |]) macros)

let show_table r name =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_table r.vcatalog name with
  | None -> Sql_error.execution_error "table %s does not exist" name
  | Some tbl ->
      let cols =
        String.concat ", "
          (List.map
             (fun (c : Catalog.column) ->
               Printf.sprintf "%s %s%s" c.Catalog.col_name
                 (Dtype.to_string c.Catalog.col_type)
                 (if c.Catalog.col_not_null then " NOT NULL" else ""))
             tbl.Catalog.tbl_columns)
      in
      let ddl =
        Printf.sprintf "CREATE %sTABLE %s (%s)"
          (if tbl.Catalog.tbl_set_semantics then "SET " else "")
          tbl.Catalog.tbl_name cols
      in
      result_rows (varchar_schema [ "REQUEST_TEXT" ]) [ [| vstr ddl |] ]

let show_view r name =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_view r.vcatalog name with
  | None -> Sql_error.execution_error "view %s does not exist" name
  | Some v ->
      result_rows
        (varchar_schema [ "REQUEST_TEXT" ])
        [ [| vstr (Printf.sprintf "CREATE VIEW %s AS <stored definition>" v.Catalog.view_name) |] ]

(* ------------------------------------------------------------------ *)
(* DML on views                                                         *)
(* ------------------------------------------------------------------ *)

(* A view is "simply updatable" when it is SELECT <column list or *> FROM
   <one base table> [WHERE ...] with no aggregation/distinct/etc. *)
type simple_view = {
  sv_base : string;
  sv_col_map : (string * string) list;  (** view column -> base column *)
  sv_where : Ast.expr option;
}

let analyze_simple_view (view : Catalog.view) : simple_view option =
  match view.Catalog.view_query with
  | {
   Ast.ctes = [];
   body =
     Ast.Q_select
       {
         Ast.distinct = false;
         top = None;
         projection;
         from = [ Ast.T_named { name; alias = None; col_aliases = [] } ];
         where;
         group_by = [];
         having = None;
         qualify = None;
         sample = None;
       };
   order_by = [];
   limit = None;
   offset = None;
   _;
  } -> (
      let base = List.nth name (List.length name - 1) in
      let explicit = view.Catalog.view_columns in
      let map =
        List.mapi
          (fun i item ->
            match item with
            | Ast.Sel_expr (Ast.E_column c, alias) ->
                let base_col = List.nth c (List.length c - 1) in
                let view_col =
                  match List.nth_opt explicit i with
                  | Some n -> n
                  | None -> ( match alias with Some a -> a | None -> base_col)
                in
                Some (String.uppercase_ascii view_col, String.uppercase_ascii base_col)
            | _ -> None)
          projection
      in
      if List.exists (fun x -> x = None) map then None
      else
        Some
          {
            sv_base = String.uppercase_ascii base;
            sv_col_map = List.filter_map (fun x -> x) map;
            sv_where = where;
          })
  | _ -> None

let rename_columns_in_expr map e =
  let rec go e =
    match e with
    | Ast.E_column [ c ] -> (
        match List.assoc_opt (String.uppercase_ascii c) map with
        | Some base -> Ast.E_column [ base ]
        | None -> e)
    | e -> shallow_map go e
  and shallow_map f e =
    (* structural map over AST expressions *)
    match e with
    | Ast.E_binop (op, a, b) -> Ast.E_binop (op, f a, f b)
    | Ast.E_unop (op, a) -> Ast.E_unop (op, f a)
    | Ast.E_fun { name; distinct; args; star } ->
        Ast.E_fun { name; distinct; args = List.map f args; star }
    | Ast.E_cast (a, t) -> Ast.E_cast (f a, t)
    | Ast.E_extract (fl, a) -> Ast.E_extract (fl, f a)
    | Ast.E_case { operand; branches; else_branch } ->
        Ast.E_case
          {
            operand = Option.map f operand;
            branches = List.map (fun (c, v) -> (f c, f v)) branches;
            else_branch = Option.map f else_branch;
          }
    | Ast.E_in { lhs; negated; rhs } ->
        Ast.E_in
          {
            lhs = f lhs;
            negated;
            rhs =
              (match rhs with
              | Ast.In_list items -> Ast.In_list (List.map f items)
              | sub -> sub);
          }
    | Ast.E_between { arg; low; high; negated } ->
        Ast.E_between { arg = f arg; low = f low; high = f high; negated }
    | Ast.E_like { arg; pattern; escape; negated } ->
        Ast.E_like { arg = f arg; pattern = f pattern; escape; negated }
    | Ast.E_is_null (a, n) -> Ast.E_is_null (f a, n)
    | Ast.E_tuple es -> Ast.E_tuple (List.map f es)
    | e -> e
  in
  go e

let emulate_dml_on_view r (view : Catalog.view) (st : Ast.statement) =
  match analyze_simple_view view with
  | None ->
      Sql_error.unsupported "view %s is not simply updatable" view.Catalog.view_name
  | Some sv ->
      tracef r "DML on view %s: rewriting onto base table %s"
        view.Catalog.view_name sv.sv_base;
      let rename = rename_columns_in_expr sv.sv_col_map in
      let and_view_pred where =
        match (where, sv.sv_where) with
        | None, vp -> vp
        | wp, None -> Option.map rename wp
        | Some wp, Some vp -> Some (Ast.E_binop (Ast.And, rename wp, vp))
      in
      let base_col c =
        match List.assoc_opt (String.uppercase_ascii c) sv.sv_col_map with
        | Some b -> b
        | None ->
            Sql_error.bind_error "column %s is not exposed by view %s" c
              view.Catalog.view_name
      in
      let st' =
        match st with
        | Ast.S_update { set; from; where; _ } ->
            Ast.S_update
              {
                table = [ sv.sv_base ];
                alias = None;
                set = List.map (fun (c, e) -> (base_col c, rename e)) set;
                from;
                where = and_view_pred where;
              }
        | Ast.S_delete { from; where; _ } ->
            Ast.S_delete
              {
                table = [ sv.sv_base ];
                alias = None;
                from;
                where = and_view_pred where;
              }
        | Ast.S_insert { columns; source; _ } ->
            let columns =
              if columns = [] then List.map fst sv.sv_col_map else columns
            in
            Ast.S_insert
              {
                table = [ sv.sv_base ];
                columns = List.map base_col columns;
                source;
              }
        | _ -> Sql_error.internal_error "emulate_dml_on_view: not a DML statement"
      in
      r.run_ast st'

(* ------------------------------------------------------------------ *)
(* Stored procedures (paper §6)                                        *)
(* ------------------------------------------------------------------ *)

(* "Emulation of stored procedures inside Hyper-Q requires only maintaining
   the execution state (e.g., variable scopes) and driving the procedure
   execution by breaking its control flow into multiple SQL requests."
   Variables live in a middle-tier scope; every expression evaluation and
   every embedded statement is issued as an ordinary SQL request through the
   translation pipeline. *)

let value_to_ast_literal (v : Value.t) : Ast.expr =
  match v with
  | Value.Null -> Ast.E_lit Ast.L_null
  | Value.Int n -> Ast.E_lit (Ast.L_int n)
  | Value.Float f -> Ast.E_lit (Ast.L_float f)
  | Value.Decimal d -> Ast.E_lit (Ast.L_decimal (Decimal.to_string d))
  | Value.Varchar s -> Ast.E_lit (Ast.L_string s)
  | Value.Date d -> Ast.E_lit (Ast.L_date (Sql_date.to_string d))
  | Value.Bool b -> Ast.E_lit (Ast.L_int (if b then 1L else 0L))
  | v ->
      Sql_error.unsupported "procedure variables of type %s are not supported"
        (Value.to_string v)

type proc_scope = (string * Value.t) list ref

let scope_env (scope : proc_scope) =
  List.map (fun (n, v) -> (n, value_to_ast_literal v)) !scope

let scope_set (scope : proc_scope) name v =
  let name = String.uppercase_ascii name in
  if not (List.mem_assoc name !scope) then
    Sql_error.bind_error "undeclared procedure variable %s" name;
  scope := (name, v) :: List.remove_assoc name !scope

let scope_declare (scope : proc_scope) name v =
  scope := (String.uppercase_ascii name, v) :: !scope

(* Evaluate a procedure expression by issuing [SELECT <e>] as a SQL request
   with the current variable values substituted. *)
let eval_proc_expr r (scope : proc_scope) (e : Ast.expr) : Value.t =
  let e = subst_expr (scope_env scope) e in
  let select =
    Ast.S_select
      (Ast.simple_query
         (Ast.Q_select
            { Ast.empty_select with Ast.projection = [ Ast.Sel_expr (e, None) ] }))
  in
  match (r.run_ast select).Backend.res_rows with
  | [ row ] when Array.length row = 1 -> row.(0)
  | _ -> Sql_error.execution_error "procedure expression must yield one value"

let eval_proc_cond r scope (e : Ast.expr) : bool =
  let wrapped =
    Ast.E_case
      {
        operand = None;
        branches = [ (e, Ast.E_lit (Ast.L_int 1L)) ];
        else_branch = Some (Ast.E_lit (Ast.L_int 0L));
      }
  in
  match eval_proc_expr r scope wrapped with
  | Value.Int 1L -> true
  | _ -> false

let max_proc_steps = 100_000

let call_procedure r name (args : Ast.expr list) : Backend.result =
  let name = List.nth name (List.length name - 1) in
  match Catalog.find_procedure r.vcatalog name with
  | None -> Sql_error.execution_error "procedure %s does not exist" name
  | Some proc ->
      if List.length args <> List.length proc.Catalog.proc_params then
        Sql_error.execution_error "procedure %s expects %d argument(s), got %d"
          name
          (List.length proc.Catalog.proc_params)
          (List.length args);
      let scope : proc_scope = ref [] in
      (* bind IN parameters, coerced to their declared types *)
      List.iter2
        (fun (pname, ty) arg ->
          let v = Value.cast (eval_proc_expr r scope arg) ty in
          scope_declare scope pname v)
        proc.Catalog.proc_params args;
      tracef r "CALL %s: %d parameter(s) bound" name (List.length args);
      let steps = ref 0 in
      let last = ref (result_rows [] []) in
      let rec exec_stmts stmts =
        List.iter
          (fun st ->
            incr steps;
            if !steps > max_proc_steps then
              Sql_error.execution_error
                "procedure %s exceeded the execution step limit" name;
            match st with
            | Ast.P_declare (v, ty_name, init) ->
                let ty =
                  Hyperq_binder.Binder.dtype_of_typename ty_name
                in
                let value =
                  match init with
                  | Some e -> Value.cast (eval_proc_expr r scope e) ty
                  | None -> Value.Null
                in
                scope_declare scope v value
            | Ast.P_set (v, e) -> scope_set scope v (eval_proc_expr r scope e)
            | Ast.P_if (branches, els) -> (
                match
                  List.find_opt
                    (fun (c, _) -> eval_proc_cond r scope c)
                    branches
                with
                | Some (_, body) -> exec_stmts body
                | None -> exec_stmts els)
            | Ast.P_while (c, body) ->
                while eval_proc_cond r scope c do
                  incr steps;
                  if !steps > max_proc_steps then
                    Sql_error.execution_error
                      "procedure %s exceeded the execution step limit" name;
                  exec_stmts body
                done
            | Ast.P_sql sql_st ->
                last := r.run_ast (subst_statement (scope_env scope) sql_st))
          stmts
      in
      exec_stmts proc.Catalog.proc_body;
      tracef r "CALL %s: completed after %d step(s)" name !steps;
      !last
