(** ODBC Server (paper §4.5): the abstraction through which Hyper-Q talks to
    target database systems.

    "The APIs provide means to submit different kinds of requests to the
    target database for execution ... The results of these requests are
    retrieved by [the] ODBC Server on demand in one or more batches
    depending on the result size. Result batches are packaged according to
    Hyper-Q['s] binary data representation (TDF)."

    Here the driver connects to the in-repo engine; adding a new backend
    means providing another [driver] value. *)

module Backend = Hyperq_engine.Backend
module Tdf = Hyperq_tdf.Tdf
module Result_store = Hyperq_tdf.Result_store

type driver = {
  driver_name : string;
  submit : sql:string -> Backend.result;
}

type t = {
  driver : driver;
  batch_rows : int;  (** rows per TDF batch *)
  request_latency_s : float;
      (** simulated per-request round-trip to the target (the paper's
          motivation for batching single-row DML, §4.3); 0 by default *)
  fault : Hyperq_engine.Fault.t option;
      (** fault-injection shim consulted before each forwarded request *)
  mutable requests_submitted : int;
}

let engine_driver (backend : Backend.t) =
  { driver_name = "engine"; submit = (fun ~sql -> Backend.execute_sql backend sql) }

let create ?(batch_rows = 512) ?(request_latency_s = 0.) ?fault driver =
  { driver; batch_rows; request_latency_s; fault; requests_submitted = 0 }

(** Submit one request through the driver, paying the simulated round-trip.
    When a fault injector is installed, it runs first and may raise a
    transient error or delay the request. *)
let submit t ~sql : Backend.result =
  t.requests_submitted <- t.requests_submitted + 1;
  (match t.fault with Some f -> Hyperq_engine.Fault.check f | None -> ());
  if t.request_latency_s > 0. then Unix.sleepf t.request_latency_s;
  t.driver.submit ~sql

type response = {
  columns : Tdf.column_desc list;
  store : Result_store.t;  (** results packaged as TDF batches *)
  activity : string;
  activity_count : int;
}

let rec chunk n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let h, t = take n [] l in
      h :: chunk n t

(** Submit a request and package the results into TDF batches, exercising
    the on-demand batching path of §4.5. *)
let execute t ~sql : response =
  let result = submit t ~sql in
  let columns =
    List.map
      (fun (name, ty) -> { Tdf.cd_name = name; cd_type = ty })
      result.Backend.res_schema
  in
  let store = Result_store.create columns in
  List.iter
    (fun batch -> Result_store.add_rows store batch)
    (chunk t.batch_rows result.Backend.res_rows);
  {
    columns;
    store;
    activity = result.Backend.res_message;
    activity_count = result.Backend.res_rowcount;
  }
