(** Resilience layer: deterministic retry/backoff, per-backend circuit
    breaking, and per-statement deadline budgets (see resilience.mli).

    Everything time- or randomness-dependent goes through an injectable
    {!clock} and a seeded LCG, so a test (or the bench's seeded fault
    schedule) observes the exact same retry timeline on every run. *)

open Hyperq_sqlvalue

(* The clock now lives in the observability library so spans, backoff
   schedules and session timestamps all advance together; the alias keeps
   [Resilience.clock] (and its field accesses) source-compatible. *)
type clock = Hyperq_obs.Obs.clock = {
  now : unit -> float;
  sleep : float -> unit;
}

let real_clock = Hyperq_obs.Obs.real_clock
let fake_clock = Hyperq_obs.Obs.fake_clock

type retry_policy = {
  max_attempts : int;
  base_delay_s : float;
  multiplier : float;
  max_delay_s : float;
  jitter : float;
}

let default_retry =
  { max_attempts = 4; base_delay_s = 0.005; multiplier = 2.0; max_delay_s = 0.25; jitter = 0.2 }

let no_retry =
  { max_attempts = 1; base_delay_s = 0.; multiplier = 1.; max_delay_s = 0.; jitter = 0. }

type breaker_config = {
  failure_threshold : int;
  cooldown_s : float;
  half_open_probes : int;
}

let default_breaker = { failure_threshold = 5; cooldown_s = 1.0; half_open_probes = 1 }

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type policy = {
  retry : retry_policy;
  breaker : breaker_config;
  deadline_s : float option;
}

let default_policy =
  { retry = default_retry; breaker = default_breaker; deadline_s = None }

type stats = {
  st_attempts : int;
  st_retries : int;
  st_absorbed : int;
  st_exhausted : int;
  st_deadline_exceeded : int;
  st_rejected_open : int;
  st_breaker_opens : int;
  st_breaker_closes : int;
}

type t = {
  pol : policy;
  clock : clock;
  on : bool;
  lock : Mutex.t;
  mutable rng : int64;
  (* breaker state, guarded by [lock] *)
  mutable state : breaker_state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable half_open_successes : int;
  mutable half_open_inflight : int;
      (** probes admitted in Half_open whose outcome is not yet recorded;
          concurrent callers beyond [half_open_probes] are shed *)
  (* counters, guarded by [lock] *)
  mutable attempts : int;
  mutable retries : int;
  mutable absorbed : int;
  mutable exhausted : int;
  mutable deadline_exceeded : int;
  mutable rejected_open : int;
  mutable breaker_opens : int;
  mutable breaker_closes : int;
}

let create ?(policy = default_policy) ?(seed = 0x5EED) ?(clock = real_clock)
    ?(enabled = true) () =
  {
    pol = policy;
    clock;
    on = enabled;
    lock = Mutex.create ();
    rng = Int64.of_int seed;
    state = Closed;
    consecutive_failures = 0;
    opened_at = 0.;
    half_open_successes = 0;
    half_open_inflight = 0;
    attempts = 0;
    retries = 0;
    absorbed = 0;
    exhausted = 0;
    deadline_exceeded = 0;
    rejected_open = 0;
    breaker_opens = 0;
    breaker_closes = 0;
  }

let policy t = t.pol
let now t = t.clock.now ()
let clock t = t.clock
let enabled t = t.on

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Knuth's 64-bit LCG: good enough for jitter and fully reproducible. *)
let rand01_unlocked t =
  t.rng <- Int64.add (Int64.mul t.rng 6364136223846793005L) 1442695040888963407L;
  let bits = Int64.to_int (Int64.shift_right_logical t.rng 34) land 0x3FFFFFFF in
  float_of_int bits /. 1073741824.0

let backoff_delay_unlocked t ~attempt =
  let p = t.pol.retry in
  let d = p.base_delay_s *. (p.multiplier ** float_of_int (attempt - 1)) in
  let d = Float.min d p.max_delay_s in
  let d = d *. (1. +. (p.jitter *. ((2. *. rand01_unlocked t) -. 1.))) in
  Float.max 0. d

let backoff_delay t ~attempt = locked t (fun () -> backoff_delay_unlocked t ~attempt)

(* --- breaker state machine (all transitions run under [lock]) ---------- *)

let trip_open t =
  if t.state <> Open then t.breaker_opens <- t.breaker_opens + 1;
  t.state <- Open;
  t.opened_at <- t.clock.now ();
  t.half_open_successes <- 0;
  t.half_open_inflight <- 0

(* whether a request issued now would be admitted, without mutating state *)
let would_admit_unlocked t =
  match t.state with
  | Closed -> true
  | Half_open -> t.half_open_inflight < t.pol.breaker.half_open_probes
  | Open -> t.clock.now () -. t.opened_at >= t.pol.breaker.cooldown_s

let would_admit t = locked t (fun () -> would_admit_unlocked t)

(* Admit one request: promotes Open -> Half_open once the cooldown elapses.
   In Half_open, at most [half_open_probes] trial requests may be in flight
   at once — concurrent callers beyond that are shed, so a recovering
   backend sees a trickle of probes instead of a thundering herd. *)
let admit_unlocked t =
  match t.state with
  | Closed -> true
  | Half_open ->
      if t.half_open_inflight < t.pol.breaker.half_open_probes then begin
        t.half_open_inflight <- t.half_open_inflight + 1;
        true
      end
      else false
  | Open ->
      if t.clock.now () -. t.opened_at >= t.pol.breaker.cooldown_s then begin
        t.state <- Half_open;
        t.half_open_successes <- 0;
        t.half_open_inflight <- 1;
        true
      end
      else false

let record_success_unlocked t =
  t.consecutive_failures <- 0;
  match t.state with
  | Closed -> ()
  | Half_open ->
      t.half_open_inflight <- max 0 (t.half_open_inflight - 1);
      t.half_open_successes <- t.half_open_successes + 1;
      if t.half_open_successes >= t.pol.breaker.half_open_probes then begin
        t.state <- Closed;
        t.breaker_closes <- t.breaker_closes + 1
      end
  | Open ->
      (* a success can only have been an admitted probe: close *)
      t.state <- Closed;
      t.breaker_closes <- t.breaker_closes + 1

let record_failure_unlocked t =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.state with
  | Half_open -> trip_open t (* failed probe: reopen, restart the cooldown *)
  | Closed ->
      if t.consecutive_failures >= t.pol.breaker.failure_threshold then
        trip_open t
  | Open -> ()

let record_success t = locked t (fun () -> record_success_unlocked t)
let record_failure t = locked t (fun () -> record_failure_unlocked t)
let breaker_state t = locked t (fun () -> t.state)

(* --- the policy-driven call wrapper ------------------------------------ *)

let transient (e : Sql_error.t) = e.Sql_error.kind = Sql_error.Transient_error

type denial = Denied_open of float | Denied_probe_race

let call t ?deadline_at ?(on_retry = fun () -> ()) f =
  if not t.on then f ()
  else begin
    let deadline_at =
      match deadline_at with
      | Some _ as d -> d
      | None -> Option.map (fun d -> t.clock.now () +. d) t.pol.deadline_s
    in
    (* a statement whose budget elapsed before it ever reached the backend
       (queued past its deadline at the front door) fails fast: no backend
       attempt is spent on work nobody is waiting for *)
    (match deadline_at with
    | Some dl when t.clock.now () > dl ->
        locked t (fun () -> t.deadline_exceeded <- t.deadline_exceeded + 1);
        Sql_error.unavailable
          "statement deadline exceeded before first attempt (%.3fs past \
           budget at admission)"
          (t.clock.now () -. dl)
    | _ -> ());
    let rec attempt n =
      let verdict =
        locked t (fun () ->
            let was_half_open = t.state = Half_open in
            if admit_unlocked t then begin
              t.attempts <- t.attempts + 1;
              None
            end
            else begin
              t.rejected_open <- t.rejected_open + 1;
              if was_half_open then Some Denied_probe_race
              else
                Some
                  (Denied_open
                     (t.pol.breaker.cooldown_s
                     -. (t.clock.now () -. t.opened_at)))
            end)
      in
      match verdict with
      | Some Denied_probe_race ->
          Sql_error.unavailable
            "circuit breaker half-open: recovery probe already in flight"
      | Some (Denied_open cooldown_left) ->
          Sql_error.unavailable
            "circuit breaker open: backend quarantined for another %.3fs"
            (Float.max 0. cooldown_left)
      | None -> (
        match f () with
        | v ->
            locked t (fun () ->
                record_success_unlocked t;
                if n > 1 then t.absorbed <- t.absorbed + 1);
            v
        | exception Sql_error.Error e when transient e ->
            locked t (fun () -> record_failure_unlocked t);
            if n >= t.pol.retry.max_attempts then begin
              locked t (fun () -> t.exhausted <- t.exhausted + 1);
              Sql_error.unavailable "retries exhausted after %d attempt(s); last: %s"
                n (Sql_error.to_string e)
            end
            else begin
              let delay = locked t (fun () -> backoff_delay_unlocked t ~attempt:n) in
              match deadline_at with
              | Some dl when t.clock.now () +. delay > dl ->
                  locked t (fun () ->
                      t.deadline_exceeded <- t.deadline_exceeded + 1);
                  Sql_error.unavailable
                    "statement deadline exceeded after %d attempt(s); last: %s"
                    n (Sql_error.to_string e)
              | _ ->
                  t.clock.sleep delay;
                  locked t (fun () -> t.retries <- t.retries + 1);
                  (* outside [lock]: the hook may record telemetry, whose
                     registry lock must never nest inside ours *)
                  on_retry ();
                  attempt (n + 1)
            end)
    in
    attempt 1
  end

let stats t =
  locked t (fun () ->
      {
        st_attempts = t.attempts;
        st_retries = t.retries;
        st_absorbed = t.absorbed;
        st_exhausted = t.exhausted;
        st_deadline_exceeded = t.deadline_exceeded;
        st_rejected_open = t.rejected_open;
        st_breaker_opens = t.breaker_opens;
        st_breaker_closes = t.breaker_closes;
      })

let stats_to_string t =
  let s = stats t in
  Printf.sprintf
    "breaker %s; attempts %d, retries %d, absorbed %d, exhausted %d, \
     deadline-exceeded %d, rejected-while-open %d, opens %d, closes %d"
    (breaker_state_to_string (breaker_state t))
    s.st_attempts s.st_retries s.st_absorbed s.st_exhausted
    s.st_deadline_exceeded s.st_rejected_open s.st_breaker_opens
    s.st_breaker_closes
