(** Deadline-aware byte I/O for the TCP front door.

    Blocking socket I/O that tolerates short reads/writes, EINTR, and peers
    that disappear mid-frame. Every call carries its own deadline (enforced
    with [select], so it works on plain blocking descriptors), and reads
    poll an optional [stop] flag at a coarse interval so a draining server
    can interrupt idle connections promptly without closing descriptors it
    does not own. *)

type read_result =
  | Data of string  (** at least one byte *)
  | Eof  (** orderly close; peer resets are also reported as [Eof] *)
  | Timed_out
  | Interrupted  (** the [stop] poll returned true *)

type write_result = Written | Write_timed_out | Write_closed of string

(** Interval at which blocked calls re-check [stop]. *)
val poll_interval_s : float

(** [read_chunk ~stop ~max_bytes fd ~timeout_s] reads at least one byte (at
    most [max_bytes], default 64 KiB), waiting up to [timeout_s]. *)
val read_chunk :
  ?stop:(unit -> bool) -> ?max_bytes:int -> Unix.file_descr -> timeout_s:float -> read_result

(** [write_all ~stop fd ~timeout_s s] writes all of [s], looping over short
    writes, within one overall deadline. *)
val write_all :
  ?stop:(unit -> bool) -> Unix.file_descr -> timeout_s:float -> string -> write_result
