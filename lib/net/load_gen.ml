(** Closed- and open-loop load generator for the WP-A front door (see
    load_gen.mli).

    Statements come from a caller-supplied corpus and are replayed over a
    pool of real TCP sessions with Zipf-skewed session selection. Failures
    are classified exactly as a production client would: wire code 2631 is
    retried with seeded exponential backoff (the PR-2 retry contract), 3897
    and other codes are terminal for the statement, and [Io_error] — a
    connection reset or stream corruption, which a correct front door never
    causes — is counted separately so the harness can assert it stayed at
    zero. *)

(* seeded LCG (numerical-recipes constants): deterministic load per seed *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (seed land 0x3FFFFFFF) }

  let next t =
    t.state <-
      Int64.add (Int64.mul t.state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical t.state 17) land 0x3FFFFFFF

  (* uniform in [0, 1) *)
  let float t = float_of_int (next t) /. 1073741824.0

  (* exponential with mean [mean_s]; inter-arrival gaps for open loop *)
  let exp t ~mean_s = -.mean_s *. log (1. -. float t +. 1e-12)
end

(* Zipf over ranks 0..n-1: p(i) proportional to 1/(i+1)^s, sampled by binary
   search on the precomputed CDF; s = 0 degenerates to uniform *)
module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~s =
    let w = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
    let total = Array.fold_left ( +. ) 0. w in
    let acc = ref 0. in
    let cdf =
      Array.map
        (fun x ->
          acc := !acc +. (x /. total);
          !acc)
        w
    in
    cdf.(n - 1) <- 1.0;
    { cdf }

  let sample t u =
    let n = Array.length t.cdf in
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) < u then bs (mid + 1) hi else bs lo mid
    in
    bs 0 (n - 1)
end

type mode =
  | Closed_loop  (** workers issue back-to-back *)
  | Open_loop of { rate_qps : float }
      (** exponential inter-arrival; latency measured from scheduled
          arrival, so server queueing delay is visible *)

type config = {
  host : string;
  port : int;
  username : string;
  password : string;
  mode : mode;
  workers : int;
  sessions : int;  (** TCP connections in the pool *)
  zipf_s : float;  (** session-skew exponent; 0 = uniform *)
  total_queries : int;
  retry_max : int;  (** client retries on wire code 2631 *)
  retry_base_s : float;
  timeout_s : float;  (** per-read/write client deadline *)
  seed : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    username = "DBC";
    password = "DBC";
    mode = Closed_loop;
    workers = 8;
    sessions = 16;
    zipf_s = 1.1;
    total_queries = 1000;
    retry_max = 3;
    retry_base_s = 0.005;
    timeout_s = 15.;
    seed = 42;
  }

type report = {
  lr_submitted : int;  (** statements attempted (excluding retries) *)
  lr_ok : int;
  lr_shed_transient : int;  (** terminal 2631 after retries exhausted *)
  lr_shed_unavailable : int;  (** 3897: draining / breaker open *)
  lr_other_failures : int;  (** non-shed Failure parcels (e.g. SQL errors) *)
  lr_io_errors : int;  (** resets / timeouts / stream corruption *)
  lr_retries : int;  (** 2631 answers absorbed by client backoff *)
  lr_reconnects : int;
  lr_wall_s : float;
  lr_qps : float;  (** successful statements per wall second *)
  lr_p50_ms : float;
  lr_p90_ms : float;
  lr_p99_ms : float;
  lr_max_ms : float;
  lr_latencies_ms : float array;  (** sorted, successful statements only *)
}

(* exact percentile over the sorted sample (nearest-rank) *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* one session slot: a connection plus a lock serializing its use — WP-A
   conversations are strictly request/response, so two workers landing on
   the same hot session queue behind each other (head-of-line blocking is
   part of what skew measures) *)
type slot = {
  lock : Mutex.t;
  mutable client : Wire_client.t option;
}

type shared = {
  cfg : config;
  corpus : string array;
  slots : slot array;
  zipf : Zipf.t;
  counter : Mutex.t;
  mutable next_query : int;
  mutable started_at : float;
  (* results, merged under [counter] *)
  mutable ok : int;
  mutable shed_transient : int;
  mutable shed_unavailable : int;
  mutable other_failures : int;
  mutable io_errors : int;
  mutable retries : int;
  mutable reconnects : int;
  mutable latencies_ms : float list;
}

let take_query sh =
  Mutex.lock sh.counter;
  let i = sh.next_query in
  if i < sh.cfg.total_queries then sh.next_query <- i + 1;
  Mutex.unlock sh.counter;
  if i < sh.cfg.total_queries then Some i else None

let record sh f =
  Mutex.lock sh.counter;
  f sh;
  Mutex.unlock sh.counter

let connect_client cfg =
  Wire_client.connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port
    ~username:cfg.username ~password:cfg.password ()

(* run one statement on one slot with the 2631 retry loop; reconnects a
   broken connection once per attempt *)
let run_statement sh rng slot sql =
  let cfg = sh.cfg in
  let rec attempt n =
    let client =
      match slot.client with
      | Some c -> Ok c
      | None -> (
          match connect_client cfg with
          | Ok c ->
              record sh (fun s -> s.reconnects <- s.reconnects + 1);
              slot.client <- Some c;
              Ok c
          | Error e -> Error e)
    in
    match client with
    | Error e -> Error e
    | Ok c -> (
        match Wire_client.run c sql with
        | Ok r -> Ok r
        | Error e when Wire_client.is_retryable e && n < cfg.retry_max ->
            record sh (fun s -> s.retries <- s.retries + 1);
            (* full-jitter exponential backoff, seeded *)
            let cap = cfg.retry_base_s *. Float.pow 2. (float_of_int n) in
            Thread.delay (Rng.float rng *. cap);
            attempt (n + 1)
        | Error (Wire_client.Io_error _ as e) ->
            (* drop the broken connection; next use of this slot redials *)
            Wire_client.close c;
            slot.client <- None;
            Error e
        | Error e -> Error e)
  in
  attempt 0

let classify sh = function
  | Ok _ -> record sh (fun s -> s.ok <- s.ok + 1)
  | Error e when Wire_client.is_retryable e ->
      record sh (fun s -> s.shed_transient <- s.shed_transient + 1)
  | Error e when Wire_client.is_unavailable e ->
      record sh (fun s -> s.shed_unavailable <- s.shed_unavailable + 1)
  | Error (Wire_client.Io_error _) ->
      record sh (fun s -> s.io_errors <- s.io_errors + 1)
  | Error (Wire_client.Failure_code _) ->
      record sh (fun s -> s.other_failures <- s.other_failures + 1)

(* take the Zipf-sampled slot if free, else probe forward: hot ranks still
   receive most of the traffic, but a worker never parks behind a busy hot
   session — offered concurrency stays at [workers], which is what makes
   the overload phases actually offer overload *)
let lock_slot sh rank =
  let n = Array.length sh.slots in
  let rec probe i =
    if i >= n then begin
      let slot = sh.slots.(rank) in
      Mutex.lock slot.lock;
      slot
    end
    else
      let slot = sh.slots.((rank + i) mod n) in
      if Mutex.try_lock slot.lock then slot else probe (i + 1)
  in
  probe 0

let worker_loop sh widx =
  let cfg = sh.cfg in
  let rng = Rng.create (cfg.seed + (widx * 7919)) in
  (* open-loop pacing state: each worker carries 1/workers of the target
     rate on its own exponential arrival schedule *)
  let next_arrival = ref sh.started_at in
  let rec go () =
    match take_query sh with
    | None -> ()
    | Some qi ->
        let sql = sh.corpus.(qi mod Array.length sh.corpus) in
        let rank = Zipf.sample sh.zipf (Rng.float rng) in
        let t_start =
          match cfg.mode with
          | Closed_loop -> Unix.gettimeofday ()
          | Open_loop { rate_qps } ->
              let mean = float_of_int cfg.workers /. rate_qps in
              next_arrival := !next_arrival +. Rng.exp rng ~mean_s:mean;
              let now = Unix.gettimeofday () in
              if !next_arrival > now then Thread.delay (!next_arrival -. now);
              (* latency from *scheduled* arrival: lateness is queueing *)
              !next_arrival
        in
        let slot = lock_slot sh rank in
        let r =
          Fun.protect
            ~finally:(fun () -> Mutex.unlock slot.lock)
            (fun () -> run_statement sh rng slot sql)
        in
        let elapsed_ms = (Unix.gettimeofday () -. t_start) *. 1000. in
        classify sh r;
        (match r with
        | Ok _ ->
            record sh (fun s -> s.latencies_ms <- elapsed_ms :: s.latencies_ms)
        | Error _ -> ());
        go ()
  in
  go ()

let run ?(config = default_config) ~corpus () =
  if corpus = [] then invalid_arg "Load_gen.run: empty corpus";
  (* a server hanging up mid-request (drain) must read as EPIPE, not kill
     the generator process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sessions = max 1 config.sessions in
  let sh =
    {
      cfg = config;
      corpus = Array.of_list corpus;
      slots =
        Array.init sessions (fun _ ->
            { lock = Mutex.create (); client = None });
      zipf = Zipf.create ~n:sessions ~s:(Float.max 0. config.zipf_s);
      counter = Mutex.create ();
      next_query = 0;
      started_at = 0.;
      ok = 0;
      shed_transient = 0;
      shed_unavailable = 0;
      other_failures = 0;
      io_errors = 0;
      retries = 0;
      reconnects = 0;
      latencies_ms = [];
    }
  in
  sh.started_at <- Unix.gettimeofday ();
  let threads =
    List.init (max 1 config.workers) (fun i ->
        Thread.create (fun () -> worker_loop sh i) ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. sh.started_at in
  Array.iter
    (fun slot ->
      match slot.client with
      | Some c ->
          Wire_client.close c;
          slot.client <- None
      | None -> ())
    sh.slots;
  let lat = Array.of_list sh.latencies_ms in
  Array.sort compare lat;
  {
    lr_submitted = sh.next_query;
    lr_ok = sh.ok;
    lr_shed_transient = sh.shed_transient;
    lr_shed_unavailable = sh.shed_unavailable;
    lr_other_failures = sh.other_failures;
    lr_io_errors = sh.io_errors;
    lr_retries = sh.retries;
    lr_reconnects = sh.reconnects;
    lr_wall_s = wall;
    lr_qps = (if wall > 0. then float_of_int sh.ok /. wall else 0.);
    lr_p50_ms = percentile lat 0.50;
    lr_p90_ms = percentile lat 0.90;
    lr_p99_ms = percentile lat 0.99;
    lr_max_ms = (if Array.length lat = 0 then 0. else lat.(Array.length lat - 1));
    lr_latencies_ms = lat;
  }

let report_to_string r =
  Printf.sprintf
    "submitted=%d ok=%d shed2631=%d shed3897=%d fail=%d io=%d retries=%d \
     reconnects=%d wall=%.2fs qps=%.0f p50=%.2fms p90=%.2fms p99=%.2fms \
     max=%.2fms"
    r.lr_submitted r.lr_ok r.lr_shed_transient r.lr_shed_unavailable
    r.lr_other_failures r.lr_io_errors r.lr_retries r.lr_reconnects r.lr_wall_s
    r.lr_qps r.lr_p50_ms r.lr_p90_ms r.lr_p99_ms r.lr_max_ms
