(** Blocking TCP client for the WP-A protocol (see wire_client.mli).

    This is the load harness's view of the server: it speaks the same
    frames a real Teradata client library would (logon handshake, run,
    response parcels, logoff) over a real socket, and classifies failures
    the way the PR-2 client resilience layer does — a structured
    [Failure { code }] parcel is a {e protocol-level} answer (2631 retry /
    3897 go-away), anything that breaks the byte stream is an [Io_error]. *)

open Hyperq_sqlvalue
module Message = Hyperq_wire.Message
module Auth = Hyperq_wire.Auth

type failure =
  | Failure_code of int * string  (** structured [Failure] parcel *)
  | Io_error of string  (** connection reset, timeout, malformed frame *)

let failure_to_string = function
  | Failure_code (c, m) -> Printf.sprintf "failure %d: %s" c m
  | Io_error m -> Printf.sprintf "io error: %s" m

type t = {
  fd : Unix.file_descr;
  timeout_s : float;
  mutable buf : string;  (** undecoded inbound bytes *)
  mutable session_id : int;
  mutable closed : bool;
}

let session_id t = t.session_id

(* --- frame transport ---------------------------------------------------- *)

let send t msg =
  match
    Frame_io.write_all t.fd ~timeout_s:t.timeout_s (Message.encode_frame msg)
  with
  | Frame_io.Written -> Ok ()
  | Frame_io.Write_timed_out -> Error (Io_error "write timeout")
  | Frame_io.Write_closed m -> Error (Io_error ("write failed: " ^ m))

(* read frames until one whole message decodes; the server may batch
   several messages into one TCP segment, so decode from [buf] first *)
let rec recv t =
  match Message.decode_frame t.buf 0 with
  | Some (msg, consumed) ->
      t.buf <- String.sub t.buf consumed (String.length t.buf - consumed);
      Ok msg
  | None -> (
      match Frame_io.read_chunk t.fd ~timeout_s:t.timeout_s with
      | Frame_io.Data bytes ->
          t.buf <- t.buf ^ bytes;
          recv t
      | Frame_io.Eof -> Error (Io_error "connection closed by server")
      | Frame_io.Timed_out -> Error (Io_error "read timeout")
      | Frame_io.Interrupted -> Error (Io_error "interrupted"))
  | exception Sql_error.Error e -> Error (Io_error (Sql_error.to_string e))

let ( let* ) = Result.bind

(* --- connection and handshake ------------------------------------------- *)

let connect ?(timeout_s = 10.) ~host ~port ~username ~password () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let ok =
    try
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Ok ()
    with
    | Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Io_error ("connect: " ^ Unix.error_message e))
  in
  let* () = ok in
  let t = { fd; timeout_s; buf = ""; session_id = 0; closed = false } in
  let handshake () =
    let* () = send t (Message.Logon_request { username }) in
    let* challenge = recv t in
    match challenge with
    | Message.Logon_challenge { salt } -> (
        let proof = Auth.proof ~salt ~password in
        let* () = send t (Message.Logon_auth { username; proof }) in
        let* resp = recv t in
        match resp with
        | Message.Logon_response { success = true; session_id; _ } ->
            t.session_id <- session_id;
            Ok t
        | Message.Logon_response { success = false; message; _ } ->
            Error (Failure_code (1001, "logon rejected: " ^ message))
        | Message.Failure { code; message } -> Error (Failure_code (code, message))
        | m ->
            Error (Io_error ("unexpected logon reply: " ^ Message.to_string m)))
    | Message.Failure { code; message } -> Error (Failure_code (code, message))
    | m -> Error (Io_error ("unexpected challenge: " ^ Message.to_string m))
  in
  match handshake () with
  | Ok t -> Ok t
  | Error e ->
      t.closed <- true;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

(* --- statements --------------------------------------------------------- *)

type reply = {
  rp_columns : Message.column list;
  rp_records : int;  (** record parcels received (not decoded rows) *)
  rp_activity_count : int;
  rp_activity : string;
}

(* a statement's answer is Header? Records* (Success | Failure) — collect
   until the terminal parcel *)
let run t sql : (reply, failure) result =
  if t.closed then Error (Io_error "client closed")
  else
    let* () = send t (Message.Run_request { sql }) in
    let rec collect columns records =
      let* msg = recv t in
      match msg with
      | Message.Response_header { columns = cols } -> collect cols records
      | Message.Records { payload } ->
          collect columns (records + List.length payload)
      | Message.Success { activity_count; activity } ->
          Ok
            {
              rp_columns = columns;
              rp_records = records;
              rp_activity_count = activity_count;
              rp_activity = activity;
            }
      | Message.Failure { code; message } -> Error (Failure_code (code, message))
      | m -> Error (Io_error ("unexpected parcel: " ^ Message.to_string m))
    in
    collect [] 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* best-effort polite logoff; the server also handles abrupt closes *)
    ignore (send t Message.Logoff);
    (match recv t with Ok _ | Error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** True for wire code 2631 — the server shed this statement but a
    backed-off retry may be admitted. *)
let is_retryable = function
  | Failure_code (2631, _) -> true
  | Failure_code _ | Io_error _ -> false

(** True for wire code 3897 — the server is draining or unavailable. *)
let is_unavailable = function
  | Failure_code (3897, _) -> true
  | Failure_code _ | Io_error _ -> false
