(** Robust byte I/O over Unix file descriptors (see frame_io.mli).

    Everything here must survive the realities the in-process wire path
    never sees: short reads and writes, EINTR, peers that vanish mid-frame,
    and peers that stop draining their receive buffer. All waits go through
    [Unix.select] so each call carries its own deadline, and long reads poll
    an optional [stop] flag so a draining server can interrupt idle
    connections without closing descriptors out from under their owners. *)

type read_result =
  | Data of string  (** at least one byte *)
  | Eof  (** orderly close, or a peer reset treated as one *)
  | Timed_out
  | Interrupted  (** the [stop] poll returned true *)

type write_result = Written | Write_timed_out | Write_closed of string

(* granularity at which blocked reads re-check [stop]; coarse enough to be
   free, fine enough that drain interrupts feel immediate *)
let poll_interval_s = 0.05

let now () = Unix.gettimeofday ()

(* wait until [fd] is readable/writable or [deadline] passes; EINTR retries *)
let rec wait_fd ~for_write ?(stop = fun () -> false) fd ~deadline =
  if stop () then `Interrupted
  else
    let remaining = deadline -. now () in
    if remaining <= 0. then `Timed_out
    else
      let slice = Float.min remaining poll_interval_s in
      let r, w =
        if for_write then ([], [ fd ]) else ([ fd ], [])
      in
      match Unix.select r w [] slice with
      | [], [], [] -> wait_fd ~for_write ~stop fd ~deadline
      | _ -> `Ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          wait_fd ~for_write ~stop fd ~deadline

let read_chunk ?stop ?(max_bytes = 65536) fd ~timeout_s : read_result =
  let deadline = now () +. timeout_s in
  let buf = Bytes.create max_bytes in
  let rec go () =
    match wait_fd ~for_write:false ?stop fd ~deadline with
    | `Timed_out -> Timed_out
    | `Interrupted -> Interrupted
    | `Ready -> (
        match Unix.read fd buf 0 max_bytes with
        | 0 -> Eof
        | n -> Data (Bytes.sub_string buf 0 n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            go ()
        | exception
            Unix.Unix_error
              ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.ENOTCONN), _, _)
          ->
            (* a torn-down peer (or a descriptor shut down by drain) reads
               as end-of-stream, not as an exception into the worker *)
            Eof)
  in
  go ()

let write_all ?stop fd ~timeout_s s : write_result =
  let deadline = now () +. timeout_s in
  let len = String.length s in
  let rec go off =
    if off >= len then Written
    else
      match wait_fd ~for_write:true ?stop fd ~deadline with
      | `Timed_out -> Write_timed_out
      | `Interrupted -> Write_closed "interrupted by shutdown"
      | `Ready -> (
          match Unix.write_substring fd s off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              go off
          | exception Unix.Unix_error (e, _, _) ->
              Write_closed (Unix.error_message e))
  in
  if len = 0 then Written else go 0
