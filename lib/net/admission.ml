(** Admission control for the TCP front door (see admission.mli).

    A classic bounded-queue semaphore with overload shedding and a drain
    mode. The invariants the load harness asserts live here:

    - [inflight] never exceeds [max_inflight];
    - a statement waits at most [queue_timeout_s] for a slot and at most
      [max_queue] statements wait at once — anything beyond is shed
      immediately, so overload degrades into fast, structured rejections
      instead of unbounded queueing and client timeouts;
    - once draining, no new statement is admitted and {!await_idle} returns
      as soon as the last admitted statement releases its slot.

    Timed waits are built from [Condition.wait] plus a low-frequency ticker
    thread that broadcasts while anyone is queued: releases wake waiters
    immediately (the latency-critical path), and the ticker guarantees
    queue timeouts fire even if every slot is wedged on a stuck backend. *)

type config = {
  max_inflight : int;
  max_queue : int;
  queue_timeout_s : float;
  max_per_session : int;
}

let default_config =
  {
    max_inflight = 32;
    max_queue = 64;
    queue_timeout_s = 2.0;
    max_per_session = 4;
  }

type shed_reason = Queue_full | Queue_timeout | Draining | Session_limit

let shed_reason_to_string = function
  | Queue_full -> "queue_full"
  | Queue_timeout -> "queue_timeout"
  | Draining -> "draining"
  | Session_limit -> "session_limit"

type stats = {
  st_admitted : int;
  st_shed_queue_full : int;
  st_shed_queue_timeout : int;
  st_shed_draining : int;
  st_shed_session_limit : int;
  st_peak_inflight : int;
  st_peak_queue : int;
  st_queue_wait_total_s : float;
  st_queue_wait_max_s : float;
}

type t = {
  cfg : config;
  lock : Mutex.t;
  cond : Condition.t;
  mutable inflight : int;
  mutable queued : int;
  mutable draining : bool;
  mutable closed : bool;
  per_session : (int, int) Hashtbl.t;  (** session id -> inflight count *)
  (* counters, guarded by [lock] *)
  mutable admitted : int;
  mutable shed_queue_full : int;
  mutable shed_queue_timeout : int;
  mutable shed_draining : int;
  mutable shed_session_limit : int;
  mutable peak_inflight : int;
  mutable peak_queue : int;
  mutable queue_wait_total_s : float;
  mutable queue_wait_max_s : float;
  mutable ticker : Thread.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* wakes queued waiters so their timeout checks run even when no slot is
   released; idles cheaply when nobody is waiting *)
let ticker_loop t =
  let interval = Float.max 0.005 (Float.min 0.05 (t.cfg.queue_timeout_s /. 4.)) in
  let rec go () =
    Thread.delay interval;
    let stop =
      locked t (fun () ->
          if t.queued > 0 then Condition.broadcast t.cond;
          t.closed)
    in
    if not stop then go ()
  in
  go ()

let create ?(config = default_config) () =
  let t =
    {
      cfg = config;
      lock = Mutex.create ();
      cond = Condition.create ();
      inflight = 0;
      queued = 0;
      draining = false;
      closed = false;
      per_session = Hashtbl.create 64;
      admitted = 0;
      shed_queue_full = 0;
      shed_queue_timeout = 0;
      shed_draining = 0;
      shed_session_limit = 0;
      peak_inflight = 0;
      peak_queue = 0;
      queue_wait_total_s = 0.;
      queue_wait_max_s = 0.;
      ticker = None;
    }
  in
  t.ticker <- Some (Thread.create ticker_loop t);
  t

let session_inflight_unlocked t sid =
  Option.value (Hashtbl.find_opt t.per_session sid) ~default:0

let admit_now_unlocked t ~session_id =
  (not t.draining)
  && t.inflight < t.cfg.max_inflight
  && session_inflight_unlocked t session_id < t.cfg.max_per_session

let grant_unlocked t ~session_id =
  t.inflight <- t.inflight + 1;
  if t.inflight > t.peak_inflight then t.peak_inflight <- t.inflight;
  Hashtbl.replace t.per_session session_id
    (session_inflight_unlocked t session_id + 1);
  t.admitted <- t.admitted + 1

let acquire t ~session_id : (float, shed_reason) result =
  let t0 = Unix.gettimeofday () in
  locked t (fun () ->
      if t.draining || t.closed then begin
        t.shed_draining <- t.shed_draining + 1;
        Error Draining
      end
      else if
        (* the per-session cap is a fairness guard, not a queueing
           discipline: an over-limit session is shed immediately so it
           backs off instead of monopolizing queue slots *)
        session_inflight_unlocked t session_id >= t.cfg.max_per_session
      then begin
        t.shed_session_limit <- t.shed_session_limit + 1;
        Error Session_limit
      end
      else if admit_now_unlocked t ~session_id then begin
        grant_unlocked t ~session_id;
        Ok 0.
      end
      else if t.queued >= t.cfg.max_queue then begin
        t.shed_queue_full <- t.shed_queue_full + 1;
        Error Queue_full
      end
      else begin
        t.queued <- t.queued + 1;
        if t.queued > t.peak_queue then t.peak_queue <- t.queued;
        let deadline = t0 +. t.cfg.queue_timeout_s in
        let rec wait () =
          if t.draining || t.closed then begin
            t.shed_draining <- t.shed_draining + 1;
            Error Draining
          end
          else if admit_now_unlocked t ~session_id then begin
            grant_unlocked t ~session_id;
            let waited = Unix.gettimeofday () -. t0 in
            t.queue_wait_total_s <- t.queue_wait_total_s +. waited;
            if waited > t.queue_wait_max_s then t.queue_wait_max_s <- waited;
            Ok waited
          end
          else if Unix.gettimeofday () >= deadline then begin
            t.shed_queue_timeout <- t.shed_queue_timeout + 1;
            Error Queue_timeout
          end
          else begin
            Condition.wait t.cond t.lock;
            wait ()
          end
        in
        let r = wait () in
        t.queued <- t.queued - 1;
        r
      end)

let release t ~session_id =
  locked t (fun () ->
      t.inflight <- max 0 (t.inflight - 1);
      (match Hashtbl.find_opt t.per_session session_id with
      | Some n when n > 1 -> Hashtbl.replace t.per_session session_id (n - 1)
      | Some _ -> Hashtbl.remove t.per_session session_id
      | None -> ());
      Condition.broadcast t.cond)

let begin_drain t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.cond)

let draining t = locked t (fun () -> t.draining)
let inflight t = locked t (fun () -> t.inflight)
let queued t = locked t (fun () -> t.queued)

let await_idle t ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if locked t (fun () -> t.inflight = 0) then true
    else if Unix.gettimeofday () >= deadline then
      locked t (fun () -> t.inflight = 0)
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond);
  match t.ticker with
  | Some th ->
      Thread.join th;
      t.ticker <- None
  | None -> ()

let stats t =
  locked t (fun () ->
      {
        st_admitted = t.admitted;
        st_shed_queue_full = t.shed_queue_full;
        st_shed_queue_timeout = t.shed_queue_timeout;
        st_shed_draining = t.shed_draining;
        st_shed_session_limit = t.shed_session_limit;
        st_peak_inflight = t.peak_inflight;
        st_peak_queue = t.peak_queue;
        st_queue_wait_total_s = t.queue_wait_total_s;
        st_queue_wait_max_s = t.queue_wait_max_s;
      })

let shed_total s =
  s.st_shed_queue_full + s.st_shed_queue_timeout + s.st_shed_draining
  + s.st_shed_session_limit
