(** The WP-A TCP front door (see server.mli).

    Topology: one accept thread feeds a bounded queue of accepted
    connections; a fixed pool of worker threads pops connections and serves
    each for its whole life. Statement execution inside a connection is
    gated by {!Admission}, so the two capacity knobs are independent:
    [workers] bounds concurrent {e connections}, [admission.max_inflight]
    bounds concurrent {e statements} in the pipeline.

    Overload shedding happens at three rungs, each with a structured wire
    answer instead of a dropped connection:
    - accept queue full -> Failure 3897 written best-effort, connection
      closed (the server is saturated at the connection level);
    - admission queue full / queue timeout -> Failure 2631 (Teradata's
      retryable "transient" code): the client's retry path backs off and
      tries again;
    - draining -> Failure 3897: the server is going away, go elsewhere.

    Drain (SIGTERM): stop accepting, shed queued and future statements,
    finish every admitted statement, write its response, then close
    connections. Workers poll the drain flag between requests, so an idle
    connection closes within one {!Frame_io.poll_interval_s}. *)

open Hyperq_sqlvalue
module Gateway = Hyperq_core.Gateway
module Session = Hyperq_core.Session
module Pipeline = Hyperq_core.Pipeline
module Message = Hyperq_wire.Message
module Protocol_handler = Hyperq_wire.Protocol_handler
module Obs = Hyperq_obs.Obs

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  backlog : int;
  workers : int;
  accept_queue : int;
  max_frame_bytes : int;
  read_timeout_s : float;  (** per-read idle deadline on a connection *)
  write_timeout_s : float;
  admission : Admission.config;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 128;
    workers = 64;
    accept_queue = 128;
    max_frame_bytes = Protocol_handler.default_max_frame_bytes;
    read_timeout_s = 30.;
    write_timeout_s = 10.;
    admission = Admission.default_config;
  }

type t = {
  cfg : config;
  gateway : Gateway.t;
  adm : Admission.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* accepted-but-unserved connections *)
  queue : Unix.file_descr Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  (* lifecycle *)
  mutable draining : bool;
  mutable stopping : bool;  (** hard stop: interrupt reads, close everything *)
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  (* live connection registry, for forced shutdown *)
  live : (Unix.file_descr, unit) Hashtbl.t;
  live_lock : Mutex.t;
  (* counters (own lock-free-ish ints are fine: all mutated under qlock or
     live_lock except the Obs handles, which lock internally) *)
  connections_total : Obs.counter;
  accept_shed_total : Obs.counter;
  protocol_errors_total : Obs.counter;
  bytes_read_total : Obs.counter;
  bytes_written_total : Obs.counter;
  write_failures_total : Obs.counter;
  queue_wait_hist : Obs.histogram;
  exec_hist : Obs.histogram;
      (** service time of admitted statements, queue wait excluded *)
  mutable statements_done : int;  (** guarded by [live_lock] *)
}

let port t = t.bound_port
let admission t = t.adm
let gateway t = t.gateway
let exec_snapshot t = Obs.histogram_snapshot t.exec_hist

(* --- shedding ----------------------------------------------------------- *)

(* Queue_full / Queue_timeout / Session_limit are transient (2631): the
   server is momentarily saturated and a backed-off retry may well get in.
   Draining is terminal for this process (3897): clients should fail over. *)
let shed_error (reason : Admission.shed_reason) : Sql_error.t =
  match reason with
  | Admission.Draining ->
      {
        Sql_error.kind = Sql_error.Unavailable;
        message = "server draining: no new statements admitted";
      }
  | r ->
      {
        Sql_error.kind = Sql_error.Transient_error;
        message =
          Printf.sprintf "server overloaded (%s): retry with backoff"
            (Admission.shed_reason_to_string r);
      }

(* the admission middleware interposed on every statement execution *)
let wrap t ~sql:_ ~(session : Session.t) run =
  let clock = Obs.clock (Pipeline.obs (Gateway.pipeline t.gateway)) in
  (* stamp the deadline anchor *before* queueing: time spent waiting for
     admission counts against the statement's budget *)
  Session.set_deadline_anchor session (clock.Obs.now ());
  match Admission.acquire t.adm ~session_id:session.Session.session_id with
  | Error reason -> Error (shed_error reason)
  | Ok waited ->
      Obs.observe t.queue_wait_hist waited;
      let t0 = clock.Obs.now () in
      Fun.protect
        ~finally:(fun () ->
          Obs.observe t.exec_hist (clock.Obs.now () -. t0);
          Admission.release t.adm ~session_id:session.Session.session_id;
          Mutex.lock t.live_lock;
          t.statements_done <- t.statements_done + 1;
          Mutex.unlock t.live_lock)
        run

(* --- connection serving ------------------------------------------------- *)

let register_live t fd =
  Mutex.lock t.live_lock;
  Hashtbl.replace t.live fd ();
  Mutex.unlock t.live_lock

let unregister_live t fd =
  Mutex.lock t.live_lock;
  Hashtbl.remove t.live fd;
  Mutex.unlock t.live_lock

let serve_connection t fd =
  (match Unix.setsockopt fd Unix.TCP_NODELAY true with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  register_live t fd;
  Obs.inc t.connections_total;
  let conn =
    Gateway.connect t.gateway ~wrap:(wrap t)
      ~max_frame_bytes:t.cfg.max_frame_bytes ()
  in
  let stop () = t.stopping in
  let rec pump () =
    (* between requests: a draining server stops reading and hangs up
       (every response already written), an idle read eventually times out *)
    if t.draining || t.stopping then ()
    else
      match Frame_io.read_chunk ~stop fd ~timeout_s:t.cfg.read_timeout_s with
      | Frame_io.Eof | Frame_io.Timed_out | Frame_io.Interrupted -> ()
      | Frame_io.Data bytes -> (
          Obs.add t.bytes_read_total (float_of_int (String.length bytes));
          let before = Gateway.connection_protocol_errors conn in
          let out = Gateway.feed conn bytes in
          if Gateway.connection_protocol_errors conn > before then
            Obs.inc t.protocol_errors_total;
          let write_ok =
            out = ""
            ||
            match
              Frame_io.write_all fd ~timeout_s:t.cfg.write_timeout_s out
            with
            | Frame_io.Written ->
                Obs.add t.bytes_written_total
                  (float_of_int (String.length out));
                true
            | Frame_io.Write_timed_out | Frame_io.Write_closed _ ->
                Obs.inc t.write_failures_total;
                false
          in
          if write_ok && not (Gateway.connection_closed conn) then pump ())
  in
  Fun.protect
    ~finally:(fun () ->
      Gateway.disconnect conn;
      unregister_live t fd;
      (try Unix.close fd with Unix.Unix_error _ -> ()))
    pump

(* --- accept loop and worker pool ---------------------------------------- *)

(* best-effort "go away" for connections shed before any worker owns them *)
let refuse_connection t fd =
  Obs.inc t.accept_shed_total;
  let frame =
    Message.encode_frame
      (Message.Failure
         { code = 3897; message = "server at connection capacity: retry" })
  in
  ignore (Frame_io.write_all fd ~timeout_s:0.1 frame);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _addr ->
        let accepted =
          Mutex.lock t.qlock;
          let ok =
            (not t.draining) && (not t.stopping)
            && Queue.length t.queue < t.cfg.accept_queue
          in
          if ok then begin
            Queue.add fd t.queue;
            Condition.signal t.qcond
          end;
          Mutex.unlock t.qlock;
          ok
        in
        if not accepted then refuse_connection t fd;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ ->
        (* listen socket closed by shutdown: accept thread is done *)
        ()
  in
  go ()

let worker_loop t =
  let rec go () =
    let job =
      Mutex.lock t.qlock;
      let rec take () =
        if t.stopping || (t.draining && Queue.is_empty t.queue) then None
        else
          match Queue.take_opt t.queue with
          | Some fd -> Some fd
          | None ->
              Condition.wait t.qcond t.qlock;
              take ()
      in
      let j = take () in
      Mutex.unlock t.qlock;
      j
    in
    match job with
    | Some fd ->
        (match serve_connection t fd with
        | () -> ()
        | exception e ->
            (* a worker must never die with the pool running *)
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Printf.eprintf "hyperq-net worker: unexpected exception: %s\n%!"
              (Printexc.to_string e));
        go ()
    | None -> ()
  in
  go ()

(* --- lifecycle ---------------------------------------------------------- *)

let start ?(config = default_config) gateway =
  (* a client that vanishes mid-response must surface as EPIPE on the write
     (handled in Frame_io), not as a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try Unix.bind listen_fd addr
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd config.backlog;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let obs = Pipeline.obs (Gateway.pipeline gateway) in
  let adm = Admission.create ~config:config.admission () in
  let t =
    {
      cfg = config;
      gateway;
      adm;
      listen_fd;
      bound_port;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      draining = false;
      stopping = false;
      accept_thread = None;
      worker_threads = [];
      live = Hashtbl.create 64;
      live_lock = Mutex.create ();
      connections_total =
        Obs.counter obs ~help:"TCP connections accepted by the front door"
          "hyperq_net_connections_total";
      accept_shed_total =
        Obs.counter obs
          ~help:"Connections refused because the accept queue was full"
          "hyperq_net_accept_shed_total";
      protocol_errors_total =
        Obs.counter obs ~help:"Connections poisoned by malformed frames"
          "hyperq_net_protocol_errors_total";
      bytes_read_total =
        Obs.counter obs ~help:"Bytes read from clients"
          "hyperq_net_bytes_read_total";
      bytes_written_total =
        Obs.counter obs ~help:"Bytes written to clients"
          "hyperq_net_bytes_written_total";
      write_failures_total =
        Obs.counter obs
          ~help:"Responses dropped on a dead or stalled client socket"
          "hyperq_net_write_failures_total";
      queue_wait_hist =
        Obs.histogram obs
          ~help:"Admission queue wait of admitted statements (seconds)"
          "hyperq_net_queue_wait_seconds";
      exec_hist =
        Obs.histogram obs
          ~help:
            "Service time of admitted statements, queue wait excluded \
             (seconds)"
          "hyperq_net_exec_seconds";
      statements_done = 0;
    }
  in
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Statements currently executing behind the front door"
    "hyperq_net_inflight" (fun () ->
      [ ([], float_of_int (Admission.inflight adm)) ]);
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Statements waiting in the admission queue" "hyperq_net_queue_depth"
    (fun () -> [ ([], float_of_int (Admission.queued adm)) ]);
  Obs.register_collector obs ~kind:`Gauge
    ~help:"Open client connections" "hyperq_net_active_connections" (fun () ->
      Mutex.lock t.live_lock;
      let n = Hashtbl.length t.live in
      Mutex.unlock t.live_lock;
      [ ([], float_of_int n) ]);
  Obs.register_collector obs ~kind:`Counter
    ~help:"Statements shed by admission control"
    "hyperq_net_shed_total" (fun () ->
      let s = Admission.stats adm in
      [
        ([ ("reason", "queue_full") ], float_of_int s.Admission.st_shed_queue_full);
        ( [ ("reason", "queue_timeout") ],
          float_of_int s.Admission.st_shed_queue_timeout );
        ([ ("reason", "draining") ], float_of_int s.Admission.st_shed_draining);
        ( [ ("reason", "session_limit") ],
          float_of_int s.Admission.st_shed_session_limit );
      ]);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.worker_threads <-
    List.init config.workers (fun _ -> Thread.create worker_loop t);
  t

type drain_report = {
  dr_drained : bool;  (** every admitted statement released within budget *)
  dr_inflight_at_signal : int;
  dr_completed : int;  (** statements completed over the server's lifetime *)
}

let live_connections t =
  Mutex.lock t.live_lock;
  let n = Hashtbl.length t.live in
  Mutex.unlock t.live_lock;
  n

let shutdown ?(drain = true) ?(timeout_s = 30.) t =
  let inflight_at_signal = Admission.inflight t.adm in
  (* stop accepting. [shutdown], not [close]: closing a descriptor does not
     wake a thread blocked in accept(2) on Linux, but shutting the listening
     socket down makes that accept return EINVAL immediately. The fd itself
     is closed after the accept thread is joined. *)
  t.draining <- true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  Admission.begin_drain t.adm;
  Mutex.lock t.qlock;
  Condition.broadcast t.qcond;
  (* connections still in the accept queue were never served: refuse them *)
  let orphans = Queue.fold (fun acc fd -> fd :: acc) [] t.queue in
  Queue.clear t.queue;
  Mutex.unlock t.qlock;
  List.iter (fun fd -> refuse_connection t fd) orphans;
  let drained =
    if drain then Admission.await_idle t.adm ~timeout_s else false
  in
  (* give workers a moment to write final responses and hang up on their
     own; then force any straggler off the wire *)
  let grace_deadline = Unix.gettimeofday () +. Float.min 2.0 timeout_s in
  let rec grace () =
    if live_connections t = 0 || Unix.gettimeofday () >= grace_deadline then ()
    else begin
      Thread.delay 0.01;
      grace ()
    end
  in
  grace ();
  t.stopping <- true;
  Mutex.lock t.qlock;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock;
  Mutex.lock t.live_lock;
  let stragglers = Hashtbl.fold (fun fd () acc -> fd :: acc) t.live [] in
  Mutex.unlock t.live_lock;
  List.iter
    (fun fd ->
      (* shutdown, not close: the owning worker still holds the fd and will
         close it; closing here would race a concurrent accept's fd reuse *)
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    stragglers;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  List.iter Thread.join t.worker_threads;
  t.worker_threads <- [];
  Admission.close t.adm;
  Mutex.lock t.live_lock;
  let completed = t.statements_done in
  Mutex.unlock t.live_lock;
  {
    dr_drained = (if drain then drained else true);
    dr_inflight_at_signal = inflight_at_signal;
    dr_completed = completed;
  }

type stats = {
  sv_connections : int;
  sv_accept_shed : int;
  sv_protocol_errors : int;
  sv_write_failures : int;
  sv_statements_done : int;
  sv_admission : Admission.stats;
}

let stats t =
  Mutex.lock t.live_lock;
  let done_ = t.statements_done in
  Mutex.unlock t.live_lock;
  {
    sv_connections = int_of_float (Obs.counter_value t.connections_total);
    sv_accept_shed = int_of_float (Obs.counter_value t.accept_shed_total);
    sv_protocol_errors =
      int_of_float (Obs.counter_value t.protocol_errors_total);
    sv_write_failures = int_of_float (Obs.counter_value t.write_failures_total);
    sv_statements_done = done_;
    sv_admission = Admission.stats t.adm;
  }
