(** Blocking TCP WP-A client: what a Teradata client library looks like to
    the front door. Used by the serving load harness and the CI smoke test.

    Failure classification mirrors the client-side resilience contract:
    [Failure_code] is a structured protocol answer (2631 = transient, shed
    under overload, retry with backoff; 3897 = unavailable/draining, fail
    over), while [Io_error] is a broken byte stream — which a well-behaved
    front door should {e never} cause, and the load harness asserts it
    doesn't. *)

type failure =
  | Failure_code of int * string  (** structured [Failure] parcel *)
  | Io_error of string  (** connection reset, timeout, malformed frame *)

val failure_to_string : failure -> string

type t

(** TCP connect + WP-A logon handshake (challenge/response). [timeout_s]
    bounds every read and write on this connection (default 10 s). *)
val connect :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  username:string ->
  password:string ->
  unit ->
  (t, failure) result

(** Session id assigned at logon. *)
val session_id : t -> int

type reply = {
  rp_columns : Hyperq_wire.Message.column list;
  rp_records : int;  (** record parcels received (not decoded rows) *)
  rp_activity_count : int;
  rp_activity : string;
}

(** Submit one statement and collect its full answer
    ([Header? Records* (Success | Failure)]). *)
val run : t -> string -> (reply, failure) result

(** Polite logoff then close; safe to call twice. *)
val close : t -> unit

(** Wire code 2631: shed under overload, retry with backoff. *)
val is_retryable : failure -> bool

(** Wire code 3897: draining/unavailable, fail over. *)
val is_unavailable : failure -> bool
