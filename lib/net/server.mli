(** The WP-A TCP front door: a real socket server in front of the gateway.

    An accept thread feeds a bounded queue of connections; a fixed worker
    pool serves each connection for its whole life (blocking reads with
    per-read deadlines). Statement execution is gated by {!Admission}, so
    [workers] bounds concurrent {e connections} while
    [admission.max_inflight] bounds concurrent {e statements}.

    Overload is shed with structured wire answers, never dropped
    connections: accept-queue overflow and drain answer [Failure 3897]
    (Unavailable — fail over), admission-queue overflow/timeout and the
    per-session cap answer [Failure 2631] (Transient — retry with backoff),
    which is exactly the classification the client-side resilience layer
    retries on. {!shutdown} implements SIGTERM drain: stop accepting, shed
    queued statements, finish and answer every admitted statement, then
    close connections. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  backlog : int;  (** [listen] backlog *)
  workers : int;  (** worker threads = max concurrently served connections *)
  accept_queue : int;  (** accepted connections waiting for a worker *)
  max_frame_bytes : int;  (** inbound frame size guard (protocol handler) *)
  read_timeout_s : float;  (** per-read idle deadline on a connection *)
  write_timeout_s : float;  (** deadline for writing one response *)
  admission : Admission.config;
}

val default_config : config

type t

(** Bind, listen, and start the accept thread and worker pool. Registers
    [hyperq_net_*] metrics on the gateway pipeline's Obs registry. Raises
    [Unix.Unix_error] if the address cannot be bound. *)
val start : ?config:config -> Hyperq_core.Gateway.t -> t

(** The actually bound port (useful with [port = 0]). *)
val port : t -> int

val admission : t -> Admission.t
val gateway : t -> Hyperq_core.Gateway.t

(** Service-time histogram of admitted statements (queue wait excluded) —
    the load harness asserts its p99 against the uncontended baseline. *)
val exec_snapshot : t -> Hyperq_obs.Obs.histogram_snapshot

(** Open client connections right now. *)
val live_connections : t -> int

type drain_report = {
  dr_drained : bool;  (** every admitted statement released within budget *)
  dr_inflight_at_signal : int;
  dr_completed : int;  (** statements completed over the server's lifetime *)
}

(** Stop the server. With [drain] (default), runs the SIGTERM protocol:
    stop accepting, shed queued/new statements with wire code 3897, wait up
    to [timeout_s] for admitted statements to finish and their responses to
    flush, then disconnect; stragglers are forced off the wire. With
    [drain:false] the inflight wait is skipped. Joins all threads;
    idempotent in effect but call it once. *)
val shutdown : ?drain:bool -> ?timeout_s:float -> t -> drain_report

type stats = {
  sv_connections : int;  (** TCP connections accepted *)
  sv_accept_shed : int;  (** connections refused at the accept queue *)
  sv_protocol_errors : int;  (** connections poisoned by malformed frames *)
  sv_write_failures : int;  (** responses lost on dead/stalled sockets *)
  sv_statements_done : int;
  sv_admission : Admission.stats;
}

val stats : t -> stats
