(** Load generator replaying a SQL corpus against the TCP front door over
    real sockets, in closed- or open-loop mode with Zipf session skew.

    Closed loop: [workers] threads issue back-to-back — throughput adapts
    to server speed (classic benchmark mode, hides queueing). Open loop:
    arrivals follow a seeded exponential schedule at [rate_qps] regardless
    of server speed, and latency is measured from the {e scheduled} arrival
    — so when the server saturates, queueing delay shows up in p99 instead
    of silently throttling the generator (the coordinated-omission trap).

    Client behaviour matches the production retry contract: wire code 2631
    (transient shed) is retried with seeded full-jitter backoff up to
    [retry_max] times; 3897 (draining/unavailable) and other failures are
    terminal; IO errors are counted separately because a correct front door
    sheds with structured answers, never with connection resets. *)

type mode =
  | Closed_loop  (** workers issue back-to-back *)
  | Open_loop of { rate_qps : float }  (** seeded exponential arrivals *)

type config = {
  host : string;
  port : int;
  username : string;
  password : string;
  mode : mode;
  workers : int;
  sessions : int;  (** TCP connections in the pool *)
  zipf_s : float;  (** session-skew exponent; 0 = uniform *)
  total_queries : int;
  retry_max : int;  (** client retries on wire code 2631 *)
  retry_base_s : float;
  timeout_s : float;  (** per-read/write client deadline *)
  seed : int;
}

val default_config : config

type report = {
  lr_submitted : int;  (** statements attempted (excluding retries) *)
  lr_ok : int;
  lr_shed_transient : int;  (** terminal 2631 after retries exhausted *)
  lr_shed_unavailable : int;  (** 3897: draining / breaker open *)
  lr_other_failures : int;  (** non-shed Failure parcels (e.g. SQL errors) *)
  lr_io_errors : int;  (** resets / timeouts / stream corruption *)
  lr_retries : int;  (** 2631 answers absorbed by client backoff *)
  lr_reconnects : int;
  lr_wall_s : float;
  lr_qps : float;  (** successful statements per wall second *)
  lr_p50_ms : float;
  lr_p90_ms : float;
  lr_p99_ms : float;
  lr_max_ms : float;
  lr_latencies_ms : float array;  (** sorted, successful statements only *)
}

(** Replay [corpus] (round-robin) until [total_queries] statements have been
    issued; blocks until every worker finishes and connections are closed.
    Raises [Invalid_argument] on an empty corpus. *)
val run : ?config:config -> corpus:string list -> unit -> report

(** One-line summary for logs. *)
val report_to_string : report -> string
