(** Admission control: max-inflight semaphore, bounded wait queue, overload
    shedding, and drain mode for the TCP front door.

    The front door admits at most [max_inflight] statements into the
    pipeline at once; up to [max_queue] more wait at most [queue_timeout_s]
    for a slot, and everything beyond that is shed {e immediately} with a
    structured reason, so overload turns into fast retryable rejections
    (wire code 2631/3897 upstream) instead of unbounded queueing. A
    per-session concurrency cap keeps one chatty session from monopolizing
    the pool. Drain mode sheds all new work while {!await_idle} waits for
    admitted statements to finish — the SIGTERM path. *)

type config = {
  max_inflight : int;  (** statements executing concurrently *)
  max_queue : int;  (** statements waiting for a slot *)
  queue_timeout_s : float;  (** max time a statement may queue *)
  max_per_session : int;  (** concurrent statements per session *)
}

val default_config : config

type shed_reason = Queue_full | Queue_timeout | Draining | Session_limit

val shed_reason_to_string : shed_reason -> string

type t

val create : ?config:config -> unit -> t

(** Block until admitted (returns the queue wait in seconds) or shed.
    Wake-ups are broadcast on every {!release}; a background ticker bounds
    the wait even if no slot is ever released. *)
val acquire : t -> session_id:int -> (float, shed_reason) result

(** Release one admitted slot (must pair with a successful {!acquire}). *)
val release : t -> session_id:int -> unit

(** Enter drain mode: every queued and future {!acquire} is shed with
    [Draining]; admitted statements run to completion. Irreversible. *)
val begin_drain : t -> unit

val draining : t -> bool
val inflight : t -> int
val queued : t -> int

(** Wait (up to [timeout_s]) for all admitted statements to release;
    [true] if the controller went idle. *)
val await_idle : t -> timeout_s:float -> bool

(** Stop the ticker thread; further acquires are shed with [Draining]. *)
val close : t -> unit

type stats = {
  st_admitted : int;
  st_shed_queue_full : int;
  st_shed_queue_timeout : int;
  st_shed_draining : int;
  st_shed_session_limit : int;
  st_peak_inflight : int;  (** never exceeds [max_inflight] *)
  st_peak_queue : int;
  st_queue_wait_total_s : float;
  st_queue_wait_max_s : float;
}

val stats : t -> stats
val shed_total : stats -> int
