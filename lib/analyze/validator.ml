(** Structural/semantic invariant checker over XTRA plans.

    The validator re-derives, from scratch, the properties the binder is
    supposed to establish and every transformer rewrite is supposed to
    preserve: column references resolve in the schema of some child (or an
    enclosing scope, for correlated subqueries), operator output schemas are
    duplicate-free, set operations agree in arity and type, predicates are
    boolean, aggregate/window placeholders never escape the binder, and CTE
    references point at a visible definition of the right arity. It runs
    after {!Hyperq_binder.Binder.bind_statement} and (behind a pipeline
    flag) after each fixed-point pass of the transformer, where a fresh
    violation is attributed to the rewrite rule(s) that fired in that pass.

    Diagnostic codes (stable; see DESIGN.md §12):
    - V101 dangling column reference
    - V102 column reference type drifted from the defining occurrence
    - V103 duplicate column ids in an operator's output schema
    - V104 join sides share column ids
    - V105 VALUES row arity differs from the VALUES schema
    - V110 binder-transient [Agg_ref]/[Window_ref] escaped the binder
    - V201 non-boolean predicate
    - V202 projection column type incompatible with its expression
    - V204 comparison operands have no common supertype
    - V205 CASE condition is not boolean
    - V206 scalar subquery does not produce exactly one column
    - V207 row-expression arity differs from subquery arity
    - V302 window function is missing its required argument
    - V303 aggregate output column type inconsistent with the aggregate
    - V304 GROUPING SETS index out of range
    - V305 LIMIT/OFFSET expression references a column
    - V401 set-operation branch arity mismatch
    - V402 set-operation branch column types incompatible
    - V403 dangling CTE reference
    - V404 CTE reference arity differs from the definition
    - V501 INSERT column list arity differs from the source
    - V502 UPDATE/MERGE assignment targets an unknown column
    - V503 CREATE TABLE declares a duplicate column name
    - V504 MERGE insert column/value arity mismatch
    - V505 assignment expression type incompatible with the target column

    Inference-consistency codes (from {!Infer}, warnings except V610):
    - V601 filter predicate can never be TRUE (statically contradictory)
    - V602 filter predicate is statically always TRUE (redundant filter)
    - V603 null-rejecting predicate above an outer join (strengthenable)
    - V610 property inference raised (inference bug — error severity) *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra

type env = {
  outer : Xtra.schema list;
      (** schemas of enclosing scopes, innermost first; a column id found
          here (but not in the current scope) is a correlated reference *)
  ctes : (string * int) list;  (** visible CTE names (uppercased) + arity *)
}

let empty_env = { outer = []; ctes = [] }
let up = String.uppercase_ascii

(* Lenient type agreement: binder-era [Unknown]s (bare NULLs, parameters)
   are compatible with everything; otherwise the types must share a family
   or an implicit-coercion supertype. *)
let compatible a b =
  match (a, b) with
  | Dtype.Unknown, _ | _, Dtype.Unknown -> true
  | _ -> Dtype.same_family a b || Dtype.common_super a b <> None

let boolish t = t = Dtype.Bool || t = Dtype.Unknown

let emit buf d = buf := d :: !buf

let find_col (schema : Xtra.schema) id =
  List.find_opt (fun (c : Xtra.col) -> c.Xtra.id = id) schema

let check_dup_ids buf ~where (schema : Xtra.schema) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c : Xtra.col) ->
      if Hashtbl.mem seen c.Xtra.id then
        emit buf
          (Diag.make ~code:"V103" "duplicate column id %d (%s) in %s output schema"
             c.Xtra.id c.Xtra.name where)
      else Hashtbl.add seen c.Xtra.id ())
    schema

let rec check_scalar buf env (visible : Xtra.schema) s =
  let recur x = check_scalar buf env visible x in
  let subquery r = check_rel buf { env with outer = visible :: env.outer } r in
  match s with
  | Xtra.Const _ | Xtra.Param _ -> ()
  | Xtra.Col_ref c -> (
      match find_col visible c.Xtra.id with
      | Some def ->
          if not (Dtype.same_family def.Xtra.ty c.Xtra.ty) then
            emit buf
              (Diag.make ~severity:Diag.Warning ~code:"V102"
                 "column %d (%s) referenced as %s but defined as %s" c.Xtra.id
                 c.Xtra.name
                 (Dtype.to_string c.Xtra.ty)
                 (Dtype.to_string def.Xtra.ty))
      | None ->
          if
            not
              (List.exists (fun sc -> find_col sc c.Xtra.id <> None) env.outer)
          then
            emit buf
              (Diag.make ~code:"V101"
                 "dangling column reference %d (%s %s): not in scope" c.Xtra.id
                 c.Xtra.name
                 (Dtype.to_string c.Xtra.ty)))
  | Xtra.Agg_ref a ->
      emit buf
        (Diag.make ~code:"V110"
           "binder-transient aggregate placeholder %s escaped binding"
           (Xtra.agg_name a.Xtra.afunc));
      Option.iter recur a.Xtra.aarg
  | Xtra.Window_ref w ->
      emit buf
        (Diag.make ~code:"V110"
           "binder-transient window placeholder %s escaped binding"
           (Xtra.window_name w.Xtra.wfunc));
      List.iter recur w.Xtra.wargs;
      List.iter recur w.Xtra.partition;
      List.iter (fun (k : Xtra.sort_key) -> recur k.Xtra.key) w.Xtra.worder
  | Xtra.Cmp (_, a, b) ->
      recur a;
      recur b;
      let ta = Xtra.type_of_scalar a and tb = Xtra.type_of_scalar b in
      if not (compatible ta tb) then
        emit buf
          (Diag.make ~code:"V204" "comparison of incompatible types %s and %s"
             (Dtype.to_string ta) (Dtype.to_string tb))
  | Xtra.Case { branches; else_branch; _ } ->
      List.iter
        (fun (cond, v) ->
          recur cond;
          recur v;
          let tc = Xtra.type_of_scalar cond in
          if not (boolish tc) then
            emit buf
              (Diag.make ~severity:Diag.Warning ~code:"V205"
                 "CASE condition has type %s, expected BOOLEAN"
                 (Dtype.to_string tc)))
        branches;
      Option.iter recur else_branch
  | Xtra.Scalar_subquery r ->
      subquery r;
      let n = List.length (Xtra.schema_of r) in
      if n <> 1 then
        emit buf
          (Diag.make ~code:"V206" "scalar subquery produces %d columns" n)
  | Xtra.Exists r -> subquery r
  | Xtra.In_subquery { args; subquery = sq; _ } ->
      List.iter recur args;
      subquery sq;
      let n = List.length (Xtra.schema_of sq) in
      if n <> List.length args then
        emit buf
          (Diag.make ~code:"V207"
             "IN row expression has %d columns but subquery produces %d"
             (List.length args) n)
  | Xtra.Quantified { lhs; subquery = sq; _ } ->
      List.iter recur lhs;
      subquery sq;
      let n = List.length (Xtra.schema_of sq) in
      if n <> List.length lhs then
        emit buf
          (Diag.make ~code:"V207"
             "quantified comparison has %d columns but subquery produces %d"
             (List.length lhs) n)
  | Xtra.Arith _ | Xtra.Logic_and _ | Xtra.Logic_or _ | Xtra.Logic_not _
  | Xtra.Is_null _ | Xtra.Cast _ | Xtra.Func _ | Xtra.Extract _ | Xtra.Concat _
  | Xtra.Like _ | Xtra.In_list _ ->
      ignore
        (Xtra.map_scalar_children
           (fun x ->
             recur x;
             x)
           s)

and check_pred buf env visible ~where pred =
  check_scalar buf env visible pred;
  let t = Xtra.type_of_scalar pred in
  if not (boolish t) then
    emit buf
      (Diag.make ~code:"V201" "%s predicate has type %s, expected BOOLEAN" where
         (Dtype.to_string t))

(* V6xx: re-run the property inference over the filter's input and check
   the 3VL verdict of the predicate. All verdicts are warnings — they flag
   statically-provable redundancies, not structural breakage — except a
   crash of the inference itself (V610), which is an analysis bug. *)
and check_filter_inference buf input pred =
  try
    let ienv = Infer.env_of input in
    let t = Infer.predicate_truth ~env:ienv pred in
    if not t.Infer.can_true then
      emit buf
        (Diag.make ~severity:Diag.Warning ~code:"V601"
           "filter predicate can never be TRUE (statically contradictory)")
    else if (not t.Infer.can_false) && (not t.Infer.can_null) && pred <> Xtra.ctrue
    then
      emit buf
        (Diag.make ~severity:Diag.Warning ~code:"V602"
           "filter predicate is statically always TRUE (redundant filter)");
    match input with
    | Xtra.Join { kind; left; right; _ }
      when kind = Xtra.Left_outer || kind = Xtra.Right_outer
           || kind = Xtra.Full_outer ->
        let ids side =
          List.map (fun (c : Xtra.col) -> c.Xtra.id) (Xtra.schema_of side)
        in
        let rejects side = Infer.null_rejected ~env:ienv (ids side) pred in
        let strengthenable =
          match kind with
          | Xtra.Left_outer -> rejects right
          | Xtra.Right_outer -> rejects left
          | Xtra.Full_outer -> rejects left || rejects right
          | _ -> false
        in
        if strengthenable then
          emit buf
            (Diag.make ~severity:Diag.Warning ~code:"V603"
               "null-rejecting predicate above an outer join: the join can \
                be strengthened toward INNER")
    | _ -> ()
  with e ->
    emit buf
      (Diag.make ~code:"V610" "property inference failed: %s"
         (Printexc.to_string e))

and check_agg buf env visible ~out (a : Xtra.agg_def) =
  Option.iter (check_scalar buf env visible) a.Xtra.aarg;
  let arg_ty =
    match a.Xtra.aarg with
    | Some e -> Xtra.type_of_scalar e
    | None -> Dtype.Int
  in
  let expect = Xtra.agg_result_type a.Xtra.afunc arg_ty in
  if not (compatible expect out.Xtra.ty) then
    emit buf
      (Diag.make ~code:"V303"
         "aggregate %s output column %s declared %s but computes %s"
         (Xtra.agg_name a.Xtra.afunc) out.Xtra.name
         (Dtype.to_string out.Xtra.ty)
         (Dtype.to_string expect))

and check_window buf env visible (w : Xtra.window_def) =
  List.iter (check_scalar buf env visible) w.Xtra.wargs;
  List.iter (check_scalar buf env visible) w.Xtra.partition;
  List.iter (fun (k : Xtra.sort_key) -> check_scalar buf env visible k.Xtra.key) w.Xtra.worder;
  let needs_arg =
    match w.Xtra.wfunc with
    | Xtra.W_lag | Xtra.W_lead | Xtra.W_first_value | Xtra.W_last_value -> true
    | Xtra.W_agg a -> a <> Xtra.Count_star
    | Xtra.W_rank | Xtra.W_dense_rank | Xtra.W_row_number -> false
  in
  if needs_arg && w.Xtra.wargs = [] then
    emit buf
      (Diag.make ~code:"V302" "window function %s is missing its argument"
         (Xtra.window_name w.Xtra.wfunc))

and check_rel buf env r =
  match r with
  | Xtra.Get { table; table_schema; _ } ->
      check_dup_ids buf ~where:(Printf.sprintf "Get(%s)" table) table_schema
  | Xtra.Values_rel { rows; values_schema } ->
      check_dup_ids buf ~where:"Values" values_schema;
      let arity = List.length values_schema in
      List.iteri
        (fun i row ->
          if List.length row <> arity then
            emit buf
              (Diag.make ~code:"V105"
                 "VALUES row %d has %d expressions, schema has %d columns" i
                 (List.length row) arity);
          List.iter (check_scalar buf env []) row)
        rows
  | Xtra.Filter { input; pred } ->
      check_rel buf env input;
      check_pred buf env (Xtra.schema_of input) ~where:"filter" pred;
      check_filter_inference buf input pred
  | Xtra.Project { input; proj } ->
      check_rel buf env input;
      check_dup_ids buf ~where:"Project" (List.map fst proj);
      let visible = Xtra.schema_of input in
      List.iter
        (fun ((c : Xtra.col), e) ->
          check_scalar buf env visible e;
          let te = Xtra.type_of_scalar e in
          if not (compatible c.Xtra.ty te) then
            emit buf
              (Diag.make ~code:"V202"
                 "projection column %s declared %s but expression has type %s"
                 c.Xtra.name
                 (Dtype.to_string c.Xtra.ty)
                 (Dtype.to_string te)))
        proj
  | Xtra.Join { left; right; pred; _ } ->
      check_rel buf env left;
      check_rel buf env right;
      let ls = Xtra.schema_of left and rs = Xtra.schema_of right in
      List.iter
        (fun (c : Xtra.col) ->
          if find_col rs c.Xtra.id <> None then
            emit buf
              (Diag.make ~code:"V104"
                 "column id %d (%s) appears on both sides of a join" c.Xtra.id
                 c.Xtra.name))
        ls;
      Option.iter (check_pred buf env (ls @ rs) ~where:"join") pred
  | Xtra.Aggregate { input; group_by; aggs; grouping_sets } ->
      check_rel buf env input;
      let visible = Xtra.schema_of input in
      check_dup_ids buf ~where:"Aggregate"
        (List.map fst group_by @ List.map fst aggs);
      List.iter (fun (_, e) -> check_scalar buf env visible e) group_by;
      List.iter (fun (c, a) -> check_agg buf env visible ~out:c a) aggs;
      Option.iter
        (List.iteri (fun si set ->
             let n = List.length group_by in
             List.iter
               (fun ix ->
                 if ix < 0 || ix >= n then
                   emit buf
                     (Diag.make ~code:"V304"
                        "grouping set %d references key index %d, but there \
                         are %d grouping keys"
                        si ix n))
               set))
        grouping_sets
  | Xtra.Window { input; windows } ->
      check_rel buf env input;
      let visible = Xtra.schema_of input in
      check_dup_ids buf ~where:"Window" (visible @ List.map fst windows);
      List.iter (fun (_, w) -> check_window buf env visible w) windows
  | Xtra.Sort { input; sort_keys } ->
      check_rel buf env input;
      let visible = Xtra.schema_of input in
      List.iter
        (fun (k : Xtra.sort_key) -> check_scalar buf env visible k.Xtra.key)
        sort_keys
  | Xtra.Limit { input; count; offset; _ } ->
      check_rel buf env input;
      let check_bound what e =
        check_scalar buf env (Xtra.schema_of input) e;
        ignore
          (Xtra.map_scalar
             (fun x ->
               (match x with
               | Xtra.Col_ref c ->
                   emit buf
                     (Diag.make ~code:"V305"
                        "%s expression references column %d (%s)" what c.Xtra.id
                        c.Xtra.name)
               | _ -> ());
               x)
             e)
      in
      Option.iter (check_bound "LIMIT") count;
      Option.iter (check_bound "OFFSET") offset
  | Xtra.Distinct { input } -> check_rel buf env input
  | Xtra.Set_operation { op; left; right; _ } ->
      check_rel buf env left;
      check_rel buf env right;
      let ls = Xtra.schema_of left and rs = Xtra.schema_of right in
      let opname =
        match op with
        | Xtra.Union -> "UNION"
        | Xtra.Intersect -> "INTERSECT"
        | Xtra.Except -> "EXCEPT"
      in
      if List.length ls <> List.length rs then
        emit buf
          (Diag.make ~code:"V401" "%s branches have %d and %d columns" opname
             (List.length ls) (List.length rs))
      else
        List.iteri
          (fun i ((lc : Xtra.col), (rc : Xtra.col)) ->
            if not (compatible lc.Xtra.ty rc.Xtra.ty) then
              emit buf
                (Diag.make ~code:"V402"
                   "%s column %d: branch types %s and %s are incompatible"
                   opname i
                   (Dtype.to_string lc.Xtra.ty)
                   (Dtype.to_string rc.Xtra.ty)))
          (List.combine ls rs)
  | Xtra.Cte_ref { cte_name; ref_schema } -> (
      check_dup_ids buf ~where:(Printf.sprintf "Cte_ref(%s)" cte_name) ref_schema;
      match List.assoc_opt (up cte_name) env.ctes with
      | None ->
          emit buf
            (Diag.make ~code:"V403" "reference to undefined CTE %s" cte_name)
      | Some arity ->
          if arity <> List.length ref_schema then
            emit buf
              (Diag.make ~code:"V404"
                 "CTE %s referenced with %d columns but defined with %d"
                 cte_name
                 (List.length ref_schema)
                 arity))
  | Xtra.With_cte { ctes; cte_recursive; body } ->
      let arities =
        List.map
          (fun (n, q) -> (up n, List.length (Xtra.schema_of q)))
          ctes
      in
      let env_all = { env with ctes = arities @ env.ctes } in
      List.iteri
        (fun i (_, q) ->
          (* RECURSIVE makes every name visible in every body (mutual
             recursion); otherwise a CTE sees only earlier definitions *)
          let env_q =
            if cte_recursive then env_all
            else
              { env with ctes = List.filteri (fun j _ -> j < i) arities @ env.ctes }
          in
          check_rel buf env_q q)
        ctes;
      check_rel buf env_all body

(* ------------------------------------------------------------------ *)
(* Statement-level checks                                               *)
(* ------------------------------------------------------------------ *)

let check_assignments buf env visible ~code ~target_schema assignments =
  List.iter
    (fun (name, e) ->
      check_scalar buf env visible e;
      match
        List.find_opt
          (fun (c : Xtra.col) -> up c.Xtra.name = up name)
          target_schema
      with
      | None ->
          emit buf
            (Diag.make ~code "assignment targets unknown column %s" name)
      | Some c ->
          let te = Xtra.type_of_scalar e in
          if not (compatible c.Xtra.ty te) then
            emit buf
              (Diag.make ~code:"V505"
                 "assignment to %s (%s) from incompatible expression type %s"
                 name
                 (Dtype.to_string c.Xtra.ty)
                 (Dtype.to_string te)))
    assignments

let check_statement buf env st =
  match st with
  | Xtra.Query r -> check_rel buf env r
  | Xtra.Insert { target; target_cols; source } ->
      check_rel buf env source;
      let arity = List.length (Xtra.schema_of source) in
      if target_cols <> [] && List.length target_cols <> arity then
        emit buf
          (Diag.make ~code:"V501"
             "INSERT into %s names %d columns but source produces %d" target
             (List.length target_cols) arity)
  | Xtra.Update { assignments; extra_from; upd_pred; upd_schema; _ } ->
      Option.iter (check_rel buf env) extra_from;
      let visible =
        upd_schema
        @ (match extra_from with Some r -> Xtra.schema_of r | None -> [])
      in
      check_dup_ids buf ~where:"Update target" upd_schema;
      check_assignments buf env visible ~code:"V502" ~target_schema:upd_schema
        assignments;
      Option.iter (check_pred buf env visible ~where:"UPDATE") upd_pred
  | Xtra.Delete { extra_from; del_pred; del_schema; _ } ->
      Option.iter (check_rel buf env) extra_from;
      let visible =
        del_schema
        @ (match extra_from with Some r -> Xtra.schema_of r | None -> [])
      in
      check_dup_ids buf ~where:"Delete target" del_schema;
      Option.iter (check_pred buf env visible ~where:"DELETE") del_pred
  | Xtra.Create_table { ct_name; specs; _ } ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (s : Xtra.column_spec) ->
          let n = up s.Xtra.spec_name in
          if Hashtbl.mem seen n then
            emit buf
              (Diag.make ~code:"V503"
                 "CREATE TABLE %s declares duplicate column %s" ct_name
                 s.Xtra.spec_name)
          else Hashtbl.add seen n ();
          Option.iter (check_scalar buf env []) s.Xtra.spec_default)
        specs
  | Xtra.Create_table_as { cta_source; _ } -> check_rel buf env cta_source
  | Xtra.Merge
      {
        m_schema;
        m_source;
        m_on;
        m_matched_update;
        m_not_matched_insert;
        _;
      } ->
      check_rel buf env m_source;
      let visible = m_schema @ Xtra.schema_of m_source in
      check_dup_ids buf ~where:"Merge target" m_schema;
      check_pred buf env visible ~where:"MERGE ON" m_on;
      Option.iter
        (check_assignments buf env visible ~code:"V502" ~target_schema:m_schema)
        m_matched_update;
      Option.iter
        (fun (cols, es) ->
          List.iter (check_scalar buf env visible) es;
          if cols <> [] && List.length cols <> List.length es then
            emit buf
              (Diag.make ~code:"V504"
                 "MERGE insert names %d columns but provides %d values"
                 (List.length cols) (List.length es)))
        m_not_matched_insert
  | Xtra.Drop_table _ | Xtra.Rename_table _ | Xtra.Begin_tx | Xtra.Commit_tx
  | Xtra.Rollback_tx | Xtra.No_op _ ->
      ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

(** Validate a relational plan; diagnostics in source order. *)
let validate_rel r =
  let buf = ref [] in
  check_rel buf empty_env r;
  List.rev !buf

(** Validate a bound/transformed statement; diagnostics in source order. *)
let validate st =
  let buf = ref [] in
  check_statement buf empty_env st;
  List.rev !buf

(** [true] when the statement violates no structural invariant (warnings do
    not count). *)
let is_valid st = not (Diag.has_errors (validate st))
