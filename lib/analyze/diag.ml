(** The diagnostic type shared by both static-analysis engines: the XTRA
    plan {!Validator} and the offline workload {!Analyzer}.

    A diagnostic carries a severity, a stable code ([Vxxx] for plan-validator
    invariants, [Lxxx] for workload lint rules, [Axxx] for analyzer-level
    conditions), a human-readable message, an optional byte span into the
    source script (from {!Hyperq_sqlparser.Parser.parse_many_located}), and
    — for violations introduced by a transformer rewrite — the name of the
    rule whose fixed-point pass introduced it. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Ordering used to sort reports: errors first, then by code. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  severity : severity;
  code : string;  (** stable diagnostic code, e.g. ["V101"], ["L003"] *)
  message : string;
  span : (int * int) option;
      (** byte span [(start, stop)] of the offending statement in its source
          script; [stop] is exclusive *)
  rule : string option;
      (** the transformer rewrite rule(s) whose pass introduced the
          violation, when the validator ran inside the fixed-point driver *)
}

let make ?(severity = Error) ?span ?rule ~code fmt =
  Printf.ksprintf
    (fun message -> { severity; code; message; span; rule })
    fmt

(** Stamp [rules] (comma-joined) as the attribution of every diagnostic that
    does not already carry one. The transformer's fixed-point driver calls
    this with the rules that fired during the pass that broke the plan. *)
let attribute ~rules diags =
  match rules with
  | [] -> diags
  | rules ->
      let r = String.concat "," rules in
      List.map
        (fun d -> match d.rule with Some _ -> d | None -> { d with rule = Some r })
        diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let sort diags =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare a.code b.code
      | c -> c)
    diags

let to_string d =
  let span =
    match d.span with
    | Some (a, b) -> Printf.sprintf " [bytes %d-%d]" a b
    | None -> ""
  in
  let rule =
    match d.rule with
    | Some r -> Printf.sprintf " (introduced by rule %s)" r
    | None -> ""
  in
  Printf.sprintf "%s %s:%s %s%s"
    (severity_to_string d.severity)
    d.code span d.message rule

(* JSON rendering (shared with the analyzer report writer; hand-rolled like
   Obs.render_json so the library stays dependency-free). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let fields =
    [
      Printf.sprintf "\"severity\":\"%s\"" (severity_to_string d.severity);
      Printf.sprintf "\"code\":\"%s\"" (json_escape d.code);
      Printf.sprintf "\"message\":\"%s\"" (json_escape d.message);
    ]
    @ (match d.span with
      | Some (a, b) -> [ Printf.sprintf "\"span\":[%d,%d]" a b ]
      | None -> [])
    @
    match d.rule with
    | Some r -> [ Printf.sprintf "\"rule\":\"%s\"" (json_escape r) ]
    | None -> []
  in
  "{" ^ String.concat "," fields ^ "}"
