(** Instrumentation of the rewrite engine (paper §7.1).

    Tracks "a selection of 27 commonly used non-standard features ... from
    each of the three categories presented in Section 2.1 (translation,
    transformation, and features that require emulation in the mid tier; we
    chose 9 features of each class)". Feature occurrences are collected from
    the parser (lexical translation features), the binder, the transformer
    (fired rules) and the emulation layer, and aggregated per workload to
    regenerate Figure 8. *)

type feature_class = Translation | Transformation | Emulation

let class_to_string = function
  | Translation -> "Translation"
  | Transformation -> "Transformation"
  | Emulation -> "Emulation"

(** The 27 tracked features: exactly 9 per class. *)
let tracked : (string * feature_class) list =
  [
    (* --- translation: local, often textual rewrites ------------------- *)
    ("sel_abbreviation", Translation);
    ("dml_abbreviation", Translation);  (* INS/UPD/DEL *)
    ("bt_et_transactions", Translation);
    ("td_builtin_function_names", Translation);  (* CHARS, INDEX, OREPLACE *)
    ("td_null_functions", Translation);  (* ZEROIFNULL / NULLIFZERO *)
    ("permissive_clause_order", Translation);
    ("format_title_attributes", Translation);
    ("collect_statistics", Translation);
    ("top_n", Translation);  (* TOP n -> LIMIT n *)
    (* --- transformation: structural rewrites over XTRA ---------------- *)
    ("qualify", Transformation);
    ("td_rank", Transformation);
    ("date_int_comparison", Transformation);
    ("vector_subquery", Transformation);
    ("implicit_join", Transformation);
    ("chained_projection", Transformation);  (* named expressions *)
    ("ordinal_group_by", Transformation);  (* incl. ordinal ORDER BY *)
    ("olap_grouping_extensions", Transformation);
    ("top_ties_percent", Transformation);
    (* --- emulation: multi-statement / stateful middle-tier features --- *)
    ("macros", Emulation);
    ("recursive_query", Emulation);
    ("merge", Emulation);
    ("dml_on_views", Emulation);
    ("help_commands", Emulation);
    ("show_commands", Emulation);
    ("set_tables", Emulation);
    ("set_session", Emulation);
    ("updatable_view_ddl", Emulation);  (* CREATE/REPLACE VIEW kept virtual *)
  ]

let class_of feature = List.assoc_opt feature tracked

(* Map raw signals (binder notes, transformer rule names, emulation tags)
   onto tracked feature names. *)
let normalize = function
  | "ordinal_order_by" -> Some "ordinal_group_by"
  | "comp_date_to_int" -> Some "date_int_comparison"
  | "expand_vector_subquery" -> Some "vector_subquery"
  | "expand_grouping_sets" -> Some "olap_grouping_extensions"
  | "with_ties_to_window" | "percent_limit" -> Some "top_ties_percent"
  | "sample" -> Some "top_n"
  | "volatile_tables" | "global_temporary_tables" -> None
  | "derived_table_column_aliases" -> None
  | "casespecific_columns" | "case_insensitive_compare" -> None
  | "period_type" | "decompose_period_ddl" -> None
  | "explicit_nulls_ordering" | "interval_to_functions" -> None
  | s -> if class_of s <> None then Some s else None

(** Lexical detection of translation-class features on the raw SQL text. *)
let scan_sql_text sql : string list =
  let upper = String.uppercase_ascii sql in
  let words =
    String.split_on_char ' '
      (String.map
         (fun c ->
           match c with '\n' | '\t' | '\r' | '(' | ')' | ',' | ';' -> ' ' | c -> c)
         upper)
    |> List.filter (fun w -> w <> "")
  in
  let has w = List.mem w words in
  let found = ref [] in
  let note f = if not (List.mem f !found) then found := f :: !found in
  if has "SEL" then note "sel_abbreviation";
  if has "INS" || has "UPD" || has "DEL" then note "dml_abbreviation";
  if has "BT" || has "ET" then note "bt_et_transactions";
  if has "CHARS" || has "CHARACTERS" || has "INDEX" || has "OREPLACE" || has "NVL"
  then note "td_builtin_function_names";
  if has "ZEROIFNULL" || has "NULLIFZERO" then note "td_null_functions";
  if has "FORMAT" || has "TITLE" then note "format_title_attributes";
  if has "TOP" then note "top_n";
  (* ORDER BY textually before WHERE within one statement *)
  let find_word w =
    let rec go i = function
      | [] -> None
      | x :: tl -> if x = w then Some i else go (i + 1) tl
    in
    go 0 words
  in
  (match (find_word "ORDER", find_word "WHERE") with
  | Some o, Some w when o < w -> note "permissive_clause_order"
  | _ -> ());
  !found

(** Per-query observation: which tracked features (by class) this query
    exercised. *)
type observation = { query_features : string list }

let observe ~sql ~binder_features ~transformer_rules ~emulation_tags =
  let raw =
    scan_sql_text sql @ binder_features @ transformer_rules @ emulation_tags
  in
  let features =
    List.sort_uniq String.compare (List.filter_map normalize raw)
  in
  { query_features = features }

let classes_of_observation o =
  List.sort_uniq compare (List.filter_map class_of o.query_features)

(* --- workload-level aggregation (Figure 8) --------------------------- *)

type stats = {
  mutable total_queries : int;
  mutable feature_seen : (string * int) list;  (** feature -> #queries *)
  mutable class_affected : (feature_class * int) list;  (** class -> #queries *)
}

let create_stats () =
  { total_queries = 0; feature_seen = []; class_affected = [] }

let record ?(count = 1) stats (o : observation) =
  stats.total_queries <- stats.total_queries + count;
  List.iter
    (fun f ->
      stats.feature_seen <-
        (match List.assoc_opt f stats.feature_seen with
        | Some n -> (f, n + count) :: List.remove_assoc f stats.feature_seen
        | None -> (f, count) :: stats.feature_seen))
    o.query_features;
  List.iter
    (fun c ->
      stats.class_affected <-
        (match List.assoc_opt c stats.class_affected with
        | Some n -> (c, n + count) :: List.remove_assoc c stats.class_affected
        | None -> (c, count) :: stats.class_affected))
    (classes_of_observation o)

(** Figure 8(a): fraction of the 9 tracked features of [cls] that occur at
    least once in the workload. *)
let features_present_pct stats cls =
  let tracked_in_class =
    List.filter (fun (_, c) -> c = cls) tracked |> List.map fst
  in
  let present =
    List.filter (fun f -> List.mem_assoc f stats.feature_seen) tracked_in_class
  in
  100. *. float_of_int (List.length present)
  /. float_of_int (List.length tracked_in_class)

(** Figure 8(b): fraction of queries affected by at least one feature of
    [cls]. *)
let queries_affected_pct stats cls =
  if stats.total_queries = 0 then 0.
  else
    100.
    *. float_of_int (Option.value (List.assoc_opt cls stats.class_affected) ~default:0)
    /. float_of_int stats.total_queries
