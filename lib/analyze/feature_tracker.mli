(** Instrumentation of the rewrite engine (paper §7.1).

    Tracks 27 commonly used non-standard features — exactly 9 in each of the
    paper's three classes — by collecting signals from the parser (lexical
    translation features), the binder, the transformer (fired rules) and the
    emulation layer, then aggregating per workload to regenerate Figure 8. *)

type feature_class = Translation | Transformation | Emulation

val class_to_string : feature_class -> string

(** The 27 tracked features (9 per class). *)
val tracked : (string * feature_class) list

val class_of : string -> feature_class option

(** Map a raw signal (binder note, transformer rule name, emulation tag)
    onto a tracked feature name; [None] for untracked signals. *)
val normalize : string -> string option

(** Lexical detection of translation-class features on raw SQL text. *)
val scan_sql_text : string -> string list

type observation = { query_features : string list }

val observe :
  sql:string ->
  binder_features:string list ->
  transformer_rules:string list ->
  emulation_tags:string list ->
  observation

val classes_of_observation : observation -> feature_class list

(** Workload-level aggregation (Figure 8). *)
type stats = {
  mutable total_queries : int;
  mutable feature_seen : (string * int) list;
  mutable class_affected : (feature_class * int) list;
}

val create_stats : unit -> stats

(** Record one query's observation, optionally weighted by a repetition
    [count]. *)
val record : ?count:int -> stats -> observation -> unit

(** Figure 8(a): fraction of the 9 tracked features of the class occurring
    at least once in the workload. *)
val features_present_pct : stats -> feature_class -> float

(** Figure 8(b): fraction of queries affected by at least one feature of the
    class. *)
val queries_affected_pct : stats -> feature_class -> float
