(** Static plan-property inference over XTRA (abstract interpretation).

    A single bottom-up walk computes, for every relational operator and
    scalar expression, a conservative property lattice:

    - {b nullability} per column/expression ({!Not_null} < {!Maybe_null} >
      {!Always_null}), seeded from catalog NOT NULL constraints at [Get]
      and refined by null-rejecting predicates on the way up;
    - {b value intervals} (min/max with open/closed bounds) over the
      orderable value families — INT, DECIMAL, FLOAT, DATE, TIME,
      TIMESTAMP — describing the {e non-NULL} values an expression can
      take;
    - {b keys}: sets of column ids known to be duplicate-free in the
      operator's output (GROUP BY keys, DISTINCT, deduplicating set ops),
      plus a static row-count upper bound;
    - {b determinism} in Postgres' vocabulary (immutable / stable /
      volatile), joined over every builtin call an expression contains.

    On top of the lattice sits a three-valued-logic predicate analysis
    ({!pred_truth}) that over-approximates the set of outcomes a predicate
    can produce ({i can it be TRUE / FALSE / NULL?}). Conjunctions are
    cross-refined: each conjunct is re-evaluated in the environment implied
    by the others, which catches range contradictions such as
    [x > 5 AND x < 3] that no single conjunct reveals. The [can_true =
    false] verdict is what powers contradiction pruning, the L006 lint and
    the V601 validator code; null-rejection ({!rejects_when_null}) powers
    outer-join strengthening and V603.

    Everything here is an over-approximation: [can_true = true] means "we
    could not prove the predicate never holds", never the converse, so the
    two transformer passes below ({!contradiction_pruning},
    {!join_strengthening}) only fire on proofs. *)

open Hyperq_sqlvalue
module Xtra = Hyperq_xtra.Xtra
module Builtins = Hyperq_binder.Builtins
module Catalog = Hyperq_catalog.Catalog
module Transformer = Hyperq_transform.Transformer

module Imap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* The property lattice                                                *)
(* ------------------------------------------------------------------ *)

type nullability = Not_null | Maybe_null | Always_null

(** One interval endpoint; [incl] is false for strict bounds ([x > 5]). *)
type bound = { bval : Value.t; incl : bool }

(** Interval of the values an expression takes {e when it is not NULL}.
    [None] endpoints are unbounded. NULL itself is tracked separately by
    {!nullability}, so forcing a column to NULL never touches its interval. *)
type interval = { lo : bound option; hi : bound option }

type props = {
  null : nullability;
  ival : interval;
  det : Builtins.determinism;
}

(** Relational-operator summary: per-column properties keyed by column id,
    key sets (each a sorted duplicate-free id list), and a static row-count
    upper bound when one is known ([Some 0] = provably empty). *)
type rel_props = {
  cols : props Imap.t;
  keys : int list list;
  card_max : int option;
}

(** Over-approximated three-valued truth of a predicate. *)
type truth = { can_true : bool; can_false : bool; can_null : bool }

let top_interval = { lo = None; hi = None }
let unknown_props = { null = Maybe_null; ival = top_interval; det = Builtins.Immutable }
let truth_top = { can_true = true; can_false = true; can_null = true }

let null_join a b =
  match (a, b) with
  | Not_null, Not_null -> Not_null
  | Always_null, Always_null -> Always_null
  | _ -> Maybe_null

(* Strict (NULL-in, NULL-out) combination over operand nullabilities. *)
let null_strict args =
  if List.exists (fun n -> n = Always_null) args then Always_null
  else if List.for_all (fun n -> n = Not_null) args then Not_null
  else Maybe_null

let nullability_name = function
  | Not_null -> "not-null"
  | Maybe_null -> "nullable"
  | Always_null -> "always-null"

(* ------------------------------------------------------------------ *)
(* Interval arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let vcmp a b = Value.compare_sql a b

(* Only orderable families participate in interval reasoning. *)
let orderable v =
  match v with
  | Value.Int _ | Value.Float _ | Value.Decimal _ | Value.Date _
  | Value.Time _ | Value.Timestamp _ ->
      true
  | _ -> false

let point v =
  if orderable v then
    { lo = Some { bval = v; incl = true }; hi = Some { bval = v; incl = true } }
  else top_interval

(* Tighter of two lower bounds (interval intersection). When the bounds are
   incomparable, keeping either one over-approximates the intersection. *)
let lo_tighter a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> (
      match vcmp x.bval y.bval with
      | Some c ->
          if c > 0 then Some x
          else if c < 0 then Some y
          else Some { bval = x.bval; incl = x.incl && y.incl }
      | None -> a)

let hi_tighter a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> (
      match vcmp x.bval y.bval with
      | Some c ->
          if c < 0 then Some x
          else if c > 0 then Some y
          else Some { bval = x.bval; incl = x.incl && y.incl }
      | None -> a)

(* Looser of two lower bounds (interval union); incomparable widens. *)
let lo_looser a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y -> (
      match vcmp x.bval y.bval with
      | Some c ->
          if c < 0 then Some x
          else if c > 0 then Some y
          else Some { bval = x.bval; incl = x.incl || y.incl }
      | None -> None)

let hi_looser a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y -> (
      match vcmp x.bval y.bval with
      | Some c ->
          if c > 0 then Some x
          else if c < 0 then Some y
          else Some { bval = x.bval; incl = x.incl || y.incl }
      | None -> None)

let interval_meet a b = { lo = lo_tighter a.lo b.lo; hi = hi_tighter a.hi b.hi }
let interval_join a b = { lo = lo_looser a.lo b.lo; hi = hi_looser a.hi b.hi }

(** An interval that provably contains no value. *)
let interval_empty iv =
  match (iv.lo, iv.hi) with
  | Some l, Some h -> (
      match vcmp l.bval h.bval with
      | Some c -> c > 0 || (c = 0 && not (l.incl && h.incl))
      | None -> false)
  | _ -> false

(* Possible outcomes of comparing a value drawn from [ia] with one from
   [ib]: (can_lt, can_eq, can_gt). Missing or incomparable bounds mean
   "possible". *)
let cmp_outcomes ia ib =
  let can_lt =
    match (ia.lo, ib.hi) with
    | Some l, Some h -> (
        match vcmp l.bval h.bval with Some c -> c < 0 | None -> true)
    | _ -> true
  in
  let can_gt =
    match (ia.hi, ib.lo) with
    | Some h, Some l -> (
        match vcmp h.bval l.bval with Some c -> c > 0 | None -> true)
    | _ -> true
  in
  (* disjointness: an upper bound of one strictly below a lower bound of
     the other (counting strictness at equality) rules equality out *)
  let separated h l =
    match (h, l) with
    | Some h, Some l -> (
        match vcmp h.bval l.bval with
        | Some c -> c < 0 || (c = 0 && not (h.incl && l.incl))
        | None -> false)
    | _ -> false
  in
  let can_eq = not (separated ia.hi ib.lo || separated ib.hi ia.lo) in
  (can_lt, can_eq, can_gt)

(* Monotone interval arithmetic for + and - over orderable values. *)
let bound_arith op a b incl_of =
  match (a, b) with
  | Some x, Some y -> (
      match Value.arith op x.bval y.bval with
      | v when orderable v -> Some { bval = v; incl = incl_of x y }
      | _ -> None
      | exception _ -> None)
  | _ -> None

let interval_arith (op : Xtra.arith_op) ia ib =
  let both x y = x.incl && y.incl in
  match op with
  | Xtra.Add ->
      {
        lo = bound_arith Value.Add ia.lo ib.lo both;
        hi = bound_arith Value.Add ia.hi ib.hi both;
      }
  | Xtra.Sub ->
      {
        lo = bound_arith Value.Sub ia.lo ib.hi both;
        hi = bound_arith Value.Sub ia.hi ib.lo both;
      }
  | Xtra.Mul | Xtra.Div | Xtra.Modulo -> top_interval

let int_bound n = Some { bval = Value.Int (Int64.of_int n); incl = true }
let int_range a b = { lo = int_bound a; hi = int_bound b }

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let det_join = Builtins.determinism_join

(** Weakest determinism class of any builtin called anywhere inside a
    scalar, including subquery bodies. *)
let rec det_of_scalar s =
  let acc = ref Builtins.Immutable in
  ignore
    (Xtra.map_scalar
       (fun x ->
         (match x with
         | Xtra.Func { name; _ } -> acc := det_join !acc (Builtins.determinism name)
         | Xtra.Scalar_subquery r | Xtra.Exists r -> acc := det_join !acc (det_of_rel r)
         | Xtra.In_subquery { subquery; _ } | Xtra.Quantified { subquery; _ } ->
             acc := det_join !acc (det_of_rel subquery)
         | _ -> ());
         x)
       s);
  !acc

and det_of_rel r =
  Xtra.fold_rel
    (fun acc node ->
      match node with
      | Xtra.Filter { pred; _ } -> det_join acc (det_of_scalar_local pred)
      | Xtra.Project { proj; _ } ->
          List.fold_left (fun a (_, e) -> det_join a (det_of_scalar_local e)) acc proj
      | Xtra.Join { pred = Some p; _ } -> det_join acc (det_of_scalar_local p)
      | Xtra.Values_rel { rows; _ } ->
          List.fold_left
            (List.fold_left (fun a e -> det_join a (det_of_scalar_local e)))
            acc rows
      | Xtra.Aggregate { group_by; aggs; _ } ->
          let acc =
            List.fold_left (fun a (_, e) -> det_join a (det_of_scalar_local e)) acc group_by
          in
          List.fold_left
            (fun a (_, (g : Xtra.agg_def)) ->
              match g.Xtra.aarg with
              | Some e -> det_join a (det_of_scalar_local e)
              | None -> a)
            acc aggs
      | _ -> acc)
    Builtins.Immutable r

(* fold_rel already visits subquery rels, so the per-node scalar walk must
   not descend into them again (it would only double-count). *)
and det_of_scalar_local s =
  let acc = ref Builtins.Immutable in
  ignore
    (Xtra.map_scalar
       (fun x ->
         (match x with
         | Xtra.Func { name; _ } -> acc := det_join !acc (Builtins.determinism name)
         | _ -> ());
         x)
       s);
  !acc

let det_of_statement st =
  let acc = ref Builtins.Immutable in
  ignore
    (Xtra.rewrite_statement
       ~frel:(fun r -> r)
       ~fscalar:(fun s ->
         (match s with
         | Xtra.Func { name; _ } -> acc := det_join !acc (Builtins.determinism name)
         | _ -> ());
         s)
       st);
  !acc

(* ------------------------------------------------------------------ *)
(* Scalar inference                                                    *)
(* ------------------------------------------------------------------ *)

(* builtins with NULL-in/NULL-out semantics *)
let strict_builtin = function
  | "CHARACTER_LENGTH" | "SUBSTRING" | "UPPER" | "LOWER" | "TRIM" | "LTRIM"
  | "RTRIM" | "REVERSE" | "POSITION" | "REPLACE" | "ABS" | "ROUND" | "TRUNC"
  | "FLOOR" | "CEILING" | "SQRT" | "EXP" | "LN" | "LOG" | "POWER"
  | "ADD_MONTHS" | "ADD_DAYS" | "LAST_DAY" | "DAY_OF_WEEK" | "CONCAT"
  | "PERIOD_BEGIN" | "PERIOD_END" | "GREATEST" | "LEAST" ->
      true
  | _ -> false

type ctx = { catalog : Catalog.t option; ctes : (string * props list) list }

let no_ctx = { catalog = None; ctes = [] }

let lookup env (c : Xtra.col) =
  match Imap.find_opt c.Xtra.id env with Some p -> p | None -> unknown_props

let rec infer_scalar (cx : ctx) (env : props Imap.t) (s : Xtra.scalar) : props =
  let sub e = infer_scalar cx env e in
  match s with
  | Xtra.Const Value.Null ->
      { null = Always_null; ival = top_interval; det = Builtins.Immutable }
  | Xtra.Const v -> { null = Not_null; ival = point v; det = Builtins.Immutable }
  | Xtra.Col_ref c -> lookup env c
  | Xtra.Param _ -> unknown_props
  | Xtra.Arith (op, a, b) ->
      let pa = sub a and pb = sub b in
      {
        null = null_strict [ pa.null; pb.null ];
        ival = interval_arith op pa.ival pb.ival;
        det = det_join pa.det pb.det;
      }
  | Xtra.Cmp (_, a, b) | Xtra.Concat (a, b) ->
      let pa = sub a and pb = sub b in
      {
        null = null_strict [ pa.null; pb.null ];
        ival = top_interval;
        det = det_join pa.det pb.det;
      }
  | Xtra.Logic_and (a, b) | Xtra.Logic_or (a, b) ->
      (* 3VL AND/OR can decide despite a NULL operand (FALSE AND NULL =
         FALSE), so a nullable operand only yields Maybe_null *)
      let pa = sub a and pb = sub b in
      let null =
        match (pa.null, pb.null) with
        | Not_null, Not_null -> Not_null
        | Always_null, Always_null -> Always_null
        | _ -> Maybe_null
      in
      { null; ival = top_interval; det = det_join pa.det pb.det }
  | Xtra.Logic_not a ->
      let pa = sub a in
      { null = pa.null; ival = top_interval; det = pa.det }
  | Xtra.Is_null (a, _) ->
      let pa = sub a in
      { null = Not_null; ival = top_interval; det = pa.det }
  | Xtra.Case { branches; else_branch; _ } ->
      let det =
        List.fold_left
          (fun d (c, v) -> det_join d (det_join (sub c).det (sub v).det))
          Builtins.Immutable branches
      in
      let vals = List.map (fun (_, v) -> sub v) branches in
      let vals =
        match else_branch with
        | Some e -> sub e :: vals
        | None ->
            (* no ELSE: a fall-through produces NULL *)
            { null = Always_null; ival = top_interval; det = Builtins.Immutable }
            :: vals
      in
      List.fold_left
        (fun acc p ->
          {
            null = null_join acc.null p.null;
            ival = interval_join acc.ival p.ival;
            det = det_join acc.det p.det;
          })
        { (List.hd vals) with det }
        (List.tl vals)
  | Xtra.Cast (a, ty) ->
      let pa = sub a in
      let ival =
        if Dtype.same_family ty (Xtra.type_of_scalar a) then pa.ival
        else top_interval
      in
      { null = pa.null; ival; det = pa.det }
  | Xtra.Func { name; args; _ } -> (
      let ps = List.map sub args in
      let det =
        List.fold_left
          (fun d p -> det_join d p.det)
          (Builtins.determinism name) ps
      in
      match name with
      | "COALESCE" ->
          (* first non-NULL argument: NULL only when all are *)
          let null =
            if List.exists (fun p -> p.null = Not_null) ps then Not_null
            else if ps <> [] && List.for_all (fun p -> p.null = Always_null) ps
            then Always_null
            else Maybe_null
          in
          let ival =
            match ps with
            | [] -> top_interval
            | p :: rest ->
                List.fold_left (fun a q -> interval_join a q.ival) p.ival rest
          in
          { null; ival; det }
      | "NULLIF" ->
          let null =
            match ps with
            | p :: _ when p.null = Always_null -> Always_null
            | _ -> Maybe_null
          in
          let ival = match ps with p :: _ -> p.ival | [] -> top_interval in
          { null; ival; det }
      | "CURRENT_DATE" | "CURRENT_TIME" | "CURRENT_TIMESTAMP" | "CURRENT_USER"
        ->
          { null = Not_null; ival = top_interval; det }
      | "GREATEST" | "LEAST" ->
          let ival =
            match ps with
            | [] -> top_interval
            | p :: rest ->
                List.fold_left (fun a q -> interval_join a q.ival) p.ival rest
          in
          { null = null_strict (List.map (fun p -> p.null) ps); ival; det }
      | _ when strict_builtin name ->
          {
            null = null_strict (List.map (fun p -> p.null) ps);
            ival = top_interval;
            det;
          }
      | _ -> { null = Maybe_null; ival = top_interval; det })
  | Xtra.Extract (fld, a) ->
      let pa = sub a in
      let ival =
        match fld with
        | Xtra.Year -> top_interval
        | Xtra.Month -> int_range 1 12
        | Xtra.Day -> int_range 1 31
        | Xtra.Hour -> int_range 0 23
        | Xtra.Minute | Xtra.Second -> int_range 0 59
      in
      { null = pa.null; ival; det = pa.det }
  | Xtra.Like { arg; pattern; escape; _ } ->
      let ps =
        List.map sub (arg :: pattern :: Option.to_list escape)
      in
      {
        null = null_strict (List.map (fun p -> p.null) ps);
        ival = top_interval;
        det = List.fold_left (fun d p -> det_join d p.det) Builtins.Immutable ps;
      }
  | Xtra.In_list { arg; items; _ } ->
      let ps = List.map sub (arg :: items) in
      {
        null = null_strict (List.map (fun p -> p.null) ps);
        ival = top_interval;
        det = List.fold_left (fun d p -> det_join d p.det) Builtins.Immutable ps;
      }
  | Xtra.Scalar_subquery r ->
      (* an empty result supplies NULL, so never Not_null *)
      { null = Maybe_null; ival = top_interval; det = det_of_rel r }
  | Xtra.Exists r -> { null = Not_null; ival = top_interval; det = det_of_rel r }
  | Xtra.In_subquery { args; subquery; _ } ->
      let rp = infer_rel cx env subquery in
      let out_nulls =
        List.map (fun (c : Xtra.col) -> (lookup rp.cols c).null) (Xtra.schema_of subquery)
      in
      let arg_nulls = List.map (fun a -> (sub a).null) args in
      let null =
        if
          List.for_all (fun n -> n = Not_null) arg_nulls
          && List.for_all (fun n -> n = Not_null) out_nulls
        then Not_null
        else Maybe_null
      in
      { null; ival = top_interval; det = det_of_rel subquery }
  | Xtra.Quantified { subquery; _ } ->
      { null = Maybe_null; ival = top_interval; det = det_of_rel subquery }
  | Xtra.Agg_ref _ | Xtra.Window_ref _ -> unknown_props

(* ------------------------------------------------------------------ *)
(* Predicate truth (3VL)                                               *)
(* ------------------------------------------------------------------ *)

and truth_of (cx : ctx) (env : props Imap.t) (s : Xtra.scalar) : truth =
  match s with
  | Xtra.Const (Value.Bool true) ->
      { can_true = true; can_false = false; can_null = false }
  | Xtra.Const (Value.Bool false) ->
      { can_true = false; can_false = true; can_null = false }
  | Xtra.Const Value.Null ->
      { can_true = false; can_false = false; can_null = true }
  | Xtra.Logic_and (a, b) ->
      let ta = truth_of cx env a and tb = truth_of cx env b in
      {
        can_true = ta.can_true && tb.can_true;
        can_false = ta.can_false || tb.can_false;
        can_null =
          (ta.can_null && (tb.can_true || tb.can_null))
          || (tb.can_null && (ta.can_true || ta.can_null));
      }
  | Xtra.Logic_or (a, b) ->
      let ta = truth_of cx env a and tb = truth_of cx env b in
      {
        can_true = ta.can_true || tb.can_true;
        can_false = ta.can_false && tb.can_false;
        can_null =
          (ta.can_null && (tb.can_false || tb.can_null))
          || (tb.can_null && (ta.can_false || ta.can_null));
      }
  | Xtra.Logic_not a ->
      let ta = truth_of cx env a in
      { can_true = ta.can_false; can_false = ta.can_true; can_null = ta.can_null }
  | Xtra.Is_null (e, negated) ->
      let p = infer_scalar cx env e in
      let base =
        {
          can_true = p.null <> Not_null;
          can_false = p.null <> Always_null;
          can_null = false;
        }
      in
      if negated then
        { base with can_true = base.can_false; can_false = base.can_true }
      else base
  | Xtra.Cmp (op, a, b) ->
      let pa = infer_scalar cx env a and pb = infer_scalar cx env b in
      if pa.null = Always_null || pb.null = Always_null then
        { can_true = false; can_false = false; can_null = true }
      else
        let lt, eq, gt = cmp_outcomes pa.ival pb.ival in
        let t, f =
          match op with
          | Xtra.Eq -> (eq, lt || gt)
          | Xtra.Neq -> (lt || gt, eq)
          | Xtra.Lt -> (lt, eq || gt)
          | Xtra.Lte -> (lt || eq, gt)
          | Xtra.Gt -> (gt, lt || eq)
          | Xtra.Gte -> (gt || eq, lt)
        in
        {
          can_true = t;
          can_false = f;
          can_null = pa.null <> Not_null || pb.null <> Not_null;
        }
  | Xtra.Exists _ -> { can_true = true; can_false = true; can_null = false }
  | _ ->
      let p = infer_scalar cx env s in
      if p.null = Always_null then
        { can_true = false; can_false = false; can_null = true }
      else { truth_top with can_null = p.null <> Not_null }

(* ------------------------------------------------------------------ *)
(* Conjunct-level refinement                                           *)
(* ------------------------------------------------------------------ *)

and conjuncts s =
  match s with
  | Xtra.Logic_and (a, b) -> conjuncts a @ conjuncts b
  | _ -> [ s ]

and flip_cmp (op : Xtra.cmp_op) =
  match op with
  | Xtra.Eq -> Xtra.Eq
  | Xtra.Neq -> Xtra.Neq
  | Xtra.Lt -> Xtra.Gt
  | Xtra.Lte -> Xtra.Gte
  | Xtra.Gt -> Xtra.Lt
  | Xtra.Gte -> Xtra.Lte

(* Column ids referenced directly (not through subqueries) by a scalar. *)
and direct_cols s =
  let acc = ref [] in
  ignore
    (Xtra.map_scalar
       (fun x ->
         (match x with
         | Xtra.Col_ref c when not (List.mem c.Xtra.id !acc) ->
             acc := c.Xtra.id :: !acc
         | _ -> ());
         x)
       s);
  !acc

(** Does forcing every column in [ids] to NULL leave [pred] unable to be
    TRUE? (the SQL definition of a null-rejecting predicate) *)
and rejects_when_null cx env ids pred =
  if ids = [] then false
  else
    let env' =
      List.fold_left
        (fun e id ->
          Imap.add id
            { null = Always_null; ival = top_interval; det = Builtins.Immutable }
            e)
        env ids
    in
    not (truth_of cx env' pred).can_true

(* Refine [env] with the constraint that one conjunct holds (its rows pass
   the filter): intersect column intervals with implied ranges and mark
   null-rejected columns Not_null. *)
and refine_conjunct cx env c =
  let update id f env =
    let p = match Imap.find_opt id env with Some p -> p | None -> unknown_props in
    Imap.add id (f p) env
  in
  let apply_cmp env op (col : Xtra.col) rhs =
    let pr = infer_scalar cx env rhs in
    (* the constraint interval only matters if the rhs can't mention the
       column in a way that invalidates it — deriving rhs's interval from
       [env] is sound regardless, so no occurs-check is needed *)
    let constrain (p : props) =
      let iv = pr.ival in
      let ival =
        match op with
        | Xtra.Eq -> interval_meet p.ival iv
        | Xtra.Lt ->
            interval_meet p.ival
              { lo = None; hi = Option.map (fun b -> { b with incl = false }) iv.hi }
        | Xtra.Lte -> interval_meet p.ival { lo = None; hi = iv.hi }
        | Xtra.Gt ->
            interval_meet p.ival
              { lo = Option.map (fun b -> { b with incl = false }) iv.lo; hi = None }
        | Xtra.Gte -> interval_meet p.ival { lo = iv.lo; hi = None }
        | Xtra.Neq -> p.ival
      in
      { p with ival }
    in
    update col.Xtra.id constrain env
  in
  let env =
    match c with
    | Xtra.Cmp (op, Xtra.Col_ref col, rhs) -> apply_cmp env op col rhs
    | Xtra.Cmp (op, lhs, Xtra.Col_ref col) -> apply_cmp env (flip_cmp op) col lhs
    | Xtra.Is_null (Xtra.Col_ref col, false) ->
        update col.Xtra.id (fun p -> { p with null = Always_null }) env
    | Xtra.In_list { arg = Xtra.Col_ref col; items; negated = false } ->
        let ivals = List.map (fun i -> (infer_scalar cx env i).ival) items in
        let union =
          match ivals with
          | [] -> top_interval
          | iv :: rest -> List.fold_left interval_join iv rest
        in
        update col.Xtra.id (fun p -> { p with ival = interval_meet p.ival union }) env
    | _ -> env
  in
  (* generic null rejection, one column at a time (capped for pathological
     predicates) *)
  let ids = direct_cols c in
  let ids = if List.length ids > 8 then [] else ids in
  List.fold_left
    (fun env id ->
      if rejects_when_null cx env [ id ] c then
        update id (fun p -> { p with null = Not_null }) env
      else env)
    env ids

(** Truth of a whole predicate. [can_false]/[can_null] come from plain
    Kleene evaluation; [can_true] additionally requires every conjunct to
    remain satisfiable in the environment refined by its co-conjuncts,
    which catches cross-conjunct range contradictions. *)
and pred_truth cx env pred =
  let base = truth_of cx env pred in
  let cs = conjuncts pred in
  let cross_ok =
    if List.length cs < 2 || List.length cs > 16 then true
    else
      List.for_all
        (fun c ->
          let env' =
            List.fold_left
              (fun e o -> if o == c then e else refine_conjunct cx e o)
              env cs
          in
          (truth_of cx env' c).can_true)
        cs
  in
  { base with can_true = base.can_true && cross_ok }

(* ------------------------------------------------------------------ *)
(* Relational inference                                                *)
(* ------------------------------------------------------------------ *)

and refine_by_pred cx env pred =
  List.fold_left (refine_conjunct cx) env (conjuncts pred)

and schema_ids r = List.map (fun (c : Xtra.col) -> c.Xtra.id) (Xtra.schema_of r)

and add_key ids keys =
  let k = List.sort_uniq compare ids in
  if k = [] || List.mem k keys then keys else k :: keys

and infer_rel (cx : ctx) (outer : props Imap.t) (r : Xtra.rel) : rel_props =
  match r with
  | Xtra.Get { table; table_schema; _ } ->
      let cols =
        List.fold_left
          (fun m (c : Xtra.col) ->
            let null =
              match cx.catalog with
              | None -> Maybe_null
              | Some cat -> (
                  match Catalog.find_table cat table with
                  | None -> Maybe_null
                  | Some tbl -> (
                      match Catalog.column tbl c.Xtra.name with
                      | Some col when col.Catalog.col_not_null -> Not_null
                      | _ -> Maybe_null))
            in
            Imap.add c.Xtra.id { unknown_props with null } m)
          Imap.empty table_schema
      in
      { cols; keys = []; card_max = None }
  | Xtra.Values_rel { rows; values_schema } ->
      let n = List.length rows in
      let cols =
        List.mapi
          (fun i (c : Xtra.col) ->
            let cell_props =
              List.filter_map
                (fun row ->
                  match List.nth_opt row i with
                  | Some e -> Some (infer_scalar cx outer e)
                  | None -> None)
                rows
            in
            let p =
              match cell_props with
              | [] -> { unknown_props with null = Not_null } (* vacuous *)
              | p :: rest ->
                  List.fold_left
                    (fun a q ->
                      {
                        null = null_join a.null q.null;
                        ival = interval_join a.ival q.ival;
                        det = det_join a.det q.det;
                      })
                    p rest
            in
            (c.Xtra.id, p))
          values_schema
      in
      {
        cols = List.fold_left (fun m (id, p) -> Imap.add id p m) Imap.empty cols;
        keys = [];
        card_max = Some n;
      }
  | Xtra.Filter { input; pred } ->
      let ip = infer_rel cx outer input in
      let env = Imap.union (fun _ inner _ -> Some inner) ip.cols outer in
      let t = pred_truth cx env pred in
      let refined = refine_by_pred cx env pred in
      let cols =
        Imap.mapi
          (fun id p ->
            match Imap.find_opt id refined with Some q -> q | None -> p)
          ip.cols
      in
      {
        cols;
        keys = ip.keys;
        card_max = (if not t.can_true then Some 0 else ip.card_max);
      }
  | Xtra.Project { input; proj } ->
      let ip = infer_rel cx outer input in
      let env = Imap.union (fun _ inner _ -> Some inner) ip.cols outer in
      let cols =
        List.fold_left
          (fun m ((c : Xtra.col), e) -> Imap.add c.Xtra.id (infer_scalar cx env e) m)
          Imap.empty proj
      in
      (* keys survive when every member is forwarded as a bare column ref *)
      let fwd =
        List.filter_map
          (fun ((c : Xtra.col), e) ->
            match e with
            | Xtra.Col_ref src -> Some (src.Xtra.id, c.Xtra.id)
            | _ -> None)
          proj
      in
      let keys =
        List.filter_map
          (fun k ->
            let mapped = List.filter_map (fun id -> List.assoc_opt id fwd) k in
            if List.length mapped = List.length k then
              Some (List.sort_uniq compare mapped)
            else None)
          ip.keys
      in
      { cols; keys; card_max = ip.card_max }
  | Xtra.Join { kind; left; right; pred } ->
      let lp = infer_rel cx outer left and rp = infer_rel cx outer right in
      let force_null m =
        Imap.map (fun (p : props) -> { p with null = null_join p.null Always_null }) m
      in
      let lcols, rcols =
        match kind with
        | Xtra.Inner | Xtra.Cross -> (lp.cols, rp.cols)
        | Xtra.Left_outer -> (lp.cols, force_null rp.cols)
        | Xtra.Right_outer -> (force_null lp.cols, rp.cols)
        | Xtra.Full_outer -> (force_null lp.cols, force_null rp.cols)
      in
      let cols = Imap.union (fun _ a _ -> Some a) lcols rcols in
      let env = Imap.union (fun _ inner _ -> Some inner) cols outer in
      let cols, card_pred =
        match (kind, pred) with
        | (Xtra.Inner | Xtra.Cross), Some p ->
            let t = pred_truth cx env p in
            let refined = refine_by_pred cx env p in
            ( Imap.mapi
                (fun id q ->
                  match Imap.find_opt id refined with Some x -> x | None -> q)
                cols,
              if not t.can_true then Some 0 else None )
        | _ -> (cols, None)
      in
      let pair_keys =
        match kind with
        | Xtra.Full_outer -> []
        | _ ->
            List.concat_map
              (fun kl -> List.map (fun kr -> List.sort_uniq compare (kl @ kr)) rp.keys)
              lp.keys
      in
      let side_keys =
        let lk =
          if rp.card_max <> None && rp.card_max <= Some 1 && kind <> Xtra.Full_outer
          then lp.keys
          else []
        in
        let rk =
          if
            lp.card_max <> None
            && lp.card_max <= Some 1
            && (kind = Xtra.Inner || kind = Xtra.Cross || kind = Xtra.Right_outer)
          then rp.keys
          else []
        in
        lk @ rk
      in
      let card_max =
        match card_pred with
        | Some 0 -> Some 0
        | _ -> (
            match (lp.card_max, rp.card_max) with
            | Some a, Some b when a * b >= 0 -> Some (a * b)
            | Some 0, _ when kind = Xtra.Inner || kind = Xtra.Cross -> Some 0
            | _, Some 0 when kind = Xtra.Inner || kind = Xtra.Cross -> Some 0
            | _ -> None)
      in
      { cols; keys = pair_keys @ side_keys; card_max }
  | Xtra.Aggregate { input; group_by; aggs; grouping_sets } ->
      let ip = infer_rel cx outer input in
      let env = Imap.union (fun _ inner _ -> Some inner) ip.cols outer in
      let gcols =
        List.map
          (fun ((c : Xtra.col), e) ->
            let p = infer_scalar cx env e in
            let p =
              (* ROLLUP/CUBE-style grouping sets NULL-fill absent keys *)
              if grouping_sets <> None then { p with null = null_join p.null Always_null }
              else p
            in
            (c.Xtra.id, p))
          group_by
      in
      let acols =
        List.map
          (fun ((c : Xtra.col), (a : Xtra.agg_def)) ->
            let arg_p = Option.map (infer_scalar cx env) a.Xtra.aarg in
            let p =
              match a.Xtra.afunc with
              | Xtra.Count | Xtra.Count_star ->
                  {
                    null = Not_null;
                    ival = { lo = int_bound 0; hi = None };
                    det = Builtins.Immutable;
                  }
              | Xtra.Min | Xtra.Max ->
                  (* a group is never empty, so MIN/MAX are NULL only when
                     the argument can be *)
                  Option.value arg_p ~default:unknown_props
              | Xtra.Sum | Xtra.Avg ->
                  let base = Option.value arg_p ~default:unknown_props in
                  { null = base.null; ival = top_interval; det = base.det }
            in
            (c.Xtra.id, p))
          aggs
      in
      let cols =
        List.fold_left (fun m (id, p) -> Imap.add id p m) Imap.empty (gcols @ acols)
      in
      let keys =
        if grouping_sets <> None then []
        else if group_by = [] then []
        else [ List.sort_uniq compare (List.map fst gcols) ]
      in
      let card_max =
        if group_by = [] && grouping_sets = None then Some 1
        else
          match ip.card_max with Some n -> Some n | None -> None
      in
      { cols; keys; card_max }
  | Xtra.Window { input; windows } ->
      let ip = infer_rel cx outer input in
      let wcols =
        List.map
          (fun ((c : Xtra.col), (w : Xtra.window_def)) ->
            let p =
              match w.Xtra.wfunc with
              | Xtra.W_rank | Xtra.W_dense_rank | Xtra.W_row_number ->
                  {
                    null = Not_null;
                    ival = { lo = int_bound 1; hi = None };
                    det = Builtins.Immutable;
                  }
              | _ -> unknown_props
            in
            (c.Xtra.id, p))
          windows
      in
      {
        cols = List.fold_left (fun m (id, p) -> Imap.add id p m) ip.cols wcols;
        keys = ip.keys;
        card_max = ip.card_max;
      }
  | Xtra.Sort { input; _ } -> infer_rel cx outer input
  | Xtra.Limit { input; count; _ } ->
      let ip = infer_rel cx outer input in
      let card_max =
        match count with
        | Some (Xtra.Const (Value.Int n)) when Int64.compare n 0L >= 0 ->
            let n = Int64.to_int n in
            Some (match ip.card_max with Some m -> min m n | None -> n)
        | _ -> ip.card_max
      in
      { ip with card_max }
  | Xtra.Distinct { input } ->
      let ip = infer_rel cx outer input in
      { ip with keys = add_key (schema_ids r) ip.keys }
  | Xtra.Set_operation { op; all; left; right } ->
      let lp = infer_rel cx outer left and rp = infer_rel cx outer right in
      let ls = Xtra.schema_of left and rs = Xtra.schema_of right in
      let cols =
        match op with
        | Xtra.Union ->
            (* result draws from both branches, positionally *)
            List.fold_left2
              (fun m (lc : Xtra.col) (rc : Xtra.col) ->
                let a = lookup lp.cols lc and b = lookup rp.cols rc in
                Imap.add lc.Xtra.id
                  {
                    null = null_join a.null b.null;
                    ival = interval_join a.ival b.ival;
                    det = det_join a.det b.det;
                  }
                  m)
              Imap.empty ls
              (if List.length ls = List.length rs then rs else ls)
        | Xtra.Intersect | Xtra.Except -> lp.cols
      in
      let keys = if all then [] else [ List.sort_uniq compare (List.map (fun (c : Xtra.col) -> c.Xtra.id) ls) ] in
      let card_max =
        match op with
        | Xtra.Union -> (
            match (lp.card_max, rp.card_max) with
            | Some a, Some b -> Some (a + b)
            | _ -> None)
        | Xtra.Intersect | Xtra.Except -> lp.card_max
      in
      { cols; keys; card_max }
  | Xtra.Cte_ref { cte_name; ref_schema } -> (
      match List.assoc_opt (String.uppercase_ascii cte_name) cx.ctes with
      | Some def_props when List.length def_props = List.length ref_schema ->
          let cols =
            List.fold_left2
              (fun m (c : Xtra.col) p -> Imap.add c.Xtra.id p m)
              Imap.empty ref_schema def_props
          in
          { cols; keys = []; card_max = None }
      | _ ->
          let cols =
            List.fold_left
              (fun m (c : Xtra.col) -> Imap.add c.Xtra.id unknown_props m)
              Imap.empty ref_schema
          in
          { cols; keys = []; card_max = None })
  | Xtra.With_cte { ctes; cte_recursive; body } ->
      let cx' =
        if cte_recursive then cx
        else
          List.fold_left
            (fun cx (name, q) ->
              let qp = infer_rel cx outer q in
              let positional =
                List.map (fun (c : Xtra.col) -> lookup qp.cols c) (Xtra.schema_of q)
              in
              { cx with ctes = (String.uppercase_ascii name, positional) :: cx.ctes })
            cx ctes
      in
      infer_rel cx' outer body

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let rel_props ?catalog r = infer_rel { no_ctx with catalog } Imap.empty r

let scalar_props ?catalog ~env s = infer_scalar { no_ctx with catalog } env s

let predicate_truth ?catalog ~env pred = pred_truth { no_ctx with catalog } env pred

(** Environment (column props) visible to predicates sitting directly on
    top of [r]. *)
let env_of ?catalog r = (rel_props ?catalog r).cols

(** Is [pred] null-rejecting over the columns [ids]? *)
let null_rejected ?catalog ~env ids pred =
  rejects_when_null { no_ctx with catalog } env ids pred

(* ------------------------------------------------------------------ *)
(* Transformer passes                                                  *)
(* ------------------------------------------------------------------ *)

(** Contradiction pruning: a [Filter] whose predicate provably can never be
    TRUE filters out every row, so the whole subtree collapses to a
    constant-empty relation with the same schema. Correlated references to
    enclosing scopes are treated as unknown (sound: they can only make the
    proof fail). *)
(* Does a predicate test nullness anywhere? Only then can the *input's*
   inferred column properties (catalog NOT NULL marks, null-supplying
   shapes below) turn a satisfiable-looking predicate into a
   contradiction, so only then is the full subtree inference worth its
   cost on the hot translate path. Interval contradictions
   ([x > 5 AND x < 3]) come from cross-refining the predicate's own
   conjuncts and need no input environment at all. *)
let rec mentions_is_null s =
  match s with
  | Xtra.Is_null _ -> true
  | Xtra.Arith (_, a, b)
  | Xtra.Cmp (_, a, b)
  | Xtra.Logic_and (a, b)
  | Xtra.Logic_or (a, b)
  | Xtra.Concat (a, b) ->
      mentions_is_null a || mentions_is_null b
  | Xtra.Logic_not a | Xtra.Cast (a, _) | Xtra.Extract (_, a) ->
      mentions_is_null a
  | Xtra.Func { args; _ } -> List.exists mentions_is_null args
  | Xtra.Case { branches; else_branch; _ } ->
      List.exists (fun (c, v) -> mentions_is_null c || mentions_is_null v) branches
      || (match else_branch with Some e -> mentions_is_null e | None -> false)
  | Xtra.In_list { arg; items; _ } ->
      mentions_is_null arg || List.exists mentions_is_null items
  | Xtra.Like { arg; pattern; escape; _ } ->
      mentions_is_null arg || mentions_is_null pattern
      || (match escape with Some e -> mentions_is_null e | None -> false)
  (* subquery bodies don't matter: the env refinement only reaches the
     predicate's direct column refs *)
  | _ -> false

let range_of_cmp op v =
  match (op : Xtra.cmp_op) with
  | Xtra.Eq -> point v
  | Xtra.Lt -> { lo = None; hi = Some { bval = v; incl = false } }
  | Xtra.Lte -> { lo = None; hi = Some { bval = v; incl = true } }
  | Xtra.Gt -> { lo = Some { bval = v; incl = false }; hi = None }
  | Xtra.Gte -> { lo = Some { bval = v; incl = true }; hi = None }
  | Xtra.Neq -> top_interval

(* A conjunct of shape [col OP const] (either orientation), as the column
   id and the interval the conjunct confines it to. *)
let col_range_conjunct c =
  match c with
  | Xtra.Cmp (op, Xtra.Col_ref col, Xtra.Const v) when orderable v ->
      Some (col.Xtra.id, range_of_cmp op v)
  | Xtra.Cmp (op, Xtra.Const v, Xtra.Col_ref col) when orderable v ->
      Some (col.Xtra.id, range_of_cmp (flip_cmp op) v)
  | _ -> None

let contradiction_pruning ?catalog ctx r =
  match r with
  | Xtra.Filter { input = Xtra.Values_rel { rows = []; _ }; _ } ->
      (* already the canonical empty shape; leave it alone *)
      None
  | Xtra.Filter { input; pred } ->
      let cx = { no_ctx with catalog } in
      let cs = conjuncts pred in
      (* Triage before any real inference runs — this pass sits on every
         Transformer fixed-point iteration of the translate path, so the
         common satisfiable filter must exit in a few comparisons. A
         contradiction can only come from (a) a column-free conjunct that
         evaluates to FALSE/NULL, (b) one column's [col OP const] ranges
         with an empty intersection — computed right here with one
         Hashtbl of interval meets, so the full 3VL analysis only ever
         runs to confirm an actual clash — or (c) a nullness test
         refuted by the input's inferred properties. *)
      let const_false =
        List.exists
          (fun c ->
            direct_cols c = [] && not (truth_of cx Imap.empty c).can_true)
          cs
      in
      let range_clash =
        match cs with
        | [] | [ _ ] -> false
        | _ ->
            let tbl = Hashtbl.create 8 in
            List.exists
              (fun c ->
                match col_range_conjunct c with
                | None -> false
                | Some (id, iv) ->
                    let cur =
                      try Hashtbl.find tbl id with Not_found -> top_interval
                    in
                    let met = interval_meet cur iv in
                    Hashtbl.replace tbl id met;
                    interval_empty met)
              cs
      in
      let t =
        if const_false then { can_true = false; can_false = true; can_null = true }
        else if range_clash then pred_truth cx Imap.empty pred
        else truth_top
      in
      let t =
        if t.can_true && mentions_is_null pred then
          pred_truth cx (env_of ?catalog input) pred
        else t
      in
      if not t.can_true then begin
        Transformer.fired ctx "contradiction_pruning";
        Some (Xtra.Values_rel { rows = []; values_schema = Xtra.schema_of input })
      end
      else None
  | _ -> None

(** Outer-join strengthening: a post-join predicate that rejects rows whose
    null-supplied side is entirely NULL makes the corresponding outer
    preservation unobservable, so the join collapses toward INNER
    (paper-standard outer-join simplification, derived here from the
    inferred 3VL truth rather than syntactic special cases). *)
let join_strengthening ?catalog ctx r =
  match r with
  | Xtra.Filter
      {
        input = Xtra.Join ({ kind; left; right; _ } as j);
        pred;
      }
    when kind = Xtra.Left_outer || kind = Xtra.Right_outer
         || kind = Xtra.Full_outer ->
      (* The empty environment is enough: null rejection is decided by
         forcing the candidate side's columns to Always_null inside the
         predicate, which needs no facts about the input. Extra input
         facts could only prove *more* rejections, never unsound ones, so
         skipping the (expensive) subtree inference just makes the pass
         conservative. *)
      let env = Imap.empty in
      let ids side = List.map (fun (c : Xtra.col) -> c.Xtra.id) (Xtra.schema_of side) in
      let rejects side_ids =
        rejects_when_null { no_ctx with catalog } env side_ids pred
      in
      let new_kind =
        match kind with
        | Xtra.Left_outer -> if rejects (ids right) then Some Xtra.Inner else None
        | Xtra.Right_outer -> if rejects (ids left) then Some Xtra.Inner else None
        | Xtra.Full_outer -> (
            match (rejects (ids right), rejects (ids left)) with
            | true, true -> Some Xtra.Inner
            | true, false -> Some Xtra.Right_outer
            | false, true -> Some Xtra.Left_outer
            | false, false -> None)
        | _ -> None
      in
      (match new_kind with
      | Some k ->
          Transformer.fired ctx "join_strengthening";
          Some (Xtra.Filter { input = Xtra.Join { j with kind = k }; pred })
      | None -> None)
  | _ -> None

(** The inference-derived relational passes, in application order, for
    wiring into {!Transformer.run}'s [?extra_rel_rules]. Passing the live
    catalog lets the proofs use NOT NULL column constraints. *)
let rel_passes ?catalog () =
  [ contradiction_pruning ?catalog; join_strengthening ?catalog ]
