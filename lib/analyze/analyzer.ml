(** Offline workload compatibility analyzer (paper §2.1, Figure 2).

    Scans a SQL script without executing anything: each statement is parsed,
    fingerprinted with {!Feature_tracker} signals, bound against a virtual
    catalog maintained from the script's own DDL, and joined against every
    {!Capability.t} profile to classify how Hyper-Q would serve it on that
    target:

    - [Direct]: passes through with at most syntactic re-rendering;
    - [Rewrite]: needs binder/transformer rewrites (single statement out);
    - [Emulate]: needs the multi-statement/stateful middle tier (§6);
    - [Unsupported]: cannot be served (parse/bind failure).

    On top of the classification it runs the {!Validator} over every bound
    plan (and over each target's transformed plan) and a set of lint rules
    for porting hazards; the aggregate report reproduces the Figure 2
    support percentages straight from the live capability matrices. *)

open Hyperq_sqlvalue
module Ast = Hyperq_sqlparser.Ast
module Dialect = Hyperq_sqlparser.Dialect
module Parser = Hyperq_sqlparser.Parser
module Xtra = Hyperq_xtra.Xtra
module Catalog = Hyperq_catalog.Catalog
module Binder = Hyperq_binder.Binder
module Builtins = Hyperq_binder.Builtins
module Transformer = Hyperq_transform.Transformer
module Capability = Hyperq_transform.Capability
module Serializer = Hyperq_serialize.Serializer

type support = Direct | Rewrite | Emulate | Unsupported

let support_to_string = function
  | Direct -> "direct"
  | Rewrite -> "rewrite"
  | Emulate -> "emulate"
  | Unsupported -> "unsupported"

type stmt_report = {
  sr_index : int;
  sr_kind : string;  (** {!Ast.statement_kind}, or ["PARSE ERROR"] *)
  sr_span : int * int;  (** byte span of the statement in the script *)
  sr_features : string list;  (** tracked features the statement exercises *)
  sr_support : (string * support) list;  (** per-target classification *)
  sr_rules : (string * string list) list;
      (** per-target transformer rules that fired *)
  sr_diags : Diag.t list;
}

type target_summary = {
  ts_name : string;
  ts_direct : int;
  ts_rewrite : int;
  ts_emulate : int;
  ts_unsupported : int;
  ts_compat_pct : float;  (** share of statements served at all *)
}

type report = {
  rep_script : string;
  rep_targets : Capability.t list;
  rep_statements : stmt_report list;
  rep_script_diags : Diag.t list;  (** script-level (e.g. parse failure) *)
}

(* ------------------------------------------------------------------ *)
(* Feature → capability join                                            *)
(* ------------------------------------------------------------------ *)

(* Is the observed feature signal natively available on the target, i.e.
   servable without a rewrite? Unknown signals conservatively require a
   rewrite. The reference profile serves its own dialect natively. *)
let feature_native (cap : Capability.t) feature =
  if cap.Capability.name = "teradata" then true
  else
    match feature with
    | "qualify" -> cap.Capability.qualify_clause
    | "implicit_join" -> cap.Capability.implicit_joins
    | "chained_projection" -> cap.Capability.named_expressions
    | "derived_table_column_aliases" ->
        cap.Capability.derived_table_column_aliases
    | "merge" -> cap.Capability.merge_stmt
    | "recursive_query" -> cap.Capability.recursive_cte
    | "set_tables" -> cap.Capability.set_tables
    | "macros" -> cap.Capability.macros
    | "period_type" -> cap.Capability.period_type
    | "vector_subquery" -> cap.Capability.vector_subquery
    | "olap_grouping_extensions" -> cap.Capability.grouping_sets
    | "top_n" -> cap.Capability.top_n
    | "date_int_comparison" -> cap.Capability.date_int_comparison
    | "ordinal_group_by" | "ordinal_order_by" -> cap.Capability.ordinal_group_by
    | "casespecific_columns" | "case_insensitive_compare" ->
        cap.Capability.case_insensitive_collation
    | _ -> false

let normalize_features signals =
  List.sort_uniq compare (List.filter_map Feature_tracker.normalize signals)

(* ------------------------------------------------------------------ *)
(* Lint rules (AST-level porting hazards)                               *)
(* ------------------------------------------------------------------ *)

let lint ~span add (ast : Ast.statement) =
  let warn code fmt = Printf.ksprintf (fun m ->
      add (Diag.make ~severity:Diag.Warning ~span ~code "%s" m)) fmt
  in
  let rec lint_query (q : Ast.query) =
    List.iter (fun (c : Ast.cte) -> lint_query c.Ast.cte_query) q.Ast.ctes;
    lint_body ~ordered:(q.Ast.order_by <> []) q.Ast.body
  and lint_body ~ordered = function
    | Ast.Q_select s ->
        (match s.Ast.top with
        | Some _ when not ordered ->
            warn "L001" "TOP without ORDER BY returns nondeterministic rows"
        | _ -> ());
        (match s.Ast.from with
        | _ :: _ :: _ ->
            if s.Ast.where = None then
              warn "L002"
                "comma-separated FROM without WHERE is a cross join; use \
                 explicit JOIN syntax"
            else
              warn "L002"
                "implicit (comma) join syntax; not accepted by every target"
        | _ -> ());
        List.iter lint_table_ref s.Ast.from
    | Ast.Q_setop (_, _, a, b) ->
        (* a branch-level TOP is nondeterministic regardless of the outer
           ORDER BY, which sorts only the combined result *)
        lint_body ~ordered:false a;
        lint_body ~ordered:false b
    | Ast.Q_values _ -> ()
  and lint_table_ref = function
    | Ast.T_named _ -> ()
    | Ast.T_subquery { query; _ } -> lint_query query
    | Ast.T_join { left; right; _ } ->
        lint_table_ref left;
        lint_table_ref right
  in
  match ast with
  | Ast.S_select q -> lint_query q
  | Ast.S_insert { source = Ast.Ins_query q; _ } -> lint_query q
  | Ast.S_create_table_as { query; _ } -> lint_query query
  | Ast.S_create_view { query; _ } -> lint_query query
  | Ast.S_update { where = None; _ } ->
      warn "L005" "UPDATE without WHERE modifies every row"
  | Ast.S_delete { where = None; _ } ->
      warn "L005" "DELETE without WHERE removes every row"
  | Ast.S_create_table { kind = Ast.Persistent { set_semantics = true }; name; _ }
    ->
      warn "L004"
        "SET table %s relies on automatic row deduplication; inserts need \
         emulation on targets without SET semantics"
        (List.nth name (List.length name - 1))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Inference-derived lints (bound-plan level)                           *)
(* ------------------------------------------------------------------ *)

(* L006/L007 need the bound XTRA plan and the property inference: a
   predicate is "always false" only under 3VL + interval reasoning, and
   the NOT IN trap depends on the inferred nullability of the subquery's
   output column. Inference failures are swallowed here — the validator
   reports them as V610. *)
let lint_bound ~span ~catalog add (bound : Xtra.statement) =
  let warn code fmt =
    Printf.ksprintf
      (fun m -> add (Diag.make ~severity:Diag.Warning ~span ~code "%s" m))
      fmt
  in
  let check_filter input pred =
    try
      let env = Infer.env_of ~catalog input in
      let t = Infer.predicate_truth ~catalog ~env pred in
      if not t.Infer.can_true then
        warn "L006"
          "predicate is always false; this part of the query returns no rows"
    with _ -> ()
  in
  let check_not_in subquery =
    try
      let rp = Infer.rel_props ~catalog subquery in
      let nullable =
        List.exists
          (fun (c : Xtra.col) ->
            (Infer.lookup rp.Infer.cols c).Infer.null <> Infer.Not_null)
          (Xtra.schema_of subquery)
      in
      if nullable then
        warn "L007"
          "NOT IN over a nullable subquery column silently yields no rows \
           whenever the subquery produces a NULL; use NOT EXISTS"
    with _ -> ()
  in
  ignore
    (Xtra.rewrite_statement
       ~frel:(fun r ->
         (match r with
         | Xtra.Filter { input; pred } -> check_filter input pred
         | _ -> ());
         r)
       ~fscalar:(fun s ->
         (match s with
         | Xtra.In_subquery { negated = true; subquery; _ } ->
             check_not_in subquery
         | _ -> ());
         s)
       bound);
  match bound with
  | Xtra.Update { upd_pred = Some p; _ } | Xtra.Delete { del_pred = Some p; _ }
    -> (
      try
        let t = Infer.predicate_truth ~catalog ~env:Infer.Imap.empty p in
        if not t.Infer.can_true then
          warn "L006" "predicate is always false; the statement affects no rows"
      with _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Virtual catalog maintenance from the script's own DDL                *)
(* ------------------------------------------------------------------ *)

let catalog_column_of_ast (c : Ast.column_def) : Catalog.column =
  {
    Catalog.col_name = String.uppercase_ascii c.Ast.col_name;
    col_type = Binder.dtype_of_typename c.Ast.col_type;
    col_not_null = c.Ast.col_not_null;
    col_default = c.Ast.col_default;
    col_case_specific = c.Ast.col_case_specific;
  }

let apply_ddl catalog (ast : Ast.statement) (bound : Xtra.statement) =
  match (ast, bound) with
  | Ast.S_create_table { columns; kind; _ }, Xtra.Create_table { ct_name; _ } ->
      Catalog.replace_table catalog
        {
          Catalog.tbl_name = ct_name;
          tbl_columns = List.map catalog_column_of_ast columns;
          tbl_set_semantics =
            (match kind with
            | Ast.Persistent { set_semantics } -> set_semantics
            | _ -> false);
          tbl_temporary =
            (match kind with Ast.Persistent _ -> false | _ -> true);
        }
  | _, Xtra.Create_table_as { cta_name; cta_source; cta_persistence; _ } ->
      Catalog.replace_table catalog
        {
          Catalog.tbl_name = cta_name;
          tbl_columns =
            List.map
              (fun (c : Xtra.col) ->
                {
                  Catalog.col_name = c.Xtra.name;
                  col_type =
                    (match c.Xtra.ty with
                    | Dtype.Unknown -> Dtype.varchar ()
                    | ty -> ty);
                  col_not_null = false;
                  col_default = None;
                  col_case_specific = true;
                })
              (Xtra.schema_of cta_source);
          tbl_set_semantics = false;
          tbl_temporary = cta_persistence = Xtra.Tp_temporary;
        }
  | _, Xtra.Drop_table { dt_name; _ } ->
      Catalog.drop_table catalog ~if_exists:true dt_name
  | _, Xtra.Rename_table { rn_from; rn_to } ->
      Catalog.rename_table catalog ~from_name:rn_from ~to_name:rn_to
  | _ -> ()

let last_name (q : string list) = List.nth q (List.length q - 1)

(* ------------------------------------------------------------------ *)
(* Per-statement analysis                                               *)
(* ------------------------------------------------------------------ *)

(* Statements the middle tier owns outright: classify per target without
   binding, but keep the analyzer's catalog in sync so later statements
   resolve (views/macros/procedures defined by the script itself). *)
let static_class catalog ~dialect (ast : Ast.statement) :
    ((Capability.t -> support) * string list) option =
  let if_native f = fun (cap : Capability.t) -> if f cap then Direct else Emulate in
  match ast with
  | Ast.S_create_macro { name; params; body; replace } ->
      Catalog.add_macro catalog ~replace
        {
          Catalog.macro_name = last_name name;
          macro_params =
            List.map (fun (n, ty) -> (n, Binder.dtype_of_typename ty)) params;
          macro_body = body;
        };
      Some (if_native (fun c -> c.Capability.macros), [ "macros" ])
  | Ast.S_drop_macro { name; if_exists } ->
      Catalog.drop_macro catalog ~if_exists (last_name name);
      Some (if_native (fun c -> c.Capability.macros), [ "macros" ])
  | Ast.S_exec_macro { name; _ } ->
      if Catalog.find_macro catalog (last_name name) = None then
        Some ((fun _ -> Unsupported), [ "macros" ])
      else Some (if_native (fun c -> c.Capability.macros), [ "macros" ])
  | Ast.S_create_view { name; columns; query; replace } -> (
      match
        Sql_error.protect (fun () ->
            (* validate the definition by binding it before storing *)
            let bctx = Binder.create_ctx ~dialect catalog in
            ignore (Binder.bind_statement bctx (Ast.S_select query)))
      with
      | Error _ -> Some ((fun _ -> Unsupported), [ "updatable_view_ddl" ])
      | Ok () ->
          Catalog.add_view catalog ~replace
            {
              Catalog.view_name = last_name name;
              view_columns = columns;
              view_query = query;
              view_dialect = dialect;
            };
          Some
            ( if_native (fun c -> c.Capability.updatable_views),
              [ "updatable_view_ddl" ] ))
  | Ast.S_drop_view { name; if_exists } ->
      Catalog.drop_view catalog ~if_exists (last_name name);
      Some
        ( if_native (fun c -> c.Capability.updatable_views),
          [ "updatable_view_ddl" ] )
  | Ast.S_create_procedure { name; params; body; replace } ->
      Catalog.add_procedure catalog ~replace
        {
          Catalog.proc_name = last_name name;
          proc_params =
            List.map (fun (n, ty) -> (n, Binder.dtype_of_typename ty)) params;
          proc_body = body;
        };
      Some (if_native (fun c -> c.Capability.stored_procedures), [])
  | Ast.S_drop_procedure { name; if_exists } ->
      Catalog.drop_procedure catalog ~if_exists (last_name name);
      Some (if_native (fun c -> c.Capability.stored_procedures), [])
  | Ast.S_call { name; _ } ->
      if Catalog.find_procedure catalog (last_name name) = None then
        Some ((fun _ -> Unsupported), [])
      else Some (if_native (fun c -> c.Capability.stored_procedures), [])
  | Ast.S_update { table; _ } | Ast.S_delete { table; _ }
  | Ast.S_insert { table; _ }
    when Catalog.find_view catalog (last_name table) <> None ->
      (* the pipeline routes DML through views to the emulation layer
         before binding; mirror that dispatch here *)
      Some
        ( if_native (fun c -> c.Capability.updatable_views),
          [ "dml_on_views" ] )
  | Ast.S_help _ -> Some ((fun _ -> Emulate), [ "help_commands" ])
  | Ast.S_show _ -> Some ((fun _ -> Emulate), [ "show_commands" ])
  | Ast.S_set_session _ -> Some ((fun _ -> Emulate), [ "set_session" ])
  | Ast.S_explain _ -> Some ((fun _ -> Emulate), [])
  | _ -> None

(* Mirror of the pipeline's emulation dispatch for bound statements. *)
let emulation_need catalog (bound : Xtra.statement) :
    (string * (Capability.t -> bool)) option =
  let has_recursive_cte st =
    let found = ref false in
    let scan rel =
      ignore
        (Xtra.fold_rel
           (fun () r ->
             match r with
             | Xtra.With_cte { cte_recursive = true; _ } -> found := true
             | _ -> ())
           () rel)
    in
    (match st with
    | Xtra.Query r -> scan r
    | Xtra.Insert { source; _ } -> scan source
    | Xtra.Create_table_as { cta_source; _ } -> scan cta_source
    | _ -> ());
    !found
  in
  match bound with
  | Xtra.Merge _ -> Some ("merge", fun c -> c.Capability.merge_stmt)
  | Xtra.Insert { target; _ }
    when match Catalog.find_table catalog target with
         | Some tbl -> tbl.Catalog.tbl_set_semantics
         | None -> false ->
      Some ("set_tables", fun c -> c.Capability.set_tables)
  | st when has_recursive_cte st ->
      Some ("recursive_query", fun c -> c.Capability.recursive_cte)
  | _ -> None

let classify_bound ~counter_base cap bound ~bfeatures ~lexical =
  match
    let counter = ref counter_base in
    Transformer.transform ~cap ~counter bound
  with
  | exception Sql_error.Error e -> (
      match e.Sql_error.kind with
      | Sql_error.Capability_gap -> (Emulate, [], None, [])
      | _ -> (Unsupported, [], None, []))
  | transformed, applied -> (
      let rules = List.map fst applied in
      match Serializer.serialize ~cap transformed with
      | exception Sql_error.Error e -> (
          match e.Sql_error.kind with
          | Sql_error.Capability_gap -> (Emulate, rules, Some transformed, [])
          | _ -> (Unsupported, rules, Some transformed, []))
      | _sql ->
          let needs_rewrite =
            rules <> [] || lexical <> []
            || List.exists (fun f -> not (feature_native cap f)) bfeatures
          in
          ( (if needs_rewrite then Rewrite else Direct),
            rules,
            Some transformed,
            Validator.validate transformed ))

let analyze_statement ~dialect ~targets catalog index (l : Parser.located) :
    stmt_report =
  let span = (l.Parser.loc_start, l.Parser.loc_stop) in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ast = l.Parser.loc_stmt in
  let kind = Ast.statement_kind ast in
  lint ~span add ast;
  let lexical = Feature_tracker.scan_sql_text l.Parser.loc_text in
  let finish ?(rules = []) support_by_target signals =
    {
      sr_index = index;
      sr_kind = kind;
      sr_span = span;
      sr_features = normalize_features (lexical @ signals);
      sr_support = support_by_target;
      sr_rules = rules;
      sr_diags = Diag.sort (List.rev !diags);
    }
  in
  match static_class catalog ~dialect ast with
  | Some (class_of_cap, tags) ->
      finish
        (List.map
           (fun (cap : Capability.t) -> (cap.Capability.name, class_of_cap cap))
           targets)
        tags
  | None -> (
      let bctx = Binder.create_ctx ~dialect catalog in
      match Sql_error.protect (fun () -> Binder.bind_statement bctx ast) with
      | Error e ->
          let code, cls =
            match e.Sql_error.kind with
            | Sql_error.Capability_gap -> ("A003", Emulate)
            | _ -> ("A002", Unsupported)
          in
          let severity =
            if cls = Emulate then Diag.Info else Diag.Error
          in
          add (Diag.make ~severity ~span ~code "%s" (Sql_error.to_string e));
          let tags =
            if cls = Emulate then [ "dml_on_views" ] else []
          in
          finish
            (List.map
               (fun (cap : Capability.t) -> (cap.Capability.name, cls))
               targets)
            tags
      | Ok bound ->
          let bfeatures = bctx.Binder.features in
          List.iter
            (fun d -> add { d with Diag.span = Some span })
            (Validator.validate bound);
          if List.mem "date_int_comparison" bfeatures then
            add
              (Diag.make ~severity:Diag.Warning ~span ~code:"L003"
                 "DATE/INT comparison relies on Teradata's integer date \
                  encoding; rewritten via the \xc2\xa75.2 arithmetic");
          lint_bound ~span ~catalog add bound;
          let emu = emulation_need catalog bound in
          let per_target =
            List.map
              (fun (cap : Capability.t) ->
                match emu with
                | Some (tag, native) when not (native cap) ->
                    ((cap.Capability.name, Emulate), (cap.Capability.name, [ tag ]))
                | _ ->
                    let cls, rules, _transformed, vdiags =
                      classify_bound ~counter_base:1_000_000 cap bound
                        ~bfeatures ~lexical
                    in
                    List.iter
                      (fun d ->
                        add
                          {
                            d with
                            Diag.span = Some span;
                            message =
                              Printf.sprintf "[%s] %s" cap.Capability.name
                                d.Diag.message;
                          })
                      vdiags;
                    ((cap.Capability.name, cls), (cap.Capability.name, rules)))
              targets
          in
          apply_ddl catalog ast bound;
          let emu_tags = match emu with Some (tag, _) -> [ tag ] | None -> [] in
          finish
            ~rules:
              (List.filter (fun (_, rs) -> rs <> []) (List.map snd per_target))
            (List.map fst per_target)
            (bfeatures @ emu_tags))

(* ------------------------------------------------------------------ *)
(* Script-level entry point                                             *)
(* ------------------------------------------------------------------ *)

let default_targets = Capability.all_targets

let analyze_script ?(dialect = Dialect.Teradata) ?(targets = default_targets)
    ?catalog ~script_name sql : report =
  let catalog =
    match catalog with Some c -> Catalog.copy c | None -> Catalog.create ()
  in
  match Sql_error.protect (fun () -> Parser.parse_many_located ~dialect sql) with
  | Error e ->
      {
        rep_script = script_name;
        rep_targets = targets;
        rep_statements = [];
        rep_script_diags =
          [
            Diag.make ~code:"A001" ~span:(0, String.length sql) "%s"
              (Sql_error.to_string e);
          ];
      }
  | Ok located ->
      {
        rep_script = script_name;
        rep_targets = targets;
        rep_statements =
          List.mapi (analyze_statement ~dialect ~targets catalog) located;
        rep_script_diags = [];
      }

(* ------------------------------------------------------------------ *)
(* Aggregation + rendering                                              *)
(* ------------------------------------------------------------------ *)

let summarize (rep : report) : target_summary list =
  let total = List.length rep.rep_statements in
  List.map
    (fun (cap : Capability.t) ->
      let count cls =
        List.length
          (List.filter
             (fun sr ->
               List.assoc_opt cap.Capability.name sr.sr_support = Some cls)
             rep.rep_statements)
      in
      let unsupported = count Unsupported in
      {
        ts_name = cap.Capability.name;
        ts_direct = count Direct;
        ts_rewrite = count Rewrite;
        ts_emulate = count Emulate;
        ts_unsupported = unsupported;
        ts_compat_pct =
          (if total = 0 then 100.
           else 100. *. float_of_int (total - unsupported) /. float_of_int total);
      })
    rep.rep_targets

let feature_counts (rep : report) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sr ->
      List.iter
        (fun f ->
          Hashtbl.replace tbl f (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f)))
        sr.sr_features)
    rep.rep_statements;
  List.sort
    (fun (fa, ca) (fb, cb) -> match compare cb ca with 0 -> compare fa fb | c -> c)
    (Hashtbl.fold (fun f c acc -> (f, c) :: acc) tbl [])

let all_diags (rep : report) =
  rep.rep_script_diags
  @ List.concat_map (fun sr -> sr.sr_diags) rep.rep_statements

let has_errors (rep : report) = Diag.has_errors (all_diags rep)

let render_text (rep : report) =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "Workload compatibility report — %s\n" rep.rep_script;
  pr "Statements analyzed: %d\n\n" (List.length rep.rep_statements);
  pr "Per-target support:\n";
  pr "  %-18s %7s %8s %8s %12s %8s\n" "target" "direct" "rewrite" "emulate"
    "unsupported" "compat%";
  List.iter
    (fun ts ->
      pr "  %-18s %7d %8d %8d %12d %7.1f%%\n" ts.ts_name ts.ts_direct
        ts.ts_rewrite ts.ts_emulate ts.ts_unsupported ts.ts_compat_pct)
    (summarize rep);
  pr "\nFigure 2 — native support across the modeled cloud targets:\n";
  List.iter
    (fun (label, check) ->
      pr "  %-32s %5.1f%%\n" label (Capability.support_percentage check))
    Capability.figure2_features;
  (match feature_counts rep with
  | [] -> ()
  | counts ->
      pr "\nTracked features observed in the workload:\n";
      List.iter (fun (f, c) -> pr "  %-32s %d statement(s)\n" f c) counts);
  let diags = all_diags rep in
  if diags <> [] then begin
    pr "\nDiagnostics (%d error(s), %d warning(s)):\n"
      (Diag.count Diag.Error diags)
      (Diag.count Diag.Warning diags);
    List.iter (fun d -> pr "  %s\n" (Diag.to_string d)) (Diag.sort diags)
  end;
  Buffer.contents b

let render_json (rep : report) =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let str s = "\"" ^ Diag.json_escape s ^ "\"" in
  pr "{%s:%s," (str "script") (str rep.rep_script);
  pr "%s:%d," (str "statement_count") (List.length rep.rep_statements);
  pr "%s:[" (str "targets");
  List.iteri
    (fun i ts ->
      if i > 0 then pr ",";
      pr
        "{%s:%s,%s:%d,%s:%d,%s:%d,%s:%d,%s:%.1f}"
        (str "name") (str ts.ts_name) (str "direct") ts.ts_direct
        (str "rewrite") ts.ts_rewrite (str "emulate") ts.ts_emulate
        (str "unsupported") ts.ts_unsupported (str "compat_pct")
        ts.ts_compat_pct)
    (summarize rep);
  pr "],%s:[" (str "figure2");
  List.iteri
    (fun i (label, check) ->
      if i > 0 then pr ",";
      pr "{%s:%s,%s:%.1f}" (str "feature") (str label) (str "support_pct")
        (Capability.support_percentage check))
    Capability.figure2_features;
  pr "],%s:[" (str "features");
  List.iteri
    (fun i (f, c) ->
      if i > 0 then pr ",";
      pr "{%s:%s,%s:%d}" (str "feature") (str f) (str "count") c)
    (feature_counts rep);
  pr "],%s:[" (str "statements");
  List.iteri
    (fun i sr ->
      if i > 0 then pr ",";
      let a, z = sr.sr_span in
      pr "{%s:%d,%s:%s,%s:[%d,%d],%s:[%s],%s:{%s},%s:[%s]}" (str "index")
        sr.sr_index (str "kind") (str sr.sr_kind) (str "span") a z
        (str "features")
        (String.concat "," (List.map str sr.sr_features))
        (str "support")
        (String.concat ","
           (List.map
              (fun (t, s) -> str t ^ ":" ^ str (support_to_string s))
              sr.sr_support))
        (str "diagnostics")
        (String.concat "," (List.map Diag.to_json sr.sr_diags)))
    rep.rep_statements;
  pr "],%s:[%s]}" (str "script_diagnostics")
    (String.concat "," (List.map Diag.to_json rep.rep_script_diags));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Inferred-property report (hyperq analyze --props)                    *)
(* ------------------------------------------------------------------ *)

(* JSON dump of what {!Infer} can prove about each statement: per
   output-column nullability / interval / determinism, candidate keys,
   cardinality bound, and how many filters are statically contradictory.
   DDL maintains the same virtual catalog as [analyze_script], so NOT
   NULL columns declared earlier in the script seed later inferences. *)
let props_json ?(dialect = Dialect.Teradata) ?catalog ~script_name sql =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let str s = "\"" ^ Diag.json_escape s ^ "\"" in
  let catalog =
    match catalog with Some c -> Catalog.copy c | None -> Catalog.create ()
  in
  let bound_json (bound : Xtra.statement) =
    let rel_of = function
      | Xtra.Query r -> Some r
      | Xtra.Insert { source; _ } -> Some source
      | Xtra.Create_table_as { cta_source; _ } -> Some cta_source
      | _ -> None
    in
    let contradictions = ref 0 in
    ignore
      (Xtra.rewrite_statement
         ~frel:(fun r ->
           (match r with
           | Xtra.Filter { input; pred } -> (
               try
                 let env = Infer.env_of ~catalog input in
                 let t = Infer.predicate_truth ~catalog ~env pred in
                 if not t.Infer.can_true then incr contradictions
               with _ -> ())
           | _ -> ());
           r)
         ~fscalar:(fun s -> s)
         bound);
    let det =
      try Infer.det_of_statement bound with _ -> Builtins.Volatile
    in
    let cols_json =
      match rel_of bound with
      | None -> Printf.sprintf "%s:null,%s:null" (str "columns") (str "keys")
      | Some r -> (
          try
            let rp = Infer.rel_props ~catalog r in
            let schema = Xtra.schema_of r in
            let col_json (c : Xtra.col) =
              let p = Infer.lookup rp.Infer.cols c in
              let bnd = function
                | None -> "null"
                | Some (bd : Infer.bound) ->
                    Printf.sprintf "{%s:%s,%s:%b}" (str "value")
                      (str (Value.to_sql_literal bd.Infer.bval))
                      (str "inclusive") bd.Infer.incl
              in
              Printf.sprintf "{%s:%s,%s:%s,%s:%s,%s:{%s:%s,%s:%s},%s:%s}"
                (str "name") (str c.Xtra.name) (str "type")
                (str (Dtype.to_string c.Xtra.ty))
                (str "nullability")
                (str (Infer.nullability_name p.Infer.null))
                (str "interval") (str "lo")
                (bnd p.Infer.ival.Infer.lo)
                (str "hi")
                (bnd p.Infer.ival.Infer.hi)
                (str "determinism")
                (str (Builtins.determinism_name p.Infer.det))
            in
            let name_of id =
              match
                List.find_opt (fun (c : Xtra.col) -> c.Xtra.id = id) schema
              with
              | Some c -> c.Xtra.name
              | None -> Printf.sprintf "#%d" id
            in
            let key_json ids =
              "[" ^ String.concat "," (List.map (fun id -> str (name_of id)) ids)
              ^ "]"
            in
            Printf.sprintf "%s:[%s],%s:[%s],%s:%s" (str "columns")
              (String.concat "," (List.map col_json schema))
              (str "keys")
              (String.concat "," (List.map key_json rp.Infer.keys))
              (str "card_max")
              (match rp.Infer.card_max with
              | Some n -> string_of_int n
              | None -> "null")
          with e ->
            Printf.sprintf "%s:null,%s:null,%s:%s" (str "columns") (str "keys")
              (str "infer_error")
              (str (Printexc.to_string e)))
    in
    Printf.sprintf "%s,%s:%s,%s:%d" cols_json (str "determinism")
      (str (Builtins.determinism_name det))
      (str "contradictory_filters") !contradictions
  in
  pr "{%s:%s,%s:[" (str "script") (str script_name) (str "statements");
  (match
     Sql_error.protect (fun () -> Parser.parse_many_located ~dialect sql)
   with
  | Error e -> pr "],%s:%s}" (str "error") (str (Sql_error.to_string e))
  | Ok located ->
      List.iteri
        (fun i (l : Parser.located) ->
          if i > 0 then pr ",";
          let ast = l.Parser.loc_stmt in
          pr "{%s:%d,%s:%s," (str "index") i (str "kind")
            (str (Ast.statement_kind ast));
          (match
             let bctx = Binder.create_ctx ~dialect catalog in
             Sql_error.protect (fun () -> Binder.bind_statement bctx ast)
           with
          | Error e -> pr "%s:%s" (str "bind_error") (str (Sql_error.to_string e))
          | Ok bound ->
              pr "%s" (bound_json bound);
              apply_ddl catalog ast bound);
          pr "}")
        located;
      pr "]}");
  Buffer.contents b
