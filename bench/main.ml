(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) plus the Figure 2 feature chart and the Table 2
   implementation matrix, and adds bechamel micro-benchmarks of the
   translation stages.

   Run everything:      dune exec bench/main.exe
   Run one experiment:  dune exec bench/main.exe -- fig9a
   Scale factor:        HYPERQ_SF=0.02 dune exec bench/main.exe -- fig9a

   Experiment ids: table1 fig2 fig8a fig8b baseline table2 fig9a fig9b
   targets ablation cache resilience telemetry analyze exec parallel
   serving rules micro *)

open Hyperq_sqlvalue
module Pipeline = Hyperq_core.Pipeline
module Session = Hyperq_core.Session
module Obs = Hyperq_obs.Obs
module FT = Hyperq_core.Feature_tracker
module Capability = Hyperq_transform.Capability
module Customer = Hyperq_workload.Customer
module Tpch = Hyperq_workload.Tpch
module Tpch_queries = Hyperq_workload.Tpch_queries
module Baseline = Hyperq_workload.Textual_baseline
module Backend = Hyperq_engine.Backend
module Batch_exec = Hyperq_engine.Batch_exec
module Morsel = Hyperq_engine.Morsel

let sf () =
  match Sys.getenv_opt "HYPERQ_SF" with
  | Some s -> float_of_string s
  | None -> 0.01

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let bar pct =
  let n = int_of_float (pct /. 2.5) in
  String.make (max 0 (min 40 n)) '#'

(* Machine-readable artifacts (uploaded by CI). *)
let write_json name body =
  let oc = open_out name in
  output_string oc body;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" name

(* ------------------------------------------------------------------ *)
(* Table 1: overview of customers and workloads                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  hr "Table 1: Overview of customers and workloads";
  Printf.printf "%-10s %-8s %24s\n" "Customer" "Sector" "Total (Distinct) Queries";
  List.iteri
    (fun i wl ->
      Printf.printf "%-10d %-8s %17d (%d)\n" (i + 1) wl.Customer.wl_sector
        wl.Customer.wl_total wl.Customer.wl_distinct)
    (Customer.all ());
  Printf.printf "(paper: 1 Health 39731 (3778); 2 Telco 192753 (10446))\n"

(* ------------------------------------------------------------------ *)
(* Figure 2: Teradata feature support across modeled cloud targets      *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  hr "Figure 2: Support for select Teradata features across cloud databases";
  Printf.printf
    "(computed from the live capability matrices of %d modeled targets)\n\n"
    (List.length Capability.cloud_targets);
  List.iter
    (fun (label, check) ->
      let pct = Capability.support_percentage check in
      Printf.printf "%-30s %5.1f%%  %s\n" label pct (bar pct))
    Capability.figure2_features

(* ------------------------------------------------------------------ *)
(* Figure 8: customer workload characteristics                          *)
(* ------------------------------------------------------------------ *)

let workload_stats =
  lazy (List.map (fun wl -> (wl, Customer.study wl)) (Customer.all ()))

let fig8 part title pct_fn paper =
  hr title;
  List.iter
    (fun (wl, stats) ->
      let p cls = pct_fn stats cls in
      let e1, e2, e3 = List.assoc wl.Customer.wl_name paper in
      Printf.printf "%s (%s):\n" wl.Customer.wl_name wl.Customer.wl_sector;
      Printf.printf "  %-15s %5.1f%%  %-32s (paper %.1f%%)\n" "Translation"
        (p FT.Translation) (bar (p FT.Translation)) e1;
      Printf.printf "  %-15s %5.1f%%  %-32s (paper %.1f%%)\n" "Transformation"
        (p FT.Transformation) (bar (p FT.Transformation)) e2;
      Printf.printf "  %-15s %5.1f%%  %-32s (paper %.1f%%)\n" "Emulation"
        (p FT.Emulation) (bar (p FT.Emulation)) e3)
    (Lazy.force workload_stats);
  ignore part

let fig8a () =
  fig8 `A "Figure 8(a): Percentage of tracked features contained in each workload"
    FT.features_present_pct
    [ ("Workload 1", (55.6, 77.8, 33.3)); ("Workload 2", (22.2, 66.7, 33.3)) ]

let fig8b () =
  fig8 `B "Figure 8(b): Percentage of queries affected by each feature class"
    FT.queries_affected_pct
    [ ("Workload 1", (1.4, 33.6, 0.2)); ("Workload 2", (0.2, 4.0, 79.1)) ]

(* ------------------------------------------------------------------ *)
(* Textual-baseline comparison (the paper's §7.1 conclusion)            *)
(* ------------------------------------------------------------------ *)

let baseline () =
  hr "Baseline: purely textual replacement vs Hyper-Q (paper §7.1 claim)";
  List.iter
    (fun wl ->
      let pipeline = Pipeline.create () in
      List.iter
        (fun sql -> ignore (Pipeline.run_sql pipeline sql))
        wl.Customer.wl_setup;
      let pct = Baseline.coverage pipeline wl in
      Printf.printf
        "%s (%s): textual translator fully handles %5.1f%% of distinct queries; \
         Hyper-Q handles 100.0%%\n"
        wl.Customer.wl_name wl.Customer.wl_sector pct)
    (Customer.all ());
  print_endline
    "(paper: \"a purely textual replacement-based solution will not work in \
     practice\")"

(* ------------------------------------------------------------------ *)
(* Table 2: feature -> category -> implementing component               *)
(* ------------------------------------------------------------------ *)

let table2 () =
  hr "Table 2: Implementation matrix (witness query per tracked feature)";
  let pipeline = Pipeline.create () in
  List.iter
    (fun sql -> ignore (Pipeline.run_sql pipeline sql))
    [
      "CREATE TABLE T2DEMO (A INTEGER, B INTEGER, D DATE, S VARCHAR(20))";
      "CREATE SET TABLE T2SET (X INTEGER)";
      "CREATE VIEW T2VIEW AS SELECT A, B FROM T2DEMO WHERE B > 0";
      "CREATE MACRO T2MACRO (P INTEGER) AS (SELECT A FROM T2DEMO WHERE B = :P;)";
      "CREATE PROCEDURE T2PROC (IN N INTEGER) BEGIN DECLARE I INTEGER DEFAULT \
       0; WHILE :I < :N DO SET I = :I + 1; END WHILE; SEL :I; END";
      "INS T2DEMO (1, 2, DATE '2017-06-01', 'x')";
    ];
  let rows =
    [
      ("SEL/INS/UPD/DEL", "Translation", "Parser", "SEL A FROM T2DEMO");
      ("TOP n", "Translation", "Serializer", "SEL TOP 2 A FROM T2DEMO ORDER BY A");
      ("Function renaming", "Translation", "Binder/Serializer",
       "SELECT CHARS(S) FROM T2DEMO");
      ("COLLECT STATISTICS", "Translation", "Binder (elided)",
       "COLLECT STATISTICS ON T2DEMO");
      ("QUALIFY", "Transformation", "Binder",
       "SELECT A FROM T2DEMO QUALIFY RANK(B DESC) <= 1");
      ("Implicit joins", "Transformation", "Binder",
       "SELECT T2SET.X FROM T2DEMO WHERE T2SET.X = T2DEMO.A");
      ("Chained projections", "Transformation", "Binder",
       "SELECT B AS B0, B0 + 1 AS B1 FROM T2DEMO");
      ("Ordinal GROUP BY", "Transformation", "Binder",
       "SELECT A, COUNT(*) FROM T2DEMO GROUP BY 1 ORDER BY 2");
      ("OLAP grouping extensions", "Transformation", "Transformer",
       "SELECT A, SUM(B) FROM T2DEMO GROUP BY ROLLUP(A)");
      ("Date-Integer comparison", "Transformation", "Transformer",
       "SELECT A FROM T2DEMO WHERE D > 1170101");
      ("Vector subqueries", "Transformation", "Transformer",
       "SELECT A FROM T2DEMO WHERE (A, B) > ANY (SELECT A, B FROM T2DEMO)");
      ("Macros", "Emulation", "Emulation layer", "EXEC T2MACRO(2)");
      ("Recursive queries", "Emulation", "Emulation layer",
       "WITH RECURSIVE R (A) AS (SELECT A FROM T2DEMO UNION ALL SELECT A + 1 \
        FROM R WHERE A < 3) SELECT A FROM R");
      ("MERGE", "Emulation", "Emulation layer",
       "MERGE INTO T2DEMO AS T USING (SELECT 9 AS K FROM T2DEMO) S ON (T.A = \
        S.K) WHEN NOT MATCHED THEN INSERT (A) VALUES (S.K)");
      ("DML on views", "Emulation", "Emulation layer",
       "UPDATE T2VIEW SET B = 3 WHERE A = 1");
      ("SET tables", "Emulation", "Emulation layer", "INS T2SET (1)");
      ("Stored procedures", "Emulation", "Emulation layer", "CALL T2PROC(3)");
      ("HELP/SHOW", "Emulation", "Emulation layer", "HELP TABLE T2DEMO");
    ]
  in
  Printf.printf "%-26s %-15s %-20s %s\n" "Feature" "Category" "Component" "Witness";
  List.iter
    (fun (feature, category, component, witness) ->
      let status =
        match Sql_error.protect (fun () -> Pipeline.run_sql pipeline witness) with
        | Ok _ -> "OK"
        | Error e -> "FAIL: " ^ Sql_error.to_string e
      in
      Printf.printf "%-26s %-15s %-20s %s\n" feature category component status)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 9(a): overhead, single sequential TPC-H run                   *)
(* ------------------------------------------------------------------ *)

let run_tpch_once pipeline session =
  List.fold_left
    (fun (tr, ex, cv) (_, sql) ->
      let o = Pipeline.run_sql pipeline ~session sql in
      let t = o.Pipeline.out_timings in
      ( tr +. t.Pipeline.translate_s,
        ex +. t.Pipeline.execute_s,
        cv +. t.Pipeline.convert_s ))
    (0., 0., 0.) Tpch_queries.all

let report_overhead label (tr, ex, cv) =
  let total = tr +. ex +. cv in
  Printf.printf "%s\n" label;
  Printf.printf "  %-22s %10.1f ms  %6.3f%%\n" "Query translation" (tr *. 1000.)
    (100. *. tr /. total);
  Printf.printf "  %-22s %10.1f ms  %6.3f%%\n" "Execution" (ex *. 1000.)
    (100. *. ex /. total);
  Printf.printf "  %-22s %10.1f ms  %6.3f%%\n" "Result transformation"
    (cv *. 1000.) (100. *. cv /. total);
  Printf.printf "  total Hyper-Q overhead: %.3f%% of end-to-end time\n"
    (100. *. (tr +. cv) /. total)

let fig9a () =
  hr "Figure 9(a): Hyper-Q overhead, single sequential TPC-H run";
  let obs = Obs.create () in
  let pipeline = Pipeline.create ~obs () in
  let _ = Tpch.setup ~sf:(sf ()) pipeline in
  (* discard the setup traffic so the histograms hold exactly the 22 runs *)
  Obs.reset obs;
  Printf.printf "TPC-H at SF %.3f; 22 queries, sequential, 1 client\n" (sf ());
  let session = Session.create () in
  let sums = run_tpch_once pipeline session in
  report_overhead "aggregated elapsed time:" sums;
  (* per-stage breakdown, derived from the hyperq_pipeline_stage_seconds
     histograms rather than the coarse outcome timings *)
  let tel = pipeline.Pipeline.tel in
  let snaps =
    List.map
      (fun st ->
        ( st,
          Obs.histogram_snapshot
            tel.Pipeline.stage_hists.(Pipeline.stage_index st) ))
      Pipeline.all_stages
  in
  let stage_total =
    List.fold_left (fun acc (_, s) -> acc +. s.Obs.hs_sum) 0. snaps
  in
  Printf.printf "\nper-stage breakdown (hyperq_pipeline_stage_seconds):\n";
  Printf.printf "  %-12s %6s %11s %8s %10s %10s %10s\n" "stage" "count"
    "total ms" "share" "p50 us" "p95 us" "p99 us";
  List.iter
    (fun (st, s) ->
      Printf.printf "  %-12s %6d %11.2f %7.2f%% %10.1f %10.1f %10.1f\n"
        (Pipeline.stage_name st) s.Obs.hs_count (s.Obs.hs_sum *. 1000.)
        (if stage_total > 0. then 100. *. s.Obs.hs_sum /. stage_total else 0.)
        (Obs.quantile s 0.5 *. 1e6)
        (Obs.quantile s 0.95 *. 1e6)
        (Obs.quantile s 0.99 *. 1e6))
    snaps;
  let q = Obs.histogram_snapshot tel.Pipeline.query_hist in
  Printf.printf
    "  end-to-end: %d queries, p50 %.1f us, p95 %.1f us, p99 %.1f us\n"
    q.Obs.hs_count
    (Obs.quantile q 0.5 *. 1e6)
    (Obs.quantile q 0.95 *. 1e6)
    (Obs.quantile q 0.99 *. 1e6);
  let tr, ex, cv = sums in
  let stage_json =
    String.concat ", "
      (List.map
         (fun (st, s) ->
           Printf.sprintf
             "{\"stage\": \"%s\", \"count\": %d, \"sum_s\": %.6f, \
              \"share_pct\": %.3f, \"p50_s\": %.6g, \"p95_s\": %.6g, \
              \"p99_s\": %.6g}"
             (Pipeline.stage_name st) s.Obs.hs_count s.Obs.hs_sum
             (if stage_total > 0. then 100. *. s.Obs.hs_sum /. stage_total
              else 0.)
             (Obs.quantile s 0.5) (Obs.quantile s 0.95) (Obs.quantile s 0.99))
         snaps)
  in
  write_json "BENCH_fig9a.json"
    (Printf.sprintf
       "{\"experiment\": \"fig9a\", \"sf\": %g, \"queries\": %d, \
        \"translate_s\": %.6f, \"execute_s\": %.6f, \"convert_s\": %.6f, \
        \"overhead_pct\": %.3f, \"stages\": [%s]}"
       (sf ())
       (List.length Tpch_queries.all)
       tr ex cv
       (100. *. (tr +. cv) /. (tr +. ex +. cv))
       stage_json);
  print_endline
    "(paper: total overhead below 2%; ~0.5% translation, ~1% result conversion)"

(* ------------------------------------------------------------------ *)
(* Figure 9(b): overhead under a 10-client concurrent stress test       *)
(* ------------------------------------------------------------------ *)

let fig9b () =
  hr "Figure 9(b): Hyper-Q overhead, concurrent stress test (10 clients)";
  let pipeline = Pipeline.create () in
  let _ = Tpch.setup ~sf:(sf ()) pipeline in
  let rounds =
    match Sys.getenv_opt "HYPERQ_STRESS_ROUNDS" with
    | Some s -> int_of_string s
    | None -> 2
  in
  let n_clients = 10 in
  Printf.printf
    "TPC-H at SF %.3f; %d concurrent clients x %d rounds of 22 queries\n"
    (sf ()) n_clients rounds;
  let results = Array.make n_clients (0., 0., 0.) in
  let worker i =
    let session = Session.create ~username:(Printf.sprintf "CLIENT%d" i) () in
    let tr = ref 0. and ex = ref 0. and cv = ref 0. in
    for _ = 1 to rounds do
      let a, b, c = run_tpch_once pipeline session in
      tr := !tr +. a;
      ex := !ex +. b;
      cv := !cv +. c
    done;
    results.(i) <- (!tr, !ex, !cv)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init n_clients (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let sums =
    Array.fold_left
      (fun (a, b, c) (x, y, z) -> (a +. x, b +. y, c +. z))
      (0., 0., 0.) results
  in
  Printf.printf "%d queries completed in %.1f s wall-clock\n"
    (n_clients * rounds * 22) wall;
  report_overhead "aggregated elapsed time across all sessions:" sums;
  print_endline
    "(paper: overhead drops to 0.1-0.2% as execution grows with concurrency \
     while Hyper-Q adds a small constant per query)"

(* ------------------------------------------------------------------ *)
(* Target comparison (paper Appendix B.4)                               *)
(* ------------------------------------------------------------------ *)

let targets () =
  hr "Target comparison: TPC-H rewrites needed per candidate target (paper B.4)";
  print_endline
    "(customers \"compare side-by-side how their workloads perform on a \
     variety of potential target databases\"; here: how many of the 22 \
     Teradata TPC-H queries each target runs verbatim vs. after rewrites)";
  let pipeline = Pipeline.create () in
  let _ = Tpch.setup ~sf:0.002 pipeline in
  Printf.printf "\n%-14s %10s %14s  %s\n" "target" "rewritten" "rule firings"
    "rules needed";
  List.iter
    (fun cap ->
      let rewritten = ref 0 and firings = ref 0 in
      let rules = Hashtbl.create 8 in
      List.iter
        (fun (_, sql) ->
          let ast =
            Hyperq_sqlparser.Parser.parse_statement
              ~dialect:Hyperq_sqlparser.Dialect.Teradata sql
          in
          let bctx =
            Hyperq_binder.Binder.create_ctx pipeline.Pipeline.vcatalog
          in
          let bound = Hyperq_binder.Binder.bind_statement bctx ast in
          let counter = ref 1_000_000 in
          let _, applied =
            Hyperq_transform.Transformer.transform ~cap ~counter bound
          in
          if applied <> [] then incr rewritten;
          List.iter
            (fun (name, n) ->
              firings := !firings + n;
              Hashtbl.replace rules name ())
            applied)
        Tpch_queries.all;
      Printf.printf "%-14s %7d/22 %14d  %s\n" cap.Capability.name !rewritten
        !firings
        (String.concat ", "
           (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) rules []))))
    Capability.all_targets

(* ------------------------------------------------------------------ *)
(* Ablation: single-row DML batching (paper §4.3)                       *)
(* ------------------------------------------------------------------ *)

let ablation () =
  hr "Ablation: single-row DML batching (paper §4.3 transformation)";
  let n = 400 in
  let latency = 0.0005 in
  Printf.printf
    "%d single-row INSERTs; simulated %.1f ms round-trip per backend request\n"
    n (latency *. 1000.);
  let script =
    String.concat ";\n"
      (List.init n (fun i ->
           Printf.sprintf "INS EVENTS (%d, 'event %d', %d.50)" i i (i mod 100)))
  in
  let setup p =
    ignore
      (Pipeline.run_sql p
         "CREATE TABLE EVENTS (ID INTEGER, LABEL VARCHAR(40), COST DECIMAL(8,2))")
  in
  (* without batching: one request per statement *)
  let p1 = Pipeline.create ~request_latency_s:latency () in
  setup p1;
  let t0 = Unix.gettimeofday () in
  let outcomes = Pipeline.run_script p1 script in
  let unbatched = Unix.gettimeofday () -. t0 in
  (* with the batching transformation *)
  let p2 = Pipeline.create ~request_latency_s:latency () in
  setup p2;
  let t0 = Unix.gettimeofday () in
  let outcomes2, merged = Pipeline.run_script_batched p2 script in
  let batched = Unix.gettimeofday () -. t0 in
  Printf.printf "  unbatched: %4d requests  %7.1f ms\n" (List.length outcomes)
    (unbatched *. 1000.);
  Printf.printf "  batched:   %4d request(s) %7.1f ms  (%d statements absorbed)\n"
    (List.length outcomes2) (batched *. 1000.) merged;
  Printf.printf "  speedup: %.1fx\n" (unbatched /. batched);
  (* both paths leave identical data behind *)
  let count p =
    (Pipeline.run_sql p "SEL COUNT(*) FROM EVENTS").Pipeline.out_rows
    |> List.hd |> fun r -> Value.to_string r.(0)
  in
  Printf.printf "  row counts agree: %s = %s\n" (count p1) (count p2)

(* ------------------------------------------------------------------ *)
(* Plan cache: repeated TPC-H replay, cache on vs off                   *)
(* ------------------------------------------------------------------ *)

let cache () =
  hr "Plan cache: repeated TPC-H mix, translation cache on vs off";
  let iters =
    match Sys.getenv_opt "HYPERQ_CACHE_ITERS" with
    | Some s -> int_of_string s
    | None -> 50
  in
  let replay p =
    let session = Session.create () in
    let tr = ref 0. in
    for _ = 1 to iters do
      List.iter
        (fun (_, sql) ->
          let o = Pipeline.run_sql p ~session sql in
          tr := !tr +. o.Pipeline.out_timings.Pipeline.translate_s)
        Tpch_queries.all
    done;
    !tr
  in
  let cold_p = Pipeline.create ~plan_cache_capacity:0 () in
  let _ = Tpch.setup ~sf:(sf ()) cold_p in
  let warm_p = Pipeline.create () in
  let _ = Tpch.setup ~sf:(sf ()) warm_p in
  let cold = replay cold_p in
  let warm = replay warm_p in
  let s = Pipeline.cache_stats warm_p in
  let module PC = Hyperq_core.Plan_cache in
  Printf.printf
    "{\"experiment\": \"cache\", \"iterations\": %d, \"queries\": %d, \
     \"cold_translate_s\": %.6f, \"warm_translate_s\": %.6f, \"speedup\": \
     %.2f, \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \
     \"invalidations\": %d, \"saved_translate_s\": %.6f}\n"
    iters
    (List.length Tpch_queries.all)
    cold warm
    (cold /. warm)
    s.PC.hits s.PC.misses (PC.hit_rate s) s.PC.invalidations
    s.PC.saved_translate_s;
  Printf.printf "cache stats: %s\n" (PC.stats_to_string s)

(* ------------------------------------------------------------------ *)
(* Resilience: fault-free overhead, absorption, recovery latency        *)
(* ------------------------------------------------------------------ *)

let resilience () =
  hr "Resilience: fault-free overhead, transient absorption, recovery latency";
  let module R = Hyperq_core.Resilience in
  let module Fault = Hyperq_engine.Fault in
  let iters =
    match Sys.getenv_opt "HYPERQ_RESIL_ITERS" with
    | Some s -> int_of_string s
    | None -> 200
  in
  let setup p =
    ignore
      (Pipeline.run_sql p "CREATE TABLE RES (ID INTEGER, V VARCHAR(20))");
    ignore (Pipeline.run_sql p "INS RES (1, 'seed')")
  in
  let workload p on_error =
    let session = Session.create () in
    for i = 1 to iters do
      (match
         Sql_error.protect (fun () ->
             Pipeline.run_sql p ~session "SEL ID, V FROM RES WHERE ID = 1")
       with
      | Ok _ -> ()
      | Error e -> on_error e);
      match
        Sql_error.protect (fun () ->
            Pipeline.run_sql p ~session
              (Printf.sprintf "INS RES (%d, 'x')" (i + 1)))
      with
      | Ok _ -> ()
      | Error e -> on_error e
    done
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* 1. fault-free overhead: the resilience wrapper on vs bypassed, over a
     read-only loop so per-iteration cost is constant *)
  let read_loop p =
    let session = Session.create () in
    for _ = 1 to 2 * iters do
      ignore (Pipeline.run_sql p ~session "SEL ID, V FROM RES WHERE ID = 1")
    done
  in
  let p_off = Pipeline.create ~resil:(R.create ~enabled:false ()) () in
  setup p_off;
  let p_on = Pipeline.create () in
  setup p_on;
  (* one untimed pass each, so neither measurement pays the cold start *)
  read_loop p_off;
  read_loop p_on;
  let t_off = time (fun () -> read_loop p_off) in
  let t_on = time (fun () -> read_loop p_on) in
  let overhead_pct = 100. *. (t_on -. t_off) /. t_off in
  (* 2. seeded transient faults, fake clock: retries absorb the failures *)
  let clock = R.fake_clock () in
  let injector = Fault.create ~seed:11 ~sleep:clock.R.sleep () in
  let p_fault = Pipeline.create ~fault:injector ~resil:(R.create ~clock ()) () in
  setup p_fault;
  Fault.random_transients injector ~p:0.1 ~first_n:((2 * iters) + 8);
  let client_errors = ref 0 in
  workload p_fault (fun _ -> incr client_errors);
  let s = Pipeline.resilience_stats p_fault in
  let inj_t, _, _ = Fault.injected injector in
  (* 3. recovery latency: outage opens the breaker; after the fault lifts,
     how long until the first statement succeeds again (the cooldown) *)
  let policy =
    {
      R.retry =
        { R.default_retry with max_attempts = 2; base_delay_s = 0.0005;
          max_delay_s = 0.002 };
      breaker =
        { R.default_breaker with failure_threshold = 3; cooldown_s = 0.02 };
      deadline_s = None;
    }
  in
  let outage = Fault.create () in
  let p_rec = Pipeline.create ~fault:outage ~resil:(R.create ~policy ()) () in
  setup p_rec;
  Fault.persistent_outage outage ~from_request:(Fault.requests_seen outage);
  let outage_errors = ref 0 in
  while Pipeline.breaker_state p_rec <> R.Open do
    match Sql_error.protect (fun () -> Pipeline.run_sql p_rec "SEL ID FROM RES")
    with
    | Ok _ -> ()
    | Error _ -> incr outage_errors
  done;
  Fault.clear outage;
  let t0 = Unix.gettimeofday () in
  let recovered = ref false in
  while not !recovered do
    match Sql_error.protect (fun () -> Pipeline.run_sql p_rec "SEL ID FROM RES")
    with
    | Ok _ -> recovered := true
    | Error _ -> Thread.delay 0.002
  done;
  let recovery_s = Unix.gettimeofday () -. t0 in
  Printf.printf
    "{\"experiment\": \"resilience\", \"iterations\": %d, \
     \"fault_free_overhead_pct\": %.2f, \"transient_p\": 0.1, \
     \"injected_transients\": %d, \"attempts\": %d, \"retries\": %d, \
     \"absorbed\": %d, \"client_errors\": %d, \"breaker_opens_outage\": %d, \
     \"recovery_ms\": %.1f}\n"
    iters overhead_pct inj_t s.R.st_attempts s.R.st_retries s.R.st_absorbed
    !client_errors
    (Pipeline.resilience_stats p_rec).R.st_breaker_opens
    (recovery_s *. 1000.);
  Printf.printf "faulty pipeline: %s\n" (Pipeline.health_to_string p_fault);
  Printf.printf "recovered pipeline: %s\n" (Pipeline.health_to_string p_rec)

(* ------------------------------------------------------------------ *)
(* Telemetry: observability overhead, noop sink vs enabled registry     *)
(* ------------------------------------------------------------------ *)

let telemetry () =
  hr "Telemetry: observability overhead on a sequential TPC-H run";
  let rounds =
    match Sys.getenv_opt "HYPERQ_TELEM_ROUNDS" with
    | Some s -> int_of_string s
    | None -> 4
  in
  let make obs =
    let p = Pipeline.create ~obs () in
    let _ = Tpch.setup ~sf:(sf ()) p in
    p
  in
  let p_noop = make Obs.noop in
  let p_on = make (Obs.create ()) in
  let queries = List.length Tpch_queries.all in
  let session_noop = Session.create () and session_on = Session.create () in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let run p session =
    List.iter
      (fun (_, sql) -> ignore (Pipeline.run_sql p ~session sql))
      Tpch_queries.all
  in
  (* one untimed warm-up pass each; then keep, per query, the best time each
     configuration achieved across the rounds — pairing at query granularity
     cancels the backend's scan-time variance, which otherwise swamps the
     microsecond-scale telemetry cost. The order alternates per round:
     whichever configuration runs a query second inherits hot CPU caches
     from the first, so a fixed order would bias the comparison. *)
  run p_noop session_noop;
  run p_on session_on;
  let best_noop = Array.make queries infinity in
  let best_on = Array.make queries infinity in
  let time_noop i sql =
    best_noop.(i) <-
      min best_noop.(i)
        (time (fun () ->
             ignore (Pipeline.run_sql p_noop ~session:session_noop sql)))
  in
  let time_on i sql =
    best_on.(i) <-
      min best_on.(i)
        (time (fun () ->
             ignore (Pipeline.run_sql p_on ~session:session_on sql)))
  in
  for round = 1 to rounds do
    List.iteri
      (fun i (_, sql) ->
        if round land 1 = 1 then (time_noop i sql; time_on i sql)
        else (time_on i sql; time_noop i sql))
      Tpch_queries.all
  done;
  let t_noop = ref (Array.fold_left ( +. ) 0. best_noop) in
  let t_on = ref (Array.fold_left ( +. ) 0. best_on) in
  let enabled_overhead_pct = 100. *. (!t_on -. !t_noop) /. !t_noop in
  (* the per-call price of leaving telemetry compiled in: a record op on a
     disabled registry is one flag check *)
  let c = Obs.counter Obs.noop "bench_noop_probe" in
  let n = 10_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Obs.inc c
  done;
  let noop_ns = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9 in
  (* record ops per query, counted from the enabled registry *)
  let tel = p_on.Pipeline.tel in
  let stage_ops =
    List.fold_left
      (fun acc st ->
        acc
        + (Obs.histogram_snapshot
             tel.Pipeline.stage_hists.(Pipeline.stage_index st))
            .Obs.hs_count)
      0 Pipeline.all_stages
  in
  let query_ops = (Obs.histogram_snapshot tel.Pipeline.query_hist).Obs.hs_count in
  (* each histogram observe pairs with a span open/close, plus the trace and
     counter bumps; 2x is a conservative multiplier *)
  let ops_per_query =
    2. *. float_of_int (stage_ops + query_ops)
    /. float_of_int (max 1 query_ops)
  in
  let per_query_s = !t_noop /. float_of_int queries in
  let noop_overhead_pct =
    100. *. (ops_per_query *. noop_ns /. 1e9) /. per_query_s
  in
  Printf.printf
    "best of %d rounds x %d queries: noop %.3f s, enabled %.3f s -> %.2f%% \
     overhead\n"
    rounds queries !t_noop !t_on enabled_overhead_pct;
  Printf.printf
    "noop record op: %.1f ns; ~%.0f ops/query -> %.4f%% of query time\n"
    noop_ns ops_per_query noop_overhead_pct;
  write_json "BENCH_telemetry.json"
    (Printf.sprintf
       "{\"experiment\": \"telemetry\", \"rounds\": %d, \"queries\": %d, \
        \"noop_s\": %.6f, \"enabled_s\": %.6f, \"enabled_overhead_pct\": \
        %.3f, \"noop_record_ns\": %.2f, \"record_ops_per_query\": %.1f, \
        \"noop_overhead_pct\": %.4f}"
       rounds queries !t_noop !t_on enabled_overhead_pct noop_ns ops_per_query
       noop_overhead_pct);
  Printf.printf "(targets: <1%% disabled, <3%% enabled)\n"

(* ------------------------------------------------------------------ *)
(* Offline workload compatibility analysis (lib/analyze)                *)
(* ------------------------------------------------------------------ *)

let read_file file =
  let ic = open_in_bin file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

(* cwd is bench/ under `dune runtest` but the workspace root under exec *)
let example_pack name =
  let rel = "examples/rules/" ^ name in
  read_file (if Sys.file_exists rel then rel else "../" ^ rel)

let analyze () =
  hr "Analyze: offline workload compatibility (no execution)";
  let module Analyzer = Hyperq_analyze.Analyzer in
  let scripts =
    [
      ( "health",
        String.concat ";\n"
          (Customer.health_setup @ Customer.health_queries ()) );
      ( "telco",
        String.concat ";\n" (Customer.telco_setup @ Customer.telco_queries ())
      );
      ("tpch", String.concat ";\n" (Tpch.ddl @ List.map snd Tpch_queries.all));
    ]
  in
  let t0 = Unix.gettimeofday () in
  let reports =
    List.map
      (fun (name, sql) -> Analyzer.analyze_script ~script_name:name sql)
      scripts
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let stmts =
    List.fold_left
      (fun acc r -> acc + List.length r.Analyzer.rep_statements)
      0 reports
  in
  List.iter
    (fun rep ->
      Printf.printf "%s: %d statements\n" rep.Analyzer.rep_script
        (List.length rep.Analyzer.rep_statements);
      List.iter
        (fun ts ->
          Printf.printf "  %-18s direct %4d  rewrite %4d  emulate %4d  \
                         unsupported %4d  compat %5.1f%%\n"
            ts.Analyzer.ts_name ts.Analyzer.ts_direct ts.Analyzer.ts_rewrite
            ts.Analyzer.ts_emulate ts.Analyzer.ts_unsupported
            ts.Analyzer.ts_compat_pct)
        (Analyzer.summarize rep))
    reports;
  Printf.printf
    "%d statements x %d targets analyzed in %.3f s (%.0f statements/s)\n"
    stmts
    (List.length Analyzer.default_targets)
    elapsed
    (float_of_int stmts /. elapsed);
  let errors =
    List.fold_left
      (fun acc r ->
        acc
        + List.length
            (List.filter
               (fun d ->
                 d.Hyperq_analyze.Diag.severity = Hyperq_analyze.Diag.Error)
               (Analyzer.all_diags r)))
      0 reports
  in
  (* property inference: the static rule-soundness screen must reject the
     type-breaking example pack without executing a single corpus
     statement, and the inference passes riding along in the Transformer
     must stay cheap on the translate path. *)
  let module Soundness = Hyperq_rules.Soundness in
  let module Rules_dsl = Hyperq_rules.Dsl in
  let static_codes =
    match Rules_dsl.parse (example_pack "broken_nonbool.rules") with
    | Error ds -> List.map (fun d -> d.Hyperq_analyze.Diag.code) ds
    | Ok parsed ->
        List.map (fun d -> d.Hyperq_analyze.Diag.code) (Soundness.check parsed)
  in
  if not (List.mem "R112" static_codes) then begin
    Printf.eprintf
      "FAIL: broken_nonbool not rejected by the static soundness screen\n";
    exit 1
  end;
  Printf.printf
    "static rule screening rejects broken_nonbool (%s) with 0 corpus \
     executions\n"
    (String.concat "," static_codes);
  let overhead_queries = List.map snd Tpch_queries.all in
  (* best-of-sweeps: the min is the noise-resistant estimator of the
     intrinsic per-sweep cost (GC and scheduler jitter only ever add) *)
  let time_translate ~infer =
    let p = Pipeline.create ~plan_cache_capacity:0 ~infer () in
    List.iter (fun ddl -> ignore (Pipeline.run_sql p ddl)) Tpch.ddl;
    let sweep () =
      List.iter
        (fun q -> try ignore (Pipeline.translate p q) with _ -> ())
        overhead_queries
    in
    sweep ();
    let best = ref infinity in
    for _ = 1 to 10 do
      let t0 = Unix.gettimeofday () in
      sweep ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let infer_off_s = time_translate ~infer:false in
  let infer_on_s = time_translate ~infer:true in
  let infer_overhead_pct = (infer_on_s -. infer_off_s) /. infer_off_s *. 100. in
  Printf.printf
    "translate with inference passes: %.4f s vs %.4f s without (best of 10 \
     sweeps over %d queries, %+.1f%%)\n"
    infer_on_s infer_off_s
    (List.length overhead_queries)
    infer_overhead_pct;
  write_json "BENCH_analyze.json"
    (Printf.sprintf
       "{\"experiment\": \"analyze\", \"statements\": %d, \"targets\": %d, \
        \"elapsed_s\": %.6f, \"statements_per_s\": %.1f, \"error_diags\": \
        %d, \"props\": {\"static_broken_rejected\": true, \"static_codes\": \
        [%s], \"static_corpus_executions\": 0, \"translate_off_s\": %.6f, \
        \"translate_on_s\": %.6f, \"infer_overhead_pct\": %.2f}, \
        \"reports\": [%s]}"
       stmts
       (List.length Analyzer.default_targets)
       elapsed
       (float_of_int stmts /. elapsed)
       errors
       (String.concat ","
          (List.map (fun c -> "\"" ^ c ^ "\"") static_codes))
       infer_off_s infer_on_s infer_overhead_pct
       (String.concat ","
          (List.map
             (fun rep ->
               Printf.sprintf "{\"script\": \"%s\", \"targets\": [%s]}"
                 rep.Analyzer.rep_script
                 (String.concat ","
                    (List.map
                       (fun ts ->
                         Printf.sprintf
                           "{\"name\": \"%s\", \"direct\": %d, \"rewrite\": \
                            %d, \"emulate\": %d, \"unsupported\": %d, \
                            \"compat_pct\": %.1f}"
                           ts.Analyzer.ts_name ts.Analyzer.ts_direct
                           ts.Analyzer.ts_rewrite ts.Analyzer.ts_emulate
                           ts.Analyzer.ts_unsupported ts.Analyzer.ts_compat_pct)
                       (Analyzer.summarize rep))))
             reports)));
  if infer_overhead_pct > 15. then begin
    Printf.eprintf "FAIL: inference translate overhead %.1f%% > 15%%\n"
      infer_overhead_pct;
    exit 1
  end;
  if errors > 0 then Printf.printf "!! %d error diagnostic(s)\n" errors
  else Printf.printf "(all statements parse, bind, and validate clean)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the translation stages                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  hr "Micro: per-stage translation latency (bechamel)";
  let open Bechamel in
  let pipeline = Pipeline.create () in
  List.iter
    (fun sql -> ignore (Pipeline.run_sql pipeline sql))
    [
      "CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INTEGER)";
      "CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET DECIMAL(12,2))";
    ];
  let example2 =
    "SEL * FROM SALES WHERE SALES_DATE > 1140101 AND (AMOUNT, AMOUNT * 0.85) > \
     ANY (SEL GROSS, NET FROM SALES_HISTORY) QUALIFY RANK(AMOUNT DESC) <= 10"
  in
  let dialect = Hyperq_sqlparser.Dialect.Teradata in
  let parse () = Hyperq_sqlparser.Parser.parse_statement ~dialect example2 in
  let ast = parse () in
  let bind () =
    let bctx = Hyperq_binder.Binder.create_ctx pipeline.Pipeline.vcatalog in
    Hyperq_binder.Binder.bind_statement bctx ast
  in
  let bound = bind () in
  let transform () =
    let counter = ref 1_000_000 in
    Hyperq_transform.Transformer.transform ~cap:Capability.ansi_engine ~counter
      bound
  in
  let transformed, _ = transform () in
  let serialize () =
    Hyperq_serialize.Serializer.serialize ~cap:Capability.ansi_engine transformed
  in
  let translate () = Pipeline.translate pipeline example2 in
  let tpch_pipeline = Pipeline.create () in
  let _ = Tpch.setup ~sf:0.002 tpch_pipeline in
  let q1 () = Pipeline.translate tpch_pipeline (List.assoc "Q1" Tpch_queries.all) in
  let q6 () = Pipeline.run_sql tpch_pipeline (List.assoc "Q6" Tpch_queries.all) in
  let tests =
    [
      Test.make ~name:"parse (Example 2)" (Staged.stage parse);
      Test.make ~name:"bind (Example 2)" (Staged.stage bind);
      Test.make ~name:"transform (Example 2)" (Staged.stage transform);
      Test.make ~name:"serialize (Example 2)" (Staged.stage serialize);
      Test.make ~name:"translate end-to-end (Example 2)" (Staged.stage translate);
      Test.make ~name:"translate end-to-end (TPC-H Q1)" (Staged.stage q1);
      Test.make ~name:"run end-to-end (TPC-H Q6, SF 0.002)" (Staged.stage q6);
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              let name =
                match String.index_opt name '/' with
                | Some i -> String.sub name (i + 1) (String.length name - i - 1)
                | None -> name
              in
              Printf.printf "%-42s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Executor: vectorized batch path vs row interpreter                   *)
(* ------------------------------------------------------------------ *)

let exec_bench () =
  hr "Executor: columnar batch path vs row interpreter (TPC-H join/agg)";
  let pipeline = Pipeline.create () in
  let _ = Tpch.setup ~sf:(sf ()) pipeline in
  let iters =
    match Sys.getenv_opt "HYPERQ_EXEC_ITERS" with
    | Some s -> int_of_string s
    | None -> 3
  in
  (* the hash-join / hash-aggregation heavy queries of the suite *)
  let subset =
    match Sys.getenv_opt "HYPERQ_EXEC_QUERIES" with
    | Some s when String.contains s ';' -> String.split_on_char ';' s
    | Some s -> String.split_on_char ',' s
    | None ->
        [ "Q1"; "Q3"; "Q5"; "Q6"; "Q10"; "Q12"; "Q13"; "Q14"; "Q18" ]
  in
  let queries =
    List.filter_map
      (fun n ->
        match List.assoc_opt n Tpch_queries.all with
        | Some sql -> Some (n, sql)
        | None when String.length n > 3 && String.sub n 0 4 = "SEL " ->
            (* ad-hoc probe query passed directly in the env var *)
            Some ("adhoc", n)
        | None -> None)
      subset
  in
  let be = pipeline.Pipeline.backend in
  let canon rows =
    List.sort compare
      (List.map
         (fun (r : Value.t array) ->
           Array.to_list (Array.map Value.to_sql_literal r))
         rows)
  in
  (* Best-of-N execution-stage time; translation is cached and not counted.
     Row and batch iterations interleave so slow stretches of the host hit
     both executors alike. *)
  let dbg = Sys.getenv_opt "HYPERQ_EXEC_DEBUG" <> None in
  let one mode sql =
    be.Backend.exec_mode <- mode;
    let w0 = Gc.minor_words () in
    let o = Pipeline.run_sql pipeline sql in
    if dbg then
      Printf.printf "    [%s] %.1f Mwords minor\n"
        (match mode with Backend.Row -> "row  " | Backend.Batch -> "batch")
        ((Gc.minor_words () -. w0) /. 1e6);
    (o.Pipeline.out_timings.Pipeline.execute_s, o.Pipeline.out_rows)
  in
  let time_pair sql =
    let row_best = ref infinity and batch_best = ref infinity in
    let row_rows = ref [] and batch_rows = ref [] in
    ignore (one Backend.Batch sql) (* warm storage and plan cache *);
    for _ = 1 to iters do
      let t, r = one Backend.Row sql in
      if t < !row_best then row_best := t;
      row_rows := r;
      let t, r = one Backend.Batch sql in
      if t < !batch_best then batch_best := t;
      batch_rows := r
    done;
    ((!row_best, canon !row_rows), (!batch_best, canon !batch_rows))
  in
  Batch_exec.reset_counters ();
  Printf.printf "TPC-H at SF %.3f; best of %d runs per executor\n\n" (sf ())
    iters;
  let mismatches = ref 0 in
  let results =
    List.map
      (fun (name, sql) ->
        let (row_s, row_rows), (batch_s, batch_rows) = time_pair sql in
        let ok = row_rows = batch_rows in
        if not ok then incr mismatches;
        Printf.printf
          "  %-4s row %9.2f ms   batch %9.2f ms   speedup %5.2fx%s\n" name
          (row_s *. 1000.) (batch_s *. 1000.)
          (row_s /. batch_s)
          (if ok then "" else "   ROW/BATCH MISMATCH");
        (name, row_s, batch_s))
      queries
  in
  let row_total = List.fold_left (fun a (_, r, _) -> a +. r) 0. results in
  let batch_total = List.fold_left (fun a (_, _, b) -> a +. b) 0. results in
  let speedup = row_total /. batch_total in
  Printf.printf "\n  total row %.2f ms, batch %.2f ms: %.2fx speedup\n"
    (row_total *. 1000.) (batch_total *. 1000.) speedup;
  Printf.printf "  result mismatches: %d\n" !mismatches;
  let counters = Batch_exec.counters () in
  Printf.printf "  batch-path counters: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun (k, v) -> if v > 0 then Some (Printf.sprintf "%s=%d" k v) else None)
          counters));
  let query_json =
    String.concat ", "
      (List.map
         (fun (name, r, b) ->
           Printf.sprintf
             "{\"query\": \"%s\", \"row_s\": %.6f, \"batch_s\": %.6f, \
              \"speedup\": %.3f}"
             name r b (r /. b))
         results)
  in
  let counter_json =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) counters)
  in
  write_json "BENCH_exec.json"
    (Printf.sprintf
       "{\"experiment\": \"exec\", \"sf\": %g, \"iters\": %d, \
        \"row_total_s\": %.6f, \"batch_total_s\": %.6f, \"speedup\": %.3f, \
        \"diff_mismatches\": %d, \"queries\": [%s], \"counters\": {%s}}"
       (sf ()) iters row_total batch_total speedup !mismatches query_json
       counter_json);
  (* a result divergence between the two executors is a correctness bug, not
     a benchmark data point — fail the smoke run loudly *)
  if !mismatches > 0 then begin
    Printf.eprintf "exec: %d row/batch result mismatch(es)\n" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel: morsel-driven scaling curve over OCaml domains             *)
(* ------------------------------------------------------------------ *)

(* Domain-count scaling of the vectorized executor on the join/agg-heavy
   TPC-H subset. Methodology (see EXPERIMENTS.md): phases are pinned — only
   the execute stage is timed (translation is plan-cached, conversion
   excluded), best-of-N per (query, domains) with a warm-up run first.
   Correctness is a hard gate at any core count: every multi-domain run
   must reproduce the 1-domain row list EXACTLY (order included). The
   performance gates (monotone 1→4 curve, >=2x total speedup at 4 domains)
   only apply when the host actually has >= 4 cores; below that the JSON
   carries "insufficient_cores": true and CI's multi-core runners are the
   enforcement point. *)
let parallel_bench () =
  hr "Parallel: morsel-driven scaling over OCaml domains (TPC-H join/agg)";
  let pipeline = Pipeline.create () in
  let _ = Tpch.setup ~sf:(sf ()) pipeline in
  let iters =
    match Sys.getenv_opt "HYPERQ_PAR_ITERS" with
    | Some s -> int_of_string s
    | None -> 5
  in
  let domain_counts =
    match Sys.getenv_opt "HYPERQ_PAR_DOMAINS" with
    | Some s -> List.map int_of_string (String.split_on_char ',' s)
    | None -> [ 1; 2; 4; 8 ]
  in
  let subset =
    match Sys.getenv_opt "HYPERQ_PAR_QUERIES" with
    | Some s -> String.split_on_char ',' s
    | None -> [ "Q1"; "Q3"; "Q5"; "Q6"; "Q10"; "Q13"; "Q18" ]
  in
  let queries =
    List.filter_map
      (fun n -> Option.map (fun sql -> (n, sql)) (List.assoc_opt n Tpch_queries.all))
      subset
  in
  let be = pipeline.Pipeline.backend in
  be.Backend.exec_mode <- Backend.Batch;
  let cores = Domain.recommended_domain_count () in
  Printf.printf "TPC-H at SF %.3f; best of %d runs; %d cores available\n\n"
    (sf ()) iters cores;
  let lit rows =
    List.map
      (fun (r : Value.t array) ->
        Array.to_list (Array.map Value.to_sql_literal r))
      rows
  in
  let one sql =
    let o = Pipeline.run_sql pipeline sql in
    (o.Pipeline.out_timings.Pipeline.execute_s, lit o.Pipeline.out_rows)
  in
  (* reference result per query: the sequential batch path *)
  Pipeline.set_exec_domains pipeline 1;
  let reference =
    List.map (fun (name, sql) -> (name, snd (one sql))) queries
  in
  Morsel.reset_stats ();
  let mismatches = ref 0 in
  (* per domain count: best-of-N execute time per query, exact-order check *)
  let curve =
    List.map
      (fun d ->
        Pipeline.set_exec_domains pipeline d;
        let per_query =
          List.map
            (fun (name, sql) ->
              ignore (one sql) (* warm-up at this domain count *);
              let best = ref infinity in
              for _ = 1 to iters do
                let t, rows = one sql in
                if t < !best then best := t;
                if rows <> List.assoc name reference then begin
                  incr mismatches;
                  Printf.eprintf "  %s@%d domains: RESULT MISMATCH\n" name d
                end
              done;
              (name, !best))
            queries
        in
        let total = List.fold_left (fun a (_, t) -> a +. t) 0. per_query in
        (d, per_query, total))
      domain_counts
  in
  let total_at d =
    match List.find_opt (fun (d', _, _) -> d' = d) curve with
    | Some (_, _, t) -> Some t
    | None -> None
  in
  let base = match total_at 1 with Some t -> t | None -> nan in
  List.iter
    (fun (d, per_query, total) ->
      Printf.printf "  %d domain%s: total %8.2f ms  speedup %5.2fx   [%s]\n" d
        (if d = 1 then " " else "s")
        (total *. 1000.) (base /. total)
        (String.concat " "
           (List.map
              (fun (n, t) -> Printf.sprintf "%s %.1f" n (t *. 1000.))
              per_query)))
    curve;
  let morsel_stats = Morsel.stats () in
  Printf.printf "  morsel scheduler: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) morsel_stats));
  (* gates *)
  let insufficient_cores = cores < 4 in
  let speedup4 =
    match total_at 4 with Some t -> base /. t | None -> nan
  in
  let monotone =
    (* non-increasing totals from 1 to 4 domains, with 5% jitter headroom *)
    let upto4 = List.filter (fun (d, _, _) -> d <= 4) curve in
    let rec chk = function
      | (_, _, a) :: ((_, _, b) :: _ as rest) ->
          b <= a *. 1.05 && chk rest
      | _ -> true
    in
    chk upto4
  in
  let perf_pass =
    insufficient_cores || ((not (speedup4 < 2.0)) && monotone)
  in
  if !mismatches > 0 then Printf.printf "  RESULT MISMATCHES: %d\n" !mismatches
  else Printf.printf "  result mismatches: 0\n";
  if insufficient_cores then
    Printf.printf
      "  (%d core(s): scaling gates recorded but not enforced on this host)\n"
      cores
  else
    Printf.printf "  speedup at 4 domains: %.2fx (gate >= 2.0) monotone: %b\n"
      speedup4 monotone;
  let curve_json =
    String.concat ", "
      (List.map
         (fun (d, per_query, total) ->
           Printf.sprintf
             "{\"domains\": %d, \"total_s\": %.6f, \"speedup\": %.3f, \
              \"queries\": {%s}}"
             d total (base /. total)
             (String.concat ", "
                (List.map
                   (fun (n, t) -> Printf.sprintf "\"%s\": %.6f" n t)
                   per_query)))
         curve)
  in
  let morsel_json =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %g" k v)
         morsel_stats)
  in
  write_json "BENCH_parallel.json"
    (Printf.sprintf
       "{\"experiment\": \"parallel\", \"sf\": %g, \"iters\": %d, \
        \"cores\": %d, \"insufficient_cores\": %b, \"mismatches\": %d, \
        \"speedup_4_domains\": %s, \"monotone_1_to_4\": %b, \
        \"curve\": [%s], \"morsel_stats\": {%s}, \"pass\": %b}"
       (sf ()) iters cores insufficient_cores !mismatches
       (if Float.is_nan speedup4 then "null"
        else Printf.sprintf "%.3f" speedup4)
       monotone curve_json morsel_json
       (perf_pass && !mismatches = 0));
  (* a multi-domain result divergence is a correctness bug on any host *)
  if !mismatches > 0 then begin
    Printf.eprintf "parallel: %d result mismatch(es)\n" !mismatches;
    exit 1
  end;
  if not perf_pass then begin
    Printf.eprintf
      "parallel: scaling gate failed (speedup@4 %.2fx, monotone %b)\n"
      speedup4 monotone;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Serving: the TCP front door under load (real sockets)                *)
(* ------------------------------------------------------------------ *)

(* Three phases against a live front door on loopback, replaying the
   combined customer corpus (~14.2k distinct statements) with seeded
   transient faults on the backend:

     uncontended  load-gen concurrency = max_inflight: no shedding, no
                  queueing; establishes the baseline service-time p99
     overload     offered concurrency = 2x admission capacity
                  (inflight + queue): the server must shed with wire codes
                  2631/3897 — never a reset — while inflight stays capped
                  and the service p99 of *admitted* statements holds
     drain        SIGTERM mid-load: every admitted statement completes and
                  is answered; queued/late statements shed with 3897

   The acceptance assertions from the issue are checked here and the run
   exits non-zero if any fails, so CI's smoke job enforces them. *)

let serving () =
  hr "Serving: TCP front door under load (uncontended / 2x overload / drain)";
  let module Server = Hyperq_net.Server in
  let module Admission = Hyperq_net.Admission in
  let module Load_gen = Hyperq_net.Load_gen in
  let module R = Hyperq_core.Resilience in
  let module Fault = Hyperq_engine.Fault in
  let module Gateway = Hyperq_core.Gateway in
  let env_int name d =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> d
  in
  let env_float name d =
    match Sys.getenv_opt name with Some s -> float_of_string s | None -> d
  in
  let queries = env_int "HYPERQ_SERVE_QUERIES" 4000 in
  let inflight = env_int "HYPERQ_SERVE_INFLIGHT" 8 in
  let fault_p = env_float "HYPERQ_SERVE_FAULT_P" 0.02 in
  (* simulated backend round trip: without it the in-process engine answers
     in microseconds and no load level can make admission queue or shed *)
  let latency_s = env_float "HYPERQ_SERVE_LATENCY_S" 0.002 in
  let corpus =
    List.concat_map
      (fun wl -> List.map fst wl.Customer.wl_queries)
      (Customer.all ())
  in
  Printf.printf "corpus: %d distinct statements, %d to replay per phase\n%!"
    (List.length corpus) queries;
  (* fast client-visible retries: a transient fault costs ~1 ms, not the
     production half-second, so tails stay comparable across phases *)
  let policy =
    {
      R.retry =
        {
          R.default_retry with
          max_attempts = 3;
          base_delay_s = 0.0005;
          max_delay_s = 0.002;
        };
      breaker = { R.default_breaker with failure_threshold = 1_000_000 };
      deadline_s = None;
    }
  in
  let boot ~admission ~faults =
    let fault = Fault.create ~seed:11 () in
    if faults then Fault.random_transients fault ~p:fault_p ~first_n:max_int;
    let pipeline =
      Pipeline.create ~request_latency_s:latency_s ~fault
        ~resil:(R.create ~policy ()) ~obs:(Obs.create ()) ()
    in
    List.iter
      (fun wl ->
        List.iter
          (fun sql -> ignore (Pipeline.run_sql pipeline sql))
          wl.Customer.wl_setup)
      (Customer.all ());
    Server.start
      ~config:{ Server.default_config with port = 0; admission }
      (Gateway.create pipeline)
  in
  let load server ~workers ~n =
    Load_gen.run
      ~config:
        {
          Load_gen.default_config with
          port = Server.port server;
          workers;
          sessions = max 16 (2 * workers);
          total_queries = n;
        }
      ~corpus ()
  in
  (* --- phase 1: uncontended baseline --------------------------------- *)
  let adm_uncontended =
    {
      Admission.default_config with
      max_inflight = inflight;
      max_queue = 4 * inflight;
      queue_timeout_s = 5.;
    }
  in
  let s1 = boot ~admission:adm_uncontended ~faults:true in
  let r1 = load s1 ~workers:inflight ~n:queries in
  let exec1 = Server.exec_snapshot s1 in
  let p99_base = Obs.quantile exec1 0.99 in
  ignore (Server.shutdown ~timeout_s:10. s1);
  Printf.printf "uncontended: %s\n%!" (Load_gen.report_to_string r1);
  (* --- phase 2: overload at 2x admission capacity --------------------- *)
  let adm_overload =
    {
      Admission.default_config with
      max_inflight = inflight;
      max_queue = inflight;
      queue_timeout_s = 0.25;
    }
  in
  let s2 = boot ~admission:adm_overload ~faults:true in
  let offered = 2 * (inflight + adm_overload.Admission.max_queue) in
  let r2 = load s2 ~workers:offered ~n:queries in
  let exec2 = Server.exec_snapshot s2 in
  let p99_overload = Obs.quantile exec2 0.99 in
  let st2 = Server.stats s2 in
  ignore (Server.shutdown ~timeout_s:10. s2);
  Printf.printf "overload(%dx%d): %s\n%!" offered inflight
    (Load_gen.report_to_string r2);
  Printf.printf
    "  server: peak_inflight=%d sheds=%d (queue_full=%d timeout=%d \
     session=%d) protocol_errors=%d\n%!"
    st2.Server.sv_admission.Admission.st_peak_inflight
    (Admission.shed_total st2.Server.sv_admission)
    st2.Server.sv_admission.Admission.st_shed_queue_full
    st2.Server.sv_admission.Admission.st_shed_queue_timeout
    st2.Server.sv_admission.Admission.st_shed_session_limit
    st2.Server.sv_protocol_errors;
  (* --- phase 3: drain mid-load ---------------------------------------- *)
  let s3 = boot ~admission:adm_overload ~faults:true in
  let r3 = ref None in
  let loader =
    Thread.create
      (fun () ->
        r3 := Some (load s3 ~workers:(2 * inflight) ~n:(20 * queries)))
      ()
  in
  (* fire the drain only once statements are demonstrably flowing, so the
     report exercises the finish-and-answer path rather than an idle stop *)
  let rec wait_started n =
    if n = 0 then ()
    else if (Server.stats s3).Server.sv_statements_done < queries / 4 then begin
      Thread.delay 0.01;
      wait_started (n - 1)
    end
  in
  wait_started 500;
  let dr = Server.shutdown ~drain:true ~timeout_s:15. s3 in
  Thread.join loader;
  let st3_drain_sheds =
    match !r3 with
    | Some r -> r.Load_gen.lr_shed_unavailable
    | None -> 0
  in
  Printf.printf
    "drain: drained=%b inflight_at_signal=%d completed=%d client_3897=%d\n%!"
    dr.Server.dr_drained dr.Server.dr_inflight_at_signal
    dr.Server.dr_completed st3_drain_sheds;
  (* --- acceptance ------------------------------------------------------ *)
  let shed_seen =
    r2.Load_gen.lr_shed_transient + r2.Load_gen.lr_retries
    + r2.Load_gen.lr_shed_unavailable
    + Admission.shed_total st2.Server.sv_admission
    > 0
  in
  (* small-sample grace: with a tiny smoke corpus a single scheduler blip
     moves p99, so allow an absolute 50 ms floor on top of the 2x bound *)
  let p99_ok = p99_overload <= Float.max (2. *. p99_base) (p99_base +. 0.05) in
  let checks =
    [
      ("no_io_errors_uncontended", r1.Load_gen.lr_io_errors = 0);
      ("no_io_errors_overload", r2.Load_gen.lr_io_errors = 0);
      ("no_protocol_errors", st2.Server.sv_protocol_errors = 0);
      ("sheds_are_structured", shed_seen);
      ( "inflight_capped",
        st2.Server.sv_admission.Admission.st_peak_inflight <= inflight );
      ("admitted_p99_within_2x", p99_ok);
      ("drain_completed_inflight", dr.Server.dr_drained);
    ]
  in
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-28s %s\n" name (if ok then "ok" else "FAIL"))
    checks;
  let phase_json name (r : Load_gen.report) =
    Printf.sprintf
      "\"%s\": {\"submitted\": %d, \"ok\": %d, \"shed_2631\": %d, \
       \"shed_3897\": %d, \"failures\": %d, \"io_errors\": %d, \"retries\": \
       %d, \"wall_s\": %.3f, \"qps\": %.1f, \"p50_ms\": %.3f, \"p90_ms\": \
       %.3f, \"p99_ms\": %.3f}"
      name r.Load_gen.lr_submitted r.Load_gen.lr_ok
      r.Load_gen.lr_shed_transient r.Load_gen.lr_shed_unavailable
      r.Load_gen.lr_other_failures r.Load_gen.lr_io_errors
      r.Load_gen.lr_retries r.Load_gen.lr_wall_s r.Load_gen.lr_qps
      r.Load_gen.lr_p50_ms r.Load_gen.lr_p90_ms r.Load_gen.lr_p99_ms
  in
  write_json "BENCH_serving.json"
    (Printf.sprintf
       "{\"experiment\": \"serving\", \"queries\": %d, \"max_inflight\": %d, \
        \"offered_concurrency\": %d, \"fault_p\": %g, %s, %s, \"server\": \
        {\"peak_inflight\": %d, \"shed_queue_full\": %d, \
        \"shed_queue_timeout\": %d, \"shed_draining\": %d, \
        \"shed_session_limit\": %d, \"protocol_errors\": %d, \
        \"exec_p99_base_ms\": %.3f, \"exec_p99_overload_ms\": %.3f}, \
        \"drain\": {\"drained\": %b, \"inflight_at_signal\": %d, \
        \"completed\": %d, \"client_3897\": %d}, \"checks\": {%s}, \
        \"pass\": %b}"
       queries inflight offered fault_p
       (phase_json "uncontended" r1)
       (phase_json "overload" r2)
       st2.Server.sv_admission.Admission.st_peak_inflight
       st2.Server.sv_admission.Admission.st_shed_queue_full
       st2.Server.sv_admission.Admission.st_shed_queue_timeout
       st2.Server.sv_admission.Admission.st_shed_draining
       st2.Server.sv_admission.Admission.st_shed_session_limit
       st2.Server.sv_protocol_errors (p99_base *. 1000.)
       (p99_overload *. 1000.) dr.Server.dr_drained
       dr.Server.dr_inflight_at_signal dr.Server.dr_completed st3_drain_sheds
       (String.concat ", "
          (List.map
             (fun (n, ok) -> Printf.sprintf "\"%s\": %b" n ok)
             checks))
       (List.for_all snd checks));
  if not (List.for_all snd checks) then begin
    Printf.eprintf "serving: acceptance check failed\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Rule packs: screening cost, no-match overhead, antipattern speedup   *)
(* ------------------------------------------------------------------ *)

let rules_bench () =
  hr "Rule packs: screening cost, loaded-but-idle overhead, antipattern speedup";
  let module RC = Hyperq_workload.Rules_corpus in
  let module Diag = Hyperq_analyze.Diag in
  let iters =
    match Sys.getenv_opt "HYPERQ_RULES_ITERS" with
    | Some s -> int_of_string s
    | None -> 20
  in
  (* 1. mandatory screening: full corpus + differential, both example packs *)
  let screen_p = Pipeline.create () in
  let t0 = Unix.gettimeofday () in
  let screened =
    List.map
      (fun file ->
        match RC.load_pack screen_p (example_pack file) with
        | Ok r -> r
        | Error ds ->
            List.iter (fun d -> Printf.eprintf "%s\n" (Diag.to_string d)) ds;
            Printf.eprintf "FAIL: %s rejected by screening\n" file;
            exit 1)
      [ "teradata_cleanup.rules"; "predicate_normalization.rules" ]
  in
  let screen_s = Unix.gettimeofday () -. t0 in
  let screened_stmts =
    List.fold_left (fun a r -> a + r.Pipeline.rr_screened) 0 screened
  in
  Printf.printf
    "screening: 2 packs over %d corpus statements + %d differential queries \
     in %.3f s (%.0f stmts/s)\n"
    screened_stmts
    (List.fold_left (fun a r -> a + r.Pipeline.rr_diff_queries) 0 screened)
    screen_s
    (float_of_int screened_stmts /. screen_s);
  (* 2. loaded-but-idle overhead: 8 packs whose rules can never match the
     TPC-H text vs no packs at all, translate-only, cache disabled *)
  let idle_rules =
    [ "REVERSE"; "LOWER"; "LTRIM"; "RTRIM"; "FLOOR"; "CEILING"; "ROUND";
      "LAST_DAY" ]
  in
  let translate_total p =
    (* one warmup sweep, then the timed sweeps *)
    List.iter (fun (_, sql) -> ignore (Pipeline.translate p sql)) Tpch_queries.all;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      List.iter
        (fun (_, sql) -> ignore (Pipeline.translate p sql))
        Tpch_queries.all
    done;
    Unix.gettimeofday () -. t0
  in
  let bare_p = Pipeline.create ~plan_cache_capacity:0 () in
  let _ = Tpch.setup ~sf:(sf ()) bare_p in
  let idle_p = Pipeline.create ~plan_cache_capacity:0 () in
  let _ = Tpch.setup ~sf:(sf ()) idle_p in
  List.iter
    (fun f ->
      let text =
        Printf.sprintf "pack idle_%s version 1\nrule collapse : %s(%s(?x)) => %s(?x)"
          (String.lowercase_ascii f) f f f
      in
      match RC.load_pack ~diff:false idle_p text with
      | Ok _ -> ()
      | Error ds ->
          List.iter (fun d -> Printf.eprintf "%s\n" (Diag.to_string d)) ds;
          exit 1)
    idle_rules;
  let bare_s = translate_total bare_p in
  let idle_s = translate_total idle_p in
  let overhead_pct = (idle_s -. bare_s) /. bare_s *. 100. in
  Printf.printf
    "translate with %d idle packs: %.4f s vs %.4f s bare over %dx%d queries \
     (%+.1f%%)\n"
    (List.length idle_rules) idle_s bare_s iters
    (List.length Tpch_queries.all) overhead_pct;
  (* 3. antipattern speedup: generated-SQL shape, engine work saved by the
     rewrite (4 UPPER passes per row collapse to 1, tautology dropped) *)
  let anti_q =
    "SELECT COUNT(*) FROM LINEITEM WHERE 1=1 AND \
     UPPER(UPPER(UPPER(UPPER(L_COMMENT)))) LIKE '%SPECIAL%'"
  in
  let packed_p = Pipeline.create () in
  let _ = Tpch.setup ~sf:(sf ()) packed_p in
  List.iter
    (fun file ->
      match RC.load_pack ~diff:false packed_p (example_pack file) with
      | Ok _ -> ()
      | Error _ -> exit 1)
    [ "teradata_cleanup.rules"; "predicate_normalization.rules" ];
  let exec_total p =
    let session = Session.create () in
    let ex = ref 0. in
    for _ = 1 to iters do
      let o = Pipeline.run_sql p ~session anti_q in
      ex := !ex +. o.Pipeline.out_timings.Pipeline.execute_s
    done;
    !ex
  in
  let base_exec = exec_total bare_p in
  let packed_exec = exec_total packed_p in
  let packed_sql =
    match (Pipeline.run_sql packed_p anti_q).Pipeline.out_sql with
    | [ s ] -> s
    | _ -> ""
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  if contains packed_sql "UPPER(UPPER" then begin
    Printf.eprintf "FAIL: antipattern query not rewritten: %s\n" packed_sql;
    exit 1
  end;
  Printf.printf
    "antipattern execute: %.4f s baseline vs %.4f s packed (%.2fx) over %d \
     runs\n"
    base_exec packed_exec (base_exec /. packed_exec) iters;
  (* 4. the gate must bite: a type-breaking pack is rejected by the static
     soundness screen (R112) before any corpus statement executes *)
  let broken_rejected =
    match RC.load_pack screen_p (example_pack "broken_nonbool.rules") with
    | Ok _ ->
        Printf.eprintf "FAIL: broken_nonbool passed screening\n";
        exit 1
    | Error ds ->
        let d = List.hd ds in
        if d.Diag.code <> "R112" then begin
          Printf.eprintf "FAIL: expected static R112, got %s\n"
            (Diag.to_string d);
          exit 1
        end;
        Printf.printf "broken pack rejected at load: %s\n" (Diag.to_string d);
        true
  in
  write_json "BENCH_rules.json"
    (Printf.sprintf
       "{\"experiment\": \"rules\", \"iterations\": %d, \"screen_packs\": 2, \
        \"screen_statements\": %d, \"screen_s\": %.6f, \
        \"screen_stmts_per_s\": %.1f, \"idle_packs\": %d, \
        \"bare_translate_s\": %.6f, \"idle_translate_s\": %.6f, \
        \"idle_overhead_pct\": %.2f, \"anti_baseline_exec_s\": %.6f, \
        \"anti_packed_exec_s\": %.6f, \"anti_speedup\": %.3f, \
        \"broken_pack_rejected\": %b}"
       iters screened_stmts screen_s
       (float_of_int screened_stmts /. screen_s)
       (List.length idle_rules) bare_s idle_s overhead_pct base_exec
       packed_exec (base_exec /. packed_exec) broken_rejected);
  (* acceptance gates: idle packs must stay ~free; the broken pack check
     above already exited on failure *)
  if overhead_pct > 50. then begin
    Printf.eprintf "FAIL: idle-pack translate overhead %.1f%% > 50%%\n"
      overhead_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("baseline", baseline);
    ("table2", table2);
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("targets", targets);
    ("ablation", ablation);
    ("cache", cache);
    ("resilience", resilience);
    ("telemetry", telemetry);
    ("analyze", analyze);
    ("exec", exec_bench);
    ("parallel", parallel_bench);
    ("serving", serving);
    ("rules", rules_bench);
    ("micro", micro);
  ]

let () =
  let requested =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--")
  in
  let to_run =
    if requested = [] then experiments
    else
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
              Printf.eprintf "unknown experiment %s; available: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        requested
  in
  List.iter (fun (_, f) -> f ()) to_run
