(** Source dialects the front-end parser understands.

    The paper's architecture adds a new frontend system by adding a language
    parser (plus wire-protocol support); the shared grammar core means only
    the deviations from ANSI need dialect-specific productions (§5.1). *)

type t =
  | Teradata
      (** the paper's source system: SEL/INS/UPD/DEL abbreviations, QUALIFY,
          TOP, named-expression reuse, implicit joins, ordinal grouping,
          vector subqueries, MACRO/EXEC, permissive clause order *)
  | Ansi
      (** the dialect our serializers emit and the backend engine parses *)

let to_string = function Teradata -> "teradata" | Ansi -> "ansi"
let equal a b = a = b
