lib/sqlparser/token.ml: Int64 Printf
