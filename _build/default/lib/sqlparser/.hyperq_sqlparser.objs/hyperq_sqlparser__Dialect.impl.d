lib/sqlparser/dialect.ml:
