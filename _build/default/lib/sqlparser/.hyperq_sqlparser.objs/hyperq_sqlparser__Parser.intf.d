lib/sqlparser/parser.mli: Ast Dialect
