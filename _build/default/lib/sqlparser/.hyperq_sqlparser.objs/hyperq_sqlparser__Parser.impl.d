lib/sqlparser/parser.ml: Array Ast Dialect Hyperq_sqlvalue Int64 Lexer List Option Printf Sql_error String Token
