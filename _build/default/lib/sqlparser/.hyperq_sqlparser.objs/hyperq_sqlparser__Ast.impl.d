lib/sqlparser/ast.ml: Int64
