lib/sqlparser/lexer.ml: Buffer Hyperq_sqlvalue Int64 List Printf Sql_error String Token
