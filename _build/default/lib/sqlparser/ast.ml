(** Abstract syntax trees produced by the dialect-parametrized parser.

    Mirroring the paper (§5.1, Figure 4), the AST mixes *generic* nodes that
    capture ANSI constructs with *vendor-specific* nodes (the [Td_*]
    constructors and fields such as [qualify]) that capture Teradata
    extensions. The binder either lowers vendor nodes into plain XTRA
    (QUALIFY, named expressions, ...) or routes them to emulation. *)

type ident = string

(* A possibly-qualified name, outermost qualifier first:
   ["db"; "t"] or ["t"; "c"] or just ["c"]. *)
type qualified = ident list

type order_dir = Asc | Desc
type nulls_order = Nulls_default | Nulls_first | Nulls_last

type datetime_field = Year | Month | Day | Hour | Minute | Second

type interval_unit =
  | Iu_year
  | Iu_month
  | Iu_day
  | Iu_hour
  | Iu_minute
  | Iu_second

type literal =
  | L_int of int64
  | L_decimal of string  (** exact text; the binder builds the Decimal *)
  | L_float of float
  | L_string of string
  | L_null
  | L_date of string  (** DATE 'yyyy-mm-dd' *)
  | L_time of string
  | L_timestamp of string
  | L_interval of string * interval_unit  (** INTERVAL '3' DAY *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Modulo
  | Concat
  | Eq
  | Neq
  | Lt
  | Lte
  | Gt
  | Gte
  | And
  | Or

type unop = Neg | Not

type cmpop = Ceq | Cneq | Clt | Clte | Cgt | Cgte
type quantifier = Any | All

type type_name =
  | Ty_int  (** INTEGER/BIGINT/SMALLINT/BYTEINT *)
  | Ty_float
  | Ty_decimal of int * int
  | Ty_char of int option
  | Ty_varchar of int option
  | Ty_date
  | Ty_time
  | Ty_timestamp
  | Ty_interval of interval_unit
  | Ty_period of [ `Date | `Timestamp ]
  | Ty_byte of int option

type expr =
  | E_lit of literal
  | E_column of qualified
  | E_param of int  (** positional parameter [?], 1-based *)
  | E_binop of binop * expr * expr
  | E_unop of unop * expr
  | E_fun of { name : ident; distinct : bool; args : expr list; star : bool }
      (** scalar or aggregate call; [star] for [COUNT( * )] *)
  | E_cast of expr * type_name
  | E_extract of datetime_field * expr
  | E_case of {
      operand : expr option;
      branches : (expr * expr) list;
      else_branch : expr option;
    }
  | E_in of { lhs : expr; negated : bool; rhs : in_rhs }
  | E_between of { arg : expr; low : expr; high : expr; negated : bool }
  | E_like of { arg : expr; pattern : expr; escape : expr option; negated : bool }
  | E_is_null of expr * bool  (** bool = negated (IS NOT NULL) *)
  | E_exists of query
  | E_scalar_subquery of query
  | E_quantified of {
      lhs : expr list;  (** vector comparison when length > 1 (Teradata) *)
      op : cmpop;
      quant : quantifier;
      subquery : query;
    }
  | E_tuple of expr list  (** row-value constructor *)
  | E_window of {
      func : ident;
      args : expr list;
      partition : expr list;
      order : order_item list;
      frame : frame option;
    }
  | E_td_rank of order_item list
      (** Teradata [RANK(AMOUNT DESC)]: order spec passed as an argument
          instead of an OVER clause *)

and in_rhs = In_list of expr list | In_subquery of query

and order_item = { sort_expr : expr; dir : order_dir; nulls : nulls_order }

and frame = {
  frame_unit : [ `Rows | `Range ];
  frame_start : frame_bound;
  frame_end : frame_bound option;
}

and frame_bound =
  | Unbounded_preceding
  | Preceding of expr
  | Current_row
  | Following of expr
  | Unbounded_following

and select_item =
  | Sel_star of qualified option  (** [*] or [t.*] *)
  | Sel_expr of expr * ident option  (** expression with optional alias *)

and group_item =
  | Group_expr of expr  (** includes ordinals, resolved by the binder *)
  | Group_rollup of expr list
  | Group_cube of expr list
  | Group_sets of expr list list

and table_ref =
  | T_named of { name : qualified; alias : ident option; col_aliases : ident list }
  | T_subquery of { query : query; alias : ident; col_aliases : ident list }
  | T_join of {
      kind : join_kind;
      left : table_ref;
      right : table_ref;
      cond : join_cond;
    }

and join_kind = Inner | Left | Right | Full | Cross

and join_cond = On of expr | Using of ident list | No_cond

and select = {
  distinct : bool;
  top : top option;  (** Teradata TOP n [WITH TIES] *)
  projection : select_item list;
  from : table_ref list;
  where : expr option;
  group_by : group_item list;
  having : expr option;
  qualify : expr option;  (** Teradata QUALIFY clause *)
  sample : expr option;  (** Teradata SAMPLE n *)
}

and top = { top_count : expr; with_ties : bool; percent : bool }

and query_body =
  | Q_select of select
  | Q_setop of setop * bool * query_body * query_body  (** bool = ALL *)
  | Q_values of expr list list

and setop = Union | Intersect | Except

and cte = { cte_name : ident; cte_columns : ident list; cte_query : query }

and query = {
  ctes : cte list;
  recursive : bool;
  body : query_body;
  order_by : order_item list;
  limit : expr option;
  offset : expr option;
}

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type column_def = {
  col_name : ident;
  col_type : type_name;
  col_not_null : bool;
  col_default : expr option;
  col_case_specific : bool;  (** Teradata CASESPECIFIC *)
}

type table_kind =
  | Persistent of { set_semantics : bool }
      (** Teradata SET tables deduplicate rows on insert *)
  | Volatile  (** session-scoped temp table *)
  | Global_temporary

type insert_source = Ins_values of expr list list | Ins_query of query

type merge_clause =
  | Merge_update of (ident * expr) list
  | Merge_insert of ident list * expr list
  | Merge_delete

type statement =
  | S_select of query
  | S_insert of {
      table : qualified;
      columns : ident list;
      source : insert_source;
    }
  | S_update of {
      table : qualified;
      alias : ident option;
      set : (ident * expr) list;
      from : table_ref list;  (** Teradata implicit-join update *)
      where : expr option;
    }
  | S_delete of {
      table : qualified;
      alias : ident option;
      from : table_ref list;
      where : expr option;
    }
  | S_merge of {
      target : qualified;
      target_alias : ident option;
      source : table_ref;
      on : expr;
      when_matched : merge_clause option;
      when_not_matched : merge_clause option;
    }
  | S_create_table of {
      name : qualified;
      kind : table_kind;
      columns : column_def list;
      primary_index : ident list;  (** Teradata PRIMARY INDEX; physical *)
      on_commit_preserve : bool;
      if_not_exists : bool;
    }
  | S_create_table_as of {
      name : qualified;
      kind : table_kind;
      query : query;
      with_data : bool;
    }
  | S_drop_table of { name : qualified; if_exists : bool }
  | S_create_view of { name : qualified; columns : ident list; query : query; replace : bool }
  | S_drop_view of { name : qualified; if_exists : bool }
  | S_rename_table of { from_name : qualified; to_name : qualified }
  | S_create_macro of {
      name : qualified;
      params : (ident * type_name) list;
      body : statement list;
      replace : bool;
    }
  | S_create_procedure of {
      name : qualified;
      params : (ident * type_name) list;
      body : proc_stmt list;
      replace : bool;
    }
  | S_drop_procedure of { name : qualified; if_exists : bool }
  | S_call of { name : qualified; args : expr list }
  | S_drop_macro of { name : qualified; if_exists : bool }
  | S_exec_macro of { name : qualified; args : macro_args }
  | S_help of help_kind
  | S_show of show_kind
  | S_collect_stats of qualified  (** physical-design no-op on most targets *)
  | S_explain of statement
      (** answered by the virtualization layer: shows the translated plan *)
  | S_set_session of ident * expr
  | S_begin_transaction
  | S_commit
  | S_rollback

and macro_args =
  | Macro_positional of expr list
  | Macro_named of (ident * expr) list

(** Statements inside a stored procedure body (paper §6: procedures are
    emulated by maintaining variable scopes in the middle tier and breaking
    control flow into multiple SQL requests). Variables are referenced in
    embedded SQL and expressions as [:name]. *)
and proc_stmt =
  | P_declare of ident * type_name * expr option  (** DECLARE v t [DEFAULT e] *)
  | P_set of ident * expr  (** SET :v = e *)
  | P_if of (expr * proc_stmt list) list * proc_stmt list
      (** IF/ELSEIF branches plus a (possibly empty) ELSE *)
  | P_while of expr * proc_stmt list  (** WHILE c DO ... END WHILE *)
  | P_sql of statement  (** an embedded SQL statement *)

and help_kind =
  | Help_session
  | Help_table of qualified
  | Help_view of qualified
  | Help_macro of qualified
  | Help_procedure of qualified
  | Help_database of ident
  | Help_volatile_table

and show_kind = Show_table of qualified | Show_view of qualified

(* ------------------------------------------------------------------ *)
(* Convenience constructors                                            *)
(* ------------------------------------------------------------------ *)

let empty_select =
  {
    distinct = false;
    top = None;
    projection = [];
    from = [];
    where = None;
    group_by = [];
    having = None;
    qualify = None;
    sample = None;
  }

let simple_query body =
  { ctes = []; recursive = false; body; order_by = []; limit = None; offset = None }

let col name = E_column [ name ]
let lit_int n = E_lit (L_int (Int64.of_int n))
let lit_string s = E_lit (L_string s)

let order ?(dir = Asc) ?(nulls = Nulls_default) sort_expr =
  { sort_expr; dir; nulls }

(** Name of a statement's syntactic class, used by the feature tracker and in
    error messages. *)
let statement_kind = function
  | S_select _ -> "SELECT"
  | S_insert _ -> "INSERT"
  | S_update _ -> "UPDATE"
  | S_delete _ -> "DELETE"
  | S_merge _ -> "MERGE"
  | S_create_table _ -> "CREATE TABLE"
  | S_create_table_as _ -> "CREATE TABLE AS"
  | S_drop_table _ -> "DROP TABLE"
  | S_create_view _ -> "CREATE VIEW"
  | S_drop_view _ -> "DROP VIEW"
  | S_rename_table _ -> "RENAME TABLE"
  | S_create_macro _ -> "CREATE MACRO"
  | S_drop_macro _ -> "DROP MACRO"
  | S_exec_macro _ -> "EXECUTE"
  | S_create_procedure _ -> "CREATE PROCEDURE"
  | S_drop_procedure _ -> "DROP PROCEDURE"
  | S_call _ -> "CALL"
  | S_help _ -> "HELP"
  | S_show _ -> "SHOW"
  | S_collect_stats _ -> "COLLECT STATISTICS"
  | S_explain _ -> "EXPLAIN"
  | S_set_session _ -> "SET SESSION"
  | S_begin_transaction -> "BEGIN TRANSACTION"
  | S_commit -> "COMMIT"
  | S_rollback -> "ROLLBACK"
