lib/serialize/serializer.ml: Buffer Dtype Hyperq_sqlvalue Hyperq_transform Hyperq_xtra Int64 Interval List Option Printf Sql_error String Value
