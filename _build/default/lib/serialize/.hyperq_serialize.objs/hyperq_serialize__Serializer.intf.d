lib/serialize/serializer.mli: Hyperq_transform Hyperq_xtra
